// Ablation (§V-A): Cholesky vs LU for step S3. The paper credits the
// Cholesky-based solve for part of its largest win (YahooMusic R4).
#include <cstdio>

#include "als/solver.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace alsmf;
  using namespace alsmf::bench;
  const double extra = parse_bench_args(argc, argv).scale;

  print_header("Ablation — Cholesky vs LU for the S3 solve",
               "§V-A (S3 optimization, largest effect on YMR4)");

  const auto datasets = load_table1(extra);
  std::printf("%-6s %14s %14s %10s | %14s %14s\n", "data", "S3 chol[s]",
              "S3 lu[s]", "S3 gain", "total chol[s]", "total lu[s]");
  for (const auto& d : datasets) {
    AlsOptions options = paper_options();
    const AlsVariant v = AlsVariant::batch_local_reg();

    options.solver = LinearSolverKind::kCholesky;
    devsim::Device d_chol(devsim::k20c());
    AlsSolver chol(d.train, options, v, d_chol);
    chol.run({});

    options.solver = LinearSolverKind::kLu;
    devsim::Device d_lu(devsim::k20c());
    AlsSolver lu(d.train, options, v, d_lu);
    lu.run({});

    const double s3c = d_chol.modeled_seconds_scaled_matching("/S3", d.scale);
    const double s3l = d_lu.modeled_seconds_scaled_matching("/S3", d.scale);
    std::printf("%-6s %14.4f %14.4f %9.2fx | %14.3f %14.3f\n", d.abbr.c_str(),
                s3c, s3l, s3l / s3c, d_chol.modeled_seconds_scaled(d.scale),
                d_lu.modeled_seconds_scaled(d.scale));
  }
  return 0;
}
