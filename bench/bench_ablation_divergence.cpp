// Ablation: three remedies for the flat mapping's warp divergence on GPU —
//   1. row reordering (sort rows by length before the flat launch),
//   2. SELL-C-sigma storage (slice-local sorting + padding),
//   3. the paper's thread batching (one work-group per row),
// all compared against the untouched flat baseline. Shows *why* the paper's
// mapping-side fix wins: it removes divergence exactly instead of
// approximating it away, and enables the scratch-pad staging on top.
#include <cstdio>

#include "als/kernels.hpp"
#include "als/kernels_sell.hpp"
#include "als/reference.hpp"
#include "bench_util.hpp"
#include "sparse/reorder.hpp"
#include "sparse/sell.hpp"
#include "sparse/stats.hpp"

int main(int argc, char** argv) {
  using namespace alsmf;
  using namespace alsmf::bench;
  const double extra = parse_bench_args(argc, argv).scale;

  print_header("Ablation — divergence remedies on the K20c",
               "flat vs +sorted rows vs SELL-C-sigma vs thread batching");

  const auto datasets = load_table1(extra);
  const AlsOptions options = paper_options();
  const auto gpu = devsim::k20c();

  std::printf("%-6s %10s | %12s %12s %12s %12s %12s\n", "data", "divg",
              "flat", "flat+sort", "SELL-32-256", "batching", "batch+l+r");
  for (const auto& d : datasets) {
    const double divergence =
        warp_divergence_factor(row_lengths(d.train), 32);

    Matrix x, y;
    init_factors(d.train.rows(), d.train.cols(), options, x, y);

    auto run_flat = [&](const Csr& r) {
      devsim::Device device(gpu);
      Matrix dst(r.rows(), options.k);
      UpdateArgs args;
      args.r = &r;
      args.src = &y;
      args.dst = &dst;
      args.lambda = options.lambda;
      args.k = options.k;
      args.variant = AlsVariant::flat_baseline();
      for (int it = 0; it < options.iterations; ++it) {
        launch_update(device, "u", args, 0, 32, false);
      }
      return device.modeled_seconds_scaled(d.scale);
    };

    const double flat = run_flat(d.train);
    const Csr sorted = permute_rows(d.train, sort_rows_by_length(d.train));
    const double flat_sorted = run_flat(sorted);

    const SellMatrix sell(d.train, 32, 256);
    devsim::Device sell_device(gpu);
    {
      Matrix dst(d.train.rows(), options.k);
      SellUpdateArgs args;
      args.r = &sell;
      args.src = &y;
      args.dst = &dst;
      args.lambda = options.lambda;
      args.k = options.k;
      for (int it = 0; it < options.iterations; ++it) {
        launch_update_flat_sell(sell_device, "u", args, false);
      }
    }
    const double sell_time = sell_device.modeled_seconds_scaled(d.scale);

    auto run_batched = [&](const AlsVariant& v) {
      devsim::Device device(gpu);
      Matrix dst(d.train.rows(), options.k);
      UpdateArgs args;
      args.r = &d.train;
      args.src = &y;
      args.dst = &dst;
      args.lambda = options.lambda;
      args.k = options.k;
      args.variant = v;
      for (int it = 0; it < options.iterations; ++it) {
        launch_update(device, "u", args, options.num_groups, 32, false);
      }
      return device.modeled_seconds_scaled(d.scale);
    };
    const double batching = run_batched(AlsVariant::batching_only());
    const double best = run_batched(AlsVariant::batch_local_reg());

    std::printf("%-6s %10.2f | %12.3f %12.3f %12.3f %12.3f %12.3f\n",
                d.abbr.c_str(), divergence, flat, flat_sorted, sell_time,
                batching, best);
  }
  std::printf("\n(X half-updates only; lower is better. Sorting and SELL\n"
              "shrink the divergence penalty; batching removes it and unlocks\n"
              "the local-memory/register optimizations on top.)\n");
  return 0;
}
