// Ablation: local-memory staging tile size on the GPU. Big tiles cut
// barrier/refill overhead but hurt occupancy (fewer groups resident per
// SM); small tiles keep occupancy but re-synchronize constantly — the
// classic U-shaped scratch-pad trade-off behind the paper's Fig. 5 tile.
#include <cstdio>

#include "als/solver.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace alsmf;
  using namespace alsmf::bench;
  const double extra = parse_bench_args(argc, argv).scale;

  print_header("Ablation — staging tile size vs occupancy on the K20c",
               "local-memory tile sizing (§III-C2, Fig. 5)");

  const auto datasets = load_table1(extra);

  std::printf("%-10s", "tile rows");
  for (const auto& d : datasets) std::printf(" %10s", d.abbr.c_str());
  std::printf("   (full-dataset modeled seconds, batch+local+reg)\n");
  for (int tile : {16, 32, 64, 128, 256, 512, 1024, 0}) {
    std::printf("%-10s", tile == 0 ? "auto" : std::to_string(tile).c_str());
    for (const auto& d : datasets) {
      AlsOptions options = paper_options();
      options.tile_rows = tile;
      const double t =
          run_als(d, options, AlsVariant::batch_local_reg(), devsim::k20c())
              .full;
      std::printf(" %10.3f", t);
    }
    std::printf("\n");
  }
  std::printf("\nExpected shape: U-curve — tiny tiles pay barrier overhead,\n"
              "huge tiles pay occupancy; `auto` sits near the minimum.\n");
  return 0;
}
