// Ablation (§III-D): the full 8-variant cross product (registers x local
// x vectors on top of thread batching) on every device and dataset — the
// code-variant selection space.
#include <cstdio>

#include "als/variant_select.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace alsmf;
  using namespace alsmf::bench;
  const double extra = parse_bench_args(argc, argv).scale;

  print_header("Ablation — all 8 code variants per device and dataset",
               "§III-D (code variant selection)");

  const auto datasets = load_table1(extra);
  const AlsOptions options = paper_options();

  for (const char* dev : {"gpu", "mic", "cpu"}) {
    const auto profile = devsim::profile_by_name(dev);
    std::printf("=== %s === full-dataset modeled seconds\n",
                profile.name.c_str());
    std::printf("%-20s", "variant");
    for (const auto& d : datasets) std::printf(" %10s", d.abbr.c_str());
    std::printf("\n");
    for (unsigned mask = 0; mask < AlsVariant::kVariantCount; ++mask) {
      const AlsVariant v = AlsVariant::from_mask(mask);
      std::printf("%-20s", v.name().c_str());
      for (const auto& d : datasets) {
        std::printf(" %10.3f", run_als(d, options, v, profile).full);
      }
      std::printf("\n");
    }
    // Selector verdicts per dataset.
    std::printf("%-20s", "empirical best");
    for (const auto& d : datasets) {
      const std::string best =
          select_variant_empirical(d.train, options, profile).name();
      std::printf(" %19s", best.c_str());
    }
    std::printf("\n\n");
  }
  return 0;
}
