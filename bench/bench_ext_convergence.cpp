// Extension: convergence comparison of the three solver families the
// paper's related work discusses — ALS (ours), Hogwild-SGD, and CCD++ —
// on a MovieLens-shaped replica (functional execution, host wall-clock).
#include <cstdio>

#include "als/metrics.hpp"
#include "als/reference.hpp"
#include "baselines/ccd.hpp"
#include "baselines/sgd.hpp"
#include "bench_util.hpp"
#include "common/timer.hpp"
#include "sparse/convert.hpp"

int main(int argc, char** argv) {
  using namespace alsmf;
  using namespace alsmf::bench;
  const double extra = parse_bench_args(argc, argv).scale;

  print_header("Extension — ALS vs SGD vs CCD++ convergence",
               "Related work (§VI): the three MF solver families");

  const auto& info = dataset_by_abbr("MVLE");
  const double scale = std::max(1.0, default_scale(info) * 4.0 * extra);
  const Csr train = make_replica(info.abbr, scale);
  const Coo train_coo = csr_to_coo(train);
  std::printf("MVLE replica 1/%.0f: %lld x %lld, %lld ratings\n\n", scale,
              static_cast<long long>(train.rows()),
              static_cast<long long>(train.cols()),
              static_cast<long long>(train.nnz()));

  const int k = 10;
  const int rounds = 6;

  // ALS: log RMSE per full iteration.
  AlsOptions als_opts;
  als_opts.k = k;
  als_opts.lambda = 0.1f;
  Matrix x, y;
  init_factors(train.rows(), train.cols(), als_opts, x, y);
  const Csr train_t = transpose(train);
  std::vector<double> als_rmse;
  Timer als_timer;
  for (int it = 0; it < rounds; ++it) {
    reference_half_update(train, y, x, als_opts);
    reference_half_update(train_t, x, y, als_opts);
    als_rmse.push_back(rmse(train, x, y));
  }
  const double als_s = als_timer.seconds();

  SgdOptions sgd_opts;
  sgd_opts.k = k;
  sgd_opts.epochs = rounds;
  Timer sgd_timer;
  const SgdResult sgd = sgd_train(train_coo, sgd_opts);
  const double sgd_s = sgd_timer.seconds();

  CcdOptions ccd_opts;
  ccd_opts.k = k;
  ccd_opts.outer_iterations = rounds;
  Timer ccd_timer;
  const CcdResult ccd = ccd_train(train, ccd_opts);
  const double ccd_s = ccd_timer.seconds();

  std::printf("%-8s %12s %12s %12s   (training RMSE)\n", "round", "ALS",
              "SGD", "CCD++");
  for (int it = 0; it < rounds; ++it) {
    std::printf("%-8d %12.4f %12.4f %12.4f\n", it + 1, als_rmse[static_cast<std::size_t>(it)],
                sgd.epoch_rmse[static_cast<std::size_t>(it)],
                ccd.iter_rmse[static_cast<std::size_t>(it)]);
  }
  std::printf("\nhost wall seconds: ALS %.3f | SGD %.3f | CCD++ %.3f\n", als_s,
              sgd_s, ccd_s);
  std::printf("Expected shape: ALS reaches low RMSE in the fewest rounds\n"
              "(each round solves exactly); SGD/CCD++ approach it gradually.\n");
  return 0;
}
