// Extension (§V-A): "the latent factor k has an impact on the overall
// performance. The HPDC'16 implementation has been specially tuned for the
// k = 100 case, while it is a generic one for the other cases." Sweep k
// and watch our advantage over the cuMF-like library path shrink as k
// approaches its tuning point.
#include <cstdio>

#include "als/variant_select.hpp"
#include "baselines/cumf_like.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace alsmf;
  using namespace alsmf::bench;
  const double extra = parse_bench_args(argc, argv).scale;

  print_header("Extension — latent factor sweep: ours vs cuMF on K20c",
               "§V-A (cuMF is tuned for k = 100; our advantage is at small k)");

  const auto& info = dataset_by_abbr("NTFX");
  BenchDataset d;
  d.abbr = info.abbr;
  d.scale = std::max(1.0, default_scale(info) * extra);
  d.train = make_replica(info.abbr, d.scale);

  std::printf("%-6s %16s %16s %12s\n", "k", "ours full[s]", "cuMF full[s]",
              "speedup");
  for (int k : {5, 10, 20, 50, 100}) {
    AlsOptions options = paper_options();
    options.k = k;
    const auto gpu = devsim::k20c();
    const AlsVariant best = select_variant_empirical(d.train, options, gpu);
    const double ours = run_als(d, options, best, gpu).full;

    devsim::Device cumf_device(gpu);
    CumfLikeAls cumf(d.train, options, cumf_device);
    cumf.run();
    const double cumf_full = cumf_device.modeled_seconds_scaled(d.scale);

    std::printf("%-6d %16.3f %16.3f %11.2fx\n", k, ours, cumf_full,
                cumf_full / ours);
  }
  std::printf("\nExpected shape: the speedup is largest at k = 10 and decays\n"
              "toward ~1x as k approaches cuMF's k = 100 tuning point.\n");
  return 0;
}
