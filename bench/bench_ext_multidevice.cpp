// Extension: data-parallel scaling across devices (the multi-GPU axis on
// which cuMF positions itself). Strong scaling of one Netflix iteration
// over 1..4 modeled K20c cards, with the factor all-gather priced at PCIe
// bandwidth.
#include <cstdio>

#include "als/multi_device.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace alsmf;
  using namespace alsmf::bench;
  const double extra = parse_bench_args(argc, argv).scale;

  print_header("Extension — multi-device strong scaling (modeled K20c cards)",
               "cuMF-style data parallelism with all-gather communication");

  const auto& info = dataset_by_abbr("NTFX");
  BenchDataset d;
  d.abbr = info.abbr;
  d.scale = std::max(1.0, default_scale(info) * extra);
  d.train = make_replica(info.abbr, d.scale);

  AlsOptions options = paper_options();

  std::printf("%-10s %14s %14s %12s %12s\n", "devices", "replica[s]",
              "comm[s]", "speedup", "efficiency");
  double base = 0;
  for (int n : {1, 2, 4, 8, 16}) {
    std::vector<devsim::DeviceProfile> profiles(static_cast<std::size_t>(n),
                                                devsim::k20c());
    MultiDeviceAls solver(d.train, options, AlsVariant::batch_local_reg(),
                          profiles);
    const double t = solver.run();
    if (n == 1) base = t;
    std::printf("%-10d %14.4f %14.4f %11.2fx %11.0f%%\n", n, t,
                solver.communication_seconds(), base / t,
                100.0 * base / t / n);
  }
  std::printf("\nExpected shape: near-linear at 2 cards, efficiency decaying\n"
              "as the all-gather grows relative to the shrinking compute.\n");
  return 0;
}
