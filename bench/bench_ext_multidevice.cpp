// Extension: data-parallel scaling across devices (the multi-GPU axis on
// which cuMF positions itself). Three axes:
//   * strong scaling of one Netflix iteration over 1..16 modeled K20c
//     cards, with the factor all-gather priced at PCIe bandwidth;
//   * fault sweep — 0/1/2 injected device failures at 4 cards, showing
//     the elastic-repartition recovery overhead and MTTR;
//   * straggler sensitivity — rising straggler probability with
//     speculative re-execution, showing how much tail latency the
//     deadline scheduler claws back.
#include <cstdio>

#include "als/multi_device.hpp"
#include "bench_util.hpp"
#include "robust/fault_injection.hpp"

int main(int argc, char** argv) {
  using namespace alsmf;
  using namespace alsmf::bench;
  const auto args = parse_bench_args(argc, argv);
  const double extra = args.scale;

  print_header("Extension — multi-device strong scaling (modeled K20c cards)",
               "cuMF-style data parallelism with all-gather communication");

  const auto& info = dataset_by_abbr("NTFX");
  BenchDataset d;
  d.abbr = info.abbr;
  d.scale = std::max(1.0, default_scale(info) * extra);
  d.train = make_replica(info.abbr, d.scale);

  AlsOptions options = paper_options();

  std::printf("%-10s %14s %14s %12s %12s\n", "devices", "replica[s]",
              "comm[s]", "speedup", "efficiency");
  double base = 0;
  for (int n : {1, 2, 4, 8, 16}) {
    std::vector<devsim::DeviceProfile> profiles(static_cast<std::size_t>(n),
                                                devsim::k20c());
    MultiDeviceAls solver(d.train, options, AlsVariant::batch_local_reg(),
                          profiles);
    const double t = solver.run();
    if (n == 1) base = t;
    std::printf("%-10d %14.4f %14.4f %11.2fx %11.0f%%\n", n, t,
                solver.communication_seconds(), base / t,
                100.0 * base / t / n);
  }

  // Fault sweep: kill 0, 1, then 2 of 4 cards at fixed update steps and
  // measure what elastic repartitioning costs. Kills are exact-keyed so
  // the sweep is deterministic regardless of seed.
  std::printf("\nFault sweep (4 devices, exact device kills mid-run)\n");
  std::printf("%-10s %14s %12s %8s %8s %12s\n", "failures", "replica[s]",
              "overhead", "repart", "alive", "mttr[s]");
  const std::vector<devsim::DeviceProfile> four(4, devsim::k20c());
  double clean4 = 0;
  for (int f : {0, 1, 2}) {
    robust::FaultPlan plan;
    plan.seed = args.seed;
    auto& kills = plan.exact[static_cast<int>(robust::FaultSite::kDeviceFailure)];
    if (f >= 1) kills.push_back(robust::fault_key(1, 2));
    if (f >= 2) kills.push_back(robust::fault_key(2, 5));
    robust::ScopedFaultInjector scoped(plan);
    MultiDeviceAls solver(d.train, options, AlsVariant::batch_local_reg(),
                          four);
    const double t = solver.run();
    if (f == 0) clean4 = t;
    const auto& er = solver.elastic_report();
    std::printf("%-10d %14.4f %11.1f%% %8llu %8d %12.4f\n", f, t,
                clean4 > 0 ? 100.0 * (t - clean4) / clean4 : 0.0,
                static_cast<unsigned long long>(er.repartitions),
                er.devices_alive, er.mttr_mean_seconds());
  }

  // Straggler sensitivity: a rising per-launch straggler probability with
  // deadline detection + speculative re-execution on the fastest healthy
  // card. Wins show how much of the tail the speculator recovers.
  std::printf("\nStraggler sensitivity (4 devices, speculation on)\n");
  std::printf("%-10s %14s %12s %10s %8s\n", "prob", "replica[s]", "overhead",
              "detected", "wins");
  for (double prob : {0.0, 0.05, 0.1, 0.2}) {
    robust::FaultPlan plan;
    plan.seed = args.seed;
    plan.probability[static_cast<int>(robust::FaultSite::kStraggler)] = prob;
    robust::ScopedFaultInjector scoped(plan);
    MultiDeviceAls solver(d.train, options, AlsVariant::batch_local_reg(),
                          four);
    const double t = solver.run();
    const auto& er = solver.elastic_report();
    std::printf("%-10.2f %14.4f %11.1f%% %10llu %8llu\n", prob, t,
                clean4 > 0 ? 100.0 * (t - clean4) / clean4 : 0.0,
                static_cast<unsigned long long>(er.stragglers_detected),
                static_cast<unsigned long long>(er.speculation_wins));
  }

  std::printf("\nExpected shape: near-linear at 2 cards, efficiency decaying\n"
              "as the all-gather grows relative to the shrinking compute;\n"
              "each device loss adds one repartition plus a recompute wave,\n"
              "and speculation caps straggler overhead near the deadline.\n");
  return 0;
}
