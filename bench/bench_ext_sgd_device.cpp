// Extension (§VII future work): thread-batched SGD on the device substrate
// — per-epoch modeled time across architectures and convergence on a
// MovieLens replica, next to ALS per-iteration cost.
#include <cstdio>

#include "als/solver.hpp"
#include "baselines/sgd_device.hpp"
#include "bench_util.hpp"
#include "sparse/convert.hpp"

int main(int argc, char** argv) {
  using namespace alsmf;
  using namespace alsmf::bench;
  const double extra = parse_bench_args(argc, argv).scale;

  print_header("Extension — thread-batched SGD on the device substrate",
               "§VII future work (cuMF-SGD-style batch-Hogwild mapping)");

  const auto& info = dataset_by_abbr("MVLE");
  BenchDataset d;
  d.abbr = info.abbr;
  d.scale = std::max(1.0, default_scale(info) * extra);
  d.train = make_replica(info.abbr, d.scale);
  const Coo train_coo = csr_to_coo(d.train);

  std::printf("per-round full-dataset modeled seconds (k=10):\n");
  std::printf("%-18s %16s %16s\n", "device", "SGD epoch", "ALS iteration");
  for (const char* dev : {"gpu", "cpu", "mic"}) {
    const auto profile = devsim::profile_by_name(dev);

    DeviceSgdOptions sgd_opts;
    sgd_opts.k = 10;
    sgd_opts.epochs = 1;
    sgd_opts.functional = false;
    devsim::Device sgd_device(profile);
    DeviceSgd sgd(train_coo, sgd_opts, sgd_device);
    sgd.run();
    const double sgd_epoch = sgd_device.modeled_seconds_scaled(d.scale);

    AlsOptions als_opts = paper_options();
    als_opts.iterations = 1;
    devsim::Device als_device(profile);
    AlsSolver als(d.train, als_opts, AlsVariant::batch_local_reg(), als_device);
    als.run({});
    const double als_iter = als_device.modeled_seconds_scaled(d.scale);

    std::printf("%-18s %16.4f %16.4f\n", profile.name.c_str(), sgd_epoch,
                als_iter);
  }

  // Convergence: functional run on the replica.
  std::printf("\nconvergence on the replica (functional, k=10):\n");
  DeviceSgdOptions conv_opts;
  conv_opts.k = 10;
  conv_opts.epochs = 8;
  devsim::Device device(devsim::k20c());
  DeviceSgd sgd(train_coo, conv_opts, device);
  std::printf("%-8s %12s\n", "epoch", "train RMSE");
  for (int e = 0; e < conv_opts.epochs; ++e) {
    sgd.run_epoch();
    std::printf("%-8d %12.4f\n", e + 1, sgd.train_rmse());
  }
  return 0;
}
