// Extension: time-to-quality. Per device, how much modeled time does each
// solver need to reach a target training RMSE? Couples the functional
// convergence trajectory with the cost model's per-round prices — the
// practitioner's actual question ("what should I run on this box?").
#include <cstdio>

#include "als/metrics.hpp"
#include "als/solver.hpp"
#include "baselines/sgd_device.hpp"
#include "bench_util.hpp"
#include "sparse/convert.hpp"

int main(int argc, char** argv) {
  using namespace alsmf;
  using namespace alsmf::bench;
  const double extra = parse_bench_args(argc, argv).scale;

  print_header("Extension — modeled time to reach a target RMSE",
               "ALS (best variant) vs thread-batched SGD per device");

  const auto& info = dataset_by_abbr("MVLE");
  const double scale = std::max(1.0, default_scale(info) * 4.0 * extra);
  SyntheticSpec spec = replica_spec(info, scale);
  spec.planted_rank = 4;
  spec.noise = 0.25;
  spec.integer_ratings = false;
  const Coo train_coo = generate_synthetic(spec);
  const Csr train = coo_to_csr(train_coo);

  const double target_rmse = 0.45;
  const int max_rounds = 40;
  std::printf("MVLE-shaped replica (1/%.0f), target train RMSE %.2f\n\n",
              scale, target_rmse);
  std::printf("%-18s | %8s %16s | %8s %16s\n", "device", "ALS it",
              "ALS time[s]", "SGD ep", "SGD time[s]");

  for (const char* dev : {"gpu", "cpu", "mic"}) {
    const auto profile = devsim::profile_by_name(dev);

    // ALS: functional, one iteration at a time until the target.
    AlsOptions als_opts;
    als_opts.k = 10;
    als_opts.lambda = 0.05f;
    devsim::Device als_device(profile);
    AlsVariant v = profile.kind == devsim::DeviceKind::kGpu
                       ? AlsVariant::batch_local_reg()
                       : AlsVariant::batch_local();
    AlsSolver als(train, als_opts, v, als_device);
    int als_rounds = 0;
    while (als_rounds < max_rounds && als.train_rmse() > target_rmse) {
      als.run_iteration();
      ++als_rounds;
    }
    const double als_time =
        als.train_rmse() <= target_rmse
            ? als_device.modeled_seconds_scaled(scale)
            : -1;

    DeviceSgdOptions sgd_opts;
    sgd_opts.k = 10;
    sgd_opts.epochs = 1;
    devsim::Device sgd_device(profile);
    DeviceSgd sgd(train_coo, sgd_opts, sgd_device);
    int sgd_rounds = 0;
    while (sgd_rounds < max_rounds && sgd.train_rmse() > target_rmse) {
      sgd.run_epoch();
      ++sgd_rounds;
    }
    const double sgd_time = sgd.train_rmse() <= target_rmse
                                ? sgd_device.modeled_seconds_scaled(scale)
                                : -1;

    auto fmt = [](double t) {
      static char buf[32];
      if (t < 0) {
        std::snprintf(buf, sizeof buf, "%16s", "(not reached)");
      } else {
        std::snprintf(buf, sizeof buf, "%16.4f", t);
      }
      return buf;
    };
    std::printf("%-18s | %8d %s", profile.name.c_str(), als_rounds,
                fmt(als_time));
    std::printf(" | %8d %s\n", sgd_rounds, fmt(sgd_time));
  }
  std::printf("\nExpected shape: ALS needs few iterations but each is\n"
              "expensive; SGD epochs are cheap but numerous. Which wins\n"
              "depends on the device's compute/memory balance.\n");
  return 0;
}
