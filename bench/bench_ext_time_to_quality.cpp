// Extension: time-to-quality across row-solver strategies. Per device, how
// much modeled time does each S3 strategy (docs/solvers.md) need to reach a
// target training RMSE? Couples the functional convergence trajectory with
// the cost model's per-round prices — the practitioner's actual question
// ("which solver should I run on this box?").
//
// Expected shape: the exact Cholesky solve pays the full k³/3 factorization
// every row; warm-started truncated CG and the subspace sweep pay less per
// row once the factors settle, at the price of slightly less exact
// half-updates. Anderson mixing attacks the other axis — fewer outer
// iterations, paid for with ~1.5x half-updates per mixed iteration
// (the lookahead acceptance check; docs/solvers.md).
#include <cstdio>
#include <string>
#include <vector>

#include "als/metrics.hpp"
#include "als/solver.hpp"
#include "bench_util.hpp"
#include "sparse/convert.hpp"

namespace {

using namespace alsmf;

struct SolverLane {
  const char* label;
  RowSolverKind row_solver;
  int anderson_m;  // 0 = plain outer iteration
};

struct LaneResult {
  int rounds = 0;
  double seconds = -1;  // modeled, scaled; -1 = target not reached
};

LaneResult run_lane(const Csr& train, const devsim::DeviceProfile& profile,
                    const SolverLane& lane, int k, double target_rmse,
                    int max_rounds, double scale) {
  AlsOptions o;
  o.k = k;
  o.lambda = 0.05f;
  o.row_solver = lane.row_solver;
  o.anderson_m = lane.anderson_m;
  devsim::Device device(profile);
  const AlsVariant v = profile.kind == devsim::DeviceKind::kGpu
                           ? AlsVariant::batch_local_reg()
                           : AlsVariant::batch_local();
  AlsSolver solver(train, o, v, device);
  LaneResult res;
  while (res.rounds < max_rounds && solver.train_rmse() > target_rmse) {
    solver.run_iteration();
    ++res.rounds;
  }
  if (solver.train_rmse() <= target_rmse) {
    res.seconds = device.modeled_seconds_scaled(scale);
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace alsmf::bench;
  const double extra = parse_bench_args(argc, argv).scale;

  print_header("Extension — modeled time to reach a target RMSE",
               "row-solver strategies (cholesky | cg | subspace | +anderson) "
               "per device");

  const auto& info = dataset_by_abbr("MVLE");
  const double scale = std::max(1.0, default_scale(info) * 4.0 * extra);
  SyntheticSpec spec = replica_spec(info, scale);
  spec.planted_rank = 4;
  spec.noise = 0.25;
  spec.integer_ratings = false;
  const Csr train = coo_to_csr(generate_synthetic(spec));

  const int k = 16;
  const double target_rmse = 0.45;
  const int max_rounds = 40;
  std::printf("MVLE-shaped replica (1/%.0f), k=%d, target train RMSE %.2f\n\n",
              scale, k, target_rmse);

  const std::vector<SolverLane> lanes = {
      {"cholesky", RowSolverKind::kCholesky, 0},
      {"cg", RowSolverKind::kCg, 0},
      {"subspace", RowSolverKind::kSubspace, 0},
      {"cholesky+aa3", RowSolverKind::kCholesky, 3},
  };

  std::printf("%-18s", "device");
  for (const auto& lane : lanes) std::printf(" | %5s %14s", "it", lane.label);
  std::printf("\n");

  for (const char* dev : {"gpu", "cpu", "mic"}) {
    const auto profile = devsim::profile_by_name(dev);
    std::printf("%-18s", profile.name.c_str());
    for (const auto& lane : lanes) {
      const LaneResult r =
          run_lane(train, profile, lane, k, target_rmse, max_rounds, scale);
      if (r.seconds < 0) {
        std::printf(" | %5d %14s", r.rounds, "(not reached)");
      } else {
        std::printf(" | %5d %14.4f", r.rounds, r.seconds);
      }
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape: cg/subspace shave the per-iteration S3 price;\n"
      "anderson shaves outer iterations. Whether either beats the exact\n"
      "solve to the target depends on the device's compute/memory balance\n"
      "(gated in bench_regress's time_to_quality leg).\n");
  return 0;
}
