// Fig. 10(a-d): sensitivity to the work-group (thread block) size, per
// dataset and device. GPU uses batching+local+registers; CPU/MIC use
// batching+local, exactly as the paper's caption states.
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace alsmf;
  using namespace alsmf::bench;
  const double extra = parse_bench_args(argc, argv).scale;

  print_header("Figure 10 — execution time vs threads per group",
               "Fig. 10(a-d) (GPU min at 16/32; CPU prefers small groups; "
               "MIC optimum varies)");

  const auto datasets = load_table1(extra);
  const int sizes[] = {8, 16, 32, 64, 128};

  for (const auto& d : datasets) {
    std::printf("--- %s --- full-dataset modeled seconds\n", d.abbr.c_str());
    std::printf("%-8s %12s %12s %12s\n", "ws", "GPU", "CPU", "MIC");
    for (int ws : sizes) {
      AlsOptions options = paper_options();
      options.group_size = ws;
      const double gpu =
          run_als(d, options, AlsVariant::batch_local_reg(), devsim::k20c()).full;
      const double cpu = run_als(d, options, AlsVariant::batch_local(),
                                 devsim::xeon_e5_2670_dual())
                             .full;
      const double mic =
          run_als(d, options, AlsVariant::batch_local(), devsim::xeon_phi_31sp())
              .full;
      std::printf("%-8d %12.3f %12.3f %12.3f\n", ws, gpu, cpu, mic);
    }
    std::printf("\n");
  }
  return 0;
}
