// Fig. 1: motivation — the SAC'15 flat baseline runs much faster on the
// 16-core CPU (OpenMP) than on the K20c (CUDA), ~8.4x on average.
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace alsmf;
  using namespace alsmf::bench;
  const double extra = parse_bench_args(argc, argv).scale;

  print_header("Figure 1 — flat baseline: OpenMP on 16-core CPU vs CUDA on K20c",
               "Fig. 1 (log-scale execution time, 4 datasets, 5 iters, k=10)");

  const auto datasets = load_table1(extra);
  const AlsOptions options = paper_options();
  const AlsVariant flat = AlsVariant::flat_baseline();

  std::printf("%-6s %14s %14s %14s %14s %10s\n", "data", "CPU repl[s]",
              "GPU repl[s]", "CPU full[s]", "GPU full[s]", "GPU/CPU");
  double geo = 1.0;
  for (const auto& d : datasets) {
    // Flat mapping: the paper's OpenMP baseline is one thread per row (no
    // grouping); the CUDA baseline uses 32-lane blocks.
    AlsOptions cpu_opts = options;
    cpu_opts.group_size = 1;
    AlsOptions gpu_opts = options;
    gpu_opts.group_size = 32;
    const RunTimes cpu = run_als(d, cpu_opts, flat, devsim::xeon_e5_2670_dual());
    const RunTimes gpu = run_als(d, gpu_opts, flat, devsim::k20c());
    const double ratio = gpu.full / cpu.full;
    geo *= ratio;
    std::printf("%-6s %14.4f %14.4f %14.3f %14.3f %10.2f\n", d.abbr.c_str(),
                cpu.replica, gpu.replica, cpu.full, gpu.full, ratio);
  }
  std::printf("\ngeomean GPU/CPU slowdown: %.2fx  (paper: ~8.4x average)\n",
              std::pow(geo, 1.0 / static_cast<double>(datasets.size())));
  return 0;
}
