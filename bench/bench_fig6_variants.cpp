// Fig. 6(a-d): the four optimization stacks the paper plots — thread
// batching, +local memory, +local+register, +vector — on GPU, MIC and CPU
// for each dataset.
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace alsmf;
  using namespace alsmf::bench;
  const double extra = parse_bench_args(argc, argv).scale;

  print_header(
      "Figure 6 — optimization stacks per architecture and dataset",
      "Fig. 6(a-d) (8192x32 threads, 5 iterations, k=10)");

  const auto datasets = load_table1(extra);
  const AlsOptions options = paper_options();
  const AlsVariant stacks[] = {
      AlsVariant::batching_only(), AlsVariant::batch_local(),
      AlsVariant::batch_local_reg(), AlsVariant::batch_vectors()};
  const char* stack_names[] = {"batching", "+local", "+local+reg", "+vector"};

  for (const auto& d : datasets) {
    std::printf("--- %s (replica 1/%.0f) --- full-dataset modeled seconds\n",
                d.abbr.c_str(), d.scale);
    std::printf("%-12s %12s %12s %12s\n", "variant", "GPU", "MIC", "CPU");
    for (int s = 0; s < 4; ++s) {
      const double gpu = run_als(d, options, stacks[s], devsim::k20c()).full;
      const double mic =
          run_als(d, options, stacks[s], devsim::xeon_phi_31sp()).full;
      const double cpu =
          run_als(d, options, stacks[s], devsim::xeon_e5_2670_dual()).full;
      std::printf("%-12s %12.3f %12.3f %12.3f\n", stack_names[s], gpu, mic,
                  cpu);
    }
    std::printf("\n");
  }
  std::printf("Paper shape: GPU gains up to 2.6x from local+registers and\n"
              "~nothing from vectors; CPU/MIC gain up to 1.6x/1.4x from\n"
              "local memory and slightly from vectors.\n");
  return 0;
}
