// Fig. 7: speedups of our solver vs the SAC'15 baseline (on the CPU and
// the GPU) and vs the HPDC'16 cuMF-like implementation (on the GPU).
#include <cstdio>

#include "als/variant_select.hpp"
#include "baselines/cumf_like.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace alsmf;
  using namespace alsmf::bench;
  const double extra = parse_bench_args(argc, argv).scale;

  print_header("Figure 7 — ours vs SAC'15 and vs HPDC'16 (cuMF)",
               "Fig. 7 (paper: 5.5x on E5-2670, 21.2x on K20c, 2.2-6.8x vs cuMF)");

  const auto datasets = load_table1(extra);
  const AlsOptions options = paper_options();
  const auto cpu_profile = devsim::xeon_e5_2670_dual();
  const auto gpu_profile = devsim::k20c();

  std::printf("%-6s %16s %16s %16s\n", "data", "vs SAC15 (CPU)",
              "vs SAC15 (GPU)", "vs cuMF (GPU)");
  for (const auto& d : datasets) {
    // Ours: best variant per device (the paper's variant selection).
    const AlsVariant cpu_best =
        select_variant_empirical(d.train, options, cpu_profile);
    const AlsVariant gpu_best =
        select_variant_empirical(d.train, options, gpu_profile);
    const double ours_cpu = run_als(d, options, cpu_best, cpu_profile).full;
    const double ours_gpu = run_als(d, options, gpu_best, gpu_profile).full;

    AlsOptions flat_cpu_opts = options;
    flat_cpu_opts.group_size = 1;  // OpenMP-style thread-per-row
    const double sac_cpu =
        run_als(d, flat_cpu_opts, AlsVariant::flat_baseline(), cpu_profile).full;
    const double sac_gpu =
        run_als(d, options, AlsVariant::flat_baseline(), gpu_profile).full;

    devsim::Device cumf_device(gpu_profile);
    CumfLikeAls cumf(d.train, options, cumf_device);
    cumf.run();
    const double cumf_gpu = cumf_device.modeled_seconds_scaled(d.scale);

    std::printf("%-6s %15.2fx %15.2fx %15.2fx\n", d.abbr.c_str(),
                sac_cpu / ours_cpu, sac_gpu / ours_gpu, cumf_gpu / ours_gpu);
  }
  return 0;
}
