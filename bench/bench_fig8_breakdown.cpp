// Fig. 8(a-d): step-time breakdown (S1 = YtY, S2 = Ytr, S3 = solve) as the
// optimizations are applied step by step — Netflix on the K20c.
#include <cstdio>

#include "als/solver.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace alsmf;
  using namespace alsmf::bench;
  const double extra = parse_bench_args(argc, argv).scale;

  print_header("Figure 8 — S1/S2/S3 breakdown while optimizing step by step",
               "Fig. 8(a-d) (Netflix on K20c; paper: 65/19/16 -> 68/19/13 -> "
               "32/44/24 -> 41/32/27)");

  const auto& info = dataset_by_abbr("NTFX");
  BenchDataset d;
  d.abbr = info.abbr;
  d.scale = std::max(1.0, default_scale(info) * extra);
  d.train = make_replica(info.abbr, d.scale);

  struct Stage {
    const char* name;
    AlsVariant variant;
  };
  const Stage stages[] = {
      {"(a) baseline (flat)", AlsVariant::flat_baseline()},
      {"(b) thread batching", AlsVariant::batching_only()},
      {"(c) optimizing S1 (+registers)", AlsVariant::from_mask(1)},
      {"(d) optimizing S2 (+local)", AlsVariant::batch_local_reg()},
  };

  const AlsOptions options = paper_options();
  std::printf("%-34s %8s %8s %8s %14s\n", "stage", "S1 %", "S2 %", "S3 %",
              "total full[s]");
  for (const auto& stage : stages) {
    devsim::Device device(devsim::k20c());
    AlsSolver solver(d.train, options, stage.variant, device);
    solver.run({});
    const StepBreakdown b = solver.step_breakdown();
    std::printf("%-34s %8.2f %8.2f %8.2f %14.3f\n", stage.name, b.s1_pct(),
                b.s2_pct(), b.s3_pct(), device.modeled_seconds_scaled(d.scale));
  }
  std::printf("\nNarrative check: S1 dominates after batching; optimizing S1\n"
              "shifts share toward S2; optimizing S2 returns focus to S1.\n");
  return 0;
}
