// Fig. 9: our solver across architectures — slowdown relative to the best
// device per dataset (paper: CPU best; GPU ~1.5x slower; MIC ~4.1x slower;
// GPU wins on YahooMusic R1).
#include <algorithm>
#include <cstdio>

#include "als/variant_select.hpp"
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace alsmf;
  using namespace alsmf::bench;
  const double extra = parse_bench_args(argc, argv).scale;

  print_header("Figure 9 — our ALS across architectures (slowdown vs best)",
               "Fig. 9 (8192x32 threads, 5 iterations, k=10)");

  const auto datasets = load_table1(extra);
  const AlsOptions options = paper_options();

  std::printf("%-6s | %12s %12s %12s | %8s %8s %8s\n", "data", "GPU full[s]",
              "MIC full[s]", "CPU full[s]", "GPU x", "MIC x", "CPU x");
  for (const auto& d : datasets) {
    double t[3];
    const devsim::DeviceProfile profiles[3] = {
        devsim::k20c(), devsim::xeon_phi_31sp(), devsim::xeon_e5_2670_dual()};
    for (int i = 0; i < 3; ++i) {
      const AlsVariant best =
          select_variant_empirical(d.train, options, profiles[i]);
      t[i] = run_als(d, options, best, profiles[i]).full;
    }
    const double best = std::min({t[0], t[1], t[2]});
    std::printf("%-6s | %12.3f %12.3f %12.3f | %8.2f %8.2f %8.2f\n",
                d.abbr.c_str(), t[0], t[1], t[2], t[0] / best, t[1] / best,
                t[2] / best);
  }
  return 0;
}
