// Host micro-benchmarks (google-benchmark): the real wall-clock cost of
// the primitive kernels every ALS variant is built from.
#include <benchmark/benchmark.h>

#include <vector>

#include "als/row_solve.hpp"
#include "common/rng.hpp"
#include "data/synthetic.hpp"
#include "linalg/batched.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/lu.hpp"
#include "sparse/convert.hpp"

namespace {

using namespace alsmf;

std::vector<real> random_spd(int k, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<real> b(static_cast<std::size_t>(k) * k);
  for (auto& v : b) v = static_cast<real>(rng.uniform(-1.0, 1.0));
  std::vector<real> a(static_cast<std::size_t>(k) * k, real{0});
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) {
      real s = (i == j) ? real{1} : real{0};
      for (int p = 0; p < k; ++p) s += b[p * k + i] * b[p * k + j];
      a[i * k + j] = s;
    }
  }
  return a;
}

void BM_CholeskySolve(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto spd = random_spd(k, 1);
  std::vector<real> a(spd.size());
  std::vector<real> b(static_cast<std::size_t>(k), 1.0f);
  for (auto _ : state) {
    std::copy(spd.begin(), spd.end(), a.begin());
    std::fill(b.begin(), b.end(), 1.0f);
    benchmark::DoNotOptimize(cholesky_solve(a.data(), k, b.data()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CholeskySolve)->Arg(10)->Arg(32)->Arg(64)->Arg(100);

void BM_LuSolve(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto spd = random_spd(k, 1);
  std::vector<real> a(spd.size());
  std::vector<real> b(static_cast<std::size_t>(k), 1.0f);
  for (auto _ : state) {
    std::copy(spd.begin(), spd.end(), a.begin());
    std::fill(b.begin(), b.end(), 1.0f);
    benchmark::DoNotOptimize(lu_solve(a.data(), k, b.data()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LuSolve)->Arg(10)->Arg(32)->Arg(100);

void BM_BatchedCholesky(benchmark::State& state) {
  const int k = 10;
  const auto batch = static_cast<std::size_t>(state.range(0));
  const auto spd = random_spd(k, 2);
  std::vector<real> as(batch * spd.size());
  std::vector<real> rhs(batch * static_cast<std::size_t>(k), 1.0f);
  ThreadPool pool;
  for (auto _ : state) {
    for (std::size_t i = 0; i < batch; ++i) {
      std::copy(spd.begin(), spd.end(), as.begin() + static_cast<std::ptrdiff_t>(i * spd.size()));
    }
    benchmark::DoNotOptimize(
        batched_cholesky_solve(as.data(), rhs.data(), batch, k, pool));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_BatchedCholesky)->Arg(256)->Arg(4096);

void BM_AssembleNormalEquations(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const auto omega = static_cast<std::size_t>(state.range(1));
  Matrix y(static_cast<index_t>(omega), k);
  Rng rng(3);
  y.fill_uniform(rng, -1, 1);
  std::vector<index_t> cols(omega);
  std::vector<real> vals(omega, 3.0f);
  for (std::size_t i = 0; i < omega; ++i) cols[i] = static_cast<index_t>(i);
  std::vector<real> smat(static_cast<std::size_t>(k) * k), svec(static_cast<std::size_t>(k));
  for (auto _ : state) {
    assemble_normal_equations(cols, vals, y, 0.1f, k, smat.data(),
                              svec.data());
    benchmark::DoNotOptimize(smat.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(omega));
}
BENCHMARK(BM_AssembleNormalEquations)
    ->Args({10, 32})
    ->Args({10, 256})
    ->Args({10, 4096})
    ->Args({100, 256});

void BM_CsrTranspose(benchmark::State& state) {
  SyntheticSpec spec;
  spec.users = 20000;
  spec.items = 5000;
  spec.nnz = static_cast<nnz_t>(state.range(0));
  spec.seed = 4;
  const Csr csr = generate_synthetic_csr(spec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(transpose(csr));
  }
  state.SetItemsProcessed(state.iterations() * csr.nnz());
}
BENCHMARK(BM_CsrTranspose)->Arg(100000)->Arg(500000);

void BM_SyntheticGeneration(benchmark::State& state) {
  SyntheticSpec spec;
  spec.users = 10000;
  spec.items = 4000;
  spec.nnz = static_cast<nnz_t>(state.range(0));
  for (auto _ : state) {
    spec.seed += 1;  // avoid any caching illusions
    benchmark::DoNotOptimize(generate_synthetic(spec));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SyntheticGeneration)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
