// bench_regress: the pinned-seed canonical perf suite behind CI's perf gate.
//
// Runs three canonical workloads and writes a schema-stable RegressReport
// (BENCH_regress.json by default):
//   * train_smoke        — functional ALS on a synthetic MovieLens-shaped
//                          matrix: final loss/RMSE and modeled seconds;
//   * train_fp16_storage — the same problem trained with fp16 factor
//                          storage: final RMSE and its delta vs the fp32
//                          run are gated (the quality cost of the narrow
//                          storage the precision analyzer certifies);
//   * variant_sweep      — accounting-mode modeled seconds for all 8 code
//                          variants on the same matrix (the Fig. 6 axis);
//   * serve_closed_loop  — closed-loop serving smoke: request conservation,
//                          throughput and tail latency;
//   * serve_ivf          — the same service scoring through an IVF index:
//                          recall@10 against the exhaustive oracle is
//                          deterministic (pinned seed, exact rescoring) and
//                          gated, so an index regression fails CI;
//   * serve_quantized    — fp16 and per-row int8 factor snapshots: gated
//                          recall@10 of exhaustive scoring over the
//                          quantized factors against the fp32 oracle,
//                          plus the per-format byte footprint;
//   * pipeline_smoke     — train → checkpoint → index build → hot swap under
//                          load, twice; gates swap count, request
//                          conservation and the staleness assertion;
//   * elastic_faults     — multi-device training with one of four modeled
//                          cards killed mid-run: the coordinator must
//                          repartition and finish with factors bitwise
//                          equal to the no-fault run (rmse_delta_pct gated
//                          at zero), plus gated recovery counters.
// Modeled/deterministic metrics carry gate=true and fail --compare when they
// move past the tolerance; wall-clock and throughput numbers are recorded
// with gate=false (machine-dependent, informational only).
//
//   bench_regress [--smoke] [--seed N] [--json-out BENCH_regress.json]
//                 [--compare baseline.json] [--tolerance 0.25]
//
// Exit status: 0 on success (and a passing compare), 1 on a failed compare.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include <filesystem>

#include "als/metrics.hpp"
#include "als/multi_device.hpp"
#include "als/solver.hpp"
#include "bench_util.hpp"
#include "common/timer.hpp"
#include "data/synthetic.hpp"
#include "devsim/profile.hpp"
#include "index/ivf_index.hpp"
#include "obs/events.hpp"
#include "obs/regress.hpp"
#include "pipeline/pipeline.hpp"
#include "recsys/batch_score.hpp"
#include "robust/fault_injection.hpp"
#include "recsys/ranking.hpp"
#include "recsys/recommender.hpp"
#include "serve/model_store.hpp"
#include "serve/service.hpp"

namespace {

using namespace alsmf;

SyntheticSpec regress_spec(bool smoke, std::uint64_t seed) {
  // MovieLens-shaped: ~5x more users than items, ~20 ratings per user.
  SyntheticSpec spec;
  spec.users = smoke ? 1500 : 6000;
  spec.items = smoke ? 300 : 1200;
  spec.nnz = smoke ? 30000 : 120000;
  spec.seed = seed;
  return spec;
}

void run_train_smoke(obs::RegressReport& report, const Csr& train) {
  AlsOptions options;
  options.k = 8;
  options.iterations = 3;
  options.functional = true;
  const AlsVariant variant = AlsVariant::from_mask(7);
  devsim::Device device(devsim::profile_by_name("gpu"));
  AlsSolver solver(train, options, variant, device);
  obs::EventStream events;
  RunConfig config;
  config.events = &events;
  Timer wall;
  const RunReport run = solver.run(config);
  report.add("train_smoke.final_loss", solver.train_loss(), "loss");
  report.add("train_smoke.final_rmse", solver.train_rmse(), "rmse");
  report.add("train_smoke.modeled_seconds", run.modeled_seconds, "s");
  report.add("train_smoke.iteration_events",
             static_cast<double>(events.size()), "count",
             /*lower_is_better=*/false);
  report.add("train_smoke.wall_seconds", wall.seconds(), "s",
             /*lower_is_better=*/true, /*gate=*/false);
  std::printf("train_smoke: loss %.4f rmse %.4f modeled %.4fs (%d iters)\n",
              solver.train_loss(), solver.train_rmse(), run.modeled_seconds,
              run.iterations);
}

// fp16-storage training (docs/static-analysis.md "Precision certification"):
// every freshly solved factor block is rounded through fp16 storage, the
// training-side twin of the `_f16` kernels the precision analyzer certifies.
// The leg pins the quality cost of narrow storage: final RMSE and its delta
// against the fp32 run on the same pinned problem are deterministic, so any
// movement means the quantization path (or the solver under it) changed.
void run_train_fp16_storage(obs::RegressReport& report, const Csr& train) {
  AlsOptions options;
  options.k = 8;
  options.iterations = 3;
  options.functional = true;
  const AlsVariant variant = AlsVariant::from_mask(7);

  devsim::Device d32(devsim::profile_by_name("gpu"));
  AlsSolver fp32(train, options, variant, d32);
  fp32.run(RunConfig{});

  AlsOptions narrow = options;
  narrow.storage = StoragePrecision::kFp16;
  devsim::Device d16(devsim::profile_by_name("gpu"));
  AlsSolver fp16(train, narrow, variant, d16);
  fp16.run(RunConfig{});

  const double rmse32 = fp32.train_rmse();
  const double rmse16 = fp16.train_rmse();
  const double delta_pct =
      rmse32 > 0 ? 100.0 * std::abs(rmse16 - rmse32) / rmse32 : 0.0;
  report.add("train_fp16_storage.final_rmse", rmse16, "rmse");
  report.add("train_fp16_storage.rmse_delta_pct", delta_pct, "pct");
  std::printf("train_fp16_storage: rmse %.4f vs fp32 %.4f (delta %.4f%%)\n",
              rmse16, rmse32, delta_pct);
}

void run_variant_sweep(obs::RegressReport& report, const Csr& train) {
  AlsOptions options = bench::paper_options();
  options.iterations = 2;
  for (unsigned mask = 0; mask < AlsVariant::kVariantCount; ++mask) {
    const AlsVariant variant = AlsVariant::from_mask(mask);
    devsim::Device device(devsim::profile_by_name("gpu"));
    AlsSolver solver(train, options, variant, device);
    const RunReport run = solver.run(RunConfig{});
    report.add("variant_sweep." + variant.name() + ".modeled_seconds",
               run.modeled_seconds, "s");
    std::printf("variant_sweep: %-22s %.6f modeled s\n",
                variant.name().c_str(), run.modeled_seconds);
  }
}

void run_serve_closed_loop(obs::RegressReport& report, const Csr& train,
                           bool smoke, std::uint64_t seed) {
  AlsOptions options;
  options.k = 8;
  options.iterations = 2;
  options.functional = true;
  Recommender rec;
  rec.train(train, options, devsim::profile_by_name("cpu"),
            AlsVariant::from_mask(7));

  serve::ServiceOptions serve_options;
  serve_options.max_batch = 32;
  serve_options.max_wait_us = 100;
  serve_options.cache_capacity = 256;
  serve::RecommendService service(
      serve::snapshot_from_recommender(rec, options.lambda), serve_options);

  const std::size_t requests = smoke ? 2000 : 10000;
  Rng rng(seed);
  Timer wall;
  for (std::size_t i = 0; i < requests; ++i) {
    const auto user = static_cast<index_t>(
        rng() % static_cast<std::uint64_t>(rec.users()));
    (void)service.topn(user, 10);
  }
  const double seconds = wall.seconds();
  service.stop();

  const auto& m = service.metrics();
  const auto violations = m.registry().check_assertions();
  for (const auto& v : violations) {
    std::printf("serve_closed_loop: ASSERTION VIOLATED: %s\n", v.c_str());
  }
  report.add("serve_closed_loop.completed",
             static_cast<double>(m.completed()), "count",
             /*lower_is_better=*/false);
  report.add("serve_closed_loop.assertion_violations",
             static_cast<double>(violations.size()), "count");
  report.add("serve_closed_loop.qps",
             seconds > 0 ? static_cast<double>(requests) / seconds : 0.0,
             "qps", /*lower_is_better=*/false, /*gate=*/false);
  report.add("serve_closed_loop.p99_total_us", m.total_us_percentile(0.99),
             "us", /*lower_is_better=*/true, /*gate=*/false);
  std::printf(
      "serve_closed_loop: %zu requests in %.3fs (%.0f qps), p99 %.1fus\n",
      requests, seconds,
      seconds > 0 ? static_cast<double>(requests) / seconds : 0.0,
      m.total_us_percentile(0.99));
}

void run_serve_ivf(obs::RegressReport& report, const Csr& train, bool smoke,
                   std::uint64_t seed) {
  AlsOptions options;
  options.k = 8;
  options.iterations = 2;
  options.functional = true;
  Recommender rec;
  rec.train(train, options, devsim::profile_by_name("cpu"),
            AlsVariant::from_mask(7));
  auto snap = serve::snapshot_from_recommender(rec, options.lambda);

  index::IvfOptions ivf_options;
  ivf_options.seed = seed;
  ivf_options.nprobe = 8;
  serve::attach_ivf_index(*snap, ivf_options);
  const auto& ann = *snap->ann;

  // Deterministic part, gated: recall@10 of the index against the
  // exhaustive oracle for a pinned user sample. Build and rescoring are
  // seeded and exact, so this number only moves when the index moves.
  const int topn = 10;
  const auto sample_users = std::min<index_t>(rec.users(), 100);
  double recall = 0;
  std::size_t candidates = 0;
  for (index_t u = 0; u < sample_users; ++u) {
    const auto exact = topn_from_factor(snap->x.row(u), snap->y, topn);
    index::IvfQueryStats stats;
    const auto approx = ann.topn(snap->x.row(u), snap->y, topn,
                                 ivf_options.nprobe, nullptr, -1, {}, &stats);
    recall += recall_at_n(approx, exact);
    candidates += stats.candidates;
  }
  recall /= static_cast<double>(sample_users);
  const double scanned_frac =
      static_cast<double>(candidates) /
      (static_cast<double>(sample_users) * static_cast<double>(rec.items()));

  // Throughput part, informational: the same service path with the index
  // attached (cache off so the scoring path is what is measured).
  serve::ServiceOptions serve_options;
  serve_options.max_batch = 32;
  serve_options.max_wait_us = 100;
  serve_options.cache_capacity = 0;
  serve_options.nprobe = ivf_options.nprobe;
  serve::RecommendService service(std::move(snap), serve_options);
  const std::size_t requests = smoke ? 2000 : 10000;
  Rng rng(seed);
  Timer wall;
  for (std::size_t i = 0; i < requests; ++i) {
    const auto user = static_cast<index_t>(
        rng() % static_cast<std::uint64_t>(rec.users()));
    (void)service.topn(user, topn);
  }
  const double seconds = wall.seconds();
  service.stop();
  const auto violations = service.metrics().registry().check_assertions();

  report.add("serve_ivf.recall_at_10", recall, "recall",
             /*lower_is_better=*/false);
  report.add("serve_ivf.scanned_frac", scanned_frac, "frac");
  report.add("serve_ivf.assertion_violations",
             static_cast<double>(violations.size()), "count");
  report.add("serve_ivf.qps",
             seconds > 0 ? static_cast<double>(requests) / seconds : 0.0,
             "qps", /*lower_is_better=*/false, /*gate=*/false);
  std::printf(
      "serve_ivf: recall@10 %.4f (%d clusters, nprobe %d, %.1f%% scanned), "
      "%zu requests (%.0f qps)\n",
      recall, ann.build_stats().clusters, ivf_options.nprobe,
      100.0 * scanned_frac, requests,
      seconds > 0 ? static_cast<double>(requests) / seconds : 0.0);
}

// Quantized factor snapshots for serving (docs/serving.md): fp16 and
// symmetric per-row int8 compression applied at snapshot-build time. The
// gate is recall@10 of exhaustive scoring over the quantized factors
// against the fp32 oracle on a pinned user sample — deterministic, so it
// only moves when the quantizer (or the factors feeding it) moves. The
// byte footprint per format rides along as a second deterministic gate.
void run_serve_quantized(obs::RegressReport& report, const Csr& train) {
  AlsOptions options;
  options.k = 8;
  options.iterations = 2;
  options.functional = true;
  Recommender rec;
  rec.train(train, options, devsim::profile_by_name("cpu"),
            AlsVariant::from_mask(7));
  const auto exact = serve::snapshot_from_recommender(rec, options.lambda);

  const int topn = 10;
  const auto sample_users = std::min<index_t>(rec.users(), 100);
  const struct {
    const char* label;
    serve::SnapshotQuantization format;
  } formats[] = {
      {"fp16", serve::SnapshotQuantization::kFp16},
      {"int8", serve::SnapshotQuantization::kInt8},
  };
  for (const auto& fmt : formats) {
    auto snap = std::make_shared<serve::ModelSnapshot>(*exact);
    serve::quantize_snapshot(*snap, fmt.format);
    double recall = 0;
    for (index_t u = 0; u < sample_users; ++u) {
      const auto oracle = topn_from_factor(exact->x.row(u), exact->y, topn);
      const auto approx = topn_from_factor(snap->x.row(u), snap->y, topn);
      recall += recall_at_n(approx, oracle);
    }
    recall /= static_cast<double>(sample_users);
    const double bytes_frac = static_cast<double>(snap->factor_bytes()) /
                              static_cast<double>(exact->factor_bytes());
    const std::string prefix = std::string("serve_quantized.") + fmt.label;
    report.add(prefix + ".recall_at_10", recall, "recall",
               /*lower_is_better=*/false);
    report.add(prefix + ".factor_bytes_frac", bytes_frac, "frac");
    std::printf("serve_quantized: %-4s recall@10 %.4f, %.1f%% of fp32 bytes\n",
                fmt.label, recall, 100.0 * bytes_frac);
  }
}

void run_pipeline_smoke(obs::RegressReport& report, const Csr& train,
                        std::uint64_t seed) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / ("alsmf_regress_pipeline_" +
                                   std::to_string(static_cast<unsigned long long>(seed)));
  fs::remove_all(dir);
  fs::create_directories(dir);

  pipeline::PipelineOptions options;
  options.als.k = 6;
  options.als.iterations = 4;  // 2 checkpoints -> 2 swaps
  options.als.functional = true;
  options.checkpoint_dir = dir.string();
  options.checkpoint_every = 2;
  options.ivf.clusters = 8;
  options.ivf.seed = seed;
  options.clients = 2;
  options.topn = 10;
  options.load_seed = seed;
  const auto pipe = pipeline::run_pipeline(train, options);
  fs::remove_all(dir);

  for (const auto& v : pipe.assertion_violations) {
    std::printf("pipeline_smoke: ASSERTION VIOLATED: %s\n", v.c_str());
  }
  const auto dropped = pipe.requests_submitted - pipe.requests_completed -
                       pipe.requests_shed;
  report.add("pipeline_smoke.swaps", static_cast<double>(pipe.swaps), "count",
             /*lower_is_better=*/false);
  report.add("pipeline_smoke.index_builds",
             static_cast<double>(pipe.index_builds), "count",
             /*lower_is_better=*/false);
  report.add("pipeline_smoke.checkpoint_load_failures",
             static_cast<double>(pipe.checkpoint_load_failures), "count");
  report.add("pipeline_smoke.dropped_requests", static_cast<double>(dropped),
             "count");
  report.add("pipeline_smoke.assertion_violations",
             static_cast<double>(pipe.assertion_violations.size()), "count");
  // Worst observed staleness depends on thread timing (0 or 1 under the
  // bound); record it but don't gate the race.
  report.add("pipeline_smoke.staleness_max",
             static_cast<double>(pipe.staleness_max), "versions",
             /*lower_is_better=*/true, /*gate=*/false);
  report.add("pipeline_smoke.wall_seconds", pipe.wall_seconds, "s",
             /*lower_is_better=*/true, /*gate=*/false);
  std::printf(
      "pipeline_smoke: %d iters, %llu swaps, %llu index builds, "
      "staleness<=%llu, %llu requests (0 dropped: %s)\n",
      pipe.iterations, static_cast<unsigned long long>(pipe.swaps),
      static_cast<unsigned long long>(pipe.index_builds),
      static_cast<unsigned long long>(pipe.staleness_max),
      static_cast<unsigned long long>(pipe.requests_submitted),
      dropped == 0 ? "yes" : "NO");
}

// Seconds-to-RMSE-target across the S3 row-solver strategies
// (docs/solvers.md) on the modeled GPU. The target is the exact solver's
// RMSE after a pinned number of iterations (plus 2% slack), so the leg
// gates two things: the per-strategy modeled cost trajectory, and that at
// least one iterative strategy still beats the exact solve to the target
// (best_over_cholesky < 1, direction-aware).
void run_time_to_quality(obs::RegressReport& report, const Csr& train) {
  const auto profile = devsim::profile_by_name("gpu");
  const AlsVariant variant = AlsVariant::from_mask(7);
  const int k = 16;
  const int reference_iters = 6;
  const int max_rounds = 24;

  AlsOptions base;
  base.k = k;
  base.functional = true;

  // Reference trajectory: the exact solver fixes the quality bar.
  double target = 0;
  {
    devsim::Device device(profile);
    AlsSolver solver(train, base, variant, device);
    for (int i = 0; i < reference_iters; ++i) solver.run_iteration();
    target = solver.train_rmse() * 1.02;
  }

  struct Lane {
    const char* label;
    RowSolverKind row_solver;
    int anderson_m;
  };
  const std::vector<Lane> lanes = {
      {"cholesky", RowSolverKind::kCholesky, 0},
      {"cg", RowSolverKind::kCg, 0},
      {"subspace", RowSolverKind::kSubspace, 0},
      {"anderson", RowSolverKind::kCholesky, 3},
  };

  double cholesky_seconds = 0, best_iterative = -1;
  for (const auto& lane : lanes) {
    AlsOptions o = base;
    o.row_solver = lane.row_solver;
    o.anderson_m = lane.anderson_m;
    devsim::Device device(profile);
    AlsSolver solver(train, o, variant, device);
    int rounds = 0;
    while (rounds < max_rounds && solver.train_rmse() > target) {
      solver.run_iteration();
      ++rounds;
    }
    const bool reached = solver.train_rmse() <= target;
    const double seconds = device.modeled_seconds();
    const std::string prefix = std::string("time_to_quality.") + lane.label;
    report.add(prefix + ".modeled_seconds", reached ? seconds : -1, "s");
    report.add(prefix + ".iterations", static_cast<double>(rounds), "count");
    if (lane.row_solver == RowSolverKind::kCholesky &&
        lane.anderson_m == 0) {
      cholesky_seconds = seconds;
    } else if (reached &&
               (best_iterative < 0 || seconds < best_iterative)) {
      best_iterative = seconds;
    }
    std::printf("time_to_quality: %-10s %2d it, modeled %.4fs%s\n",
                lane.label, rounds, seconds,
                reached ? "" : " (target not reached)");
  }
  // < 1 means some iterative/accelerated strategy beats the exact solve.
  const double ratio = best_iterative > 0 && cholesky_seconds > 0
                           ? best_iterative / cholesky_seconds
                           : 2.0;
  report.add("time_to_quality.best_over_cholesky", ratio, "ratio");
  std::printf("time_to_quality: target rmse %.4f, best/cholesky %.4f\n",
              target, ratio);
}

void run_elastic_faults(obs::RegressReport& report, const Csr& train,
                        std::uint64_t seed) {
  AlsOptions options;
  options.k = 8;
  options.iterations = 3;
  options.functional = true;
  const AlsVariant variant = AlsVariant::from_mask(7);
  const std::vector<devsim::DeviceProfile> profiles(4, devsim::k20c());

  // No-fault reference run on the same fleet.
  MultiDeviceAls clean(train, options, variant, profiles);
  clean.run();
  const double rmse_clean = rmse(train, clean.x(), clean.y());

  // Kill card 1 at its third update launch; the coordinator must detect
  // the loss, repartition over the survivors and still converge. Row
  // solves are partition-independent, so the recovered factors are
  // bitwise equal to the clean run and the RMSE delta is exactly zero.
  robust::FaultPlan plan;
  plan.seed = seed;
  plan.exact[static_cast<int>(robust::FaultSite::kDeviceFailure)] = {
      robust::fault_key(1, 2)};
  robust::ScopedFaultInjector scoped(plan);
  MultiDeviceAls faulted(train, options, variant, profiles);
  const double modeled = faulted.run();
  const double rmse_fault = rmse(train, faulted.x(), faulted.y());
  const auto& er = faulted.elastic_report();

  const double delta_pct =
      rmse_clean > 0 ? 100.0 * std::abs(rmse_fault - rmse_clean) / rmse_clean
                     : 0.0;
  report.add("elastic_faults.rmse_delta_pct", delta_pct, "pct");
  report.add("elastic_faults.final_rmse", rmse_fault, "rmse");
  report.add("elastic_faults.device_failures",
             static_cast<double>(er.device_failures), "count",
             /*lower_is_better=*/false);
  report.add("elastic_faults.repartitions",
             static_cast<double>(er.repartitions), "count",
             /*lower_is_better=*/false);
  report.add("elastic_faults.recoveries", static_cast<double>(er.recoveries),
             "count", /*lower_is_better=*/false);
  report.add("elastic_faults.devices_alive",
             static_cast<double>(er.devices_alive), "count",
             /*lower_is_better=*/false);
  report.add("elastic_faults.modeled_seconds", modeled, "s");
  report.add("elastic_faults.mttr_mean_seconds", er.mttr_mean_seconds(), "s");
  std::printf(
      "elastic_faults: rmse %.4f (delta %.4f%%), %llu failure(s), "
      "%llu repartition(s), %d/4 alive, modeled %.4fs, mttr %.4fs\n",
      rmse_fault, delta_pct,
      static_cast<unsigned long long>(er.device_failures),
      static_cast<unsigned long long>(er.repartitions), er.devices_alive,
      modeled, er.mttr_mean_seconds());
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = alsmf::bench::parse_bench_args(argc, argv);
  const std::string out_path =
      args.json_out.empty() ? "BENCH_regress.json" : args.json_out;

  obs::RegressReport report;
  report.seed = args.seed;
  report.smoke = args.smoke;

  const Csr train = generate_synthetic_csr(regress_spec(args.smoke, args.seed));
  std::printf("# bench_regress: %s suite, seed %llu, %lld x %lld, %lld nnz\n",
              args.smoke ? "smoke" : "full",
              static_cast<unsigned long long>(args.seed),
              static_cast<long long>(train.rows()),
              static_cast<long long>(train.cols()),
              static_cast<long long>(train.nnz()));

  run_train_smoke(report, train);
  run_train_fp16_storage(report, train);
  run_variant_sweep(report, train);
  run_time_to_quality(report, train);
  run_serve_closed_loop(report, train, args.smoke, args.seed);
  run_serve_ivf(report, train, args.smoke, args.seed);
  run_serve_quantized(report, train);
  run_pipeline_smoke(report, train, args.seed);
  run_elastic_faults(report, train, args.seed);

  report.write_file(out_path);
  std::printf("# wrote %s (%zu metrics)\n", out_path.c_str(),
              report.metrics.size());

  if (const auto baseline_path = args.cli.get("compare")) {
    const double tolerance = args.cli.get_double("tolerance", 0.25);
    const auto baseline = obs::RegressReport::load_file(*baseline_path);
    const auto result = obs::compare_reports(baseline, report, tolerance);
    std::printf("%s", result.summary().c_str());
    return result.ok ? 0 : 1;
  }
  return 0;
}
