// bench_regress: the pinned-seed canonical perf suite behind CI's perf gate.
//
// Runs three canonical workloads and writes a schema-stable RegressReport
// (BENCH_regress.json by default):
//   * train_smoke        — functional ALS on a synthetic MovieLens-shaped
//                          matrix: final loss/RMSE and modeled seconds;
//   * variant_sweep      — accounting-mode modeled seconds for all 8 code
//                          variants on the same matrix (the Fig. 6 axis);
//   * serve_closed_loop  — closed-loop serving smoke: request conservation,
//                          throughput and tail latency.
// Modeled/deterministic metrics carry gate=true and fail --compare when they
// move past the tolerance; wall-clock and throughput numbers are recorded
// with gate=false (machine-dependent, informational only).
//
//   bench_regress [--smoke] [--seed N] [--json-out BENCH_regress.json]
//                 [--compare baseline.json] [--tolerance 0.25]
//
// Exit status: 0 on success (and a passing compare), 1 on a failed compare.
#include <cstdio>
#include <string>
#include <vector>

#include "als/solver.hpp"
#include "bench_util.hpp"
#include "common/timer.hpp"
#include "data/synthetic.hpp"
#include "devsim/profile.hpp"
#include "obs/events.hpp"
#include "obs/regress.hpp"
#include "recsys/recommender.hpp"
#include "serve/service.hpp"

namespace {

using namespace alsmf;

SyntheticSpec regress_spec(bool smoke, std::uint64_t seed) {
  // MovieLens-shaped: ~5x more users than items, ~20 ratings per user.
  SyntheticSpec spec;
  spec.users = smoke ? 1500 : 6000;
  spec.items = smoke ? 300 : 1200;
  spec.nnz = smoke ? 30000 : 120000;
  spec.seed = seed;
  return spec;
}

void run_train_smoke(obs::RegressReport& report, const Csr& train) {
  AlsOptions options;
  options.k = 8;
  options.iterations = 3;
  options.functional = true;
  const AlsVariant variant = AlsVariant::from_mask(7);
  devsim::Device device(devsim::profile_by_name("gpu"));
  AlsSolver solver(train, options, variant, device);
  obs::EventStream events;
  RunConfig config;
  config.events = &events;
  Timer wall;
  const RunReport run = solver.run(config);
  report.add("train_smoke.final_loss", solver.train_loss(), "loss");
  report.add("train_smoke.final_rmse", solver.train_rmse(), "rmse");
  report.add("train_smoke.modeled_seconds", run.modeled_seconds, "s");
  report.add("train_smoke.iteration_events",
             static_cast<double>(events.size()), "count",
             /*lower_is_better=*/false);
  report.add("train_smoke.wall_seconds", wall.seconds(), "s",
             /*lower_is_better=*/true, /*gate=*/false);
  std::printf("train_smoke: loss %.4f rmse %.4f modeled %.4fs (%d iters)\n",
              solver.train_loss(), solver.train_rmse(), run.modeled_seconds,
              run.iterations);
}

void run_variant_sweep(obs::RegressReport& report, const Csr& train) {
  AlsOptions options = bench::paper_options();
  options.iterations = 2;
  for (unsigned mask = 0; mask < AlsVariant::kVariantCount; ++mask) {
    const AlsVariant variant = AlsVariant::from_mask(mask);
    devsim::Device device(devsim::profile_by_name("gpu"));
    AlsSolver solver(train, options, variant, device);
    const RunReport run = solver.run(RunConfig{});
    report.add("variant_sweep." + variant.name() + ".modeled_seconds",
               run.modeled_seconds, "s");
    std::printf("variant_sweep: %-22s %.6f modeled s\n",
                variant.name().c_str(), run.modeled_seconds);
  }
}

void run_serve_closed_loop(obs::RegressReport& report, const Csr& train,
                           bool smoke, std::uint64_t seed) {
  AlsOptions options;
  options.k = 8;
  options.iterations = 2;
  options.functional = true;
  Recommender rec;
  rec.train(train, options, devsim::profile_by_name("cpu"),
            AlsVariant::from_mask(7));

  serve::ServiceOptions serve_options;
  serve_options.max_batch = 32;
  serve_options.max_wait_us = 100;
  serve_options.cache_capacity = 256;
  serve::RecommendService service(
      serve::snapshot_from_recommender(rec, options.lambda), serve_options);

  const std::size_t requests = smoke ? 2000 : 10000;
  Rng rng(seed);
  Timer wall;
  for (std::size_t i = 0; i < requests; ++i) {
    const auto user = static_cast<index_t>(
        rng() % static_cast<std::uint64_t>(rec.users()));
    (void)service.topn(user, 10);
  }
  const double seconds = wall.seconds();
  service.stop();

  const auto& m = service.metrics();
  const auto violations = m.registry().check_assertions();
  for (const auto& v : violations) {
    std::printf("serve_closed_loop: ASSERTION VIOLATED: %s\n", v.c_str());
  }
  report.add("serve_closed_loop.completed",
             static_cast<double>(m.completed()), "count",
             /*lower_is_better=*/false);
  report.add("serve_closed_loop.assertion_violations",
             static_cast<double>(violations.size()), "count");
  report.add("serve_closed_loop.qps",
             seconds > 0 ? static_cast<double>(requests) / seconds : 0.0,
             "qps", /*lower_is_better=*/false, /*gate=*/false);
  report.add("serve_closed_loop.p99_total_us", m.total_us_percentile(0.99),
             "us", /*lower_is_better=*/true, /*gate=*/false);
  std::printf(
      "serve_closed_loop: %zu requests in %.3fs (%.0f qps), p99 %.1fus\n",
      requests, seconds,
      seconds > 0 ? static_cast<double>(requests) / seconds : 0.0,
      m.total_us_percentile(0.99));
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = alsmf::bench::parse_bench_args(argc, argv);
  const std::string out_path =
      args.json_out.empty() ? "BENCH_regress.json" : args.json_out;

  obs::RegressReport report;
  report.seed = args.seed;
  report.smoke = args.smoke;

  const Csr train = generate_synthetic_csr(regress_spec(args.smoke, args.seed));
  std::printf("# bench_regress: %s suite, seed %llu, %lld x %lld, %lld nnz\n",
              args.smoke ? "smoke" : "full",
              static_cast<unsigned long long>(args.seed),
              static_cast<long long>(train.rows()),
              static_cast<long long>(train.cols()),
              static_cast<long long>(train.nnz()));

  run_train_smoke(report, train);
  run_variant_sweep(report, train);
  run_serve_closed_loop(report, train, args.smoke, args.seed);

  report.write_file(out_path);
  std::printf("# wrote %s (%zu metrics)\n", out_path.c_str(),
              report.metrics.size());

  if (const auto baseline_path = args.cli.get("compare")) {
    const double tolerance = args.cli.get_double("tolerance", 0.25);
    const auto baseline = obs::RegressReport::load_file(*baseline_path);
    const auto result = obs::compare_reports(baseline, report, tolerance);
    std::printf("%s", result.summary().c_str());
    return result.ok ? 0 : 1;
  }
  return 0;
}
