// Closed-loop serving throughput: batched RecommendService vs the naive
// one-request-per-solve path, on a synthetic MovieLens-shaped model under a
// Zipf-distributed user stream (hot repeat users, cold fold-in users).
//
//   bench_serve_throughput [--users N] [--items N] [--k K] [--requests N]
//     [--clients N] [--batch N] [--max-wait-us U] [--cache N]
//     [--foldin-pct P] [--zipf A] [--topn N] [--seed S] [--smoke]
//     [--overload] [--overload-factor F] [--max-queue N] [--deadline-us U]
//
// Each mode replays the same request schedule with `clients` closed-loop
// threads (a client issues its next request as soon as the previous answer
// lands). The first 10% of the stream warms the cache and is not measured.
//
// --overload adds an open-loop phase: clients submit at `overload-factor`
// times the capacity just measured by the closed-loop batched run, against a
// bounded queue with per-request deadlines. It reports the shed rate and the
// p50/p99 latency of the *accepted* requests — the point of overload
// protection is that accepted latency stays bounded while excess load is
// shed at the door instead of growing the queue without limit.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "recsys/batch_score.hpp"
#include "recsys/fold_in.hpp"
#include "serve/service.hpp"

namespace {

using namespace alsmf;
using serve::ModelSnapshot;
using serve::RecommendService;

struct Config {
  index_t users = 6040;   // MovieLens-1M shape
  index_t items = 3706;
  int k = 16;
  std::size_t requests = 60000;
  int clients = 8;
  std::size_t max_batch = 64;
  long max_wait_us = 50;
  std::size_t cache = 4096;
  int foldin_pct = 5;
  double zipf = 1.05;
  int topn = 10;
  std::uint64_t seed = 42;
  real lambda = 0.1f;
};

struct Request {
  bool foldin = false;
  index_t user = 0;                 // top-N request
  std::vector<index_t> fold_items;  // fold-in request
  std::vector<real> fold_ratings;
};

std::vector<Request> make_schedule(const Config& config) {
  Rng rng(config.seed);
  const ZipfSampler user_zipf(static_cast<std::uint64_t>(config.users),
                              config.zipf);
  std::vector<Request> schedule(config.requests);
  for (auto& request : schedule) {
    if (static_cast<int>(rng.bounded(100)) < config.foldin_pct) {
      request.foldin = true;
      // A cold user with ~10 distinct rated items.
      const std::size_t count = 5 + rng.bounded(10);
      std::vector<index_t> items;
      while (items.size() < count) {
        const auto item =
            static_cast<index_t>(rng.bounded(static_cast<std::uint64_t>(config.items)));
        if (std::find(items.begin(), items.end(), item) == items.end()) {
          items.push_back(item);
        }
      }
      request.fold_items = std::move(items);
      for (std::size_t i = 0; i < count; ++i) {
        request.fold_ratings.push_back(
            static_cast<real>(1 + rng.bounded(5)));
      }
    } else {
      request.user = static_cast<index_t>(user_zipf(rng));
    }
  }
  return schedule;
}

std::shared_ptr<ModelSnapshot> make_model(const Config& config) {
  Rng rng(config.seed ^ 0xfac70ULL);
  Matrix x(config.users, config.k), y(config.items, config.k);
  x.fill_uniform(rng, -0.5f, 0.5f);
  y.fill_uniform(rng, -0.5f, 0.5f);
  return serve::snapshot_from_factors(std::move(x), std::move(y), config.lambda);
}

struct RunResult {
  double seconds = 0;
  std::size_t measured = 0;
  Histogram latency_us{0.5, 1.25, 64};
  double cache_hit_rate = 0;
  double mean_batch = 0;
};

/// Replays `schedule` with closed-loop clients; `issue` executes one request
/// and blocks until its answer is ready.
template <class Issue>
RunResult run_clients(const Config& config, const std::vector<Request>& schedule,
                      std::size_t warmup, Issue issue) {
  RunResult result;
  // Warmup phase: fill caches, spin up threads; not measured.
  {
    std::atomic<std::size_t> next{0};
    std::vector<std::jthread> clients;
    for (int c = 0; c < config.clients; ++c) {
      clients.emplace_back([&] {
        for (std::size_t i = next.fetch_add(1); i < warmup;
             i = next.fetch_add(1)) {
          issue(schedule[i]);
        }
      });
    }
  }
  // Measured phase.
  std::vector<Histogram> per_client(
      static_cast<std::size_t>(config.clients), Histogram(0.5, 1.25, 64));
  std::atomic<std::size_t> next{warmup};
  const Timer wall;
  {
    std::vector<std::jthread> clients;
    for (int c = 0; c < config.clients; ++c) {
      clients.emplace_back([&, c] {
        Histogram& h = per_client[static_cast<std::size_t>(c)];
        for (std::size_t i = next.fetch_add(1); i < schedule.size();
             i = next.fetch_add(1)) {
          const Timer t;
          issue(schedule[i]);
          h.add(t.seconds() * 1e6);
        }
      });
    }
  }
  result.seconds = wall.seconds();
  for (const auto& h : per_client) result.latency_us.merge(h);
  result.measured = result.latency_us.count();
  return result;
}

RunResult run_naive(const Config& config, const std::vector<Request>& schedule,
                    std::size_t warmup,
                    const std::shared_ptr<ModelSnapshot>& model) {
  return run_clients(config, schedule, warmup, [&](const Request& request) {
    if (request.foldin) {
      const auto factor = fold_in_user(model->y, request.fold_items,
                                       request.fold_ratings, model->lambda);
      std::vector<index_t> exclude = request.fold_items;
      std::sort(exclude.begin(), exclude.end());
      const auto top = topn_from_factor(factor, model->y, config.topn, nullptr,
                                        -1, exclude);
      if (top.empty()) std::abort();
    } else {
      const auto top =
          topn_from_factor(model->x.row(request.user), model->y, config.topn);
      if (top.empty()) std::abort();
    }
  });
}

RunResult run_batched(const Config& config,
                      const std::vector<Request>& schedule, std::size_t warmup,
                      const std::shared_ptr<ModelSnapshot>& model) {
  serve::ServiceOptions options;
  options.max_batch = config.max_batch;
  options.max_wait_us = config.max_wait_us;
  options.cache_capacity = config.cache;
  RecommendService service(std::make_shared<ModelSnapshot>(*model), options);
  auto result = run_clients(config, schedule, warmup, [&](const Request& request) {
    if (request.foldin) {
      const auto r =
          service.fold_in(request.fold_items, request.fold_ratings, config.topn);
      if (r.topn.empty()) std::abort();
    } else {
      const auto r = service.topn(request.user, config.topn);
      if (r.topn.empty()) std::abort();
    }
  });
  result.cache_hit_rate = service.cache_stats().hit_rate();
  result.mean_batch = service.metrics().mean_batch_size();
  std::printf("# serve stats: %s\n", service.stats_json().c_str());
  return result;
}

/// Open-loop overload phase: submit at `factor` x the measured capacity
/// against a bounded queue with deadlines; all futures are still collected,
/// so no request is ever lost — just answered with a shed status.
void run_overload(const Config& config, const std::vector<Request>& schedule,
                  const std::shared_ptr<ModelSnapshot>& model,
                  double capacity_qps, double factor, std::size_t max_queue,
                  long deadline_us) {
  serve::ServiceOptions options;
  options.max_batch = config.max_batch;
  options.max_wait_us = config.max_wait_us;
  // No result cache: the overload phase measures the queue path itself —
  // with the cache on, hot Zipf users bypass the queue and mask shedding.
  options.cache_capacity = 0;
  options.max_queue = max_queue;
  options.default_deadline_us = deadline_us;
  RecommendService service(std::make_shared<ModelSnapshot>(*model), options);

  const double offered_qps = capacity_qps * factor;
  const auto interval = std::chrono::nanoseconds(static_cast<long long>(
      1e9 * static_cast<double>(config.clients) / offered_qps));
  std::printf(
      "# overload: offering %.0f qps (%.2fx measured capacity %.0f), "
      "max_queue=%zu deadline=%ldus\n",
      offered_qps, factor, capacity_qps, max_queue, deadline_us);

  std::atomic<std::uint64_t> accepted{0}, not_ok{0};
  const Timer wall;
  {
    std::vector<std::jthread> clients;
    for (int c = 0; c < config.clients; ++c) {
      clients.emplace_back([&, c] {
        std::vector<std::future<serve::ServeResult>> futures;
        const auto start = std::chrono::steady_clock::now();
        std::size_t n = 0;
        for (std::size_t i = static_cast<std::size_t>(c); i < schedule.size();
             i += static_cast<std::size_t>(config.clients), ++n) {
          std::this_thread::sleep_until(start + n * interval);
          const Request& request = schedule[i];
          futures.push_back(
              request.foldin
                  ? service.submit_fold_in(request.fold_items,
                                           request.fold_ratings, config.topn)
                  : service.submit_topn(request.user, config.topn));
        }
        for (auto& f : futures) {
          if (f.get().ok()) {
            ++accepted;
          } else {
            ++not_ok;
          }
        }
      });
    }
  }
  const double seconds = wall.seconds();

  const auto& m = service.metrics();
  const auto shed = m.shed_queue_full() + m.shed_deadline();
  const double shed_rate =
      m.submitted() > 0
          ? static_cast<double>(shed) / static_cast<double>(m.submitted())
          : 0.0;
  // Accounting check: every submitted request was either completed or shed.
  if (m.submitted() != m.completed() + shed) std::abort();
  if (accepted + not_ok != schedule.size()) std::abort();

  std::printf("%-9s %9s %9s %10s %9s %9s %8s %8s\n", "overload", "submitted",
              "accepted", "shed_full", "shed_dl", "shed_rate", "p50_us",
              "p99_us");
  std::printf("%-9s %9llu %9llu %10llu %9llu %8.1f%% %8.1f %8.1f\n", "",
              static_cast<unsigned long long>(m.submitted()),
              static_cast<unsigned long long>(m.completed()),
              static_cast<unsigned long long>(m.shed_queue_full()),
              static_cast<unsigned long long>(m.shed_deadline()),
              100.0 * shed_rate, m.total_us_percentile(0.50),
              m.total_us_percentile(0.99));
  std::printf(
      "# overload summary: %.0f qps offered for %.3fs, %.1f%% shed, accepted "
      "p99 %.1fus\n",
      offered_qps, seconds, 100.0 * shed_rate, m.total_us_percentile(0.99));
}

void print_row(const char* mode, const RunResult& r) {
  std::printf("%-8s %9zu %8.3f %9.0f %8.1f %8.1f %8.1f %9.3f %10.1f\n", mode,
              r.measured, r.seconds,
              static_cast<double>(r.measured) / r.seconds,
              r.latency_us.percentile(0.50), r.latency_us.percentile(0.95),
              r.latency_us.percentile(0.99), r.cache_hit_rate, r.mean_batch);
}

}  // namespace

int main(int argc, char** argv) {
  const auto bench_args = alsmf::bench::parse_bench_args(argc, argv);
  const CliArgs& args = bench_args.cli;
  Config config;
  if (bench_args.smoke) {
    config.users = 800;
    config.items = 400;
    config.k = 8;
    config.requests = 4000;
    config.clients = 2;
  }
  config.users = args.get_long("users", config.users);
  config.items = args.get_long("items", config.items);
  config.k = static_cast<int>(args.get_long("k", config.k));
  config.requests =
      static_cast<std::size_t>(args.get_long("requests", static_cast<long>(config.requests)));
  config.clients = static_cast<int>(args.get_long("clients", config.clients));
  config.max_batch =
      static_cast<std::size_t>(args.get_long("batch", static_cast<long>(config.max_batch)));
  config.max_wait_us = args.get_long("max-wait-us", config.max_wait_us);
  config.cache =
      static_cast<std::size_t>(args.get_long("cache", static_cast<long>(config.cache)));
  config.foldin_pct = static_cast<int>(args.get_long("foldin-pct", config.foldin_pct));
  config.zipf = args.get_double("zipf", config.zipf);
  config.topn = static_cast<int>(args.get_long("topn", config.topn));
  config.seed = bench_args.seed;

  std::printf(
      "# serving throughput: %lld users x %lld items, k=%d, %zu requests "
      "(%d%% fold-in, zipf %.2f), %d closed-loop clients\n",
      static_cast<long long>(config.users), static_cast<long long>(config.items),
      config.k, config.requests, config.foldin_pct, config.zipf,
      config.clients);
  std::printf("# batched: max_batch=%zu max_wait=%ldus cache=%zu\n",
              config.max_batch, config.max_wait_us, config.cache);

  const auto schedule = make_schedule(config);
  const auto model = make_model(config);
  const std::size_t warmup = config.requests / 10;

  std::printf("%-8s %9s %8s %9s %8s %8s %8s %9s %10s\n", "mode", "requests",
              "seconds", "qps", "p50_us", "p95_us", "p99_us", "cache_hit",
              "mean_batch");
  const auto naive = run_naive(config, schedule, warmup, model);
  print_row("naive", naive);
  const auto batched = run_batched(config, schedule, warmup, model);
  print_row("batched", batched);

  const double naive_qps = static_cast<double>(naive.measured) / naive.seconds;
  const double batched_qps =
      static_cast<double>(batched.measured) / batched.seconds;
  std::printf("# speedup: %.2fx (batched vs naive QPS)\n",
              batched_qps / naive_qps);

  if (args.has_flag("overload")) {
    const double factor = args.get_double("overload-factor", 2.0);
    const auto max_queue =
        static_cast<std::size_t>(args.get_long("max-queue", 256));
    const long deadline_us = args.get_long("deadline-us", 2000);
    run_overload(config, schedule, model, batched_qps, factor, max_queue,
                 deadline_us);
  }
  return 0;
}
