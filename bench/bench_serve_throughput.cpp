// Closed-loop serving throughput: batched RecommendService vs the naive
// one-request-per-solve path, on a synthetic MovieLens-shaped model under a
// Zipf-distributed user stream (hot repeat users, cold fold-in users).
//
//   bench_serve_throughput [--users N] [--items N] [--k K] [--requests N]
//     [--clients N] [--batch N] [--max-wait-us U] [--cache N]
//     [--foldin-pct P] [--zipf A] [--topn N] [--seed S] [--smoke]
//     [--index exhaustive|ivf] [--nprobe N] [--clusters N] [--json-out F]
//     [--overload] [--overload-factor F] [--max-queue N] [--deadline-us U]
//
// Each mode replays the same request schedule with `clients` closed-loop
// threads (a client issues its next request as soon as the previous answer
// lands). The first 10% of the stream warms the cache and is not measured.
//
// --index=ivf adds a third row: the same batched service scoring through an
// IVF index attached to the snapshot, alongside its recall@topn against the
// exhaustive oracle on the same pinned schedule — QPS and recall side by
// side, so the nprobe trade-off is visible in one run. --json-out writes the
// per-mode table plus the recall/speedup summary machine-readably.
//
// --overload adds an open-loop phase: clients submit at `overload-factor`
// times the capacity just measured by the closed-loop batched run, against a
// bounded queue with per-request deadlines. It reports the shed rate and the
// p50/p99 latency of the *accepted* requests — the point of overload
// protection is that accepted latency stays bounded while excess load is
// shed at the door instead of growing the queue without limit.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/histogram.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "index/ivf_index.hpp"
#include "recsys/batch_score.hpp"
#include "recsys/fold_in.hpp"
#include "recsys/ranking.hpp"
#include "serve/service.hpp"

namespace {

using namespace alsmf;
using serve::ModelSnapshot;
using serve::RecommendService;

struct Config {
  index_t users = 6040;   // MovieLens-1M shape
  index_t items = 3706;
  int k = 16;
  std::size_t requests = 60000;
  int clients = 8;
  std::size_t max_batch = 64;
  long max_wait_us = 50;
  std::size_t cache = 4096;
  int foldin_pct = 5;
  double zipf = 1.05;
  int topn = 10;
  std::uint64_t seed = 42;
  real lambda = 0.1f;
  std::string index_mode = "exhaustive";  // or "ivf"
  int nprobe = 16;       // partitions probed per query in ivf mode
  int ivf_clusters = 0;  // 0 = ~2·sqrt(items) heuristic
};

struct Request {
  bool foldin = false;
  index_t user = 0;                 // top-N request
  std::vector<index_t> fold_items;  // fold-in request
  std::vector<real> fold_ratings;
};

std::vector<Request> make_schedule(const Config& config) {
  Rng rng(config.seed);
  const ZipfSampler user_zipf(static_cast<std::uint64_t>(config.users),
                              config.zipf);
  std::vector<Request> schedule(config.requests);
  for (auto& request : schedule) {
    if (static_cast<int>(rng.bounded(100)) < config.foldin_pct) {
      request.foldin = true;
      // A cold user with ~10 distinct rated items.
      const std::size_t count = 5 + rng.bounded(10);
      std::vector<index_t> items;
      while (items.size() < count) {
        const auto item =
            static_cast<index_t>(rng.bounded(static_cast<std::uint64_t>(config.items)));
        if (std::find(items.begin(), items.end(), item) == items.end()) {
          items.push_back(item);
        }
      }
      request.fold_items = std::move(items);
      for (std::size_t i = 0; i < count; ++i) {
        request.fold_ratings.push_back(
            static_cast<real>(1 + rng.bounded(5)));
      }
    } else {
      request.user = static_cast<index_t>(user_zipf(rng));
    }
  }
  return schedule;
}

/// Mixture-of-topics factors with popularity-skewed item norms — the regime
/// trained ALS factors occupy: items cluster around shared topic/genre
/// directions and popular items carry larger norms. Iid-uniform rows (the
/// old generator) have no coarse structure at all, which is the provably
/// worst case for any partition-based index and does not resemble a trained
/// model; topic structure is what makes the recall/QPS trade-off here
/// representative.
std::shared_ptr<ModelSnapshot> make_model(const Config& config) {
  Rng rng(config.seed ^ 0xfac70ULL);
  constexpr int kTopics = 32;
  constexpr double kNoise = 0.25;
  constexpr double kSkew = 0.25;  // item i norm ~ (i+1)^-kSkew, ids by popularity
  Matrix centers(kTopics, config.k);
  centers.fill_uniform(rng, -0.5f, 0.5f);
  auto gauss = [&rng] {
    double u1 = rng.uniform();
    const double u2 = rng.uniform();
    if (u1 < 1e-12) u1 = 1e-12;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  };
  Matrix x(config.users, config.k), y(config.items, config.k);
  for (index_t i = 0; i < config.items; ++i) {
    const auto t = static_cast<index_t>(
        rng.bounded(static_cast<std::uint64_t>(kTopics)));
    const real scale = static_cast<real>(
        2.0 * std::pow(static_cast<double>(i + 1), -kSkew));
    const real* c = centers.row(t).data();
    real* row = y.row(i).data();
    for (int d = 0; d < config.k; ++d) {
      row[d] = scale * (c[d] + static_cast<real>(kNoise * gauss()));
    }
  }
  for (index_t u = 0; u < config.users; ++u) {
    const auto t = static_cast<index_t>(
        rng.bounded(static_cast<std::uint64_t>(kTopics)));
    const real* c = centers.row(t).data();
    real* row = x.row(u).data();
    for (int d = 0; d < config.k; ++d) {
      row[d] = c[d] + static_cast<real>(kNoise * gauss());
    }
  }
  return serve::snapshot_from_factors(std::move(x), std::move(y), config.lambda);
}

struct RunResult {
  double seconds = 0;
  std::size_t measured = 0;
  Histogram latency_us{0.5, 1.25, 64};
  double cache_hit_rate = 0;
  double mean_batch = 0;
};

/// Replays `schedule` with closed-loop clients; `issue` executes one request
/// and blocks until its answer is ready.
template <class Issue>
RunResult run_clients(const Config& config, const std::vector<Request>& schedule,
                      std::size_t warmup, Issue issue) {
  RunResult result;
  // Warmup phase: fill caches, spin up threads; not measured.
  {
    std::atomic<std::size_t> next{0};
    std::vector<std::jthread> clients;
    for (int c = 0; c < config.clients; ++c) {
      clients.emplace_back([&] {
        for (std::size_t i = next.fetch_add(1); i < warmup;
             i = next.fetch_add(1)) {
          issue(schedule[i]);
        }
      });
    }
  }
  // Measured phase.
  std::vector<Histogram> per_client(
      static_cast<std::size_t>(config.clients), Histogram(0.5, 1.25, 64));
  std::atomic<std::size_t> next{warmup};
  const Timer wall;
  {
    std::vector<std::jthread> clients;
    for (int c = 0; c < config.clients; ++c) {
      clients.emplace_back([&, c] {
        Histogram& h = per_client[static_cast<std::size_t>(c)];
        for (std::size_t i = next.fetch_add(1); i < schedule.size();
             i = next.fetch_add(1)) {
          const Timer t;
          issue(schedule[i]);
          h.add(t.seconds() * 1e6);
        }
      });
    }
  }
  result.seconds = wall.seconds();
  for (const auto& h : per_client) result.latency_us.merge(h);
  result.measured = result.latency_us.count();
  return result;
}

RunResult run_naive(const Config& config, const std::vector<Request>& schedule,
                    std::size_t warmup,
                    const std::shared_ptr<ModelSnapshot>& model) {
  return run_clients(config, schedule, warmup, [&](const Request& request) {
    if (request.foldin) {
      const auto factor = fold_in_user(model->y, request.fold_items,
                                       request.fold_ratings, model->lambda);
      std::vector<index_t> exclude = request.fold_items;
      std::sort(exclude.begin(), exclude.end());
      const auto top = topn_from_factor(factor, model->y, config.topn, nullptr,
                                        -1, exclude);
      if (top.empty()) std::abort();
    } else {
      const auto top =
          topn_from_factor(model->x.row(request.user), model->y, config.topn);
      if (top.empty()) std::abort();
    }
  });
}

RunResult run_batched(const Config& config,
                      const std::vector<Request>& schedule, std::size_t warmup,
                      const std::shared_ptr<ModelSnapshot>& model,
                      std::shared_ptr<const index::IvfIndex> ann = nullptr) {
  serve::ServiceOptions options;
  options.max_batch = config.max_batch;
  options.max_wait_us = config.max_wait_us;
  options.cache_capacity = config.cache;
  options.nprobe = config.nprobe;
  auto snap = std::make_shared<ModelSnapshot>(*model);
  snap->ann = std::move(ann);
  RecommendService service(std::move(snap), options);
  auto result = run_clients(config, schedule, warmup, [&](const Request& request) {
    if (request.foldin) {
      const auto r =
          service.fold_in(request.fold_items, request.fold_ratings, config.topn);
      if (r.topn.empty()) std::abort();
    } else {
      const auto r = service.topn(request.user, config.topn);
      if (r.topn.empty()) std::abort();
    }
  });
  result.cache_hit_rate = service.cache_stats().hit_rate();
  result.mean_batch = service.metrics().mean_batch_size();
  std::printf("# serve stats: %s\n", service.stats_json().c_str());
  return result;
}

/// Open-loop overload phase: submit at `factor` x the measured capacity
/// against a bounded queue with deadlines; all futures are still collected,
/// so no request is ever lost — just answered with a shed status.
void run_overload(const Config& config, const std::vector<Request>& schedule,
                  const std::shared_ptr<ModelSnapshot>& model,
                  double capacity_qps, double factor, std::size_t max_queue,
                  long deadline_us) {
  serve::ServiceOptions options;
  options.max_batch = config.max_batch;
  options.max_wait_us = config.max_wait_us;
  // No result cache: the overload phase measures the queue path itself —
  // with the cache on, hot Zipf users bypass the queue and mask shedding.
  options.cache_capacity = 0;
  options.max_queue = max_queue;
  options.default_deadline_us = deadline_us;
  RecommendService service(std::make_shared<ModelSnapshot>(*model), options);

  const double offered_qps = capacity_qps * factor;
  const auto interval = std::chrono::nanoseconds(static_cast<long long>(
      1e9 * static_cast<double>(config.clients) / offered_qps));
  std::printf(
      "# overload: offering %.0f qps (%.2fx measured capacity %.0f), "
      "max_queue=%zu deadline=%ldus\n",
      offered_qps, factor, capacity_qps, max_queue, deadline_us);

  std::atomic<std::uint64_t> accepted{0}, not_ok{0};
  const Timer wall;
  {
    std::vector<std::jthread> clients;
    for (int c = 0; c < config.clients; ++c) {
      clients.emplace_back([&, c] {
        std::vector<std::future<serve::ServeResult>> futures;
        const auto start = std::chrono::steady_clock::now();
        std::size_t n = 0;
        for (std::size_t i = static_cast<std::size_t>(c); i < schedule.size();
             i += static_cast<std::size_t>(config.clients), ++n) {
          std::this_thread::sleep_until(start + n * interval);
          const Request& request = schedule[i];
          futures.push_back(
              request.foldin
                  ? service.submit_fold_in(request.fold_items,
                                           request.fold_ratings, config.topn)
                  : service.submit_topn(request.user, config.topn));
        }
        for (auto& f : futures) {
          if (f.get().ok()) {
            ++accepted;
          } else {
            ++not_ok;
          }
        }
      });
    }
  }
  const double seconds = wall.seconds();

  const auto& m = service.metrics();
  const auto shed = m.shed_queue_full() + m.shed_deadline();
  const double shed_rate =
      m.submitted() > 0
          ? static_cast<double>(shed) / static_cast<double>(m.submitted())
          : 0.0;
  // Accounting check: every submitted request was either completed or shed.
  if (m.submitted() != m.completed() + shed) std::abort();
  if (accepted + not_ok != schedule.size()) std::abort();

  std::printf("%-9s %9s %9s %10s %9s %9s %8s %8s\n", "overload", "submitted",
              "accepted", "shed_full", "shed_dl", "shed_rate", "p50_us",
              "p99_us");
  std::printf("%-9s %9llu %9llu %10llu %9llu %8.1f%% %8.1f %8.1f\n", "",
              static_cast<unsigned long long>(m.submitted()),
              static_cast<unsigned long long>(m.completed()),
              static_cast<unsigned long long>(m.shed_queue_full()),
              static_cast<unsigned long long>(m.shed_deadline()),
              100.0 * shed_rate, m.total_us_percentile(0.50),
              m.total_us_percentile(0.99));
  std::printf(
      "# overload summary: %.0f qps offered for %.3fs, %.1f%% shed, accepted "
      "p99 %.1fus\n",
      offered_qps, seconds, 100.0 * shed_rate, m.total_us_percentile(0.99));
}

/// Mean recall@topn of the index against the exhaustive oracle, over the
/// first distinct top-N users of the pinned schedule (the same users the
/// throughput phases serve).
double measure_recall(const Config& config, const std::vector<Request>& schedule,
                      const ModelSnapshot& model, const index::IvfIndex& ann) {
  std::vector<index_t> users;
  for (const auto& request : schedule) {
    if (request.foldin) continue;
    if (std::find(users.begin(), users.end(), request.user) == users.end()) {
      users.push_back(request.user);
    }
    if (users.size() >= 200) break;
  }
  const BiasModel* bias = model.has_bias ? &model.bias : nullptr;
  double recall = 0;
  for (const index_t u : users) {
    const auto exact = topn_from_factor(model.x.row(u), model.y, config.topn,
                                        bias, u);
    const auto approx = ann.topn(model.x.row(u), model.y, config.topn,
                                 config.nprobe, bias, u);
    recall += recall_at_n(approx, exact);
  }
  return users.empty() ? 1.0 : recall / static_cast<double>(users.size());
}

double qps_of(const RunResult& r) {
  return r.seconds > 0 ? static_cast<double>(r.measured) / r.seconds : 0.0;
}

void json_mode(json::JsonWriter& w, const char* mode, const RunResult& r,
               double recall) {
  w.begin_object();
  w.field("mode", mode);
  w.field("requests", static_cast<unsigned long long>(r.measured));
  w.field("qps", qps_of(r));
  w.field("p50_us", r.latency_us.percentile(0.50));
  w.field("p95_us", r.latency_us.percentile(0.95));
  w.field("p99_us", r.latency_us.percentile(0.99));
  w.field("cache_hit_rate", r.cache_hit_rate);
  w.field("mean_batch", r.mean_batch);
  // Exhaustive modes are their own oracle: recall 1 by construction.
  w.field("recall_at_n", recall);
  w.end_object();
}

void print_row(const char* mode, const RunResult& r) {
  std::printf("%-8s %9zu %8.3f %9.0f %8.1f %8.1f %8.1f %9.3f %10.1f\n", mode,
              r.measured, r.seconds,
              static_cast<double>(r.measured) / r.seconds,
              r.latency_us.percentile(0.50), r.latency_us.percentile(0.95),
              r.latency_us.percentile(0.99), r.cache_hit_rate, r.mean_batch);
}

}  // namespace

int main(int argc, char** argv) {
  const auto bench_args = alsmf::bench::parse_bench_args(argc, argv);
  const CliArgs& args = bench_args.cli;
  Config config;
  if (bench_args.smoke) {
    config.users = 800;
    config.items = 400;
    config.k = 8;
    config.requests = 4000;
    config.clients = 2;
  }
  config.users = args.get_long("users", config.users);
  config.items = args.get_long("items", config.items);
  config.k = static_cast<int>(args.get_long("k", config.k));
  config.requests =
      static_cast<std::size_t>(args.get_long("requests", static_cast<long>(config.requests)));
  config.clients = static_cast<int>(args.get_long("clients", config.clients));
  config.max_batch =
      static_cast<std::size_t>(args.get_long("batch", static_cast<long>(config.max_batch)));
  config.max_wait_us = args.get_long("max-wait-us", config.max_wait_us);
  config.cache =
      static_cast<std::size_t>(args.get_long("cache", static_cast<long>(config.cache)));
  config.foldin_pct = static_cast<int>(args.get_long("foldin-pct", config.foldin_pct));
  config.zipf = args.get_double("zipf", config.zipf);
  config.topn = static_cast<int>(args.get_long("topn", config.topn));
  config.seed = bench_args.seed;
  config.index_mode = args.get_or("index", config.index_mode);
  config.nprobe = static_cast<int>(args.get_long("nprobe", config.nprobe));
  config.ivf_clusters =
      static_cast<int>(args.get_long("clusters", config.ivf_clusters));
  if (config.index_mode != "exhaustive" && config.index_mode != "ivf") {
    std::fprintf(stderr, "unknown --index mode '%s' (exhaustive|ivf)\n",
                 config.index_mode.c_str());
    return 2;
  }

  std::printf(
      "# serving throughput: %lld users x %lld items, k=%d, %zu requests "
      "(%d%% fold-in, zipf %.2f), %d closed-loop clients\n",
      static_cast<long long>(config.users), static_cast<long long>(config.items),
      config.k, config.requests, config.foldin_pct, config.zipf,
      config.clients);
  std::printf("# batched: max_batch=%zu max_wait=%ldus cache=%zu\n",
              config.max_batch, config.max_wait_us, config.cache);

  const auto schedule = make_schedule(config);
  const auto model = make_model(config);
  const std::size_t warmup = config.requests / 10;

  std::printf("%-8s %9s %8s %9s %8s %8s %8s %9s %10s\n", "mode", "requests",
              "seconds", "qps", "p50_us", "p95_us", "p99_us", "cache_hit",
              "mean_batch");
  const auto naive = run_naive(config, schedule, warmup, model);
  print_row("naive", naive);
  const auto batched = run_batched(config, schedule, warmup, model);
  print_row("batched", batched);

  const double naive_qps = qps_of(naive);
  const double batched_qps = qps_of(batched);
  std::printf("# speedup: %.2fx (batched vs naive QPS)\n",
              batched_qps / naive_qps);

  RunResult ivf;
  double ivf_recall = 0;
  std::shared_ptr<const index::IvfIndex> ann;
  if (config.index_mode == "ivf") {
    index::IvfOptions ivf_options;
    ivf_options.clusters = config.ivf_clusters;
    ivf_options.seed = config.seed;
    if (config.nprobe > 0) ivf_options.nprobe = config.nprobe;
    ann = index::IvfIndex::build(model->y, ivf_options,
                                 model->has_bias ? &model->bias : nullptr);
    const auto& bs = ann->build_stats();
    std::printf("# ivf: clusters=%d nprobe=%d build=%.3fs imbalance=%.2f\n",
                bs.clusters, config.nprobe, bs.build_seconds, bs.imbalance);
    ivf_recall = measure_recall(config, schedule, *model, *ann);
    ivf = run_batched(config, schedule, warmup, model, ann);
    print_row("ivf", ivf);
    std::printf(
        "# ivf: recall@%d %.4f vs exhaustive oracle, speedup %.2fx vs batched "
        "exhaustive (%.2fx vs naive)\n",
        config.topn, ivf_recall, qps_of(ivf) / batched_qps,
        qps_of(ivf) / naive_qps);
  }

  if (!bench_args.json_out.empty()) {
    json::JsonWriter w;
    w.begin_object();
    w.field("bench", "serve_throughput");
    w.field("seed", static_cast<unsigned long long>(config.seed));
    w.field("users", static_cast<long long>(config.users));
    w.field("items", static_cast<long long>(config.items));
    w.field("k", config.k);
    w.field("topn", config.topn);
    w.field("zipf", config.zipf);
    w.field("cache", static_cast<unsigned long long>(config.cache));
    w.field("index", config.index_mode);
    w.key("modes").begin_array();
    json_mode(w, "naive", naive, 1.0);
    json_mode(w, "batched", batched, 1.0);
    if (ann) json_mode(w, "ivf", ivf, ivf_recall);
    w.end_array();
    w.field("speedup_batched_vs_naive", batched_qps / naive_qps);
    if (ann) {
      w.field("speedup_ivf_vs_batched", qps_of(ivf) / batched_qps);
      w.key("ivf").begin_object();
      w.field("clusters", ann->build_stats().clusters);
      w.field("nprobe", config.nprobe);
      w.field("build_seconds", ann->build_stats().build_seconds);
      w.field("imbalance", ann->build_stats().imbalance);
      w.field("recall_at_n", ivf_recall);
      w.end_object();
    }
    w.end_object();
    std::ofstream(bench_args.json_out) << w.str() << "\n";
    std::printf("# wrote %s\n", bench_args.json_out.c_str());
  }

  if (args.has_flag("overload")) {
    const double factor = args.get_double("overload-factor", 2.0);
    const auto max_queue =
        static_cast<std::size_t>(args.get_long("max-queue", 256));
    const long deadline_us = args.get_long("deadline-us", 2000);
    run_overload(config, schedule, model, batched_qps, factor, max_queue,
                 deadline_us);
  }
  return 0;
}
