// Table I: dataset statistics — and evidence the synthetic replicas match
// the originals' shape (density, mean ratings/user, skew).
#include <cstdio>

#include "bench_util.hpp"
#include "sparse/stats.hpp"

int main(int argc, char** argv) {
  using namespace alsmf;
  using namespace alsmf::bench;
  (void)argc;
  (void)argv;

  print_header("Table I — datasets and their synthetic replicas",
               "Table I (m, n, training Nz per dataset)");

  std::printf("%-6s %10s %9s %12s | %7s %10s %9s %11s | %9s %9s %8s\n",
              "Abbr", "m", "n", "Nz", "scale", "m'", "n'", "Nz'",
              "mean nnz/u", "max nnz/u", "gini");
  for (const auto& info : table1_datasets()) {
    const double scale = default_scale(info);
    const Csr replica = make_replica(info.abbr, scale);
    const SliceStats rows = row_stats(replica);
    std::printf("%-6s %10lld %9lld %12lld | %7.0f %10lld %9lld %11lld | %9.1f %9lld %8.3f\n",
                info.abbr.c_str(), static_cast<long long>(info.users),
                static_cast<long long>(info.items),
                static_cast<long long>(info.nnz), scale,
                static_cast<long long>(replica.rows()),
                static_cast<long long>(replica.cols()),
                static_cast<long long>(replica.nnz()), rows.mean,
                static_cast<long long>(rows.max), rows.gini);
  }
  std::printf("\nPaper Table I values: MVLE 71567x65133/8000044, "
              "NTFX 480189x17770/99072112,\n"
              "YMR1 1948882x98212/115248575, YMR4 7642x11916/211231.\n");
  return 0;
}
