#include "bench_util.hpp"

#include <algorithm>
#include <cmath>

#include "als/solver.hpp"

namespace alsmf::bench {

BenchArgs parse_bench_args(int argc, const char* const* argv) {
  BenchArgs args{CliArgs(argc, argv), 1.0, false, 42, ""};
  args.scale = args.cli.get_double("scale", 1.0);
  // Legacy convention: a bare numeric positional is the scale multiplier.
  if (!args.cli.positional().empty()) {
    try {
      args.scale = std::stod(args.cli.positional().front());
    } catch (const std::exception&) {
      // Non-numeric positional: leave the flag value in place.
    }
  }
  args.smoke = args.cli.has_flag("smoke");
  if (args.smoke) args.scale *= 8.0;
  args.seed = static_cast<std::uint64_t>(args.cli.get_long("seed", 42));
  args.json_out = args.cli.get_or("json-out", "");
  return args;
}

double default_scale(const DatasetInfo& info) {
  const double target_nnz = 5e5;
  double scale = static_cast<double>(info.nnz) / target_nnz;
  if (scale <= 1.0) return 1.0;
  // Round to the nearest power of two for tidy reporting.
  return std::pow(2.0, std::round(std::log2(scale)));
}

std::vector<BenchDataset> load_table1(double extra_scale) {
  std::vector<BenchDataset> result;
  for (const auto& info : table1_datasets()) {
    BenchDataset d;
    d.abbr = info.abbr;
    d.scale = std::max(1.0, default_scale(info) * extra_scale);
    d.train = make_replica(info.abbr, d.scale);
    result.push_back(std::move(d));
  }
  return result;
}

AlsOptions paper_options() {
  AlsOptions o;
  o.k = 10;
  o.lambda = 0.1f;
  o.iterations = 5;
  o.num_groups = 8192;
  o.group_size = 32;
  o.functional = false;
  return o;
}

RunTimes run_als(const BenchDataset& data, const AlsOptions& options,
                 const AlsVariant& variant,
                 const devsim::DeviceProfile& profile) {
  devsim::Device device(profile);
  AlsSolver solver(data.train, options, variant, device);
  solver.run(RunConfig{});
  RunTimes t;
  t.replica = device.modeled_seconds();
  t.full = device.modeled_seconds_scaled(data.scale);
  return t;
}

void print_header(const char* title, const char* paper_ref) {
  std::printf("================================================================\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("Times are modeled device seconds; `full` extrapolates the\n");
  std::printf("replica's counters to the full Table I dataset size.\n");
  std::printf("================================================================\n\n");
}

}  // namespace alsmf::bench
