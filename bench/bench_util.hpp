// Shared helpers for the figure/table reproduction benches.
//
// Each bench loads downscaled Table I replicas (generation cost and host
// memory bound the scale), runs the kernels in accounting-only mode, and
// reports two numbers per configuration:
//   * replica  — modeled seconds on the generated replica;
//   * full     — the same counters extrapolated to the full dataset size
//                (counters are linear in problem size; see devsim).
// The paper's published numbers correspond to the `full` column's shape.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "als/options.hpp"
#include "common/cli.hpp"
#include "data/datasets.hpp"
#include "devsim/device.hpp"
#include "sparse/csr.hpp"

namespace alsmf::bench {

/// Flags shared by every bench main:
///   --scale S     extra downscale multiplier (>1 shrinks the replicas);
///                 a bare numeric positional argument is accepted too (the
///                 legacy `bench_figN 8` calling convention)
///   --smoke       quick CI-sized run (multiplies the scale by 8)
///   --seed N      RNG seed for benches that randomize
///   --json-out F  machine-readable output path for benches that export one
/// Bench-specific flags stay available through `cli`.
struct BenchArgs {
  CliArgs cli;
  double scale = 1.0;  ///< effective scale (smoke multiplier applied)
  bool smoke = false;
  std::uint64_t seed = 42;
  std::string json_out;
};

BenchArgs parse_bench_args(int argc, const char* const* argv);

struct BenchDataset {
  std::string abbr;
  double scale = 1.0;  ///< full-size / replica-size factor
  Csr train;
};

/// Default replica scale per dataset: full size divided down so each
/// replica lands near ~500k nonzeros (YMR4 runs at full scale).
double default_scale(const DatasetInfo& info);

/// Loads all four Table I replicas (paper order), honoring an optional
/// scale multiplier (>1 shrinks further; useful for quick runs).
std::vector<BenchDataset> load_table1(double extra_scale = 1.0);

/// The paper's experiment configuration: k=10, lambda=0.1, 5 iterations,
/// 8192 x 32 thread configuration, accounting-only execution.
AlsOptions paper_options();

/// Runs one ALS configuration and returns {replica_seconds, full_seconds}.
struct RunTimes {
  double replica = 0;
  double full = 0;
};
RunTimes run_als(const BenchDataset& data, const AlsOptions& options,
                 const AlsVariant& variant, const devsim::DeviceProfile& profile);

/// Prints the standard bench header line.
void print_header(const char* title, const char* paper_ref);

}  // namespace alsmf::bench
