// alsmf_cli: an end-user command-line tool over the library.
//
//   alsmf_cli train     --ratings r.txt --model m.bin [--k 10] [--lambda 0.1]
//                       [--iters 10] [--device cpu|gpu|mic] [--profile file]
//                       [--wr] [--variant auto|learned|0..7]
//                       [--row-solver cholesky|cg|subspace] [--cg-iters 3]
//                       [--subspace-block 0] [--anderson-m 0]
//                       (--row-solver picks the S3 strategy — see
//                       docs/solvers.md; --anderson-m M > 0 turns on
//                       Anderson acceleration of the outer iteration)
//                       [--checkpoint-dir dir] [--checkpoint-every N]
//                       [--metrics-out m.prom] [--events-out e.jsonl]
//                       [--trace-out t.json]
//                       (crash-safe: rerunning the same command resumes from
//                       the newest valid checkpoint in dir; the three *-out
//                       flags write Prometheus text, a per-iteration JSONL
//                       event stream, and a Chrome trace with wall spans)
//   alsmf_cli train-multi --ratings r.txt [--model m.bin] [--k 10]
//                       [--lambda 0.1] [--iters 10] [--wr] [--variant 0..7]
//                       [--devices N|gpu,gpu,cpu] [--device cpu|gpu|mic]
//                       [--fail-at STEP|DEV:STEP] [--straggler-prob P]
//                       [--link-fault-prob P] [--device-fail-prob P]
//                       [--seed S] [--deadline-factor 3.0]
//                       [--checkpoint-dir dir] [--checkpoint-every N]
//                       [--metrics-out m.prom] [--report-out r.json]
//                       (elastic multi-device training under an injected
//                       fault schedule; prints a JSON recovery report and
//                       exits non-zero if any run invariant was violated)
//   alsmf_cli predict   --model m.bin --user U --item I
//   alsmf_cli recommend --model m.bin --user U [--n 10] [--ratings r.txt]
//   alsmf_cli evaluate  --model m.bin --test t.txt
//   alsmf_cli tune      --ratings r.txt [--iters 8]
//   alsmf_cli shard     --ratings r.txt --out dir [--max-nnz 1000000]
//   alsmf_cli train-ooc --shards dir --model m.bin [--k 10] [--iters 10]
//   alsmf_cli rank      --model m.bin --train r.txt --test t.txt [--n 10]
//   alsmf_cli serve     --model m.bin [--batch 64] [--max-wait-us 200]
//                       [--cache 4096] [--lambda 0.1] [--max-queue 0]
//                       [--deadline-us 0] [--index exhaustive|ivf]
//                       [--nprobe 16] [--clusters 0]
//                       (--index=ivf scores top-N through an IVF index built
//                       over the item factors; `swap` rebuilds the index for
//                       the incoming model so the pair stays matched)
//   alsmf_cli pipeline  --ratings r.txt --checkpoint-dir dir [--k 10]
//                       [--iters 10] [--checkpoint-every 1] [--device cpu]
//                       [--index exhaustive|ivf] [--nprobe 16] [--clusters 0]
//                       [--clients 2] [--zipf 1.05] [--topn 10] [--seed 42]
//                       [--max-staleness 1] [--resume]
//                       (continuous train -> checkpoint -> index build ->
//                       hot-swap loop under closed-loop Zipf load; prints the
//                       pipeline report JSON and exits non-zero if any
//                       invariant — request conservation, staleness bound —
//                       was violated)
//   alsmf_cli devices   [--profile file]
//   alsmf_cli check-kernels [--profiles cpu,gpu,mic] [--users 300]
//                       [--items 200] [--nnz 6000] [--k 10] [--json out.json]
//                       (checked-execution sweep of every kernel variant;
//                       exits non-zero on any finding — the CI gate)
//   alsmf_cli analyze-kernels [--profiles cpu,gpu,mic] [--users 300]
//                       [--items 200] [--nnz 6000] [--k 10] [--group-size 32]
//                       [--groups 48] [--tile-rows N] [--json out.json]
//                       (static sweep: deep lint + a per-kernel static
//                       profile from the access IR, zero launches; exits
//                       non-zero on any deep-lint diagnostic)
//   alsmf_cli verify-kernels [--profiles cpu,gpu,mic] [--k 10]
//                       [--group-size 32] [--tile-rows N] [--json out.json]
//                       (static bounds & race verifier over the access IR:
//                       every reference must be proven in bounds and every
//                       may-happen-in-parallel pair proven race-free under
//                       the ALS buffer contracts; unprovable fails — exits
//                       non-zero on any non-proven verdict, zero launches)
//   alsmf_cli analyze-precision [--k 10] [--group-size 32] [--tile-rows N]
//                       [--omega-max 4096] [--rating-bound 5] [--witness 0|1]
//                       [--json out.json]
//                       (static precision certificates for every kernel
//                       flavor — interval x rounding-error abstract
//                       interpretation under the ALS operating assumptions —
//                       plus the dynamic shadow-precision witness on the
//                       fp16/bf16 flavors; exits non-zero if any flavor is
//                       overflow-possible, nan-possible at the output store,
//                       or the static bound fails to dominate the witness)
//
// Ratings files use the paper's `<userID, itemID, rating>` text format.
#include <fstream>
#include <iostream>
#include <sstream>

#include <cstdlib>

#include "als/analyze_kernels.hpp"
#include "als/check_kernels.hpp"
#include "als/precision_kernels.hpp"
#include "als/verify_kernels.hpp"
#include "als/metrics.hpp"
#include "als/multi_device.hpp"
#include "als/learned_select.hpp"
#include "als/out_of_core.hpp"
#include "als/solver.hpp"
#include "als/variant_select.hpp"
#include "common/timer.hpp"
#include "recsys/ranking.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "devsim/profile_io.hpp"
#include "index/ivf_index.hpp"
#include "common/json.hpp"
#include "obs/events.hpp"
#include "obs/registry.hpp"
#include "robust/fault_injection.hpp"
#include "robust/fault_metrics.hpp"
#include "robust/guards.hpp"
#include "pipeline/pipeline.hpp"
#include "recsys/recommender.hpp"
#include "recsys/tuning.hpp"
#include "serve/service.hpp"
#include "sparse/convert.hpp"
#include "sparse/io.hpp"

namespace {

using namespace alsmf;

devsim::DeviceProfile resolve_profile(const CliArgs& args) {
  if (auto path = args.get("profile")) {
    return devsim::read_profile_file(*path);
  }
  return devsim::profile_by_name(args.get_or("device", "cpu"));
}

int cmd_train(const CliArgs& args) {
  const auto ratings_path = args.get("ratings");
  const auto model_path = args.get("model");
  if (!ratings_path || !model_path) {
    std::cerr << "train requires --ratings and --model\n";
    return 2;
  }
  Coo ratings = read_ratings_file(*ratings_path);
  ratings.canonicalize();  // raw logs may repeat (user, item) pairs
  const Csr train = coo_to_csr(ratings);
  AlsOptions options;
  options.k = static_cast<int>(args.get_long("k", 10));
  options.lambda = static_cast<real>(args.get_double("lambda", 0.1));
  options.iterations = static_cast<int>(args.get_long("iters", 10));
  options.weighted_regularization = args.has_flag("wr");
  options.row_solver = parse_row_solver(args.get_or("row-solver", "cholesky"));
  options.cg_iters = static_cast<int>(args.get_long("cg-iters", 3));
  options.subspace_block =
      static_cast<int>(args.get_long("subspace-block", 0));
  options.anderson_m = static_cast<int>(args.get_long("anderson-m", 0));

  const auto profile = resolve_profile(args);
  const std::string variant_arg = args.get_or("variant", "auto");
  AlsVariant variant;
  if (variant_arg == "auto") {
    variant = select_variant_heuristic(train, options, profile);
  } else if (variant_arg == "learned") {
    const DecisionTree tree =
        train_variant_selector(generate_selector_corpus());
    variant = select_variant_learned(tree, train, options, profile);
  } else {
    variant =
        AlsVariant::from_mask(static_cast<unsigned>(std::stoul(variant_arg)));
  }

  const auto ckpt_dir = args.get("checkpoint-dir");
  const auto metrics_out = args.get("metrics-out");
  const auto events_out = args.get("events-out");
  const auto trace_out = args.get("trace-out");

  Recommender rec;
  TrainReport report;
  if (ckpt_dir || metrics_out || events_out || trace_out) {
    // Drive the solver directly: checkpointed/resumable runs and runs with
    // observability sinks attached go through the unified run(RunConfig).
    RunConfig run_config;
    if (ckpt_dir) {
      CheckpointConfig config;
      config.dir = *ckpt_dir;
      config.every = static_cast<int>(args.get_long("checkpoint-every", 1));
      run_config.checkpoint = config;
      run_config.resume = true;
    }
    obs::EventStream events;
    devsim::TraceRecorder trace;
    if (events_out) run_config.events = &events;
    if (trace_out) run_config.trace = &trace;
    if (metrics_out) run_config.metrics = &obs::Registry::global();
    Timer wall;
    devsim::Device device(profile);
    AlsSolver solver(train, options, variant, device);
    const RunReport run_report = solver.run(run_config);
    if (run_report.resumed_from >= 0) {
      std::cout << "resumed from checkpoint at iteration "
                << run_report.resumed_from << "\n";
    }
    report.modeled_seconds = run_report.modeled_seconds;
    report.wall_seconds = wall.seconds();
    report.train_rmse = solver.train_rmse();
    report.variant = variant;
    report.device = profile.name;
    rec = Recommender::from_factors(solver.x(), solver.y());
    std::cout << "robustness: " << solver.robustness_report().to_json() << "\n";
    if (metrics_out) {
      std::ofstream out(*metrics_out);
      out << obs::Registry::global().prometheus_text();
      std::cout << "metrics: " << *metrics_out << "\n";
    }
    if (events_out) {
      events.write_file(*events_out);
      std::cout << "events: " << *events_out << " (" << events.size()
                << " records)\n";
    }
    if (trace_out) {
      trace.write_chrome_trace_file(*trace_out);
      std::cout << "trace: " << *trace_out << "\n";
    }
  } else {
    report = rec.train(train, options, profile, variant);
  }
  rec.save_file(*model_path);
  std::cout << "trained " << train.rows() << "x" << train.cols() << " ("
            << train.nnz() << " ratings) on " << report.device
            << "\n  variant: " << report.variant.name()
            << "\n  modeled device seconds: " << report.modeled_seconds
            << "\n  train RMSE: " << report.train_rmse << "\n  model: "
            << *model_path << "\n";
  return 0;
}

// Elastic multi-device training with optional fault injection. Prints a
// JSON recovery report; exits non-zero when a run invariant is violated
// (metrics conservation assertions, non-finite factors, incomplete run).
int cmd_train_multi(const CliArgs& args) {
  const auto ratings_path = args.get("ratings");
  if (!ratings_path) {
    std::cerr << "train-multi requires --ratings\n";
    return 2;
  }
  Coo ratings = read_ratings_file(*ratings_path);
  ratings.canonicalize();
  const Csr train = coo_to_csr(ratings);

  AlsOptions options;
  options.k = static_cast<int>(args.get_long("k", 10));
  options.lambda = static_cast<real>(args.get_double("lambda", 0.1));
  options.iterations = static_cast<int>(args.get_long("iters", 10));
  options.weighted_regularization = args.has_flag("wr");
  const std::string variant_arg = args.get_or("variant", "3");
  const AlsVariant variant =
      AlsVariant::from_mask(static_cast<unsigned>(std::stoul(variant_arg)));

  // --devices N (copies of --device/--profile) or a comma list of names.
  std::vector<devsim::DeviceProfile> profiles;
  const std::string devices_arg = args.get_or("devices", "2");
  if (devices_arg.find_first_not_of("0123456789") == std::string::npos) {
    const auto n = std::stoul(devices_arg);
    const auto profile = resolve_profile(args);
    profiles.assign(n, profile);
  } else {
    std::stringstream ss(devices_arg);
    std::string name;
    while (std::getline(ss, name, ',')) {
      if (!name.empty()) profiles.push_back(devsim::profile_by_name(name));
    }
  }

  ElasticOptions elastic;
  elastic.straggler_deadline_factor =
      args.get_double("deadline-factor", elastic.straggler_deadline_factor);

  // Fault plan: seeded probabilities plus exact kills. --fail-at takes
  // STEP or DEV:STEP (0-based shard-launch index of that device).
  robust::FaultPlan plan;
  if (auto seed = args.get("seed")) {
    plan.seed = std::strtoull(seed->c_str(), nullptr, 10);
  } else if (const char* env = std::getenv("ALSMF_FAULT_SEED")) {
    plan.seed = std::strtoull(env, nullptr, 10);
  } else {
    plan.seed = 42;
  }
  plan.probability[static_cast<int>(robust::FaultSite::kStraggler)] =
      args.get_double("straggler-prob", 0.0);
  plan.probability[static_cast<int>(robust::FaultSite::kLinkTransfer)] =
      args.get_double("link-fault-prob", 0.0);
  plan.probability[static_cast<int>(robust::FaultSite::kDeviceFailure)] =
      args.get_double("device-fail-prob", 0.0);
  if (auto fail_at = args.get("fail-at")) {
    std::uint64_t dev = 0, step = 0;
    const auto colon = fail_at->find(':');
    if (colon == std::string::npos) {
      step = std::strtoull(fail_at->c_str(), nullptr, 10);
    } else {
      dev = std::strtoull(fail_at->substr(0, colon).c_str(), nullptr, 10);
      step = std::strtoull(fail_at->substr(colon + 1).c_str(), nullptr, 10);
    }
    plan.exact[static_cast<int>(robust::FaultSite::kDeviceFailure)].push_back(
        robust::fault_key(dev, step));
  }
  robust::ScopedFaultInjector scoped(plan);

  obs::Registry registry;
  MultiDeviceAls solver(train, options, variant, profiles, elastic);
  MultiRunConfig config;
  config.metrics = &registry;
  if (auto ckpt_dir = args.get("checkpoint-dir")) {
    CheckpointConfig ckpt;
    ckpt.dir = *ckpt_dir;
    ckpt.every = static_cast<int>(args.get_long("checkpoint-every", 1));
    config.checkpoint = ckpt;
    config.resume = true;
  }
  Timer wall;
  const MultiRunReport run_report = solver.run(config);
  robust::export_fault_metrics(scoped.injector(), registry);

  // Run invariants: every metrics assertion, finite factors, a complete run.
  std::vector<std::string> violations = registry.check_assertions();
  if (solver.iterations_done() < options.iterations) {
    violations.push_back("run incomplete: " +
                         std::to_string(solver.iterations_done()) + " of " +
                         std::to_string(options.iterations) + " iterations");
  }
  if (!robust::nonfinite_rows(solver.x()).empty() ||
      !robust::nonfinite_rows(solver.y()).empty()) {
    violations.push_back("non-finite factor rows after training");
  }

  json::JsonWriter report;
  report.begin_object()
      .field("iterations", run_report.iterations)
      .field("resumed_from", run_report.resumed_from)
      .field("modeled_seconds", run_report.modeled_seconds)
      .field("communication_seconds", solver.communication_seconds())
      .field("wall_seconds", wall.seconds())
      .field("train_rmse", rmse(train, solver.x(), solver.y()))
      .field("fault_seed", plan.seed)
      .field_raw("elastic", run_report.elastic.to_json())
      .key("violations")
      .begin_array();
  for (const auto& v : violations) report.value(v);
  report.end_array().end_object();
  std::cout << report.str() << "\n";

  if (auto model_path = args.get("model")) {
    Recommender::from_factors(solver.x(), solver.y()).save_file(*model_path);
    std::cout << "model: " << *model_path << "\n";
  }
  if (auto metrics_out = args.get("metrics-out")) {
    std::ofstream out(*metrics_out);
    out << registry.prometheus_text();
    std::cout << "metrics: " << *metrics_out << "\n";
  }
  if (auto report_out = args.get("report-out")) {
    std::ofstream out(*report_out);
    out << report.str() << "\n";
  }
  for (const auto& v : violations) {
    std::cerr << "invariant violated: " << v << "\n";
  }
  return violations.empty() ? 0 : 1;
}

int cmd_predict(const CliArgs& args) {
  const auto model_path = args.get("model");
  if (!model_path) {
    std::cerr << "predict requires --model\n";
    return 2;
  }
  const Recommender rec = Recommender::load_file(*model_path);
  const index_t user = args.get_long("user", 0);
  const index_t item = args.get_long("item", 0);
  std::cout << rec.predict(user, item) << "\n";
  return 0;
}

int cmd_recommend(const CliArgs& args) {
  const auto model_path = args.get("model");
  if (!model_path) {
    std::cerr << "recommend requires --model\n";
    return 2;
  }
  const Recommender rec = Recommender::load_file(*model_path);
  const index_t user = args.get_long("user", 0);
  const int n = static_cast<int>(args.get_long("n", 10));
  Csr rated;
  const Csr* rated_ptr = nullptr;
  if (auto path = args.get("ratings")) {
    Coo coo = read_ratings_file(*path);
    coo.canonicalize();
    rated = coo_to_csr(coo);
    rated_ptr = &rated;
  }
  for (const auto& r : rec.recommend(user, n, rated_ptr)) {
    std::cout << r.item << "\t" << r.score << "\n";
  }
  return 0;
}

int cmd_evaluate(const CliArgs& args) {
  const auto model_path = args.get("model");
  const auto test_path = args.get("test");
  if (!model_path || !test_path) {
    std::cerr << "evaluate requires --model and --test\n";
    return 2;
  }
  const Recommender rec = Recommender::load_file(*model_path);
  const Coo test = read_ratings_file(*test_path);
  std::cout << "test RMSE: " << rec.rmse_on(test) << " over " << test.nnz()
            << " ratings\n";
  return 0;
}

int cmd_tune(const CliArgs& args) {
  const auto ratings_path = args.get("ratings");
  if (!ratings_path) {
    std::cerr << "tune requires --ratings\n";
    return 2;
  }
  Coo ratings = read_ratings_file(*ratings_path);
  ratings.canonicalize();
  TuningGrid grid;
  grid.iterations = static_cast<int>(args.get_long("iters", 8));
  const TuningResult result = grid_search(ratings, grid);
  std::cout << "k\tlambda\tvalid RMSE\ttrain RMSE\n";
  for (const auto& c : result.all) {
    std::cout << c.k << "\t" << c.lambda << "\t" << c.validation_rmse << "\t"
              << c.train_rmse << "\n";
  }
  std::cout << "best: k=" << result.best.k << " lambda=" << result.best.lambda
            << " (valid RMSE " << result.best.validation_rmse << ")\n";
  return 0;
}

int cmd_shard(const CliArgs& args) {
  const auto ratings_path = args.get("ratings");
  const auto out_dir = args.get("out");
  if (!ratings_path || !out_dir) {
    std::cerr << "shard requires --ratings and --out\n";
    return 2;
  }
  Coo ratings = read_ratings_file(*ratings_path);
  ratings.canonicalize();
  const Csr r = coo_to_csr(ratings);
  const Csr rt = transpose(r);
  const nnz_t budget = args.get_long("max-nnz", 1000000);
  const auto sr = write_sharded(r, *out_dir + "/r", budget);
  const auto st = write_sharded(rt, *out_dir + "/rt", budget);
  std::cout << "sharded " << r.rows() << "x" << r.cols() << " (" << r.nnz()
            << " nnz) into " << sr.shards.size() << " + " << st.shards.size()
            << " shards under " << *out_dir << "\n";
  return 0;
}

int cmd_train_ooc(const CliArgs& args) {
  const auto shards = args.get("shards");
  const auto model_path = args.get("model");
  if (!shards || !model_path) {
    std::cerr << "train-ooc requires --shards and --model\n";
    return 2;
  }
  AlsOptions options;
  options.k = static_cast<int>(args.get_long("k", 10));
  options.lambda = static_cast<real>(args.get_double("lambda", 0.1));
  options.iterations = static_cast<int>(args.get_long("iters", 10));
  options.weighted_regularization = args.has_flag("wr");
  const auto result =
      out_of_core_als(*shards + "/r", *shards + "/rt", options);
  // Persist through the Recommender's model format: wrap the factors.
  std::ofstream out(*model_path, std::ios::binary);
  if (!out.good()) {
    std::cerr << "cannot write " << *model_path << "\n";
    return 1;
  }
  // Reuse Recommender serialization by constructing through load-compatible
  // bytes: simplest is an in-memory Recommender round-trip via npy-free
  // save. Recommender lacks a factor-injection API by design; write the v1
  // format directly (magic + two matrices).
  const char magic[8] = {'A', 'L', 'S', 'M', 'D', 'L', '0', '1'};
  out.write(magic, sizeof(magic));
  auto write_matrix = [&](const Matrix& m) {
    const std::int64_t rows = m.rows(), cols = m.cols();
    out.write(reinterpret_cast<const char*>(&rows), sizeof rows);
    out.write(reinterpret_cast<const char*>(&cols), sizeof cols);
    out.write(reinterpret_cast<const char*>(m.data()),
              static_cast<std::streamsize>(m.size() * sizeof(real)));
  };
  write_matrix(result.x);
  write_matrix(result.y);
  std::cout << "out-of-core training done (peak resident shard "
            << result.peak_resident_nnz << " nnz); model: " << *model_path
            << "\n";
  return 0;
}

int cmd_rank(const CliArgs& args) {
  const auto model_path = args.get("model");
  const auto train_path = args.get("train");
  const auto test_path = args.get("test");
  if (!model_path || !train_path || !test_path) {
    std::cerr << "rank requires --model, --train and --test\n";
    return 2;
  }
  const Recommender rec = Recommender::load_file(*model_path);
  Coo train_coo = read_ratings_file(*train_path);
  train_coo.canonicalize();
  Coo test_coo = read_ratings_file(*test_path);
  test_coo.canonicalize();
  // Resize both to the model's dimensions.
  Coo train_sized(rec.users(), rec.items()), test_sized(rec.users(), rec.items());
  for (const auto& t : train_coo.entries()) train_sized.add(t.row, t.col, t.value);
  for (const auto& t : test_coo.entries()) test_sized.add(t.row, t.col, t.value);
  const int n = static_cast<int>(args.get_long("n", 10));
  const RankingMetrics m =
      evaluate_ranking(coo_to_csr(train_sized), coo_to_csr(test_sized),
                       rec.user_factors(), rec.item_factors(), n);
  std::cout << "users evaluated: " << m.evaluated_users
            << "\nhit rate@" << n << ": " << m.hit_rate
            << "\nprecision@" << n << ": " << m.precision
            << "\nrecall@" << n << ": " << m.recall
            << "\nNDCG@" << n << ": " << m.ndcg
            << "\nAUC: " << m.auc << "\n";
  return 0;
}

// Interactive serving loop over a RecommendService. Commands on stdin:
//   rec U [N]                  top-N for user U
//   predict U I                predicted rating for (U, I)
//   foldin I:R [I:R ...]       fold in a new user from item:rating pairs
//   swap PATH                  hot-swap to the model at PATH (zero downtime)
//   stats                      print the serving metrics JSON
//   quit                       exit (stats are printed on exit too)
int cmd_serve(const CliArgs& args) {
  const auto model_path = args.get("model");
  if (!model_path) {
    std::cerr << "serve requires --model\n";
    return 2;
  }
  const real lambda = static_cast<real>(args.get_double("lambda", 0.1));
  serve::ServiceOptions options;
  options.max_batch =
      static_cast<std::size_t>(args.get_long("batch", 64));
  options.max_wait_us = args.get_long("max-wait-us", 200);
  options.cache_capacity =
      static_cast<std::size_t>(args.get_long("cache", 4096));
  options.max_queue = static_cast<std::size_t>(args.get_long("max-queue", 0));
  options.default_deadline_us = args.get_long("deadline-us", 0);
  const std::string index_mode = args.get_or("index", "exhaustive");
  if (index_mode != "exhaustive" && index_mode != "ivf") {
    std::cerr << "unknown --index mode '" << index_mode
              << "' (exhaustive|ivf)\n";
    return 2;
  }
  options.nprobe = static_cast<int>(args.get_long("nprobe", 16));
  index::IvfOptions ivf_options;
  ivf_options.clusters = static_cast<int>(args.get_long("clusters", 0));
  ivf_options.nprobe = options.nprobe;

  const Recommender rec = Recommender::load_file(*model_path);
  auto snap = serve::snapshot_from_recommender(rec, lambda);
  if (index_mode == "ivf") serve::attach_ivf_index(*snap, ivf_options);
  serve::RecommendService service(std::move(snap), options);
  std::cout << "serving " << rec.users() << " users x " << rec.items()
            << " items (model v" << service.model_version() << ", "
            << index_mode << " top-N); "
            << "commands: rec, predict, foldin, swap, stats, quit\n";

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd) || cmd.empty() || cmd[0] == '#') continue;
    try {
      if (cmd == "rec") {
        index_t user = 0;
        int n = 10;
        in >> user >> n;
        const auto result = service.topn(user, n);
        for (const auto& r : result.topn) {
          std::cout << r.item << "\t" << r.score << "\n";
        }
        std::cout << "# model v" << result.model_version
                  << (result.cache_hit ? " (cached)" : "");
        if (!result.ok()) std::cout << " status=" << to_string(result.status);
        std::cout << "\n";
      } else if (cmd == "predict") {
        index_t user = 0, item = 0;
        in >> user >> item;
        const auto result = service.predict(user, item);
        std::cout << result.score << "\t# model v" << result.model_version
                  << "\n";
      } else if (cmd == "foldin") {
        std::vector<index_t> items;
        std::vector<real> ratings;
        std::string pair;
        while (in >> pair) {
          const auto colon = pair.find(':');
          ALSMF_CHECK_MSG(colon != std::string::npos,
                          "foldin expects item:rating pairs");
          items.push_back(std::stoll(pair.substr(0, colon)));
          ratings.push_back(std::stof(pair.substr(colon + 1)));
        }
        const auto result = service.fold_in(items, ratings, 10);
        for (const auto& r : result.topn) {
          std::cout << r.item << "\t" << r.score << "\n";
        }
        std::cout << "# model v" << result.model_version << "\n";
      } else if (cmd == "swap") {
        std::string path;
        in >> path;
        const Recommender next = Recommender::load_file(path);
        auto next_snap = serve::snapshot_from_recommender(next, lambda);
        // Rebuild the index for the incoming factors: the snapshot always
        // carries a matched model+index pair through the swap.
        if (index_mode == "ivf") serve::attach_ivf_index(*next_snap, ivf_options);
        service.swap_model(std::move(next_snap));
        std::cout << "# swapped to model v" << service.model_version() << " ("
                  << path << ")\n";
      } else if (cmd == "stats") {
        std::cout << service.stats_json() << "\n";
      } else if (cmd == "quit" || cmd == "exit") {
        break;
      } else {
        std::cout << "# unknown command: " << cmd << "\n";
      }
    } catch (const std::exception& e) {
      std::cout << "# error: " << e.what() << "\n";
    }
  }
  std::cout << service.stats_json() << "\n";
  return 0;
}

int cmd_pipeline(const CliArgs& args) {
  const auto ratings_path = args.get("ratings");
  const auto checkpoint_dir = args.get("checkpoint-dir");
  if (!ratings_path || !checkpoint_dir) {
    std::cerr << "pipeline requires --ratings and --checkpoint-dir\n";
    return 2;
  }
  const std::string index_mode = args.get_or("index", "ivf");
  if (index_mode != "exhaustive" && index_mode != "ivf") {
    std::cerr << "unknown --index mode '" << index_mode
              << "' (exhaustive|ivf)\n";
    return 2;
  }

  Coo ratings = read_ratings_file(*ratings_path);
  ratings.canonicalize();  // raw logs may repeat (user, item) pairs
  const Csr train = coo_to_csr(ratings);

  pipeline::PipelineOptions options;
  options.als.k = static_cast<int>(args.get_long("k", 10));
  options.als.lambda = static_cast<real>(args.get_double("lambda", 0.1));
  options.als.iterations = static_cast<int>(args.get_long("iters", 10));
  options.als.functional = true;
  options.device = args.get_or("device", "cpu");
  options.checkpoint_dir = *checkpoint_dir;
  options.checkpoint_every =
      static_cast<int>(args.get_long("checkpoint-every", 1));
  options.resume = args.has_flag("resume");
  options.use_index = index_mode == "ivf";
  options.ivf.clusters = static_cast<int>(args.get_long("clusters", 0));
  options.ivf.nprobe = static_cast<int>(args.get_long("nprobe", 16));
  options.serve.nprobe = options.ivf.nprobe;
  options.clients = static_cast<int>(args.get_long("clients", 2));
  options.zipf = args.get_double("zipf", 1.05);
  options.topn = static_cast<int>(args.get_long("topn", 10));
  options.load_seed = static_cast<std::uint64_t>(args.get_long("seed", 42));
  options.max_staleness =
      static_cast<int>(args.get_long("max-staleness", 1));

  const auto report = pipeline::run_pipeline(train, options);
  std::cout << report.to_json() << "\n";
  if (!report.ok()) {
    for (const auto& v : report.assertion_violations) {
      std::cerr << "invariant violated: " << v << "\n";
    }
    return 1;
  }
  return 0;
}

int cmd_devices(const CliArgs& args) {
  if (auto path = args.get("profile")) {
    const auto p = devsim::read_profile_file(*path);
    std::cout << "custom profile: " << p.name << " ("
              << devsim::to_string(p.kind) << ", " << p.compute_units
              << " CUs x " << p.simd_width << " lanes, "
              << p.peak_gflops() << " GFLOP/s peak)\n";
    return 0;
  }
  for (const char* name : {"cpu", "gpu", "mic"}) {
    const auto p = devsim::profile_by_name(name);
    std::cout << name << ": " << p.name << " — " << p.compute_units
              << " CUs x " << p.simd_width << " lanes @ " << p.clock_ghz
              << " GHz, " << p.mem_bw_gbs << " GB/s\n";
  }
  return 0;
}

int cmd_check_kernels(const CliArgs& args) {
  CheckKernelsOptions options;
  options.users = args.get_long("users", options.users);
  options.items = args.get_long("items", options.items);
  options.nnz = args.get_long("nnz", options.nnz);
  options.k = static_cast<int>(args.get_long("k", options.k));
  options.group_size =
      static_cast<int>(args.get_long("group-size", options.group_size));
  options.num_groups = static_cast<std::size_t>(
      args.get_long("groups", static_cast<long>(options.num_groups)));
  if (auto profiles = args.get("profiles")) {
    options.profiles.clear();
    std::stringstream ss(*profiles);
    std::string name;
    while (std::getline(ss, name, ',')) {
      if (!name.empty()) options.profiles.push_back(name);
    }
  }

  const auto result = check_kernels(options);
  if (auto json_path = args.get("json")) {
    std::ofstream out(*json_path);
    out << result.to_json() << "\n";
  }
  std::size_t clean_entries = 0;
  for (const auto& entry : result.entries) {
    if (entry.report.clean()) {
      ++clean_entries;
      continue;
    }
    std::cout << entry.profile << "/" << entry.kernel << ": "
              << entry.report.total_findings << " finding(s)\n";
    for (const auto& finding : entry.report.findings) {
      std::cout << "  " << finding.to_string() << "\n";
    }
  }
  for (const auto& issue : result.lint_issues) {
    std::cout << "lint: " << issue << "\n";
  }
  std::cout << "check-kernels: " << result.entries.size() << " kernel/profile "
            << "combinations, " << result.launches << " checked launches, "
            << clean_entries << " clean, " << result.total_findings
            << " finding(s), " << result.lint_issues.size()
            << " lint issue(s)\n";
  return result.clean() ? 0 : 1;
}

int cmd_analyze_kernels(const CliArgs& args) {
  AnalyzeKernelsOptions options;
  options.users = args.get_long("users", options.users);
  options.items = args.get_long("items", options.items);
  options.nnz = args.get_long("nnz", options.nnz);
  options.k = static_cast<int>(args.get_long("k", options.k));
  options.group_size =
      static_cast<int>(args.get_long("group-size", options.group_size));
  options.num_groups = static_cast<std::size_t>(
      args.get_long("groups", static_cast<long>(options.num_groups)));
  options.tile_rows = args.get_long("tile-rows", options.tile_rows);
  if (auto profiles = args.get("profiles")) {
    options.profiles.clear();
    std::stringstream ss(*profiles);
    std::string name;
    while (std::getline(ss, name, ',')) {
      if (!name.empty()) options.profiles.push_back(name);
    }
  }

  const auto result = analyze_kernels(options);
  if (auto json_path = args.get("json")) {
    std::ofstream out(*json_path);
    out << result.to_json() << "\n";
  }
  for (const auto& entry : result.entries) {
    const auto& d = entry.data;
    std::cout << entry.profile << "/" << entry.kernel << ": groups=" << d.groups
              << " passes=" << d.passes << " tile=" << d.tile_rows
              << " local=" << d.local_alloc_bytes << "B regs="
              << d.register_estimate << " offchip="
              << static_cast<long long>(d.counters.global_bytes +
                                        d.counters.spill_bytes)
              << "B scattered=" << d.counters.scattered_accesses << "\n";
  }
  for (const auto& issue : result.lint_issues) {
    std::cout << "deep-lint: " << issue << "\n";
  }
  std::cout << "analyze-kernels: " << result.entries.size()
            << " kernel/profile combinations, " << result.lint_issues.size()
            << " diagnostic(s)\n";
  return result.clean() ? 0 : 1;
}

int cmd_analyze_precision(const CliArgs& args) {
  PrecisionKernelsOptions options;
  options.k = static_cast<int>(args.get_long("k", options.k));
  options.group_size =
      static_cast<int>(args.get_long("group-size", options.group_size));
  options.tile_rows = args.get_long("tile-rows", options.tile_rows);
  options.witness = args.get_long("witness", 1) != 0;
  auto& as = options.assumptions;
  as.omega_max = static_cast<double>(args.get_long(
      "omega-max", static_cast<long>(as.omega_max)));
  as.rating_bound = static_cast<double>(args.get_long(
      "rating-bound", static_cast<long>(as.rating_bound)));

  const auto result = analyze_precision_kernels(options);
  if (auto json_path = args.get("json")) {
    std::ofstream out(*json_path);
    out << result.to_json() << "\n";
  }
  for (const auto& err : result.errors) {
    std::cout << "error: " << err << "\n";
  }
  std::size_t certified = 0, witnessed = 0;
  for (const auto& e : result.entries) {
    const auto& r = e.report;
    certified += r.certified ? 1 : 0;
    witnessed += e.witness_ran ? 1 : 0;
    std::cout << e.kernel << ": storage=" << r.storage
              << (r.certified ? " certified" : " UNCERTIFIED")
              << " |x|<=" << r.output_ceiling << " err<=" << r.output.err;
    if (e.witness_ran) {
      std::cout << " observed=" << e.observed_err
                << (e.dominated ? " dominated" : " DOMINANCE-VIOLATED")
                << (e.witness_overflow ? " OVERFLOWED" : "");
    }
    std::cout << "\n";
    for (const auto& f : r.findings) {
      if (!ocl::analyze::precision::gates_certification(f.kind)) continue;
      std::cout << "  " << to_string(f.kind) << " line " << f.line << " "
                << f.what << ": " << f.message << "\n";
    }
  }
  std::cout << "analyze-precision: " << result.entries.size() << " kernels, "
            << certified << " certified, " << witnessed
            << " witnessed, " << result.errors.size() << " error(s)\n";
  return result.clean() ? 0 : 1;
}

int cmd_verify_kernels(const CliArgs& args) {
  VerifyKernelsOptions options;
  options.k = static_cast<int>(args.get_long("k", options.k));
  options.group_size =
      static_cast<int>(args.get_long("group-size", options.group_size));
  options.tile_rows = args.get_long("tile-rows", options.tile_rows);
  if (auto profiles = args.get("profiles")) {
    options.profiles.clear();
    std::stringstream ss(*profiles);
    std::string name;
    while (std::getline(ss, name, ',')) {
      if (!name.empty()) options.profiles.push_back(name);
    }
  }

  const auto result = verify_kernels(options);
  if (auto json_path = args.get("json")) {
    std::ofstream out(*json_path);
    out << result.to_json() << "\n";
  }
  for (const auto& err : result.errors) {
    std::cout << "error: " << err << "\n";
  }
  for (const auto& d : result.diagnostics) {
    std::cout << d << "\n";
  }
  long refs = 0, safe = 0, violating = 0, unprovable = 0;
  long pairs = 0, races = 0, races_unprovable = 0;
  for (const auto& e : result.entries) {
    refs += e.report.refs_total;
    safe += e.report.refs_proven_safe;
    violating += e.report.refs_proven_violating;
    unprovable += e.report.refs_unprovable;
    pairs += e.report.pairs_checked;
    races += e.report.races_proven;
    races_unprovable += e.report.races_unprovable;
  }
  std::cout << "verify-kernels: " << result.entries.size()
            << " kernel/profile combinations, " << refs << " references ("
            << safe << " proven safe, " << violating << " violating, "
            << unprovable << " unprovable), " << pairs << " MHP pairs ("
            << races << " races, " << races_unprovable << " unprovable)\n";
  return result.clean() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace alsmf;
  CliArgs args(argc, argv);
  if (args.positional().empty()) {
    std::cerr << "usage: alsmf_cli <train|train-multi|predict|recommend|"
                 "evaluate|tune|shard|train-ooc|rank|serve|pipeline|devices|"
                 "check-kernels|analyze-kernels|verify-kernels|"
                 "analyze-precision> "
                 "[options]\n";
    return 2;
  }
  const std::string& cmd = args.positional().front();
  try {
    if (cmd == "train") return cmd_train(args);
    if (cmd == "train-multi") return cmd_train_multi(args);
    if (cmd == "predict") return cmd_predict(args);
    if (cmd == "recommend") return cmd_recommend(args);
    if (cmd == "evaluate") return cmd_evaluate(args);
    if (cmd == "tune") return cmd_tune(args);
    if (cmd == "shard") return cmd_shard(args);
    if (cmd == "train-ooc") return cmd_train_ooc(args);
    if (cmd == "rank") return cmd_rank(args);
    if (cmd == "serve") return cmd_serve(args);
    if (cmd == "pipeline") return cmd_pipeline(args);
    if (cmd == "devices") return cmd_devices(args);
    if (cmd == "check-kernels") return cmd_check_kernels(args);
    if (cmd == "analyze-kernels") return cmd_analyze_kernels(args);
    if (cmd == "verify-kernels") return cmd_verify_kernels(args);
    if (cmd == "analyze-precision") return cmd_analyze_precision(args);
    std::cerr << "unknown command: " << cmd << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
