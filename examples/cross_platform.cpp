// Portability demo (§III-D): train the same dataset on the three device
// profiles the paper evaluates, auto-selecting a code variant per
// architecture, and compare modeled execution times.
//
//   ./cross_platform [--dataset MVLE|NTFX|YMR1|YMR4] [--scale 256]
#include <cstdio>

#include "als/solver.hpp"
#include "als/variant_select.hpp"
#include "common/cli.hpp"
#include "data/datasets.hpp"

int main(int argc, char** argv) {
  using namespace alsmf;
  CliArgs args(argc, argv);

  const std::string abbr = args.get_or("dataset", "MVLE");
  const double scale = args.get_double("scale", 256.0);
  const Csr train = make_replica(abbr, scale);
  std::printf("Dataset %s replica at 1/%.0f scale: %lld x %lld, %lld nnz\n\n",
              abbr.c_str(), scale, static_cast<long long>(train.rows()),
              static_cast<long long>(train.cols()),
              static_cast<long long>(train.nnz()));

  AlsOptions options;
  options.k = static_cast<int>(args.get_long("k", 10));
  options.lambda = 0.1f;
  options.iterations = static_cast<int>(args.get_long("iters", 5));

  std::printf("%-18s %-18s %14s %14s %10s\n", "device", "variant",
              "modeled [s]", "wall [s]", "RMSE");
  for (const char* name : {"cpu", "gpu", "mic"}) {
    const auto profile = devsim::profile_by_name(name);
    const AlsVariant variant =
        select_variant_heuristic(train, options, profile);
    devsim::Device device(profile);
    AlsSolver solver(train, options, variant, device);
    const double modeled = solver.run(RunConfig{}).modeled_seconds;
    std::printf("%-18s %-18s %14.4f %14.4f %10.4f\n", profile.name.c_str(),
                variant.name().c_str(), modeled, solver.wall_seconds(),
                solver.train_rmse());
  }
  return 0;
}
