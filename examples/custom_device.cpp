// Portability punchline: model an accelerator that did not exist when the
// paper was written, from a plain-text profile, and let the selectors pick
// a code variant for it — no recompilation, exactly the "emerging
// hardware" workflow the paper motivates (Observation 2).
//
//   ./custom_device [--profile my_device.txt] [--dataset NTFX] [--scale 256]
#include <cstdio>
#include <sstream>

#include "als/autotune.hpp"
#include "als/variant_select.hpp"
#include "common/cli.hpp"
#include "data/datasets.hpp"
#include "devsim/profile_io.hpp"

int main(int argc, char** argv) {
  using namespace alsmf;
  CliArgs args(argc, argv);

  devsim::DeviceProfile profile;
  if (auto path = args.get("profile")) {
    profile = devsim::read_profile_file(*path);
  } else {
    // A plausible embedded-GPU-like accelerator, defined inline the same
    // way a user would write the profile file.
    std::istringstream spec(R"(
name = Hypothetical EmbeddedGPU
kind = gpu
compute_units = 4
simd_width = 64
clock_ghz = 0.9
issue_per_cu = 2
pipeline_efficiency = 0.1
groups_in_flight_per_cu = 8
mem_bw_gbs = 34
cache_bw_gbs = 300
scattered_transaction_bytes = 64
local_mem_bytes = 32768
has_hw_local_mem = 1
rereads_cached = 0
private_arrays_offchip = 1
global_latency_slots = 4
launch_overhead_us = 12
)");
    profile = devsim::read_profile(spec);
  }

  std::printf("device: %s (%s) — %d CUs x %d lanes, %.0f GB/s, %.0f GFLOP/s\n\n",
              profile.name.c_str(), devsim::to_string(profile.kind),
              profile.compute_units, profile.simd_width, profile.mem_bw_gbs,
              profile.peak_gflops());

  const Csr train = make_replica(args.get_or("dataset", "NTFX"),
                                 args.get_double("scale", 256.0));
  AlsOptions options;
  options.k = static_cast<int>(args.get_long("k", 10));
  options.iterations = 5;

  std::printf("variant scores (cost model):\n");
  for (const auto& s : score_variants(train, options, profile)) {
    std::printf("  %-20s %10.4f s\n", s.variant.name().c_str(),
                s.modeled_seconds);
  }

  const TunedConfig tuned = autotune(train, options, profile);
  std::printf("\nautotuned configuration: %s  (%.4f modeled s)\n",
              tuned.to_string().c_str(), tuned.modeled_seconds);
  return 0;
}
