// Exports the OpenCL C kernels for all code variants (the sources a
// deployment on real OpenCL hardware would compile) and a modeled-timeline
// Chrome trace of one training run.
//
//   ./export_kernels [--out /tmp/alsmf_kernels] [--k 10] [--group 32]
//                    [--trace /tmp/alsmf_trace.json] [--device gpu]
#include <iostream>

#include "als/solver.hpp"
#include "common/cli.hpp"
#include "data/datasets.hpp"
#include "devsim/trace.hpp"
#include "ocl/kernel_source.hpp"

int main(int argc, char** argv) {
  using namespace alsmf;
  CliArgs args(argc, argv);

  ocl::KernelConfig config;
  config.k = static_cast<int>(args.get_long("k", 10));
  config.group_size = static_cast<int>(args.get_long("group", 32));
  const std::string out_dir = args.get_or("out", "/tmp/alsmf_kernels");
  const int files = ocl::write_kernel_files(out_dir, config);
  const std::string driver = ocl::write_host_driver(
      out_dir, AlsVariant::batch_local_reg(), config);
  std::cout << "wrote " << files << " OpenCL kernels + host driver ("
            << driver << ") to " << out_dir << "\n";
  std::cout << "build: cc -O2 " << driver << " -lOpenCL -o als_ocl\n";
  std::cout << "build options: " << ocl::build_options(config) << "\n\n";

  // Print one kernel as a sample.
  std::cout << ocl::batched_kernel_source(AlsVariant::batch_local_reg(),
                                          config)
            << "\n";

  // Modeled timeline of a short training run.
  const std::string trace_path = args.get_or("trace", "/tmp/alsmf_trace.json");
  const Csr train = make_replica("YMR4", 8.0);
  AlsOptions options;
  options.k = config.k;
  options.iterations = 3;
  devsim::TraceRecorder trace;
  devsim::Device device(devsim::profile_by_name(args.get_or("device", "gpu")));
  AlsSolver solver(train, options, AlsVariant::batch_local_reg(), device);
  RunConfig run_config;
  run_config.trace = &trace;
  solver.run(run_config);
  trace.write_chrome_trace_file(trace_path);
  std::cout << "wrote a " << trace.events().size()
            << "-event modeled timeline to " << trace_path
            << " (open in chrome://tracing)\n";
  return 0;
}
