// Implicit-feedback recommendation (the paper's §I: ALS "can incorporate
// implicit ratings"): train on interaction counts, evaluate with ranking
// metrics (hit rate / NDCG / AUC), and serve top-N.
//
//   ./implicit_recommender [--users 1500] [--items 800] [--nnz 30000]
//                          [--alpha 20] [--k 10]
#include <iostream>

#include "als/implicit.hpp"
#include "common/cli.hpp"
#include "data/split.hpp"
#include "data/synthetic.hpp"
#include "recsys/ranking.hpp"
#include "sparse/convert.hpp"

int main(int argc, char** argv) {
  using namespace alsmf;
  CliArgs args(argc, argv);

  // Interaction counts (e.g. play counts): reuse the synthetic generator
  // with non-integer "strengths" mapped to small counts.
  SyntheticSpec spec;
  spec.users = args.get_long("users", 1500);
  spec.items = args.get_long("items", 800);
  spec.nnz = args.get_long("nnz", 30000);
  spec.min_rating = 1.0f;
  spec.max_rating = 8.0f;  // interaction counts 1..8
  spec.seed = static_cast<std::uint64_t>(args.get_long("seed", 19));
  const Coo all = generate_synthetic(spec);

  auto [train_coo, test_coo] = split_leave_one_out(all, 5);
  const Csr train = coo_to_csr(train_coo);
  Coo test_sized(train.rows(), train.cols());
  for (const auto& t : test_coo.entries()) test_sized.add(t.row, t.col, t.value);
  const Csr test = coo_to_csr(test_sized);

  ImplicitOptions options;
  options.k = static_cast<int>(args.get_long("k", 10));
  options.alpha = static_cast<real>(args.get_double("alpha", 20.0));
  options.iterations = static_cast<int>(args.get_long("iters", 10));

  std::cout << "Training implicit ALS (k=" << options.k
            << ", alpha=" << options.alpha << ") on " << train.nnz()
            << " interactions...\n";
  const ImplicitResult model = implicit_als(train, options);

  const RankingMetrics m = evaluate_ranking(train, test, model.x, model.y, 10);
  std::cout << "Leave-one-out ranking quality over " << m.evaluated_users
            << " users:\n"
            << "  hit rate@10:  " << m.hit_rate << "\n"
            << "  precision@10: " << m.precision << "\n"
            << "  recall@10:    " << m.recall << "\n"
            << "  NDCG@10:      " << m.ndcg << "\n"
            << "  AUC:          " << m.auc << "\n";
  return 0;
}
