// Cost-model diagnostic: run one ALS configuration and dump the recorded
// device activity and time components per kernel section. Useful when
// calibrating device profiles or studying where modeled time goes.
//
//   ./model_explorer --dataset NTFX --scale 64 --device cpu
//                    [--variant 0..7|flat] [--group 32] [--k 10]
#include <cstdio>

#include "als/solver.hpp"
#include "baselines/cumf_like.hpp"
#include "common/cli.hpp"
#include "data/datasets.hpp"

int main(int argc, char** argv) {
  using namespace alsmf;
  CliArgs args(argc, argv);

  const Csr train =
      make_replica(args.get_or("dataset", "NTFX"), args.get_double("scale", 64.0));

  AlsOptions options;
  options.k = static_cast<int>(args.get_long("k", 10));
  options.iterations = static_cast<int>(args.get_long("iters", 5));
  options.group_size = static_cast<int>(args.get_long("group", 32));
  options.functional = !args.has_flag("functional-off") ? false : false;
  options.functional = args.has_flag("functional");

  AlsVariant variant;
  const std::string vname = args.get_or("variant", "0");
  if (vname == "flat") {
    variant = AlsVariant::flat_baseline();
  } else {
    variant = AlsVariant::from_mask(static_cast<unsigned>(std::stoul(vname)));
  }

  const auto profile = devsim::profile_by_name(args.get_or("device", "cpu"));
  devsim::Device device(profile);
  double total = 0;
  if (args.has_flag("cumf")) {
    CumfLikeAls cumf(train, options, device);
    total = cumf.run();
  } else {
    AlsSolver solver(train, options, variant, device);
    total = solver.run(RunConfig{}).modeled_seconds;
  }

  std::printf("device=%s variant=%s k=%d group=%d  modeled=%.6f s\n\n",
              profile.name.c_str(), variant.name().c_str(), options.k,
              options.group_size, total);
  std::printf("%-16s %10s %10s %10s | %12s %12s %12s %12s %12s\n", "kernel",
              "compute[s]", "memory[s]", "ovh[s]", "ops_scalar", "ops_vector",
              "glob[MB]", "scat[Macc]", "spill[MB]");
  for (const auto& [name, s] : device.stats()) {
    std::printf("%-16s %10.4f %10.4f %10.4f | %12.3g %12.3g %12.2f %12.2f %12.2f\n",
                name.c_str(), s.time.compute_s, s.time.memory_s,
                s.time.overhead_s, s.counters.lane_ops_scalar,
                s.counters.lane_ops_vector, s.counters.global_bytes / 1e6,
                s.counters.scattered_accesses / 1e6,
                s.counters.spill_bytes / 1e6);
  }
  std::printf("\nlocal traffic [MB]: ");
  for (const auto& [name, s] : device.stats()) {
    std::printf("%s=%.1f  ", name.c_str(), s.counters.local_bytes / 1e6);
  }
  std::printf("\n");
  return 0;
}
