// Domain example: a movie recommender trained from a ratings file in the
// paper's `<userID, itemID, rating>` text format (MovieLens-compatible).
//
//   ./movielens_recommender --ratings path/to/ratings.dat [--k 16]
//
// Without --ratings it generates a MovieLens10M-shaped synthetic replica
// (Table I, downscaled) so the example runs out of the box.
#include <algorithm>
#include <iostream>

#include "common/cli.hpp"
#include "data/datasets.hpp"
#include "data/split.hpp"
#include "recsys/recommender.hpp"
#include "sparse/convert.hpp"
#include "sparse/io.hpp"
#include "sparse/stats.hpp"

int main(int argc, char** argv) {
  using namespace alsmf;
  CliArgs args(argc, argv);

  Coo all;
  if (auto path = args.get("ratings")) {
    std::cout << "Loading ratings from " << *path << "...\n";
    all = read_ratings_file(*path);
  } else {
    const double scale = args.get_double("scale", 256.0);
    std::cout << "No --ratings given; generating a MovieLens10M replica at "
              << "1/" << scale << " scale...\n";
    all = generate_synthetic(replica_spec(dataset_by_abbr("MVLE"), scale));
  }

  auto [train_coo, test_coo] = split_holdout(all, 0.1, 99);
  const Csr train = coo_to_csr(train_coo);
  const SliceStats rows = row_stats(train);
  std::cout << "Dataset: " << train.rows() << " users, " << train.cols()
            << " items, " << train.nnz() << " train ratings\n"
            << "  ratings/user: mean " << rows.mean << ", max " << rows.max
            << ", imbalance " << rows.imbalance << "\n\n";

  AlsOptions options;
  options.k = static_cast<int>(args.get_long("k", 16));
  options.lambda = static_cast<real>(args.get_double("lambda", 0.1));
  options.iterations = static_cast<int>(args.get_long("iters", 12));

  Recommender rec;
  const auto profile = devsim::profile_by_name(args.get_or("device", "cpu"));
  const TrainReport report = rec.train(train, options, profile);
  std::cout << "Trained (" << report.variant.name() << " on " << report.device
            << "): train RMSE " << report.train_rmse << ", test RMSE "
            << rec.rmse_on(test_coo) << "\n\n";

  // Show recommendations for the three most active users.
  std::vector<std::pair<nnz_t, index_t>> activity;
  for (index_t u = 0; u < train.rows(); ++u) activity.push_back({train.row_nnz(u), u});
  std::sort(activity.rbegin(), activity.rend());
  for (int rank = 0; rank < 3 && rank < static_cast<int>(activity.size()); ++rank) {
    const index_t u = activity[static_cast<std::size_t>(rank)].second;
    std::cout << "User " << u << " (" << activity[static_cast<std::size_t>(rank)].first
              << " ratings) top-3 unseen items:\n";
    for (const auto& r : rec.recommend(u, 3, &train)) {
      std::cout << "  item " << r.item << "  predicted " << r.score << "\n";
    }
  }

  // Model round-trip, as a deployment would do.
  const std::string model_path = args.get_or("model-out", "/tmp/alsmf_model.bin");
  rec.save_file(model_path);
  Recommender restored = Recommender::load_file(model_path);
  std::cout << "\nModel saved to " << model_path << " and reloaded; test RMSE "
            << restored.rmse_on(test_coo) << "\n";
  return 0;
}
