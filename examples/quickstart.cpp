// Quickstart: generate a small synthetic rating matrix, train the portable
// ALS recommender, and serve a few recommendations.
//
//   ./quickstart [--users 2000] [--items 1500] [--nnz 60000] [--k 10]
//                [--device cpu|gpu|mic]
#include <iostream>

#include "common/cli.hpp"
#include "data/split.hpp"
#include "data/synthetic.hpp"
#include "recsys/recommender.hpp"
#include "sparse/convert.hpp"

int main(int argc, char** argv) {
  using namespace alsmf;
  CliArgs args(argc, argv);

  SyntheticSpec spec;
  spec.users = args.get_long("users", 2000);
  spec.items = args.get_long("items", 1500);
  spec.nnz = args.get_long("nnz", 60000);
  spec.seed = static_cast<std::uint64_t>(args.get_long("seed", 7));

  std::cout << "Generating " << spec.users << " x " << spec.items
            << " ratings (" << spec.nnz << " nonzeros)...\n";
  const Coo all = generate_synthetic(spec);
  auto [train_coo, test_coo] = split_holdout(all, 0.1, spec.seed);
  const Csr train = coo_to_csr(train_coo);

  AlsOptions options;
  options.k = static_cast<int>(args.get_long("k", 10));
  options.lambda = static_cast<real>(args.get_double("lambda", 0.1));
  options.iterations = static_cast<int>(args.get_long("iters", 10));

  const auto profile = devsim::profile_by_name(args.get_or("device", "cpu"));
  Recommender rec;
  const TrainReport report = rec.train(train, options, profile);

  std::cout << "Trained on " << report.device << " with variant "
            << report.variant.name() << "\n"
            << "  modeled device time: " << report.modeled_seconds << " s\n"
            << "  host wall time:      " << report.wall_seconds << " s\n"
            << "  train RMSE:          " << report.train_rmse << "\n"
            << "  test RMSE:           " << rec.rmse_on(test_coo) << "\n\n";

  const index_t user = 0;
  std::cout << "Top-5 recommendations for user " << user << ":\n";
  for (const auto& r : rec.recommend(user, 5, &train)) {
    std::cout << "  item " << r.item << "  score " << r.score << "\n";
  }
  return 0;
}
