// Solver-family comparison: ALS vs Hogwild-SGD vs CCD++ convergence on the
// same data (the three techniques of the paper's related-work section).
//
//   ./solver_comparison [--users 3000] [--items 2000] [--nnz 90000]
#include <cstdio>

#include "als/metrics.hpp"
#include "als/reference.hpp"
#include "baselines/ccd.hpp"
#include "baselines/sgd.hpp"
#include "common/cli.hpp"
#include "common/timer.hpp"
#include "data/synthetic.hpp"
#include "sparse/convert.hpp"

int main(int argc, char** argv) {
  using namespace alsmf;
  CliArgs args(argc, argv);

  SyntheticSpec spec;
  spec.users = args.get_long("users", 3000);
  spec.items = args.get_long("items", 2000);
  spec.nnz = args.get_long("nnz", 90000);
  spec.seed = 11;
  const Coo coo = generate_synthetic(spec);
  const Csr train = coo_to_csr(coo);
  const int k = static_cast<int>(args.get_long("k", 10));
  const int rounds = static_cast<int>(args.get_long("rounds", 8));

  std::printf("%-8s %-12s %-12s %-12s\n", "round", "ALS", "SGD", "CCD++");

  // ALS: run one iteration at a time to log the trajectory.
  AlsOptions als_opts;
  als_opts.k = k;
  als_opts.lambda = 0.1f;
  als_opts.iterations = 1;
  Matrix x, y;
  init_factors(train.rows(), train.cols(), als_opts, x, y);
  const Csr train_t = transpose(train);
  std::vector<double> als_rmse;
  Timer als_timer;
  for (int it = 0; it < rounds; ++it) {
    reference_half_update(train, y, x, als_opts);
    reference_half_update(train_t, x, y, als_opts);
    als_rmse.push_back(rmse(train, x, y));
  }
  const double als_time = als_timer.seconds();

  SgdOptions sgd_opts;
  sgd_opts.k = k;
  sgd_opts.epochs = rounds;
  Timer sgd_timer;
  const SgdResult sgd = sgd_train(coo, sgd_opts);
  const double sgd_time = sgd_timer.seconds();

  CcdOptions ccd_opts;
  ccd_opts.k = k;
  ccd_opts.outer_iterations = rounds;
  Timer ccd_timer;
  const CcdResult ccd = ccd_train(train, ccd_opts);
  const double ccd_time = ccd_timer.seconds();

  for (int it = 0; it < rounds; ++it) {
    std::printf("%-8d %-12.4f %-12.4f %-12.4f\n", it + 1, als_rmse[it],
                sgd.epoch_rmse[it], ccd.iter_rmse[it]);
  }
  std::printf("\nwall time [s]: ALS %.3f | SGD %.3f | CCD++ %.3f\n", als_time,
              sgd_time, ccd_time);
  return 0;
}
