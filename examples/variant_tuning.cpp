// Code-variant selection demo (§III-D): score all 8 batched variants on
// each architecture with the cost model and compare against the heuristic
// selector's pick.
//
//   ./variant_tuning [--dataset NTFX] [--scale 256] [--k 10]
#include <cstdio>

#include "als/variant_select.hpp"
#include "common/cli.hpp"
#include "data/datasets.hpp"

int main(int argc, char** argv) {
  using namespace alsmf;
  CliArgs args(argc, argv);

  const std::string abbr = args.get_or("dataset", "NTFX");
  const double scale = args.get_double("scale", 256.0);
  const Csr train = make_replica(abbr, scale);

  AlsOptions options;
  options.k = static_cast<int>(args.get_long("k", 10));
  options.iterations = static_cast<int>(args.get_long("iters", 5));

  for (const char* name : {"gpu", "mic", "cpu"}) {
    const auto profile = devsim::profile_by_name(name);
    std::printf("=== %s (%s dataset, k=%d) ===\n", profile.name.c_str(),
                abbr.c_str(), options.k);
    const auto scores = score_variants(train, options, profile);
    for (const auto& s : scores) {
      std::printf("  %-20s %10.4f s\n", s.variant.name().c_str(),
                  s.modeled_seconds);
    }
    const AlsVariant pick = select_variant_heuristic(train, options, profile);
    std::printf("  empirical best: %s | heuristic pick: %s\n\n",
                scores.front().variant.name().c_str(), pick.name().c_str());
  }
  return 0;
}
