#include "als/analyze_kernels.hpp"

#include <sstream>
#include <utility>

#include "data/synthetic.hpp"
#include "devsim/profile.hpp"
#include "ocl/analyze/deep_lint.hpp"
#include "ocl/analyze/parser.hpp"
#include "ocl/kernel_flavors.hpp"
#include "sparse/csr.hpp"

namespace alsmf {

namespace {

namespace az = ocl::analyze;

az::DatasetStats stats_of(const Csr& m) {
  az::DatasetStats s;
  s.rows = static_cast<double>(m.rows());
  s.nnz = static_cast<double>(m.nnz());
  const auto& rp = m.row_ptr();
  for (index_t u = 0; u < m.rows(); ++u) {
    if (rp[static_cast<std::size_t>(u) + 1] > rp[static_cast<std::size_t>(u)])
      s.nonempty_rows += 1;
  }
  return s;
}

}  // namespace

AnalyzeKernelsResult analyze_kernels(const AnalyzeKernelsOptions& options) {
  SyntheticSpec spec;
  spec.users = static_cast<index_t>(options.users);
  spec.items = static_cast<index_t>(options.items);
  spec.nnz = static_cast<nnz_t>(options.nnz);
  spec.seed = options.seed;
  const az::DatasetStats stats = stats_of(generate_synthetic_csr(spec));

  az::StaticLaunchParams launch;
  launch.num_groups = options.num_groups;
  launch.group_size = options.group_size;
  launch.tile_rows = options.tile_rows;

  ocl::KernelConfig kc;
  kc.k = options.k;
  kc.group_size = options.group_size;

  // Every kernel the generator can emit for this configuration, in the
  // pinned enumeration order (ocl/kernel_flavors.hpp).
  const std::vector<ocl::KernelFlavor> sources =
      ocl::enumerate_kernel_flavors(kc);

  AnalyzeKernelsResult out;
  for (const std::string& profile_name : options.profiles) {
    const devsim::DeviceProfile profile =
        devsim::profile_by_name(profile_name);
    az::DeepLintOptions lint_options;
    lint_options.expected_kernels = 1;
    lint_options.local_capacity_bytes = devsim::local_capacity_bytes(profile);
    // Structural lint capacity check: hardware scratch-pads only (emulated
    // local memory has no hard per-group limit), as in check_kernels.
    if (profile.has_hw_local_mem) {
      lint_options.limits.local_mem_bytes = profile.local_mem_bytes;
    }

    for (const ocl::KernelFlavor& flavor : sources) {
      const std::string& name = flavor.name;
      const std::string& source = flavor.source;
      const ocl::LintReport lint =
          az::deep_lint_kernel_source(source, lint_options);
      for (const auto& issue : lint.issues) {
        // Clickable <file>:<line>:<col> anchor (col 0 = unknown, still
        // parseable by editors), profile-qualified for the sweep log.
        out.lint_issues.push_back(profile_name + "/" + name + ".cl:" +
                                  std::to_string(issue.line) + ":" +
                                  std::to_string(issue.col) + ": " +
                                  issue.message);
      }
      if (!lint.clean()) continue;  // unanalyzable sources have no profile
      const auto kernels =
          az::lower_kernels(az::parse_translation_unit(source));
      for (const auto& ir : kernels) {
        AnalyzeKernelsEntry entry;
        entry.kernel = name;
        entry.profile = profile_name;
        entry.data = az::build_static_profile(ir, stats, launch, profile);
        entry.json = az::profile_json(entry.data, ir);
        out.entries.push_back(std::move(entry));
      }
    }
  }
  return out;
}

std::string AnalyzeKernelsResult::to_json() const {
  std::ostringstream os;
  os << "{\"clean\":" << (clean() ? "true" : "false") << ",\"lint_issues\":[";
  for (std::size_t i = 0; i < lint_issues.size(); ++i) {
    if (i) os << ",";
    os << "\"";
    for (char c : lint_issues[i]) {
      if (c == '"' || c == '\\') os << '\\';
      os << c;
    }
    os << "\"";
  }
  os << "],\"entries\":[";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i) os << ",";
    os << "{\"kernel\":\"" << entries[i].kernel << "\",\"profile\":\""
       << entries[i].profile << "\",\"static_profile\":" << entries[i].json
       << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace alsmf
