// The `alsmf analyze-kernels` sweep: the static counterpart of
// check_kernels.hpp. Every generated OpenCL kernel (the 8 batched variants,
// the flat baseline, and flat-on-SELL) is deep-linted (ocl/analyze/deep_lint)
// and lowered to a StaticKernelProfile per device profile — predicted launch
// counters, scratch-pad peak, register estimate, coalescing classes — with
// zero launches, checked or otherwise. A clean sweep is the CI gate that the
// kernel *sources* are analyzable and free of provable defects; the JSON it
// emits is the per-kernel profile table the docs and the zero-run variant
// ranker are built on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ocl/analyze/static_profile.hpp"

namespace alsmf {

struct AnalyzeKernelsOptions {
  /// Synthetic dataset shape the symbolic frequencies are evaluated on
  /// (same defaults as the checked-execution sweep).
  long users = 300;
  long items = 200;
  long nnz = 6000;
  int k = 10;
  std::uint64_t seed = 42;
  /// Launch shape.
  std::size_t num_groups = 48;
  int group_size = 32;
  long tile_rows = 0;  ///< forced staging tile rows (0 = auto policy)
  std::vector<std::string> profiles = {"cpu", "gpu", "mic"};
};

/// One sweep entry: a kernel/profile combination and its static profile.
struct AnalyzeKernelsEntry {
  std::string kernel;
  std::string profile;
  ocl::analyze::StaticKernelProfile data;
  std::string json;  ///< profile_json(data, ir): figures + access table
};

struct AnalyzeKernelsResult {
  std::vector<AnalyzeKernelsEntry> entries;
  /// Deep-lint diagnostics ("profile/kernel: line N: message"). Includes
  /// parse failures: an unanalyzable kernel fails the gate.
  std::vector<std::string> lint_issues;

  bool clean() const { return lint_issues.empty(); }
  std::string to_json() const;
};

/// Runs the sweep. Throws only on setup errors; diagnostics are returned.
AnalyzeKernelsResult analyze_kernels(const AnalyzeKernelsOptions& options);

}  // namespace alsmf
