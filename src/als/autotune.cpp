#include "als/autotune.hpp"

#include <algorithm>
#include <sstream>

#include "als/solver.hpp"
#include "common/error.hpp"
#include "devsim/device.hpp"

namespace alsmf {

std::string TunedConfig::to_string() const {
  std::ostringstream os;
  os << variant.name() << " ws=" << group_size;
  if (variant.use_local) {
    os << " tile=" << (tile_rows == 0 ? std::string("auto")
                                      : std::to_string(tile_rows));
  }
  return os.str();
}

std::vector<TunedConfig> autotune_all(const Csr& train,
                                      const AlsOptions& options,
                                      const devsim::DeviceProfile& profile,
                                      const AutotuneGrid& grid) {
  ALSMF_CHECK(!grid.group_sizes.empty());
  ALSMF_CHECK(!grid.tile_rows.empty());

  std::vector<AlsVariant> variants;
  if (grid.all_variants) {
    for (unsigned mask = 0; mask < AlsVariant::kVariantCount; ++mask) {
      variants.push_back(AlsVariant::from_mask(mask));
    }
  } else {
    variants = {AlsVariant::batching_only(), AlsVariant::batch_local(),
                AlsVariant::batch_local_reg(), AlsVariant::batch_vectors()};
  }

  std::vector<TunedConfig> results;
  for (const AlsVariant& v : variants) {
    for (int ws : grid.group_sizes) {
      // Tile size only matters for local-memory variants.
      const std::vector<int> tiles =
          v.use_local ? grid.tile_rows : std::vector<int>{0};
      for (int tile : tiles) {
        AlsOptions opts = options;
        opts.functional = false;
        opts.group_size = ws;
        opts.tile_rows = tile;
        devsim::Device device(profile);
        AlsSolver solver(train, opts, v, device);
        TunedConfig config;
        config.variant = v;
        config.group_size = ws;
        config.tile_rows = tile;
        config.modeled_seconds = solver.run({}).modeled_seconds;
        results.push_back(config);
      }
    }
  }
  std::stable_sort(results.begin(), results.end(),
                   [](const TunedConfig& a, const TunedConfig& b) {
                     return a.modeled_seconds < b.modeled_seconds;
                   });
  return results;
}

TunedConfig autotune(const Csr& train, const AlsOptions& options,
                     const devsim::DeviceProfile& profile,
                     const AutotuneGrid& grid) {
  return autotune_all(train, options, profile, grid).front();
}

AlsOptions apply_tuning(const AlsOptions& options, const TunedConfig& config) {
  AlsOptions tuned = options;
  tuned.group_size = config.group_size;
  tuned.tile_rows = config.tile_rows;
  return tuned;
}

}  // namespace alsmf
