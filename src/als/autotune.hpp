// Whole-configuration autotuning: jointly search the code variant
// (§III-D), the work-group size (§V-E) and the staging tile size over the
// cost model, for a given (device, dataset, k). This is the complete
// "execution context -> best implementation" selection loop the paper
// describes, in one call.
#pragma once

#include <string>
#include <vector>

#include "als/options.hpp"
#include "devsim/profile.hpp"
#include "sparse/csr.hpp"

namespace alsmf {

struct TunedConfig {
  AlsVariant variant;
  int group_size = 32;
  int tile_rows = 0;       ///< 0 = kernel auto
  double modeled_seconds = 0;

  std::string to_string() const;
};

struct AutotuneGrid {
  std::vector<int> group_sizes = {8, 16, 32, 64};
  /// Tile sizes tried for local-memory variants (0 = kernel auto).
  std::vector<int> tile_rows = {0, 32, 64, 128};
  /// Evaluate all 8 variants; when false only the 4 paper stacks.
  bool all_variants = true;
};

/// Scores every grid point in accounting-only mode and returns them sorted
/// ascending by modeled time (best first).
std::vector<TunedConfig> autotune_all(const Csr& train,
                                      const AlsOptions& options,
                                      const devsim::DeviceProfile& profile,
                                      const AutotuneGrid& grid = {});

/// Best entry of autotune_all.
TunedConfig autotune(const Csr& train, const AlsOptions& options,
                     const devsim::DeviceProfile& profile,
                     const AutotuneGrid& grid = {});

/// Applies a tuned configuration onto an options struct.
AlsOptions apply_tuning(const AlsOptions& options, const TunedConfig& config);

}  // namespace alsmf
