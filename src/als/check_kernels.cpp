#include "als/check_kernels.hpp"

#include <sstream>
#include <utility>

#include "als/implicit_device.hpp"
#include "als/kernels.hpp"
#include "als/kernels_sell.hpp"
#include "common/rng.hpp"
#include "data/synthetic.hpp"
#include "devsim/device.hpp"
#include "devsim/profile.hpp"
#include "ocl/kernel_lint.hpp"
#include "ocl/kernel_flavors.hpp"
#include "sparse/convert.hpp"
#include "sparse/sell.hpp"

namespace alsmf {

namespace {

using devsim::Device;

/// Drains the device's accumulated check report into one sweep entry.
void take_entry(CheckKernelsResult& out, Device& device,
                const std::string& kernel, const std::string& profile) {
  CheckKernelsEntry entry;
  entry.kernel = kernel;
  entry.profile = profile;
  entry.report = device.check_report();
  device.reset_check_report();
  out.total_findings += entry.report.total_findings;
  out.launches += entry.report.launches;
  out.entries.push_back(std::move(entry));
}

}  // namespace

CheckKernelsResult check_kernels(const CheckKernelsOptions& options) {
  SyntheticSpec spec;
  spec.users = static_cast<index_t>(options.users);
  spec.items = static_cast<index_t>(options.items);
  spec.nnz = static_cast<nnz_t>(options.nnz);
  spec.seed = options.seed;
  const Csr r = generate_synthetic_csr(spec);
  const Csr rt = transpose(r);

  Rng rng(options.seed);
  Matrix src(r.cols(), options.k);
  src.fill_uniform(rng, -0.5f, 0.5f);

  CheckKernelsResult out;
  for (const std::string& profile : options.profiles) {
    Device device(devsim::profile_by_name(profile));

    // Flat baseline + the paper's 8 batched variants. Each run updates a
    // fresh dst so cross-variant state never aliases.
    auto run_variant = [&](const AlsVariant& v, int tile_rows,
                           const std::string& label,
                           const RowSolver* row_solver = nullptr) {
      Matrix dst(r.rows(), options.k);
      UpdateArgs args;
      args.r = &r;
      args.src = &src;
      args.dst = &dst;
      args.k = options.k;
      args.variant = v;
      args.tile_rows = tile_rows;
      args.row_solver = row_solver;
      launch_update(device, label, args, options.num_groups,
                    options.group_size, /*functional=*/true,
                    /*validate=*/true);
      take_entry(out, device, label, profile);
    };

    run_variant(AlsVariant::flat_baseline(), 0, "flat");
    for (unsigned mask = 0; mask < AlsVariant::kVariantCount; ++mask) {
      const AlsVariant v = AlsVariant::from_mask(mask);
      run_variant(v, 0, v.name());
      if (v.use_local) {
        // Re-run with a deliberately tiny tile: multi-chunk staging and the
        // per-chunk barrier pair get exercised.
        run_variant(v, options.forced_tile_rows,
                    v.name() + "/tile" +
                        std::to_string(options.forced_tile_rows));
      }
    }

    // Iterative S3 strategies under shadow-memory checking: the CG kernels
    // across all 8 variants (warm-start read + per-group solve scratch),
    // plus one subspace run. The exact runs above already cover cholesky.
    {
      AlsOptions strat;
      strat.k = options.k;
      strat.row_solver = RowSolverKind::kCg;
      const auto cg = make_row_solver(strat);
      for (unsigned mask = 0; mask < AlsVariant::kVariantCount; ++mask) {
        const AlsVariant v = AlsVariant::from_mask(mask);
        run_variant(v, 0, v.name() + "/cg", cg.get());
      }
      strat.row_solver = RowSolverKind::kSubspace;
      const auto subspace = make_row_solver(strat);
      run_variant(AlsVariant::batch_local_reg(), 0, "batch_local_reg/subspace",
                  subspace.get());
      run_variant(AlsVariant::flat_baseline(), 0, "flat/cg", cg.get());
    }

    // Flat over SELL-C-sigma storage.
    {
      const SellMatrix sell(r, device.profile().simd_width,
                            device.profile().simd_width * 4);
      Matrix dst(r.rows(), options.k);
      SellUpdateArgs args;
      args.r = &sell;
      args.src = &src;
      args.dst = &dst;
      args.k = options.k;
      launch_update_flat_sell(device, "flat_sell", args, /*functional=*/true,
                              /*validate=*/true);
      take_entry(out, device, "flat_sell", profile);
    }

    // Static lint of the generated OpenCL sources this configuration would
    // emit, against the profile's scratch-pad capacity (hardware scratch-pad
    // only: emulated local memory has no hard per-group limit).
    {
      ocl::KernelConfig kc;
      kc.k = options.k;
      kc.group_size = options.group_size;
      ocl::LintLimits limits;
      if (device.profile().has_hw_local_mem) {
        limits.local_mem_bytes = device.profile().local_mem_bytes;
      }
      auto lint_one = [&](const std::string& name, const std::string& source) {
        const ocl::LintReport lint = ocl::lint_kernel_source(source, 1, limits);
        for (const auto& issue : lint.issues) {
          out.lint_issues.push_back(profile + "/" + name + ": line " +
                                    std::to_string(issue.line) + ": " +
                                    issue.message);
        }
      };
      // The full flavor enumeration: adds SELL and the narrow-storage
      // families the hand-rolled lists used to skip.
      for (const ocl::KernelFlavor& flavor :
           ocl::enumerate_kernel_flavors(kc)) {
        lint_one(flavor.name, flavor.source);
      }
    }

    // Implicit-feedback device path (one iteration = two half-updates).
    {
      ImplicitOptions iopt;
      iopt.k = options.k;
      iopt.seed = options.seed;
      iopt.alpha = 1.0f;
      DeviceImplicitAls als(r, iopt, device);
      als.num_groups = options.num_groups;
      als.group_size = options.group_size;
      als.validate = true;
      als.run_iteration();
      take_entry(out, device, "implicit", profile);
    }
  }
  return out;
}

std::string CheckKernelsResult::to_json() const {
  std::ostringstream os;
  os << "{\"clean\":" << (clean() ? "true" : "false")
     << ",\"total_findings\":" << total_findings
     << ",\"launches\":" << launches << ",\"lint_issues\":[";
  for (std::size_t i = 0; i < lint_issues.size(); ++i) {
    if (i) os << ",";
    os << "\"";
    for (char c : lint_issues[i]) {
      if (c == '"' || c == '\\') os << '\\';
      os << c;
    }
    os << "\"";
  }
  os << "],\"entries\":[";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i) os << ",";
    os << "{\"kernel\":\"" << entries[i].kernel << "\",\"profile\":\""
       << entries[i].profile << "\",\"report\":" << entries[i].report.to_json()
       << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace alsmf
