// The `alsmf check-kernels` sweep: runs every ALS kernel variant (flat, the
// 8 batched variants, flat-on-SELL, and the implicit-feedback device path)
// in checked execution across device profiles on a small synthetic dataset,
// and collects the shadow-memory findings. A clean sweep is the CI gate
// that the kernels are in-bounds, race-free, and honest about the traffic
// they report to the cost model.
#pragma once

#include <string>
#include <vector>

#include "devsim/check/report.hpp"

namespace alsmf {

struct CheckKernelsOptions {
  /// Synthetic dataset shape (small: checked execution is byte-granular).
  long users = 300;
  long items = 200;
  long nnz = 6000;
  int k = 10;
  std::uint64_t seed = 42;
  /// Launch shape. Kept small so groups stride over several rows each.
  std::size_t num_groups = 48;
  int group_size = 32;
  /// Forced tiny staging tile for a second pass over the local-memory
  /// variants, so multi-chunk staging (and its barrier pairing) is
  /// exercised even when the auto tile would hold every row.
  int forced_tile_rows = 4;
  std::vector<std::string> profiles = {"cpu", "gpu", "mic"};
};

/// One sweep entry: a kernel/profile combination and its findings.
struct CheckKernelsEntry {
  std::string kernel;
  std::string profile;
  devsim::check::CheckReport report;
};

struct CheckKernelsResult {
  std::vector<CheckKernelsEntry> entries;
  std::size_t total_findings = 0;
  std::size_t launches = 0;
  /// Static lint of the generated OpenCL sources against each profile's
  /// local-memory capacity ("profile/kernel: line N: message").
  std::vector<std::string> lint_issues;

  bool clean() const { return total_findings == 0 && lint_issues.empty(); }
  std::string to_json() const;
};

/// Runs the sweep. Throws only on setup errors; kernel findings are
/// returned, not thrown.
CheckKernelsResult check_kernels(const CheckKernelsOptions& options);

}  // namespace alsmf
