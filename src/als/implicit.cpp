#include "als/implicit.hpp"

#include <cmath>
#include <vector>

#include "als/row_solve.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/dense.hpp"
#include "linalg/vecops.hpp"
#include "sparse/convert.hpp"

namespace alsmf {

namespace {

/// One implicit half-update: recompute every row of dst from src.
void implicit_half_update(const Csr& r, const Matrix& src, Matrix& dst,
                          const ImplicitOptions& options, ThreadPool& pool) {
  const int k = options.k;
  const auto kk = static_cast<std::size_t>(k) * static_cast<std::size_t>(k);

  // Gram matrix G = srcᵀ·src + λI once per half-iteration.
  std::vector<real> gram(kk);
  gram_full(src, options.lambda, gram.data());

  pool.parallel_for(
      0, static_cast<std::size_t>(r.rows()),
      [&](std::size_t b, std::size_t e, unsigned) {
        std::vector<real> a(kk);
        std::vector<real> rhs(static_cast<std::size_t>(k));
        for (std::size_t u = b; u < e; ++u) {
          auto cols = r.row_cols(static_cast<index_t>(u));
          auto vals = r.row_values(static_cast<index_t>(u));
          std::copy(gram.begin(), gram.end(), a.begin());
          std::fill(rhs.begin(), rhs.end(), real{0});
          for (std::size_t p = 0; p < cols.size(); ++p) {
            const real conf = real{1} + options.alpha * vals[p];
            auto yrow = src.row(cols[p]);
            // A += (c-1)·y yᵀ ; rhs += c·y   (p_ui = 1)
            for (int i = 0; i < k; ++i) {
              const real ci = (conf - real{1}) * yrow[static_cast<std::size_t>(i)];
              real* arow = a.data() + static_cast<std::size_t>(i) * static_cast<std::size_t>(k);
              for (int j = 0; j < k; ++j) {
                arow[j] += ci * yrow[static_cast<std::size_t>(j)];
              }
              rhs[static_cast<std::size_t>(i)] += conf * yrow[static_cast<std::size_t>(i)];
            }
          }
          if (!cholesky_solve(a.data(), k, rhs.data())) {
            std::fill(rhs.begin(), rhs.end(), real{0});
          }
          auto drow = dst.row(static_cast<index_t>(u));
          std::copy(rhs.begin(), rhs.end(), drow.begin());
        }
      });
}

}  // namespace

void validate(const ImplicitOptions& options) {
  validate(static_cast<const FactorOptionsBase&>(options));
  if (options.alpha < 0.0f) {
    throw Error("invalid alpha = " + std::to_string(options.alpha) +
                "; the confidence slope must be >= 0 (c = 1 + alpha * r)");
  }
}

ImplicitResult implicit_als(const Csr& r, const ImplicitOptions& options,
                            ThreadPool* pool) {
  validate(options);
  if (!pool) pool = &ThreadPool::global();

  ImplicitResult result;
  Rng rng(options.seed);
  const real scale =
      static_cast<real>(1.0 / std::sqrt(static_cast<double>(options.k)));
  result.x = Matrix(r.rows(), options.k, real{0});
  result.y = Matrix(r.cols(), options.k);
  result.y.fill_uniform(rng, -0.5f * scale, 0.5f * scale);

  const Csr rt = transpose(r);
  for (int it = 0; it < options.iterations; ++it) {
    implicit_half_update(r, result.y, result.x, options, *pool);
    implicit_half_update(rt, result.x, result.y, options, *pool);
  }
  return result;
}

double implicit_loss(const Csr& r, const Matrix& x, const Matrix& y,
                     const ImplicitOptions& options) {
  ALSMF_CHECK(x.rows() == r.rows() && y.rows() == r.cols());
  const int k = options.k;
  ALSMF_CHECK(x.cols() == k && y.cols() == k);
  const auto kk = static_cast<std::size_t>(k) * static_cast<std::size_t>(k);

  // Unobserved part: Σ_all ŷ² = Σ_u x_uᵀ (YᵀY) x_u via the Gram trick.
  std::vector<real> gram(kk);
  gram_full(y, real{0}, gram.data());
  double total = 0;
  std::vector<real> gx(static_cast<std::size_t>(k));
  for (index_t u = 0; u < x.rows(); ++u) {
    auto xu = x.row(u);
    for (int i = 0; i < k; ++i) {
      real s = 0;
      const real* grow = gram.data() + static_cast<std::size_t>(i) * static_cast<std::size_t>(k);
      for (int j = 0; j < k; ++j) s += grow[j] * xu[static_cast<std::size_t>(j)];
      gx[static_cast<std::size_t>(i)] = s;
    }
    total += static_cast<double>(vdot(xu.data(), gx.data(), static_cast<std::size_t>(k)));
  }

  // Observed corrections: c(1-ŷ)² - ŷ² per stored entry.
  for (index_t u = 0; u < r.rows(); ++u) {
    auto cols = r.row_cols(u);
    auto vals = r.row_values(u);
    auto xu = x.row(u);
    for (std::size_t p = 0; p < cols.size(); ++p) {
      const double pred = vdot(xu.data(), y.row(cols[p]).data(),
                               static_cast<std::size_t>(k));
      const double conf = 1.0 + static_cast<double>(options.alpha) * vals[p];
      total += conf * (1.0 - pred) * (1.0 - pred) - pred * pred;
    }
  }

  return total + static_cast<double>(options.lambda) * (x.frob2() + y.frob2());
}

}  // namespace alsmf
