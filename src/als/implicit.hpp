// Implicit-feedback ALS (Hu, Koren & Volinsky, ICDM'08 — the paper's [1]).
//
// The paper motivates ALS over SGD partly because it "can incorporate
// implicit ratings". This module implements that solver: observations are
// preferences p_ui = 1 with confidence c_ui = 1 + alpha * r_ui, and each
// row solves
//     (YᵀY + Yᵀ(Cᵘ - I)Y + λI) x_u = Yᵀ Cᵘ p_u ,
// where the dense Gram matrix YᵀY is computed once per half-iteration and
// only the Ω_u-restricted correction is per-row — the trick that makes
// implicit ALS tractable.
#pragma once

#include <cstdint>

#include "als/options.hpp"
#include "common/thread_pool.hpp"
#include "linalg/dense.hpp"
#include "sparse/csr.hpp"

namespace alsmf {

/// Shares k/lambda/iterations/seed with the explicit-ALS family via
/// FactorOptionsBase; only the confidence slope is implicit-specific.
struct ImplicitOptions : FactorOptionsBase {
  /// Confidence slope: c = 1 + alpha * r (40 in the original paper's runs;
  /// smaller for already-bounded rating-like counts).
  real alpha = 40.0f;

  ImplicitOptions() { iterations = 10; }
};

/// Shared-base validation plus the confidence slope.
void validate(const ImplicitOptions& options);

struct ImplicitResult {
  Matrix x;  ///< m × k user factors
  Matrix y;  ///< n × k item factors
};

/// Trains implicit-feedback factors on the interaction matrix `r` (values
/// are interpreted as interaction strengths, e.g. counts). Parallel over
/// rows via the pool.
ImplicitResult implicit_als(const Csr& r, const ImplicitOptions& options,
                            ThreadPool* pool = nullptr);

/// The implicit-ALS objective: Σ_ui c_ui (p_ui - x_uᵀy_i)² + λ(|X|²+|Y|²),
/// with the sum running over ALL user-item cells (unobserved cells have
/// c = 1, p = 0). O(|Ω|·k + (m+n)·k²) via the Gram trick.
double implicit_loss(const Csr& r, const Matrix& x, const Matrix& y,
                     const ImplicitOptions& options);

}  // namespace alsmf
