#include "als/implicit_device.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/cholesky.hpp"
#include "sparse/convert.hpp"

namespace alsmf {

namespace {
using devsim::GroupCtx;
}

DeviceImplicitAls::DeviceImplicitAls(const Csr& interactions,
                                     const ImplicitOptions& options,
                                     devsim::Device& device)
    : r_(interactions),
      rt_(transpose(interactions)),
      options_(options),
      device_(device) {
  ALSMF_CHECK(options.k > 0);
  ALSMF_CHECK(options.lambda > 0.0f);
  ALSMF_CHECK(options.alpha >= 0.0f);
  Rng rng(options_.seed);
  const real scale =
      static_cast<real>(1.0 / std::sqrt(static_cast<double>(options_.k)));
  x_ = Matrix(interactions.rows(), options_.k, real{0});
  y_ = Matrix(interactions.cols(), options_.k);
  y_.fill_uniform(rng, -0.5f * scale, 0.5f * scale);
}

void DeviceImplicitAls::half_update(const Csr& r, const Matrix& src,
                                    Matrix& dst, const char* name) {
  const int k = options_.k;
  const auto kk = static_cast<std::size_t>(k) * static_cast<std::size_t>(k);

  // Host-side Gram precompute (matches implicit_als exactly: λ included).
  std::vector<real> gram(kk);
  gram_full(src, options_.lambda, gram.data());

  devsim::LaunchConfig config;
  config.group_size = group_size;
  config.num_groups = std::max<std::size_t>(
      1, std::min<std::size_t>(num_groups, static_cast<std::size_t>(r.rows())));
  config.functional = functional;
  config.validate = validate;
  const std::size_t stride = config.num_groups;
  const real alpha = options_.alpha;

  device_.launch(name, config, [&, k, alpha, stride](GroupCtx& ctx) {
    const int W = ctx.simd_width();
    const double bundles = ctx.num_bundles();
    const double passes =
        std::ceil(static_cast<double>(k) / ctx.group_size());
    // The assembled system and rhs emulate register/private storage of the
    // real kernel; kept outside the shadow like the explicit solve scratch.
    auto a = ctx.local_alloc<real>(kk, "a");
    auto rhs = ctx.local_alloc<real>(static_cast<std::size_t>(k), "rhs");
    auto g_gram = ctx.global_span("gram", gram.data(), gram.size());
    // 32-bit device column indices, int64 on the host (see kernels.cpp).
    auto g_cols = ctx.global_span("r.col_idx", r.col_idx().data(),
                                  r.col_idx().size(), 4);
    auto g_vals =
        ctx.global_span("r.values", r.values().data(), r.values().size());
    auto g_src = ctx.global_span("src", src.data(), src.size());
    auto g_dst = ctx.global_span("dst", dst.data(), dst.size());

    for (index_t u = static_cast<index_t>(ctx.group_id()); u < r.rows();
         u += static_cast<index_t>(stride)) {
      const auto omega = static_cast<double>(r.row_nnz(u));

      // --- accounting ---
      ctx.section("S1");
      // Gram broadcast: k*k coalesced floats per row, then the
      // Ω-restricted rank-1 confidence corrections (full k x k each, not
      // just the upper triangle — the asymmetric (c-1) weight).
      ctx.global_read_coalesced(static_cast<double>(kk) * 4.0);
      ctx.ops_scalar(bundles * W * passes * omega * k);
      ctx.flops(2.0 * k * k * omega + static_cast<double>(kk));
      ctx.global_read_coalesced(omega * 8.0);
      ctx.global_read_scattered(omega, k * 4.0);
      ctx.section("S2");
      ctx.ops_scalar(bundles * W * passes * omega);
      ctx.flops(2.0 * k * omega);
      ctx.section("S3");
      const double s3 = cholesky_solve_flops(k);
      ctx.ops_scalar(bundles * W * s3);
      ctx.flops(s3);
      ctx.global_write_scattered(1.0, k * 4.0);

      if (!ctx.functional()) continue;

      // --- functional: identical arithmetic to implicit_als ---
      ctx.section("S1");
      ctx.set_lane(0);
      g_gram.mark_read(0, gram.size());
      std::copy(gram.begin(), gram.end(), a.begin());
      std::fill(rhs.begin(), rhs.end(), real{0});
      auto cols = r.row_cols(u);
      auto vals = r.row_values(u);
      const auto row_begin =
          static_cast<std::size_t>(r.row_ptr()[static_cast<std::size_t>(u)]);
      g_cols.mark_read(row_begin, cols.size());
      g_vals.mark_read(row_begin, vals.size());
      real* rhs_raw = rhs.data();
      for (std::size_t p = 0; p < cols.size(); ++p) {
        const real conf = real{1} + alpha * vals[p];
        g_src.mark_read(static_cast<std::size_t>(cols[p]) *
                            static_cast<std::size_t>(k),
                        static_cast<std::size_t>(k));
        auto yrow = src.row(cols[p]);
        for (int i = 0; i < k; ++i) {
          const real ci = (conf - real{1}) * yrow[static_cast<std::size_t>(i)];
          real* arow = a.data() + static_cast<std::size_t>(i) * static_cast<std::size_t>(k);
          for (int j = 0; j < k; ++j) {
            arow[j] += ci * yrow[static_cast<std::size_t>(j)];
          }
          rhs_raw[static_cast<std::size_t>(i)] +=
              conf * yrow[static_cast<std::size_t>(i)];
        }
      }
      if (!cholesky_solve(a.data(), k, rhs.data())) {
        std::fill(rhs.begin(), rhs.end(), real{0});
      }
      ctx.section("S3");
      auto out = dst.row(u);
      std::copy(rhs.begin(), rhs.begin() + k, out.begin());
      g_dst.mark_write(static_cast<std::size_t>(u) * static_cast<std::size_t>(k),
                       static_cast<std::size_t>(k));
    }
  });
}

void DeviceImplicitAls::run_iteration() {
  half_update(r_, y_, x_, "implicit_update_x");
  half_update(rt_, x_, y_, "implicit_update_y");
}

double DeviceImplicitAls::run() {
  const double before = device_.modeled_seconds();
  for (int it = 0; it < options_.iterations; ++it) run_iteration();
  return device_.modeled_seconds() - before;
}

double DeviceImplicitAls::modeled_seconds() const {
  return device_.modeled_seconds_matching("implicit_update");
}

}  // namespace alsmf
