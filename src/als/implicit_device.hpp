// Implicit-feedback ALS on the device substrate: the thread-batched
// mapping applied to the Hu/Koren/Volinsky solver. The dense Gram matrix
// YᵀY is computed once per half-iteration on the host (it is O(n·k²),
// dwarfed by the per-row work) and broadcast to every work-group; each
// group then applies its row's Ω-restricted confidence correction and
// solves — the same batching/staging structure as the explicit kernels.
#pragma once

#include "als/implicit.hpp"
#include "als/options.hpp"
#include "devsim/device.hpp"
#include "linalg/dense.hpp"
#include "sparse/csr.hpp"

namespace alsmf {

class DeviceImplicitAls {
 public:
  DeviceImplicitAls(const Csr& interactions, const ImplicitOptions& options,
                    devsim::Device& device);

  void run_iteration();
  double run();  ///< all iterations; returns modeled seconds consumed

  const Matrix& x() const { return x_; }
  const Matrix& y() const { return y_; }
  double modeled_seconds() const;

  /// Launch shape (the paper's defaults).
  std::size_t num_groups = 8192;
  int group_size = 32;
  bool functional = true;
  /// Checked execution (shadow-memory analysis); requires functional.
  bool validate = false;

 private:
  void half_update(const Csr& r, const Matrix& src, Matrix& dst,
                   const char* name);

  const Csr& r_;
  Csr rt_;
  ImplicitOptions options_;
  devsim::Device& device_;
  Matrix x_, y_;
};

}  // namespace alsmf
