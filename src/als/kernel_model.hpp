// Kernel-model constants and sizing policy shared between the dynamic
// accounting kernels (als/kernels.cpp) and the static analyzer
// (ocl/analyze/static_profile.cpp). Both sides must price the same launch
// identically, so the numbers live in exactly one place.
#pragma once

#include <algorithm>
#include <cstddef>

#include "common/types.hpp"

namespace alsmf::kernel_model {

// Op-count conventions. The batched kernels issue fused multiply-adds over
// packed lanes: 1 issue-op per scalar fma. The flat baseline's per-row
// scalar code (Algorithm 2) issues separate mul/add plus the CSR index
// arithmetic for every element: ~4 ops per fma.
constexpr double kBatchedOpsPerFma = 1.0;
constexpr double kFlatOpsPerFma = 4.0;

// §V-B: combining registers + local memory on CPU/MIC defeats the implicit
// (cross-work-item) vectorizer — the unrolled per-lane scalar accumulators
// force scalar codegen, roughly tripling S1 issue.
constexpr double kRegLocalScalarPenalty = 3.0;

/// Registers a lane needs beyond the accumulators (pointers, indices, λ).
constexpr int kBaseRegisters = 8;

/// Work-groups the auto tile sizing tries to keep resident per compute
/// unit (occupancy vs. staging-tile size trade-off). Matching the
/// scheduler's in-flight capacity keeps occupancy at 1.0; the barrier cost
/// of the resulting smaller tiles is minor (see bench_ablation_tilesize).
constexpr std::size_t kResidencyTarget = 16;

/// Issue slots a work-group barrier costs each resident bundle.
constexpr double kBarrierSlots = 30.0;

/// Staging-tile rows for the local-memory variant, given the scratch-pad
/// bytes still free after the k×k system + rhs allocations. `forced` > 0
/// pins the size (clamped to 3/4 of the remaining capacity); 0 picks the
/// auto size that leaves room for kResidencyTarget resident groups.
inline std::size_t staging_tile_rows(int k, std::size_t local_remaining,
                                     long forced) {
  const std::size_t per_row =
      (static_cast<std::size_t>(k) + 1) * sizeof(real);
  if (forced > 0) {
    const std::size_t cap = local_remaining * 3 / 4 / per_row;
    return std::clamp<std::size_t>(static_cast<std::size_t>(forced), 1,
                                   std::max<std::size_t>(cap, 1));
  }
  const std::size_t budget = local_remaining / kResidencyTarget * 3 / 4;
  return std::clamp<std::size_t>(budget / per_row, 1, 1024);
}

}  // namespace alsmf::kernel_model
