#include "als/kernels.hpp"

#include <algorithm>
#include <cmath>

#include "als/kernel_model.hpp"
#include "als/row_solve.hpp"
#include "common/error.hpp"

namespace alsmf {

namespace {

using devsim::DeviceKind;
using devsim::GroupCtx;
namespace check = devsim::check;

/// Checked accessors over the buffers a half-update touches. Created per
/// group; in unvalidated launches they degrade to bounds-checked views and
/// the mark_* calls become no-ops.
struct UpdateSpans {
  check::GlobalSpan<const index_t> cols;
  check::GlobalSpan<const real> vals;
  check::GlobalSpan<const real> src;
  check::GlobalSpan<real> dst;
};

UpdateSpans make_spans(GroupCtx& ctx, const UpdateArgs& a) {
  UpdateSpans s;
  // The device layout stores 32-bit column indices (paper Fig. 2); the
  // host emulation uses int64, so honesty accounting scales to 4 bytes.
  s.cols = ctx.global_span("r.col_idx", a.r->col_idx().data(),
                           a.r->col_idx().size(), 4);
  s.vals =
      ctx.global_span("r.values", a.r->values().data(), a.r->values().size());
  s.src = ctx.global_span("src", a.src->data(), a.src->size());
  s.dst = ctx.global_span("dst", a.dst->data(), a.dst->size());
  return s;
}

// Pricing constants shared with the static analyzer (kernel_model.hpp):
// both sides must charge the same launch identically.
using kernel_model::kBarrierSlots;
using kernel_model::kBaseRegisters;
using kernel_model::kBatchedOpsPerFma;
using kernel_model::kFlatOpsPerFma;
using kernel_model::kRegLocalScalarPenalty;

/// The paper's thread-batched kernel: one work-group cooperates on one row,
/// striding over rows by the launch's group count.
class BatchedKernel {
 public:
  BatchedKernel(const UpdateArgs& args, std::size_t stride)
      : a_(args), stride_(stride) {}

  void operator()(GroupCtx& ctx) const {
    const Csr& r = *a_.r;
    const int k = a_.k;
    const int ws = ctx.group_size();
    const int W = ctx.simd_width();
    const double bundles = ctx.num_bundles();
    // Lane coverage of the k accumulator columns: with ws < k the lane loop
    // runs multiple passes (the paper's Fig. 10 discussion).
    const double passes = std::ceil(static_cast<double>(k) / ws);
    const double pairs = 0.5 * k * (k + 1);
    const AlsVariant& v = a_.variant;
    const bool cpu_like = ctx.profile().kind != DeviceKind::kGpu;
    const RowSolver& rs = *a_.row_solver;
    const double s3_flops = rs.modeled_flops(k);
    const bool warm_start = rs.uses_warm_start();

    // Group-shared scratch: the k×k system and the rhs. The solve scratch
    // is emulation detail (real kernels keep it in registers or private
    // memory depending on the variant), so it stays outside the shadow.
    auto smat = ctx.local_alloc<real>(static_cast<std::size_t>(k) * k, "smat");
    auto svec = ctx.local_alloc<real>(static_cast<std::size_t>(k), "svec");
    // Iterative strategies keep their per-row state (warm-started x plus
    // the CG residual/direction vectors) in the scratch-pad like the
    // generated _cg kernels do, so occupancy pricing sees the same
    // footprint the real kernel has.
    check::LocalSpan<real> solve_scratch;
    const std::size_t scratch_n = rs.scratch_reals(k);
    if (scratch_n > 0) {
      solve_scratch = ctx.local_alloc<real>(scratch_n, "solve_scratch");
    }
    const UpdateSpans g = make_spans(ctx, a_);

    // Staging tile for the local-memory variant: chunks of y rows plus the
    // matching ratings, sized to the remaining scratch-pad capacity.
    check::LocalSpan<real> tile, rstage;
    std::size_t tile_rows = 0;
    if (v.use_local) {
      tile_rows =
          kernel_model::staging_tile_rows(k, ctx.local_remaining(), a_.tile_rows);
      tile = ctx.local_alloc<real>(tile_rows * static_cast<std::size_t>(k),
                                   "tile");
      rstage = ctx.local_alloc<real>(tile_rows, "rstage");
    }

    for (index_t u = static_cast<index_t>(ctx.group_id()); u < r.rows();
         u += static_cast<index_t>(stride_)) {
      const auto omega = static_cast<double>(r.row_nnz(u));
      if (omega == 0) {
        if (ctx.functional()) {
          auto row = a_.dst->row(u);
          std::fill(row.begin(), row.end(), real{0});
        }
        continue;
      }

      record_s1(ctx, omega, k, W, bundles, passes, pairs, cpu_like, v,
                tile_rows);
      record_s2(ctx, omega, k, W, bundles, passes, v);
      record_s3(ctx, k, W, bundles, s3_flops, warm_start);

      if (ctx.functional()) {
        solve_row(ctx, g, u, smat, svec, tile, rstage, tile_rows,
                  scratch_n > 0 ? solve_scratch.data() : nullptr);
      }
    }
  }

 private:
  void record_s1(GroupCtx& ctx, double omega, int k, int W, double bundles,
                 double passes, double pairs, bool cpu_like,
                 const AlsVariant& v, std::size_t tile_rows) const {
    ctx.section("S1");
    // Every resident bundle steps the z loop; per z each lane issues the k
    // unrolled accumulator fmas (idle lanes padded — Fig. 10's shape).
    double ops = bundles * W * passes * omega * k * kBatchedOpsPerFma;
    bool vectorized = v.use_vectors;
    if (v.use_registers && v.use_local && cpu_like) {
      ops *= kRegLocalScalarPenalty;
      vectorized = false;
    }
    if (vectorized) {
      ctx.ops_vector(ops);
    } else {
      ctx.ops_scalar(ops);
    }
    ctx.flops(2.0 * pairs * omega);

    // The row's CSR segment (col_idx + values) streams in once.
    ctx.global_read_coalesced(omega * 8.0);
    // Cold gather of the needed y rows: one scattered access per nonzero,
    // k·4 useful bytes each (consecutive lanes read consecutive floats).
    ctx.global_read_scattered(omega, k * 4.0);
    if (v.use_local) {
      // Stage once, then both operand streams replay from the scratch-pad.
      ctx.local_write(omega * k * 4.0);
      ctx.local_read(2.0 * passes * omega * k * 4.0);
      // Chunked staging synchronizes the group twice per tile refill.
      const double chunks =
          std::ceil(omega / static_cast<double>(std::max<std::size_t>(tile_rows, 1)));
      ctx.ops_scalar(chunks * 2.0 * bundles * W * kBarrierSlots);
    } else {
      // Operand re-traversals go back through the memory system. Lanes of
      // a bundle read adjacent elements of the same y row, so each replay
      // is one row-granular (partially coalesced) access.
      ctx.reread(std::max(0.0, 2.0 * passes * omega - omega), k * 4.0);
      // On CPU/MIC every indirectly-addressed *element* costs a scalar
      // load+insert chain that staging would have hoisted out.
      if (ctx.profile().gather_scalar_ops > 0) {
        ctx.ops_flat(2.0 * passes * omega * k * ctx.profile().gather_scalar_ops);
      }
      // On GPU every unstaged inner-loop load exposes memory latency to
      // each resident bundle.
      if (ctx.profile().global_latency_slots > 0) {
        ctx.ops_scalar(2.0 * passes * omega * bundles * W *
                       ctx.profile().global_latency_slots);
      }
    }

    if (v.use_registers) {
      ctx.register_demand(k + kBaseRegisters);
    } else {
      // Dynamically-indexed private accumulator sum[k*k] (paper Fig. 3a):
      // one read+write per lane per z step.
      ctx.register_demand(k * k + kBaseRegisters);
      ctx.private_array_traffic(8.0 * k * passes * omega * bundles * W);
    }
  }

  void record_s2(GroupCtx& ctx, double omega, int k, int W, double bundles,
                 double passes, const AlsVariant& v) const {
    ctx.section("S2");
    const double ops = bundles * W * passes * omega * kBatchedOpsPerFma;
    if (v.use_vectors) {
      ctx.ops_vector(ops);
    } else {
      ctx.ops_scalar(ops);
    }
    ctx.flops(2.0 * k * omega);
    if (v.use_local) {
      // Ratings staged next to the y tile; reads replay from scratch-pad.
      ctx.local_write(omega * 4.0);
      ctx.local_read(passes * omega * (k + 1) * 4.0);
    } else {
      ctx.reread(passes * omega, k * 4.0);
      if (ctx.profile().gather_scalar_ops > 0) {
        ctx.ops_flat(passes * omega * k * ctx.profile().gather_scalar_ops);
      }
      if (ctx.profile().global_latency_slots > 0) {
        ctx.ops_scalar(passes * omega * bundles * W *
                       ctx.profile().global_latency_slots);
      }
    }
    if (!v.use_registers) {
      ctx.private_array_traffic(8.0 * passes * omega * bundles * W);
    }
  }

  void record_s3(GroupCtx& ctx, int k, int W, double bundles,
                 double s3_flops, bool warm_start) const {
    ctx.section("S3");
    // The small solve runs on lane 0; the other lanes (and bundles) of the
    // group wait at the trailing barrier.
    ctx.ops_scalar(bundles * W * s3_flops);
    ctx.flops(s3_flops);
    // Warm-started strategies fetch the row's previous factor value
    // before overwriting it.
    if (warm_start) ctx.global_read_scattered(1.0, k * 4.0);
    ctx.global_write_scattered(1.0, k * 4.0);
  }

  void solve_row(GroupCtx& ctx, const UpdateSpans& g, index_t u,
                 const check::LocalSpan<real>& smat,
                 const check::LocalSpan<real>& svec,
                 const check::LocalSpan<real>& tile,
                 const check::LocalSpan<real>& rstage,
                 std::size_t tile_rows, real* solve_scratch) const {
    const Csr& r = *a_.r;
    const int k = a_.k;
    const auto ku = static_cast<std::size_t>(k);
    auto cols = r.row_cols(u);
    auto vals = r.row_values(u);
    const auto row_begin =
        static_cast<std::size_t>(r.row_ptr()[static_cast<std::size_t>(u)]);
    const real lambda =
        a_.weighted_lambda
            ? a_.lambda * static_cast<real>(cols.size())
            : a_.lambda;
    ctx.section("S1");
    g.cols.mark_read(row_begin, cols.size());
    g.vals.mark_read(row_begin, vals.size());
    if (a_.variant.use_local && tile_rows > 0) {
      // Chunked staging: copy up to tile_rows gathered y rows (and their
      // ratings) into the scratch-pad, then accumulate from the tile.
      const auto ws = static_cast<std::size_t>(ctx.group_size());
      std::fill(smat.begin(), smat.end(), real{0});
      std::fill(svec.begin(), svec.end(), real{0});
      for (std::size_t base = 0; base < cols.size(); base += tile_rows) {
        const std::size_t chunk = std::min(tile_rows, cols.size() - base);
        // Staging phase: lane p mod ws copies one gathered y row (and its
        // rating) into the tile.
        for (std::size_t p = 0; p < chunk; ++p) {
          ctx.set_lane(static_cast<int>(p % ws));
          g.src.mark_read(static_cast<std::size_t>(cols[base + p]) * ku, ku);
          auto yrow = a_.src->row(cols[base + p]);
          std::copy(yrow.begin(), yrow.end(),
                    tile.begin() + static_cast<std::ptrdiff_t>(p * ku));
          tile.mark_write(p * ku, ku);
          rstage.mark_write(p, 1);
          rstage.data()[p] = vals[base + p];
        }
        // The tile is consumed only after the group synchronizes (first
        // barrier of the pair record_s1 prices per chunk)...
        ctx.group_barrier();
        ctx.set_lane(0);
        for (std::size_t p = 0; p < chunk; ++p) {
          tile.mark_read(p * ku, ku);
          rstage.mark_read(p, 1);
          accumulate_normal_row(tile.data() + p * ku, rstage.data()[p], k,
                                smat.data(), svec.data());
        }
        // ...and refilled only after every lane finished reading it.
        ctx.group_barrier();
      }
      finalize_normal_equations(lambda, k, smat.data());
    } else {
      for (std::size_t p = 0; p < cols.size(); ++p) {
        ctx.set_lane(static_cast<int>(p % static_cast<std::size_t>(
                                              ctx.group_size())));
        g.src.mark_read(static_cast<std::size_t>(cols[p]) * ku, ku);
      }
      assemble_normal_equations(cols, vals, *a_.src, lambda, k, smat.data(),
                                svec.data());
    }
    ctx.section("S3");
    ctx.set_lane(0);
    auto dst = a_.dst->row(u);
    const real* warm = nullptr;
    if (a_.row_solver->uses_warm_start()) {
      // The dst row still holds the previous iteration's value — the
      // natural warm start (zero on the very first X update, matching a
      // cold start).
      g.dst.mark_read(static_cast<std::size_t>(u) * ku, ku);
      warm = dst.data();
    }
    a_.row_solver->solve(smat.data(), svec.data(), k, warm, solve_scratch);
    std::copy(svec.begin(), svec.begin() + k, dst.begin());
    g.dst.mark_write(static_cast<std::size_t>(u) * ku, ku);
  }

  UpdateArgs a_;
  std::size_t stride_;
};

/// The SAC'15 flat baseline: one work-item per row. Uneven row lengths
/// serialize inside each SIMT bundle; every access is a per-lane gather.
class FlatKernel {
 public:
  explicit FlatKernel(const UpdateArgs& args) : a_(args) {}

  void operator()(GroupCtx& ctx) const {
    const Csr& r = *a_.r;
    const int k = a_.k;
    const int ws = ctx.group_size();
    const int W = ctx.simd_width();
    const double pairs = 0.5 * k * (k + 1);
    const bool simt = ctx.profile().kind == DeviceKind::kGpu;
    const RowSolver& rs = *a_.row_solver;
    const double s3_flops = rs.modeled_flops(k);
    const bool warm_start = rs.uses_warm_start();
    const index_t base = static_cast<index_t>(ctx.group_id()) * ws;
    if (base >= r.rows()) return;
    const index_t end = std::min<index_t>(base + ws, r.rows());

    // Shared solve scratch emulates each flat work-item's *private* sum/rhs
    // arrays (one lane runs at a time in the emulation), so it stays
    // outside the shadow — per-lane attribution would fabricate races the
    // real kernel cannot have.
    auto smat = ctx.local_alloc<real>(static_cast<std::size_t>(k) * k, "smat");
    auto svec = ctx.local_alloc<real>(static_cast<std::size_t>(k), "svec");
    check::LocalSpan<real> solve_scratch;
    const std::size_t scratch_n = rs.scratch_reals(k);
    if (scratch_n > 0) {
      solve_scratch = ctx.local_alloc<real>(scratch_n, "solve_scratch");
    }
    const UpdateSpans g = make_spans(ctx, a_);

    // Accounting per SIMD bundle: divergence pads every lane to the bundle
    // maximum row length. SIMT hardware pads idle lanes to the full warp;
    // CPU/MIC flat code is scalar so only occupied lanes count (the
    // scalar-execution penalty is in ops_flat / flat_mapping_efficiency).
    for (index_t bstart = base; bstart < end; bstart += W) {
      const index_t bend = std::min<index_t>(bstart + W, end);
      double omega_max = 0, omega_sum = 0, active = 0;
      for (index_t u = bstart; u < bend; ++u) {
        const auto omega = static_cast<double>(r.row_nnz(u));
        omega_max = std::max(omega_max, omega);
        omega_sum += omega;
        if (omega > 0) active += 1;
      }
      if (omega_sum == 0) continue;
      const double lanes =
          simt ? static_cast<double>(W) : static_cast<double>(bend - bstart);

      ctx.section("S1");
      ctx.ops_flat(lanes * omega_max * pairs * kFlatOpsPerFma);
      if (ctx.profile().gather_scalar_ops > 0) {
        ctx.ops_flat(2.0 * pairs * omega_sum * ctx.profile().gather_scalar_ops);
      }
      // SIMT: every per-lane gather is a warp-wide long-latency instruction
      // (the flat mapping has no staging to hide it behind).
      if (ctx.profile().global_latency_slots > 0) {
        ctx.ops_scalar(lanes * omega_max * 2.0 * pairs *
                       ctx.profile().global_latency_slots);
      }
      ctx.flops(2.0 * pairs * omega_sum);
      // Per-lane elementwise gathers of y: cold fetch + operand re-reads.
      ctx.global_read_scattered(omega_sum, k * 4.0);
      ctx.reread(std::max(0.0, 2.0 * pairs * omega_sum - omega_sum * k), 4.0);
      // sum[k*k] private accumulator (never optimized in the baseline).
      ctx.register_demand(k * k + kBaseRegisters);
      ctx.private_array_traffic(8.0 * pairs * omega_sum);

      ctx.section("S2");
      ctx.ops_flat(lanes * omega_max * k * kFlatOpsPerFma);
      if (ctx.profile().global_latency_slots > 0) {
        ctx.ops_scalar(lanes * omega_max * (k + 2.0) *
                       ctx.profile().global_latency_slots);
      }
      ctx.flops(2.0 * k * omega_sum);
      // Ratings through the colMajored_sparse_id indirection: two
      // dependent scattered accesses per nonzero (Algorithm 2, line 10).
      ctx.global_read_scattered(2.0 * omega_sum, 4.0);
      ctx.reread(omega_sum * k, 4.0);
      ctx.private_array_traffic(8.0 * k * omega_sum);

      ctx.section("S3");
      ctx.ops_flat(lanes * s3_flops);
      ctx.flops(s3_flops * active);
      ctx.private_array_traffic(8.0 * k * k * active);
      if (warm_start) ctx.global_read_scattered(active, k * 4.0);
      ctx.global_write_scattered(active, k * 4.0);
    }

    if (!ctx.functional()) return;
    const auto ku = static_cast<std::size_t>(k);
    for (index_t u = base; u < end; ++u) {
      ctx.set_lane(static_cast<int>(u - base));
      auto dst = a_.dst->row(u);
      if (r.row_nnz(u) == 0) {
        std::fill(dst.begin(), dst.end(), real{0});
        continue;
      }
      ctx.section("S1");
      const auto row_begin =
          static_cast<std::size_t>(r.row_ptr()[static_cast<std::size_t>(u)]);
      auto cols = r.row_cols(u);
      g.cols.mark_read(row_begin, cols.size());
      g.vals.mark_read(row_begin, cols.size());
      for (std::size_t p = 0; p < cols.size(); ++p) {
        g.src.mark_read(static_cast<std::size_t>(cols[p]) * ku, ku);
      }
      const real lambda = a_.weighted_lambda
                              ? a_.lambda * static_cast<real>(r.row_nnz(u))
                              : a_.lambda;
      assemble_normal_equations(cols, r.row_values(u), *a_.src,
                                lambda, k, smat.data(), svec.data());
      ctx.section("S3");
      const real* warm = nullptr;
      if (warm_start) {
        g.dst.mark_read(static_cast<std::size_t>(u) * ku, ku);
        warm = dst.data();
      }
      rs.solve(smat.data(), svec.data(), k, warm,
               scratch_n > 0 ? solve_scratch.data() : nullptr);
      std::copy(svec.begin(), svec.begin() + k, dst.begin());
      g.dst.mark_write(static_cast<std::size_t>(u) * ku, ku);
    }
  }

 private:
  UpdateArgs a_;
};

}  // namespace

devsim::LaunchResult launch_update(devsim::Device& device,
                                   const std::string& kernel_name,
                                   const UpdateArgs& args,
                                   std::size_t num_groups, int group_size,
                                   bool functional, bool validate) {
  ALSMF_CHECK(args.r && args.src && args.dst);
  ALSMF_CHECK(args.r->rows() == args.dst->rows());
  ALSMF_CHECK(args.r->cols() == args.src->rows());
  ALSMF_CHECK(args.src->cols() == args.k && args.dst->cols() == args.k);
  ALSMF_CHECK(group_size > 0);

  // A null strategy means the exact solve via args.solver (the
  // pre-strategy default); the transient instance lives until the launch
  // returns (Device::launch is synchronous).
  UpdateArgs a = args;
  std::unique_ptr<RowSolver> exact;
  if (!a.row_solver) {
    exact = make_exact_row_solver(a.solver);
    a.row_solver = exact.get();
  }

  devsim::LaunchConfig config;
  config.group_size = group_size;
  config.functional = functional;
  config.validate = validate;
  const auto rows = static_cast<std::size_t>(a.r->rows());
  if (a.variant.thread_batching) {
    config.num_groups = std::max<std::size_t>(1, std::min(num_groups, rows));
    return device.launch(kernel_name, config,
                         BatchedKernel(a, config.num_groups));
  }
  config.num_groups = (rows + static_cast<std::size_t>(group_size) - 1) /
                      static_cast<std::size_t>(group_size);
  return device.launch(kernel_name, config, FlatKernel(a));
}

}  // namespace alsmf
