// Device kernels for the ALS factor update, in the two mappings the paper
// studies:
//
//  * flat      — the SAC'15 baseline: one work-item per row (Algorithm 2).
//  * batched   — the paper's thread batching (§III-B): one work-group per
//                row, with the three architecture-specific optimizations
//                (registers / local memory / vectors) individually
//                toggleable — the 8 code variants of §III-D.
//
// Every variant performs bit-identical arithmetic (see row_solve.hpp); the
// variants differ in the *device activity* they record, which is what the
// cost model prices. The recording formulas are documented inline and
// verified against hand counts in tests/devsim/.
#pragma once

#include <string>

#include "als/options.hpp"
#include "als/row_solver.hpp"
#include "devsim/device.hpp"
#include "linalg/dense.hpp"
#include "sparse/csr.hpp"

namespace alsmf {

/// Arguments of one half-update (updating `dst` rows from fixed `src`).
/// When updating Y, pass the CSR of Rᵀ as `r`.
struct UpdateArgs {
  const Csr* r = nullptr;      ///< rows correspond to dst rows
  const Matrix* src = nullptr; ///< fixed factor, r->cols() × k
  Matrix* dst = nullptr;       ///< updated factor, r->rows() × k
  real lambda = 0.1f;
  /// ALS-WR: use λ·|Ω_u| instead of λ on each row's diagonal.
  bool weighted_lambda = false;
  /// Local-memory staging tile rows (local variant). 0 = auto: sized to
  /// keep several work-groups resident per compute unit (occupancy).
  int tile_rows = 0;
  int k = 10;
  AlsVariant variant;
  LinearSolverKind solver = LinearSolverKind::kCholesky;
  /// S3 row-solver strategy. nullptr = the exact solve selected by
  /// `solver` (the pre-strategy behavior); launch_update supplies a
  /// transient exact strategy in that case. The pointee is borrowed and
  /// must outlive the launch — strategies are stateless and shared safely
  /// across concurrent groups (scratch is per-group).
  const RowSolver* row_solver = nullptr;
};

/// Launches the half-update on `device`. `kernel_name` keys the device's
/// per-section statistics ("update_x/S1" etc.). For the batched mapping,
/// `num_groups` work-groups of `group_size` lanes stride over the rows (the
/// paper's 8192 × 32 configuration); the flat mapping derives its group
/// count from the row count. `validate` runs the launch in checked
/// execution (shadow-memory analysis; see docs/kernel-checking.md) and
/// requires `functional`. Returns the launch record.
devsim::LaunchResult launch_update(devsim::Device& device,
                                   const std::string& kernel_name,
                                   const UpdateArgs& args,
                                   std::size_t num_groups, int group_size,
                                   bool functional, bool validate = false);

}  // namespace alsmf
