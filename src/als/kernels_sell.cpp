#include "als/kernels_sell.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "als/row_solve.hpp"
#include "common/error.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/lu.hpp"

namespace alsmf {

namespace {

using devsim::DeviceKind;
using devsim::GroupCtx;
namespace check = devsim::check;

class FlatSellKernel {
 public:
  explicit FlatSellKernel(const SellUpdateArgs& args) : a_(args) {}

  void operator()(GroupCtx& ctx) const {
    const SellMatrix& r = *a_.r;
    const int k = a_.k;
    const int c = r.c();
    const auto s = static_cast<index_t>(ctx.group_id());
    const double pairs = 0.5 * k * (k + 1);
    const bool simt = ctx.profile().kind == DeviceKind::kGpu;
    const double s3_flops = a_.solver == LinearSolverKind::kCholesky
                                ? cholesky_solve_flops(k)
                                : lu_solve_flops(k);

    // Shared solve scratch emulates per-work-item private arrays; kept
    // outside the shadow (see FlatKernel).
    auto smat = ctx.local_alloc<real>(static_cast<std::size_t>(k) * k, "smat");
    auto svec = ctx.local_alloc<real>(static_cast<std::size_t>(k), "svec");
    // 32-bit device column indices, int64 on the host (see kernels.cpp).
    auto g_cols = ctx.global_span("sell.col_idx", r.col_idx().data(),
                                  r.col_idx().size(), 4);
    auto g_vals =
        ctx.global_span("sell.values", r.values().data(), r.values().size());
    auto g_src = ctx.global_span("src", a_.src->data(), a_.src->size());
    auto g_dst = ctx.global_span("dst", a_.dst->data(), a_.dst->size());

    // --- Accounting: padding replaces divergence. Every lane of the slice
    // steps the slice width; the local sort keeps width close to the mean.
    const double width = static_cast<double>(r.slice_width(s));
    double omega_sum = 0, active = 0;
    for (int lane = 0; lane < c; ++lane) {
      const double len = static_cast<double>(r.lane_length(s, lane));
      omega_sum += len;
      if (len > 0) active += 1;
    }
    if (omega_sum > 0) {
      const double lanes = simt ? static_cast<double>(c) : active;

      ctx.section("S1");
      ctx.ops_flat(lanes * width * pairs * 4.0);
      if (ctx.profile().gather_scalar_ops > 0) {
        ctx.ops_flat(2.0 * pairs * omega_sum * ctx.profile().gather_scalar_ops);
      }
      if (ctx.profile().global_latency_slots > 0) {
        ctx.ops_scalar(lanes * width * 2.0 * pairs *
                       ctx.profile().global_latency_slots);
      }
      ctx.flops(2.0 * pairs * omega_sum);
      // The slice itself streams in contiguously (the format's win)...
      ctx.global_read_coalesced(width * c * 8.0);
      // ...but the gathered y rows stay scattered, as in flat-CSR.
      ctx.global_read_scattered(omega_sum, k * 4.0);
      ctx.reread(std::max(0.0, 2.0 * pairs * omega_sum - omega_sum * k), 4.0);
      ctx.register_demand(k * k + 8);
      ctx.private_array_traffic(8.0 * pairs * omega_sum);

      ctx.section("S2");
      ctx.ops_flat(lanes * width * k * 4.0);
      if (ctx.profile().global_latency_slots > 0) {
        ctx.ops_scalar(lanes * width * (k + 2.0) *
                       ctx.profile().global_latency_slots);
      }
      ctx.flops(2.0 * k * omega_sum);
      ctx.reread(omega_sum * k, 4.0);
      ctx.private_array_traffic(8.0 * k * omega_sum);

      ctx.section("S3");
      ctx.ops_flat(lanes * s3_flops);
      ctx.flops(s3_flops * active);
      ctx.global_write_scattered(active, k * 4.0);
    }

    if (!ctx.functional()) return;
    // --- Functional: same arithmetic as the CSR reference, row by row,
    // reading through the SELL layout.
    std::vector<index_t> cols;
    std::vector<real> vals;
    const auto ku = static_cast<std::size_t>(k);
    for (int lane = 0; lane < c; ++lane) {
      ctx.set_lane(lane);
      const index_t row = r.row_of(s, lane);
      if (row < 0) continue;
      auto dst = a_.dst->row(row);
      const nnz_t len = r.lane_length(s, lane);
      if (len == 0) {
        std::fill(dst.begin(), dst.end(), real{0});
        continue;
      }
      ctx.section("S1");
      cols.resize(static_cast<std::size_t>(len));
      vals.resize(static_cast<std::size_t>(len));
      for (nnz_t j = 0; j < len; ++j) {
        const std::size_t at = r.entry_offset(s, lane, j);
        g_cols.mark_read(at, 1);
        g_vals.mark_read(at, 1);
        cols[static_cast<std::size_t>(j)] = r.entry_col(s, lane, j);
        vals[static_cast<std::size_t>(j)] = r.entry_value(s, lane, j);
        g_src.mark_read(
            static_cast<std::size_t>(cols[static_cast<std::size_t>(j)]) * ku,
            ku);
      }
      assemble_normal_equations(cols, vals, *a_.src, a_.lambda, k, smat.data(),
                                svec.data());
      solve_normal_equations(smat.data(), svec.data(), k, a_.solver);
      std::copy(svec.begin(), svec.begin() + k, dst.begin());
      ctx.section("S3");
      g_dst.mark_write(static_cast<std::size_t>(row) * ku, ku);
    }
  }

 private:
  SellUpdateArgs a_;
};

}  // namespace

devsim::LaunchResult launch_update_flat_sell(devsim::Device& device,
                                             const std::string& kernel_name,
                                             const SellUpdateArgs& args,
                                             bool functional, bool validate) {
  ALSMF_CHECK(args.r && args.src && args.dst);
  ALSMF_CHECK(args.r->rows() == args.dst->rows());
  ALSMF_CHECK(args.r->cols() == args.src->rows());
  ALSMF_CHECK(args.src->cols() == args.k && args.dst->cols() == args.k);

  devsim::LaunchConfig config;
  config.group_size = args.r->c();
  config.num_groups = static_cast<std::size_t>(args.r->num_slices());
  config.functional = functional;
  config.validate = validate;
  return device.launch(kernel_name, config, FlatSellKernel(args));
}

}  // namespace alsmf
