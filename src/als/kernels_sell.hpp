// Flat ALS update over SELL-C-sigma storage: the *format-side* remedy for
// warp divergence, contrasted with the paper's *mapping-side* remedy
// (thread batching) in the ablation benches. One lane still owns one row,
// but slices are locally sorted so lanes of a bundle walk similar-length
// rows and accesses within a slice are contiguous.
#pragma once

#include <string>

#include "als/options.hpp"
#include "devsim/device.hpp"
#include "linalg/dense.hpp"
#include "sparse/sell.hpp"

namespace alsmf {

struct SellUpdateArgs {
  const SellMatrix* r = nullptr;  ///< rows correspond to dst rows
  const Matrix* src = nullptr;
  Matrix* dst = nullptr;
  real lambda = 0.1f;
  int k = 10;
  LinearSolverKind solver = LinearSolverKind::kCholesky;
};

/// Launches the flat-on-SELL half-update: one work-group per slice (C lanes,
/// one row each). `validate` runs it in checked execution (requires
/// `functional`). Returns the launch record.
devsim::LaunchResult launch_update_flat_sell(devsim::Device& device,
                                             const std::string& kernel_name,
                                             const SellUpdateArgs& args,
                                             bool functional,
                                             bool validate = false);

}  // namespace alsmf
