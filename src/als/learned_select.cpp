#include "als/learned_select.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "als/variant_select.hpp"
#include "common/error.hpp"
#include "data/synthetic.hpp"
#include "sparse/convert.hpp"
#include "sparse/stats.hpp"

namespace alsmf {

std::array<double, SelectorFeatures::kCount> SelectorFeatures::as_array() const {
  return {is_gpu,         is_mic,
          simd_width,     has_hw_local,
          gather_scalar_ops, global_latency_slots,
          scalar_efficiency, vector_efficiency,
          k,              group_size,
          mean_row_nnz,   row_gini};
}

const std::array<const char*, SelectorFeatures::kCount>&
SelectorFeatures::names() {
  static const std::array<const char*, kCount> kNames = {
      "is_gpu",          "is_mic",
      "simd_width",      "has_hw_local",
      "gather_ops",      "latency_slots",
      "scalar_eff",      "vector_eff",
      "k",               "group_size",
      "mean_row_nnz",    "row_gini"};
  return kNames;
}

SelectorFeatures extract_features(const Csr& train, const AlsOptions& options,
                                  const devsim::DeviceProfile& profile) {
  SelectorFeatures f;
  f.is_gpu = profile.kind == devsim::DeviceKind::kGpu ? 1.0 : 0.0;
  f.is_mic = profile.kind == devsim::DeviceKind::kMic ? 1.0 : 0.0;
  f.simd_width = profile.simd_width;
  f.has_hw_local = profile.has_hw_local_mem ? 1.0 : 0.0;
  f.gather_scalar_ops = profile.gather_scalar_ops;
  f.global_latency_slots = profile.global_latency_slots;
  f.scalar_efficiency = profile.scalar_efficiency;
  f.vector_efficiency = profile.vector_efficiency;
  f.k = options.k;
  f.group_size = options.group_size;
  const SliceStats rows = row_stats(train);
  f.mean_row_nnz = rows.mean;
  f.row_gini = rows.gini;
  return f;
}

namespace {

using FeatureRow = std::array<double, SelectorFeatures::kCount>;

double gini_impurity(const std::map<unsigned, std::size_t>& counts,
                     std::size_t total) {
  if (total == 0) return 0;
  double impurity = 1.0;
  for (const auto& [label, n] : counts) {
    const double p = static_cast<double>(n) / static_cast<double>(total);
    impurity -= p * p;
  }
  return impurity;
}

unsigned majority(const std::vector<unsigned>& labels,
                  const std::vector<std::size_t>& idx) {
  std::map<unsigned, std::size_t> counts;
  for (auto i : idx) ++counts[labels[i]];
  unsigned best = 0;
  std::size_t best_n = 0;
  for (const auto& [label, n] : counts) {
    if (n > best_n) {
      best = label;
      best_n = n;
    }
  }
  return best;
}

}  // namespace

DecisionTree DecisionTree::fit(const std::vector<FeatureRow>& features,
                               const std::vector<unsigned>& labels,
                               int max_depth, std::size_t min_leaf) {
  ALSMF_CHECK(features.size() == labels.size());
  ALSMF_CHECK(!features.empty());
  DecisionTree tree;

  struct Frame {
    std::vector<std::size_t> idx;
    int depth;
    int node;  ///< index into nodes_ to fill in
  };

  std::vector<std::size_t> all(features.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  tree.nodes_.push_back({});
  std::vector<Frame> stack{{std::move(all), 0, 0}};

  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    Node& node = tree.nodes_[static_cast<std::size_t>(frame.node)];

    // Purity / depth / size stopping rules.
    std::map<unsigned, std::size_t> counts;
    for (auto i : frame.idx) ++counts[labels[i]];
    const double impurity = gini_impurity(counts, frame.idx.size());
    if (impurity == 0.0 || frame.depth >= max_depth ||
        frame.idx.size() < 2 * min_leaf) {
      node.feature = -1;
      node.label = majority(labels, frame.idx);
      continue;
    }

    // Exhaustive best (feature, threshold) split by Gini gain. Thresholds
    // are midpoints between consecutive distinct sorted values.
    int best_feature = -1;
    double best_threshold = 0, best_score = impurity;
    for (std::size_t f = 0; f < SelectorFeatures::kCount; ++f) {
      std::vector<double> values;
      values.reserve(frame.idx.size());
      for (auto i : frame.idx) values.push_back(features[i][f]);
      std::sort(values.begin(), values.end());
      values.erase(std::unique(values.begin(), values.end()), values.end());
      for (std::size_t v = 1; v < values.size(); ++v) {
        const double threshold = 0.5 * (values[v - 1] + values[v]);
        std::map<unsigned, std::size_t> lc, rc;
        std::size_t ln = 0, rn = 0;
        for (auto i : frame.idx) {
          if (features[i][f] <= threshold) {
            ++lc[labels[i]];
            ++ln;
          } else {
            ++rc[labels[i]];
            ++rn;
          }
        }
        if (ln < min_leaf || rn < min_leaf) continue;
        const double score =
            (static_cast<double>(ln) * gini_impurity(lc, ln) +
             static_cast<double>(rn) * gini_impurity(rc, rn)) /
            static_cast<double>(frame.idx.size());
        if (score + 1e-12 < best_score) {
          best_score = score;
          best_feature = static_cast<int>(f);
          best_threshold = threshold;
        }
      }
    }

    if (best_feature < 0) {
      // No split reduces impurity at this level (e.g. XOR-like data).
      // Accept any balanced zero-gain split while depth remains, so deeper
      // levels can still separate the classes.
      for (std::size_t f = 0; f < SelectorFeatures::kCount && best_feature < 0;
           ++f) {
        std::vector<double> values;
        for (auto i : frame.idx) values.push_back(features[i][f]);
        std::sort(values.begin(), values.end());
        values.erase(std::unique(values.begin(), values.end()), values.end());
        for (std::size_t v = 1; v < values.size(); ++v) {
          const double threshold = 0.5 * (values[v - 1] + values[v]);
          std::size_t ln = 0;
          for (auto i : frame.idx) {
            if (features[i][f] <= threshold) ++ln;
          }
          if (ln >= min_leaf && frame.idx.size() - ln >= min_leaf) {
            best_feature = static_cast<int>(f);
            best_threshold = threshold;
            break;
          }
        }
      }
    }
    if (best_feature < 0) {  // nothing splittable at all
      node.feature = -1;
      node.label = majority(labels, frame.idx);
      continue;
    }

    std::vector<std::size_t> left, right;
    for (auto i : frame.idx) {
      (features[i][static_cast<std::size_t>(best_feature)] <= best_threshold
           ? left
           : right)
          .push_back(i);
    }
    // push_back invalidates references into nodes_: write via the index.
    const int left_node = static_cast<int>(tree.nodes_.size());
    tree.nodes_.push_back({});
    const int right_node = static_cast<int>(tree.nodes_.size());
    tree.nodes_.push_back({});
    Node& parent = tree.nodes_[static_cast<std::size_t>(frame.node)];
    parent.feature = best_feature;
    parent.threshold = best_threshold;
    parent.left = left_node;
    parent.right = right_node;
    stack.push_back({std::move(right), frame.depth + 1, right_node});
    stack.push_back({std::move(left), frame.depth + 1, left_node});
  }
  return tree;
}

unsigned DecisionTree::predict(const FeatureRow& x) const {
  ALSMF_CHECK_MSG(!nodes_.empty(), "predict on an empty tree");
  int node = 0;
  while (nodes_[static_cast<std::size_t>(node)].feature >= 0) {
    const Node& n = nodes_[static_cast<std::size_t>(node)];
    node = x[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left
                                                                 : n.right;
  }
  return nodes_[static_cast<std::size_t>(node)].label;
}

void DecisionTree::append_text(int node, int depth, std::string& out) const {
  const Node& n = nodes_[static_cast<std::size_t>(node)];
  const std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
  if (n.feature < 0) {
    out += indent + "-> " + AlsVariant::from_mask(n.label).name() + "\n";
    return;
  }
  std::ostringstream os;
  os << indent << "if " << SelectorFeatures::names()[static_cast<std::size_t>(n.feature)]
     << " <= " << n.threshold << ":\n";
  out += os.str();
  append_text(n.left, depth + 1, out);
  out += indent + "else:\n";
  append_text(n.right, depth + 1, out);
}

std::string DecisionTree::to_string() const {
  if (nodes_.empty()) return "(empty tree)";
  std::string out;
  append_text(0, 0, out);
  return out;
}

void DecisionTree::save(std::ostream& out) const {
  out << "alsmf-dtree-v1 " << nodes_.size() << "\n";
  for (const Node& n : nodes_) {
    out << n.feature << " " << n.threshold << " " << n.left << " " << n.right
        << " " << n.label << "\n";
  }
}

DecisionTree DecisionTree::load(std::istream& in) {
  std::string magic;
  std::size_t count = 0;
  in >> magic >> count;
  ALSMF_CHECK_MSG(in.good() && magic == "alsmf-dtree-v1", "bad tree header");
  DecisionTree tree;
  tree.nodes_.resize(count);
  for (Node& n : tree.nodes_) {
    in >> n.feature >> n.threshold >> n.left >> n.right >> n.label;
    ALSMF_CHECK_MSG(!in.fail(), "truncated tree stream");
  }
  return tree;
}

std::vector<SelectorExample> generate_selector_corpus(std::uint64_t seed) {
  std::vector<SelectorExample> corpus;

  // Dataset shapes spanning skew and row-length regimes.
  struct Shape {
    index_t users, items;
    nnz_t nnz;
    double alpha;
  };
  const Shape shapes[] = {
      {3000, 800, 60000, 0.6},   // short, mildly skewed rows
      {2000, 1500, 120000, 0.9}, // medium rows
      {1000, 2000, 150000, 1.1}, // long, highly skewed rows
  };
  const int ks[] = {5, 10, 30};
  const int group_sizes[] = {8, 32, 128};
  const devsim::DeviceProfile profiles[] = {
      devsim::k20c(), devsim::xeon_e5_2670_dual(), devsim::xeon_phi_31sp()};

  for (const Shape& shape : shapes) {
    SyntheticSpec spec;
    spec.users = shape.users;
    spec.items = shape.items;
    spec.nnz = shape.nnz;
    spec.user_alpha = shape.alpha;
    spec.seed = seed++;
    const Csr train = coo_to_csr(generate_synthetic(spec));
    for (int k : ks) {
      for (int ws : group_sizes) {
        for (const auto& profile : profiles) {
          AlsOptions options;
          options.k = k;
          options.group_size = ws;
          options.iterations = 1;
          options.num_groups = 2048;
          options.functional = false;
          SelectorExample ex;
          ex.features = extract_features(train, options, profile).as_array();
          ex.best_mask = 0;
          double best_time = -1;
          const auto scores = score_variants(train, options, profile);
          // score_variants sorts ascending; recover the winner's mask.
          for (unsigned mask = 0; mask < AlsVariant::kVariantCount; ++mask) {
            if (AlsVariant::from_mask(mask) == scores.front().variant) {
              ex.best_mask = mask;
              best_time = scores.front().modeled_seconds;
              break;
            }
          }
          ALSMF_CHECK(best_time >= 0);
          corpus.push_back(ex);
        }
      }
    }
  }
  return corpus;
}

DecisionTree train_variant_selector(const std::vector<SelectorExample>& corpus,
                                    int max_depth) {
  std::vector<std::array<double, SelectorFeatures::kCount>> features;
  std::vector<unsigned> labels;
  features.reserve(corpus.size());
  labels.reserve(corpus.size());
  for (const auto& ex : corpus) {
    features.push_back(ex.features);
    labels.push_back(ex.best_mask);
  }
  return DecisionTree::fit(features, labels, max_depth);
}

AlsVariant select_variant_learned(const DecisionTree& tree, const Csr& train,
                                  const AlsOptions& options,
                                  const devsim::DeviceProfile& profile) {
  const unsigned mask =
      tree.predict(extract_features(train, options, profile).as_array()) %
      AlsVariant::kVariantCount;
  return AlsVariant::from_mask(mask);
}

}  // namespace alsmf
