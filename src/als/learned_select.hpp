// Learned code-variant selection — the paper's stated future work (§VII:
// "we will introduce the machine learning technique to select an
// appropriate code variant according to the target architecture and input
// dataset").
//
// A small CART decision tree is trained on (architecture, dataset, launch)
// features, labeled with the empirically best of the 8 variants (measured
// through the cost model). The tree is interpretable, serializable, and
// predicts in O(depth) without running any variant.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "als/options.hpp"
#include "devsim/profile.hpp"
#include "sparse/csr.hpp"

namespace alsmf {

/// Feature vector describing one (device, dataset, launch) context.
struct SelectorFeatures {
  static constexpr std::size_t kCount = 12;

  double is_gpu = 0, is_mic = 0;
  double simd_width = 0;
  double has_hw_local = 0;
  double gather_scalar_ops = 0;
  double global_latency_slots = 0;
  double scalar_efficiency = 0, vector_efficiency = 0;
  double k = 0, group_size = 0;
  double mean_row_nnz = 0;
  double row_gini = 0;

  std::array<double, kCount> as_array() const;
  static const std::array<const char*, kCount>& names();
};

/// Extracts features from a concrete context.
SelectorFeatures extract_features(const Csr& train, const AlsOptions& options,
                                  const devsim::DeviceProfile& profile);

/// Depth-limited CART classifier over dense double features.
class DecisionTree {
 public:
  /// Fits with Gini impurity; features.size() == labels.size().
  static DecisionTree fit(const std::vector<std::array<double, SelectorFeatures::kCount>>& features,
                          const std::vector<unsigned>& labels, int max_depth = 5,
                          std::size_t min_leaf = 2);

  unsigned predict(const std::array<double, SelectorFeatures::kCount>& x) const;

  std::size_t node_count() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }

  /// Human-readable if/else dump (uses SelectorFeatures::names()).
  std::string to_string() const;

  /// Line-based text serialization (versioned).
  void save(std::ostream& out) const;
  static DecisionTree load(std::istream& in);

 private:
  struct Node {
    int feature = -1;       ///< -1 => leaf
    double threshold = 0;
    int left = -1, right = -1;
    unsigned label = 0;     ///< leaf class (variant mask)
  };
  std::vector<Node> nodes_;

  void append_text(int node, int depth, std::string& out) const;
};

/// One labeled training example.
struct SelectorExample {
  std::array<double, SelectorFeatures::kCount> features;
  unsigned best_mask = 0;  ///< empirically best variant (cost model)
};

/// Sweeps synthetic datasets x device profiles x (k, group size) and labels
/// each context with its empirically best variant. Deterministic in seed.
std::vector<SelectorExample> generate_selector_corpus(std::uint64_t seed = 7);

/// Fits the selector tree on a corpus.
DecisionTree train_variant_selector(const std::vector<SelectorExample>& corpus,
                                    int max_depth = 5);

/// Predicts a variant for a concrete context with a trained tree.
AlsVariant select_variant_learned(const DecisionTree& tree, const Csr& train,
                                  const AlsOptions& options,
                                  const devsim::DeviceProfile& profile);

}  // namespace alsmf
