#include "als/metrics.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "linalg/vecops.hpp"

namespace alsmf {

namespace {

/// Accumulates Σ f(r_ui - x_uᵀ y_i) over stored entries.
template <class F>
double accumulate_errors(const Csr& ratings, const Matrix& x, const Matrix& y,
                         F f) {
  ALSMF_CHECK(ratings.rows() == x.rows());
  ALSMF_CHECK(ratings.cols() == y.rows());
  ALSMF_CHECK(x.cols() == y.cols());
  const auto k = static_cast<std::size_t>(x.cols());
  double total = 0.0;
  for (index_t u = 0; u < ratings.rows(); ++u) {
    auto cols = ratings.row_cols(u);
    auto vals = ratings.row_values(u);
    auto xu = x.row(u);
    for (std::size_t p = 0; p < cols.size(); ++p) {
      const double pred = vdot(xu.data(), y.row(cols[p]).data(), k);
      total += f(static_cast<double>(vals[p]) - pred);
    }
  }
  return total;
}

}  // namespace

double rmse(const Csr& ratings, const Matrix& x, const Matrix& y) {
  if (ratings.nnz() == 0) return 0.0;
  const double sse =
      accumulate_errors(ratings, x, y, [](double e) { return e * e; });
  return std::sqrt(sse / static_cast<double>(ratings.nnz()));
}

double rmse(const Coo& ratings, const Matrix& x, const Matrix& y) {
  if (ratings.nnz() == 0) return 0.0;
  const auto k = static_cast<std::size_t>(x.cols());
  double sse = 0.0;
  for (const auto& t : ratings.entries()) {
    const double pred = vdot(x.row(t.row).data(), y.row(t.col).data(), k);
    const double e = static_cast<double>(t.value) - pred;
    sse += e * e;
  }
  return std::sqrt(sse / static_cast<double>(ratings.nnz()));
}

double mae(const Csr& ratings, const Matrix& x, const Matrix& y) {
  if (ratings.nnz() == 0) return 0.0;
  const double sae =
      accumulate_errors(ratings, x, y, [](double e) { return std::abs(e); });
  return sae / static_cast<double>(ratings.nnz());
}

double als_loss(const Csr& ratings, const Matrix& x, const Matrix& y,
                real lambda) {
  const double sse =
      accumulate_errors(ratings, x, y, [](double e) { return e * e; });
  return sse + static_cast<double>(lambda) * (x.frob2() + y.frob2());
}

double als_wr_loss(const Csr& ratings, const Matrix& x, const Matrix& y,
                   real lambda) {
  const double sse =
      accumulate_errors(ratings, x, y, [](double e) { return e * e; });
  const auto k = static_cast<std::size_t>(x.cols());
  double reg = 0.0;
  // Row counts weight the user side; column counts weight the item side.
  std::vector<double> col_count(static_cast<std::size_t>(ratings.cols()), 0.0);
  for (index_t u = 0; u < ratings.rows(); ++u) {
    const auto nnz_u = static_cast<double>(ratings.row_nnz(u));
    reg += nnz_u * vnorm2(x.row(u).data(), k);
    for (auto j : ratings.row_cols(u)) col_count[static_cast<std::size_t>(j)] += 1.0;
  }
  for (index_t i = 0; i < ratings.cols(); ++i) {
    reg += col_count[static_cast<std::size_t>(i)] * vnorm2(y.row(i).data(), k);
  }
  return sse + static_cast<double>(lambda) * reg;
}

}  // namespace alsmf
