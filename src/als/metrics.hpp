// Evaluation metrics for factor models.
#pragma once

#include "linalg/dense.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

namespace alsmf {

/// Root-mean-square error of x_uᵀ y_i against the stored ratings.
double rmse(const Csr& ratings, const Matrix& x, const Matrix& y);
double rmse(const Coo& ratings, const Matrix& x, const Matrix& y);

/// Mean absolute error.
double mae(const Csr& ratings, const Matrix& x, const Matrix& y);

/// The paper's objective (Eq. 2): squared error over observed ratings plus
/// λ(Σ_u |x_u|² + Σ_i |y_i|²). Each ALS half-step minimizes this exactly,
/// so it decreases monotonically over iterations (a test invariant).
double als_loss(const Csr& ratings, const Matrix& x, const Matrix& y,
                real lambda);

/// ALS-WR objective: squared error plus λ(Σ_u |Ω_u||x_u|² + Σ_i |Ω_i||y_i|²)
/// (weighted-λ regularization; minimized by AlsOptions::weighted_regularization).
double als_wr_loss(const Csr& ratings, const Matrix& x, const Matrix& y,
                   real lambda);

}  // namespace alsmf
