#include "als/multi_device.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <mutex>
#include <thread>

#include "als/reference.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "obs/registry.hpp"
#include "sparse/convert.hpp"

namespace alsmf {

std::vector<std::pair<index_t, index_t>> balance_by_nnz(const Csr& csr,
                                                        std::size_t parts) {
  std::vector<std::pair<index_t, index_t>> ranges;
  const index_t rows = csr.rows();
  if (rows == 0) {
    ranges.push_back({0, 0});
    return ranges;
  }
  parts = std::max<std::size_t>(
      1, std::min<std::size_t>(parts, static_cast<std::size_t>(rows)));
  const double target =
      static_cast<double>(csr.nnz()) / static_cast<double>(parts);
  index_t begin = 0;
  for (std::size_t p = 0; p + 1 < parts; ++p) {
    const double goal = static_cast<double>(p + 1) * target;
    // Advance while the cumulative nonzeros up to `end` fall short of the
    // goal (row_ptr[e] is the prefix nnz through row e-1).
    index_t end = begin;
    while (end < rows &&
           static_cast<double>(csr.row_ptr()[static_cast<std::size_t>(end)]) <
               goal) {
      ++end;
    }
    // Non-emptiness: this partition takes at least one row, and leaves at
    // least one row for each remaining partition. parts <= rows makes both
    // clamps mutually satisfiable (begin advances by >= 1 per partition).
    const auto remaining = static_cast<index_t>(parts - p - 1);
    end = std::max(end, static_cast<index_t>(begin + 1));
    end = std::min(end, static_cast<index_t>(rows - remaining));
    ranges.push_back({begin, end});
    begin = end;
  }
  ranges.push_back({begin, rows});
  return ranges;
}

std::string ElasticReport::to_json() const {
  json::JsonWriter w;
  w.begin_object()
      .field("device_failures", device_failures)
      .field("launch_failures", launch_failures)
      .field("repartitions", repartitions)
      .field("stragglers_detected", stragglers_detected)
      .field("speculative_reexecs", speculative_reexecs)
      .field("speculation_wins", speculation_wins)
      .field("transfer_retries", transfer_retries)
      .field("link_failovers", link_failovers)
      .field("kernel_relaunches", kernel_relaunches)
      .field("heartbeats", heartbeats)
      .field("recoveries", recoveries)
      .field("mttr_mean_seconds", mttr_mean_seconds())
      .field("devices_configured", devices_configured)
      .field("devices_alive", devices_alive)
      .field("degraded", degraded())
      .end_object();
  return w.str();
}

MultiDeviceAls::MultiDeviceAls(const Csr& train, const AlsOptions& options,
                               const AlsVariant& variant,
                               std::vector<devsim::DeviceProfile> profiles,
                               ElasticOptions elastic)
    : train_(train),
      train_t_(transpose(train)),
      options_(options),
      variant_(variant),
      elastic_(elastic),
      fault_model_(std::max<std::size_t>(1, profiles.size()), elastic.faults) {
  ALSMF_CHECK_MSG(!profiles.empty(), "need at least one device profile");
  row_solver_ = make_row_solver(options_);
  const auto n = profiles.size();
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  for (auto& p : profiles) {
    // Coordinator threads launch shards concurrently, and the global pool
    // rejects concurrent parallel_for — so with several devices each one
    // gets a private pool with its share of the hardware threads. A single
    // device keeps the global pool (the exact synchronous configuration).
    ThreadPool* pool = nullptr;
    if (n > 1) {
      pools_.push_back(std::make_unique<ThreadPool>(
          std::max(1u, hw / static_cast<unsigned>(n))));
      pool = pools_.back().get();
    }
    devices_.push_back(std::make_unique<devsim::Device>(std::move(p), pool));
  }
  health_.resize(devices_.size());
  report_.devices_configured = static_cast<int>(devices_.size());
  report_.devices_alive = report_.devices_configured;
  assign_shards();
  init_factors(train_.rows(), train_.cols(), options_, x_, y_);
}

Csr MultiDeviceAls::slice_rows(const Csr& csr, index_t begin, index_t end) {
  ALSMF_CHECK(begin >= 0 && begin <= end && end <= csr.rows());
  aligned_vector<nnz_t> row_ptr(static_cast<std::size_t>(end - begin) + 1, 0);
  const nnz_t base = csr.row_ptr()[static_cast<std::size_t>(begin)];
  for (index_t u = begin; u <= end; ++u) {
    row_ptr[static_cast<std::size_t>(u - begin)] =
        csr.row_ptr()[static_cast<std::size_t>(u)] - base;
  }
  const auto first = static_cast<std::size_t>(base);
  const auto count = static_cast<std::size_t>(
      csr.row_ptr()[static_cast<std::size_t>(end)] - base);
  aligned_vector<index_t> col_idx(csr.col_idx().begin() + static_cast<std::ptrdiff_t>(first),
                                  csr.col_idx().begin() + static_cast<std::ptrdiff_t>(first + count));
  aligned_vector<real> values(csr.values().begin() + static_cast<std::ptrdiff_t>(first),
                              csr.values().begin() + static_cast<std::ptrdiff_t>(first + count));
  return Csr(end - begin, csr.cols(), std::move(row_ptr), std::move(col_idx),
             std::move(values));
}

std::vector<std::size_t> MultiDeviceAls::alive_devices() const {
  std::vector<std::size_t> alive;
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    if (health_[d].state == DeviceHealth::State::kHealthy) alive.push_back(d);
  }
  return alive;
}

int MultiDeviceAls::alive_device_count() const {
  return static_cast<int>(alive_devices().size());
}

void MultiDeviceAls::mark_dead(std::size_t device) {
  if (health_[device].state == DeviceHealth::State::kDead) return;
  health_[device].state = DeviceHealth::State::kDead;
  ++report_.device_failures;
  report_.devices_alive = alive_device_count();
}

void MultiDeviceAls::assign_shards() {
  const auto alive = alive_devices();
  ALSMF_CHECK_MSG(!alive.empty(), "all devices lost — cannot repartition");
  x_shards_.clear();
  y_shards_.clear();
  const auto row_parts = balance_by_nnz(train_, alive.size());
  const auto col_parts = balance_by_nnz(train_t_, alive.size());
  for (std::size_t i = 0; i < row_parts.size(); ++i) {
    x_shards_.push_back({alive[i],
                         slice_rows(train_, row_parts[i].first,
                                    row_parts[i].second),
                         row_parts[i].first});
  }
  for (std::size_t i = 0; i < col_parts.size(); ++i) {
    y_shards_.push_back({alive[i],
                         slice_rows(train_t_, col_parts[i].first,
                                    col_parts[i].second),
                         col_parts[i].first});
  }
}

std::vector<std::pair<index_t, index_t>> MultiDeviceAls::row_partitions()
    const {
  std::vector<std::pair<index_t, index_t>> parts;
  for (const auto& s : x_shards_) {
    parts.push_back({s.first_row, s.first_row + s.matrix.rows()});
  }
  return parts;
}

MultiDeviceAls::ShardOutcome MultiDeviceAls::launch_shard(const Shard& shard,
                                                          const Matrix& src,
                                                          Matrix& dst,
                                                          const char* name) {
  ShardOutcome out;
  devsim::LaunchFault fault;
  if (elastic_.enabled) fault = fault_model_.on_launch(shard.device);
  if (fault.device_lost) {
    out.lost = true;
    return out;
  }

  const int k = options_.k;
  Matrix local(shard.matrix.rows(), k);
  if (options_.functional && row_solver_->uses_warm_start()) {
    // Iterative strategies warm-start each row from its previous factor
    // value; seed the shard-local output with the rows it will overwrite.
    for (index_t u = 0; u < local.rows(); ++u) {
      auto from = dst.row(shard.first_row + u);
      auto to = local.row(u);
      std::copy(from.begin(), from.end(), to.begin());
    }
  }
  UpdateArgs args;
  args.r = &shard.matrix;
  args.src = &src;
  args.dst = &local;
  args.lambda = options_.lambda;
  args.weighted_lambda = options_.weighted_regularization;
  args.tile_rows = options_.tile_rows;
  args.k = k;
  args.variant = variant_;
  args.solver = options_.solver;
  args.row_solver = row_solver_.get();

  for (int attempt = 0;; ++attempt) {
    try {
      const auto result =
          launch_update(*devices_[shard.device], name, args,
                        options_.num_groups, options_.group_size,
                        options_.functional);
      out.seconds = result.time.total_s() * fault.slowdown;
      break;
    } catch (const std::exception&) {
      // Transient launch fault (robust::FaultSite::kKernelLaunch): retry per
      // the guard budget; exhausting it counts as losing the device. The
      // non-elastic coordinator keeps the old contract and propagates.
      if (!elastic_.enabled) throw;
      if (attempt >= options_.guard_kernel_retries) {
        out.lost = true;
        return out;
      }
      out.relaunched = true;
    }
  }

  if (options_.functional) {
    for (index_t u = 0; u < local.rows(); ++u) {
      auto from = local.row(u);
      auto to = dst.row(shard.first_row + u);
      std::copy(from.begin(), from.end(), to.begin());
    }
  }
  return out;
}

std::vector<MultiDeviceAls::ShardOutcome> MultiDeviceAls::run_wave(
    const std::vector<Shard>& work, const Matrix& src, Matrix& dst,
    const char* name) {
  std::vector<ShardOutcome> outcomes(work.size());
  if (work.size() <= 1) {
    if (!work.empty()) outcomes[0] = launch_shard(work[0], src, dst, name);
    return outcomes;
  }
  // One coordinator thread per shard; each writes only its own outcome slot
  // and its own device's state, so the wave is race-free by construction.
  std::exception_ptr error;
  std::mutex error_m;
  std::vector<std::thread> threads;
  threads.reserve(work.size());
  for (std::size_t i = 0; i < work.size(); ++i) {
    threads.emplace_back([&, i] {
      try {
        outcomes[i] = launch_shard(work[i], src, dst, name);
      } catch (...) {
        std::scoped_lock lk(error_m);
        if (!error) error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (error) std::rethrow_exception(error);
  return outcomes;
}

double MultiDeviceAls::run_elastic(std::vector<Shard> work, const Matrix& src,
                                   Matrix& dst, const char* name, Axis axis) {
  double elapsed = 0;
  double pending_detection = -1;  // >= 0 while a recovery wave is in flight
  while (!work.empty()) {
    const auto outcomes = run_wave(work, src, dst, name);

    std::vector<double> completed;
    std::vector<std::pair<index_t, index_t>> lost_ranges;
    for (std::size_t i = 0; i < work.size(); ++i) {
      const auto& o = outcomes[i];
      if (o.relaunched) ++report_.kernel_relaunches;
      if (o.lost) {
        lost_ranges.push_back(
            {work[i].first_row, work[i].first_row + work[i].matrix.rows()});
        mark_dead(work[i].device);
        ++report_.launch_failures;
      } else {
        completed.push_back(o.seconds);
        auto& h = health_[work[i].device];
        ++h.heartbeats;
        ++report_.heartbeats;
        h.last_shard_seconds = o.seconds;
      }
    }

    // Half-step deadline from the heartbeat times: median x factor. With no
    // completions this wave, fall back to the last known median.
    double deadline = 0;
    if (!completed.empty()) {
      std::vector<double> sorted = completed;
      std::sort(sorted.begin(), sorted.end());
      last_median_shard_seconds_ = sorted[sorted.size() / 2];
    }
    if (last_median_shard_seconds_ > 0) {
      deadline =
          last_median_shard_seconds_ * elastic_.straggler_deadline_factor;
    }

    // Straggler handling: a healthy shard past the deadline is speculatively
    // re-executed on the fastest healthy device; its effective completion is
    // whichever copy finishes first.
    double wave_seconds = 0;
    for (std::size_t i = 0; i < work.size(); ++i) {
      if (outcomes[i].lost) continue;
      double effective = outcomes[i].seconds;
      if (elastic_.enabled && completed.size() >= 2 && deadline > 0 &&
          effective > deadline) {
        ++report_.stragglers_detected;
        ++health_[work[i].device].stragglers;
        // Fastest healthy helper by its last observed shard time.
        std::size_t helper = work[i].device;
        double best = std::numeric_limits<double>::infinity();
        for (const auto d : alive_devices()) {
          if (d == work[i].device) continue;
          if (health_[d].last_shard_seconds < best) {
            best = health_[d].last_shard_seconds;
            helper = d;
          }
        }
        if (helper != work[i].device) {
          // Re-run the shard on the helper (identical arithmetic — the copy
          // is bitwise the same, so a duplicate write is harmless). The
          // speculative copy starts once the deadline expires.
          Shard spec{helper, work[i].matrix, work[i].first_row};
          const auto spec_out = launch_shard(spec, src, dst, name);
          if (!spec_out.lost) {
            ++report_.speculative_reexecs;
            const double spec_finish = deadline + spec_out.seconds;
            if (spec_finish < effective) {
              effective = spec_finish;
              ++report_.speculation_wins;
            }
          }
        }
      }
      wave_seconds = std::max(wave_seconds, effective);
    }

    if (pending_detection >= 0) {
      // This wave was recovery work: one MTTR sample from detection latency
      // plus the recovery compute.
      observe_recovery(pending_detection + wave_seconds);
      pending_detection = -1;
    }

    if (lost_ranges.empty()) {
      elapsed += wave_seconds;
      work.clear();
      break;
    }

    // Device loss: detection happens at the heartbeat deadline; then the
    // dead devices' ranges re-balance across the survivors and their factor
    // rows are recomputed from the last all-gathered opposing factor.
    ALSMF_CHECK_MSG(!alive_devices().empty(),
                    "all devices lost — training cannot continue");
    const double detection = deadline > 0 ? deadline : wave_seconds;
    elapsed += std::max(wave_seconds, detection);
    assign_shards();
    ++report_.repartitions;
    pending_detection = detection;
    work = plan_recovery(axis, lost_ranges);
    if (work.empty() && pending_detection >= 0) {
      observe_recovery(pending_detection);
      pending_detection = -1;
    }
  }
  return elapsed;
}

std::vector<MultiDeviceAls::Shard> MultiDeviceAls::plan_recovery(
    Axis axis, const std::vector<std::pair<index_t, index_t>>& ranges) {
  const auto alive = alive_devices();
  const Csr& full = axis == Axis::kRows ? train_ : train_t_;
  std::vector<Shard> work;
  for (const auto& [begin, end] : ranges) {
    if (begin >= end) continue;
    const Csr lost = slice_rows(full, begin, end);
    const auto parts = balance_by_nnz(lost, alive.size());
    for (std::size_t i = 0; i < parts.size(); ++i) {
      if (parts[i].first >= parts[i].second) continue;
      work.push_back({alive[i],
                      slice_rows(full, begin + parts[i].first,
                                 begin + parts[i].second),
                      static_cast<index_t>(begin + parts[i].first)});
    }
  }
  return work;
}

double MultiDeviceAls::all_gather(Axis axis, const Matrix& src, Matrix& dst,
                                  const char* name) {
  const auto alive = alive_devices();
  if (alive.size() <= 1) return 0;

  // All-gather of the refreshed factor: with P devices each must receive
  // the (P-1)/P fraction it did not compute, over its own interconnect.
  const double factor_bytes = static_cast<double>(dst.rows()) *
                              static_cast<double>(options_.k) * sizeof(real);
  const auto parts = static_cast<double>(alive.size());
  const double bytes = factor_bytes * (parts - 1.0) / parts;

  double slowest = 0;
  std::vector<std::size_t> failed;
  for (const auto d : alive) {
    const double xfer =
        bytes / (devices_[d]->profile().pcie_bw_gbs * 1e9);
    double t = 0;
    bool ok = false;
    for (int attempt = 0; attempt <= elastic_.transfer_max_retries;
         ++attempt) {
      const bool faulted =
          elastic_.enabled && fault_model_.on_transfer_attempt(d);
      if (!faulted) {
        t += xfer;
        ok = true;
        break;
      }
      t += xfer;  // the faulted attempt still occupies the link
      if (attempt < elastic_.transfer_max_retries) {
        ++report_.transfer_retries;
        ++health_[d].transfer_retries;
        t += elastic_.transfer_backoff_s * std::pow(2.0, attempt);
      }
    }
    if (!ok) failed.push_back(d);
    slowest = std::max(slowest, t);
  }
  comm_seconds_ += slowest;
  double total = slowest;

  if (!failed.empty()) {
    // A dead link strands the device's freshly computed rows: fail the
    // device over and recompute its ranges on the survivors.
    const auto& shards = axis == Axis::kRows ? x_shards_ : y_shards_;
    std::vector<std::pair<index_t, index_t>> lost_ranges;
    for (const auto d : failed) {
      for (const auto& s : shards) {
        if (s.device == d) {
          lost_ranges.push_back({s.first_row, s.first_row + s.matrix.rows()});
        }
      }
      mark_dead(d);
      ++report_.link_failovers;
    }
    ALSMF_CHECK_MSG(!alive_devices().empty(),
                    "all devices lost — training cannot continue");
    assign_shards();
    ++report_.repartitions;
    if (!lost_ranges.empty()) {
      const double recovery =
          run_elastic(plan_recovery(axis, lost_ranges), src, dst, name, axis);
      observe_recovery(slowest + recovery);
      total += recovery;
    } else {
      observe_recovery(slowest);
    }
  }
  return total;
}

void MultiDeviceAls::observe_recovery(double mttr_seconds) {
  report_.mttr_total_seconds += mttr_seconds;
  ++report_.recoveries;
  if (metrics_) {
    metrics_->histogram("elastic_mttr_seconds", {},
                        "modeled detect-to-recovered time per recovery")
        .observe(mttr_seconds);
  }
}

void MultiDeviceAls::half_update(Axis axis, const Matrix& src, Matrix& dst,
                                 const char* name) {
  const auto& shards = axis == Axis::kRows ? x_shards_ : y_shards_;
  modeled_seconds_ += run_elastic(shards, src, dst, name, axis);
  modeled_seconds_ += all_gather(axis, src, dst, name);
  metrics_update();
}

void MultiDeviceAls::run_iteration() {
  half_update(Axis::kRows, y_, x_, "update_x");
  half_update(Axis::kCols, x_, y_, "update_y");
  ++iterations_done_;
}

double MultiDeviceAls::run() {
  MultiRunConfig config;
  return run(config).modeled_seconds;
}

MultiRunReport MultiDeviceAls::run(const MultiRunConfig& config) {
  MultiRunReport report;
  if (config.metrics) set_metrics(config.metrics);
  if (config.resume && config.checkpoint) {
    report.resumed_from = resume_latest(config.checkpoint->dir);
  }
  int remaining = config.iterations >= 0
                      ? config.iterations
                      : options_.iterations - iterations_done_;
  remaining = std::max(0, remaining);
  const double before = modeled_seconds_;
  for (int i = 0; i < remaining; ++i) {
    run_iteration();
    ++report.iterations;
    if (config.checkpoint && config.checkpoint->every > 0 &&
        iterations_done_ % config.checkpoint->every == 0) {
      save_checkpoint(
          robust::checkpoint_path(config.checkpoint->dir, iterations_done_));
      if (config.checkpoint->keep > 0) {
        robust::prune_checkpoints(config.checkpoint->dir,
                                  config.checkpoint->keep);
      }
    }
  }
  report.modeled_seconds = modeled_seconds_ - before;
  report_.devices_alive = alive_device_count();
  report.elastic = report_;
  metrics_update();
  return report;
}

void MultiDeviceAls::set_metrics(obs::Registry* metrics) {
  metrics_ = metrics;
  for (auto& device : devices_) device->set_metrics(metrics);
  metrics_update();
}

void MultiDeviceAls::metrics_update() {
  if (!metrics_) return;
  const auto advance = [](obs::Counter& c, std::uint64_t target) {
    const auto cur = c.value();
    if (target > cur) c.inc(target - cur);
  };
  advance(metrics_->counter("elastic_device_failures_total"),
          report_.device_failures);
  advance(metrics_->counter("elastic_launch_failures_total"),
          report_.launch_failures);
  advance(metrics_->counter("elastic_repartitions_total"),
          report_.repartitions);
  advance(metrics_->counter("elastic_stragglers_total"),
          report_.stragglers_detected);
  advance(metrics_->counter("elastic_speculations_total"),
          report_.speculative_reexecs);
  advance(metrics_->counter("elastic_speculation_wins_total"),
          report_.speculation_wins);
  advance(metrics_->counter("elastic_transfer_retries_total"),
          report_.transfer_retries);
  advance(metrics_->counter("elastic_link_failovers_total"),
          report_.link_failovers);
  advance(metrics_->counter("elastic_kernel_relaunches_total"),
          report_.kernel_relaunches);
  advance(metrics_->counter("elastic_heartbeats_total"), report_.heartbeats);
  advance(metrics_->counter("elastic_recoveries_total"), report_.recoveries);
  metrics_->gauge("elastic_alive_devices").set(alive_device_count());
  metrics_->gauge("elastic_degraded")
      .set(alive_device_count() < report_.devices_configured ? 1.0 : 0.0);
}

std::uint64_t MultiDeviceAls::options_hash() const {
  return trajectory_hash(options_, train_);
}

robust::TrainingCheckpoint MultiDeviceAls::make_checkpoint() const {
  robust::TrainingCheckpoint ckpt;
  ckpt.options_hash = options_hash();
  ckpt.iteration = iterations_done_;
  ckpt.x = x_;
  ckpt.y = y_;
  return ckpt;
}

void MultiDeviceAls::save_checkpoint(const std::string& path) const {
  robust::save_checkpoint_file(path, make_checkpoint());
}

std::int64_t MultiDeviceAls::resume_latest(const std::string& dir) {
  const auto checkpoints = robust::list_checkpoints(dir);
  for (auto it = checkpoints.rbegin(); it != checkpoints.rend(); ++it) {
    robust::TrainingCheckpoint ckpt;
    try {
      ckpt = robust::load_checkpoint_file(it->path);
    } catch (const Error&) {
      continue;  // corrupt/truncated: try the next-newest
    }
    if (ckpt.options_hash != options_hash()) continue;
    // The checkpoint carries only the global factor state: partitioning is
    // recomputed for whatever fleet this run has, so the writer's device
    // count is irrelevant.
    x_ = std::move(ckpt.x);
    y_ = std::move(ckpt.y);
    iterations_done_ = static_cast<int>(ckpt.iteration);
    return ckpt.iteration;
  }
  return -1;
}

}  // namespace alsmf
