#include "als/multi_device.hpp"

#include <algorithm>

#include "als/reference.hpp"
#include "common/error.hpp"
#include "sparse/convert.hpp"

namespace alsmf {

MultiDeviceAls::MultiDeviceAls(const Csr& train, const AlsOptions& options,
                               const AlsVariant& variant,
                               std::vector<devsim::DeviceProfile> profiles)
    : options_(options), variant_(variant) {
  ALSMF_CHECK_MSG(!profiles.empty(), "need at least one device profile");
  for (auto& p : profiles) {
    devices_.push_back(std::make_unique<devsim::Device>(std::move(p)));
  }

  const Csr train_t = transpose(train);
  row_parts_ = balance_by_nnz(train, devices_.size());
  col_parts_ = balance_by_nnz(train_t, devices_.size());
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    x_shards_.push_back(
        {slice_rows(train, row_parts_[d].first, row_parts_[d].second),
         row_parts_[d].first});
    y_shards_.push_back(
        {slice_rows(train_t, col_parts_[d].first, col_parts_[d].second),
         col_parts_[d].first});
  }

  init_factors(train.rows(), train.cols(), options_, x_, y_);
}

std::vector<std::pair<index_t, index_t>> MultiDeviceAls::balance_by_nnz(
    const Csr& csr, std::size_t parts) {
  // Contiguous ranges whose cumulative nonzeros approximate p/parts of the
  // total — the standard 1-D prefix-sum partitioning.
  std::vector<std::pair<index_t, index_t>> ranges;
  const double target =
      static_cast<double>(csr.nnz()) / static_cast<double>(parts);
  index_t begin = 0;
  nnz_t running = 0;
  for (std::size_t p = 0; p + 1 < parts; ++p) {
    const double goal = static_cast<double>(p + 1) * target;
    index_t end = begin;
    while (end < csr.rows() && static_cast<double>(running) < goal) {
      running += csr.row_nnz(end);
      ++end;
    }
    ranges.push_back({begin, end});
    begin = end;
  }
  ranges.push_back({begin, csr.rows()});
  return ranges;
}

Csr MultiDeviceAls::slice_rows(const Csr& csr, index_t begin, index_t end) {
  ALSMF_CHECK(begin >= 0 && begin <= end && end <= csr.rows());
  aligned_vector<nnz_t> row_ptr(static_cast<std::size_t>(end - begin) + 1, 0);
  const nnz_t base = csr.row_ptr()[static_cast<std::size_t>(begin)];
  for (index_t u = begin; u <= end; ++u) {
    row_ptr[static_cast<std::size_t>(u - begin)] =
        csr.row_ptr()[static_cast<std::size_t>(u)] - base;
  }
  const auto first = static_cast<std::size_t>(base);
  const auto count = static_cast<std::size_t>(
      csr.row_ptr()[static_cast<std::size_t>(end)] - base);
  aligned_vector<index_t> col_idx(csr.col_idx().begin() + static_cast<std::ptrdiff_t>(first),
                                  csr.col_idx().begin() + static_cast<std::ptrdiff_t>(first + count));
  aligned_vector<real> values(csr.values().begin() + static_cast<std::ptrdiff_t>(first),
                              csr.values().begin() + static_cast<std::ptrdiff_t>(first + count));
  return Csr(end - begin, csr.cols(), std::move(row_ptr), std::move(col_idx),
             std::move(values));
}

void MultiDeviceAls::half_update(std::vector<Shard>& shards, const Matrix& src,
                                 Matrix& dst, const char* name) {
  const int k = options_.k;
  double slowest = 0;
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    Shard& shard = shards[d];
    Matrix local(shard.matrix.rows(), k);
    UpdateArgs args;
    args.r = &shard.matrix;
    args.src = &src;
    args.dst = &local;
    args.lambda = options_.lambda;
    args.weighted_lambda = options_.weighted_regularization;
    args.k = k;
    args.variant = variant_;
    args.solver = options_.solver;
    const auto result =
        launch_update(*devices_[d], name, args, options_.num_groups,
                      options_.group_size, options_.functional);
    slowest = std::max(slowest, result.time.total_s());
    if (options_.functional) {
      for (index_t u = 0; u < local.rows(); ++u) {
        auto from = local.row(u);
        auto to = dst.row(shard.first_row + u);
        std::copy(from.begin(), from.end(), to.begin());
      }
    }
  }
  modeled_seconds_ += slowest;

  // All-gather of the refreshed factor: with P devices each must receive
  // the (P-1)/P fraction it did not compute, over its own interconnect.
  if (devices_.size() > 1) {
    const double factor_bytes = static_cast<double>(dst.rows()) *
                                static_cast<double>(k) * sizeof(real);
    double slowest_comm = 0;
    const auto parts = static_cast<double>(devices_.size());
    for (const auto& device : devices_) {
      const double bytes = factor_bytes * (parts - 1.0) / parts;
      slowest_comm = std::max(
          slowest_comm, bytes / (device->profile().pcie_bw_gbs * 1e9));
    }
    modeled_seconds_ += slowest_comm;
    comm_seconds_ += slowest_comm;
  }
}

void MultiDeviceAls::run_iteration() {
  half_update(x_shards_, y_, x_, "update_x");
  half_update(y_shards_, x_, y_, "update_y");
}

double MultiDeviceAls::run() {
  const double before = modeled_seconds_;
  for (int it = 0; it < options_.iterations; ++it) run_iteration();
  return modeled_seconds_ - before;
}

}  // namespace alsmf
