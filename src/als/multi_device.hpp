// Data-parallel ALS across multiple devices — the scaling scheme cuMF
// (HPDC'16) uses on multi-GPU systems, built on this library's kernels:
// rows of X are partitioned across devices (each holding the full Y), then
// columns of Y are partitioned (each holding the full X), with an
// all-gather of the updated factor between half-steps, priced at the
// devices' interconnect bandwidth.
#pragma once

#include <memory>
#include <vector>

#include "als/kernels.hpp"
#include "als/options.hpp"
#include "devsim/device.hpp"
#include "linalg/dense.hpp"
#include "sparse/csr.hpp"

namespace alsmf {

class MultiDeviceAls {
 public:
  /// One Device is created per profile; the rating matrix is partitioned
  /// by balancing nonzeros (contiguous row/column ranges).
  MultiDeviceAls(const Csr& train, const AlsOptions& options,
                 const AlsVariant& variant,
                 std::vector<devsim::DeviceProfile> profiles);

  void run_iteration();
  double run();  ///< all iterations; returns total modeled seconds

  const Matrix& x() const { return x_; }
  const Matrix& y() const { return y_; }

  /// Modeled wall time: per half-step the slowest device's kernel time,
  /// plus the factor all-gather.
  double modeled_seconds() const { return modeled_seconds_; }
  double communication_seconds() const { return comm_seconds_; }
  int device_count() const { return static_cast<int>(devices_.size()); }

  /// Row ranges assigned per device for the X update (exposed for tests).
  const std::vector<std::pair<index_t, index_t>>& row_partitions() const {
    return row_parts_;
  }

 private:
  struct Shard {
    Csr matrix;          ///< contiguous slice of rows (or transposed cols)
    index_t first_row;   ///< offset into the global factor
  };

  void half_update(std::vector<Shard>& shards, const Matrix& src, Matrix& dst,
                   const char* name);
  static std::vector<std::pair<index_t, index_t>> balance_by_nnz(
      const Csr& csr, std::size_t parts);
  static Csr slice_rows(const Csr& csr, index_t begin, index_t end);

  AlsOptions options_;
  AlsVariant variant_;
  std::vector<std::unique_ptr<devsim::Device>> devices_;
  std::vector<Shard> x_shards_, y_shards_;
  std::vector<std::pair<index_t, index_t>> row_parts_, col_parts_;
  Matrix x_, y_;
  double modeled_seconds_ = 0;
  double comm_seconds_ = 0;
};

}  // namespace alsmf
