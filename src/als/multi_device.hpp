// Elastic data-parallel ALS across multiple devices.
//
// The base scheme is what cuMF (HPDC'16) uses on multi-GPU systems: rows of
// X are partitioned across devices (each holding the full Y), then columns
// of Y are partitioned (each holding the full X), with an all-gather of the
// updated factor between half-steps priced at the devices' interconnect
// bandwidth.
//
// On top of that, the coordinator is fault-tolerant (docs/robustness.md,
// "Distributed fault model"):
//  * per-device/per-link faults come from devsim::FaultModel (seeded device
//    death, straggler slowdowns, transfer faults at the distributed
//    robust::fault_injection sites);
//  * shards launch concurrently, one coordinator thread per device, and a
//    completed launch is the device's heartbeat;
//  * deadline-based straggler detection (half-step deadline = median shard
//    seconds x straggler_deadline_factor) triggers speculative re-execution
//    of the slow shard on the fastest healthy device;
//  * faulted interconnect transfers retry with exponential backoff, priced
//    into communication_seconds(); an exhausted link fails the device over;
//  * permanent device loss triggers elastic repartition: the dead device's
//    row/column ranges are re-balanced across survivors and their factor
//    rows recomputed from the last all-gathered opposing factor, so the run
//    continues and converges.
//
// Zero-fault runs produce bitwise-identical factors to the synchronous
// trainer (row solves are partition-independent), and so do recovered runs
// — recovery recomputes exactly the lost rows from identical inputs.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "als/kernels.hpp"
#include "als/options.hpp"
#include "als/solver.hpp"
#include "common/thread_pool.hpp"
#include "devsim/device.hpp"
#include "devsim/faults.hpp"
#include "linalg/dense.hpp"
#include "robust/checkpoint.hpp"
#include "sparse/csr.hpp"

namespace alsmf::obs {
class Registry;
}

namespace alsmf {

/// Contiguous row ranges whose cumulative nonzeros approximate 1/parts of
/// the total (1-D prefix-sum partitioning). Always returns non-empty,
/// disjoint ranges covering [0, rows): at most min(parts, rows) of them, so
/// degenerate requests (parts > rows, heavily skewed nnz) yield fewer
/// partitions rather than empty shards. A 0-row matrix yields one empty
/// range.
std::vector<std::pair<index_t, index_t>> balance_by_nnz(const Csr& csr,
                                                        std::size_t parts);

/// Elastic-coordinator knobs. Defaults keep zero-fault runs indistinguishable
/// from the synchronous trainer (factors bitwise-identical; straggler
/// speculation can only fire when a shard exceeds the median-based deadline).
struct ElasticOptions {
  /// Master switch: false restores the fault-oblivious synchronous
  /// coordinator (no health checks, no fault-model queries).
  bool enabled = true;
  /// Half-step deadline = median completed-shard seconds x this factor; a
  /// healthy shard past the deadline counts as a straggler.
  double straggler_deadline_factor = 3.0;
  /// Interconnect transfer retries before the link (and its device) is
  /// declared lost.
  int transfer_max_retries = 3;
  /// Modeled backoff before retry r: transfer_backoff_s * 2^r.
  double transfer_backoff_s = 2e-4;
  devsim::FaultModelOptions faults;
};

/// Per-device health as the coordinator sees it.
struct DeviceHealth {
  enum class State { kHealthy, kDead };
  State state = State::kHealthy;
  std::uint64_t heartbeats = 0;        ///< completed shard launches
  std::uint64_t stragglers = 0;        ///< deadline misses while healthy
  std::uint64_t transfer_retries = 0;  ///< faulted transfer attempts retried
  double last_shard_seconds = 0;       ///< modeled seconds of the last shard
};

/// Recovery activity accumulated over a run (serialized by the CLI).
struct ElasticReport {
  std::uint64_t device_failures = 0;    ///< devices lost permanently
  std::uint64_t launch_failures = 0;    ///< launches lost to device death
  std::uint64_t repartitions = 0;       ///< elastic re-balances performed
  std::uint64_t stragglers_detected = 0;
  std::uint64_t speculative_reexecs = 0;
  std::uint64_t speculation_wins = 0;   ///< speculation beat the straggler
  std::uint64_t transfer_retries = 0;
  std::uint64_t link_failovers = 0;     ///< devices lost to a dead link
  std::uint64_t kernel_relaunches = 0;  ///< transient launch faults retried
  std::uint64_t heartbeats = 0;
  double mttr_total_seconds = 0;  ///< modeled detect-to-recovered time
  std::uint64_t recoveries = 0;   ///< recovery events (MTTR samples)
  int devices_configured = 0;
  int devices_alive = 0;

  bool degraded() const { return devices_alive < devices_configured; }
  double mttr_mean_seconds() const {
    return recoveries ? mttr_total_seconds / static_cast<double>(recoveries)
                      : 0.0;
  }
  std::string to_json() const;
};

/// Run configuration for the elastic trainer (mirrors RunConfig for the
/// single-device solver: remaining-work semantics, optional checkpointing,
/// optional metrics).
struct MultiRunConfig {
  /// Iterations to run in this call; -1 runs until iterations_done()
  /// reaches options().iterations.
  int iterations = -1;
  std::optional<CheckpointConfig> checkpoint;
  /// Resume from the newest loadable checkpoint in checkpoint->dir first.
  /// Checkpoints store the global factors, never the partition layout, so a
  /// run may resume with a different device count than the writer's.
  bool resume = false;
  obs::Registry* metrics = nullptr;
};

struct MultiRunReport {
  int iterations = 0;
  std::int64_t resumed_from = -1;
  double modeled_seconds = 0;
  ElasticReport elastic;
};

class MultiDeviceAls {
 public:
  /// One Device is created per profile; the rating matrix is partitioned
  /// by balancing nonzeros (contiguous row/column ranges).
  MultiDeviceAls(const Csr& train, const AlsOptions& options,
                 const AlsVariant& variant,
                 std::vector<devsim::DeviceProfile> profiles,
                 ElasticOptions elastic = {});

  void run_iteration();
  double run();  ///< remaining iterations; returns total modeled seconds

  /// The full-featured entry point: checkpointing, resume, metrics.
  MultiRunReport run(const MultiRunConfig& config);

  const Matrix& x() const { return x_; }
  const Matrix& y() const { return y_; }
  const AlsOptions& options() const { return options_; }
  int iterations_done() const { return iterations_done_; }

  /// Modeled wall time: per half-step the slowest device's effective kernel
  /// time (including recovery/speculation), plus the factor all-gather.
  double modeled_seconds() const { return modeled_seconds_; }
  double communication_seconds() const { return comm_seconds_; }
  int device_count() const { return static_cast<int>(devices_.size()); }
  int alive_device_count() const;

  const DeviceHealth& health(std::size_t device) const {
    return health_[device];
  }
  const ElasticReport& elastic_report() const { return report_; }

  /// Attaches a metrics registry: elastic_* recovery series plus the
  /// devices' devsim_* series (null detaches).
  void set_metrics(obs::Registry* metrics);

  /// Row ranges assigned per alive device for the X update (exposed for
  /// tests). After a device loss this reflects the post-repartition layout.
  std::vector<std::pair<index_t, index_t>> row_partitions() const;

  /// Checkpointing: the checkpoint carries the global factors and iteration
  /// (partition-layout-agnostic), keyed by trajectory_hash(options, train) —
  /// device count is excluded, so resume works across fleet sizes.
  std::uint64_t options_hash() const;
  robust::TrainingCheckpoint make_checkpoint() const;
  void save_checkpoint(const std::string& path) const;
  /// Restores from the newest loadable checkpoint in `dir`, skipping
  /// corrupt or mismatched files; returns the resumed iteration or -1.
  std::int64_t resume_latest(const std::string& dir);

 private:
  enum class Axis { kRows, kCols };

  struct Shard {
    std::size_t device;  ///< index into devices_
    Csr matrix;          ///< contiguous slice of rows (or transposed cols)
    index_t first_row;   ///< offset into the global factor
  };

  struct ShardOutcome {
    double seconds = 0;      ///< modeled seconds, straggler-inflated
    bool lost = false;       ///< device died; dst rows were not produced
    bool relaunched = false; ///< a transient launch fault was retried
  };

  void half_update(Axis axis, const Matrix& src, Matrix& dst,
                   const char* name);
  /// Launches `work` concurrently (one thread per shard) and returns per-
  /// shard outcomes. Lost shards leave their dst rows untouched.
  std::vector<ShardOutcome> run_wave(const std::vector<Shard>& work,
                                     const Matrix& src, Matrix& dst,
                                     const char* name);
  /// Executes `work`, recovering from deaths by repartitioning onto
  /// survivors and recomputing lost ranges; returns the wave's effective
  /// modeled seconds (including detection latency and recovery).
  double run_elastic(std::vector<Shard> work, const Matrix& src, Matrix& dst,
                     const char* name, Axis axis);
  /// All-gather of `dst` with link-fault retry/backoff; failed links fail
  /// the device over and its ranges are recomputed on survivors.
  double all_gather(Axis axis, const Matrix& src, Matrix& dst,
                    const char* name);

  ShardOutcome launch_shard(const Shard& shard, const Matrix& src,
                            Matrix& dst, const char* name);
  std::vector<std::size_t> alive_devices() const;
  void mark_dead(std::size_t device);
  /// Recomputes both axes' shard assignments over the alive devices.
  void assign_shards();
  /// Splits `ranges` of `axis` across alive devices by nnz.
  std::vector<Shard> plan_recovery(
      Axis axis, const std::vector<std::pair<index_t, index_t>>& ranges);
  void observe_recovery(double mttr_seconds);
  void metrics_update();

  static Csr slice_rows(const Csr& csr, index_t begin, index_t end);

  Csr train_, train_t_;
  AlsOptions options_;
  AlsVariant variant_;
  std::unique_ptr<RowSolver> row_solver_;
  ElasticOptions elastic_;
  std::vector<std::unique_ptr<ThreadPool>> pools_;
  std::vector<std::unique_ptr<devsim::Device>> devices_;
  std::vector<DeviceHealth> health_;
  devsim::FaultModel fault_model_;
  std::vector<Shard> x_shards_, y_shards_;
  Matrix x_, y_;
  int iterations_done_ = 0;
  double modeled_seconds_ = 0;
  double comm_seconds_ = 0;
  double last_median_shard_seconds_ = 0;
  ElasticReport report_;
  obs::Registry* metrics_ = nullptr;
};

}  // namespace alsmf
