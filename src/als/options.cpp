#include "als/options.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace alsmf {

const char* to_string(LinearSolverKind kind) {
  switch (kind) {
    case LinearSolverKind::kCholesky: return "cholesky";
    case LinearSolverKind::kLu: return "lu";
  }
  return "?";
}

const char* to_string(RowSolverKind kind) {
  switch (kind) {
    case RowSolverKind::kCholesky: return "cholesky";
    case RowSolverKind::kCg: return "cg";
    case RowSolverKind::kSubspace: return "subspace";
  }
  return "?";
}

const char* to_string(StoragePrecision precision) {
  switch (precision) {
    case StoragePrecision::kFp32: return "fp32";
    case StoragePrecision::kFp16: return "fp16";
    case StoragePrecision::kBf16: return "bf16";
  }
  return "?";
}

bool try_parse(const std::string& text, LinearSolverKind& out) {
  if (text == "cholesky") {
    out = LinearSolverKind::kCholesky;
  } else if (text == "lu") {
    out = LinearSolverKind::kLu;
  } else {
    return false;
  }
  return true;
}

bool try_parse(const std::string& text, RowSolverKind& out) {
  if (text == "cholesky") {
    out = RowSolverKind::kCholesky;
  } else if (text == "cg") {
    out = RowSolverKind::kCg;
  } else if (text == "subspace") {
    out = RowSolverKind::kSubspace;
  } else {
    return false;
  }
  return true;
}

LinearSolverKind parse_linear_solver(const std::string& text) {
  LinearSolverKind out;
  if (!try_parse(text, out)) {
    throw Error("unknown linear solver '" + text +
                "'; expected one of: cholesky, lu");
  }
  return out;
}

RowSolverKind parse_row_solver(const std::string& text) {
  RowSolverKind out;
  if (!try_parse(text, out)) {
    throw Error("unknown row solver '" + text +
                "'; expected one of: cholesky, cg, subspace");
  }
  return out;
}

bool try_parse(const std::string& text, StoragePrecision& out) {
  if (text == "fp32" || text == "float") {
    out = StoragePrecision::kFp32;
  } else if (text == "fp16" || text == "half") {
    out = StoragePrecision::kFp16;
  } else if (text == "bf16" || text == "bfloat16") {
    out = StoragePrecision::kBf16;
  } else {
    return false;
  }
  return true;
}

StoragePrecision parse_storage_precision(const std::string& text) {
  StoragePrecision out;
  if (!try_parse(text, out)) {
    throw Error("unknown storage precision '" + text +
                "'; expected one of: fp32, fp16, bf16");
  }
  return out;
}

std::string AlsVariant::name() const {
  if (!thread_batching) return "flat";
  std::string n = "batch";
  if (use_local) n += "+local";
  if (use_registers) n += "+reg";
  if (use_vectors) n += "+vec";
  return n;
}

AlsVariant AlsVariant::from_mask(unsigned mask) {
  ALSMF_CHECK(mask < kVariantCount);
  AlsVariant v;
  v.thread_batching = true;
  v.use_registers = (mask & 1u) != 0;
  v.use_local = (mask & 2u) != 0;
  v.use_vectors = (mask & 4u) != 0;
  return v;
}

AlsVariant AlsVariant::flat_baseline() {
  AlsVariant v;
  v.thread_batching = false;
  v.use_registers = false;
  v.use_local = false;
  v.use_vectors = false;
  return v;
}

AlsVariant AlsVariant::batching_only() { return from_mask(0); }
AlsVariant AlsVariant::batch_local() { return from_mask(2); }
AlsVariant AlsVariant::batch_local_reg() { return from_mask(3); }
AlsVariant AlsVariant::batch_vectors() { return from_mask(4); }

void validate(const FactorOptionsBase& options) {
  if (options.k <= 0) {
    throw Error("invalid k = " + std::to_string(options.k) +
                "; the latent dimensionality must be >= 1");
  }
  if (!(options.lambda > 0.0f)) {
    throw Error("invalid lambda = " + std::to_string(options.lambda) +
                "; the ridge term must be > 0 (it keeps the normal "
                "equations positive definite)");
  }
  if (options.iterations < 0) {
    throw Error("invalid iterations = " + std::to_string(options.iterations) +
                "; the iteration budget must be >= 0");
  }
}

int AlsOptions::effective_subspace_block() const {
  if (subspace_block > 0) return std::min(subspace_block, k);
  return std::min(std::max(2, k / 2), k);
}

void validate(const AlsOptions& options) {
  validate(static_cast<const FactorOptionsBase&>(options));
  if (options.num_groups == 0) {
    throw Error("invalid num_groups = 0; at least one work-group is needed");
  }
  if (options.group_size <= 0) {
    throw Error("invalid group_size = " + std::to_string(options.group_size) +
                "; the work-group needs >= 1 lane");
  }
  if (options.cg_iters <= 0) {
    throw Error("invalid cg_iters = " + std::to_string(options.cg_iters) +
                "; the truncated CG row solver needs >= 1 inner iteration");
  }
  if (options.subspace_block < 0 || options.subspace_block > options.k) {
    throw Error("invalid subspace_block = " +
                std::to_string(options.subspace_block) +
                "; expected 0 (auto) or a block size in [1, k = " +
                std::to_string(options.k) + "]");
  }
  if (options.anderson_m < 0) {
    throw Error("invalid anderson_m = " + std::to_string(options.anderson_m) +
                "; expected 0 (mixing off) or a positive history window");
  }
  if (options.guard_max_attempts < 0 || options.guard_kernel_retries < 0) {
    throw Error("invalid guard retry knobs; attempts and retries must be "
                ">= 0");
  }
}

}  // namespace alsmf
