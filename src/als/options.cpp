#include "als/options.hpp"

#include "common/error.hpp"

namespace alsmf {

const char* to_string(LinearSolverKind kind) {
  switch (kind) {
    case LinearSolverKind::kCholesky: return "cholesky";
    case LinearSolverKind::kLu: return "lu";
  }
  return "?";
}

std::string AlsVariant::name() const {
  if (!thread_batching) return "flat";
  std::string n = "batch";
  if (use_local) n += "+local";
  if (use_registers) n += "+reg";
  if (use_vectors) n += "+vec";
  return n;
}

AlsVariant AlsVariant::from_mask(unsigned mask) {
  ALSMF_CHECK(mask < kVariantCount);
  AlsVariant v;
  v.thread_batching = true;
  v.use_registers = (mask & 1u) != 0;
  v.use_local = (mask & 2u) != 0;
  v.use_vectors = (mask & 4u) != 0;
  return v;
}

AlsVariant AlsVariant::flat_baseline() {
  AlsVariant v;
  v.thread_batching = false;
  v.use_registers = false;
  v.use_local = false;
  v.use_vectors = false;
  return v;
}

AlsVariant AlsVariant::batching_only() { return from_mask(0); }
AlsVariant AlsVariant::batch_local() { return from_mask(2); }
AlsVariant AlsVariant::batch_local_reg() { return from_mask(3); }
AlsVariant AlsVariant::batch_vectors() { return from_mask(4); }

}  // namespace alsmf
