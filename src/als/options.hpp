// Solver options and the paper's code-variant toggles (§III-D: 8 variants
// from individually applying/combining the three optimizations on top of
// thread batching, plus the flat SAC'15-style baseline mapping).
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace alsmf {

/// Which dense solver factorizes the k×k normal equations when a row is
/// solved exactly (step S3).
enum class LinearSolverKind {
  kCholesky,  ///< the paper's choice (symmetric positive definite smat)
  kLu,        ///< ablation comparator
};

/// Row-solver strategy for the per-row normal equations (docs/solvers.md).
enum class RowSolverKind {
  kCholesky,  ///< exact solve via LinearSolverKind (the paper's S3)
  kCg,        ///< truncated conjugate gradient, warm-started from the
              ///< previous factor row (rusket-style, cg_iters ≈ 3)
  kSubspace,  ///< iALS++-style block coordinate sweep: d×d subsystems over
              ///< the k coordinates, warm-started like CG
};

/// Storage width of the factor/rating buffers (the mixed-precision axis,
/// docs/static-analysis.md "Precision certification"). Accumulation always
/// runs at real_t width; only what is *stored* — and therefore the off-chip
/// traffic — narrows. Every non-fp32 kernel flavor must be certified by the
/// static precision analyzer before it is usable.
enum class StoragePrecision {
  kFp32,  ///< store at real_t width (the paper's configuration)
  kFp16,  ///< IEEE binary16 storage: 11-bit significand, max 65504
  kBf16,  ///< bfloat16 storage: fp32 exponent range, 8-bit significand
};

const char* to_string(LinearSolverKind kind);
const char* to_string(RowSolverKind kind);
const char* to_string(StoragePrecision precision);

// String ↔ enum helpers shared by the CLI, JSON run events, and checkpoint
// tooling. The try_parse forms return false on unknown text; the parse_*
// forms throw an Error naming the bad value and the accepted spellings.
bool try_parse(const std::string& text, LinearSolverKind& out);
bool try_parse(const std::string& text, RowSolverKind& out);
bool try_parse(const std::string& text, StoragePrecision& out);
LinearSolverKind parse_linear_solver(const std::string& text);
RowSolverKind parse_row_solver(const std::string& text);
StoragePrecision parse_storage_precision(const std::string& text);

/// One code variant of the ALS update kernel.
struct AlsVariant {
  /// Thread batching (§III-B): a whole work-group updates one row. When
  /// false, the flat baseline mapping is used (one lane per row) and the
  /// other toggles are ignored (the baseline has none of them).
  bool thread_batching = true;
  /// §III-C1: replace the k×k dynamically-indexed private accumulator with
  /// unrolled per-lane registers.
  bool use_registers = false;
  /// §III-C2: stage the needed columns of Y and the nonzeros of r_u in
  /// local (scratch-pad) memory.
  bool use_local = false;
  /// §III-C3: explicit vector types for the inner loops.
  bool use_vectors = false;

  /// Short display name, e.g. "batch+local+reg".
  std::string name() const;

  /// The 8 batched variants in toggle order (index = bitmask reg|local|vec).
  static AlsVariant from_mask(unsigned mask);
  static constexpr unsigned kVariantCount = 8;

  /// Named presets used throughout the paper's figures.
  static AlsVariant flat_baseline();       ///< SAC'15 mapping
  static AlsVariant batching_only();       ///< "thread batching"
  static AlsVariant batch_local();         ///< "+local memory"
  static AlsVariant batch_local_reg();     ///< "+local memory +register"
  static AlsVariant batch_vectors();       ///< "+vector"

  friend bool operator==(const AlsVariant&, const AlsVariant&) = default;
};

/// Hyperparameters shared by every factorization trainer in the family —
/// explicit ALS (AlsOptions), implicit ALS (ImplicitOptions), and the
/// multi-device driver. One definition, one validation path.
struct FactorOptionsBase {
  int k = 10;                 ///< latent factor dimensionality
  real lambda = 0.1f;         ///< Tikhonov regularization
  int iterations = 5;         ///< training iteration budget
  std::uint64_t seed = 42;    ///< random init of the item factors
};

/// Validates the shared hyperparameters; throws an Error naming the bad
/// field, the offending value, and the accepted range.
void validate(const FactorOptionsBase& options);

/// ALS hyperparameters and launch shape. Paper defaults: k = 10, λ = 0.1,
/// 5 iterations, thread configuration 8192 × 32.
struct AlsOptions : FactorOptionsBase {
  std::size_t num_groups = 8192;  ///< work-groups per launch (batched)
  int group_size = 32;            ///< lanes per work-group
  /// Local-memory staging tile rows (0 = auto-sized for occupancy).
  int tile_rows = 0;
  LinearSolverKind solver = LinearSolverKind::kCholesky;
  /// Row-solver strategy for step S3. kCholesky reproduces the paper's
  /// exact solve bit-for-bit; kCg and kSubspace trade per-row accuracy for
  /// time-to-quality (docs/solvers.md).
  RowSolverKind row_solver = RowSolverKind::kCholesky;
  /// Truncated-CG inner iterations per row solve (row_solver == kCg).
  int cg_iters = 3;
  /// Subspace block size d (row_solver == kSubspace). 0 = auto: max(2, k/2),
  /// clamped to k.
  int subspace_block = 0;
  /// Anderson-mixing history window for the outer (U,V) fixed point;
  /// 0 disables mixing (plain alternation).
  int anderson_m = 0;
  /// ALS-WR (Zhou et al., the paper's [3]): scale the ridge term per row by
  /// its rating count, λ_u = λ·|Ω_u| — markedly better generalization on
  /// sparse data at the same per-iteration cost.
  bool weighted_regularization = false;
  /// Factor storage width. Non-fp32 runs round every freshly solved factor
  /// block through the storage format after the half-update — exactly what
  /// a device storing X/Y at half width would observe — trading a bounded
  /// RMSE delta (bench_regress fp16_train leg) for halved factor traffic.
  StoragePrecision storage = StoragePrecision::kFp32;
  /// Functional execution (compute the factors) vs accounting-only
  /// (cost-model sweeps).
  bool functional = true;

  // Robustness knobs. None of these change the training trajectory when no
  // fault fires, so they are excluded from the checkpoint trajectory hash.
  /// Sweep each freshly updated factor block for NaN/Inf and repair bad
  /// rows by re-solving with escalating regularization.
  bool guard_updates = true;
  real guard_lambda_escalation = 10.0f;  ///< λ multiplier per repair retry
  int guard_max_attempts = 3;            ///< repair retries before zeroing
  /// Times a failed kernel launch is retried before the error propagates.
  int guard_kernel_retries = 1;

  /// The effective subspace block size (resolves the 0 = auto default).
  int effective_subspace_block() const;
};

/// Full validation: the shared base plus the launch shape and the
/// row-solver knobs.
void validate(const AlsOptions& options);

}  // namespace alsmf
