#include "als/out_of_core.hpp"

#include <filesystem>
#include <fstream>

#include "als/reference.hpp"
#include "als/row_solve.hpp"
#include "common/error.hpp"
#include "sparse/io.hpp"

namespace alsmf {

namespace {

Csr slice_rows(const Csr& csr, index_t begin, index_t end) {
  aligned_vector<nnz_t> row_ptr(static_cast<std::size_t>(end - begin) + 1, 0);
  const nnz_t base = csr.row_ptr()[static_cast<std::size_t>(begin)];
  for (index_t u = begin; u <= end; ++u) {
    row_ptr[static_cast<std::size_t>(u - begin)] =
        csr.row_ptr()[static_cast<std::size_t>(u)] - base;
  }
  const auto first = static_cast<std::size_t>(base);
  const auto count = static_cast<std::size_t>(
      csr.row_ptr()[static_cast<std::size_t>(end)] - base);
  aligned_vector<index_t> col_idx(
      csr.col_idx().begin() + static_cast<std::ptrdiff_t>(first),
      csr.col_idx().begin() + static_cast<std::ptrdiff_t>(first + count));
  aligned_vector<real> values(
      csr.values().begin() + static_cast<std::ptrdiff_t>(first),
      csr.values().begin() + static_cast<std::ptrdiff_t>(first + count));
  return Csr(end - begin, csr.cols(), std::move(row_ptr), std::move(col_idx),
             std::move(values));
}

}  // namespace

ShardedMatrix write_sharded(const Csr& matrix, const std::string& directory,
                            nnz_t max_nnz_per_shard) {
  ALSMF_CHECK(max_nnz_per_shard > 0);
  std::filesystem::create_directories(directory);

  ShardedMatrix sharded;
  sharded.rows = matrix.rows();
  sharded.cols = matrix.cols();
  sharded.nnz = matrix.nnz();

  index_t begin = 0;
  int shard_id = 0;
  while (begin < matrix.rows()) {
    index_t end = begin;
    nnz_t load = 0;
    while (end < matrix.rows() &&
           (load == 0 || load + matrix.row_nnz(end) <= max_nnz_per_shard)) {
      load += matrix.row_nnz(end);
      ++end;
    }
    ShardedMatrix::Shard shard;
    shard.path = directory + "/shard_" + std::to_string(shard_id++) + ".bin";
    shard.first_row = begin;
    shard.row_count = end - begin;
    shard.nnz = load;
    write_csr_binary_file(shard.path, slice_rows(matrix, begin, end));
    sharded.shards.push_back(std::move(shard));
    begin = end;
  }

  std::ofstream manifest(directory + "/manifest.txt");
  ALSMF_CHECK_MSG(manifest.good(), "cannot write manifest in " + directory);
  manifest << sharded.rows << " " << sharded.cols << " " << sharded.nnz << " "
           << sharded.shards.size() << "\n";
  for (const auto& s : sharded.shards) {
    manifest << s.path << " " << s.first_row << " " << s.row_count << " "
             << s.nnz << "\n";
  }
  return sharded;
}

ShardedMatrix read_manifest(const std::string& directory) {
  std::ifstream in(directory + "/manifest.txt");
  ALSMF_CHECK_MSG(in.good(), "cannot open manifest in " + directory);
  ShardedMatrix sharded;
  std::size_t count = 0;
  in >> sharded.rows >> sharded.cols >> sharded.nnz >> count;
  ALSMF_CHECK_MSG(!in.fail(), "malformed manifest header");
  sharded.shards.resize(count);
  for (auto& s : sharded.shards) {
    in >> s.path >> s.first_row >> s.row_count >> s.nnz;
    ALSMF_CHECK_MSG(!in.fail(), "malformed manifest entry");
  }
  return sharded;
}

void out_of_core_half_update(const ShardedMatrix& sharded, const Matrix& src,
                             Matrix& dst, const AlsOptions& options,
                             ThreadPool* pool) {
  ALSMF_CHECK(sharded.rows == dst.rows());
  ALSMF_CHECK(sharded.cols == src.rows());
  if (!pool) pool = &ThreadPool::global();
  const int k = options.k;

  for (const auto& shard_info : sharded.shards) {
    const Csr shard = read_csr_binary_file(shard_info.path);
    ALSMF_CHECK(shard.rows() == shard_info.row_count);
    pool->parallel_for(
        0, static_cast<std::size_t>(shard.rows()),
        [&](std::size_t b, std::size_t e, unsigned) {
          std::vector<real> smat(static_cast<std::size_t>(k) * k);
          std::vector<real> svec(static_cast<std::size_t>(k));
          for (std::size_t local = b; local < e; ++local) {
            const auto u = static_cast<index_t>(local);
            auto out = dst.row(shard_info.first_row + u);
            if (shard.row_nnz(u) == 0) {
              std::fill(out.begin(), out.end(), real{0});
              continue;
            }
            const real lambda =
                options.weighted_regularization
                    ? options.lambda * static_cast<real>(shard.row_nnz(u))
                    : options.lambda;
            assemble_normal_equations(shard.row_cols(u), shard.row_values(u),
                                      src, lambda, k, smat.data(),
                                      svec.data());
            solve_normal_equations(smat.data(), svec.data(), k,
                                   options.solver);
            std::copy(svec.begin(), svec.end(), out.begin());
          }
        });
  }
}

OutOfCoreResult out_of_core_als(const std::string& r_dir,
                                const std::string& rt_dir,
                                const AlsOptions& options, ThreadPool* pool) {
  const ShardedMatrix r = read_manifest(r_dir);
  const ShardedMatrix rt = read_manifest(rt_dir);
  ALSMF_CHECK_MSG(r.rows == rt.cols && r.cols == rt.rows,
                  "transpose manifest does not match");
  OutOfCoreResult result;
  init_factors(r.rows, r.cols, options, result.x, result.y);
  for (const auto& s : r.shards) {
    result.peak_resident_nnz = std::max(result.peak_resident_nnz, s.nnz);
  }
  for (const auto& s : rt.shards) {
    result.peak_resident_nnz = std::max(result.peak_resident_nnz, s.nnz);
  }
  for (int it = 0; it < options.iterations; ++it) {
    out_of_core_half_update(r, result.y, result.x, options, pool);
    out_of_core_half_update(rt, result.x, result.y, options, pool);
  }
  return result;
}

}  // namespace alsmf
