// Out-of-core ALS: train on rating matrices that do not fit in memory by
// streaming row shards from disk. Only the fixed factor, the updated
// factor, and one shard are ever resident — the access pattern the
// related work's block-storage solvers (e.g. MLGF-MF on SSDs) exploit,
// realized here for the ALS update's embarrassingly-rowwise structure.
#pragma once

#include <string>
#include <vector>

#include "als/options.hpp"
#include "common/thread_pool.hpp"
#include "linalg/dense.hpp"
#include "sparse/csr.hpp"

namespace alsmf {

/// A sharded on-disk matrix: row ranges of a CSR stored as one binary CSR
/// file per shard plus a small manifest.
struct ShardedMatrix {
  index_t rows = 0;
  index_t cols = 0;
  nnz_t nnz = 0;
  struct Shard {
    std::string path;
    index_t first_row = 0;
    index_t row_count = 0;
    nnz_t nnz = 0;
  };
  std::vector<Shard> shards;
};

/// Splits `matrix` into shards of at most `max_nnz_per_shard` nonzeros
/// (row-aligned) and writes them under `directory` (created if needed).
/// Returns the manifest; also persisted as `<directory>/manifest.txt`.
ShardedMatrix write_sharded(const Csr& matrix, const std::string& directory,
                            nnz_t max_nnz_per_shard);

/// Loads a manifest written by write_sharded.
ShardedMatrix read_manifest(const std::string& directory);

/// One half-update streaming over shards: for each shard, load it, solve
/// its rows against `src`, write into the matching rows of `dst`, release.
/// Peak memory: factors + the largest shard.
void out_of_core_half_update(const ShardedMatrix& sharded, const Matrix& src,
                             Matrix& dst, const AlsOptions& options,
                             ThreadPool* pool = nullptr);

struct OutOfCoreResult {
  Matrix x, y;
  nnz_t peak_resident_nnz = 0;  ///< largest shard actually loaded
};

/// Full out-of-core ALS: both orientations must have been sharded
/// (`r_dir` row-major for the X update, `rt_dir` its transpose for Y).
OutOfCoreResult out_of_core_als(const std::string& r_dir,
                                const std::string& rt_dir,
                                const AlsOptions& options,
                                ThreadPool* pool = nullptr);

}  // namespace alsmf
