#include "als/precision_kernels.hpp"

#include <sstream>

#include "ocl/analyze/precision/shadow.hpp"
#include "ocl/kernel_flavors.hpp"

namespace alsmf {

namespace {

namespace pz = ocl::analyze::precision;

void json_escape(std::ostringstream& os, const std::string& s) {
  os << "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    if (c == '\n') {
      os << "\\n";
      continue;
    }
    os << c;
  }
  os << "\"";
}

}  // namespace

PrecisionKernelsResult analyze_precision_kernels(
    const PrecisionKernelsOptions& options) {
  ocl::KernelConfig kc;
  kc.k = options.k;
  kc.group_size = options.group_size;
  if (options.tile_rows > 0) kc.tile_rows = static_cast<int>(options.tile_rows);

  PrecisionKernelsResult out;
  for (const ocl::KernelFlavor& flavor : ocl::enumerate_kernel_flavors(kc)) {
    try {
      const auto reports =
          pz::analyze_source_precision(flavor.source, options.assumptions);
      for (const auto& report : reports) {
        // A source holds one kernel plus helpers; only the entry point is
        // analyzed, but keep the filter in case that changes.
        if (report.kernel != flavor.name) continue;
        PrecisionKernelsEntry entry;
        entry.kernel = flavor.name;
        entry.report = report;
        if (options.witness && flavor.storage != StoragePrecision::kFp32) {
          pz::ShadowWitnessConfig wc;
          wc.k = options.k;
          wc.group_size = options.group_size;
          wc.assumptions = options.assumptions;
          const pz::ShadowWitness w = pz::run_shadow_witness(
              flavor.source, flavor.name, flavor.storage, wc);
          entry.witness_ran = w.ran;
          entry.observed_err = w.observed_err;
          entry.witness_overflow = w.overflow_observed;
          // A witness that failed to run asserts nothing — fail closed.
          entry.dominated = w.ran && w.observed_err <= report.output.err;
        }
        out.entries.push_back(std::move(entry));
      }
      if (reports.empty()) {
        out.errors.push_back(flavor.name + ": no __kernel function found");
      }
    } catch (const ocl::analyze::ParseError& e) {
      out.errors.push_back(flavor.name + ": line " + std::to_string(e.line) +
                           ": " + e.message);
    } catch (const std::exception& e) {
      out.errors.push_back(flavor.name + ": " + std::string(e.what()));
    }
  }
  return out;
}

std::string PrecisionKernelsResult::to_json() const {
  std::ostringstream os;
  os << "{\"clean\":" << (clean() ? "true" : "false") << ",\"errors\":[";
  for (std::size_t i = 0; i < errors.size(); ++i) {
    if (i) os << ",";
    json_escape(os, errors[i]);
  }
  os << "],\"kernels\":[";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& e = entries[i];
    if (i) os << ",";
    os << "{\"certificate\":" << pz::to_json(e.report)
       << ",\"witness\":{\"ran\":" << (e.witness_ran ? "true" : "false")
       << ",\"observed_err\":" << e.observed_err
       << ",\"overflow_observed\":" << (e.witness_overflow ? "true" : "false")
       << ",\"dominated\":" << (e.dominated ? "true" : "false") << "}}";
  }
  os << "]}";
  return os.str();
}

}  // namespace alsmf
