// The `alsmf analyze-precision` sweep: the mixed-precision counterpart of
// verify_kernels.hpp. Every generated kernel flavor
// (ocl/kernel_flavors.hpp) is run through the static precision analyzer
// (ocl/analyze/precision/) under the ALS operating assumptions, and every
// narrow-storage (fp16 / bf16) flavor is additionally cross-checked by the
// dynamic shadow-precision witness (ocl/analyze/precision/shadow.hpp):
// the static worst-case error bound must dominate the divergence observed
// on the seeded witness problem. The gate is strict and fails closed —
// a parse failure, an uncertified kernel (overflow-possible / nan at the
// output store / unbounded error), a witness overflow, or a dominance
// violation all make clean() false (the CLI then exits nonzero).
#pragma once

#include <string>
#include <vector>

#include "ocl/analyze/precision/precision.hpp"

namespace alsmf {

struct PrecisionKernelsOptions {
  int k = 10;
  int group_size = 32;
  long tile_rows = 0;   ///< forced TILE_ROWS define (0 = generator default)
  bool witness = true;  ///< run the dynamic shadow leg on narrow flavors
  ocl::analyze::precision::PrecisionAssumptions assumptions;
};

/// One sweep entry: a kernel flavor, its static certificate, and (for
/// narrow-storage flavors when witnessing is on) the dynamic cross-check.
struct PrecisionKernelsEntry {
  std::string kernel;
  ocl::analyze::precision::PrecisionReport report;
  bool witness_ran = false;
  double observed_err = 0;       ///< max |X_shadow - X_exact| on the witness
  bool witness_overflow = false; ///< non-finite value in the shadow output
  /// Static bound >= observed divergence. True when no witness ran (the
  /// fp32 flavors and --no-witness runs assert nothing dynamically).
  bool dominated = true;
};

struct PrecisionKernelsResult {
  std::vector<PrecisionKernelsEntry> entries;
  /// Parse/lowering failures, "kernel: message" (fail closed).
  std::vector<std::string> errors;

  bool clean() const {
    if (!errors.empty() || entries.empty()) return false;
    for (const auto& e : entries) {
      if (!e.report.certified || !e.dominated || e.witness_overflow) {
        return false;
      }
    }
    return true;
  }
  std::string to_json() const;
};

/// Runs the sweep over every flavor of enumerate_kernel_flavors.
PrecisionKernelsResult analyze_precision_kernels(
    const PrecisionKernelsOptions& options);

}  // namespace alsmf
