#include "als/reference.hpp"

#include <cmath>
#include <vector>

#include "als/row_solve.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "sparse/convert.hpp"

namespace alsmf {

void init_factors(index_t users, index_t items, const AlsOptions& options,
                  Matrix& x, Matrix& y) {
  Rng rng(options.seed);
  init_factors(users, items, options, x, y, rng);
}

void init_factors(index_t users, index_t items, const AlsOptions& options,
                  Matrix& x, Matrix& y, Rng& rng) {
  x = Matrix(users, options.k, real{0});
  y = Matrix(items, options.k);
  const real scale =
      static_cast<real>(1.0 / std::sqrt(static_cast<double>(options.k)));
  y.fill_uniform(rng, -0.5f * scale, 0.5f * scale);
}

void reference_half_update(const Csr& r, const Matrix& src, Matrix& dst,
                           const AlsOptions& options) {
  ALSMF_CHECK(r.rows() == dst.rows());
  ALSMF_CHECK(r.cols() == src.rows());
  const int k = options.k;
  std::vector<real> smat(static_cast<std::size_t>(k) * k);
  std::vector<real> svec(static_cast<std::size_t>(k));
  for (index_t u = 0; u < r.rows(); ++u) {
    auto row = dst.row(u);
    if (r.row_nnz(u) == 0) {
      std::fill(row.begin(), row.end(), real{0});
      continue;
    }
    const real lambda = options.weighted_regularization
                            ? options.lambda * static_cast<real>(r.row_nnz(u))
                            : options.lambda;
    assemble_normal_equations(r.row_cols(u), r.row_values(u), src, lambda, k,
                              smat.data(), svec.data());
    solve_normal_equations(smat.data(), svec.data(), k, options.solver);
    std::copy(svec.begin(), svec.end(), row.begin());
  }
}

ReferenceResult reference_als(const Csr& train, const AlsOptions& options) {
  ReferenceResult result;
  init_factors(train.rows(), train.cols(), options, result.x, result.y);
  const Csr train_t = transpose(train);
  for (int it = 0; it < options.iterations; ++it) {
    reference_half_update(train, result.y, result.x, options);
    reference_half_update(train_t, result.x, result.y, options);
  }
  return result;
}

}  // namespace alsmf
