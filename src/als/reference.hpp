// Sequential reference ALS: Algorithm 1 of the paper with no device
// mapping. Ground truth for the device-kernel variants in tests, and a
// simple host path for small problems.
#pragma once

#include <utility>

#include "als/options.hpp"
#include "linalg/dense.hpp"
#include "sparse/csr.hpp"

namespace alsmf {

struct ReferenceResult {
  Matrix x;  ///< m × k user factors
  Matrix y;  ///< n × k item factors
};

/// Runs options.iterations full ALS iterations (X update then Y update).
/// Y is initialized uniformly in [-0.5, 0.5) scaled by 1/√k from
/// options.seed; X starts at zero (Algorithm 1 line 2).
ReferenceResult reference_als(const Csr& train, const AlsOptions& options);

/// Initializes factor matrices exactly as reference_als / AlsSolver do
/// (shared so device variants start from identical state).
void init_factors(index_t users, index_t items, const AlsOptions& options,
                  Matrix& x, Matrix& y);

/// Same, but drawing from a caller-owned generator (which must be seeded
/// with options.seed for the canonical initialization). Lets the solver
/// checkpoint its RNG stream position.
void init_factors(index_t users, index_t items, const AlsOptions& options,
                  Matrix& x, Matrix& y, Rng& rng);

/// One half-update: recomputes every row of `dst` from `src` over the rows
/// of `r` (r rows must correspond to dst rows). Sequential.
void reference_half_update(const Csr& r, const Matrix& src, Matrix& dst,
                           const AlsOptions& options);

}  // namespace alsmf
