#include "als/row_solve.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/lu.hpp"
#include "robust/fault_injection.hpp"

namespace alsmf {

void accumulate_normal_row(const real* yrow, real rating, int k, real* smat,
                           real* svec) {
  for (int i = 0; i < k; ++i) {
    const real yi = yrow[i];
    real* srow = smat + static_cast<std::size_t>(i) * static_cast<std::size_t>(k);
    for (int j = i; j < k; ++j) srow[j] += yi * yrow[j];
    svec[i] += rating * yi;
  }
}

void finalize_normal_equations(real lambda, int k, real* smat) {
  for (int i = 0; i < k; ++i) {
    smat[static_cast<std::size_t>(i) * k + i] += lambda;
    for (int j = i + 1; j < k; ++j) {
      smat[static_cast<std::size_t>(j) * k + i] =
          smat[static_cast<std::size_t>(i) * k + j];
    }
  }
}

void assemble_normal_equations(std::span<const index_t> cols,
                               std::span<const real> vals, const Matrix& y,
                               real lambda, int k, real* smat, real* svec) {
  ALSMF_CHECK(cols.size() == vals.size());
  std::fill(smat, smat + static_cast<std::size_t>(k) * k, real{0});
  std::fill(svec, svec + k, real{0});
  for (std::size_t p = 0; p < cols.size(); ++p) {
    accumulate_normal_row(y.row(cols[p]).data(), vals[p], k, smat, svec);
  }
  finalize_normal_equations(lambda, k, smat);
}

void assemble_normal_equations_staged(std::span<const real> tile,
                                      std::span<const real> vals, real lambda,
                                      int k, real* smat, real* svec) {
  ALSMF_CHECK(tile.size() == vals.size() * static_cast<std::size_t>(k));
  std::fill(smat, smat + static_cast<std::size_t>(k) * k, real{0});
  std::fill(svec, svec + k, real{0});
  for (std::size_t p = 0; p < vals.size(); ++p) {
    accumulate_normal_row(tile.data() + p * static_cast<std::size_t>(k), vals[p], k,
                   smat, svec);
  }
  finalize_normal_equations(lambda, k, smat);
}

bool solve_normal_equations(real* smat, real* svec, int k,
                            LinearSolverKind solver) {
  if (robust::fault_at(robust::FaultSite::kSolve)) {
    // Model a numerically blown-up solve: the caller sees NaN factors, which
    // the post-update divergence guard must catch and repair.
    std::fill(svec, svec + k, std::numeric_limits<real>::quiet_NaN());
    return true;
  }
  const bool ok = solver == LinearSolverKind::kCholesky
                      ? cholesky_solve(smat, k, svec)
                      : lu_solve(smat, k, svec);
  if (!ok) std::fill(svec, svec + k, real{0});
  return ok;
}

}  // namespace alsmf
