// The single-row ALS update shared by every code variant: assemble the
// normal equations  (Σ_{i∈Ω_u} y_i y_iᵀ + λI) x_u = Σ_{i∈Ω_u} r_ui y_i
// and solve the k×k system. All variants perform this exact arithmetic in
// the same order, so their functional results agree to the last bit; they
// differ only in how the work is mapped onto the device (accounting).
#pragma once

#include <span>

#include "als/options.hpp"
#include "linalg/dense.hpp"

namespace alsmf {

/// Accumulates one gathered y row into the upper triangle of smat and into
/// svec (the innermost step shared by all variants and the reference).
void accumulate_normal_row(const real* yrow, real rating, int k, real* smat,
                           real* svec);

/// Adds λ to the diagonal and mirrors the upper triangle down.
void finalize_normal_equations(real lambda, int k, real* smat);

/// Fills smat (k×k row-major) with Σ y_i y_iᵀ + λI and svec (k) with
/// Σ r_ui y_i, over the stored entries (cols, vals) of one row.
void assemble_normal_equations(std::span<const index_t> cols,
                               std::span<const real> vals, const Matrix& y,
                               real lambda, int k, real* smat, real* svec);

/// Same arithmetic as assemble_normal_equations, but gathering y rows from
/// a pre-staged contiguous tile (omega × k floats, row p = y_{cols[p]}), as
/// the local-memory variant does. Bit-identical results by construction.
void assemble_normal_equations_staged(std::span<const real> tile,
                                      std::span<const real> vals, real lambda,
                                      int k, real* smat, real* svec);

/// Solves smat · x = svec in place (svec becomes x_u). Falls back to zero
/// on a numerically failed factorization (cannot happen for λ > 0, checked
/// in tests). Returns false on failure.
bool solve_normal_equations(real* smat, real* svec, int k,
                            LinearSolverKind solver);

}  // namespace alsmf
