#include "als/row_solver.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "als/row_solve.hpp"
#include "common/error.hpp"
#include "linalg/cg.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/lu.hpp"
#include "robust/fault_injection.hpp"

namespace alsmf {

namespace {

/// Mirrors solve_normal_equations' injected-fault behavior so every
/// strategy feeds the divergence guard the same way: NaN factors that the
/// post-update sweep must catch and repair.
bool inject_solve_fault(real* svec, int k) {
  if (!robust::fault_at(robust::FaultSite::kSolve)) return false;
  std::fill(svec, svec + k, std::numeric_limits<real>::quiet_NaN());
  return true;
}

class CholeskyRowSolver final : public RowSolver {
 public:
  explicit CholeskyRowSolver(LinearSolverKind linear) : linear_(linear) {}

  RowSolverKind kind() const override { return RowSolverKind::kCholesky; }

  bool solve(real* smat, real* svec, int k, const real* /*warm*/,
             real* /*scratch*/) const override {
    // Delegating keeps the exact strategy bit-identical to the
    // pre-strategy code path (including fault injection and the zero-fill
    // fallback).
    return solve_normal_equations(smat, svec, k, linear_);
  }

  bool uses_warm_start() const override { return false; }
  std::size_t scratch_reals(int /*k*/) const override { return 0; }

  double modeled_flops(int k) const override {
    return linear_ == LinearSolverKind::kCholesky ? cholesky_solve_flops(k)
                                                  : lu_solve_flops(k);
  }

 private:
  LinearSolverKind linear_;
};

class CgRowSolver final : public RowSolver {
 public:
  explicit CgRowSolver(int iters) : iters_(iters) { ALSMF_CHECK(iters > 0); }

  RowSolverKind kind() const override { return RowSolverKind::kCg; }

  bool solve(real* smat, real* svec, int k, const real* warm,
             real* scratch) const override {
    if (inject_solve_fault(svec, k)) return true;
    real* x = scratch;
    CgScratch cg{scratch + k, scratch + 2 * k, scratch + 3 * k};
    if (warm) {
      std::copy(warm, warm + k, x);
    } else {
      std::fill(x, x + k, real{0});
    }
    cg_solve(smat, k, svec, x, iters_, cg);
    std::copy(x, x + k, svec);
    return true;
  }

  bool uses_warm_start() const override { return true; }

  std::size_t scratch_reals(int k) const override {
    return 4 * static_cast<std::size_t>(k);
  }

  double modeled_flops(int k) const override {
    return cg_solve_flops(k, iters_);
  }

 private:
  int iters_;
};

/// iALS++-style block coordinate sweep: one pass over ⌈k/d⌉ coordinate
/// blocks, each solved exactly against the residual right-hand side with
/// the other coordinates frozen at their current value (block
/// Gauss-Seidel, convergent for SPD systems). With d = k the sweep is a
/// single exact solve.
class SubspaceRowSolver final : public RowSolver {
 public:
  explicit SubspaceRowSolver(int block) : d_(block) { ALSMF_CHECK(block > 0); }

  RowSolverKind kind() const override { return RowSolverKind::kSubspace; }

  bool solve(real* smat, real* svec, int k, const real* warm,
             real* scratch) const override {
    if (inject_solve_fault(svec, k)) return true;
    const int d = std::min(d_, k);
    real* x = scratch;                          // k
    real* bm = scratch + k;                     // d*d block system
    real* brhs = bm + static_cast<std::size_t>(d) * d;  // d block rhs
    if (warm) {
      std::copy(warm, warm + k, x);
    } else {
      std::fill(x, x + k, real{0});
    }
    for (int b0 = 0; b0 < k; b0 += d) {
      const int bs = std::min(d, k - b0);
      for (int i = 0; i < bs; ++i) {
        const real* arow =
            smat + static_cast<std::size_t>(b0 + i) * static_cast<std::size_t>(k);
        // rhs_B = b_B - A[B, ¬B]·x_¬B with the block's own columns excluded.
        real s = svec[b0 + i];
        for (int j = 0; j < k; ++j) {
          if (j < b0 || j >= b0 + bs) s -= arow[j] * x[j];
        }
        brhs[i] = s;
        for (int j = 0; j < bs; ++j) {
          bm[static_cast<std::size_t>(i) * d + j] = arow[b0 + j];
        }
      }
      if (!cholesky_solve_stride(bm, bs, d, brhs)) {
        // Principal submatrices of an SPD system are SPD, so this cannot
        // fire for λ > 0; mirror the exact strategy's zero-fill contract.
        std::fill(svec, svec + k, real{0});
        return false;
      }
      for (int i = 0; i < bs; ++i) x[b0 + i] = brhs[i];
    }
    std::copy(x, x + k, svec);
    return true;
  }

  bool uses_warm_start() const override { return true; }

  std::size_t scratch_reals(int k) const override {
    const auto d = static_cast<std::size_t>(std::min(d_, k));
    return static_cast<std::size_t>(k) + d * d + d;
  }

  double modeled_flops(int k) const override {
    return subspace_solve_flops(k, std::min(d_, k));
  }

 private:
  /// Cholesky solve of the bs×bs leading block of a d-strided buffer.
  static bool cholesky_solve_stride(real* a, int bs, int d, real* b) {
    if (bs == d) return cholesky_solve(a, bs, b);
    // Compact the block to bs-stride in place (rows move down, never up,
    // so the copy is safe front-to-back).
    for (int i = 1; i < bs; ++i) {
      std::memmove(a + static_cast<std::size_t>(i) * bs,
                   a + static_cast<std::size_t>(i) * d,
                   static_cast<std::size_t>(bs) * sizeof(real));
    }
    return cholesky_solve(a, bs, b);
  }

  int d_;
};

}  // namespace

double subspace_solve_flops(int k, int d) {
  double total = 0;
  for (int b0 = 0; b0 < k; b0 += d) {
    const int bs = std::min(d, k - b0);
    // Residual rhs against the frozen coordinates + the exact block solve.
    total += 2.0 * bs * (k - bs) + cholesky_solve_flops(bs);
  }
  return total;
}

std::unique_ptr<RowSolver> make_exact_row_solver(LinearSolverKind linear) {
  return std::make_unique<CholeskyRowSolver>(linear);
}

std::unique_ptr<RowSolver> make_row_solver(const AlsOptions& options) {
  switch (options.row_solver) {
    case RowSolverKind::kCholesky:
      return std::make_unique<CholeskyRowSolver>(options.solver);
    case RowSolverKind::kCg:
      return std::make_unique<CgRowSolver>(options.cg_iters);
    case RowSolverKind::kSubspace:
      return std::make_unique<SubspaceRowSolver>(
          options.effective_subspace_block());
  }
  throw Error("unknown RowSolverKind");
}

AndersonMixer::AndersonMixer(std::size_t dim, int m) : dim_(dim), m_(m) {
  ALSMF_CHECK(m > 0);
  ALSMF_CHECK(dim > 0);
}

void AndersonMixer::reset() {
  has_prev_ = false;
  df_.clear();
  dg_.clear();
}

void AndersonMixer::mix(const real* z, real* g) {
  // f = G(z) - z, the fixed-point residual.
  std::vector<real> f(dim_);
  double fnorm_sq = 0;
  for (std::size_t i = 0; i < dim_; ++i) {
    f[i] = g[i] - z[i];
    fnorm_sq += static_cast<double>(f[i]) * static_cast<double>(f[i]);
  }

  // Safeguard: a residual that grew after a mixed step means the last
  // extrapolation left the basin the window was built in. Drop the
  // history and let this iteration be a plain (unmixed) restart.
  if (has_prev_ && !df_.empty() && fnorm_sq > prev_fnorm_sq_) {
    reset();
  }

  if (has_prev_) {
    std::vector<real> df(dim_), dg(dim_);
    for (std::size_t i = 0; i < dim_; ++i) {
      df[i] = f[i] - prev_f_[i];
      dg[i] = g[i] - prev_g_[i];
    }
    df_.push_back(std::move(df));
    dg_.push_back(std::move(dg));
    if (df_.size() > static_cast<std::size_t>(m_)) {
      df_.erase(df_.begin());
      dg_.erase(dg_.begin());
    }
  }
  prev_f_ = f;
  prev_g_.assign(g, g + dim_);
  prev_fnorm_sq_ = fnorm_sq;
  has_prev_ = true;
  if (df_.empty()) return;  // first iterate: plain g

  // Type-II AA: γ = argmin ‖f − Σ γ_j Δf_j‖ via the (tiny) m×m normal
  // equations, lightly ridged against a collinear window.
  const auto m = static_cast<int>(df_.size());
  std::vector<double> nmat(static_cast<std::size_t>(m) * m);
  std::vector<double> rhs(static_cast<std::size_t>(m));
  const auto ddot = [&](const std::vector<real>& a, const std::vector<real>& b) {
    double s = 0;
    for (std::size_t i = 0; i < dim_; ++i) {
      s += static_cast<double>(a[i]) * static_cast<double>(b[i]);
    }
    return s;
  };
  double diag_max = 0;
  for (int i = 0; i < m; ++i) {
    for (int j = i; j < m; ++j) {
      const double v = ddot(df_[static_cast<std::size_t>(i)],
                            df_[static_cast<std::size_t>(j)]);
      nmat[static_cast<std::size_t>(i) * m + j] = v;
      nmat[static_cast<std::size_t>(j) * m + i] = v;
      if (i == j) diag_max = std::max(diag_max, v);
    }
    rhs[static_cast<std::size_t>(i)] = ddot(df_[static_cast<std::size_t>(i)], f);
  }
  if (!(diag_max > 0) || !std::isfinite(diag_max)) {
    reset();
    return;
  }
  const double ridge = 1e-10 * diag_max;
  for (int i = 0; i < m; ++i) nmat[static_cast<std::size_t>(i) * m + i] += ridge;

  // In-place Gaussian elimination with partial pivoting (m ≤ the window).
  std::vector<int> piv(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i) piv[static_cast<std::size_t>(i)] = i;
  for (int c = 0; c < m; ++c) {
    int best = c;
    for (int r = c + 1; r < m; ++r) {
      if (std::fabs(nmat[static_cast<std::size_t>(r) * m + c]) >
          std::fabs(nmat[static_cast<std::size_t>(best) * m + c])) {
        best = r;
      }
    }
    if (best != c) {
      for (int j = 0; j < m; ++j) {
        std::swap(nmat[static_cast<std::size_t>(c) * m + j],
                  nmat[static_cast<std::size_t>(best) * m + j]);
      }
      std::swap(rhs[static_cast<std::size_t>(c)],
                rhs[static_cast<std::size_t>(best)]);
    }
    const double p = nmat[static_cast<std::size_t>(c) * m + c];
    if (!(std::fabs(p) > 0) || !std::isfinite(p)) {
      reset();
      return;
    }
    for (int r = c + 1; r < m; ++r) {
      const double factor = nmat[static_cast<std::size_t>(r) * m + c] / p;
      for (int j = c; j < m; ++j) {
        nmat[static_cast<std::size_t>(r) * m + j] -=
            factor * nmat[static_cast<std::size_t>(c) * m + j];
      }
      rhs[static_cast<std::size_t>(r)] -= factor * rhs[static_cast<std::size_t>(c)];
    }
  }
  std::vector<double> gamma(static_cast<std::size_t>(m));
  for (int i = m - 1; i >= 0; --i) {
    double s = rhs[static_cast<std::size_t>(i)];
    for (int j = i + 1; j < m; ++j) {
      s -= nmat[static_cast<std::size_t>(i) * m + j] * gamma[static_cast<std::size_t>(j)];
    }
    gamma[static_cast<std::size_t>(i)] = s / nmat[static_cast<std::size_t>(i) * m + i];
  }
  double gamma_l1 = 0;
  for (double gv : gamma) {
    if (!std::isfinite(gv)) {
      reset();
      return;
    }
    gamma_l1 += std::fabs(gv);
  }
  // Safeguard: a near-collinear window produces huge mixing weights and a
  // wild extrapolation. Scale the step back into a trust region instead.
  constexpr double kGammaCap = 4.0;
  if (gamma_l1 > kGammaCap) {
    const double shrink = kGammaCap / gamma_l1;
    for (double& gv : gamma) gv *= shrink;
  }

  // z_next = g − Σ γ_j Δg_j (overwrites g; history already recorded the
  // unmixed image, as type II requires).
  for (int j = 0; j < m; ++j) {
    const real gj = static_cast<real>(gamma[static_cast<std::size_t>(j)]);
    const auto& dg = dg_[static_cast<std::size_t>(j)];
    for (std::size_t i = 0; i < dim_; ++i) g[i] -= gj * dg[i];
  }
}

}  // namespace alsmf
