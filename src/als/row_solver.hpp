// Pluggable row-solver strategies for step S3 (docs/solvers.md).
//
// Every ALS half-update assembles the same k×k normal equations
//   (Σ y_i y_iᵀ + λI) x_u = Σ r_ui y_i
// per row; the strategies differ in how the system is solved:
//
//  * cholesky — exact factorization (the paper's S3, bit-identical to the
//               pre-strategy code path).
//  * cg       — truncated conjugate gradient, warm-started from the row's
//               previous factor value (rusket-style, cg_iters ≈ 3).
//  * subspace — iALS++-style block coordinate sweep: ⌈k/d⌉ exact d×d
//               solves per row, warm-started like CG.
//
// The strategy objects are stateless and shared across work-groups; any
// per-solve scratch is caller-provided (scratch_reals), so concurrent
// group execution never races.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "als/options.hpp"

namespace alsmf {

/// Strategy interface for the per-row S3 solve.
class RowSolver {
 public:
  virtual ~RowSolver() = default;

  virtual RowSolverKind kind() const = 0;

  /// Solves smat·x = svec in place (svec becomes x_u). `warm` seeds the
  /// iterative strategies with the row's previous factor value (nullptr =
  /// zero start); the exact solve ignores it. `scratch` must hold at least
  /// scratch_reals(k) reals. Returns false when the solve failed and svec
  /// was zero-filled.
  virtual bool solve(real* smat, real* svec, int k, const real* warm,
                     real* scratch) const = 0;

  /// Whether solve() reads `warm` — prices the extra factor-row fetch and
  /// decides if the kernel must read dst before overwriting it.
  virtual bool uses_warm_start() const = 0;

  /// Scratch reals one solve needs (0 for the exact strategy).
  virtual std::size_t scratch_reals(int k) const = 0;

  /// Modeled flop count of one row solve. S3 pricing: the devsim cost
  /// model and the static kernel profiles both charge this.
  virtual double modeled_flops(int k) const = 0;
};

/// Builds the strategy selected by `options` (row_solver, solver, cg_iters,
/// subspace_block).
std::unique_ptr<RowSolver> make_row_solver(const AlsOptions& options);

/// The exact strategy alone — what a null UpdateArgs::row_solver defaults
/// to (launch_update's pre-strategy compatibility path).
std::unique_ptr<RowSolver> make_exact_row_solver(LinearSolverKind linear);

/// Flop model of one subspace sweep over all ⌈k/d⌉ blocks (per-block d×d
/// Cholesky plus the cross-block right-hand-side corrections).
double subspace_solve_flops(int k, int d);

/// Anderson acceleration (type II) of the outer fixed point z ← G(z),
/// where z stacks the flattened (X, Y) factors. Keeps a window of the last
/// m residual/iterate differences and replaces G(z) with the least-squares
/// combination that minimizes the linearized residual — typically 30–50%
/// fewer outer iterations at equal quality on ALS (rusket, SNIPPETS.md).
class AndersonMixer {
 public:
  /// `dim` is the stacked iterate length; `m` the history window (≥ 1).
  AndersonMixer(std::size_t dim, int m);

  /// Given the pre-update iterate z and its fixed-point image g = G(z)
  /// (both length dim), overwrites g with the mixed next iterate. The
  /// first call (empty history) and any numerically degenerate window
  /// fall back to plain g.
  void mix(const real* z, real* g);

  /// Drops the history (after a trajectory discontinuity, e.g. resume).
  void reset();

  /// History pairs currently in the window (0 before the second mix call).
  int depth() const { return static_cast<int>(df_.size()); }

 private:
  std::size_t dim_;
  int m_;
  std::vector<real> prev_g_, prev_f_;
  double prev_fnorm_sq_ = 0;
  bool has_prev_ = false;
  std::vector<std::vector<real>> df_;  ///< residual differences Δf_j
  std::vector<std::vector<real>> dg_;  ///< image differences Δg_j
};

}  // namespace alsmf
