#include "als/solver.hpp"

#include <cstring>
#include <vector>

#include "als/metrics.hpp"
#include "als/reference.hpp"
#include "als/row_solve.hpp"
#include "common/error.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/lu.hpp"
#include "sparse/convert.hpp"

namespace alsmf {

std::uint64_t trajectory_hash(const AlsOptions& options, const Csr& train) {
  std::uint64_t state = 0x616c736d66ULL;  // "alsmf"
  std::uint64_t h = splitmix64(state);
  const auto mix = [&](std::uint64_t v) {
    state ^= v;
    h ^= splitmix64(state);
  };
  mix(static_cast<std::uint64_t>(options.k));
  std::uint32_t lambda_bits = 0;
  std::memcpy(&lambda_bits, &options.lambda, sizeof(lambda_bits));
  mix(lambda_bits);
  mix(options.seed);
  mix(options.weighted_regularization ? 1 : 0);
  mix(static_cast<std::uint64_t>(options.solver));
  mix(static_cast<std::uint64_t>(train.rows()));
  mix(static_cast<std::uint64_t>(train.cols()));
  mix(static_cast<std::uint64_t>(train.nnz()));
  return h;
}

AlsSolver::AlsSolver(const Csr& train, const AlsOptions& options,
                     const AlsVariant& variant, devsim::Device& device)
    : train_(train),
      train_t_(transpose(train)),
      options_(options),
      variant_(variant),
      device_(device),
      rng_(options.seed) {
  ALSMF_CHECK(options.k > 0);
  ALSMF_CHECK(options.lambda > 0.0f);
  init_factors(train.rows(), train.cols(), options_, x_, y_, rng_);
}

void AlsSolver::launch_with_retry(const char* name, const UpdateArgs& args) {
  for (int attempt = 0;; ++attempt) {
    try {
      launch_update(device_, name, args, options_.num_groups,
                    options_.group_size, options_.functional);
      return;
    } catch (const Error&) {
      if (attempt >= options_.guard_kernel_retries) throw;
      // Half-updates only read `src` and overwrite `dst`, so relaunching
      // after a partial failure is idempotent.
      ++report_.kernel_relaunches;
    }
  }
}

void AlsSolver::guard_factor(Matrix& dst, const Csr& r, const Matrix& src) {
  if (!options_.guard_updates || !options_.functional) return;
  robust::GuardOptions gopt;
  gopt.lambda_escalation = options_.guard_lambda_escalation;
  gopt.max_attempts = options_.guard_max_attempts;
  const int k = options_.k;
  const auto kk = static_cast<std::size_t>(k) * static_cast<std::size_t>(k);
  std::vector<real> smat(kk), smat_saved(kk), rhs_saved(static_cast<std::size_t>(k));
  const auto resolve = [&](index_t row, real lambda_scale, real* out) {
    if (r.row_nnz(row) == 0) {
      std::fill(out, out + k, real{0});
      return true;
    }
    const real base =
        options_.weighted_regularization
            ? options_.lambda * static_cast<real>(r.row_nnz(row))
            : options_.lambda;
    assemble_normal_equations(r.row_cols(row), r.row_values(row), src,
                              base * lambda_scale, k, smat.data(), out);
    std::copy(smat.begin(), smat.end(), smat_saved.begin());
    std::copy(out, out + k, rhs_saved.begin());
    if (cholesky_solve(smat.data(), k, out)) return true;
    // Non-SPD even after redamping: fall back to LU on the saved system.
    ++report_.solver_fallbacks;
    std::copy(smat_saved.begin(), smat_saved.end(), smat.begin());
    std::copy(rhs_saved.begin(), rhs_saved.end(), out);
    return lu_solve(smat.data(), k, out);
  };
  robust::guard_rows(dst, resolve, gopt, report_);
}

void AlsSolver::update_x() {
  UpdateArgs args;
  args.r = &train_;
  args.src = &y_;
  args.dst = &x_;
  args.lambda = options_.lambda;
  args.weighted_lambda = options_.weighted_regularization;
  args.tile_rows = options_.tile_rows;
  args.k = options_.k;
  args.variant = variant_;
  args.solver = options_.solver;
  launch_with_retry("update_x", args);
  guard_factor(x_, train_, y_);
}

void AlsSolver::update_y() {
  UpdateArgs args;
  args.r = &train_t_;
  args.src = &x_;
  args.dst = &y_;
  args.lambda = options_.lambda;
  args.weighted_lambda = options_.weighted_regularization;
  args.tile_rows = options_.tile_rows;
  args.k = options_.k;
  args.variant = variant_;
  args.solver = options_.solver;
  launch_with_retry("update_y", args);
  guard_factor(y_, train_t_, x_);
}

void AlsSolver::set_factors(const Matrix& x, const Matrix& y) {
  ALSMF_CHECK(x.rows() == x_.rows() && x.cols() == x_.cols());
  ALSMF_CHECK(y.rows() == y_.rows() && y.cols() == y_.cols());
  x_ = x;
  y_ = y;
}

void AlsSolver::run_iteration() {
  update_x();
  update_y();
  ++iterations_done_;
}

double AlsSolver::run() {
  const double before = device_.modeled_seconds();
  for (int it = 0; it < options_.iterations; ++it) run_iteration();
  return device_.modeled_seconds() - before;
}

double AlsSolver::run_checkpointed(const CheckpointConfig& config) {
  ALSMF_CHECK_MSG(!config.dir.empty(), "checkpoint dir required");
  ALSMF_CHECK(config.every > 0);
  const double before = device_.modeled_seconds();
  while (iterations_done_ < options_.iterations) {
    run_iteration();
    if (iterations_done_ % config.every == 0 ||
        iterations_done_ == options_.iterations) {
      save_checkpoint(robust::checkpoint_path(config.dir, iterations_done_));
      if (config.keep > 0) robust::prune_checkpoints(config.dir, config.keep);
    }
  }
  return device_.modeled_seconds() - before;
}

std::uint64_t AlsSolver::options_hash() const {
  return trajectory_hash(options_, train_);
}

robust::TrainingCheckpoint AlsSolver::make_checkpoint() const {
  robust::TrainingCheckpoint ckpt;
  ckpt.options_hash = options_hash();
  ckpt.iteration = iterations_done_;
  ckpt.rng_state = rng_.state();
  ckpt.x = x_;
  ckpt.y = y_;
  return ckpt;
}

void AlsSolver::save_checkpoint(const std::string& path) const {
  robust::save_checkpoint_file(path, make_checkpoint());
}

void AlsSolver::restore_checkpoint(const robust::TrainingCheckpoint& ckpt) {
  ALSMF_CHECK_MSG(
      ckpt.options_hash == options_hash(),
      "checkpoint belongs to a different training run (trajectory hash "
      "mismatch); refusing to resume");
  ALSMF_CHECK_MSG(ckpt.x.rows() == x_.rows() && ckpt.x.cols() == x_.cols() &&
                      ckpt.y.rows() == y_.rows() && ckpt.y.cols() == y_.cols(),
                  "checkpoint factor shapes do not match this problem");
  x_ = ckpt.x;
  y_ = ckpt.y;
  iterations_done_ = static_cast<int>(ckpt.iteration);
  rng_.set_state(ckpt.rng_state);
}

void AlsSolver::resume_from_checkpoint(const std::string& path) {
  restore_checkpoint(robust::load_checkpoint_file(path));
}

std::int64_t AlsSolver::resume_latest(const std::string& dir) {
  const auto available = robust::list_checkpoints(dir);
  for (auto it = available.rbegin(); it != available.rend(); ++it) {
    try {
      restore_checkpoint(robust::load_checkpoint_file(it->path));
      return it->iteration;
    } catch (const Error&) {
      // Corrupt or mismatched checkpoint: fall back to the next older one.
    }
  }
  return -1;
}

AlsSolver::ConvergenceReport AlsSolver::run_until(double rel_tol,
                                                  int max_iterations) {
  ALSMF_CHECK_MSG(options_.functional,
                  "run_until needs functional execution to observe the loss");
  ALSMF_CHECK(rel_tol >= 0.0);
  ConvergenceReport report;
  double prev = train_loss();
  for (int it = 0; it < max_iterations; ++it) {
    run_iteration();
    ++report.iterations;
    const double cur = train_loss();
    report.loss_per_iteration.push_back(cur);
    if (prev > 0 && (prev - cur) / prev < rel_tol) {
      report.converged = true;
      break;
    }
    prev = cur;
  }
  return report;
}

double AlsSolver::train_loss() const {
  return options_.weighted_regularization
             ? als_wr_loss(train_, x_, y_, options_.lambda)
             : als_loss(train_, x_, y_, options_.lambda);
}

double AlsSolver::train_rmse() const { return rmse(train_, x_, y_); }

double AlsSolver::modeled_seconds() const {
  return device_.modeled_seconds_matching("update_");
}

double AlsSolver::wall_seconds() const { return device_.wall_seconds(); }

StepBreakdown AlsSolver::step_breakdown() const {
  StepBreakdown b;
  b.s1 = device_.modeled_seconds_matching("/S1");
  b.s2 = device_.modeled_seconds_matching("/S2");
  b.s3 = device_.modeled_seconds_matching("/S3");
  return b;
}

}  // namespace alsmf
