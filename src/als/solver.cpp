#include "als/solver.hpp"

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "als/metrics.hpp"
#include "als/reference.hpp"
#include "als/row_solve.hpp"
#include "common/error.hpp"
#include "common/halfprec.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/lu.hpp"
#include "obs/events.hpp"
#include "obs/registry.hpp"
#include "sparse/convert.hpp"

namespace alsmf {

std::uint64_t trajectory_hash(const AlsOptions& options, const Csr& train) {
  std::uint64_t state = 0x616c736d66ULL;  // "alsmf"
  std::uint64_t h = splitmix64(state);
  const auto mix = [&](std::uint64_t v) {
    state ^= v;
    h ^= splitmix64(state);
  };
  mix(static_cast<std::uint64_t>(options.k));
  std::uint32_t lambda_bits = 0;
  std::memcpy(&lambda_bits, &options.lambda, sizeof(lambda_bits));
  mix(lambda_bits);
  mix(options.seed);
  mix(options.weighted_regularization ? 1 : 0);
  mix(static_cast<std::uint64_t>(options.solver));
  // Strategy knobs fold in only when they change the trajectory, so every
  // pre-strategy checkpoint (implicitly cholesky, no mixing) keeps its hash.
  if (options.row_solver != RowSolverKind::kCholesky) {
    mix(static_cast<std::uint64_t>(options.row_solver));
    mix(static_cast<std::uint64_t>(options.cg_iters));
    mix(static_cast<std::uint64_t>(options.effective_subspace_block()));
  }
  if (options.anderson_m > 0) {
    mix(static_cast<std::uint64_t>(options.anderson_m));
  }
  if (options.storage != StoragePrecision::kFp32) {
    mix(static_cast<std::uint64_t>(options.storage));
  }
  mix(static_cast<std::uint64_t>(train.rows()));
  mix(static_cast<std::uint64_t>(train.cols()));
  mix(static_cast<std::uint64_t>(train.nnz()));
  return h;
}

AlsSolver::AlsSolver(const Csr& train, const AlsOptions& options,
                     const AlsVariant& variant, devsim::Device& device)
    : train_(train),
      train_t_(transpose(train)),
      options_(options),
      variant_(variant),
      device_(device),
      rng_(options.seed) {
  validate(options_);
  row_solver_ = make_row_solver(options_);
  init_factors(train.rows(), train.cols(), options_, x_, y_, rng_);
  if (options_.anderson_m > 0) {
    // The mixer works on the Y-only fixed point (see run_iteration).
    const auto dim = static_cast<std::size_t>(train.cols()) *
                     static_cast<std::size_t>(options_.k);
    anderson_ = std::make_unique<AndersonMixer>(dim, options_.anderson_m);
  }
}

void AlsSolver::launch_with_retry(const char* name, const UpdateArgs& args) {
  for (int attempt = 0;; ++attempt) {
    try {
      launch_update(device_, name, args, options_.num_groups,
                    options_.group_size, options_.functional);
      return;
    } catch (const Error&) {
      if (attempt >= options_.guard_kernel_retries) throw;
      // Half-updates only read `src` and overwrite `dst`, so relaunching
      // after a partial failure is idempotent.
      ++report_.kernel_relaunches;
    }
  }
}

void AlsSolver::guard_factor(Matrix& dst, const Csr& r, const Matrix& src) {
  if (!options_.guard_updates || !options_.functional) return;
  robust::GuardOptions gopt;
  gopt.lambda_escalation = options_.guard_lambda_escalation;
  gopt.max_attempts = options_.guard_max_attempts;
  const int k = options_.k;
  const auto kk = static_cast<std::size_t>(k) * static_cast<std::size_t>(k);
  std::vector<real> smat(kk), smat_saved(kk), rhs_saved(static_cast<std::size_t>(k));
  const auto resolve = [&](index_t row, real lambda_scale, real* out) {
    if (r.row_nnz(row) == 0) {
      std::fill(out, out + k, real{0});
      return true;
    }
    const real base =
        options_.weighted_regularization
            ? options_.lambda * static_cast<real>(r.row_nnz(row))
            : options_.lambda;
    assemble_normal_equations(r.row_cols(row), r.row_values(row), src,
                              base * lambda_scale, k, smat.data(), out);
    std::copy(smat.begin(), smat.end(), smat_saved.begin());
    std::copy(out, out + k, rhs_saved.begin());
    if (cholesky_solve(smat.data(), k, out)) return true;
    // Non-SPD even after redamping: fall back to LU on the saved system.
    ++report_.solver_fallbacks;
    std::copy(smat_saved.begin(), smat_saved.end(), smat.begin());
    std::copy(rhs_saved.begin(), rhs_saved.end(), out);
    return lu_solve(smat.data(), k, out);
  };
  robust::guard_rows(dst, resolve, gopt, report_);
}

void AlsSolver::quantize_factor(Matrix& m) {
  // Non-fp32 storage rounds every freshly solved factor block through the
  // storage format (options.hpp). fp16 flushes subnormals to zero, exactly
  // as the precision analyzer's FTZ model assumes; bf16 keeps fp32's
  // exponent range so plain rounding suffices.
  if (options_.storage == StoragePrecision::kFp32 || !options_.functional) {
    return;
  }
  real* p = m.data();
  const std::size_t n = m.size();
  if (options_.storage == StoragePrecision::kFp16) {
    for (std::size_t i = 0; i < n; ++i) {
      p[i] = static_cast<real>(fp16_round_ftz(static_cast<float>(p[i])));
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      p[i] = static_cast<real>(bf16_round(static_cast<float>(p[i])));
    }
  }
}

void AlsSolver::update_x() {
  UpdateArgs args;
  args.r = &train_;
  args.src = &y_;
  args.dst = &x_;
  args.lambda = options_.lambda;
  args.weighted_lambda = options_.weighted_regularization;
  args.tile_rows = options_.tile_rows;
  args.k = options_.k;
  args.variant = variant_;
  args.solver = options_.solver;
  args.row_solver = row_solver_.get();
  launch_with_retry("update_x", args);
  guard_factor(x_, train_, y_);
  quantize_factor(x_);
}

void AlsSolver::update_y() {
  UpdateArgs args;
  args.r = &train_t_;
  args.src = &x_;
  args.dst = &y_;
  args.lambda = options_.lambda;
  args.weighted_lambda = options_.weighted_regularization;
  args.tile_rows = options_.tile_rows;
  args.k = options_.k;
  args.variant = variant_;
  args.solver = options_.solver;
  args.row_solver = row_solver_.get();
  launch_with_retry("update_y", args);
  guard_factor(y_, train_t_, x_);
  quantize_factor(y_);
}

void AlsSolver::set_factors(const Matrix& x, const Matrix& y) {
  ALSMF_CHECK(x.rows() == x_.rows() && x.cols() == x_.cols());
  ALSMF_CHECK(y.rows() == y_.rows() && y.cols() == y_.cols());
  x_ = x;
  y_ = y;
  x_fresh_ = false;
  if (anderson_) anderson_->reset();
}

void AlsSolver::run_iteration() {
  // Anderson mixing views one iteration as the fixed-point map Y ← G(Y):
  // X is the intermediate state (recomputed exactly from Y at the top of
  // every iteration), so the map has an isolated fixed point — mixing the
  // stacked (X, Y) instead would extrapolate along the X→XS, Y→YS⁻ᵀ
  // invariance manifold and stall. Needs the functional factors;
  // modeled-only runs skip the mixer.
  const bool mixing = anderson_ && options_.functional;
  std::vector<real> z;
  if (mixing) {
    z.assign(y_.data(), y_.data() + y_.size());
  }
  if (!x_fresh_) update_x();
  x_fresh_ = false;
  update_y();
  if (mixing) {
    // Candidate acceptance (Walker-style safeguarded AA): the extrapolated
    // Y replaces the plain image only when the one-step-lookahead
    // objective J(X(Y_c), Y_c) beats the plain iterate's J(X_t, Y_g) — a
    // wild extrapolation is discarded instead of entering (and then
    // having to be recovered from) the trajectory. The lookahead X solve
    // is not wasted: on acceptance it IS the next iteration's X
    // half-update, which is then skipped. The mixer's history stays valid
    // either way — it records (z, G(z)) map samples, not accepted
    // iterates.
    const std::vector<real> unmixed(y_.data(), y_.data() + y_.size());
    std::vector<real> g = unmixed;
    anderson_->mix(z.data(), g.data());
    if (anderson_->depth() > 0) {
      // Both branches get the same lookahead X half-update so the
      // comparison is fair (the extra half-sweep of minimization would
      // otherwise always flatter the candidate). The winner's X solve is
      // reused as the next iteration's X half-update.
      update_x();  // X(Y_g)
      const double plain_loss = train_loss();
      const Matrix x_plain = x_;
      std::copy(g.begin(), g.end(), y_.data());
      update_x();  // X(Y_c)
      if (train_loss() >= plain_loss) {
        std::copy(unmixed.begin(), unmixed.end(), y_.data());
        x_ = x_plain;
      }
      x_fresh_ = true;
    }
  }
  ++iterations_done_;
}

namespace {

/// Cumulative cost snapshot used to turn device totals into per-iteration
/// deltas for the event stream.
struct CostSnapshot {
  double modeled = 0, wall = 0;
  double s1m = 0, s2m = 0, s3m = 0;
  double s1w = 0, s2w = 0, s3w = 0;
};

CostSnapshot cost_snapshot(const devsim::Device& device) {
  CostSnapshot s;
  s.modeled = device.modeled_seconds();
  s.wall = device.wall_seconds();
  s.s1m = device.modeled_seconds_matching("/S1");
  s.s2m = device.modeled_seconds_matching("/S2");
  s.s3m = device.modeled_seconds_matching("/S3");
  s.s1w = device.wall_seconds_matching("/S1");
  s.s2w = device.wall_seconds_matching("/S2");
  s.s3w = device.wall_seconds_matching("/S3");
  return s;
}

}  // namespace

RunReport AlsSolver::run(const RunConfig& config) {
  if (config.checkpoint) {
    ALSMF_CHECK_MSG(!config.checkpoint->dir.empty(), "checkpoint dir required");
    ALSMF_CHECK(config.checkpoint->every > 0);
  }
  ALSMF_CHECK_MSG(!config.resume || config.checkpoint,
                  "resume requires a checkpoint config");

  RunReport report;
  if (config.resume) report.resumed_from = resume_latest(config.checkpoint->dir);
  if (config.metrics) device_.set_metrics(config.metrics);
  if (config.trace) device_.set_trace(config.trace);

  const int target = config.iterations >= 0
                         ? iterations_done_ + config.iterations
                         : options_.iterations;
  const int start_iteration = iterations_done_;
  const double modeled_before = device_.modeled_seconds();
  const double wall_before = device_.wall_seconds();
  CostSnapshot prev;
  if (config.events) prev = cost_snapshot(device_);

  while (iterations_done_ < target) {
    std::optional<devsim::TraceRecorder::Span> span;
    if (config.trace) {
      span.emplace(config.trace->span(
          "solver", "iteration " + std::to_string(iterations_done_ + 1)));
    }
    run_iteration();
    if (span) span->end();

    if (config.checkpoint && (iterations_done_ % config.checkpoint->every == 0 ||
                              iterations_done_ == target)) {
      save_checkpoint(
          robust::checkpoint_path(config.checkpoint->dir, iterations_done_));
      if (config.checkpoint->keep > 0) {
        robust::prune_checkpoints(config.checkpoint->dir,
                                  config.checkpoint->keep);
      }
    }

    double loss = std::numeric_limits<double>::quiet_NaN();
    double rmse = std::numeric_limits<double>::quiet_NaN();
    if ((config.events || config.metrics) && options_.functional) {
      loss = train_loss();
      rmse = train_rmse();
    }

    if (config.events) {
      const CostSnapshot cur = cost_snapshot(device_);
      obs::IterationEvent ev;
      ev.iteration = iterations_done_;
      ev.variant = variant_.name();
      ev.device = device_.profile().name;
      ev.row_solver = to_string(options_.row_solver);
      ev.anderson_depth = anderson_depth();
      ev.loss = loss;
      ev.rmse = rmse;
      ev.modeled_seconds = cur.modeled - prev.modeled;
      ev.wall_seconds = cur.wall - prev.wall;
      ev.s1_modeled_s = cur.s1m - prev.s1m;
      ev.s2_modeled_s = cur.s2m - prev.s2m;
      ev.s3_modeled_s = cur.s3m - prev.s3m;
      ev.s1_wall_s = cur.s1w - prev.s1w;
      ev.s2_wall_s = cur.s2w - prev.s2w;
      ev.s3_wall_s = cur.s3w - prev.s3w;
      ev.guard_nonfinite_rows = report_.nonfinite_rows;
      ev.guard_redamped_rows = report_.redamped_rows;
      ev.guard_zeroed_rows = report_.zeroed_rows;
      ev.solver_fallbacks = report_.solver_fallbacks;
      ev.kernel_relaunches = report_.kernel_relaunches;
      config.events->emit(std::move(ev));
      prev = cur;
    }

    if (config.metrics) {
      const obs::Labels labels{{"variant", variant_.name()},
                               {"device", device_.profile().name}};
      config.metrics
          ->counter("als_iterations_total", labels,
                    "Completed ALS training iterations")
          .inc();
      if (!std::isnan(loss)) {
        config.metrics
            ->gauge("als_train_loss", labels,
                    "Training objective after the latest iteration")
            .set(loss);
        config.metrics
            ->gauge("als_train_rmse", labels,
                    "Training RMSE after the latest iteration")
            .set(rmse);
      }
    }
  }

  report.iterations = iterations_done_ - start_iteration;
  report.modeled_seconds = device_.modeled_seconds() - modeled_before;
  report.wall_seconds = device_.wall_seconds() - wall_before;
  return report;
}

std::uint64_t AlsSolver::options_hash() const {
  return trajectory_hash(options_, train_);
}

robust::TrainingCheckpoint AlsSolver::make_checkpoint() const {
  robust::TrainingCheckpoint ckpt;
  ckpt.options_hash = options_hash();
  ckpt.iteration = iterations_done_;
  ckpt.rng_state = rng_.state();
  ckpt.x = x_;
  ckpt.y = y_;
  return ckpt;
}

void AlsSolver::save_checkpoint(const std::string& path) const {
  robust::save_checkpoint_file(path, make_checkpoint());
}

void AlsSolver::restore_checkpoint(const robust::TrainingCheckpoint& ckpt) {
  ALSMF_CHECK_MSG(
      ckpt.options_hash == options_hash(),
      "checkpoint belongs to a different training run (trajectory hash "
      "mismatch); refusing to resume");
  ALSMF_CHECK_MSG(ckpt.x.rows() == x_.rows() && ckpt.x.cols() == x_.cols() &&
                      ckpt.y.rows() == y_.rows() && ckpt.y.cols() == y_.cols(),
                  "checkpoint factor shapes do not match this problem");
  x_ = ckpt.x;
  y_ = ckpt.y;
  iterations_done_ = static_cast<int>(ckpt.iteration);
  rng_.set_state(ckpt.rng_state);
  x_fresh_ = false;
  // The mixer's history refers to the pre-restore trajectory.
  if (anderson_) anderson_->reset();
}

void AlsSolver::resume_from_checkpoint(const std::string& path) {
  restore_checkpoint(robust::load_checkpoint_file(path));
}

std::int64_t AlsSolver::resume_latest(const std::string& dir) {
  const auto available = robust::list_checkpoints(dir);
  for (auto it = available.rbegin(); it != available.rend(); ++it) {
    try {
      restore_checkpoint(robust::load_checkpoint_file(it->path));
      return it->iteration;
    } catch (const Error&) {
      // Corrupt or mismatched checkpoint: fall back to the next older one.
    }
  }
  return -1;
}

AlsSolver::ConvergenceReport AlsSolver::run_until(double rel_tol,
                                                  int max_iterations) {
  ALSMF_CHECK_MSG(options_.functional,
                  "run_until needs functional execution to observe the loss");
  ALSMF_CHECK(rel_tol >= 0.0);
  ConvergenceReport report;
  double prev = train_loss();
  for (int it = 0; it < max_iterations; ++it) {
    run_iteration();
    ++report.iterations;
    const double cur = train_loss();
    report.loss_per_iteration.push_back(cur);
    if (prev > 0 && (prev - cur) / prev < rel_tol) {
      report.converged = true;
      break;
    }
    prev = cur;
  }
  return report;
}

double AlsSolver::train_loss() const {
  return options_.weighted_regularization
             ? als_wr_loss(train_, x_, y_, options_.lambda)
             : als_loss(train_, x_, y_, options_.lambda);
}

double AlsSolver::train_rmse() const { return rmse(train_, x_, y_); }

double AlsSolver::modeled_seconds() const {
  return device_.modeled_seconds_matching("update_");
}

double AlsSolver::wall_seconds() const { return device_.wall_seconds(); }

StepBreakdown AlsSolver::step_breakdown() const {
  StepBreakdown b;
  b.s1 = device_.modeled_seconds_matching("/S1");
  b.s2 = device_.modeled_seconds_matching("/S2");
  b.s3 = device_.modeled_seconds_matching("/S3");
  return b;
}

}  // namespace alsmf
