#include "als/solver.hpp"

#include "als/metrics.hpp"
#include "als/reference.hpp"
#include "common/error.hpp"
#include "sparse/convert.hpp"

namespace alsmf {

AlsSolver::AlsSolver(const Csr& train, const AlsOptions& options,
                     const AlsVariant& variant, devsim::Device& device)
    : train_(train),
      train_t_(transpose(train)),
      options_(options),
      variant_(variant),
      device_(device) {
  ALSMF_CHECK(options.k > 0);
  ALSMF_CHECK(options.lambda > 0.0f);
  init_factors(train.rows(), train.cols(), options_, x_, y_);
}

void AlsSolver::update_x() {
  UpdateArgs args;
  args.r = &train_;
  args.src = &y_;
  args.dst = &x_;
  args.lambda = options_.lambda;
  args.weighted_lambda = options_.weighted_regularization;
  args.tile_rows = options_.tile_rows;
  args.k = options_.k;
  args.variant = variant_;
  args.solver = options_.solver;
  launch_update(device_, "update_x", args, options_.num_groups,
                options_.group_size, options_.functional);
}

void AlsSolver::update_y() {
  UpdateArgs args;
  args.r = &train_t_;
  args.src = &x_;
  args.dst = &y_;
  args.lambda = options_.lambda;
  args.weighted_lambda = options_.weighted_regularization;
  args.tile_rows = options_.tile_rows;
  args.k = options_.k;
  args.variant = variant_;
  args.solver = options_.solver;
  launch_update(device_, "update_y", args, options_.num_groups,
                options_.group_size, options_.functional);
}

void AlsSolver::set_factors(const Matrix& x, const Matrix& y) {
  ALSMF_CHECK(x.rows() == x_.rows() && x.cols() == x_.cols());
  ALSMF_CHECK(y.rows() == y_.rows() && y.cols() == y_.cols());
  x_ = x;
  y_ = y;
}

void AlsSolver::run_iteration() {
  update_x();
  update_y();
  ++iterations_done_;
}

double AlsSolver::run() {
  const double before = device_.modeled_seconds();
  for (int it = 0; it < options_.iterations; ++it) run_iteration();
  return device_.modeled_seconds() - before;
}

AlsSolver::ConvergenceReport AlsSolver::run_until(double rel_tol,
                                                  int max_iterations) {
  ALSMF_CHECK_MSG(options_.functional,
                  "run_until needs functional execution to observe the loss");
  ALSMF_CHECK(rel_tol >= 0.0);
  ConvergenceReport report;
  double prev = train_loss();
  for (int it = 0; it < max_iterations; ++it) {
    run_iteration();
    ++report.iterations;
    const double cur = train_loss();
    report.loss_per_iteration.push_back(cur);
    if (prev > 0 && (prev - cur) / prev < rel_tol) {
      report.converged = true;
      break;
    }
    prev = cur;
  }
  return report;
}

double AlsSolver::train_loss() const {
  return options_.weighted_regularization
             ? als_wr_loss(train_, x_, y_, options_.lambda)
             : als_loss(train_, x_, y_, options_.lambda);
}

double AlsSolver::train_rmse() const { return rmse(train_, x_, y_); }

double AlsSolver::modeled_seconds() const {
  return device_.modeled_seconds_matching("update_");
}

double AlsSolver::wall_seconds() const { return device_.wall_seconds(); }

StepBreakdown AlsSolver::step_breakdown() const {
  StepBreakdown b;
  b.s1 = device_.modeled_seconds_matching("/S1");
  b.s2 = device_.modeled_seconds_matching("/S2");
  b.s3 = device_.modeled_seconds_matching("/S3");
  return b;
}

}  // namespace alsmf
