// AlsSolver: the user-facing ALS driver. Owns the factor matrices, the CSR
// and CSC (transposed-CSR) forms of the training matrix, and a device; runs
// alternating half-updates through the selected code variant.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "als/kernels.hpp"
#include "als/options.hpp"
#include "common/rng.hpp"
#include "devsim/device.hpp"
#include "linalg/dense.hpp"
#include "robust/checkpoint.hpp"
#include "robust/guards.hpp"
#include "sparse/csr.hpp"

namespace alsmf::obs {
class EventStream;
class Registry;
}

namespace alsmf {

/// Hash of everything that determines the training trajectory: k, λ, seed,
/// regularization mode, linear solver, row-solver strategy (plus its
/// cg_iters / subspace_block knobs when non-exact), Anderson window,
/// factor storage precision (when non-fp32), and the training matrix
/// shape/nnz. Stored in checkpoints; resume refuses a
/// checkpoint whose hash differs. Launch shape and guard knobs are
/// excluded — all variants produce bitwise-identical factors, so their
/// checkpoints are interchangeable. Default-solver runs hash identically
/// to pre-strategy builds, keeping their checkpoints loadable.
std::uint64_t trajectory_hash(const AlsOptions& options, const Csr& train);

/// Periodic crash-safe checkpointing for run_checkpointed.
struct CheckpointConfig {
  std::string dir;
  int every = 1;         ///< save after every N completed iterations
  std::size_t keep = 3;  ///< checkpoints retained (0 = keep all)
};

/// Unified training-run configuration: one entry point covering plain runs,
/// periodic checkpointing, resume, and the observability sinks. All pointer
/// sinks are optional, borrowed, and stay attached to the device after the
/// run (detach with Device::set_trace(nullptr) / set_metrics(nullptr)).
struct RunConfig {
  /// Additional iterations to run in this call; -1 runs until
  /// iterations_done() reaches options().iterations (the "remaining work"
  /// semantics checkpoint/resume needs).
  int iterations = -1;
  /// When set, saves a crash-safe checkpoint every `every` completed
  /// iterations and prunes old ones.
  std::optional<CheckpointConfig> checkpoint;
  /// Resume from the newest loadable checkpoint in checkpoint->dir before
  /// iterating (requires `checkpoint`).
  bool resume = false;
  /// Per-iteration IterationEvent records (loss/RMSE, step breakdown in
  /// modeled and wall seconds, guard tallies).
  obs::EventStream* events = nullptr;
  /// Metrics registry: attached to the device for per-kernel series, plus
  /// solver-level als_* series updated each iteration.
  obs::Registry* metrics = nullptr;
  /// Trace recorder: attached to the device for launch events, plus one
  /// wall span per iteration on the "solver" track.
  devsim::TraceRecorder* trace = nullptr;
};

/// What a run(RunConfig) call did.
struct RunReport {
  int iterations = 0;  ///< iterations executed by this call
  /// Iteration restored by resume, or -1 (no resume requested or no usable
  /// checkpoint found).
  std::int64_t resumed_from = -1;
  double modeled_seconds = 0;  ///< modeled device-seconds delta of this call
  double wall_seconds = 0;     ///< wall kernel-seconds delta of this call
};

/// Per-step (S1/S2/S3) modeled-time breakdown of a run (Fig. 8).
struct StepBreakdown {
  double s1 = 0, s2 = 0, s3 = 0;
  double total() const { return s1 + s2 + s3; }
  double s1_pct() const { return total() > 0 ? 100.0 * s1 / total() : 0; }
  double s2_pct() const { return total() > 0 ? 100.0 * s2 / total() : 0; }
  double s3_pct() const { return total() > 0 ? 100.0 * s3 / total() : 0; }
};

class AlsSolver {
 public:
  /// Keeps a reference to `train` (must outlive the solver); builds the
  /// transposed copy internally. Factors are initialized as Algorithm 1:
  /// X ← 0, Y ← small random values from options.seed.
  AlsSolver(const Csr& train, const AlsOptions& options,
            const AlsVariant& variant, devsim::Device& device);

  /// One full iteration: update X over Y, then Y over X.
  void run_iteration();

  /// The training entry point: runs per `config` (checkpointing, resume,
  /// observability sinks) and reports what happened.
  RunReport run(const RunConfig& config);

  /// Result of run_until: why it stopped and the trajectory.
  struct ConvergenceReport {
    int iterations = 0;
    bool converged = false;          ///< relative improvement fell below tol
    std::vector<double> loss_per_iteration;
  };

  /// Iterates until the relative training-loss improvement drops below
  /// `rel_tol` or `max_iterations` is reached (Algorithm 1's "max
  /// iterations or error rate" stopping rule). Requires functional mode.
  ConvergenceReport run_until(double rel_tol, int max_iterations);

  /// Update only X (or only Y) — exposed for tests.
  void update_x();
  void update_y();

  /// Warm start: replace the factors with an existing model (shapes must
  /// match) before running — incremental retraining on updated ratings
  /// converges in far fewer iterations than a cold start.
  void set_factors(const Matrix& x, const Matrix& y);

  const Matrix& x() const { return x_; }
  const Matrix& y() const { return y_; }
  const AlsOptions& options() const { return options_; }
  const AlsVariant& variant() const { return variant_; }
  devsim::Device& device() { return device_; }
  int iterations_done() const { return iterations_done_; }

  /// Tally of divergence-guard and fault-recovery activity so far.
  const robust::RobustnessReport& robustness_report() const { return report_; }

  /// The S3 strategy this solver runs (selected by options().row_solver).
  const RowSolver& row_solver() const { return *row_solver_; }

  /// Anderson history pairs currently in the window (0 when mixing is off
  /// or the history was just reset). Surfaced per iteration in events.
  int anderson_depth() const { return anderson_ ? anderson_->depth() : 0; }

  /// trajectory_hash(options(), train) for this solver's run.
  std::uint64_t options_hash() const;

  /// Snapshot of the full training state (factors, iteration, RNG stream).
  robust::TrainingCheckpoint make_checkpoint() const;

  /// Atomically writes make_checkpoint() to `path`.
  void save_checkpoint(const std::string& path) const;

  /// Restores factors, iteration counter, and RNG state. Throws when the
  /// checkpoint's trajectory hash does not match this run.
  void restore_checkpoint(const robust::TrainingCheckpoint& ckpt);
  void resume_from_checkpoint(const std::string& path);

  /// Restores from the newest loadable checkpoint in `dir`, skipping
  /// corrupt or mismatched files. Returns the resumed iteration, or -1
  /// when no usable checkpoint exists (state is untouched).
  std::int64_t resume_latest(const std::string& dir);

  /// Objective (Eq. 2) on the training data. Functional runs only.
  double train_loss() const;
  double train_rmse() const;

  /// Modeled seconds of this solver's launches so far.
  double modeled_seconds() const;
  double wall_seconds() const;

  /// S1/S2/S3 modeled-time breakdown accumulated so far.
  StepBreakdown step_breakdown() const;

 private:
  /// Launches with retry-on-injected-fault per options_.guard_kernel_retries.
  void launch_with_retry(const char* name, const UpdateArgs& args);
  /// Post-update divergence sweep of `dst` (rows of `r`, solved over `src`).
  void guard_factor(Matrix& dst, const Csr& r, const Matrix& src);
  /// Rounds a freshly solved factor matrix through the configured storage
  /// format (no-op for fp32 storage or modeled-only runs).
  void quantize_factor(Matrix& m);

  const Csr& train_;
  Csr train_t_;
  AlsOptions options_;
  AlsVariant variant_;
  devsim::Device& device_;
  Rng rng_;
  Matrix x_, y_;
  std::unique_ptr<RowSolver> row_solver_;
  std::unique_ptr<AndersonMixer> anderson_;  ///< null when anderson_m == 0
  /// x_ already holds argmin for the current y_ (an accepted Anderson
  /// candidate's lookahead solve) — the next X half-update is skipped.
  bool x_fresh_ = false;
  int iterations_done_ = 0;
  robust::RobustnessReport report_;
};

}  // namespace alsmf
