// AlsSolver: the user-facing ALS driver. Owns the factor matrices, the CSR
// and CSC (transposed-CSR) forms of the training matrix, and a device; runs
// alternating half-updates through the selected code variant.
#pragma once

#include <string>
#include <vector>

#include "als/kernels.hpp"
#include "als/options.hpp"
#include "devsim/device.hpp"
#include "linalg/dense.hpp"
#include "sparse/csr.hpp"

namespace alsmf {

/// Per-step (S1/S2/S3) modeled-time breakdown of a run (Fig. 8).
struct StepBreakdown {
  double s1 = 0, s2 = 0, s3 = 0;
  double total() const { return s1 + s2 + s3; }
  double s1_pct() const { return total() > 0 ? 100.0 * s1 / total() : 0; }
  double s2_pct() const { return total() > 0 ? 100.0 * s2 / total() : 0; }
  double s3_pct() const { return total() > 0 ? 100.0 * s3 / total() : 0; }
};

class AlsSolver {
 public:
  /// Keeps a reference to `train` (must outlive the solver); builds the
  /// transposed copy internally. Factors are initialized as Algorithm 1:
  /// X ← 0, Y ← small random values from options.seed.
  AlsSolver(const Csr& train, const AlsOptions& options,
            const AlsVariant& variant, devsim::Device& device);

  /// One full iteration: update X over Y, then Y over X.
  void run_iteration();

  /// Runs options.iterations iterations; returns modeled seconds consumed
  /// by this solver's launches during the run.
  double run();

  /// Result of run_until: why it stopped and the trajectory.
  struct ConvergenceReport {
    int iterations = 0;
    bool converged = false;          ///< relative improvement fell below tol
    std::vector<double> loss_per_iteration;
  };

  /// Iterates until the relative training-loss improvement drops below
  /// `rel_tol` or `max_iterations` is reached (Algorithm 1's "max
  /// iterations or error rate" stopping rule). Requires functional mode.
  ConvergenceReport run_until(double rel_tol, int max_iterations);

  /// Update only X (or only Y) — exposed for tests.
  void update_x();
  void update_y();

  /// Warm start: replace the factors with an existing model (shapes must
  /// match) before running — incremental retraining on updated ratings
  /// converges in far fewer iterations than a cold start.
  void set_factors(const Matrix& x, const Matrix& y);

  const Matrix& x() const { return x_; }
  const Matrix& y() const { return y_; }
  const AlsOptions& options() const { return options_; }
  const AlsVariant& variant() const { return variant_; }
  devsim::Device& device() { return device_; }

  /// Objective (Eq. 2) on the training data. Functional runs only.
  double train_loss() const;
  double train_rmse() const;

  /// Modeled seconds of this solver's launches so far.
  double modeled_seconds() const;
  double wall_seconds() const;

  /// S1/S2/S3 modeled-time breakdown accumulated so far.
  StepBreakdown step_breakdown() const;

 private:
  const Csr& train_;
  Csr train_t_;
  AlsOptions options_;
  AlsVariant variant_;
  devsim::Device& device_;
  Matrix x_, y_;
  int iterations_done_ = 0;
};

}  // namespace alsmf
