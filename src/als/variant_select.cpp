#include "als/variant_select.hpp"

#include <algorithm>

#include "als/solver.hpp"
#include "devsim/device.hpp"

namespace alsmf {

std::vector<VariantScore> score_variants(const Csr& train,
                                         const AlsOptions& options,
                                         const devsim::DeviceProfile& profile) {
  std::vector<VariantScore> scores;
  scores.reserve(AlsVariant::kVariantCount);
  AlsOptions opts = options;
  opts.functional = false;  // cost-model only: no arithmetic
  for (unsigned mask = 0; mask < AlsVariant::kVariantCount; ++mask) {
    const AlsVariant v = AlsVariant::from_mask(mask);
    devsim::Device device(profile);
    AlsSolver solver(train, opts, v, device);
    const double t = solver.run();
    scores.push_back({v, t});
  }
  std::stable_sort(scores.begin(), scores.end(),
                   [](const VariantScore& a, const VariantScore& b) {
                     return a.modeled_seconds < b.modeled_seconds;
                   });
  return scores;
}

AlsVariant select_variant_empirical(const Csr& train, const AlsOptions& options,
                                    const devsim::DeviceProfile& profile) {
  return score_variants(train, options, profile).front().variant;
}

AlsVariant select_variant_heuristic(const Csr& train, const AlsOptions& options,
                                    const devsim::DeviceProfile& profile) {
  (void)train;
  AlsVariant v;
  v.thread_batching = true;
  if (profile.kind == devsim::DeviceKind::kGpu) {
    v.use_local = true;
    v.use_registers = true;
    v.use_vectors = false;  // Fig. 6: "very little change" on SIMT
  } else {
    v.use_local = true;
    v.use_registers = false;  // §V-B: reg+local degrades on CPU/MIC
    // Explicit vectors pay off when the group is wide enough that the
    // packed lanes cover k (otherwise padding dominates either way).
    v.use_vectors = options.group_size >= options.k;
  }
  return v;
}

int recommend_group_size(int k, const devsim::DeviceProfile& profile) {
  if (profile.kind == devsim::DeviceKind::kGpu) {
    // Smallest multiple of the warp fitting k… the paper recommends the
    // smallest block size >= k that still fills a warp scheduling slot:
    // round k up to a power of two between 16 and the warp width.
    int size = 16;
    while (size < k && size < profile.simd_width) size *= 2;
    return std::max(size, std::min(32, profile.simd_width));
  }
  // CPU/MIC: one SIMD bundle per group ("the smaller the better", §V-E).
  return profile.simd_width;
}

}  // namespace alsmf
