#include "als/variant_select.hpp"

#include <algorithm>
#include <vector>

#include "als/solver.hpp"
#include "common/error.hpp"
#include "devsim/cost_model.hpp"
#include "devsim/device.hpp"
#include "ocl/analyze/parser.hpp"
#include "ocl/analyze/static_profile.hpp"
#include "ocl/kernel_source.hpp"

namespace alsmf {

namespace {

// Shape statistics of the update-X launch (one row of R per batch row).
ocl::analyze::DatasetStats row_stats(const Csr& m) {
  ocl::analyze::DatasetStats s;
  s.rows = static_cast<double>(m.rows());
  s.nnz = static_cast<double>(m.nnz());
  const auto& rp = m.row_ptr();
  for (index_t u = 0; u < m.rows(); ++u) {
    if (rp[static_cast<std::size_t>(u) + 1] > rp[static_cast<std::size_t>(u)])
      s.nonempty_rows += 1;
  }
  return s;
}

// Shape statistics of the update-Y launch (the solver maps Rᵀ), computed by
// scanning col_idx — no transpose is materialized for a static ranking.
ocl::analyze::DatasetStats col_stats(const Csr& m) {
  ocl::analyze::DatasetStats s;
  s.rows = static_cast<double>(m.cols());
  s.nnz = static_cast<double>(m.nnz());
  std::vector<char> seen(static_cast<std::size_t>(m.cols()), 0);
  for (const index_t c : m.col_idx()) seen[static_cast<std::size_t>(c)] = 1;
  for (const char f : seen) s.nonempty_rows += f;
  return s;
}

}  // namespace

std::vector<VariantScore> score_variants(const Csr& train,
                                         const AlsOptions& options,
                                         const devsim::DeviceProfile& profile) {
  std::vector<VariantScore> scores;
  scores.reserve(AlsVariant::kVariantCount);
  AlsOptions opts = options;
  opts.functional = false;  // cost-model only: no arithmetic
  for (unsigned mask = 0; mask < AlsVariant::kVariantCount; ++mask) {
    const AlsVariant v = AlsVariant::from_mask(mask);
    devsim::Device device(profile);
    AlsSolver solver(train, opts, v, device);
    const double t = solver.run({}).modeled_seconds;
    scores.push_back({v, t});
  }
  std::stable_sort(scores.begin(), scores.end(),
                   [](const VariantScore& a, const VariantScore& b) {
                     return a.modeled_seconds < b.modeled_seconds;
                   });
  return scores;
}

AlsVariant select_variant_empirical(const Csr& train, const AlsOptions& options,
                                    const devsim::DeviceProfile& profile) {
  return score_variants(train, options, profile).front().variant;
}

std::vector<VariantScore> score_variants_static(
    const Csr& train, const AlsOptions& options,
    const devsim::DeviceProfile& profile) {
  namespace az = ocl::analyze;
  ocl::KernelConfig kc;
  kc.k = options.k;
  kc.group_size = options.group_size;
  az::StaticLaunchParams launch;
  launch.num_groups = options.num_groups;
  launch.group_size = options.group_size;
  launch.tile_rows = options.tile_rows;
  const az::DatasetStats stats_x = row_stats(train);
  const az::DatasetStats stats_y = col_stats(train);

  std::vector<VariantScore> scores;
  scores.reserve(AlsVariant::kVariantCount);
  for (unsigned mask = 0; mask < AlsVariant::kVariantCount; ++mask) {
    const AlsVariant v = AlsVariant::from_mask(mask);
    const std::string src = ocl::batched_kernel_source(v, kc);
    const auto kernels = az::lower_kernels(az::parse_translation_unit(src));
    ALSMF_CHECK_MSG(kernels.size() == 1, "variant source must hold 1 kernel");
    const az::StaticKernelProfile px =
        az::build_static_profile(kernels.front(), stats_x, launch, profile);
    const az::StaticKernelProfile py =
        az::build_static_profile(kernels.front(), stats_y, launch, profile);
    const double per_iter =
        devsim::estimate_time(px.counters, profile).total_s() +
        devsim::estimate_time(py.counters, profile).total_s();
    scores.push_back({v, options.iterations * per_iter});
  }
  std::stable_sort(scores.begin(), scores.end(),
                   [](const VariantScore& a, const VariantScore& b) {
                     return a.modeled_seconds < b.modeled_seconds;
                   });
  return scores;
}

AlsVariant select_variant_static(const Csr& train, const AlsOptions& options,
                                 const devsim::DeviceProfile& profile) {
  return score_variants_static(train, options, profile).front().variant;
}

AlsVariant select_variant_heuristic(const Csr& train, const AlsOptions& options,
                                    const devsim::DeviceProfile& profile) {
  (void)train;
  AlsVariant v;
  v.thread_batching = true;
  if (profile.kind == devsim::DeviceKind::kGpu) {
    v.use_local = true;
    v.use_registers = true;
    v.use_vectors = false;  // Fig. 6: "very little change" on SIMT
  } else {
    v.use_local = true;
    v.use_registers = false;  // §V-B: reg+local degrades on CPU/MIC
    // Explicit vectors pay off when the group is wide enough that the
    // packed lanes cover k (otherwise padding dominates either way).
    v.use_vectors = options.group_size >= options.k;
  }
  return v;
}

int recommend_group_size(int k, const devsim::DeviceProfile& profile) {
  if (profile.kind == devsim::DeviceKind::kGpu) {
    // Smallest multiple of the warp fitting k… the paper recommends the
    // smallest block size >= k that still fills a warp scheduling slot:
    // round k up to a power of two between 16 and the warp width.
    int size = 16;
    while (size < k && size < profile.simd_width) size *= 2;
    return std::max(size, std::min(32, profile.simd_width));
  }
  // CPU/MIC: one SIMD bundle per group ("the smaller the better", §V-E).
  return profile.simd_width;
}

}  // namespace alsmf
