// Code-variant selection (§III-D): pick the best of the 8 batched variants
// for an (architecture, dataset) pair.
//
// Two selectors are provided:
//  * empirical  — run every variant in accounting-only mode and pick the
//    one with the smallest modeled time (the paper's approach);
//  * heuristic  — a feature-based rule distilled from the paper's findings
//    (the "machine-learning based approach" the paper leaves as future
//    work, here as an interpretable decision rule);
//  * static     — zero-run ranking: each variant's generated OpenCL source
//    is parsed and lowered to the access IR (ocl/analyze/), priced for the
//    dataset's shape statistics, and pushed through the same devsim cost
//    model — no training iterations at all.
#pragma once

#include <string>
#include <vector>

#include "als/options.hpp"
#include "devsim/profile.hpp"
#include "sparse/csr.hpp"

namespace alsmf {

struct VariantScore {
  AlsVariant variant;
  double modeled_seconds = 0;
};

/// Scores all 8 batched variants on `train` with one accounting-only run
/// each (options.iterations iterations). Sorted ascending by time.
std::vector<VariantScore> score_variants(const Csr& train,
                                         const AlsOptions& options,
                                         const devsim::DeviceProfile& profile);

/// Empirical selector: best entry of score_variants.
AlsVariant select_variant_empirical(const Csr& train, const AlsOptions& options,
                                    const devsim::DeviceProfile& profile);

/// Scores all 8 batched variants without running any of them: the generated
/// kernel sources are statically analyzed (ocl/analyze/static_profile.hpp),
/// the predicted LaunchCounters of both half-updates (X over R, Y over Rᵀ)
/// are priced by the devsim cost model, and the total is scaled to
/// options.iterations. Only the dataset *statistics* (row counts, nonzero
/// counts) are consulted — never the values. Sorted ascending by time.
std::vector<VariantScore> score_variants_static(
    const Csr& train, const AlsOptions& options,
    const devsim::DeviceProfile& profile);

/// Static selector: best entry of score_variants_static. The agreement
/// contract (enforced by tests) is that the empirically best variant ranks
/// in the static top-2 on every built-in device profile.
AlsVariant select_variant_static(const Csr& train, const AlsOptions& options,
                                 const devsim::DeviceProfile& profile);

/// Feature-based heuristic distilled from the paper's evaluation:
///  * GPU  → local + registers (Fig. 6: biggest win, up to 2.6×),
///  * CPU/MIC → local only (registers+local degrades there, §V-B);
///    vectors added when the kernel is compute-bound enough to benefit.
AlsVariant select_variant_heuristic(const Csr& train, const AlsOptions& options,
                                    const devsim::DeviceProfile& profile);

/// Recommended group size: the smallest multiple of the bundle width that
/// is >= k on GPUs (§V-E), the bundle width itself on CPU/MIC.
int recommend_group_size(int k, const devsim::DeviceProfile& profile);

}  // namespace alsmf
