#include "als/verify_kernels.hpp"

#include <sstream>
#include <utility>

#include "ocl/analyze/ir.hpp"
#include "ocl/analyze/parser.hpp"
#include "ocl/kernel_flavors.hpp"

namespace alsmf {

namespace {

namespace az = ocl::analyze;
namespace vf = ocl::analyze::verify;

const char* space_name(az::MemSpace s) {
  switch (s) {
    case az::MemSpace::kGlobal: return "global";
    case az::MemSpace::kLocal: return "local";
    case az::MemSpace::kPrivate: return "private";
  }
  return "?";
}

bool has_arg(const az::KernelIR& ir, const std::string& name) {
  for (const auto& a : ir.args) {
    if (a.name == name) return true;
  }
  return false;
}

void json_escape(std::ostringstream& os, const std::string& s) {
  os << "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    if (c == '\n') {
      os << "\\n";
      continue;
    }
    os << c;
  }
  os << "\"";
}

}  // namespace

vf::KernelContract als_kernel_contract(const az::KernelIR& ir) {
  using vf::BufferContract;
  using vf::SymExpr;
  const long k = ir.k > 0 ? ir.k : 1;
  const long ws = ir.ws > 0 ? ir.ws : 1;

  vf::KernelContract ct;
  ct.lower = {{"ROWS", 1}, {"COLS", 1}, {"NNZ", 0},
              {"SLICES", 1}, {"PADDED", 0}};

  BufferContract y;
  y.has_extent = true;
  y.extent = SymExpr::sym("COLS", k);
  ct.buffers["Y"] = y;

  BufferContract x;
  x.has_extent = true;
  x.extent = SymExpr::sym("ROWS", k);
  ct.buffers["X"] = x;

  if (has_arg(ir, "slice_ptr")) {
    // SELL-C-sigma storage: values/col_idx are padded to PADDED elements,
    // slice offsets pair with per-lane lengths, perm scatters rows.
    BufferContract values;
    values.has_extent = true;
    values.extent = SymExpr::sym("PADDED");
    ct.buffers["values"] = values;

    BufferContract col;
    col.has_extent = true;
    col.extent = SymExpr::sym("PADDED");
    col.has_values = true;
    col.value_min = SymExpr::constant(0);
    col.value_max = SymExpr::sym("COLS", 1, -1);
    ct.buffers["col_idx"] = col;

    BufferContract sp;
    sp.has_extent = true;
    sp.extent = SymExpr::sym("SLICES", 1, 1);
    sp.offsets = true;
    sp.offsets_total = SymExpr::sym("PADDED");
    sp.has_values = true;
    sp.value_min = SymExpr::constant(0);
    sp.value_max = SymExpr::sym("PADDED");
    sp.paired_lengths = "lane_len";
    sp.pair_stride = ws;
    sp.pair_total = SymExpr::sym("PADDED");
    ct.buffers["slice_ptr"] = sp;

    BufferContract perm;
    perm.has_extent = true;
    perm.extent = SymExpr::sym("SLICES", ws);
    perm.has_values = true;
    perm.value_min = SymExpr::constant(-1);  // -1 pads short slices
    perm.value_max = SymExpr::sym("ROWS", 1, -1);
    perm.injective = true;
    ct.buffers["perm"] = perm;

    BufferContract len;
    len.has_extent = true;
    len.extent = SymExpr::sym("SLICES", ws);
    len.has_values = true;
    len.value_min = SymExpr::constant(0);
    len.value_max = SymExpr::sym("PADDED");
    ct.buffers["lane_len"] = len;

    ct.has_group_upper = true;
    ct.group_upper = SymExpr::sym("SLICES");
  } else {
    // CSR storage.
    BufferContract values;
    values.has_extent = true;
    values.extent = SymExpr::sym("NNZ");
    ct.buffers["values"] = values;

    BufferContract col;
    col.has_extent = true;
    col.extent = SymExpr::sym("NNZ");
    col.has_values = true;
    col.value_min = SymExpr::constant(0);
    col.value_max = SymExpr::sym("COLS", 1, -1);
    ct.buffers["col_idx"] = col;

    BufferContract rp;
    rp.has_extent = true;
    rp.extent = SymExpr::sym("ROWS", 1, 1);
    rp.offsets = true;
    rp.offsets_total = SymExpr::sym("NNZ");
    rp.has_values = true;
    rp.value_min = SymExpr::constant(0);
    rp.value_max = SymExpr::sym("NNZ");
    ct.buffers["row_ptr"] = rp;
  }

  ct.scalar_args["rows"] = SymExpr::sym("ROWS");

  // Two consistent shape points: a square one and a ROWS > COLS one (the
  // latter witnesses output-aliasing overflows that a square grid hides).
  ct.witness_grid = {
      {{"ROWS", 8}, {"COLS", 8}, {"NNZ", 32}, {"SLICES", 1}, {"PADDED", 64}},
      {{"ROWS", 12}, {"COLS", 8}, {"NNZ", 32}, {"SLICES", 1}, {"PADDED", 64}},
  };
  return ct;
}

VerifySourceResult verify_kernel_source(const std::string& source) {
  VerifySourceResult out;
  try {
    const auto kernels = az::lower_kernels(az::parse_translation_unit(source));
    if (kernels.empty()) {
      out.errors.push_back("no __kernel function found in source");
      return out;
    }
    for (const auto& ir : kernels) {
      out.reports.push_back(vf::verify_kernel(ir, als_kernel_contract(ir)));
    }
  } catch (const az::ParseError& e) {
    out.errors.push_back("line " + std::to_string(e.line) + ": " + e.message);
  } catch (const std::exception& e) {
    out.errors.push_back(e.what());
  }
  return out;
}

std::vector<std::string> verify_diagnostics(
    const std::string& kernel,
    const vf::KernelVerifyReport& report) {
  std::vector<std::string> out;
  for (const auto& f : report.bounds_findings) {
    std::ostringstream os;
    os << kernel << ".cl:" << f.line << ":" << f.col << ": "
       << to_string(f.verdict) << " " << space_name(f.space)
       << (f.is_store ? " store " : " load ") << f.buffer << "[" << f.index
       << "]: " << f.detail;
    out.push_back(os.str());
  }
  for (const auto& f : report.race_findings) {
    std::ostringstream os;
    os << kernel << ".cl:" << f.line_a << ":" << f.col_a << ": "
       << to_string(f.verdict) << " race on " << space_name(f.space) << " "
       << f.buffer << " (with " << kernel << ".cl:" << f.line_b << ":"
       << f.col_b << "): " << f.detail;
    out.push_back(os.str());
  }
  return out;
}

VerifyKernelsResult verify_kernels(const VerifyKernelsOptions& options) {
  ocl::KernelConfig kc;
  kc.k = options.k;
  kc.group_size = options.group_size;
  if (options.tile_rows > 0) kc.tile_rows = static_cast<int>(options.tile_rows);

  // The pinned flavor enumeration (ocl/kernel_flavors.hpp): the fp32
  // prefix order matches the sweep's historical JSON entry order, the
  // narrow-storage flavors extend it.
  const std::vector<ocl::KernelFlavor> sources =
      ocl::enumerate_kernel_flavors(kc);

  VerifyKernelsResult out;
  for (const std::string& profile_name : options.profiles) {
    for (const ocl::KernelFlavor& flavor : sources) {
      const std::string& name = flavor.name;
      VerifySourceResult sr = verify_kernel_source(flavor.source);
      for (const auto& err : sr.errors) {
        out.errors.push_back(profile_name + "/" + name + ": " + err);
      }
      for (auto& report : sr.reports) {
        for (auto& d : verify_diagnostics(name, report)) {
          out.diagnostics.push_back(std::move(d));
        }
        VerifyKernelsEntry entry;
        entry.kernel = name;
        entry.profile = profile_name;
        entry.report = std::move(report);
        out.entries.push_back(std::move(entry));
      }
    }
  }
  return out;
}

std::string VerifyKernelsResult::to_json() const {
  std::ostringstream os;
  os << "{\"clean\":" << (clean() ? "true" : "false") << ",\"errors\":[";
  for (std::size_t i = 0; i < errors.size(); ++i) {
    if (i) os << ",";
    json_escape(os, errors[i]);
  }
  os << "],\"diagnostics\":[";
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    if (i) os << ",";
    json_escape(os, diagnostics[i]);
  }
  os << "],\"kernels\":[";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& e = entries[i];
    const auto& r = e.report;
    if (i) os << ",";
    os << "{\"kernel\":\"" << e.kernel << "\",\"profile\":\"" << e.profile
       << "\",\"clean\":" << (r.clean() ? "true" : "false")
       << ",\"bounds\":{\"refs\":" << r.refs_total
       << ",\"proven_safe\":" << r.refs_proven_safe
       << ",\"proven_violating\":" << r.refs_proven_violating
       << ",\"unprovable\":" << r.refs_unprovable << ",\"findings\":[";
    for (std::size_t j = 0; j < r.bounds_findings.size(); ++j) {
      const auto& f = r.bounds_findings[j];
      if (j) os << ",";
      os << "{\"buffer\":\"" << f.buffer << "\",\"space\":\""
         << space_name(f.space)
         << "\",\"store\":" << (f.is_store ? "true" : "false")
         << ",\"verdict\":\"" << to_string(f.verdict)
         << "\",\"line\":" << f.line << ",\"col\":" << f.col << ",\"index\":";
      json_escape(os, f.index);
      os << ",\"detail\":";
      json_escape(os, f.detail);
      os << "}";
    }
    os << "]},\"races\":{\"pairs\":" << r.pairs_checked
       << ",\"proven\":" << r.races_proven
       << ",\"unprovable\":" << r.races_unprovable << ",\"findings\":[";
    for (std::size_t j = 0; j < r.race_findings.size(); ++j) {
      const auto& f = r.race_findings[j];
      if (j) os << ",";
      os << "{\"buffer\":\"" << f.buffer << "\",\"space\":\""
         << space_name(f.space) << "\",\"verdict\":\"" << to_string(f.verdict)
         << "\",\"cross_group\":" << (f.cross_group ? "true" : "false")
         << ",\"a\":\"" << f.line_a << ":" << f.col_a << "\",\"b\":\""
         << f.line_b << ":" << f.col_b << "\",\"detail\":";
      json_escape(os, f.detail);
      os << "}";
    }
    os << "]},\"widths\":[";
    for (std::size_t j = 0; j < r.widths.size(); ++j) {
      const auto& w = r.widths[j];
      if (j) os << ",";
      os << "{\"buffer\":\"" << w.buffer << "\",\"space\":\""
         << space_name(w.space) << "\",\"mixed\":"
         << (w.mixed ? "true" : "false") << ",\"widths\":[";
      for (std::size_t b = 0; b < w.widths.size(); ++b) {
        if (b) os << ",";
        os << w.widths[b];
      }
      os << "]}";
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

}  // namespace alsmf
