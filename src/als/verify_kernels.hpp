// The `alsmf verify-kernels` sweep: the proof-carrying counterpart of
// analyze_kernels.hpp. Every generated OpenCL kernel is lowered to the
// access IR and handed to the static bounds & race verifier
// (ocl/analyze/verify/) together with the ALS buffer contracts (CSR / SELL
// shapes, value ranges, offset monotonicity, permutation injectivity). The
// gate is strict: a kernel passes only when every reference is
// proven-safe and every may-happen-in-parallel pair is proven race-free —
// "unprovable" fails, exactly like a provable violation. The mutation
// corpus (tests/ocl/defects/) keeps the verdicts honest against checked
// dynamic execution.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ocl/analyze/verify/verify.hpp"
#include "ocl/kernel_source.hpp"

namespace alsmf {

struct VerifyKernelsOptions {
  int k = 10;
  std::uint64_t seed = 42;  ///< accepted for CLI parity; contracts are symbolic
  long users = 300;
  long items = 200;
  long nnz = 6000;
  std::size_t num_groups = 48;
  int group_size = 32;
  long tile_rows = 0;  ///< forced TILE_ROWS define (0 = generator default)
  std::vector<std::string> profiles = {"cpu", "gpu", "mic"};
};

/// Builds the ALS verification contract for one lowered kernel: CSR
/// (values/col_idx/row_ptr) or SELL (slice_ptr/perm/lane_len) shapes are
/// recognized from the argument names. Shared with the defect-corpus tests
/// so the static leg verifies mutants under the very same assumptions.
ocl::analyze::verify::KernelContract als_kernel_contract(
    const ocl::analyze::KernelIR& ir);

/// Verifies every kernel in one source string against the ALS contracts.
/// Never throws on bad input: parse/lowering failures land in `errors`
/// (fail closed — clean() is then false).
struct VerifySourceResult {
  std::vector<ocl::analyze::verify::KernelVerifyReport> reports;
  std::vector<std::string> errors;

  bool clean() const {
    if (!errors.empty() || reports.empty()) return false;
    for (const auto& r : reports) {
      if (!r.clean()) return false;
    }
    return true;
  }
};
VerifySourceResult verify_kernel_source(const std::string& source);

/// Formats one report's bounds/race findings as clickable
/// "<kernel>.cl:<line>:<col>: message" diagnostics (one per finding).
std::vector<std::string> verify_diagnostics(
    const std::string& kernel,
    const ocl::analyze::verify::KernelVerifyReport& report);

struct VerifyKernelsEntry {
  std::string kernel;
  std::string profile;
  ocl::analyze::verify::KernelVerifyReport report;
};

struct VerifyKernelsResult {
  std::vector<VerifyKernelsEntry> entries;
  /// Setup/parse failures, "profile/kernel: message" (fail closed).
  std::vector<std::string> errors;
  /// Clickable diagnostics, "<kernel>.cl:<line>:<col>: message", one per
  /// non-proven bounds/race finding.
  std::vector<std::string> diagnostics;

  bool clean() const {
    if (!errors.empty() || entries.empty()) return false;
    for (const auto& e : entries) {
      if (!e.report.clean()) return false;
    }
    return true;
  }
  std::string to_json() const;
};

/// Runs the sweep over all 10 generated kernels per device profile.
VerifyKernelsResult verify_kernels(const VerifyKernelsOptions& options);

}  // namespace alsmf
