#include "baselines/ccd.hpp"

#include <cmath>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace alsmf {

namespace {

/// Column-oriented view into the CSR value array: for each column, the rows
/// and the positions of its entries inside the CSR values. Lets the row and
/// column sweeps share one residual array.
struct ColumnView {
  aligned_vector<nnz_t> col_ptr;
  aligned_vector<index_t> row_idx;
  aligned_vector<nnz_t> value_pos;  ///< index into the CSR values array
};

ColumnView build_column_view(const Csr& csr) {
  ColumnView v;
  const auto cols = static_cast<std::size_t>(csr.cols());
  v.col_ptr.assign(cols + 1, 0);
  v.row_idx.resize(static_cast<std::size_t>(csr.nnz()));
  v.value_pos.resize(static_cast<std::size_t>(csr.nnz()));
  for (auto j : csr.col_idx()) ++v.col_ptr[static_cast<std::size_t>(j) + 1];
  std::partial_sum(v.col_ptr.begin(), v.col_ptr.end(), v.col_ptr.begin());
  aligned_vector<nnz_t> cursor(v.col_ptr.begin(), v.col_ptr.end() - 1);
  for (index_t u = 0; u < csr.rows(); ++u) {
    const auto& row_ptr = csr.row_ptr();
    for (nnz_t p = row_ptr[static_cast<std::size_t>(u)];
         p < row_ptr[static_cast<std::size_t>(u) + 1]; ++p) {
      const auto j = static_cast<std::size_t>(
          csr.col_idx()[static_cast<std::size_t>(p)]);
      const auto pos = static_cast<std::size_t>(cursor[j]++);
      v.row_idx[pos] = u;
      v.value_pos[pos] = p;
    }
  }
  return v;
}

}  // namespace

CcdResult ccd_train(const Csr& train, const CcdOptions& options,
                    ThreadPool* pool) {
  ALSMF_CHECK(options.k > 0);
  ALSMF_CHECK(options.lambda > 0.0f);
  if (!pool) pool = &ThreadPool::global();

  CcdResult result;
  Rng rng(options.seed);
  const real scale =
      static_cast<real>(1.0 / std::sqrt(static_cast<double>(options.k)));
  result.x = Matrix(train.rows(), options.k, real{0});
  result.y = Matrix(train.cols(), options.k);
  result.y.fill_uniform(rng, -0.5f * scale, 0.5f * scale);

  // Residual r̂ = r - x yᵀ over Ω; starts at r because X = 0.
  aligned_vector<real> residual(train.values());
  const ColumnView cv = build_column_view(train);
  const auto& row_ptr = train.row_ptr();
  const auto& col_idx = train.col_idx();
  const int k = options.k;

  for (int outer = 0; outer < options.outer_iterations; ++outer) {
    for (int t = 0; t < k; ++t) {
      // Fold the old rank-one contribution back into the residual.
      pool->parallel_for(
          0, static_cast<std::size_t>(train.rows()),
          [&](std::size_t b, std::size_t e, unsigned) {
            for (std::size_t u = b; u < e; ++u) {
              const real xut = result.x(static_cast<index_t>(u), t);
              if (xut == real{0}) continue;
              for (nnz_t p = row_ptr[u]; p < row_ptr[u + 1]; ++p) {
                residual[static_cast<std::size_t>(p)] +=
                    xut * result.y(col_idx[static_cast<std::size_t>(p)], t);
              }
            }
          });

      for (int inner = 0; inner < options.inner_iterations; ++inner) {
        // Row sweep: x_ut = Σ r̂ y_it / (λ + Σ y_it²).
        pool->parallel_for(
            0, static_cast<std::size_t>(train.rows()),
            [&](std::size_t b, std::size_t e, unsigned) {
              for (std::size_t u = b; u < e; ++u) {
                real num = 0, den = options.lambda;
                for (nnz_t p = row_ptr[u]; p < row_ptr[u + 1]; ++p) {
                  const real yit =
                      result.y(col_idx[static_cast<std::size_t>(p)], t);
                  num += residual[static_cast<std::size_t>(p)] * yit;
                  den += yit * yit;
                }
                result.x(static_cast<index_t>(u), t) = num / den;
              }
            });
        // Column sweep: y_it = Σ r̂ x_ut / (λ + Σ x_ut²).
        pool->parallel_for(
            0, static_cast<std::size_t>(train.cols()),
            [&](std::size_t b, std::size_t e, unsigned) {
              for (std::size_t i = b; i < e; ++i) {
                real num = 0, den = options.lambda;
                for (nnz_t p = cv.col_ptr[i]; p < cv.col_ptr[i + 1]; ++p) {
                  const auto pos = static_cast<std::size_t>(p);
                  const real xut = result.x(cv.row_idx[pos], t);
                  num += residual[static_cast<std::size_t>(cv.value_pos[pos])] * xut;
                  den += xut * xut;
                }
                result.y(static_cast<index_t>(i), t) = num / den;
              }
            });
      }

      // Subtract the refreshed rank-one contribution.
      pool->parallel_for(
          0, static_cast<std::size_t>(train.rows()),
          [&](std::size_t b, std::size_t e, unsigned) {
            for (std::size_t u = b; u < e; ++u) {
              const real xut = result.x(static_cast<index_t>(u), t);
              if (xut == real{0}) continue;
              for (nnz_t p = row_ptr[u]; p < row_ptr[u + 1]; ++p) {
                residual[static_cast<std::size_t>(p)] -=
                    xut * result.y(col_idx[static_cast<std::size_t>(p)], t);
              }
            }
          });
    }
    // Training RMSE directly from the residual.
    double sse = 0;
    for (real v : residual) sse += static_cast<double>(v) * v;
    result.iter_rmse.push_back(
        std::sqrt(sse / static_cast<double>(train.nnz())));
  }
  return result;
}

}  // namespace alsmf
