// CCD++ (Yu et al., ICDM'12): cyclic coordinate descent that updates one
// rank-one factor pair at a time. The third solver family in the paper's
// related work; included for convergence comparisons.
#pragma once

#include <cstdint>
#include <vector>

#include "common/thread_pool.hpp"
#include "linalg/dense.hpp"
#include "sparse/csr.hpp"

namespace alsmf {

struct CcdOptions {
  int k = 10;
  real lambda = 0.1f;
  int outer_iterations = 5;   ///< passes over all k rank-one factors
  int inner_iterations = 1;   ///< u/v refinements per rank-one factor
  std::uint64_t seed = 42;
};

struct CcdResult {
  Matrix x;  ///< m × k
  Matrix y;  ///< n × k
  std::vector<double> iter_rmse;  ///< training RMSE after each outer pass
};

/// Trains factors with CCD++. Maintains the residual matrix explicitly
/// (same memory layout as the ratings) and updates rank-one factors with
/// the closed-form single-variable solution, parallel over rows/columns.
CcdResult ccd_train(const Csr& train, const CcdOptions& options,
                    ThreadPool* pool = nullptr);

}  // namespace alsmf
