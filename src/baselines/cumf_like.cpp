#include "baselines/cumf_like.hpp"

#include <algorithm>
#include <cmath>

#include "als/reference.hpp"
#include "als/row_solve.hpp"
#include "common/error.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/lu.hpp"
#include "sparse/convert.hpp"

namespace alsmf {

namespace {

using devsim::GroupCtx;

/// Library kernels launched per half-update (csrmm, geam, batched potrf,
/// batched trsv × 2, scatter) — each paying launch overhead.
constexpr int kLibraryLaunches = 6;

}  // namespace

CumfLikeAls::CumfLikeAls(const Csr& train, const AlsOptions& options,
                         devsim::Device& device)
    : train_(train),
      train_t_(transpose(train)),
      options_(options),
      device_(device) {
  ALSMF_CHECK(options.k > 0 && options.k <= kTileK);
  init_factors(train.rows(), train.cols(), options_, x_, y_);
}

void CumfLikeAls::half_update(const Csr& r, const Matrix& src, Matrix& dst,
                              const char* name) {
  const int k = options_.k;
  // The library path processes tiles padded to the tuned width (but never
  // below the warp width, its minimum scheduling granularity).
  const double k_pad = std::max(32, std::min(kTileK, ((k + 31) / 32) * 32));
  const real lambda = options_.lambda;
  const bool functional = options_.functional;
  const auto rows = static_cast<std::size_t>(r.rows());

  devsim::LaunchConfig config;
  config.group_size = 32;
  config.num_groups = std::max<std::size_t>(1, std::min<std::size_t>(8192, rows));
  config.functional = functional;
  const std::size_t stride = config.num_groups;
  const LinearSolverKind solver = options_.solver;

  device_.launch(name, config, [&, k_pad, lambda, stride, solver](GroupCtx& ctx) {
    const int W = ctx.simd_width();
    const double bundles = ctx.num_bundles();
    auto smat = ctx.local_alloc<real>(static_cast<std::size_t>(k) * k);
    auto svec = ctx.local_alloc<real>(static_cast<std::size_t>(k));
    // cuMF stages k_pad-wide tiles of Y and the assembled k_pad x k_pad
    // system in shared memory (its occupancy cost is real); at large k the
    // tile is clipped to what the scratch-pad can hold.
    const std::size_t lib_tile_elems = std::min(
        2 * static_cast<std::size_t>(k_pad) * static_cast<std::size_t>(k_pad),
        ctx.local_remaining() / 2 / sizeof(real));
    auto lib_tile = ctx.local_alloc<real>(lib_tile_elems);
    (void)lib_tile;

    for (index_t u = static_cast<index_t>(ctx.group_id()); u < r.rows();
         u += static_cast<index_t>(stride)) {
      const auto omega = static_cast<double>(r.row_nnz(u));
      if (omega == 0) {
        if (ctx.functional()) {
          auto row = dst.row(u);
          std::fill(row.begin(), row.end(), real{0});
        }
        continue;
      }

      // S1: gram accumulation over k_pad-wide tiles (generic path).
      ctx.section("S1");
      const double pairs_pad = 0.5 * k_pad * (k_pad + 1);
      ctx.ops_vector(bundles * W * omega * pairs_pad / W);
      ctx.flops(2.0 * 0.5 * k * (k + 1) * omega);
      ctx.global_read_coalesced(omega * 8.0);
      ctx.global_read_scattered(omega, k_pad * 4.0);
      // Materialized csrmm intermediate: written out, read back by geam.
      ctx.global_write_coalesced(omega * k_pad * 4.0);
      ctx.global_read_coalesced(omega * k_pad * 4.0);
      // The assembled k_pad×k_pad systems go to global for the batched solve.
      ctx.global_write_coalesced(k_pad * k_pad * 4.0);

      // S2: dense right-hand sides via the same library path.
      ctx.section("S2");
      ctx.ops_vector(bundles * W * omega * k_pad / W);
      ctx.flops(2.0 * k * omega);
      ctx.reread(omega, k_pad * 4.0);  // row-granular library loads
      ctx.global_write_coalesced(k_pad * 4.0);

      // S3: batched factorization reads the stored systems back. cuMF's
      // batched potrf (Kurzak et al.) parallelizes each k_pad x k_pad
      // factorization across the warp at partial lane utilization — but on
      // padded k_pad-wide tiles rather than the true k.
      ctx.section("S3");
      constexpr double kBatchedPotrfUtilization = 0.125;
      const double s3_flops = solver == LinearSolverKind::kCholesky
                                  ? cholesky_solve_flops(static_cast<int>(k_pad))
                                  : lu_solve_flops(static_cast<int>(k_pad));
      ctx.ops_scalar(bundles * W * s3_flops /
                     (W * kBatchedPotrfUtilization));
      ctx.flops(s3_flops);
      ctx.global_read_coalesced(k_pad * k_pad * 4.0);
      ctx.global_write_scattered(1.0, k * 4.0);

      if (ctx.functional()) {
        assemble_normal_equations(r.row_cols(u), r.row_values(u), src, lambda,
                                  k, smat.data(), svec.data());
        solve_normal_equations(smat.data(), svec.data(), k, solver);
        auto row = dst.row(u);
        std::copy(svec.begin(), svec.begin() + k, row.begin());
      }
    }
  });

  // Extra library launches beyond the fused model above.
  for (int i = 1; i < kLibraryLaunches; ++i) {
    devsim::LaunchConfig tiny;
    tiny.group_size = 32;
    tiny.num_groups = 1;
    tiny.functional = false;
    device_.launch(std::string(name) + "/lib_overhead", tiny,
                   [](GroupCtx&) {});
  }
}

void CumfLikeAls::run_iteration() {
  half_update(train_, y_, x_, "cumf_update_x");
  half_update(train_t_, x_, y_, "cumf_update_y");
}

double CumfLikeAls::run() {
  const double before = device_.modeled_seconds();
  for (int it = 0; it < options_.iterations; ++it) run_iteration();
  return device_.modeled_seconds() - before;
}

double CumfLikeAls::modeled_seconds() const {
  return device_.modeled_seconds_matching("cumf_");
}

}  // namespace alsmf
