// cuMF-like ALS baseline (Tan et al., HPDC'16).
//
// cuMF formulates the per-row normal equations as library calls: a
// cusparse csrmm pass materializes intermediate products in device memory,
// a cublas geam pass reshapes them, and a batched solver factorizes all
// k×k systems. Its kernels are tuned for k = 100; for smaller k the tiles
// are padded. We reproduce that cost structure:
//   * compute padded to kTileK-wide tiles (generic library path),
//   * two extra coalesced passes of nnz×k floats through global memory
//     (the materialized intermediates),
//   * per-row k×k systems stored to and re-read from global memory for the
//     batched solve (instead of staying in registers/scratch-pad),
//   * several library-kernel launches per half-update.
// Functionally it computes the exact same factors as AlsSolver.
#pragma once

#include "als/options.hpp"
#include "devsim/device.hpp"
#include "linalg/dense.hpp"
#include "sparse/csr.hpp"

namespace alsmf {

class CumfLikeAls {
 public:
  CumfLikeAls(const Csr& train, const AlsOptions& options,
              devsim::Device& device);

  void run_iteration();
  double run();  ///< returns modeled seconds consumed by the run

  const Matrix& x() const { return x_; }
  const Matrix& y() const { return y_; }
  double modeled_seconds() const;

  /// Tile width the library path is tuned for (cuMF targets k = 100).
  static constexpr int kTileK = 100;

 private:
  void half_update(const Csr& r, const Matrix& src, Matrix& dst,
                   const char* name);

  const Csr& train_;
  Csr train_t_;
  AlsOptions options_;
  devsim::Device& device_;
  Matrix x_, y_;
};

}  // namespace alsmf
