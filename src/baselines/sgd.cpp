#include "baselines/sgd.hpp"

#include <cmath>
#include <numeric>

#include "als/metrics.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/vecops.hpp"
#include "sparse/convert.hpp"

namespace alsmf {

namespace {

/// One SGD step on a single rating.
inline void sgd_step(const Triplet& t, Matrix& x, Matrix& y, int k, real lr,
                     real lambda) {
  real* xu = x.row(t.row).data();
  real* yi = y.row(t.col).data();
  const real err = t.value - vdot(xu, yi, static_cast<std::size_t>(k));
  for (int f = 0; f < k; ++f) {
    const real xf = xu[f];
    const real yf = yi[f];
    xu[f] += lr * (err * yf - lambda * xf);
    yi[f] += lr * (err * xf - lambda * yf);
  }
}

}  // namespace

SgdResult sgd_train(const Coo& train, const SgdOptions& options,
                    ThreadPool* pool) {
  ALSMF_CHECK(options.k > 0);
  if (!pool) pool = &ThreadPool::global();

  SgdResult result;
  Rng rng(options.seed);
  const real scale =
      static_cast<real>(1.0 / std::sqrt(static_cast<double>(options.k)));
  result.x = Matrix(train.rows(), options.k);
  result.y = Matrix(train.cols(), options.k);
  result.x.fill_uniform(rng, -0.5f * scale, 0.5f * scale);
  result.y.fill_uniform(rng, -0.5f * scale, 0.5f * scale);

  // Deterministic shuffle of the update order (fresh permutation per epoch
  // would also work; one fixed shuffle keeps the single-thread path exactly
  // reproducible).
  std::vector<std::size_t> order(static_cast<std::size_t>(train.nnz()));
  std::iota(order.begin(), order.end(), std::size_t{0});
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.bounded(i)]);
  }

  real lr = options.learning_rate;
  const auto& entries = train.entries();
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    if (options.hogwild) {
      pool->parallel_for(0, order.size(),
                         [&](std::size_t b, std::size_t e, unsigned) {
                           for (std::size_t i = b; i < e; ++i) {
                             sgd_step(entries[order[i]], result.x, result.y,
                                      options.k, lr, options.lambda);
                           }
                         });
    } else {
      for (std::size_t i : order) {
        sgd_step(entries[i], result.x, result.y, options.k, lr,
                 options.lambda);
      }
    }
    lr *= options.lr_decay;
    result.epoch_rmse.push_back(rmse(train, result.x, result.y));
  }
  return result;
}

}  // namespace alsmf
