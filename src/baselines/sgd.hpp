// Hogwild-style parallel stochastic gradient descent for matrix
// factorization (Recht et al., NIPS'11) — the main alternative solver the
// paper's related work discusses, included for convergence comparisons.
#pragma once

#include <cstdint>
#include <vector>

#include "common/thread_pool.hpp"
#include "linalg/dense.hpp"
#include "sparse/coo.hpp"

namespace alsmf {

struct SgdOptions {
  int k = 10;
  real lambda = 0.05f;       ///< L2 regularization per update
  real learning_rate = 0.01f;
  real lr_decay = 0.9f;      ///< per-epoch multiplicative decay
  int epochs = 20;
  std::uint64_t seed = 42;
  bool hogwild = true;       ///< lock-free parallel updates when true
};

struct SgdResult {
  Matrix x;  ///< m × k
  Matrix y;  ///< n × k
  std::vector<double> epoch_rmse;  ///< training RMSE after each epoch
};

/// Trains factors with SGD over the rating triplets. With hogwild=true the
/// updates run lock-free on the pool (benign races, as in the paper [27]);
/// otherwise one thread processes a deterministic shuffled order.
SgdResult sgd_train(const Coo& train, const SgdOptions& options,
                    ThreadPool* pool = nullptr);

}  // namespace alsmf
