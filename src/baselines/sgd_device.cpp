#include "baselines/sgd_device.hpp"

#include <cmath>

#include "als/metrics.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "linalg/vecops.hpp"

namespace alsmf {

DeviceSgd::DeviceSgd(const Coo& train, const DeviceSgdOptions& options,
                     devsim::Device& device)
    : train_(train), options_(options), device_(device),
      lr_(options.learning_rate) {
  ALSMF_CHECK(options.k > 0);
  ALSMF_CHECK(options.learning_rate > 0.0f);
  Rng rng(options_.seed);
  const real scale =
      static_cast<real>(1.0 / std::sqrt(static_cast<double>(options_.k)));
  x_ = Matrix(train.rows(), options_.k);
  y_ = Matrix(train.cols(), options_.k);
  x_.fill_uniform(rng, -0.5f * scale, 0.5f * scale);
  y_.fill_uniform(rng, -0.5f * scale, 0.5f * scale);
}

void DeviceSgd::run_epoch() {
  const auto& entries = train_.entries();
  const int k = options_.k;
  const real lr = lr_;
  const real lambda = options_.lambda;

  devsim::LaunchConfig config;
  config.group_size = options_.group_size;
  config.num_groups =
      std::max<std::size_t>(1, std::min(options_.num_groups, entries.size()));
  config.functional = options_.functional;
  const std::size_t stride = config.num_groups;

  device_.launch("sgd_epoch", config, [&, k, lr, lambda,
                                       stride](devsim::GroupCtx& ctx) {
    const int W = ctx.simd_width();
    const double bundles = ctx.num_bundles();
    const double passes =
        std::ceil(static_cast<double>(k) / ctx.group_size());
    std::size_t local_count = 0;

    for (std::size_t e = ctx.group_id(); e < entries.size(); e += stride) {
      ++local_count;
      if (!ctx.functional()) continue;
      const Triplet& t = entries[e];
      real* xu = x_.row(t.row).data();
      real* yi = y_.row(t.col).data();
      const real err =
          t.value - vdot(xu, yi, static_cast<std::size_t>(k));
      for (int f = 0; f < k; ++f) {
        const real xf = xu[f];
        const real yf = yi[f];
        xu[f] += lr * (err * yf - lambda * xf);
        yi[f] += lr * (err * xf - lambda * yf);
      }
    }

    // Accounting for this group's slice: per rating, a dot pass plus two
    // update passes across the k lanes (4 lane-ops each incl. the scaled
    // regularizer), factor rows gathered and written back scattered.
    const auto n = static_cast<double>(local_count);
    ctx.ops_scalar(bundles * W * passes * 4.0 * n);
    ctx.flops((6.0 * k + 3.0) * n);
    ctx.global_read_coalesced(n * 16.0);  // the rating triplets stream in
    ctx.global_read_scattered(2.0 * n, k * 4.0);   // x row + y row
    ctx.global_write_scattered(2.0 * n, k * 4.0);  // both written back
  });

  lr_ *= options_.lr_decay;
  ++epoch_;
}

double DeviceSgd::run() {
  const double before = device_.modeled_seconds();
  for (int e = 0; e < options_.epochs; ++e) run_epoch();
  return device_.modeled_seconds() - before;
}

double DeviceSgd::train_rmse() const { return rmse(train_, x_, y_); }

double DeviceSgd::modeled_seconds() const {
  return device_.modeled_seconds_matching("sgd_epoch");
}

}  // namespace alsmf
