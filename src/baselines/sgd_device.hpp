// Thread-batched SGD on the device substrate — the paper's future work
// (§VII: "extend our technique to other matrix factorization solvers such
// as SGD"). Follows cuMF-SGD's batch-Hogwild scheme: work-groups sweep
// disjoint strided slices of the rating stream; within a group the k
// factor dimensions are mapped across lanes (the same thread batching as
// the ALS kernels), and cross-group update races are accepted Hogwild
// style.
#pragma once

#include <cstdint>

#include "devsim/device.hpp"
#include "linalg/dense.hpp"
#include "sparse/coo.hpp"

namespace alsmf {

struct DeviceSgdOptions {
  int k = 10;
  real learning_rate = 0.02f;
  real lr_decay = 0.92f;
  real lambda = 0.05f;
  int epochs = 10;
  std::uint64_t seed = 42;
  std::size_t num_groups = 2048;
  int group_size = 32;
  bool functional = true;
};

class DeviceSgd {
 public:
  /// Keeps a reference to `train` (must outlive the solver).
  DeviceSgd(const Coo& train, const DeviceSgdOptions& options,
            devsim::Device& device);

  void run_epoch();
  double run();  ///< all epochs; returns modeled seconds consumed

  const Matrix& x() const { return x_; }
  const Matrix& y() const { return y_; }
  double train_rmse() const;
  double modeled_seconds() const;

 private:
  const Coo& train_;
  DeviceSgdOptions options_;
  devsim::Device& device_;
  Matrix x_, y_;
  real lr_;
  int epoch_ = 0;
};

}  // namespace alsmf
