// Cache-line/SIMD aligned storage (Per.16: compact data structures).
#pragma once

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

namespace alsmf {

inline constexpr std::size_t kDefaultAlignment = 64;  // one x86 cache line

/// Minimal aligned allocator for std::vector and friends.
template <class T, std::size_t Align = kDefaultAlignment>
struct AlignedAllocator {
  using value_type = T;

  // Non-type template parameters defeat allocator_traits' automatic rebind;
  // spell it out.
  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    void* p = ::operator new(n * sizeof(T), std::align_val_t(Align));
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Align));
  }

  template <class U>
  bool operator==(const AlignedAllocator<U, Align>&) const noexcept {
    return true;
  }
};

template <class T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

}  // namespace alsmf
