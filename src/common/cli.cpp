#include "common/cli.hpp"

#include <cstdlib>

#include "common/error.hpp"

namespace alsmf {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      std::string body = arg.substr(2);
      auto eq = body.find('=');
      if (eq != std::string::npos) {
        options_[body.substr(0, eq)] = body.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        options_[body] = argv[++i];
      } else {
        options_[body] = "";  // boolean flag
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

std::optional<std::string> CliArgs::get(const std::string& name) const {
  auto it = options_.find(name);
  if (it == options_.end()) return std::nullopt;
  return it->second;
}

std::string CliArgs::get_or(const std::string& name,
                            const std::string& def) const {
  auto v = get(name);
  return v ? *v : def;
}

long CliArgs::get_long(const std::string& name, long def) const {
  auto v = get(name);
  if (!v || v->empty()) return def;
  return std::strtol(v->c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& name, double def) const {
  auto v = get(name);
  if (!v || v->empty()) return def;
  return std::strtod(v->c_str(), nullptr);
}

bool CliArgs::has_flag(const std::string& name) const {
  return options_.count(name) != 0;
}

}  // namespace alsmf
