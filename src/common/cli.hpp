// Tiny command-line option parser used by examples and bench harnesses.
//
// Supports `--name value`, `--name=value`, and boolean `--flag` forms.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace alsmf {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  /// Returns the value of --name, or nullopt when absent.
  std::optional<std::string> get(const std::string& name) const;

  std::string get_or(const std::string& name, const std::string& def) const;
  long get_long(const std::string& name, long def) const;
  double get_double(const std::string& name, double def) const;
  bool has_flag(const std::string& name) const;

  /// Positional (non-option) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace alsmf
