// Error handling: a library exception type plus lightweight check macros.
#pragma once

#include <stdexcept>
#include <string>

namespace alsmf {

/// Exception thrown for precondition violations and unrecoverable errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail(const char* expr, const char* file, int line,
                              const std::string& msg) {
  throw Error(std::string(file) + ":" + std::to_string(line) + ": check `" +
              expr + "` failed" + (msg.empty() ? "" : (": " + msg)));
}
}  // namespace detail

}  // namespace alsmf

/// Precondition check that stays enabled in release builds.
#define ALSMF_CHECK(expr)                                              \
  do {                                                                 \
    if (!(expr)) ::alsmf::detail::fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define ALSMF_CHECK_MSG(expr, msg)                                        \
  do {                                                                    \
    if (!(expr)) ::alsmf::detail::fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
