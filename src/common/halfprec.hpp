// Bit-exact narrow-float conversions (IEEE binary16 and bfloat16, both
// round-to-nearest-even) used by the mixed-precision paths: the shadow-
// precision interpreter mode (ocl/analyze/interp.hpp), fp16/bf16-storage
// training (als/solver.hpp), and quantized factor snapshots
// (serve/model_store.hpp). Header-only so the conversions are identical
// everywhere a value rounds through storage.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

namespace alsmf {

/// float -> IEEE binary16 bits, round-to-nearest-even. Overflow saturates
/// to infinity (matching OpenCL vstore_half_rte); subnormal halves are
/// produced, not flushed.
inline std::uint16_t fp16_bits(float f) {
  std::uint32_t x;
  std::memcpy(&x, &f, sizeof(x));
  const std::uint16_t sign = static_cast<std::uint16_t>((x >> 16) & 0x8000u);
  const std::uint32_t em = x & 0x7fffffffu;
  if (em >= 0x7f800000u) {  // inf / nan (nan keeps a set mantissa bit)
    return static_cast<std::uint16_t>(
        sign | 0x7c00u | (em > 0x7f800000u ? 0x200u : 0u));
  }
  if (em >= 0x47800000u) return static_cast<std::uint16_t>(sign | 0x7c00u);
  if (em < 0x38800000u) {  // below min normal 2^-14: subnormal half or zero
    if (em < 0x33000000u) return sign;  // <= 2^-25 rounds to zero
    const int shift = 126 - static_cast<int>(em >> 23);  // 14..24
    const std::uint32_t mant = (em & 0x7fffffu) | 0x800000u;
    std::uint16_t h = static_cast<std::uint16_t>(mant >> shift);
    const std::uint32_t rem = mant & ((1u << shift) - 1u);
    const std::uint32_t mid = 1u << (shift - 1);
    if (rem > mid || (rem == mid && (h & 1u))) ++h;
    return static_cast<std::uint16_t>(sign | h);
  }
  std::uint16_t h = static_cast<std::uint16_t>(
      (((em >> 23) - 112u) << 10) | ((em & 0x7fffffu) >> 13));
  const std::uint32_t rem = em & 0x1fffu;
  if (rem > 0x1000u || (rem == 0x1000u && (h & 1u))) ++h;  // carry may
  return static_cast<std::uint16_t>(sign | h);  // round up into inf: correct
}

/// IEEE binary16 bits -> float (exact: every half is a float).
inline float fp16_from_bits(std::uint16_t h) {
  const float sign = (h & 0x8000u) ? -1.0f : 1.0f;
  const int exp = (h >> 10) & 0x1f;
  const int mant = h & 0x3ff;
  if (exp == 0x1f) {
    return mant ? std::numeric_limits<float>::quiet_NaN()
                : sign * std::numeric_limits<float>::infinity();
  }
  if (exp == 0) return sign * std::ldexp(static_cast<float>(mant), -24);
  return sign * std::ldexp(static_cast<float>(mant | 0x400), exp - 25);
}

/// float -> bfloat16 bits, round-to-nearest-even (the top 16 bits of the
/// float pattern; bf16 keeps the full fp32 exponent range).
inline std::uint16_t bf16_bits(float f) {
  std::uint32_t x;
  std::memcpy(&x, &f, sizeof(x));
  if ((x & 0x7fffffffu) > 0x7f800000u) {  // nan: quiet it, keep payload bit
    return static_cast<std::uint16_t>((x >> 16) | 0x0040u);
  }
  x += 0x7fffu + ((x >> 16) & 1u);
  return static_cast<std::uint16_t>(x >> 16);
}

/// bfloat16 bits -> float (exact).
inline float bf16_from_bits(std::uint16_t b) {
  const std::uint32_t x = static_cast<std::uint32_t>(b) << 16;
  float f;
  std::memcpy(&f, &x, sizeof(f));
  return f;
}

/// Round-trips through binary16 storage.
inline float fp16_round(float f) { return fp16_from_bits(fp16_bits(f)); }

/// Round-trips through binary16 with subnormal results flushed to zero —
/// the worst-case storage behavior the static analyzer's quantization
/// error term max(u·|v|, min_normal) is written against; the shadow
/// interpreter uses this flavor so the dynamic witness exercises FTZ.
inline float fp16_round_ftz(float f) {
  const float r = fp16_round(f);
  return (r != 0.0f && std::fabs(r) < 6.103515625e-5f) ? 0.0f : r;
}

/// Round-trips through bfloat16 storage (never subnormal below fp32's own
/// subnormal range, so no separate FTZ flavor is needed).
inline float bf16_round(float f) { return bf16_from_bits(bf16_bits(f)); }

}  // namespace alsmf
