#include "common/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"

namespace alsmf {

Histogram::Histogram(double min_value, double growth, int buckets)
    : min_value_(min_value),
      growth_(growth),
      counts_(static_cast<std::size_t>(buckets) + 2, 0) {
  ALSMF_CHECK(min_value > 0.0);
  ALSMF_CHECK(growth > 1.0);
  ALSMF_CHECK(buckets >= 1);
}

std::size_t Histogram::bucket_index(double value) const {
  if (value < min_value_) return 0;  // underflow
  const double pos = std::log(value / min_value_) / std::log(growth_);
  const auto i = static_cast<std::size_t>(pos);
  const std::size_t regular = counts_.size() - 2;
  if (i >= regular) return counts_.size() - 1;  // overflow
  return i + 1;
}

double Histogram::bucket_lower(std::size_t index) const {
  if (index == 0) return 0.0;
  return min_value_ * std::pow(growth_, static_cast<double>(index - 1));
}

double Histogram::bucket_upper(std::size_t index) const {
  if (index == 0) return min_value_;
  if (index == counts_.size() - 1) return max_;
  return min_value_ * std::pow(growth_, static_cast<double>(index));
}

void Histogram::add(double value) {
  if (!(value >= 0.0)) value = 0.0;  // clamp negatives and NaN
  ++counts_[bucket_index(value)];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

void Histogram::merge(const Histogram& other) {
  ALSMF_CHECK_MSG(counts_.size() == other.counts_.size() &&
                      min_value_ == other.min_value_ && growth_ == other.growth_,
                  "merging histograms with different bucket layouts");
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  min_ = count_ ? std::min(min_, other.min_) : other.min_;
  max_ = count_ ? std::max(max_, other.max_) : other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::clear() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = max_ = 0.0;
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  // Rank of the target observation (1-based, nearest-rank).
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(p * static_cast<double>(count_)));
  const std::uint64_t target = std::max<std::uint64_t>(rank, 1);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    if (seen + counts_[i] >= target) {
      const double lo = std::max(bucket_lower(i), min_);
      const double hi = std::min(bucket_upper(i), max_);
      if (hi <= lo) return lo;
      if (target >= count_) return hi;  // global max rank: exact maximum
      if (counts_[i] == 1) return lo;
      // Linear interpolation across the bucket by within-bucket rank.
      const double frac = static_cast<double>(target - seen - 1) /
                          static_cast<double>(counts_[i] - 1);
      return lo + frac * (hi - lo);
    }
    seen += counts_[i];
  }
  return max_;
}

std::string Histogram::summary_json() const {
  std::ostringstream out;
  out << "{\"count\":" << count_ << ",\"mean\":" << mean()
      << ",\"min\":" << min() << ",\"max\":" << max()
      << ",\"p50\":" << percentile(0.50) << ",\"p90\":" << percentile(0.90)
      << ",\"p95\":" << percentile(0.95) << ",\"p99\":" << percentile(0.99)
      << "}";
  return out.str();
}

}  // namespace alsmf
