// Log-bucketed histogram for latency/size distributions.
//
// Buckets grow geometrically from `min_value`, so one histogram covers
// microsecond queue waits and second-long stalls with bounded memory and
// ~`growth`-relative quantile error. Not thread-safe: callers that share a
// histogram across threads (serve::ServeMetrics) must lock around it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace alsmf {

class Histogram {
 public:
  /// Bucket i spans [min_value·growth^i, min_value·growth^(i+1)); values
  /// below min_value land in an underflow bucket, values beyond the last
  /// edge in an overflow bucket (both participate in percentiles).
  explicit Histogram(double min_value = 1.0, double growth = 1.25,
                     int buckets = 96);

  void add(double value);
  void merge(const Histogram& other);  ///< requires identical bucket layout
  void clear();

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }

  /// Value at quantile p in [0, 1] (p50 => 0.5). Interpolates linearly
  /// inside the containing bucket; exact for the recorded min and max.
  double percentile(double p) const;

  /// Compact JSON object: {"count":..,"mean":..,"min":..,"max":..,
  /// "p50":..,"p90":..,"p95":..,"p99":..}.
  std::string summary_json() const;

 private:
  std::size_t bucket_index(double value) const;
  double bucket_lower(std::size_t index) const;
  double bucket_upper(std::size_t index) const;

  double min_value_;
  double growth_;
  std::vector<std::uint64_t> counts_;  // [under, b0..bN-1, over]
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace alsmf
