#include "common/json.hpp"

#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace alsmf::json {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  return out;
}

void JsonWriter::before_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!first_.empty()) {
    if (!first_.back()) out_ << ",";
    first_.back() = false;
  }
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ << "{";
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  ALSMF_CHECK_MSG(!first_.empty(), "JsonWriter: end_object with no open container");
  first_.pop_back();
  out_ << "}";
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ << "[";
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  ALSMF_CHECK_MSG(!first_.empty(), "JsonWriter: end_array with no open container");
  first_.pop_back();
  out_ << "]";
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  ALSMF_CHECK_MSG(!first_.empty(), "JsonWriter: key outside an object");
  if (!first_.back()) out_ << ",";
  first_.back() = false;
  out_ << "\"" << escape(k) << "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    out_ << "null";
  } else {
    out_ << v;
  }
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(long long v) {
  before_value();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(unsigned long long v) {
  before_value();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  out_ << "\"" << escape(v) << "\"";
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ << "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view fragment) {
  before_value();
  out_ << fragment;
  return *this;
}

const Value* Value::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::at(std::string_view key) const {
  const Value* v = find(key);
  ALSMF_CHECK_MSG(v != nullptr, "json: missing key '" + std::string(key) + "'");
  return *v;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    Value v = parse_value();
    skip_ws();
    ALSMF_CHECK_MSG(pos_ == text_.size(), "json: trailing characters at offset " +
                                              std::to_string(pos_));
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw Error("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char ch) {
    if (peek() != ch) fail(std::string("expected '") + ch + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    Value v;
    switch (peek()) {
      case '{': parse_object(v); return v;
      case '[': parse_array(v); return v;
      case '"':
        v.type_ = Value::Type::kString;
        v.string_ = parse_string();
        return v;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        v.type_ = Value::Type::kBool;
        v.bool_ = true;
        return v;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        v.type_ = Value::Type::kBool;
        v.bool_ = false;
        return v;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        v.type_ = Value::Type::kNull;
        return v;
      default:
        v.type_ = Value::Type::kNumber;
        v.number_ = parse_number();
        return v;
    }
  }

  void parse_object(Value& v) {
    v.type_ = Value::Type::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.members_.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return;
    }
  }

  void parse_array(Value& v) {
    v.type_ = Value::Type::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return;
    }
    while (true) {
      v.array_.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char ch = text_[pos_++];
      if (ch == '"') return out;
      if (ch != '\\') {
        out.push_back(ch);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // ASCII only (all we ever emit); anything else degrades to '?'.
          out.push_back(code < 0x80 ? static_cast<char>(code) : '?');
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number");
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Value parse(std::string_view text) { return Parser(text).run(); }

}  // namespace alsmf::json
