// One JSON module for every emitter in the repo.
//
// JsonWriter replaces the per-file hand-rolled string building that used to
// live in serve_metrics, the robustness report, the checked-execution report
// and the Chrome-trace writer: it handles escaping, comma placement, nesting
// and number formatting once. Numbers use the default ostream formatting the
// old emitters used, so existing output shapes are preserved; non-finite
// doubles become `null` (JSON has no NaN/Inf).
//
// json::parse is the matching minimal reader — enough to load the files we
// write ourselves (regression baselines, exported stats) without adding a
// dependency. It is not a general-purpose validating parser: numbers are
// doubles, object member order is preserved, duplicate keys keep the last.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace alsmf::json {

/// Escapes a string for embedding between JSON quotes.
std::string escape(std::string_view s);

class JsonWriter {
 public:
  JsonWriter() = default;

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Member key; must be followed by exactly one value / begin_*.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  JsonWriter& value(long long v);
  JsonWriter& value(unsigned long long v);
  template <class T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  JsonWriter& value(T v) {
    if constexpr (std::is_signed_v<T>) {
      return value(static_cast<long long>(v));
    } else {
      return value(static_cast<unsigned long long>(v));
    }
  }
  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& null();

  /// Splices a pre-serialized JSON fragment in value position (e.g. a
  /// nested report that already knows how to serialize itself).
  JsonWriter& raw(std::string_view fragment);

  /// key + value in one call.
  template <class T>
  JsonWriter& field(std::string_view k, T v) {
    key(k);
    return value(v);
  }
  JsonWriter& field_null(std::string_view k) {
    key(k);
    return null();
  }
  JsonWriter& field_raw(std::string_view k, std::string_view fragment) {
    key(k);
    return raw(fragment);
  }

  std::string str() const { return out_.str(); }

 private:
  void before_value();

  std::ostringstream out_;
  // One frame per open container: true until the first element is written.
  std::vector<bool> first_;
  bool pending_key_ = false;
};

/// Parsed JSON value (see the header comment for the supported subset).
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_bool() const { return type_ == Type::kBool; }

  double as_double(double def = 0.0) const { return is_number() ? number_ : def; }
  bool as_bool(bool def = false) const { return type_ == Type::kBool ? bool_ : def; }
  const std::string& as_string() const { return string_; }

  const std::vector<Value>& array() const { return array_; }
  const std::vector<std::pair<std::string, Value>>& members() const {
    return members_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* find(std::string_view key) const;
  /// Like find but throws alsmf::Error when absent.
  const Value& at(std::string_view key) const;

 private:
  friend class Parser;
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> members_;
};

/// Parses one JSON document (throws alsmf::Error on malformed input or
/// trailing garbage).
Value parse(std::string_view text);

}  // namespace alsmf::json
