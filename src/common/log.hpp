// Minimal leveled logging to stderr.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace alsmf {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global log threshold; messages below it are dropped.
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

template <class... Args>
void log(LogLevel level, Args&&... args) {
  if (level < log_threshold()) return;
  std::ostringstream os;
  (os << ... << args);
  detail::log_emit(level, os.str());
}

template <class... Args>
void log_info(Args&&... args) {
  log(LogLevel::kInfo, std::forward<Args>(args)...);
}
template <class... Args>
void log_warn(Args&&... args) {
  log(LogLevel::kWarn, std::forward<Args>(args)...);
}
template <class... Args>
void log_debug(Args&&... args) {
  log(LogLevel::kDebug, std::forward<Args>(args)...);
}

}  // namespace alsmf
