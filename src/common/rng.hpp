// Deterministic random number generation.
//
// All randomness in the library flows through Rng so experiments are exactly
// reproducible from a seed. The core generator is xoshiro256** seeded via
// splitmix64 (public-domain algorithms by Blackman & Vigna).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/error.hpp"
#include "common/types.hpp"

namespace alsmf {

/// splitmix64 step; used for seeding and cheap hashing.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n) without modulo bias (Lemire's method).
  std::uint64_t bounded(std::uint64_t n) {
    ALSMF_CHECK(n > 0);
    unsigned __int128 m =
        static_cast<unsigned __int128>((*this)()) * static_cast<unsigned __int128>(n);
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        m = static_cast<unsigned __int128>((*this)()) *
            static_cast<unsigned __int128>(n);
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Box–Muller (polar form avoided for determinism).
  double normal() {
    const double u1 = 1.0 - uniform();  // (0,1]
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.14159265358979323846 * u2);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Fork an independent stream (for per-thread or per-row generators).
  Rng fork() {
    std::uint64_t s = (*this)();
    return Rng(s);
  }

  /// Raw xoshiro256** state, for checkpointing the stream position.
  std::array<std::uint64_t, 4> state() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& s) {
    for (int i = 0; i < 4; ++i) state_[i] = s[i];
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

/// Discrete Zipf(α) sampler over [0, n) using rejection-inversion
/// (Hörmann & Derflinger). Used to produce power-law user/item popularity in
/// the synthetic dataset replicas.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double alpha) : n_(n), alpha_(alpha) {
    ALSMF_CHECK(n >= 1);
    ALSMF_CHECK(alpha > 0.0);
    h_x1_ = h(1.5) - 1.0;
    h_n_ = h(static_cast<double>(n_) + 0.5);
    s_ = 2.0 - h_inv(h(2.5) - std::pow(2.0, -alpha_));
  }

  /// Draws a rank in [0, n), rank 0 being the most popular.
  std::uint64_t operator()(Rng& rng) const {
    while (true) {
      const double u = h_n_ + rng.uniform() * (h_x1_ - h_n_);
      const double x = h_inv(u);
      auto k = static_cast<std::uint64_t>(x + 0.5);
      if (k < 1) k = 1;
      if (k > n_) k = n_;
      if (static_cast<double>(k) - x <= s_ ||
          u >= h(static_cast<double>(k) + 0.5) - std::pow(static_cast<double>(k), -alpha_)) {
        return k - 1;
      }
    }
  }

  double alpha() const { return alpha_; }
  std::uint64_t n() const { return n_; }

 private:
  double h(double x) const {
    if (std::abs(1.0 - alpha_) < 1e-12) return std::log(x);
    return std::pow(x, 1.0 - alpha_) / (1.0 - alpha_);
  }
  double h_inv(double x) const {
    if (std::abs(1.0 - alpha_) < 1e-12) return std::exp(x);
    return std::pow((1.0 - alpha_) * x, 1.0 / (1.0 - alpha_));
  }

  std::uint64_t n_;
  double alpha_;
  double h_x1_, h_n_, s_;
};

}  // namespace alsmf
