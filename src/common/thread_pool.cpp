#include "common/thread_pool.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace alsmf {

ThreadPool::ThreadPool(unsigned threads) {
  unsigned n = threads ? threads : std::thread::hardware_concurrency();
  n = std::max(1u, n);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lk(m_);
    stop_ = true;
  }
  cv_work_.notify_all();
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t, unsigned)>& fn) {
  if (begin >= end) return;  // empty/reversed ranges: documented no-op
  const std::size_t n = end - begin;
  // Small ranges: run inline, skip synchronization entirely.
  if (n == 1 || workers_.size() == 1) {
    fn(begin, end, 0);
    return;
  }

  Job job;
  job.fn = &fn;
  job.begin = begin;
  job.end = end;
  job.chunk = std::max<std::size_t>(1, n / (workers_.size() * 8));
  job.next = begin;
  job.remaining = static_cast<unsigned>(workers_.size());

  {
    std::scoped_lock lk(m_);
    ALSMF_CHECK_MSG(job_ == nullptr, "nested parallel_for on one pool");
    job_ = &job;
    ++epoch_;
  }
  cv_work_.notify_all();

  std::unique_lock lk(m_);
  cv_done_.wait(lk, [&] { return job.remaining == 0; });
  job_ = nullptr;
  if (job.error) std::rethrow_exception(job.error);
}

void ThreadPool::worker_loop(unsigned id) {
  std::uint64_t seen_epoch = 0;
  while (true) {
    Job* job = nullptr;
    {
      std::unique_lock lk(m_);
      cv_work_.wait(lk, [&] { return stop_ || (job_ && epoch_ != seen_epoch); });
      if (stop_) return;
      job = job_;
      seen_epoch = epoch_;
    }
    // Claim and run chunks until the range is exhausted.
    while (true) {
      std::size_t b, e;
      {
        std::scoped_lock lk(m_);
        if (job->next >= job->end) break;
        b = job->next;
        e = std::min(job->end, b + job->chunk);
        job->next = e;
      }
      try {
        (*job->fn)(b, e, id);
      } catch (...) {
        std::scoped_lock lk(m_);
        if (!job->error) job->error = std::current_exception();
      }
    }
    bool last = false;
    {
      std::scoped_lock lk(m_);
      last = (--job->remaining == 0);
    }
    if (last) cv_done_.notify_all();
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace alsmf
