// A small fixed-size thread pool with a blocking parallel_for.
//
// Follows CP.4 (think in tasks), CP.41 (minimize thread creation): one pool
// of std::jthread workers lives for the lifetime of the pool object; loops
// are divided into contiguous chunks so each worker touches a dense index
// range (Per.19: access memory predictably).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace alsmf {

class ThreadPool {
 public:
  /// Creates a pool with `threads` workers; 0 means hardware_concurrency().
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Runs fn(begin..end) partitioned into per-worker contiguous chunks and
  /// blocks until every chunk completes. fn receives (chunk_begin, chunk_end,
  /// worker_index). Exceptions from workers are rethrown on the caller.
  ///
  /// Degenerate ranges are safe by contract, not caller discipline: an
  /// empty range (begin == end) and a reversed one (end < begin) are both
  /// no-ops — fn is never invoked and no worker synchronization happens.
  /// Callers that batch variable-size work (e.g. the serve micro-batcher
  /// draining zero fold-ins) rely on this.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t, unsigned)>& fn);

  /// Process-wide default pool (lazily constructed).
  static ThreadPool& global();

 private:
  struct Job {
    const std::function<void(std::size_t, std::size_t, unsigned)>* fn = nullptr;
    std::size_t begin = 0, end = 0;
    std::size_t chunk = 0;          // chunk size per worker slice
    std::size_t next = 0;           // next unclaimed begin (guarded by m_)
    unsigned remaining = 0;         // workers still running
    std::exception_ptr error;
  };

  void worker_loop(unsigned id);

  std::vector<std::jthread> workers_;
  std::mutex m_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  Job* job_ = nullptr;     // current job, null when idle
  std::uint64_t epoch_ = 0;
  bool stop_ = false;
};

}  // namespace alsmf
