// Wall-clock timing utilities.
#pragma once

#include <chrono>

namespace alsmf {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates time over multiple start/stop intervals (per-step timing).
class Accumulator {
 public:
  void start() { t_.reset(); }
  void stop() { total_ += t_.seconds(); ++count_; }
  double total_seconds() const { return total_; }
  long count() const { return count_; }
  void reset() { total_ = 0.0; count_ = 0; }

 private:
  Timer t_;
  double total_ = 0.0;
  long count_ = 0;
};

}  // namespace alsmf
