// Core scalar and index types shared across the library.
#pragma once

#include <cstddef>
#include <cstdint>

namespace alsmf {

/// Floating-point type used for ratings and factor matrices.
/// The paper's kernels are single precision (OpenCL float); keep `real`
/// single precision so flop/byte accounting in devsim matches.
using real = float;

/// Index type for users/items (rows/columns of the rating matrix).
using index_t = std::int64_t;

/// Index type for nonzero positions (can exceed 2^31 for Netflix-scale data).
using nnz_t = std::int64_t;

}  // namespace alsmf
