#include "data/datasets.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "sparse/convert.hpp"

namespace alsmf {

const std::vector<DatasetInfo>& table1_datasets() {
  // m, n, Nz are Table I of the paper. The Zipf exponents are chosen per
  // dataset family: MovieLens and Netflix have heavy-tailed user activity;
  // YahooMusic R1 is extremely skewed; R4 is a small, denser subset.
  static const std::vector<DatasetInfo> kDatasets = {
      {"Movielens10M", "MVLE", 71567, 65133, 8000044, 0.85, 0.95},
      {"NetFlix", "NTFX", 480189, 17770, 99072112, 0.90, 0.90},
      {"YahooMusic R1", "YMR1", 1948882, 98212, 115248575, 1.00, 1.00},
      {"YahooMusic R4", "YMR4", 7642, 11916, 211231, 0.75, 0.85},
  };
  return kDatasets;
}

const DatasetInfo& dataset_by_abbr(const std::string& abbr) {
  std::string a = abbr;
  std::transform(a.begin(), a.end(), a.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  for (const auto& d : table1_datasets()) {
    if (d.abbr == a) return d;
  }
  throw Error("unknown dataset abbreviation: " + abbr);
}

SyntheticSpec replica_spec(const DatasetInfo& info, double scale,
                           std::uint64_t seed) {
  ALSMF_CHECK(scale >= 1.0);
  SyntheticSpec spec;
  // Users and nnz scale by `scale` (preserving the ratings-per-user
  // distribution, which drives per-row kernel cost); items scale by
  // sqrt(scale) so the replica's density stays far from saturation and
  // rows can keep their full length.
  spec.users = std::max<index_t>(
      8, static_cast<index_t>(std::llround(static_cast<double>(info.users) / scale)));
  spec.items = std::max<index_t>(
      8, static_cast<index_t>(
             std::llround(static_cast<double>(info.items) / std::sqrt(scale))));
  spec.items = std::min(spec.items, info.items);
  spec.nnz = std::max<nnz_t>(
      spec.users,
      static_cast<nnz_t>(std::llround(static_cast<double>(info.nnz) / scale)));
  spec.nnz = std::min(spec.nnz, spec.users * spec.items / 2);
  spec.user_alpha = info.user_alpha;
  spec.item_alpha = info.item_alpha;
  spec.seed = seed ^ std::hash<std::string>{}(info.abbr);
  return spec;
}

Csr make_replica(const std::string& abbr, double scale, std::uint64_t seed) {
  const auto& info = dataset_by_abbr(abbr);
  return coo_to_csr(generate_synthetic(replica_spec(info, scale, seed)));
}

}  // namespace alsmf
