// The paper's Table I dataset registry and replica construction.
#pragma once

#include <string>
#include <vector>

#include "data/synthetic.hpp"
#include "sparse/csr.hpp"

namespace alsmf {

/// One row of the paper's Table I.
struct DatasetInfo {
  std::string name;   ///< full name, e.g. "Movielens10M"
  std::string abbr;   ///< the paper's abbreviation, e.g. "MVLE"
  index_t users;      ///< m
  index_t items;      ///< n
  nnz_t nnz;          ///< training nonzeros
  double user_alpha;  ///< replica row-popularity exponent
  double item_alpha;  ///< replica column-popularity exponent
};

/// All four Table I datasets in paper order: MVLE, NTFX, YMR1, YMR4.
const std::vector<DatasetInfo>& table1_datasets();

/// Lookup by abbreviation (case-insensitive). Throws on unknown.
const DatasetInfo& dataset_by_abbr(const std::string& abbr);

/// Builds the synthetic replica spec for a dataset, downscaled by `scale`
/// (users, items and nnz all divided by `scale`, preserving density and
/// mean row length). scale = 1 reproduces the full Table I shape.
SyntheticSpec replica_spec(const DatasetInfo& info, double scale = 1.0,
                           std::uint64_t seed = 42);

/// Generates the CSR replica directly.
Csr make_replica(const std::string& abbr, double scale = 1.0,
                 std::uint64_t seed = 42);

}  // namespace alsmf
