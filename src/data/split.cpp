#include "data/split.hpp"

#include <unordered_map>
#include <vector>

#include "common/rng.hpp"

namespace alsmf {

std::pair<Coo, Coo> split_holdout(const Coo& all, double test_fraction,
                                  std::uint64_t seed) {
  Rng rng(seed);
  Coo train(all.rows(), all.cols());
  Coo test(all.rows(), all.cols());
  for (const auto& t : all.entries()) {
    if (rng.uniform() < test_fraction) {
      test.add(t.row, t.col, t.value);
    } else {
      train.add(t.row, t.col, t.value);
    }
  }
  return {std::move(train), std::move(test)};
}

std::pair<Coo, Coo> split_leave_one_out(const Coo& all, std::uint64_t seed) {
  Rng rng(seed);
  // Count entries per row, then choose one held-out ordinal per row.
  std::unordered_map<index_t, nnz_t> row_count;
  for (const auto& t : all.entries()) ++row_count[t.row];

  std::unordered_map<index_t, nnz_t> holdout_ordinal;
  holdout_ordinal.reserve(row_count.size());
  for (const auto& [row, count] : row_count) {
    if (count >= 2) {
      holdout_ordinal[row] =
          static_cast<nnz_t>(rng.bounded(static_cast<std::uint64_t>(count)));
    }
  }

  std::unordered_map<index_t, nnz_t> seen;
  Coo train(all.rows(), all.cols());
  Coo test(all.rows(), all.cols());
  for (const auto& t : all.entries()) {
    const nnz_t ordinal = seen[t.row]++;
    auto it = holdout_ordinal.find(t.row);
    if (it != holdout_ordinal.end() && it->second == ordinal) {
      test.add(t.row, t.col, t.value);
    } else {
      train.add(t.row, t.col, t.value);
    }
  }
  return {std::move(train), std::move(test)};
}

}  // namespace alsmf
