// Train/test splitting of rating data.
#pragma once

#include <cstdint>
#include <utility>

#include "sparse/coo.hpp"

namespace alsmf {

/// Randomly holds out `test_fraction` of the entries. Deterministic in
/// `seed`. Both halves keep the original matrix dimensions.
std::pair<Coo, Coo> split_holdout(const Coo& all, double test_fraction,
                                  std::uint64_t seed);

/// Leave-one-out: for every row with >= 2 entries, moves exactly one random
/// entry to the test set (standard recommender evaluation protocol).
std::pair<Coo, Coo> split_leave_one_out(const Coo& all, std::uint64_t seed);

}  // namespace alsmf
