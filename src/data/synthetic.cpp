#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>
#include <vector>

#include "common/error.hpp"
#include "sparse/convert.hpp"

namespace alsmf {

namespace {

/// Distributes `total` entries over `count` rows with a Zipf(alpha) profile:
/// deg(rank r) proportional to (r+1)^-alpha, rounded to sum exactly `total`,
/// each degree capped at `cap` (can't rate more items than exist).
std::vector<nnz_t> zipf_degrees(index_t count, nnz_t total, double alpha,
                                nnz_t cap, Rng& rng) {
  ALSMF_CHECK(count > 0);
  std::vector<double> weight(static_cast<std::size_t>(count));
  double sum = 0.0;
  for (index_t r = 0; r < count; ++r) {
    weight[static_cast<std::size_t>(r)] =
        std::pow(static_cast<double>(r) + 1.0, -alpha);
    sum += weight[static_cast<std::size_t>(r)];
  }
  std::vector<nnz_t> deg(static_cast<std::size_t>(count));
  nnz_t assigned = 0;
  for (std::size_t r = 0; r < deg.size(); ++r) {
    auto d = static_cast<nnz_t>(
        std::floor(weight[r] / sum * static_cast<double>(total)));
    d = std::min(d, cap);
    deg[r] = d;
    assigned += d;
  }
  // Spread the rounding remainder over random rows with headroom.
  nnz_t remainder = total - assigned;
  std::size_t guard = 0;
  while (remainder > 0 && guard < deg.size() * 64) {
    auto r = static_cast<std::size_t>(rng.bounded(static_cast<std::uint64_t>(count)));
    if (deg[r] < cap) {
      ++deg[r];
      --remainder;
    }
    ++guard;
  }
  // Shuffle so "popular" users are not the low ids (Fisher–Yates).
  for (std::size_t i = deg.size(); i > 1; --i) {
    auto j = static_cast<std::size_t>(rng.bounded(i));
    std::swap(deg[i - 1], deg[j]);
  }
  return deg;
}

}  // namespace

Coo generate_synthetic(const SyntheticSpec& spec) {
  ALSMF_CHECK(spec.users > 0 && spec.items > 0);
  ALSMF_CHECK(spec.nnz >= 0);
  ALSMF_CHECK_MSG(spec.nnz <= spec.users * spec.items, "denser than full");
  Rng rng(spec.seed);

  // Row degrees: Zipf over users, capped at the item count.
  auto deg = zipf_degrees(spec.users, spec.nnz, spec.user_alpha, spec.items, rng);

  // Item popularity: Zipf sampler over item *ranks*, then a random
  // permutation maps ranks to item ids.
  ZipfSampler item_zipf(static_cast<std::uint64_t>(spec.items), spec.item_alpha);
  std::vector<index_t> item_of_rank(static_cast<std::size_t>(spec.items));
  std::iota(item_of_rank.begin(), item_of_rank.end(), index_t{0});
  for (std::size_t i = item_of_rank.size(); i > 1; --i) {
    auto j = static_cast<std::size_t>(rng.bounded(i));
    std::swap(item_of_rank[i - 1], item_of_rank[j]);
  }

  // Planted low-rank model for rating values.
  const int pk = std::max(1, spec.planted_rank);
  std::vector<float> xu(static_cast<std::size_t>(spec.users) * pk);
  std::vector<float> yi(static_cast<std::size_t>(spec.items) * pk);
  const double planted_scale = 1.0 / std::sqrt(static_cast<double>(pk));
  for (auto& v : xu) v = static_cast<float>(rng.normal(0.0, planted_scale));
  for (auto& v : yi) v = static_cast<float>(rng.normal(0.0, planted_scale));

  const double mid = 0.5 * (static_cast<double>(spec.min_rating) +
                            static_cast<double>(spec.max_rating));
  const double spread = 0.5 * (static_cast<double>(spec.max_rating) -
                               static_cast<double>(spec.min_rating));

  Coo coo(spec.users, spec.items);
  coo.reserve(spec.nnz);
  std::unordered_set<index_t> seen;
  for (index_t u = 0; u < spec.users; ++u) {
    const nnz_t d = deg[static_cast<std::size_t>(u)];
    if (d == 0) continue;
    seen.clear();
    seen.reserve(static_cast<std::size_t>(d) * 2);
    nnz_t placed = 0;
    std::size_t attempts = 0;
    const std::size_t max_attempts = static_cast<std::size_t>(d) * 64 + 256;
    while (placed < d && attempts < max_attempts) {
      ++attempts;
      index_t item;
      if (static_cast<double>(d) >
          0.25 * static_cast<double>(spec.items)) {
        // Dense row: uniform sampling avoids rejection stalls on the tail.
        item = static_cast<index_t>(
            rng.bounded(static_cast<std::uint64_t>(spec.items)));
      } else {
        item = item_of_rank[static_cast<std::size_t>(item_zipf(rng))];
      }
      if (!seen.insert(item).second) continue;
      // Rating from the planted model.
      double dot = 0.0;
      const float* xrow = xu.data() + static_cast<std::size_t>(u) * pk;
      const float* yrow = yi.data() + static_cast<std::size_t>(item) * pk;
      for (int f = 0; f < pk; ++f) dot += static_cast<double>(xrow[f]) * yrow[f];
      double r = mid + spread * dot + rng.normal(0.0, spec.noise);
      r = std::clamp(r, static_cast<double>(spec.min_rating),
                     static_cast<double>(spec.max_rating));
      if (spec.integer_ratings) r = std::round(r);
      coo.add(u, item, static_cast<real>(r));
      ++placed;
    }
  }
  coo.sort_row_major();
  ALSMF_CHECK(coo.is_canonical());
  return coo;
}

Csr generate_synthetic_csr(const SyntheticSpec& spec) {
  return coo_to_csr(generate_synthetic(spec));
}

}  // namespace alsmf
