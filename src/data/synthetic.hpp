// Synthetic rating-matrix generation.
//
// The paper evaluates on MovieLens10M, Netflix and YahooMusic R1/R4, which
// are license-gated downloads. We substitute seeded synthetic replicas that
// match each dataset's shape: the same m × n (scaled), the same density,
// and power-law (Zipf) user/item popularity — the property that causes the
// uneven row lengths (and thus the warp divergence) the paper's thread
// batching addresses. Rating values come from a planted low-rank model so
// ALS convergence is meaningful, not just timing.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

namespace alsmf {

struct SyntheticSpec {
  index_t users = 1000;
  index_t items = 1000;
  nnz_t nnz = 10000;
  /// Zipf exponent of ratings-per-user (row lengths). Real recommender
  /// datasets sit around 0.7–1.1.
  double user_alpha = 0.9;
  /// Zipf exponent of item popularity (column lengths).
  double item_alpha = 0.9;
  /// Rank of the planted model generating rating values.
  int planted_rank = 4;
  /// Observation noise added to the planted inner products.
  double noise = 0.3;
  /// Ratings are clamped and rounded to [min_rating, max_rating].
  real min_rating = 1.0f;
  real max_rating = 5.0f;
  /// Round ratings to integers (like MovieLens stars) when true.
  bool integer_ratings = true;
  std::uint64_t seed = 42;
};

/// Generates a synthetic rating matrix in COO form (canonical order).
/// Row lengths follow the user Zipf; item ids within a row are distinct and
/// follow the item Zipf. The result has exactly spec.nnz entries unless the
/// requested density is unsatisfiable (more nnz than cells in some row set),
/// in which case it is capped (never happens for recommender shapes).
Coo generate_synthetic(const SyntheticSpec& spec);

/// Convenience: generate + convert to CSR.
Csr generate_synthetic_csr(const SyntheticSpec& spec);

}  // namespace alsmf
