#include "devsim/check/checker.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <utility>

namespace alsmf::devsim::check {

namespace {

// Findings are deduplicated on (kind, buffer, section): a missing barrier
// conflicts on every byte of every group, and one representative finding
// with full attribution is what the kernel author needs. total_findings
// still counts every detection.
std::string dedup_key(FindingKind kind, const std::string& buffer,
                      const std::string& section) {
  std::string key = to_string(kind);
  key += '|';
  key += buffer;
  key += '|';
  key += section;
  return key;
}

}  // namespace

LaunchChecker::LaunchChecker(std::string kernel_name,
                             const CheckOptions& options)
    : kernel_(std::move(kernel_name)), options_(options) {
  report_.launches = 1;
}

void LaunchChecker::begin_group(std::size_t group, int group_size) {
  group_ = group;
  group_size_ = group_size;
  lane_ = 0;
  ++local_gen_;  // every span from a previous group is now stale
  ++epoch_;      // group start is a sequence point like a barrier
}

int LaunchChecker::register_global(const char* name, const void* base,
                                   std::size_t bytes, double touched_scale) {
  for (std::size_t i = 0; i < globals_.size(); ++i) {
    if (globals_[i].base == static_cast<const std::byte*>(base)) {
      return static_cast<int>(i);
    }
  }
  Buffer buf;
  buf.name = name;
  buf.base = static_cast<const std::byte*>(base);
  buf.bytes = bytes;
  buf.touched_scale = touched_scale;
  buf.shadow.resize(bytes);
  globals_.push_back(std::move(buf));
  return static_cast<int>(globals_.size()) - 1;
}

LaunchChecker::Access LaunchChecker::current_access() const {
  Access a;
  a.group = static_cast<std::int64_t>(group_);
  a.lane = lane_;
  a.epoch = epoch_;
  a.local_gen = local_gen_;
  a.valid = true;
  return a;
}

void LaunchChecker::check_conflicts(const std::string& buffer_name,
                                    const ShadowByte& cell,
                                    std::size_t byte_index, bool is_write,
                                    bool global) {
  auto conflicts_with = [&](const Access& prev, bool prev_is_write) {
    if (!prev.valid) return;
    if (!is_write && !prev_is_write) return;  // read-read is always fine
    if (!global && prev.local_gen != local_gen_) return;  // pre-reset record
    if (prev.group != static_cast<std::int64_t>(group_)) {
      if (!global) return;  // local memory is private to the group
      std::ostringstream os;
      os << (prev_is_write ? "write" : "read") << " by group " << prev.group
         << " lane " << prev.lane << " conflicts with "
         << (is_write ? "write" : "read") << " by group " << group_
         << " lane " << lane_ << " (no inter-group ordering exists)";
      add_finding(FindingKind::kCrossGroupRace, buffer_name,
                  static_cast<long long>(byte_index), os.str());
      return;
    }
    if (prev.lane == lane_) return;    // program order within a lane
    if (prev.epoch != epoch_) return;  // a barrier separated the accesses
    std::ostringstream os;
    os << (prev_is_write ? "write" : "read") << " by lane " << prev.lane
       << " conflicts with " << (is_write ? "write" : "read") << " by lane "
       << lane_ << " with no group_barrier() in between";
    add_finding(FindingKind::kIntraGroupRace, buffer_name,
                static_cast<long long>(byte_index), os.str());
  };
  conflicts_with(cell.write, /*prev_is_write=*/true);
  if (is_write) conflicts_with(cell.read, /*prev_is_write=*/false);
}

void LaunchChecker::on_global_access(int buffer, std::size_t byte_offset,
                                     std::size_t len, bool is_write) {
  Buffer& buf = globals_[static_cast<std::size_t>(buffer)];
  touched_global_ += static_cast<double>(len) * buf.touched_scale;
  const Access now = current_access();
  for (std::size_t b = byte_offset; b < byte_offset + len; ++b) {
    ShadowByte& cell = buf.shadow[b];
    check_conflicts(buf.name, cell, b, is_write, /*global=*/true);
    (is_write ? cell.write : cell.read) = now;
  }
}

void LaunchChecker::on_local_access(const char* name,
                                    std::size_t arena_offset, std::size_t len,
                                    bool is_write) {
  if (arena_offset + len > local_shadow_.size()) {
    local_shadow_.resize(arena_offset + len);  // lazy: arena grows on demand
  }
  touched_local_ += static_cast<double>(len);
  const Access now = current_access();
  for (std::size_t b = arena_offset; b < arena_offset + len; ++b) {
    ShadowByte& cell = local_shadow_[b];
    check_conflicts(name, cell, b, is_write, /*global=*/false);
    (is_write ? cell.write : cell.read) = now;
  }
}

void LaunchChecker::report_oob_global(int buffer, long long index,
                                      std::size_t span_size) {
  std::ostringstream os;
  os << "element index " << index << " outside span of " << span_size
     << " elements";
  add_finding(FindingKind::kOutOfBoundsGlobal,
              globals_[static_cast<std::size_t>(buffer)].name, index,
              os.str());
}

void LaunchChecker::report_oob_local(const char* name, long long index,
                                     std::size_t span_size) {
  std::ostringstream os;
  os << "element index " << index << " outside allocation of " << span_size
     << " elements";
  add_finding(FindingKind::kOutOfBoundsLocal, name, index, os.str());
}

void LaunchChecker::report_stale_local(const char* name,
                                       std::uint32_t allocated_gen) {
  std::ostringstream os;
  os << "span allocated in arena generation " << allocated_gen
     << " used in generation " << local_gen_
     << " (the scratch-pad arena resets every group)";
  add_finding(FindingKind::kStaleLocalSpan, name, -1, os.str());
}

void LaunchChecker::finish(const LaunchCounters& recorded) {
  report_.touched_global_bytes = touched_global_;
  report_.touched_local_bytes = touched_local_;

  const double rec_global =
      recorded.global_bytes + recorded.scattered_useful_bytes;
  const double rec_local = recorded.local_bytes + recorded.spill_bytes;

  auto under = [&](const char* what, double rec, double touched) {
    const double floor =
        (1.0 - options_.under_report_tolerance) * touched - options_.slack_bytes;
    if (rec >= floor) return;
    std::ostringstream os;
    os << what << " traffic under-reported: recorded " << rec
       << " bytes but accessors touched " << touched << " bytes";
    add_finding(FindingKind::kCounterUnderReport, what, -1, os.str());
  };
  under("global", rec_global, touched_global_);
  under("local", rec_local, touched_local_);

  const double rec_total = rec_global + rec_local;
  const double touched_total = touched_global_ + touched_local_;
  const double ceiling =
      options_.over_report_factor * touched_total + options_.slack_bytes;
  if (rec_total > ceiling) {
    std::ostringstream os;
    os << "total traffic over-reported: recorded " << rec_total
       << " bytes against " << touched_total << " touched bytes (limit "
       << ceiling << ")";
    add_finding(FindingKind::kCounterOverReport, "total", -1, os.str());
  }
}

void LaunchChecker::add_finding(FindingKind kind, const std::string& buffer,
                                long long index, const std::string& detail) {
  ++report_.total_findings;
  if (seen_keys_.count(dedup_key(kind, buffer, section_)) > 0) return;
  if (report_.findings.size() >= options_.max_findings_per_launch) return;
  seen_keys_.insert(dedup_key(kind, buffer, section_));
  Finding f;
  f.kind = kind;
  f.kernel = kernel_;
  f.section = section_;
  f.buffer = buffer;
  f.detail = detail;
  f.group = group_;
  f.lane = lane_;
  f.index = index;
  report_.findings.push_back(std::move(f));
}

CheckReport LaunchChecker::take_report() { return std::move(report_); }

}  // namespace alsmf::devsim::check
