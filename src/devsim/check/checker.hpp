// Shadow-memory checker behind the checked-execution mode.
//
// One LaunchChecker exists per validated launch. Groups execute serially
// (the Device switches off the thread pool when LaunchConfig.validate is
// set), so the checker needs no synchronization and its diagnostics are
// deterministic. Every element access routed through a GlobalSpan /
// LocalSpan lands here as a byte-range event carrying the current (group,
// lane, epoch, section) coordinate; the checker keeps, per byte, the last
// write and the last read, and reports:
//
//  * out-of-bounds accesses (rejected before they touch memory),
//  * write-write / read-write conflicts between lanes of one group with no
//    ctx.group_barrier() sequence point in between (epoch comparison),
//  * conflicts on global buffers between different work-groups (an NDRange
//    launch has no inter-group ordering at all),
//  * uses of a LocalSpan allocated for an earlier group (the scratch-pad
//    arena resets per group; a stashed span is dangling),
//  * counter honesty: the launch's recorded global/local byte counters must
//    cover the bytes the kernel actually touched (see finish()).
//
// The per-byte log keeps only the most recent read and write, so a
// conflict with an older overwritten access can be missed — the standard
// shadow-cell approximation; repeated runs with different shapes close the
// gap in practice.
#pragma once

#include <cstddef>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "devsim/check/report.hpp"
#include "devsim/counters.hpp"

namespace alsmf::devsim::check {

class LaunchChecker {
 public:
  LaunchChecker(std::string kernel_name, const CheckOptions& options);

  // --- group lifecycle (driven by Device::launch) ---
  void begin_group(std::size_t group, int group_size);
  void barrier() { ++epoch_; }
  void set_lane(int lane) { lane_ = lane; }
  int lane() const { return lane_; }
  void set_section(const std::string& name) { section_ = name; }
  std::uint32_t local_generation() const { return local_gen_; }

  // --- buffer registry ---
  /// Registers a global buffer (idempotent per base pointer; the first
  /// registration's name, size and scale win). Returns the buffer id the
  /// spans carry. `touched_scale` converts host bytes to *modeled* device
  /// bytes for the counter-honesty accounting: the emulation may store an
  /// element wider than the device layout does (e.g. 64-bit host column
  /// indices for the paper's 32-bit `col_idx` array). Shadow race/bounds
  /// tracking always uses host bytes.
  int register_global(const char* name, const void* base, std::size_t bytes,
                      double touched_scale = 1.0);

  // --- access events (byte ranges) ---
  void on_global_access(int buffer, std::size_t byte_offset, std::size_t len,
                        bool is_write);
  void on_local_access(const char* name, std::size_t arena_offset,
                       std::size_t len, bool is_write);

  // --- violation events raised by the spans ---
  void report_oob_global(int buffer, long long index, std::size_t span_size);
  void report_oob_local(const char* name, long long index,
                        std::size_t span_size);
  void report_stale_local(const char* name, std::uint32_t allocated_gen);

  /// Counter honesty, called once after all groups ran: the merged recorded
  /// counters must cover the touched bytes (and not exceed them by more
  /// than the modeling-convention factor).
  void finish(const LaunchCounters& recorded);

  CheckReport take_report();

 private:
  /// Most recent access of one kind (read or write) to one byte.
  struct Access {
    std::int64_t group = -1;
    std::int32_t lane = 0;
    std::uint32_t epoch = 0;
    std::uint32_t local_gen = 0;  ///< arena generation (local shadow only)
    bool valid = false;
  };
  struct ShadowByte {
    Access write, read;
  };
  struct Buffer {
    std::string name;
    const std::byte* base = nullptr;
    std::size_t bytes = 0;
    double touched_scale = 1.0;  ///< host-byte → modeled-byte factor
    std::vector<ShadowByte> shadow;
  };

  Access current_access() const;
  void check_conflicts(const std::string& buffer_name, const ShadowByte& cell,
                       std::size_t byte_index, bool is_write, bool global);
  void add_finding(FindingKind kind, const std::string& buffer,
                   long long index, const std::string& detail);

  std::string kernel_;
  CheckOptions options_;
  CheckReport report_;
  std::set<std::string> seen_keys_;  ///< dedup keys of emitted findings

  std::vector<Buffer> globals_;
  std::vector<ShadowByte> local_shadow_;  ///< indexed by arena byte offset

  std::size_t group_ = 0;
  int group_size_ = 1;
  int lane_ = 0;
  std::uint32_t epoch_ = 0;
  std::uint32_t local_gen_ = 0;
  std::string section_;

  double touched_global_ = 0;
  double touched_local_ = 0;
};

}  // namespace alsmf::devsim::check
