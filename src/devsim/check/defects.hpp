// Shared defect taxonomy bridging the two kernel-checking legs: the dynamic
// shadow-memory checker (check/checker.hpp, FindingKind) and the static
// verifier (ocl/analyze/verify/). The defect-injection corpus
// (tests/ocl/defects/) asserts both legs flag every mutation with the same
// class, so the mapping lives here rather than in either leg.
#pragma once

#include "devsim/check/report.hpp"

namespace alsmf::devsim::check {

enum class DefectClass {
  kNone,
  kBoundsGlobal,    ///< access outside a global buffer's extent
  kBoundsLocal,     ///< access outside a scratch-pad allocation
  kRaceIntraGroup,  ///< lanes of one group conflict without a barrier
  kRaceCrossGroup,  ///< global-buffer conflict between work-groups
  kStaleLocal,      ///< scratch-pad span used after its group's arena reset
  kCounterHonesty,  ///< recorded traffic diverges from touched bytes
};

inline const char* to_string(DefectClass c) {
  switch (c) {
    case DefectClass::kNone: return "none";
    case DefectClass::kBoundsGlobal: return "bounds-global";
    case DefectClass::kBoundsLocal: return "bounds-local";
    case DefectClass::kRaceIntraGroup: return "race-intra-group";
    case DefectClass::kRaceCrossGroup: return "race-cross-group";
    case DefectClass::kStaleLocal: return "stale-local";
    case DefectClass::kCounterHonesty: return "counter-honesty";
  }
  return "?";
}

/// Dynamic-leg mapping: the defect class a checked-execution finding
/// witnesses.
inline DefectClass defect_class(FindingKind kind) {
  switch (kind) {
    case FindingKind::kOutOfBoundsGlobal: return DefectClass::kBoundsGlobal;
    case FindingKind::kOutOfBoundsLocal: return DefectClass::kBoundsLocal;
    case FindingKind::kIntraGroupRace: return DefectClass::kRaceIntraGroup;
    case FindingKind::kCrossGroupRace: return DefectClass::kRaceCrossGroup;
    case FindingKind::kStaleLocalSpan: return DefectClass::kStaleLocal;
    case FindingKind::kCounterUnderReport:
    case FindingKind::kCounterOverReport:
      return DefectClass::kCounterHonesty;
  }
  return DefectClass::kNone;
}

}  // namespace alsmf::devsim::check
