#include "devsim/check/report.hpp"

#include <sstream>

#include "common/json.hpp"

namespace alsmf::devsim::check {

const char* to_string(FindingKind kind) {
  switch (kind) {
    case FindingKind::kOutOfBoundsGlobal: return "out_of_bounds_global";
    case FindingKind::kOutOfBoundsLocal: return "out_of_bounds_local";
    case FindingKind::kIntraGroupRace: return "intra_group_race";
    case FindingKind::kCrossGroupRace: return "cross_group_race";
    case FindingKind::kStaleLocalSpan: return "stale_local_span";
    case FindingKind::kCounterUnderReport: return "counter_under_report";
    case FindingKind::kCounterOverReport: return "counter_over_report";
  }
  return "unknown";
}

std::string Finding::to_string() const {
  std::ostringstream os;
  os << ::alsmf::devsim::check::to_string(kind) << " in kernel '" << kernel
     << "'";
  if (!section.empty()) os << " section " << section;
  os << " group " << group << " lane " << lane;
  if (!buffer.empty()) os << " buffer '" << buffer << "'";
  if (index >= 0) os << " index " << index;
  if (!detail.empty()) os << ": " << detail;
  return os.str();
}

std::string Finding::to_json() const {
  json::JsonWriter w;
  w.begin_object();
  w.field("kind", ::alsmf::devsim::check::to_string(kind));
  w.field("kernel", kernel);
  w.field("section", section);
  w.field("buffer", buffer);
  w.field("group", group);
  w.field("lane", lane);
  w.field("index", index);
  w.field("detail", detail);
  w.end_object();
  return w.str();
}

void CheckReport::merge(const CheckReport& other) {
  findings.insert(findings.end(), other.findings.begin(),
                  other.findings.end());
  total_findings += other.total_findings;
  launches += other.launches;
  touched_global_bytes += other.touched_global_bytes;
  touched_local_bytes += other.touched_local_bytes;
}

std::string CheckReport::to_json() const {
  json::JsonWriter w;
  w.begin_object();
  w.field("total_findings", total_findings);
  w.field("launches", launches);
  w.field("touched_global_bytes", touched_global_bytes);
  w.field("touched_local_bytes", touched_local_bytes);
  w.key("findings").begin_array();
  for (const auto& f : findings) w.raw(f.to_json());
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace alsmf::devsim::check
