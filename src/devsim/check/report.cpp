#include "devsim/check/report.hpp"

#include <sstream>

namespace alsmf::devsim::check {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(ch);
    }
  }
  return out;
}

}  // namespace

const char* to_string(FindingKind kind) {
  switch (kind) {
    case FindingKind::kOutOfBoundsGlobal: return "out_of_bounds_global";
    case FindingKind::kOutOfBoundsLocal: return "out_of_bounds_local";
    case FindingKind::kIntraGroupRace: return "intra_group_race";
    case FindingKind::kCrossGroupRace: return "cross_group_race";
    case FindingKind::kStaleLocalSpan: return "stale_local_span";
    case FindingKind::kCounterUnderReport: return "counter_under_report";
    case FindingKind::kCounterOverReport: return "counter_over_report";
  }
  return "unknown";
}

std::string Finding::to_string() const {
  std::ostringstream os;
  os << ::alsmf::devsim::check::to_string(kind) << " in kernel '" << kernel
     << "'";
  if (!section.empty()) os << " section " << section;
  os << " group " << group << " lane " << lane;
  if (!buffer.empty()) os << " buffer '" << buffer << "'";
  if (index >= 0) os << " index " << index;
  if (!detail.empty()) os << ": " << detail;
  return os.str();
}

std::string Finding::to_json() const {
  std::ostringstream os;
  os << "{\"kind\":\"" << ::alsmf::devsim::check::to_string(kind)
     << "\",\"kernel\":\"" << json_escape(kernel)
     << "\",\"section\":\"" << json_escape(section)
     << "\",\"buffer\":\"" << json_escape(buffer)
     << "\",\"group\":" << group
     << ",\"lane\":" << lane
     << ",\"index\":" << index
     << ",\"detail\":\"" << json_escape(detail) << "\"}";
  return os.str();
}

void CheckReport::merge(const CheckReport& other) {
  findings.insert(findings.end(), other.findings.begin(),
                  other.findings.end());
  total_findings += other.total_findings;
  launches += other.launches;
  touched_global_bytes += other.touched_global_bytes;
  touched_local_bytes += other.touched_local_bytes;
}

std::string CheckReport::to_json() const {
  std::ostringstream os;
  os << "{\"total_findings\":" << total_findings
     << ",\"launches\":" << launches
     << ",\"touched_global_bytes\":" << touched_global_bytes
     << ",\"touched_local_bytes\":" << touched_local_bytes
     << ",\"findings\":[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    if (i) os << ",";
    os << findings[i].to_json();
  }
  os << "]}";
  return os.str();
}

}  // namespace alsmf::devsim::check
