// Findings produced by the checked-execution mode (LaunchConfig.validate).
//
// Each finding attributes one defect class to a (kernel, section, group,
// lane, buffer) coordinate so a kernel author can map it straight back to
// the OpenCL source position it mirrors. Reports merge across launches and
// export to JSON for the `alsmf_cli check-kernels` gate.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace alsmf::devsim::check {

enum class FindingKind {
  kOutOfBoundsGlobal,   ///< element access outside a global buffer
  kOutOfBoundsLocal,    ///< element access outside a scratch-pad allocation
  kIntraGroupRace,      ///< two lanes of one group, no barrier in between
  kCrossGroupRace,      ///< global-buffer conflict between work-groups
  kStaleLocalSpan,      ///< LocalSpan used after its group's arena reset
  kCounterUnderReport,  ///< kernel touched more bytes than it recorded
  kCounterOverReport,   ///< recorded traffic wildly exceeds touched bytes
};

const char* to_string(FindingKind kind);

struct Finding {
  FindingKind kind = FindingKind::kOutOfBoundsGlobal;
  std::string kernel;
  std::string section;  ///< active accounting section ("S1"...) at detection
  std::string buffer;   ///< buffer name given at registration / local_alloc
  std::string detail;
  std::size_t group = 0;
  int lane = 0;
  long long index = -1;  ///< element index when meaningful, else -1

  std::string to_string() const;
  std::string to_json() const;
};

/// Tolerances of the checked-execution mode.
struct CheckOptions {
  /// Findings kept verbatim per launch; further detections of the same
  /// launch only bump total_findings (shadow conflicts can repeat per byte).
  std::size_t max_findings_per_launch = 64;
  /// Counter honesty: recorded traffic may fall short of actually-touched
  /// bytes by at most this fraction (plus slack_bytes) before the launch is
  /// flagged as under-reporting.
  double under_report_tolerance = 0.02;
  /// Recorded traffic may exceed touched bytes by at most this factor (the
  /// model legitimately counts divergence padding, replays and spills that
  /// the functional emulation performs once).
  double over_report_factor = 64.0;
  /// Absolute slack applied to both honesty directions, so tiny launches
  /// never trip on rounding.
  double slack_bytes = 4096.0;
};

struct CheckReport {
  std::vector<Finding> findings;   ///< first max_findings_per_launch, deduped
  std::size_t total_findings = 0;  ///< all detections, including suppressed
  std::size_t launches = 0;        ///< validated launches merged in
  double touched_global_bytes = 0; ///< bytes observed through accessors
  double touched_local_bytes = 0;

  bool clean() const { return total_findings == 0; }
  void merge(const CheckReport& other);
  std::string to_json() const;
};

}  // namespace alsmf::devsim::check
