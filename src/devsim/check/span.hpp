// Typed accessors for checked kernel execution.
//
// GlobalSpan<T> wraps a global buffer handed to a kernel via
// ctx.global_span(); LocalSpan<T> is what ctx.local_alloc() returns. Both
// behave like plain spans, but every *element* access (read/write/operator[])
// is bounds-checked, and — when the launch runs with validate=true — routed
// through the LaunchChecker's shadow memory for race and counter-honesty
// analysis.
//
// Two access styles coexist:
//  * element style: `v = s.read(i)` / `s.write(i, v)` / `s[i] += v` — checked
//    and recorded individually;
//  * bulk style: compute on the raw pointer (`s.data()`, `s.begin()`) and
//    declare the touched range with `mark_read(off, n)` / `mark_write(off,
//    n)`. This keeps tight loops bit-identical to the unchecked build while
//    the shadow still sees every byte.
//
// data()/begin()/end() are deliberate UNCHECKED escapes: anything done
// through them without a mark_* call is invisible to the checker.
//
// In unchecked launches (no checker attached) element accesses still
// bounds-check and throw Error, so plain runs fail fast instead of
// corrupting memory; the raw escapes stay free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>

#include "common/error.hpp"
#include "devsim/check/checker.hpp"

namespace alsmf::devsim::check {

namespace detail {

[[noreturn]] inline void throw_oob(const char* what, long long index,
                                   std::size_t size) {
  throw Error(std::string(what) + " index " + std::to_string(index) +
              " out of bounds for " + std::to_string(size) + " elements");
}

/// Write-back proxy so `span[i]`, `span[i] = v` and `span[i] += v` all route
/// through the owning span's checked read/write.
template <class Span, class T>
class Ref {
 public:
  Ref(const Span* span, std::size_t index) : span_(span), index_(index) {}
  operator T() const { return span_->read(index_); }
  const Ref& operator=(T v) const {
    span_->write(index_, v);
    return *this;
  }
  const Ref& operator+=(T v) const { return *this = span_->read(index_) + v; }
  const Ref& operator-=(T v) const { return *this = span_->read(index_) - v; }
  const Ref& operator*=(T v) const { return *this = span_->read(index_) * v; }

 private:
  const Span* span_;
  std::size_t index_;
};

}  // namespace detail

template <class T>
class GlobalSpan {
 public:
  using value_type = std::remove_const_t<T>;

  GlobalSpan() = default;
  GlobalSpan(T* data, std::size_t size) : data_(data), size_(size) {}
  GlobalSpan(T* data, std::size_t size, LaunchChecker* checker, int buffer)
      : data_(data), size_(size), checker_(checker), buffer_(buffer) {}

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // UNCHECKED escapes — pair with mark_read/mark_write in checked kernels.
  T* data() const { return data_; }
  T* begin() const { return data_; }
  T* end() const { return data_ + size_; }

  value_type read(std::size_t i) const {
    if (i >= size_) {
      if (!oob(i)) return value_type{};
    }
    if (checker_) {
      checker_->on_global_access(buffer_, i * sizeof(T), sizeof(T),
                                 /*is_write=*/false);
    }
    return data_[i];
  }

  void write(std::size_t i, value_type v) const
    requires(!std::is_const_v<T>)
  {
    if (i >= size_) {
      if (!oob(i)) return;
    }
    if (checker_) {
      checker_->on_global_access(buffer_, i * sizeof(T), sizeof(T),
                                 /*is_write=*/true);
    }
    data_[i] = v;
  }

  /// Declares that elements [offset, offset+count) were read through the
  /// raw pointer. No-op without a checker.
  void mark_read(std::size_t offset, std::size_t count) const {
    mark(offset, count, /*is_write=*/false);
  }
  void mark_write(std::size_t offset, std::size_t count) const {
    mark(offset, count, /*is_write=*/true);
  }

  detail::Ref<GlobalSpan, value_type> operator[](std::size_t i) const {
    return {this, i};
  }

 private:
  friend class detail::Ref<GlobalSpan, value_type>;

  /// Returns false after reporting (checked mode: suppress and continue);
  /// throws in unchecked mode.
  bool oob(std::size_t i) const {
    if (checker_) {
      checker_->report_oob_global(buffer_, static_cast<long long>(i), size_);
      return false;
    }
    detail::throw_oob("global span", static_cast<long long>(i), size_);
  }

  void mark(std::size_t offset, std::size_t count, bool is_write) const {
    if (count == 0) return;
    if (offset + count > size_) {
      if (!oob(offset + count - 1)) return;
    }
    if (checker_) {
      checker_->on_global_access(buffer_, offset * sizeof(T),
                                 count * sizeof(T), is_write);
    }
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
  LaunchChecker* checker_ = nullptr;
  int buffer_ = -1;
};

template <class T>
class LocalSpan {
 public:
  using value_type = std::remove_const_t<T>;

  LocalSpan() = default;
  LocalSpan(T* data, std::size_t size) : data_(data), size_(size) {}
  LocalSpan(T* data, std::size_t size, LaunchChecker* checker,
            const char* name, std::size_t arena_offset, std::uint32_t gen)
      : data_(data),
        size_(size),
        checker_(checker),
        name_(name),
        arena_offset_(arena_offset),
        gen_(gen) {}

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // UNCHECKED escapes — pair with mark_read/mark_write in checked kernels.
  T* data() const { return data_; }
  T* begin() const { return data_; }
  T* end() const { return data_ + size_; }

  value_type read(std::size_t i) const {
    if (!usable(i)) return value_type{};
    if (checker_) {
      checker_->on_local_access(name_, arena_offset_ + i * sizeof(T),
                                sizeof(T), /*is_write=*/false);
    }
    return data_[i];
  }

  void write(std::size_t i, value_type v) const
    requires(!std::is_const_v<T>)
  {
    if (!usable(i)) return;
    if (checker_) {
      checker_->on_local_access(name_, arena_offset_ + i * sizeof(T),
                                sizeof(T), /*is_write=*/true);
    }
    data_[i] = v;
  }

  void mark_read(std::size_t offset, std::size_t count) const {
    mark(offset, count, /*is_write=*/false);
  }
  void mark_write(std::size_t offset, std::size_t count) const {
    mark(offset, count, /*is_write=*/true);
  }

  detail::Ref<LocalSpan, value_type> operator[](std::size_t i) const {
    return {this, i};
  }

 private:
  friend class detail::Ref<LocalSpan, value_type>;

  /// Stale-generation and bounds gate; returns false when the access must
  /// be suppressed (already reported), throws on bounds in unchecked mode.
  bool usable(std::size_t i) const {
    if (checker_ && gen_ != checker_->local_generation()) {
      checker_->report_stale_local(name_, gen_);
      return false;
    }
    if (i >= size_) {
      if (checker_) {
        checker_->report_oob_local(name_, static_cast<long long>(i), size_);
        return false;
      }
      detail::throw_oob("local span", static_cast<long long>(i), size_);
    }
    return true;
  }

  void mark(std::size_t offset, std::size_t count, bool is_write) const {
    if (count == 0) return;
    if (!usable(offset + count - 1)) return;
    if (checker_) {
      checker_->on_local_access(name_, arena_offset_ + offset * sizeof(T),
                                count * sizeof(T), is_write);
    }
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
  LaunchChecker* checker_ = nullptr;
  const char* name_ = "local";
  std::size_t arena_offset_ = 0;
  std::uint32_t gen_ = 0;
};

}  // namespace alsmf::devsim::check
