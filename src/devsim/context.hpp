// Per-work-group kernel execution context.
//
// Kernels in this library are written at work-group granularity (the
// paper's thread batching unit): the runtime calls the kernel once per
// group, and the kernel iterates over its lanes explicitly. Barriers in the
// OpenCL source become ordinary sequence points between lane loops.
//
// The context doubles as the activity recorder: kernels report lane
// operations and memory traffic through it, split into named sections
// (the paper's S1/S2/S3 steps), and the cost model prices the totals.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>

#include "common/aligned_buffer.hpp"
#include "common/error.hpp"
#include "devsim/check/span.hpp"
#include "devsim/counters.hpp"
#include "devsim/profile.hpp"

namespace alsmf::devsim {

class GroupCtx {
 public:
  GroupCtx(const DeviceProfile& profile, std::size_t group_id, int group_size,
           bool functional, SectionCounters& counters,
           aligned_vector<std::byte>& arena,
           check::LaunchChecker* checker = nullptr)
      : profile_(&profile),
        group_id_(group_id),
        group_size_(group_size),
        functional_(functional),
        sections_(&counters),
        cur_(&counters.at("")),
        arena_(&arena),
        checker_(checker) {
    // Fixed-capacity bump arena: never reallocates during the kernel so
    // earlier local_alloc spans stay valid.
    if (arena_->size() < local_capacity()) arena_->resize(local_capacity());
    if (checker_) checker_->begin_group(group_id_, group_size_);
  }

  // --- Shape ---
  std::size_t group_id() const { return group_id_; }
  int group_size() const { return group_size_; }
  int simd_width() const { return profile_->simd_width; }
  const DeviceProfile& profile() const { return *profile_; }

  /// SIMD bundles (warps / vector packets) this group occupies. Lanes are
  /// padded up to full bundles, exactly as hardware warps are.
  int num_bundles() const {
    return (group_size_ + profile_->simd_width - 1) / profile_->simd_width;
  }

  /// False in accounting-only launches: kernels must still record activity
  /// but may skip the arithmetic (used by the figure sweeps, which need the
  /// cost model inputs, not the factor matrices).
  bool functional() const { return functional_; }

  /// Switches the active accounting section (e.g. "S1"). Subsequent
  /// recording calls accumulate under this name.
  void section(const std::string& name) {
    cur_ = &sections_->at(name);
    if (checker_) checker_->set_section(name);
  }

  // --- Checked execution (LaunchConfig.validate) ---
  /// True when this launch runs under the shadow-memory checker.
  bool validate() const { return checker_ != nullptr; }
  check::LaunchChecker* checker() const { return checker_; }

  /// Declares which lane the following accessor traffic belongs to, for
  /// race attribution. No cost is recorded; a no-op without a checker.
  void set_lane(int lane) {
    if (checker_) checker_->set_lane(lane);
  }

  /// Work-group barrier sequence point: accessor traffic before and after
  /// the call can never race intra-group. Records no cost (kernels price
  /// barriers through their section formulas); a no-op without a checker.
  void group_barrier() {
    if (checker_) checker_->barrier();
  }

  /// Wraps a host buffer as a checked global accessor. The name keys the
  /// shadow registry, so pass the same name for the same buffer.
  /// `device_element_bytes` (default sizeof(T)) is the element width of the
  /// *modeled* device layout when it differs from the host representation —
  /// e.g. the paper's col_idx array is 32-bit on device but int64 on the
  /// host — and only affects counter-honesty accounting.
  template <class T>
  check::GlobalSpan<T> global_span(const char* name, T* data, std::size_t n,
                                   std::size_t device_element_bytes =
                                       sizeof(T)) {
    if (!checker_) return {data, n};
    const int buffer = checker_->register_global(
        name, static_cast<const void*>(data), n * sizeof(T),
        static_cast<double>(device_element_bytes) /
            static_cast<double>(sizeof(T)));
    return {data, n, checker_, buffer};
  }

  /// Per-group scratch-pad capacity: the hardware scratch-pad size, or the
  /// emulation cap on devices that back local memory with cached DRAM.
  std::size_t local_capacity() const { return local_capacity_bytes(*profile_); }

  /// Scratch-pad bytes still allocatable in this group.
  std::size_t local_remaining() const {
    return local_capacity() > offset_ ? local_capacity() - offset_ : 0;
  }

  // --- Local (scratch-pad) memory ---
  /// Allocates `n` elements of group-shared scratch-pad. On devices with a
  /// hardware scratch-pad the per-group capacity is enforced (an OpenCL
  /// kernel requesting more fails to launch). The arena resets per group.
  /// `local_alloc(0)` is well-defined: an empty span, no capacity consumed.
  template <class T>
  check::LocalSpan<T> local_alloc(std::size_t n, const char* name = "local") {
    if (n == 0) return {};
    const std::size_t bytes = n * sizeof(T);
    const std::size_t aligned = (bytes + 63) / 64 * 64;
    const std::size_t new_offset = offset_ + aligned;
    ALSMF_CHECK_MSG(new_offset <= local_capacity(),
                    profile_->has_hw_local_mem
                        ? "local memory request exceeds device capacity"
                        : "emulated local memory request too large");
    auto* p = reinterpret_cast<T*>(arena_->data() + offset_);
    const std::size_t at = offset_;
    offset_ = new_offset;
    if (new_offset > cur_->local_alloc_peak) {
      cur_->local_alloc_peak = new_offset;
    }
    if (checker_) {
      return {p, n, checker_, name, at, checker_->local_generation()};
    }
    return {p, n};
  }

  // --- Compute recording ---
  /// Records lane-operations in scalar-mode code (divergence-padded: the
  /// caller counts max-lane trips times the full bundle width).
  void ops_scalar(double ops) { cur_->lane_ops_scalar += ops; }
  /// Records lane-operations executed as explicit vector operations.
  void ops_vector(double ops) { cur_->lane_ops_vector += ops; }
  /// Vector lane-operations on half-width (fp16/bf16) storage elements;
  /// priced at doubled effective vector width by the cost model.
  void ops_vector_half(double ops) { cur_->lane_ops_vector_half += ops; }
  /// Records useful flops (roofline numerator only; no time cost).
  void flops(double n) { cur_->useful_flops += n; }

  // --- Memory recording ---
  /// Streaming / coalesced global traffic.
  void global_read_coalesced(double bytes) { cur_->global_bytes += bytes; }
  void global_write_coalesced(double bytes) { cur_->global_bytes += bytes; }
  /// Scattered accesses: `n` independent accesses of `bytes_each` useful
  /// bytes; each pays a full memory transaction.
  void global_read_scattered(double n, double bytes_each) {
    cur_->scattered_accesses += n;
    cur_->scattered_useful_bytes += n * bytes_each;
  }
  void global_write_scattered(double n, double bytes_each) {
    cur_->scattered_accesses += n;
    cur_->scattered_useful_bytes += n * bytes_each;
  }
  /// Scratch-pad traffic (or cache traffic when the scratch-pad is
  /// emulated, as OpenCL does on CPU/MIC).
  void local_read(double bytes) { cur_->local_bytes += bytes; }
  void local_write(double bytes) { cur_->local_bytes += bytes; }
  /// Register-spill traffic (always priced).
  void spill(double bytes) { cur_->spill_bytes += bytes; }

  /// Repeated traversal of a per-row working set that was already fetched
  /// once: hits the cache on CPU/MIC, goes back to device memory on GPU.
  void reread(double accesses, double bytes_each) {
    if (profile_->rereads_cached) {
      cur_->local_bytes += accesses * bytes_each;
    } else {
      cur_->scattered_accesses += accesses;
      cur_->scattered_useful_bytes += accesses * bytes_each;
    }
  }

  /// Traffic of a dynamically-indexed private array (the paper's
  /// `sum[k*k]`): spilled to off-chip local memory on GPUs, an ordinary
  /// L1-resident stack array (free at this model's granularity) elsewhere.
  void private_array_traffic(double bytes) {
    if (profile_->private_arrays_offchip) cur_->spill_bytes += bytes;
  }

  /// Lane-ops of flat-mapped (one work-item per row) code: scaled so the
  /// cost model's scalar_efficiency denominator yields the profile's
  /// flat_mapping_efficiency instead.
  void ops_flat(double ops) {
    cur_->lane_ops_scalar += ops * profile_->scalar_efficiency /
                             std::max(profile_->flat_mapping_efficiency, 1e-6);
  }

  /// Declares per-lane register demand; the kernel decides spilling from
  /// profile().max_registers_per_lane, this records the peak for reports.
  void register_demand(int regs) {
    if (regs > cur_->register_demand_peak) cur_->register_demand_peak = regs;
  }

 private:
  const DeviceProfile* profile_;
  std::size_t group_id_;
  int group_size_;
  bool functional_;
  SectionCounters* sections_;
  LaunchCounters* cur_;
  aligned_vector<std::byte>* arena_;
  check::LaunchChecker* checker_ = nullptr;
  std::size_t offset_ = 0;
};

}  // namespace alsmf::devsim
