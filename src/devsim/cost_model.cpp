#include "devsim/cost_model.hpp"

#include <algorithm>
#include <cmath>

namespace alsmf::devsim {

double scattered_bytes_moved(const LaunchCounters& counters,
                             const DeviceProfile& profile) {
  // Every scattered access occupies at least one full transaction; when an
  // access is wider than a transaction it simply streams.
  const double per_access =
      std::max(profile.scattered_transaction_bytes,
               counters.scattered_accesses > 0
                   ? counters.scattered_useful_bytes / counters.scattered_accesses
                   : 0.0);
  return counters.scattered_accesses * per_access;
}

TimeEstimate estimate_time(const LaunchCounters& counters,
                           const DeviceProfile& profile) {
  TimeEstimate t;

  // --- Compute ---
  // Lane-ops pack into SIMD-bundle instructions; the efficiency factor is
  // how much of the bundle width the mode actually fills (SIMT: all of it;
  // CPU/MIC autovectorizer: a fraction; explicit vectors: most of it).
  const double width = static_cast<double>(profile.simd_width);
  double slots = counters.lane_ops_scalar /
                     (width * std::max(profile.scalar_efficiency, 1e-6)) +
                 counters.lane_ops_vector /
                     (width * std::max(profile.vector_efficiency, 1e-6)) +
                 // Half-width (fp16/bf16) elements pack two per vector slot:
                 // the effective bundle width doubles.
                 counters.lane_ops_vector_half /
                     (2.0 * width * std::max(profile.vector_efficiency, 1e-6));

  // Register spilling adds issue pressure: every spilled element needs an
  // extra load/store slot in addition to its bandwidth cost.
  if (counters.spill_bytes > 0) {
    slots += counters.spill_bytes / (width * sizeof(float));
  }

  // Issue slots available per second across the device, derated by the
  // pipeline (dependency/latency) efficiency of short-trip kernels.
  const double slots_per_s = static_cast<double>(profile.compute_units) *
                             profile.issue_per_cu * profile.clock_ghz * 1e9 *
                             std::max(profile.pipeline_efficiency, 1e-6);

  // Scratch-pad occupancy: on hardware with a real local memory, a group
  // that allocates a large tile leaves fewer groups resident per compute
  // unit, which costs latency hiding (issue efficiency degrades with the
  // square root of lost residency — the usual occupancy rule of thumb).
  double occupancy = 1.0;
  if (profile.has_hw_local_mem && counters.local_alloc_peak > 0 &&
      profile.groups_in_flight_per_cu > 1) {
    const double resident = std::clamp(
        std::floor(static_cast<double>(profile.local_mem_bytes) /
                   static_cast<double>(counters.local_alloc_peak)),
        1.0, static_cast<double>(profile.groups_in_flight_per_cu));
    occupancy = std::sqrt(resident /
                          static_cast<double>(profile.groups_in_flight_per_cu));
  }

  // Tail utilization: a launch with fewer groups than the device can hold
  // in flight leaves compute units idle.
  const double capacity = static_cast<double>(profile.compute_units) *
                          profile.groups_in_flight_per_cu;
  double utilization = 1.0;
  if (counters.launches > 0 && counters.groups > 0) {
    const double groups_per_launch =
        static_cast<double>(counters.groups) /
        static_cast<double>(counters.launches);
    utilization = std::clamp(groups_per_launch / capacity, 1.0 / capacity, 1.0);
  }
  t.compute_s = slots / slots_per_s / utilization / occupancy;

  // --- Memory ---
  const double offchip_bytes =
      counters.global_bytes + scattered_bytes_moved(counters, profile);
  const double onchip_bytes = counters.local_bytes + counters.spill_bytes;
  t.memory_s = offchip_bytes / (profile.mem_bw_gbs * 1e9) +
               onchip_bytes / (profile.cache_bw_gbs * 1e9);

  // --- Overhead ---
  t.overhead_s =
      static_cast<double>(counters.launches) * profile.launch_overhead_us * 1e-6;

  return t;
}

}  // namespace alsmf::devsim
