// Converts LaunchCounters into modeled execution time on a DeviceProfile.
//
// The model is a roofline extended with the effects the paper's
// optimizations target:
//   * SIMT divergence — already folded into bundle_steps by the kernels
//     (max-lane trip counts per bundle);
//   * coalescing — scattered accesses cost whole memory transactions;
//   * explicit vectorization — scalar vs vector issue efficiency;
//   * scratch-pad staging — on-chip bytes priced at cache bandwidth;
//   * register spilling — spill traffic priced at cache bandwidth;
//   * launch overhead and small-launch tail utilization.
#pragma once

#include "devsim/counters.hpp"
#include "devsim/profile.hpp"

namespace alsmf::devsim {

struct TimeEstimate {
  double compute_s = 0;
  double memory_s = 0;
  double overhead_s = 0;

  /// Compute and memory overlap; overhead does not.
  double total_s() const {
    return overhead_s + (compute_s > memory_s ? compute_s : memory_s);
  }

  TimeEstimate& operator+=(const TimeEstimate& o) {
    compute_s += o.compute_s;
    memory_s += o.memory_s;
    overhead_s += o.overhead_s;
    return *this;
  }
};

/// Models one launch (or the sum of several merged launches).
TimeEstimate estimate_time(const LaunchCounters& counters,
                           const DeviceProfile& profile);

/// Effective bytes moved by the scattered accesses in `counters` on
/// `profile` (each access pays a full transaction). Exposed for tests.
double scattered_bytes_moved(const LaunchCounters& counters,
                             const DeviceProfile& profile);

}  // namespace alsmf::devsim
