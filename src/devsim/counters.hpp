// Activity counters recorded by kernels during a launch. The cost model
// (cost_model.hpp) converts them into modeled execution time for a given
// DeviceProfile. Counters are pure sums, so they merge across work-groups
// and scale linearly with problem size.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace alsmf::devsim {

struct LaunchCounters {
  // --- Compute ---
  /// Useful scalar flops (roofline numerator; no divergence padding).
  double useful_flops = 0;
  /// Lane-operations executed without explicit vectorization, *including*
  /// divergence padding: kernels count max-lane trip counts times the full
  /// bundle width, so idle lanes inside a warp/vector bundle cost ops too.
  double lane_ops_scalar = 0;
  /// Lane-operations executed as explicit vector operations (OpenCL floatN).
  double lane_ops_vector = 0;
  /// Vector lane-operations on half-width (fp16/bf16) storage elements: a
  /// SIMD bundle packs twice as many of them, so the cost model prices
  /// these at double the effective vector width.
  double lane_ops_vector_half = 0;

  // --- Global memory ---
  /// Bytes moved by coalesced/streaming access.
  double global_bytes = 0;
  /// Scattered accesses: each touches a whole transaction/cache line.
  double scattered_accesses = 0;
  /// Bytes per scattered access actually used (for the useful-bytes ratio).
  double scattered_useful_bytes = 0;

  // --- On-chip ---
  double local_bytes = 0;    ///< scratch-pad (or emulated-cache) traffic
  double spill_bytes = 0;    ///< register-spill / private-array traffic

  // --- Shape ---
  std::size_t groups = 0;
  std::size_t launches = 0;
  int group_size = 0;                 ///< lanes per group (of last launch)
  std::size_t local_alloc_peak = 0;   ///< max scratch-pad bytes per group
  int register_demand_peak = 0;       ///< max registers requested per lane

  LaunchCounters& operator+=(const LaunchCounters& o) {
    useful_flops += o.useful_flops;
    lane_ops_scalar += o.lane_ops_scalar;
    lane_ops_vector += o.lane_ops_vector;
    lane_ops_vector_half += o.lane_ops_vector_half;
    global_bytes += o.global_bytes;
    scattered_accesses += o.scattered_accesses;
    scattered_useful_bytes += o.scattered_useful_bytes;
    local_bytes += o.local_bytes;
    spill_bytes += o.spill_bytes;
    groups += o.groups;
    launches += o.launches;
    if (o.group_size > group_size) group_size = o.group_size;
    if (o.local_alloc_peak > local_alloc_peak) local_alloc_peak = o.local_alloc_peak;
    if (o.register_demand_peak > register_demand_peak) {
      register_demand_peak = o.register_demand_peak;
    }
    return *this;
  }

  /// Scales all extensive quantities (used to extrapolate a downscaled
  /// replica's counters to the full dataset size).
  LaunchCounters scaled(double s) const {
    LaunchCounters c = *this;
    c.useful_flops *= s;
    c.lane_ops_scalar *= s;
    c.lane_ops_vector *= s;
    c.lane_ops_vector_half *= s;
    c.global_bytes *= s;
    c.scattered_accesses *= s;
    c.scattered_useful_bytes *= s;
    c.local_bytes *= s;
    c.spill_bytes *= s;
    c.groups = static_cast<std::size_t>(static_cast<double>(c.groups) * s);
    return c;
  }
};

/// Counters split by kernel section (the paper's S1/S2/S3 steps). Small
/// association list; kernels switch the active section by name.
class SectionCounters {
 public:
  LaunchCounters& at(const std::string& name) {
    for (auto& [n, c] : sections_) {
      if (n == name) return c;
    }
    sections_.emplace_back(name, LaunchCounters{});
    return sections_.back().second;
  }

  const std::vector<std::pair<std::string, LaunchCounters>>& entries() const {
    return sections_;
  }

  LaunchCounters total() const {
    LaunchCounters t;
    for (const auto& [n, c] : sections_) t += c;
    return t;
  }

  void merge(const SectionCounters& o) {
    for (const auto& [n, c] : o.sections_) at(n) += c;
  }

 private:
  std::vector<std::pair<std::string, LaunchCounters>> sections_;
};

}  // namespace alsmf::devsim
