#include "devsim/device.hpp"

#include <algorithm>
#include <optional>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/timer.hpp"
#include "devsim/check/checker.hpp"
#include "obs/registry.hpp"
#include "robust/fault_injection.hpp"

namespace alsmf::devsim {

LaunchResult Device::launch(const std::string& name,
                            const LaunchConfig& config, const Kernel& kernel) {
  ALSMF_CHECK(config.group_size > 0);
  if (robust::fault_at(robust::FaultSite::kKernelLaunch)) {
    throw Error("injected fault: kernel launch '" + name + "' failed");
  }
  Timer wall;
  const double trace_start_s = trace_ ? trace_->now_s() : 0;

  SectionCounters merged;
  std::optional<check::LaunchChecker> checker;
  if (config.validate) {
    // Checked execution: serial group order on the calling thread keeps the
    // shadow memory lock-free and the finding order deterministic.
    ALSMF_CHECK_MSG(config.functional,
                    "validate=true requires a functional launch");
    checker.emplace(name, check_options_);
    aligned_vector<std::byte> arena;
    for (std::size_t g = 0; g < config.num_groups; ++g) {
      GroupCtx ctx(profile_, g, config.group_size, config.functional, merged,
                   arena, &*checker);
      kernel(ctx);
    }
  } else {
    // Per-worker accumulation avoids false sharing and locks on the hot
    // path.
    const unsigned workers = pool_->size();
    std::vector<SectionCounters> partial(workers);
    std::vector<aligned_vector<std::byte>> arenas(workers);

    pool_->parallel_for(0, config.num_groups,
                        [&](std::size_t b, std::size_t e, unsigned w) {
                          for (std::size_t g = b; g < e; ++g) {
                            GroupCtx ctx(profile_, g, config.group_size,
                                         config.functional, partial[w],
                                         arenas[w]);
                            kernel(ctx);
                          }
                        });

    for (const auto& p : partial) merged.merge(p);
  }

  LaunchResult result;
  result.counters = merged.total();
  result.counters.groups = config.num_groups;
  result.counters.launches = 1;
  result.counters.group_size = config.group_size;
  result.time = estimate_time(result.counters, profile_);
  result.wall_seconds = wall.seconds();
  if (trace_) {
    trace_->record(profile_.name, name, result.time, trace_start_s,
                   result.wall_seconds);
  }
  if (metrics_) {
    const obs::Labels kernel_labels{{"device", profile_.name},
                                    {"kernel", name}};
    metrics_
        ->counter("devsim_kernel_launches_total", kernel_labels,
                  "Kernel launches per device/kernel")
        .inc();
    metrics_
        ->gauge("devsim_kernel_modeled_seconds_total", kernel_labels,
                "Modeled seconds accumulated per device/kernel")
        .add(result.time.total_s());
    metrics_
        ->gauge("devsim_kernel_wall_seconds_total", kernel_labels,
                "Wall seconds accumulated per device/kernel")
        .add(result.wall_seconds);
  }
  if (checker) {
    checker->finish(result.counters);
    result.check = checker->take_report();
    check_report_.merge(result.check);
  }

  // Attribute per-section stats. Sections share the launch's shape (groups,
  // group size) so utilization is modeled consistently, but the launch
  // overhead is charged only once, to the section with the largest share.
  const auto& entries = merged.entries();
  std::size_t heaviest = 0;
  double heaviest_time = -1.0;
  std::vector<TimeEstimate> section_times(entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    LaunchCounters c = entries[i].second;
    c.groups = config.num_groups;
    c.launches = 1;
    c.group_size = config.group_size;
    // Occupancy is a property of the whole kernel: every section runs at
    // the launch's scratch-pad residency, whichever section allocated it.
    c.local_alloc_peak = result.counters.local_alloc_peak;
    c.register_demand_peak = result.counters.register_demand_peak;
    TimeEstimate t = estimate_time(c, profile_);
    t.overhead_s = 0;
    section_times[i] = t;
    if (t.total_s() > heaviest_time) {
      heaviest_time = t.total_s();
      heaviest = i;
    }
  }
  if (!entries.empty()) {
    section_times[heaviest].overhead_s = result.time.overhead_s;
  }
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const std::string key = entries[i].first.empty()
                                ? name
                                : name + "/" + entries[i].first;
    auto& s = stats_for(key);
    LaunchCounters c = entries[i].second;
    c.groups = config.num_groups;
    c.launches = 1;
    c.group_size = config.group_size;
    c.local_alloc_peak = result.counters.local_alloc_peak;
    c.register_demand_peak = result.counters.register_demand_peak;
    s.counters += c;
    s.time += section_times[i];
    s.launches += 1;
    if (i == heaviest) s.wall_seconds += result.wall_seconds;
    if (metrics_) {
      const obs::Labels section_labels{{"device", profile_.name},
                                       {"kernel", name},
                                       {"section", entries[i].first}};
      metrics_
          ->gauge("devsim_section_modeled_seconds_total", section_labels,
                  "Modeled seconds per device/kernel/section")
          .add(section_times[i].total_s());
      if (i == heaviest) {
        metrics_
            ->gauge("devsim_section_wall_seconds_total", section_labels,
                    "Wall seconds per device/kernel/section (charged to a "
                    "launch's heaviest section)")
            .add(result.wall_seconds);
      }
    }
  }
  if (entries.empty()) {
    auto& s = stats_for(name);
    s.time += result.time;
    s.wall_seconds += result.wall_seconds;
    s.launches += 1;
  }
  return result;
}

double Device::modeled_seconds() const {
  double total = 0;
  for (const auto& [name, s] : stats_) total += s.time.total_s();
  return total;
}

double Device::wall_seconds() const {
  double total = 0;
  for (const auto& [name, s] : stats_) total += s.wall_seconds;
  return total;
}

double Device::modeled_seconds_scaled(double factor) const {
  return modeled_seconds_scaled_matching("", factor);
}

double Device::modeled_seconds_scaled_matching(const std::string& needle,
                                               double factor) const {
  double total = 0;
  for (const auto& [name, s] : stats_) {
    if (!needle.empty() && name.find(needle) == std::string::npos) continue;
    TimeEstimate t = estimate_time(s.counters.scaled(factor), profile_);
    // Overhead was attributed once per launch at record time; keep the
    // recorded (unscaled) overhead rather than re-deriving it.
    t.overhead_s = s.time.overhead_s;
    total += t.total_s();
  }
  return total;
}

double Device::modeled_seconds_matching(const std::string& needle) const {
  double total = 0;
  for (const auto& [name, s] : stats_) {
    if (name.find(needle) != std::string::npos) total += s.time.total_s();
  }
  return total;
}

double Device::wall_seconds_matching(const std::string& needle) const {
  double total = 0;
  for (const auto& [name, s] : stats_) {
    if (name.find(needle) != std::string::npos) total += s.wall_seconds;
  }
  return total;
}

std::string Device::stats_json() const {
  json::JsonWriter w;
  w.begin_object();
  w.field("device", profile_.name);
  w.field("modeled_seconds", modeled_seconds());
  w.field("wall_seconds", wall_seconds());
  w.key("sections").begin_array();
  for (const auto& [name, s] : stats_) {
    w.begin_object();
    w.field("name", name);
    w.field("launches", s.launches);
    w.field("modeled_s", s.time.total_s());
    w.field("compute_s", s.time.compute_s);
    w.field("memory_s", s.time.memory_s);
    w.field("overhead_s", s.time.overhead_s);
    w.field("wall_s", s.wall_seconds);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

void Device::reset_stats() { stats_.clear(); }

KernelStats& Device::stats_for(const std::string& name) {
  auto it = std::find_if(stats_.begin(), stats_.end(),
                         [&](const auto& p) { return p.first == name; });
  if (it != stats_.end()) return it->second;
  stats_.emplace_back(name, KernelStats{});
  return stats_.back().second;
}

}  // namespace alsmf::devsim
