// Device: launches work-group kernels over a host thread pool, merges the
// recorded activity, and keeps per-kernel and per-section modeled-time
// statistics (sections give the paper's S1/S2/S3 breakdowns, Fig. 8).
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_pool.hpp"
#include "devsim/check/report.hpp"
#include "devsim/context.hpp"
#include "devsim/cost_model.hpp"
#include "devsim/counters.hpp"
#include "devsim/profile.hpp"
#include "devsim/trace.hpp"

namespace alsmf::obs {
class Registry;
}

namespace alsmf::devsim {

/// NDRange launch shape: `num_groups` work-groups of `group_size` lanes.
struct LaunchConfig {
  std::size_t num_groups = 0;
  int group_size = 32;
  /// When false the kernel only records activity (no arithmetic); modeled
  /// time is identical, wall time is much smaller.
  bool functional = true;
  /// Checked execution: route accessor traffic through the shadow-memory
  /// checker. Groups then run serially on the calling thread (deterministic
  /// diagnostics, no locks) — modeled time is unchanged, wall time grows.
  /// Requires functional=true. See docs/kernel-checking.md.
  bool validate = false;
};

/// One kernel launch result.
struct LaunchResult {
  LaunchCounters counters;  ///< all sections merged
  TimeEstimate time;
  double wall_seconds = 0;
  check::CheckReport check;  ///< populated only for validate=true launches
};

/// Aggregated statistics for one kernel-name/section pair.
struct KernelStats {
  LaunchCounters counters;
  TimeEstimate time;      ///< section time: no launch overhead attributed
  double wall_seconds = 0;
  std::size_t launches = 0;
};

class Device {
 public:
  using Kernel = std::function<void(GroupCtx&)>;

  explicit Device(DeviceProfile profile, ThreadPool* pool = nullptr)
      : profile_(std::move(profile)),
        pool_(pool ? pool : &ThreadPool::global()) {}

  const DeviceProfile& profile() const { return profile_; }

  /// Launches `kernel` once per work-group; blocks until done. Counters are
  /// merged, priced with the cost model, and accumulated per section under
  /// "name/section" (plain "name" for the unnamed section).
  LaunchResult launch(const std::string& name, const LaunchConfig& config,
                      const Kernel& kernel);

  /// Modeled seconds accumulated since construction / last reset.
  double modeled_seconds() const;
  double wall_seconds() const;

  /// Per-"name/section" statistics (insertion-ordered by first use).
  const std::vector<std::pair<std::string, KernelStats>>& stats() const {
    return stats_;
  }

  /// Sum of modeled section times whose key contains `needle`.
  double modeled_seconds_matching(const std::string& needle) const;
  /// Sum of wall seconds whose key contains `needle` (wall time is charged
  /// to a launch's heaviest section, mirroring stats()).
  double wall_seconds_matching(const std::string& needle) const;

  /// Modeled seconds after scaling every section's extensive counters by
  /// `factor` — extrapolates a downscaled replica's run to the full dataset
  /// (launch counts stay fixed, so per-launch utilization improves exactly
  /// as it would at full size).
  double modeled_seconds_scaled(double factor) const;
  double modeled_seconds_scaled_matching(const std::string& needle,
                                         double factor) const;

  void reset_stats();

  /// Attaches a timeline recorder; every subsequent launch appends one
  /// trace event (null detaches). Not owned.
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

  /// Attaches a metrics registry; every subsequent launch accumulates
  /// devsim_kernel_* (per device/kernel) and devsim_section_* (per
  /// device/kernel/section) series (null detaches). Not owned.
  void set_metrics(obs::Registry* metrics) { metrics_ = metrics; }

  /// Per-section statistics as one JSON object (modeled + wall seconds,
  /// launch counts) — the machine-readable face of stats().
  std::string stats_json() const;

  /// Tolerances applied to subsequent validate=true launches.
  check::CheckOptions& check_options() { return check_options_; }

  /// All findings accumulated across validate=true launches since
  /// construction / last reset_check_report().
  const check::CheckReport& check_report() const { return check_report_; }
  void reset_check_report() { check_report_ = {}; }

 private:
  KernelStats& stats_for(const std::string& name);

  DeviceProfile profile_;
  ThreadPool* pool_;
  std::vector<std::pair<std::string, KernelStats>> stats_;
  TraceRecorder* trace_ = nullptr;
  obs::Registry* metrics_ = nullptr;
  check::CheckOptions check_options_;
  check::CheckReport check_report_;
};

}  // namespace alsmf::devsim
