#include "devsim/faults.hpp"

#include "common/error.hpp"

namespace alsmf::devsim {

FaultModel::FaultModel(std::size_t devices, FaultModelOptions options)
    : options_(options),
      launch_occurrence_(devices, 0),
      transfer_occurrence_(devices, 0) {
  ALSMF_CHECK_MSG(devices > 0, "fault model needs at least one device");
  ALSMF_CHECK_MSG(options_.straggler_slowdown_min >= 1.0 &&
                      options_.straggler_slowdown_max >=
                          options_.straggler_slowdown_min,
                  "straggler slowdown range must be >= 1 and ordered");
}

LaunchFault FaultModel::on_launch(std::size_t device) {
  using robust::FaultSite;
  const std::uint64_t key =
      robust::fault_key(device, launch_occurrence_[device]++);
  LaunchFault fault;
  if (robust::fault_at_keyed(FaultSite::kDeviceFailure, key)) {
    fault.device_lost = true;
    return fault;
  }
  if (robust::fault_at_keyed(FaultSite::kStraggler, key)) {
    // Severity from the same keyed stream so it replays with the decision.
    const auto* injector = robust::installed_fault_injector();
    const double u =
        injector ? injector->uniform_keyed(FaultSite::kStraggler, key, 1) : 0.0;
    fault.slowdown = options_.straggler_slowdown_min +
                     u * (options_.straggler_slowdown_max -
                          options_.straggler_slowdown_min);
  }
  return fault;
}

bool FaultModel::on_transfer_attempt(std::size_t device) {
  const std::uint64_t key =
      robust::fault_key(device, transfer_occurrence_[device]++);
  return robust::fault_at_keyed(robust::FaultSite::kLinkTransfer, key);
}

}  // namespace alsmf::devsim
