// Per-device / per-link fault model for multi-device training.
//
// Wraps the robust::fault_injection distributed sites (kDeviceFailure,
// kStraggler, kLinkTransfer) behind device-indexed occurrence keys: every
// decision is a pure function of (plan seed, site, device, the device's own
// occurrence counter), never of a globally shared counter, so an elastic
// coordinator launching shards from concurrent threads replays a fault
// schedule bit-for-bit from one seed.
//
// With no injector installed every query is a pair of relaxed atomic loads
// and the model reports a permanently healthy fleet.
#pragma once

#include <cstdint>
#include <vector>

#include "robust/fault_injection.hpp"

namespace alsmf::devsim {

struct FaultModelOptions {
  /// Straggler slowdown factors are drawn uniformly from this range,
  /// deterministically per (seed, device, occurrence).
  double straggler_slowdown_min = 4.0;
  double straggler_slowdown_max = 16.0;
};

/// Outcome of one shard-launch health query.
struct LaunchFault {
  bool device_lost = false;  ///< permanent failure: the launch never ran
  double slowdown = 1.0;     ///< >1 when a transient straggler fault fired
};

class FaultModel {
 public:
  explicit FaultModel(std::size_t devices, FaultModelOptions options = {});

  std::size_t devices() const { return launch_occurrence_.size(); }

  /// Consults kDeviceFailure then kStraggler for `device`'s next launch.
  /// Advances the device's launch occurrence. Thread-safe across distinct
  /// devices (the coordinator queries each device from one thread).
  LaunchFault on_launch(std::size_t device);

  /// True when `device`'s next interconnect transfer attempt faults
  /// (kLinkTransfer). Advances the device's transfer occurrence.
  bool on_transfer_attempt(std::size_t device);

  std::uint64_t launch_occurrences(std::size_t device) const {
    return launch_occurrence_[device];
  }
  std::uint64_t transfer_occurrences(std::size_t device) const {
    return transfer_occurrence_[device];
  }

 private:
  FaultModelOptions options_;
  std::vector<std::uint64_t> launch_occurrence_;
  std::vector<std::uint64_t> transfer_occurrence_;
};

}  // namespace alsmf::devsim
