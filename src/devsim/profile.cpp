#include "devsim/profile.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace alsmf::devsim {

const char* to_string(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kCpu: return "CPU";
    case DeviceKind::kGpu: return "GPU";
    case DeviceKind::kMic: return "MIC";
  }
  return "?";
}

DeviceProfile k20c() {
  DeviceProfile p;
  p.name = "Tesla K20c";
  p.kind = DeviceKind::kGpu;
  p.compute_units = 13;          // SMX units
  p.simd_width = 32;             // warp
  p.clock_ghz = 0.705;
  p.issue_per_cu = 4.0;          // 4 warp schedulers per SMX
  p.scalar_efficiency = 1.0;     // SIMT always runs the full warp
  p.vector_efficiency = 1.0;     // explicit floatN adds nothing on SIMT
  p.groups_in_flight_per_cu = 16;
  p.pipeline_efficiency = 0.065; // short dependent loops at k~10
  p.flat_mapping_efficiency = 1.0;  // SIMT packs divergent lanes anyway
  p.mem_bw_gbs = 150.0;          // ~72% of the 208 GB/s peak (ECC on)
  p.cache_bw_gbs = 1100.0;       // shared-memory aggregate
  p.scattered_transaction_bytes = 128.0;  // L1 line fetched per gather
  p.local_mem_bytes = 48 * 1024;
  p.has_hw_local_mem = true;
  p.rereads_cached = false;      // per-thread working set >> cache/thread
  p.private_arrays_offchip = true;  // CUDA "local" memory is device memory
  p.global_latency_slots = 6.0;  // exposed DRAM latency per inner-loop load
  p.max_registers_per_lane = 255;
  p.launch_overhead_us = 8.0;
  p.pcie_bw_gbs = 11.0;  // PCIe 2.0 x16 effective
  return p;
}

DeviceProfile xeon_e5_2670_dual() {
  DeviceProfile p;
  p.name = "2 x Xeon E5-2670";
  p.kind = DeviceKind::kCpu;
  p.compute_units = 16;          // 2 sockets x 8 cores
  p.simd_width = 8;              // 256-bit AVX, fp32
  p.clock_ghz = 2.6;
  p.issue_per_cu = 1.0;          // ~1 vector FMA pipe utilized
  p.scalar_efficiency = 0.60;    // implicit cross-work-item vectorization
  p.vector_efficiency = 0.80;    // explicit float8/float16 kernels
  p.groups_in_flight_per_cu = 1;
  p.pipeline_efficiency = 0.35;  // out-of-order cores hide more latency
  p.flat_mapping_efficiency = 0.20;  // scalar per-row loops, partial autovec
  p.gather_scalar_ops = 3.0;     // no AVX gather on Sandy Bridge
  p.mem_bw_gbs = 70.0;           // 2-socket achievable stream
  p.cache_bw_gbs = 480.0;        // shared L2/L3 aggregate
  p.scattered_transaction_bytes = 64.0;  // cache line
  p.local_mem_bytes = 0;         // emulated; capacity bounded by cache
  p.has_hw_local_mem = false;
  p.rereads_cached = true;       // per-core L2 holds a row's working set
  p.private_arrays_offchip = false;  // stack arrays live in L1
  p.max_registers_per_lane = 14; // ymm registers usable per lane
  p.launch_overhead_us = 2.0;
  p.pcie_bw_gbs = 40.0;  // host memory, no offload bus
  return p;
}

DeviceProfile xeon_phi_31sp() {
  DeviceProfile p;
  p.name = "Xeon Phi 31SP";
  p.kind = DeviceKind::kMic;
  p.compute_units = 56;          // 57 cores, one reserved for the uOS
  p.simd_width = 16;             // 512-bit vectors, fp32
  p.clock_ghz = 1.1;
  p.issue_per_cu = 0.5;          // in-order: a thread issues every 2nd cycle
  p.scalar_efficiency = 0.40;    // implicit vectorization, in-order stalls
  p.vector_efficiency = 0.60;
  p.groups_in_flight_per_cu = 4; // 4 hardware threads per core
  p.pipeline_efficiency = 0.10;  // in-order pipeline stalls
  p.flat_mapping_efficiency = 0.05;  // in-order scalar per-row loops
  p.gather_scalar_ops = 1.5;     // KNC vgatherd is microcoded but loopable
  p.mem_bw_gbs = 35.0;           // effective under scattered access
  p.cache_bw_gbs = 700.0;
  p.scattered_transaction_bytes = 64.0;
  p.local_mem_bytes = 0;
  p.has_hw_local_mem = false;
  p.rereads_cached = true;       // 512 KB L2 per core
  p.private_arrays_offchip = false;
  p.max_registers_per_lane = 32;
  p.launch_overhead_us = 20.0;   // PCIe offload + runtime
  p.pcie_bw_gbs = 6.0;   // MPSS-era effective PCIe
  return p;
}

std::size_t local_capacity_bytes(const DeviceProfile& p) {
  // OpenCL-on-CPU backs local memory with ordinary cached allocations;
  // 4 MiB is a generous emulation cap.
  constexpr std::size_t kEmulatedLocalCapacity = 4u << 20;
  return p.has_hw_local_mem ? p.local_mem_bytes : kEmulatedLocalCapacity;
}

DeviceProfile profile_by_name(const std::string& name) {
  std::string n = name;
  std::transform(n.begin(), n.end(), n.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (n == "gpu" || n == "k20c") return k20c();
  if (n == "cpu" || n == "e5-2670" || n == "e5") return xeon_e5_2670_dual();
  if (n == "mic" || n == "31sp" || n == "phi") return xeon_phi_31sp();
  throw Error("unknown device profile: " + name);
}

}  // namespace alsmf::devsim
