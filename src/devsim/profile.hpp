// Device profiles: the architectural constants the cost model uses to turn
// recorded kernel activity into modeled execution time.
//
// Presets mirror the paper's three platforms (§IV-A): a dual-socket Intel
// Xeon E5-2670 (16 cores), an NVIDIA Tesla K20c (13 SMs), and an Intel Xeon
// Phi 31SP (57 cores). The numbers are public datasheet values plus
// empirical efficiency factors calibrated so the paper's relative results
// hold (see EXPERIMENTS.md).
#pragma once

#include <cstddef>
#include <string>

namespace alsmf::devsim {

enum class DeviceKind { kCpu, kGpu, kMic };

const char* to_string(DeviceKind kind);

struct DeviceProfile {
  std::string name;
  DeviceKind kind = DeviceKind::kCpu;

  // --- Compute ---
  int compute_units = 1;     ///< SMs (GPU) or cores (CPU/MIC)
  int simd_width = 1;        ///< warp size (GPU) or vector lanes (CPU/MIC)
  double clock_ghz = 1.0;
  /// SIMD-bundle instruction slots retired per cycle per compute unit
  /// (warp schedulers on a GPU SM; ~1 vector pipe on a CPU core).
  double issue_per_cu = 1.0;
  /// Fraction of the SIMD width the compiler reaches *without* explicit
  /// vectorization (SIMT hardware always runs full width => 1.0; CPU/MIC
  /// autovectorizers much less).
  double scalar_efficiency = 1.0;
  /// Fraction reached with explicit vector types (the paper's float16).
  double vector_efficiency = 1.0;
  /// Work-groups a compute unit can keep in flight (occupancy); used for a
  /// tail-utilization correction on small launches.
  int groups_in_flight_per_cu = 1;
  /// Fraction of peak issue rate reachable on the dependent, short-trip
  /// loops of a k~10 ALS kernel (ILP/latency limits). Multiplies the
  /// available instruction throughput.
  double pipeline_efficiency = 1.0;
  /// Lane-packing efficiency of the *flat* mapping (one work-item per row):
  /// SIMT hardware still packs divergent lanes (1.0), but on CPU/MIC the
  /// compiler cannot vectorize across independent rows, so flat code runs
  /// essentially scalar (≈ 1/simd_width).
  double flat_mapping_efficiency = 1.0;
  /// Scalar issue ops per *gathered* (indirectly addressed) element in
  /// otherwise-packed code. CPUs/MICs of this era have no hardware gather:
  /// each indirect element costs a scalar load + insert chain, which is
  /// exactly what the local-memory staging removes. 0 on SIMT hardware
  /// (gathers are handled by the memory system and priced as traffic).
  double gather_scalar_ops = 0.0;
  /// Effective issue slots each *unstaged* inner-loop global access costs a
  /// resident bundle (exposed memory latency after warp-level overlap).
  /// Local-memory staging replaces these with near-free scratch-pad reads.
  /// Nonzero on GPUs (small cache per thread, hundreds of cycles to DRAM);
  /// 0 on CPU/MIC where the gather hook models the same effect.
  double global_latency_slots = 0.0;

  // --- Memory ---
  double mem_bw_gbs = 10.0;    ///< off-chip bandwidth (achievable)
  double cache_bw_gbs = 100.0; ///< on-chip scratch-pad / cache bandwidth
  /// Minimum transaction granularity for scattered (uncoalesced) access:
  /// 32 B memory transactions on Kepler, a 64 B cache line on CPU/MIC.
  double scattered_transaction_bytes = 64.0;
  /// Per-group scratch-pad capacity. Zero means no hardware scratch-pad:
  /// OpenCL local memory is emulated in cached global memory (CPU/MIC).
  std::size_t local_mem_bytes = 0;
  bool has_hw_local_mem = false;
  /// Whether repeated traversals of a per-row working set hit the cache
  /// hierarchy (CPU/MIC: large private L2 per core => true) or go back to
  /// device memory (GPU: tiny cache per resident thread => false).
  bool rereads_cached = false;
  /// Whether dynamically-indexed private arrays live in off-chip "local"
  /// memory (CUDA/OpenCL GPUs) instead of the stack/L1 (CPU/MIC).
  bool private_arrays_offchip = false;

  // --- Registers ---
  /// Addressable registers per lane before the compiler spills (255 on
  /// Kepler GK110; small on CPU where "registers" are vector registers).
  int max_registers_per_lane = 255;

  // --- Overheads ---
  double launch_overhead_us = 5.0;  ///< per kernel launch
  /// Host<->device interconnect bandwidth (PCIe), used by the multi-device
  /// solver's factor all-gather.
  double pcie_bw_gbs = 12.0;

  /// Peak single-precision GFLOP/s implied by the compute constants.
  double peak_gflops() const {
    return static_cast<double>(compute_units) * issue_per_cu * simd_width *
           clock_ghz;
  }
};

/// NVIDIA Tesla K20c (Kepler GK110, 13 SMs, 2496 CUDA cores).
DeviceProfile k20c();

/// Dual-socket Intel Xeon E5-2670 (2 × 8 Sandy Bridge cores @ 2.6 GHz).
DeviceProfile xeon_e5_2670_dual();

/// Intel Xeon Phi 31SP (57 in-order cores, 512-bit vectors).
DeviceProfile xeon_phi_31sp();

/// Preset lookup by short name: "gpu"/"k20c", "cpu"/"e5-2670", "mic"/"31sp".
DeviceProfile profile_by_name(const std::string& name);

/// Per-group scratch-pad capacity on `p`: the hardware scratch-pad size, or
/// the emulation cap on devices that back OpenCL local memory with cached
/// DRAM (CPU/MIC). Shared by the execution context and the static kernel
/// analyzer so both model the same staging-tile budget.
std::size_t local_capacity_bytes(const DeviceProfile& p);

}  // namespace alsmf::devsim
