#include "devsim/profile_io.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace alsmf::devsim {

namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

std::string kind_name(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kCpu: return "cpu";
    case DeviceKind::kGpu: return "gpu";
    case DeviceKind::kMic: return "mic";
  }
  return "cpu";
}

DeviceKind parse_kind(const std::string& v) {
  std::string s = v;
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (s == "cpu") return DeviceKind::kCpu;
  if (s == "gpu") return DeviceKind::kGpu;
  if (s == "mic") return DeviceKind::kMic;
  throw Error("unknown device kind: " + v);
}

}  // namespace

void write_profile(std::ostream& out, const DeviceProfile& p) {
  out << "# alsmf device profile\n";
  out << "name = " << p.name << "\n";
  out << "kind = " << kind_name(p.kind) << "\n";
  out << "compute_units = " << p.compute_units << "\n";
  out << "simd_width = " << p.simd_width << "\n";
  out << "clock_ghz = " << p.clock_ghz << "\n";
  out << "issue_per_cu = " << p.issue_per_cu << "\n";
  out << "scalar_efficiency = " << p.scalar_efficiency << "\n";
  out << "vector_efficiency = " << p.vector_efficiency << "\n";
  out << "groups_in_flight_per_cu = " << p.groups_in_flight_per_cu << "\n";
  out << "pipeline_efficiency = " << p.pipeline_efficiency << "\n";
  out << "flat_mapping_efficiency = " << p.flat_mapping_efficiency << "\n";
  out << "gather_scalar_ops = " << p.gather_scalar_ops << "\n";
  out << "global_latency_slots = " << p.global_latency_slots << "\n";
  out << "mem_bw_gbs = " << p.mem_bw_gbs << "\n";
  out << "cache_bw_gbs = " << p.cache_bw_gbs << "\n";
  out << "scattered_transaction_bytes = " << p.scattered_transaction_bytes
      << "\n";
  out << "local_mem_bytes = " << p.local_mem_bytes << "\n";
  out << "has_hw_local_mem = " << (p.has_hw_local_mem ? 1 : 0) << "\n";
  out << "rereads_cached = " << (p.rereads_cached ? 1 : 0) << "\n";
  out << "private_arrays_offchip = " << (p.private_arrays_offchip ? 1 : 0)
      << "\n";
  out << "max_registers_per_lane = " << p.max_registers_per_lane << "\n";
  out << "launch_overhead_us = " << p.launch_overhead_us << "\n";
  out << "pcie_bw_gbs = " << p.pcie_bw_gbs << "\n";
}

DeviceProfile read_profile(std::istream& in) {
  DeviceProfile p;
  std::string line;
  while (std::getline(in, line)) {
    const std::string stripped = trim(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    const auto eq = stripped.find('=');
    ALSMF_CHECK_MSG(eq != std::string::npos,
                    "malformed profile line: " + stripped);
    const std::string key = trim(stripped.substr(0, eq));
    const std::string value = trim(stripped.substr(eq + 1));

    if (key == "name") {
      p.name = value;
      continue;
    }
    if (key == "kind") {
      p.kind = parse_kind(value);
      continue;
    }
    std::istringstream vs(value);
    auto read_num = [&](auto& field) {
      vs >> field;
      ALSMF_CHECK_MSG(!vs.fail(), "bad numeric value for " + key);
    };
    int flag = 0;
    if (key == "compute_units") read_num(p.compute_units);
    else if (key == "simd_width") read_num(p.simd_width);
    else if (key == "clock_ghz") read_num(p.clock_ghz);
    else if (key == "issue_per_cu") read_num(p.issue_per_cu);
    else if (key == "scalar_efficiency") read_num(p.scalar_efficiency);
    else if (key == "vector_efficiency") read_num(p.vector_efficiency);
    else if (key == "groups_in_flight_per_cu") read_num(p.groups_in_flight_per_cu);
    else if (key == "pipeline_efficiency") read_num(p.pipeline_efficiency);
    else if (key == "flat_mapping_efficiency") read_num(p.flat_mapping_efficiency);
    else if (key == "gather_scalar_ops") read_num(p.gather_scalar_ops);
    else if (key == "global_latency_slots") read_num(p.global_latency_slots);
    else if (key == "mem_bw_gbs") read_num(p.mem_bw_gbs);
    else if (key == "cache_bw_gbs") read_num(p.cache_bw_gbs);
    else if (key == "scattered_transaction_bytes") read_num(p.scattered_transaction_bytes);
    else if (key == "local_mem_bytes") read_num(p.local_mem_bytes);
    else if (key == "has_hw_local_mem") { read_num(flag); p.has_hw_local_mem = flag != 0; }
    else if (key == "rereads_cached") { read_num(flag); p.rereads_cached = flag != 0; }
    else if (key == "private_arrays_offchip") { read_num(flag); p.private_arrays_offchip = flag != 0; }
    else if (key == "max_registers_per_lane") read_num(p.max_registers_per_lane);
    else if (key == "launch_overhead_us") read_num(p.launch_overhead_us);
    else if (key == "pcie_bw_gbs") read_num(p.pcie_bw_gbs);
    else throw Error("unknown profile key: " + key);
  }
  return p;
}

void write_profile_file(const std::string& path, const DeviceProfile& p) {
  std::ofstream out(path);
  ALSMF_CHECK_MSG(out.good(), "cannot open for write: " + path);
  write_profile(out, p);
}

DeviceProfile read_profile_file(const std::string& path) {
  std::ifstream in(path);
  ALSMF_CHECK_MSG(in.good(), "cannot open for read: " + path);
  return read_profile(in);
}

}  // namespace alsmf::devsim
