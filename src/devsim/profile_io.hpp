// DeviceProfile (de)serialization: a simple `key = value` text format so
// users can model new hardware without recompiling (the paper's
// portability claim extends to profiles: an FPGA/DSP profile is one text
// file away).
#pragma once

#include <iosfwd>
#include <string>

#include "devsim/profile.hpp"

namespace alsmf::devsim {

/// Writes every profile field as `key = value` lines (with `#` comments).
void write_profile(std::ostream& out, const DeviceProfile& profile);

/// Parses a profile written by write_profile (or by hand). Unknown keys
/// throw; missing keys keep the default-constructed value. `kind` takes
/// cpu|gpu|mic.
DeviceProfile read_profile(std::istream& in);

void write_profile_file(const std::string& path, const DeviceProfile& profile);
DeviceProfile read_profile_file(const std::string& path);

}  // namespace alsmf::devsim
