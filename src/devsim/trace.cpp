#include "devsim/trace.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>

#include "common/error.hpp"
#include "common/json.hpp"

namespace alsmf::devsim {

void TraceRecorder::record(const std::string& device,
                           const std::string& kernel,
                           const TimeEstimate& time) {
  record(device, kernel, time, -1.0, 0.0);
}

void TraceRecorder::record(const std::string& device,
                           const std::string& kernel, const TimeEstimate& time,
                           double wall_start_s, double wall_duration_s) {
  std::scoped_lock lk(m_);
  TraceEvent event;
  event.name = kernel;
  event.device = device;
  double end = 0;
  for (const auto& e : events_) {
    if (e.device == device) end = std::max(end, e.start_s + e.duration_s);
  }
  event.start_s = end;
  event.duration_s = time.total_s();
  event.compute_s = time.compute_s;
  event.memory_s = time.memory_s;
  event.overhead_s = time.overhead_s;
  event.wall_start_s = wall_start_s;
  event.wall_duration_s = wall_duration_s;
  events_.push_back(std::move(event));
}

void TraceRecorder::record_span(const std::string& track,
                                const std::string& name, double wall_start_s,
                                double wall_duration_s) {
  std::scoped_lock lk(m_);
  SpanEvent event;
  event.track = track;
  event.name = name;
  event.wall_start_s = wall_start_s;
  event.wall_duration_s = wall_duration_s;
  spans_.push_back(std::move(event));
}

TraceRecorder::Span::Span(TraceRecorder* recorder, std::string track,
                          std::string name)
    : recorder_(recorder),
      track_(std::move(track)),
      name_(std::move(name)),
      start_s_(recorder->now_s()) {}

TraceRecorder::Span::Span(Span&& other) noexcept
    : recorder_(other.recorder_),
      track_(std::move(other.track_)),
      name_(std::move(other.name_)),
      start_s_(other.start_s_) {
  other.recorder_ = nullptr;
}

void TraceRecorder::Span::end() {
  if (!recorder_) return;
  recorder_->record_span(track_, name_, start_s_,
                         recorder_->now_s() - start_s_);
  recorder_ = nullptr;
}

double TraceRecorder::device_end_time(const std::string& device) const {
  std::scoped_lock lk(m_);
  double end = 0;
  for (const auto& e : events_) {
    if (e.device == device) end = std::max(end, e.start_s + e.duration_s);
  }
  return end;
}

void TraceRecorder::write_chrome_trace(std::ostream& out) const {
  std::scoped_lock lk(m_);
  // Stable pid per modeled device name, then per wall timeline.
  std::map<std::string, int> pids;
  for (const auto& e : events_) {
    pids.emplace(e.device, static_cast<int>(pids.size()) + 1);
  }
  std::map<std::string, int> wall_pids;
  const auto wall_pid = [&](const std::string& timeline) {
    return wall_pids
        .emplace(timeline,
                 static_cast<int>(pids.size() + wall_pids.size()) + 1)
        .first->second;
  };
  for (const auto& e : events_) {
    if (e.wall_start_s >= 0) wall_pid("wall:" + e.device);
  }
  for (const auto& s : spans_) wall_pid("wall:" + s.track);

  json::JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array();
  const auto process_name = [&](const std::string& name, int pid) {
    w.begin_object();
    w.field("name", "process_name").field("ph", "M").field("pid", pid);
    w.key("args").begin_object().field("name", name).end_object();
    w.end_object();
  };
  for (const auto& [device, pid] : pids) process_name(device, pid);
  for (const auto& [timeline, pid] : wall_pids) process_name(timeline, pid);

  for (const auto& e : events_) {
    w.begin_object();
    w.field("name", e.name).field("ph", "X");
    w.field("pid", pids.at(e.device)).field("tid", 1);
    w.field("ts", e.start_s * 1e6).field("dur", e.duration_s * 1e6);
    w.key("args").begin_object();
    w.field("compute_us", e.compute_s * 1e6);
    w.field("memory_us", e.memory_s * 1e6);
    w.field("overhead_us", e.overhead_s * 1e6);
    w.end_object();
    w.end_object();
    if (e.wall_start_s >= 0) {
      w.begin_object();
      w.field("name", e.name).field("ph", "X");
      w.field("pid", wall_pids.at("wall:" + e.device)).field("tid", 1);
      w.field("ts", e.wall_start_s * 1e6)
          .field("dur", e.wall_duration_s * 1e6);
      w.key("args").begin_object();
      w.field("modeled_us", e.duration_s * 1e6);
      w.end_object();
      w.end_object();
    }
  }
  for (const auto& s : spans_) {
    w.begin_object();
    w.field("name", s.name).field("ph", "X");
    w.field("pid", wall_pids.at("wall:" + s.track)).field("tid", 1);
    w.field("ts", s.wall_start_s * 1e6).field("dur", s.wall_duration_s * 1e6);
    w.key("args").begin_object().end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << w.str() << "\n";
}

void TraceRecorder::write_chrome_trace_file(const std::string& path) const {
  std::ofstream out(path);
  ALSMF_CHECK_MSG(out.good(), "cannot open for write: " + path);
  write_chrome_trace(out);
}

}  // namespace alsmf::devsim
