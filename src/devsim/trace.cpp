#include "devsim/trace.hpp"

#include <fstream>
#include <map>
#include <ostream>

#include "common/error.hpp"

namespace alsmf::devsim {

namespace {

/// Minimal JSON string escaping (names are ASCII identifiers here).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out.push_back('\\');
    out.push_back(ch);
  }
  return out;
}

}  // namespace

void TraceRecorder::record(const std::string& device,
                           const std::string& kernel,
                           const TimeEstimate& time) {
  TraceEvent event;
  event.name = kernel;
  event.device = device;
  event.start_s = device_end_time(device);
  event.duration_s = time.total_s();
  event.compute_s = time.compute_s;
  event.memory_s = time.memory_s;
  event.overhead_s = time.overhead_s;
  events_.push_back(std::move(event));
}

double TraceRecorder::device_end_time(const std::string& device) const {
  double end = 0;
  for (const auto& e : events_) {
    if (e.device == device) end = std::max(end, e.start_s + e.duration_s);
  }
  return end;
}

void TraceRecorder::write_chrome_trace(std::ostream& out) const {
  // Stable pid per device name.
  std::map<std::string, int> pids;
  for (const auto& e : events_) {
    pids.emplace(e.device, static_cast<int>(pids.size()) + 1);
  }

  out << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& [device, pid] : pids) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
        << ",\"args\":{\"name\":\"" << json_escape(device) << "\"}}";
  }
  for (const auto& e : events_) {
    out << ",{\"name\":\"" << json_escape(e.name) << "\",\"ph\":\"X\""
        << ",\"pid\":" << pids.at(e.device) << ",\"tid\":1"
        << ",\"ts\":" << e.start_s * 1e6 << ",\"dur\":" << e.duration_s * 1e6
        << ",\"args\":{\"compute_us\":" << e.compute_s * 1e6
        << ",\"memory_us\":" << e.memory_s * 1e6
        << ",\"overhead_us\":" << e.overhead_s * 1e6 << "}}";
  }
  out << "]}\n";
}

void TraceRecorder::write_chrome_trace_file(const std::string& path) const {
  std::ofstream out(path);
  ALSMF_CHECK_MSG(out.good(), "cannot open for write: " + path);
  write_chrome_trace(out);
}

}  // namespace alsmf::devsim
