// Launch timeline recording and Chrome-trace export.
//
// A TraceRecorder attached to launches builds a modeled execution timeline
// (launches laid end to end per device, with compute/memory attribution)
// and, since the observability rework, a *wall-clock* timeline alongside it:
// every launch records its real start/duration against the recorder's epoch,
// and callers can open named wall spans (solver iterations, serve batches,
// I/O phases) via span(). Serialized as Chrome trace-event JSON — load the
// file in chrome://tracing or https://ui.perfetto.dev; modeled timelines
// appear as one process per device, wall timelines as "wall:" processes.
#pragma once

#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "common/timer.hpp"
#include "devsim/cost_model.hpp"

namespace alsmf::devsim {

struct TraceEvent {
  std::string name;      ///< kernel name (with section suffix)
  std::string device;    ///< device profile name
  double start_s = 0;    ///< modeled start time on that device's timeline
  double duration_s = 0;
  double compute_s = 0, memory_s = 0, overhead_s = 0;
  /// Wall-clock correlates measured against the recorder's epoch; a
  /// negative wall_start_s means no wall timing was recorded.
  double wall_start_s = -1;
  double wall_duration_s = 0;
};

/// A named wall-clock interval on a host-side track (no modeled time).
struct SpanEvent {
  std::string track;  ///< timeline name, e.g. "solver" or "serve"
  std::string name;
  double wall_start_s = 0;
  double wall_duration_s = 0;
};

class TraceRecorder {
 public:
  TraceRecorder() = default;

  /// Wall seconds since the recorder was constructed (the trace epoch).
  double now_s() const { return epoch_.seconds(); }

  /// Appends a launch to a device's modeled timeline (events are laid end
  /// to end — the modeled device executes launches in order).
  void record(const std::string& device, const std::string& kernel,
              const TimeEstimate& time);
  /// Same, with the launch's wall-clock interval (relative to the epoch).
  void record(const std::string& device, const std::string& kernel,
              const TimeEstimate& time, double wall_start_s,
              double wall_duration_s);

  /// Records a completed wall-clock span on `track`.
  void record_span(const std::string& track, const std::string& name,
                   double wall_start_s, double wall_duration_s);

  /// RAII wall-span: records on destruction (or an explicit end()).
  class Span {
   public:
    Span(Span&& other) noexcept;
    Span& operator=(Span&&) = delete;
    Span(const Span&) = delete;
    ~Span() { end(); }
    void end();

   private:
    friend class TraceRecorder;
    Span(TraceRecorder* recorder, std::string track, std::string name);
    TraceRecorder* recorder_;
    std::string track_, name_;
    double start_s_;
  };
  Span span(std::string track, std::string name) {
    return Span(this, std::move(track), std::move(name));
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  const std::vector<SpanEvent>& spans() const { return spans_; }
  double device_end_time(const std::string& device) const;

  /// Chrome trace-event JSON (the "traceEvents" array format). Durations
  /// are exported in microseconds as the format expects. Modeled timelines
  /// come first (one process per device); wall-clock launch timelines and
  /// spans follow under "wall:<device>" / "wall:<track>" processes.
  void write_chrome_trace(std::ostream& out) const;
  void write_chrome_trace_file(const std::string& path) const;

 private:
  Timer epoch_;
  mutable std::mutex m_;
  std::vector<TraceEvent> events_;
  std::vector<SpanEvent> spans_;
};

}  // namespace alsmf::devsim
