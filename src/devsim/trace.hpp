// Launch timeline recording and Chrome-trace export.
//
// A TraceRecorder attached to launches builds a modeled execution timeline
// (launches laid end to end per device, with compute/memory attribution)
// and serializes it as Chrome trace-event JSON — load the file in
// chrome://tracing or https://ui.perfetto.dev to inspect where a training
// run's modeled time goes.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "devsim/cost_model.hpp"

namespace alsmf::devsim {

struct TraceEvent {
  std::string name;      ///< kernel name (with section suffix)
  std::string device;    ///< device profile name
  double start_s = 0;    ///< modeled start time on that device's timeline
  double duration_s = 0;
  double compute_s = 0, memory_s = 0, overhead_s = 0;
};

class TraceRecorder {
 public:
  /// Appends a launch to a device's timeline (events are laid end to end —
  /// the modeled device executes launches in order).
  void record(const std::string& device, const std::string& kernel,
              const TimeEstimate& time);

  const std::vector<TraceEvent>& events() const { return events_; }
  double device_end_time(const std::string& device) const;

  /// Chrome trace-event JSON (the "traceEvents" array format). Durations
  /// are exported in microseconds as the format expects.
  void write_chrome_trace(std::ostream& out) const;
  void write_chrome_trace_file(const std::string& path) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace alsmf::devsim
