#include "index/ivf_index.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "linalg/vecops.hpp"

namespace alsmf::index {

namespace {

/// ~2·sqrt(items): partitions and mean posting length stay within 2x of
/// each other, which balances the centroid scan against the posting scan.
int heuristic_clusters(index_t items) {
  const auto c = static_cast<int>(
      2.0 * std::sqrt(static_cast<double>(std::max<index_t>(items, 1))));
  return std::clamp(c, 1, static_cast<int>(items));
}

real squared_distance(const real* a, const real* b, std::size_t k) {
  real d = 0;
  for (std::size_t c = 0; c < k; ++c) {
    const real diff = a[c] - b[c];
    d += diff * diff;
  }
  return d;
}

}  // namespace

std::shared_ptr<const IvfIndex> IvfIndex::build(const Matrix& y,
                                                const IvfOptions& options,
                                                const BiasModel* bias,
                                                ThreadPool* pool) {
  ALSMF_CHECK_MSG(y.rows() > 0 && y.cols() > 0,
                  "cannot index an empty item factor matrix");
  ALSMF_CHECK(options.kmeans_iters >= 0);
  if (!pool) pool = &ThreadPool::global();

  const Timer build_timer;
  const index_t items = y.rows();
  const auto k = static_cast<std::size_t>(y.cols());
  const int clusters = options.clusters > 0
                           ? std::min<int>(options.clusters,
                                           static_cast<int>(items))
                           : heuristic_clusters(items);

  auto index = std::shared_ptr<IvfIndex>(new IvfIndex());
  index->items_ = items;
  index->k_ = static_cast<int>(k);
  index->clusters_ = clusters;
  index->default_nprobe_ =
      std::clamp(options.nprobe, 1, clusters);

  // Seeded init: centroids start at `clusters` distinct item rows.
  Rng rng(options.seed);
  Matrix centroids(clusters, static_cast<index_t>(k));
  {
    std::vector<index_t> picks(static_cast<std::size_t>(items));
    std::iota(picks.begin(), picks.end(), index_t{0});
    for (int c = 0; c < clusters; ++c) {
      // Partial Fisher–Yates: element c becomes a uniform pick without
      // replacement.
      const auto j = static_cast<std::size_t>(c) +
                     rng.bounded(static_cast<std::uint64_t>(items - c));
      std::swap(picks[static_cast<std::size_t>(c)], picks[j]);
      const auto row = y.row(picks[static_cast<std::size_t>(c)]);
      std::copy(row.begin(), row.end(),
                centroids.row(static_cast<index_t>(c)).begin());
    }
  }

  // Lloyd iterations. Assignment parallelizes over items; the update step
  // is a serial accumulation (items × k is small next to the assignment).
  std::vector<int> assign(static_cast<std::size_t>(items), 0);
  for (int iter = 0; iter < options.kmeans_iters; ++iter) {
    pool->parallel_for(0, static_cast<std::size_t>(items),
                       [&](std::size_t b, std::size_t e, unsigned) {
      for (std::size_t i = b; i < e; ++i) {
        const real* row = y.row(static_cast<index_t>(i)).data();
        real best = std::numeric_limits<real>::max();
        int best_c = 0;
        for (int c = 0; c < clusters; ++c) {
          const real d =
              squared_distance(row, centroids.row(c).data(), k);
          if (d < best) {
            best = d;
            best_c = c;
          }
        }
        assign[i] = best_c;
      }
    });

    Matrix sums(clusters, static_cast<index_t>(k));
    std::vector<std::size_t> counts(static_cast<std::size_t>(clusters), 0);
    for (index_t i = 0; i < items; ++i) {
      const int c = assign[static_cast<std::size_t>(i)];
      ++counts[static_cast<std::size_t>(c)];
      const real* row = y.row(i).data();
      real* sum = sums.row(c).data();
      for (std::size_t d = 0; d < k; ++d) sum[d] += row[d];
    }
    for (int c = 0; c < clusters; ++c) {
      const auto count = counts[static_cast<std::size_t>(c)];
      if (count == 0) continue;  // empty cluster keeps its old centroid
      const real inv = real{1} / static_cast<real>(count);
      real* dst = centroids.row(c).data();
      const real* sum = sums.row(c).data();
      for (std::size_t d = 0; d < k; ++d) dst[d] = sum[d] * inv;
    }
  }
  // Zero k-means iterations still needs an assignment pass for postings.
  if (options.kmeans_iters == 0) {
    for (index_t i = 0; i < items; ++i) {
      const real* row = y.row(i).data();
      real best = std::numeric_limits<real>::max();
      int best_c = 0;
      for (int c = 0; c < clusters; ++c) {
        const real d = squared_distance(row, centroids.row(c).data(), k);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      assign[static_cast<std::size_t>(i)] = best_c;
    }
  }

  // Postings: CSR-style offsets; within each partition the slots are
  // ordered by residual norm DESCENDING (ties by id, for determinism), so
  // per-item upper bounds fall monotonically along a posting list and the
  // query-time prune can stop a partition scan at the first miss. Each
  // slot also carries a packed copy of its item's factor row — candidates
  // are then rescored with sequential loads instead of gathering scattered
  // rows of `y`, which is where an inverted index would otherwise lose to
  // the prefetch-friendly exhaustive scan.
  index->centroids_ = std::move(centroids);
  index->offsets_.assign(static_cast<std::size_t>(clusters) + 1, 0);
  for (index_t i = 0; i < items; ++i) {
    ++index->offsets_[static_cast<std::size_t>(assign[static_cast<std::size_t>(i)]) + 1];
  }
  for (int c = 0; c < clusters; ++c) {
    index->offsets_[static_cast<std::size_t>(c) + 1] +=
        index->offsets_[static_cast<std::size_t>(c)];
  }
  index->ids_.resize(static_cast<std::size_t>(items));
  index->residual_norms_.resize(static_cast<std::size_t>(items));
  index->packed_.resize(static_cast<std::size_t>(items) * k);
  index->max_residual_.assign(static_cast<std::size_t>(clusters), 0);
  index->max_bias_.assign(static_cast<std::size_t>(clusters), 0);
  {
    struct Slot {
      index_t id;
      real residual;
    };
    std::vector<std::vector<Slot>> posting(static_cast<std::size_t>(clusters));
    for (index_t i = 0; i < items; ++i) {
      const int c = assign[static_cast<std::size_t>(i)];
      const real residual = std::sqrt(squared_distance(
          y.row(i).data(), index->centroids_.row(c).data(), k));
      posting[static_cast<std::size_t>(c)].push_back({i, residual});
      if (bias) {
        index->max_bias_[static_cast<std::size_t>(c)] =
            std::max(index->max_bias_[static_cast<std::size_t>(c)],
                     bias->item_bias(i));
      }
    }
    for (int c = 0; c < clusters; ++c) {
      auto& slots = posting[static_cast<std::size_t>(c)];
      std::sort(slots.begin(), slots.end(), [](const Slot& a, const Slot& b) {
        if (a.residual != b.residual) return a.residual > b.residual;
        return a.id < b.id;
      });
      std::size_t slot = index->offsets_[static_cast<std::size_t>(c)];
      for (const Slot& s : slots) {
        index->ids_[slot] = s.id;
        index->residual_norms_[slot] = s.residual;
        const auto row = y.row(s.id);
        std::copy(row.begin(), row.end(), index->packed_.begin() + slot * k);
        ++slot;
      }
      if (!slots.empty()) {
        index->max_residual_[static_cast<std::size_t>(c)] =
            slots.front().residual;
      }
    }
  }

  IvfBuildStats& stats = index->stats_;
  stats.clusters = clusters;
  stats.kmeans_iters = options.kmeans_iters;
  stats.items = items;
  std::size_t largest = 0;
  for (int c = 0; c < clusters; ++c) {
    const auto size = index->partition(c).size();
    largest = std::max(largest, size);
    if (size == 0) ++stats.empty_partitions;
  }
  stats.imbalance = static_cast<double>(largest) * clusters /
                    static_cast<double>(items);
  stats.build_seconds = build_timer.seconds();
  return index;
}

std::vector<Recommendation> IvfIndex::topn(std::span<const real> factor,
                                           const Matrix& y, int n, int nprobe,
                                           const BiasModel* bias, index_t user,
                                           std::span<const index_t> exclude,
                                           IvfQueryStats* stats) const {
  ALSMF_CHECK(n >= 0);
  ALSMF_CHECK_MSG(static_cast<index_t>(factor.size()) == y.cols(),
                  "factor length does not match item factor rank");
  ALSMF_CHECK_MSG(y.rows() == items_ && static_cast<int>(y.cols()) == k_,
                  "item factor matrix does not match the one this index was "
                  "built from");
  if (nprobe <= 0) nprobe = default_nprobe_;
  nprobe = std::min(nprobe, clusters_);

  const auto k = factor.size();
  const real* q = factor.data();
  real qnorm = 0;
  for (std::size_t c = 0; c < k; ++c) qnorm += q[c] * q[c];
  qnorm = std::sqrt(qnorm);

  // Rank partitions by the best score any of their items could reach:
  // y_i = c_p + r_i, so q·y_i + b_i <= q·c_p + |q|·max|r| + max b.
  std::vector<std::pair<real, int>> bounds;
  bounds.reserve(static_cast<std::size_t>(clusters_));
  for (int c = 0; c < clusters_; ++c) {
    if (partition(c).empty()) continue;
    const real qc = vdot(q, centroids_.row(c).data(), k);
    const real bound = qc + qnorm * max_residual_[static_cast<std::size_t>(c)] +
                       (bias ? max_bias_[static_cast<std::size_t>(c)] : real{0});
    bounds.push_back({bound, c});
  }
  const int probe = std::min<int>(nprobe, static_cast<int>(bounds.size()));
  std::partial_sort(bounds.begin(), bounds.begin() + probe, bounds.end(),
                    [](const auto& a, const auto& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second < b.second;  // deterministic ties
                    });

  // Exact rescoring of the surviving candidates, same min-heap shape (and
  // same scoring arithmetic) as the exhaustive topn_from_factor.
  std::vector<Recommendation> heap;
  heap.reserve(static_cast<std::size_t>(n) + 1);
  auto cmp = [](const Recommendation& a, const Recommendation& b) {
    return a.score > b.score;  // min-heap by score
  };
  const bool user_bias = bias && user >= 0;
  // Heap scores include the rank-independent baseline (μ [+ b_u]) when a
  // bias model is in play; the prune bound must carry the same constant.
  const real bias_base =
      bias ? bias->global_mean() + (user_bias ? bias->user_bias(user) : real{0})
           : real{0};
  std::size_t rescored = 0;
  for (int p = 0; p < probe; ++p) {
    const int c = bounds[static_cast<std::size_t>(p)].second;
    const auto ids = partition(c);
    const real* norms = residual_norms_.data() +
                        offsets_[static_cast<std::size_t>(c)];
    const real qc = vdot(q, centroids_.row(c).data(), k);
    const real bound_base =
        qc + bias_base +
        (bias ? max_bias_[static_cast<std::size_t>(c)] : real{0});
    const real* packed = packed_.data() + offsets_[static_cast<std::size_t>(c)] * k;
    for (std::size_t j = 0; j < ids.size(); ++j) {
      const index_t i = ids[j];
      // Per-item prune: once the heap is full, stop the partition as soon
      // as an item's own upper bound cannot beat the current n-th best.
      // Postings are ordered by residual norm descending, so bounds only
      // fall from here — the first miss ends the whole list. The slack
      // keeps the bound conservative under float rounding (the bound is
      // exact over reals, but vdot and the bound round differently); it is
      // monotone in the bound, so the early exit stays admissible.
      if (n > 0 && static_cast<int>(heap.size()) >= n) {
        const real bound = bound_base + qnorm * norms[j];
        const real slack = real{1e-4} * (real{1} + std::abs(bound));
        if (bound + slack <= heap.front().score) break;
      }
      if (!exclude.empty() &&
          std::binary_search(exclude.begin(), exclude.end(), i)) {
        continue;
      }
      // Rescore from the index's packed copy of the row — sequential loads
      // along the posting list; same values as y.row(i), so scores are
      // bit-identical to the exhaustive path.
      real score = vdot(q, packed + j * k, k);
      if (user_bias) {
        score = bias->combine(user, i, score);
      } else if (bias) {
        score += bias->global_mean() + bias->item_bias(i);
      }
      ++rescored;
      if (static_cast<int>(heap.size()) < n) {
        heap.push_back({i, score});
        std::push_heap(heap.begin(), heap.end(), cmp);
      } else if (n > 0 && score > heap.front().score) {
        std::pop_heap(heap.begin(), heap.end(), cmp);
        heap.back() = {i, score};
        std::push_heap(heap.begin(), heap.end(), cmp);
      }
    }
  }
  if (stats) {
    stats->probed = probe;
    stats->candidates = rescored;
  }
  std::sort_heap(heap.begin(), heap.end(), cmp);
  return heap;
}

}  // namespace alsmf::index
