// IVF-style approximate top-N index over item factors.
//
// Exhaustive top-N scores all `items` rows per request — O(items·k), the one
// serving cost that grows with catalog size. The IVF index trades a sliver
// of recall@N for an order-of-magnitude less work per query:
//
//   build:  k-means coarse clustering of the item factor rows (seeded,
//           deterministic Lloyd iterations) into C partitions; per partition
//           a posting list of item ids plus each item's residual norm
//           |y_i − c_p| and the partition's max residual / max item bias.
//           Postings are ordered residual-descending and carry a packed
//           partition-major copy of the factor rows: per-item bounds fall
//           monotonically along a list (the prune becomes an early exit)
//           and rescoring streams memory sequentially instead of gathering
//           scattered rows of y. Memory cost: one extra copy of y.
//   query:  score every centroid (C·k flops), rank partitions by the upper
//           bound  q·c_p + |q|·max_residual_p (+ max_bias_p with a bias
//           model) — no item in p can beat its bound — scan the `nprobe`
//           best partitions, and rescore every surviving candidate with the
//           EXACT dot product (identical arithmetic to the exhaustive path,
//           so returned scores are always exact; only coverage is
//           approximate). nprobe >= clusters degenerates to an exhaustive
//           scan with bit-identical scores.
//
// An index is immutable after build and is published to serving as a member
// of the (also immutable) ModelSnapshot, so one RCU snapshot acquire yields
// a matched model+index pair — a request can never see a version mismatch.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/thread_pool.hpp"
#include "common/types.hpp"
#include "linalg/dense.hpp"
#include "recsys/bias.hpp"
#include "recsys/recommender.hpp"

namespace alsmf::index {

struct IvfOptions {
  /// Coarse partition count; 0 picks ~2·sqrt(items), clamped to [1, items].
  int clusters = 0;
  int kmeans_iters = 8;     ///< Lloyd iterations (seeded init from item rows)
  std::uint64_t seed = 42;  ///< determinism: same (y, options) -> same index
  /// Partitions scanned per query when the caller passes nprobe <= 0.
  int nprobe = 8;
};

struct IvfBuildStats {
  int clusters = 0;
  int kmeans_iters = 0;
  index_t items = 0;
  double build_seconds = 0;
  double imbalance = 0;  ///< largest partition / mean partition size
  int empty_partitions = 0;
};

/// Per-query introspection (tests, bench): how much work one topn() did.
struct IvfQueryStats {
  int probed = 0;              ///< partitions scanned
  std::size_t candidates = 0;  ///< items exactly rescored
};

class IvfIndex {
 public:
  /// Builds an index over the rows of `y` (items × k). `bias`, when given,
  /// must be the bias model the snapshot serves with: per-partition max
  /// item bias enters the probe bound so biased rankings keep their recall.
  /// `pool` parallelizes the k-means assignment step (null = global pool).
  static std::shared_ptr<const IvfIndex> build(const Matrix& y,
                                               const IvfOptions& options = {},
                                               const BiasModel* bias = nullptr,
                                               ThreadPool* pool = nullptr);

  /// Approximate top-n for one factor vector; drop-in for topn_from_factor
  /// (same bias/user/exclude semantics, scores descending and exact). `y`
  /// must be the matrix the index was built from (shape-checked; the
  /// serving snapshot carries both, so the pair can't drift apart).
  /// Candidates are rescored from the index's packed partition-major copy
  /// of the factor rows — same values as y, sequential access — so scores
  /// stay bit-identical to the exhaustive path. nprobe <= 0 uses
  /// options.nprobe from build time.
  std::vector<Recommendation> topn(std::span<const real> factor,
                                   const Matrix& y, int n, int nprobe = 0,
                                   const BiasModel* bias = nullptr,
                                   index_t user = -1,
                                   std::span<const index_t> exclude = {},
                                   IvfQueryStats* stats = nullptr) const;

  index_t items() const { return items_; }
  int k() const { return k_; }
  int clusters() const { return clusters_; }
  int default_nprobe() const { return default_nprobe_; }
  const IvfBuildStats& build_stats() const { return stats_; }

  /// Posting list of partition p: item ids, residual norm descending
  /// (query-time bounds fall monotonically along the list).
  std::span<const index_t> partition(int p) const {
    return {ids_.data() + offsets_[static_cast<std::size_t>(p)],
            offsets_[static_cast<std::size_t>(p) + 1] -
                offsets_[static_cast<std::size_t>(p)]};
  }

 private:
  IvfIndex() = default;

  index_t items_ = 0;
  int k_ = 0;
  int clusters_ = 0;
  int default_nprobe_ = 0;
  IvfBuildStats stats_;

  Matrix centroids_;                   ///< clusters × k
  std::vector<std::size_t> offsets_;   ///< clusters + 1, CSR-style postings
  std::vector<index_t> ids_;           ///< item ids, partition-major,
                                       ///< residual-descending per partition
  std::vector<real> residual_norms_;   ///< |y_i − c_p| aligned with ids_
  std::vector<real> packed_;           ///< items × k factor rows in slot
                                       ///< order (sequential rescoring)
  std::vector<real> max_residual_;     ///< per partition
  std::vector<real> max_bias_;         ///< per partition (0 without bias)
};

}  // namespace alsmf::index
