#include "linalg/batched.hpp"

#include <algorithm>
#include <atomic>
#include <vector>

#include "linalg/cholesky.hpp"
#include "linalg/lu.hpp"

namespace alsmf {

namespace {

template <class Solver>
std::size_t batched_solve(real* as, real* rhs, std::size_t batch, int k,
                          ThreadPool& pool, Solver solver) {
  std::atomic<std::size_t> failures{0};
  const std::size_t kk = static_cast<std::size_t>(k) * static_cast<std::size_t>(k);
  pool.parallel_for(0, batch, [&](std::size_t b, std::size_t e, unsigned) {
    std::size_t local_fail = 0;
    for (std::size_t i = b; i < e; ++i) {
      real* a = as + i * kk;
      real* x = rhs + i * static_cast<std::size_t>(k);
      if (!solver(a, k, x)) {
        std::fill(x, x + k, real{0});
        ++local_fail;
      }
    }
    failures.fetch_add(local_fail, std::memory_order_relaxed);
  });
  return failures.load();
}

}  // namespace

std::size_t batched_cholesky_solve(real* as, real* rhs, std::size_t batch,
                                   int k, ThreadPool& pool) {
  return batched_solve(as, rhs, batch, k, pool,
                       [](real* a, int kk, real* b) { return cholesky_solve(a, kk, b); });
}

std::size_t batched_lu_solve(real* as, real* rhs, std::size_t batch, int k,
                             ThreadPool& pool) {
  return batched_solve(as, rhs, batch, k, pool,
                       [](real* a, int kk, real* b) { return lu_solve(a, kk, b); });
}

}  // namespace alsmf
