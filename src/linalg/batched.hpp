// Batched small-matrix solves: many independent k×k SPD systems solved in
// parallel. This is the formulation cuMF (HPDC'16) and Gates et al. use for
// ALS, and our cuMF-like baseline builds on it.
#pragma once

#include <cstddef>

#include "common/thread_pool.hpp"
#include "common/types.hpp"

namespace alsmf {

/// Solves `batch` independent systems A_b · x_b = rhs_b with Cholesky.
/// `as` holds batch·k·k reals (row-major per system, contiguous batches),
/// `rhs` holds batch·k reals; both are overwritten (rhs becomes x).
/// Returns the number of systems whose factorization failed (those rhs are
/// zero-filled, matching ALS's "skip empty rows" behaviour).
std::size_t batched_cholesky_solve(real* as, real* rhs, std::size_t batch,
                                   int k, ThreadPool& pool);

/// Same with LU (ablation comparator).
std::size_t batched_lu_solve(real* as, real* rhs, std::size_t batch, int k,
                             ThreadPool& pool);

}  // namespace alsmf
