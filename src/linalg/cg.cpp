#include "linalg/cg.hpp"

#include <cstddef>

#include "common/error.hpp"

namespace alsmf {

namespace {

/// y = a·x for a row-major k×k matrix.
void matvec(const real* a, int k, const real* x, real* y) {
  for (int i = 0; i < k; ++i) {
    const real* arow = a + static_cast<std::size_t>(i) * static_cast<std::size_t>(k);
    real s = 0;
    for (int j = 0; j < k; ++j) s += arow[j] * x[j];
    y[i] = s;
  }
}

real dot(const real* a, const real* b, int k) {
  real s = 0;
  for (int i = 0; i < k; ++i) s += a[i] * b[i];
  return s;
}

}  // namespace

int cg_solve(const real* a, int k, const real* b, real* x, int iters,
             const CgScratch& scratch) {
  ALSMF_CHECK(scratch.r && scratch.p && scratch.ap);
  real* r = scratch.r;
  real* p = scratch.p;
  real* ap = scratch.ap;

  // r0 = b - a·x0, p0 = r0.
  matvec(a, k, x, ap);
  for (int i = 0; i < k; ++i) {
    r[i] = b[i] - ap[i];
    p[i] = r[i];
  }
  real rs = dot(r, r, k);

  int steps = 0;
  for (; steps < iters; ++steps) {
    if (!(rs > real{0})) break;  // converged (or NaN: leave x as-is)
    matvec(a, k, p, ap);
    const real pap = dot(p, ap, k);
    if (!(pap > real{0})) break;  // loss of positive definiteness
    const real alpha = rs / pap;
    for (int i = 0; i < k; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    const real rs_next = dot(r, r, k);
    const real beta = rs_next / rs;
    for (int i = 0; i < k; ++i) p[i] = r[i] + beta * p[i];
    rs = rs_next;
  }
  return steps;
}

double cg_solve_flops(int k, int iters) {
  const double kd = k;
  // Initial residual: one matvec (2k²) plus the subtraction and r·r (3k).
  // Each step: one matvec (2k²), two dots (4k), three axpys (6k), and the
  // two scalar divides.
  return 2.0 * kd * kd + 3.0 * kd +
         static_cast<double>(iters) * (2.0 * kd * kd + 10.0 * kd + 2.0);
}

}  // namespace alsmf
