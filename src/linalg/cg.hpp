// Truncated conjugate gradient for the dense SPD k×k systems of the ALS
// row solve (docs/solvers.md). A handful of iterations (cg_iters ≈ 3) from
// a warm start reaches the accuracy ALS needs per outer sweep at a fraction
// of the exact-factorization flops; run to k iterations it matches the
// exact solve to rounding (CG's finite-termination property).
//
// Like linalg/cholesky.hpp, the routines work in caller-provided buffers so
// devsim kernels can run them without allocation.
#pragma once

#include "common/types.hpp"

namespace alsmf {

/// Scratch for one cg_solve call: three k-vectors (residual, search
/// direction, A·p), caller-allocated.
struct CgScratch {
  real* r = nullptr;
  real* p = nullptr;
  real* ap = nullptr;
};

/// Runs `iters` CG steps on the SPD system a·x = b (a row-major k×k).
/// `x` carries the warm start in and the refined solution out. Stops early
/// when the residual hits (near) zero. Returns the steps actually taken.
int cg_solve(const real* a, int k, const real* b, real* x, int iters,
             const CgScratch& scratch);

/// Flop count of one truncated-CG row solve (`iters` steps plus the
/// initial-residual matvec); the devsim cost model and the static kernel
/// profile both price S3 with this.
double cg_solve_flops(int k, int iters);

}  // namespace alsmf
