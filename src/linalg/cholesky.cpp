#include "linalg/cholesky.hpp"

#include <cmath>

namespace alsmf {

bool cholesky_factor(real* a, int k) {
  for (int j = 0; j < k; ++j) {
    real d = a[j * k + j];
    for (int p = 0; p < j; ++p) d -= a[j * k + p] * a[j * k + p];
    if (!(d > real{0})) return false;
    const real ljj = std::sqrt(d);
    a[j * k + j] = ljj;
    const real inv = real{1} / ljj;
    for (int i = j + 1; i < k; ++i) {
      real s = a[i * k + j];
      for (int p = 0; p < j; ++p) s -= a[i * k + p] * a[j * k + p];
      a[i * k + j] = s * inv;
    }
  }
  return true;
}

void cholesky_forward(const real* l, int k, real* b) {
  for (int i = 0; i < k; ++i) {
    real s = b[i];
    for (int p = 0; p < i; ++p) s -= l[i * k + p] * b[p];
    b[i] = s / l[i * k + i];
  }
}

void cholesky_backward(const real* l, int k, real* b) {
  for (int i = k - 1; i >= 0; --i) {
    real s = b[i];
    for (int p = i + 1; p < k; ++p) s -= l[p * k + i] * b[p];
    b[i] = s / l[i * k + i];
  }
}

bool cholesky_solve(real* a, int k, real* b) {
  if (!cholesky_factor(a, k)) return false;
  cholesky_forward(a, k, b);
  cholesky_backward(a, k, b);
  return true;
}

double cholesky_solve_flops(int k) {
  const double kd = k;
  // Factorization ~ k^3/3, each substitution ~ k^2.
  return kd * kd * kd / 3.0 + 2.0 * kd * kd;
}

}  // namespace alsmf
