// Dense Cholesky factorization and solve for the per-row normal equations
// (YᵀY + λI) x = Yᵀ r. The paper's S3 step factorizes smat = L·Lᵀ.
//
// All routines operate on a row-major k×k buffer in place so they can be
// used from devsim kernels without allocation (Per.15).
#pragma once

#include <span>

#include "common/types.hpp"

namespace alsmf {

/// In-place Cholesky of a row-major SPD k×k matrix; on success the lower
/// triangle holds L (the strict upper triangle is left untouched).
/// Returns false when a non-positive pivot is met (matrix not SPD).
bool cholesky_factor(real* a, int k);

/// Solves L·y = b in place (forward substitution), L from cholesky_factor.
void cholesky_forward(const real* l, int k, real* b);

/// Solves Lᵀ·x = y in place (backward substitution).
void cholesky_backward(const real* l, int k, real* b);

/// Convenience: factor + forward + backward; overwrites a and b.
/// Returns false when factorization fails.
bool cholesky_solve(real* a, int k, real* b);

/// Flop count of one k×k Cholesky solve (factor + two substitutions);
/// used by the devsim cost model.
double cholesky_solve_flops(int k);

}  // namespace alsmf
