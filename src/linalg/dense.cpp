#include "linalg/dense.hpp"

#include <algorithm>
#include <cmath>

namespace alsmf {

double max_abs_diff(const Matrix& a, const Matrix& b) {
  ALSMF_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  double m = 0.0;
  const real* pa = a.data();
  const real* pb = b.data();
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(static_cast<double>(pa[i]) - static_cast<double>(pb[i])));
  }
  return m;
}

void gram_full(const Matrix& a, real lambda, real* out) {
  const index_t n = a.rows();
  const index_t k = a.cols();
  std::fill(out, out + static_cast<std::size_t>(k) * static_cast<std::size_t>(k),
            real{0});
  for (index_t r = 0; r < n; ++r) {
    auto row = a.row(r);
    for (index_t i = 0; i < k; ++i) {
      const real ai = row[static_cast<std::size_t>(i)];
      real* out_row = out + static_cast<std::size_t>(i) * static_cast<std::size_t>(k);
      for (index_t j = i; j < k; ++j) {
        out_row[j] += ai * row[static_cast<std::size_t>(j)];
      }
    }
  }
  // Mirror the upper triangle and add the ridge term.
  for (index_t i = 0; i < k; ++i) {
    out[static_cast<std::size_t>(i) * static_cast<std::size_t>(k) + static_cast<std::size_t>(i)] +=
        lambda;
    for (index_t j = i + 1; j < k; ++j) {
      out[static_cast<std::size_t>(j) * static_cast<std::size_t>(k) + static_cast<std::size_t>(i)] =
          out[static_cast<std::size_t>(i) * static_cast<std::size_t>(k) + static_cast<std::size_t>(j)];
    }
  }
}

void atx(const Matrix& a, std::span<const real> x, real* out) {
  const index_t n = a.rows();
  const index_t k = a.cols();
  ALSMF_CHECK(static_cast<index_t>(x.size()) == n);
  std::fill(out, out + k, real{0});
  for (index_t r = 0; r < n; ++r) {
    auto row = a.row(r);
    const real xr = x[static_cast<std::size_t>(r)];
    for (index_t j = 0; j < k; ++j) out[j] += xr * row[static_cast<std::size_t>(j)];
  }
}

}  // namespace alsmf
