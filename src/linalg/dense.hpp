// Row-major dense matrix used for factor matrices (m×k) and the small k×k
// normal-equation systems.
#pragma once

#include <span>

#include "common/aligned_buffer.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace alsmf {

class Matrix {
 public:
  Matrix() = default;
  Matrix(index_t rows, index_t cols, real fill = real{0})
      : rows_(rows),
        cols_(cols),
        data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
              fill) {
    ALSMF_CHECK(rows >= 0 && cols >= 0);
  }

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }

  real& operator()(index_t r, index_t c) {
    return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
                 static_cast<std::size_t>(c)];
  }
  real operator()(index_t r, index_t c) const {
    return data_[static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_) +
                 static_cast<std::size_t>(c)];
  }

  /// Contiguous view of row r.
  std::span<real> row(index_t r) {
    return {data_.data() + static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_),
            static_cast<std::size_t>(cols_)};
  }
  std::span<const real> row(index_t r) const {
    return {data_.data() + static_cast<std::size_t>(r) * static_cast<std::size_t>(cols_),
            static_cast<std::size_t>(cols_)};
  }

  real* data() { return data_.data(); }
  const real* data() const { return data_.data(); }

  void fill(real v) { std::fill(data_.begin(), data_.end(), v); }

  /// Fills with uniform values in [lo, hi) — the paper initializes Y with
  /// small random numbers before the first X update.
  void fill_uniform(Rng& rng, real lo, real hi) {
    for (auto& v : data_) v = static_cast<real>(rng.uniform(lo, hi));
  }

  /// Frobenius norm squared.
  double frob2() const {
    double s = 0.0;
    for (auto v : data_) s += static_cast<double>(v) * static_cast<double>(v);
    return s;
  }

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  aligned_vector<real> data_;
};

/// Max |a-b| over all entries; requires equal shapes.
double max_abs_diff(const Matrix& a, const Matrix& b);

/// C = Aᵀ·A + λI for row-major A (n×k): the full Gram matrix (k×k, row-major
/// into `out`, which must hold k*k reals).
void gram_full(const Matrix& a, real lambda, real* out);

/// y = Aᵀ·x for row-major A (n×k), x (n): out must hold k reals.
void atx(const Matrix& a, std::span<const real> x, real* out);

}  // namespace alsmf
