#include "linalg/lu.hpp"

#include <cmath>
#include <utility>
#include <vector>

namespace alsmf {

bool lu_factor(real* a, int k, int* piv) {
  for (int j = 0; j < k; ++j) {
    // Partial pivot: largest |a[i][j]| for i >= j.
    int p = j;
    real best = std::abs(a[j * k + j]);
    for (int i = j + 1; i < k; ++i) {
      const real v = std::abs(a[i * k + j]);
      if (v > best) {
        best = v;
        p = i;
      }
    }
    if (best == real{0}) return false;
    piv[j] = p;
    if (p != j) {
      for (int c = 0; c < k; ++c) std::swap(a[j * k + c], a[p * k + c]);
    }
    const real inv = real{1} / a[j * k + j];
    for (int i = j + 1; i < k; ++i) {
      const real m = a[i * k + j] * inv;
      a[i * k + j] = m;
      for (int c = j + 1; c < k; ++c) a[i * k + c] -= m * a[j * k + c];
    }
  }
  return true;
}

void lu_solve_factored(const real* lu, const int* piv, int k, real* b) {
  // Apply pivots.
  for (int j = 0; j < k; ++j) {
    if (piv[j] != j) std::swap(b[j], b[piv[j]]);
  }
  // Forward: L (unit diagonal).
  for (int i = 1; i < k; ++i) {
    real s = b[i];
    for (int p = 0; p < i; ++p) s -= lu[i * k + p] * b[p];
    b[i] = s;
  }
  // Backward: U.
  for (int i = k - 1; i >= 0; --i) {
    real s = b[i];
    for (int p = i + 1; p < k; ++p) s -= lu[i * k + p] * b[p];
    b[i] = s / lu[i * k + i];
  }
}

bool lu_solve(real* a, int k, real* b) {
  int piv_stack[64];
  if (k <= 64) {
    if (!lu_factor(a, k, piv_stack)) return false;
    lu_solve_factored(a, piv_stack, k, b);
    return true;
  }
  std::vector<int> piv(static_cast<std::size_t>(k));
  if (!lu_factor(a, k, piv.data())) return false;
  lu_solve_factored(a, piv.data(), k, b);
  return true;
}

double lu_solve_flops(int k) {
  const double kd = k;
  // Factorization ~ 2k^3/3 plus pivot search, two substitutions ~ k^2 each.
  return 2.0 * kd * kd * kd / 3.0 + 2.0 * kd * kd;
}

}  // namespace alsmf
