// LU factorization with partial pivoting. Serves as the ablation baseline
// for step S3 (the paper credits the Cholesky path for part of its win on
// YahooMusic R4).
#pragma once

#include <span>

#include "common/types.hpp"

namespace alsmf {

/// In-place LU with partial pivoting of a row-major k×k matrix.
/// `piv` receives the pivot row chosen at each elimination step (size k).
/// Returns false on an exactly singular matrix.
bool lu_factor(real* a, int k, int* piv);

/// Solves A·x = b using the factors from lu_factor; b is overwritten by x.
void lu_solve_factored(const real* lu, const int* piv, int k, real* b);

/// Convenience: factor + solve; overwrites a and b.
bool lu_solve(real* a, int k, real* b);

/// Flop count of one k×k LU solve, for the devsim cost model.
double lu_solve_flops(int k);

}  // namespace alsmf
