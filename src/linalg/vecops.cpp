#include "linalg/vecops.hpp"

#include <algorithm>

namespace alsmf {

real vdot(const real* a, const real* b, std::size_t n) {
  real s = 0;
  for (std::size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

void vaxpy(real alpha, const real* x, real* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void vscale(real alpha, real* y, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] *= alpha;
}

void vzero(real* y, std::size_t n) { std::fill(y, y + n, real{0}); }

void vcopy(const real* x, real* y, std::size_t n) { std::copy(x, x + n, y); }

double vnorm2(const real* a, std::size_t n) {
  double s = 0;
  for (std::size_t i = 0; i < n; ++i) {
    s += static_cast<double>(a[i]) * static_cast<double>(a[i]);
  }
  return s;
}

}  // namespace alsmf
