// Small dense vector kernels shared by the ALS variants. Kept branch-free
// and contiguous so the host compiler can vectorize (the paper's `float16`
// explicit vectorization is modeled in devsim; functionally these loops are
// the same arithmetic).
#pragma once

#include <span>

#include "common/types.hpp"

namespace alsmf {

/// dot(a, b) over n elements.
real vdot(const real* a, const real* b, std::size_t n);

/// y += alpha * x
void vaxpy(real alpha, const real* x, real* y, std::size_t n);

/// y = alpha * y
void vscale(real alpha, real* y, std::size_t n);

/// y = 0
void vzero(real* y, std::size_t n);

/// copy
void vcopy(const real* x, real* y, std::size_t n);

/// sum of squares
double vnorm2(const real* a, std::size_t n);

}  // namespace alsmf
