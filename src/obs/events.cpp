#include "obs/events.hpp"

#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "common/json.hpp"

namespace alsmf::obs {

std::string IterationEvent::to_json() const {
  json::JsonWriter w;
  w.begin_object();
  w.field("type", "iteration");
  w.field("iteration", iteration);
  w.field("variant", variant);
  w.field("device", device);
  w.field("row_solver", row_solver);
  w.field("anderson_depth", anderson_depth);
  w.field("loss", loss);    // non-finite -> null
  w.field("rmse", rmse);
  w.field("modeled_seconds", modeled_seconds);
  w.field("wall_seconds", wall_seconds);
  w.key("steps").begin_object();
  w.key("modeled_s").begin_object();
  w.field("s1", s1_modeled_s).field("s2", s2_modeled_s).field("s3", s3_modeled_s);
  w.end_object();
  w.key("wall_s").begin_object();
  w.field("s1", s1_wall_s).field("s2", s2_wall_s).field("s3", s3_wall_s);
  w.end_object();
  w.end_object();
  w.key("guards").begin_object();
  w.field("nonfinite_rows", guard_nonfinite_rows);
  w.field("redamped_rows", guard_redamped_rows);
  w.field("zeroed_rows", guard_zeroed_rows);
  w.field("solver_fallbacks", solver_fallbacks);
  w.field("kernel_relaunches", kernel_relaunches);
  w.end_object();
  w.end_object();
  return w.str();
}

void EventStream::emit(IterationEvent event) {
  std::scoped_lock lk(m_);
  events_.push_back(std::move(event));
}

std::vector<IterationEvent> EventStream::events() const {
  std::scoped_lock lk(m_);
  return events_;
}

std::size_t EventStream::size() const {
  std::scoped_lock lk(m_);
  return events_.size();
}

void EventStream::clear() {
  std::scoped_lock lk(m_);
  events_.clear();
}

void EventStream::write_jsonl(std::ostream& out) const {
  std::scoped_lock lk(m_);
  for (const auto& e : events_) out << e.to_json() << "\n";
}

std::string EventStream::to_jsonl() const {
  std::ostringstream os;
  write_jsonl(os);
  return os.str();
}

void EventStream::write_file(const std::string& path) const {
  std::ofstream out(path);
  ALSMF_CHECK_MSG(out.good(), "cannot open for write: " + path);
  write_jsonl(out);
}

}  // namespace alsmf::obs
