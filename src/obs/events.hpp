// Structured run-event stream: one record per training iteration, carrying
// quality (loss/RMSE), the paper's S1/S2/S3 step breakdown in both modeled
// and wall seconds, the code variant in use, and the robustness guard
// tallies. Exported as JSON lines (one object per line, schema-stable) so a
// perf trajectory can be appended to and grepped without a JSON library.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

namespace alsmf::obs {

struct IterationEvent {
  int iteration = 0;       ///< 1-based, after the iteration completed
  std::string variant;     ///< AlsVariant::name() in use
  std::string device;      ///< device profile name
  std::string row_solver = "cholesky";  ///< S3 strategy (to_string(RowSolverKind))
  /// Anderson history pairs in the window after this iteration (0 = mixing
  /// off or history just reset).
  int anderson_depth = 0;

  /// Training objective after the iteration; NaN (exported as null) for
  /// accounting-only runs that never materialize factors.
  double loss = std::numeric_limits<double>::quiet_NaN();
  double rmse = std::numeric_limits<double>::quiet_NaN();

  // This iteration's cost (deltas, not cumulative).
  double modeled_seconds = 0;
  double wall_seconds = 0;
  double s1_modeled_s = 0, s2_modeled_s = 0, s3_modeled_s = 0;
  double s1_wall_s = 0, s2_wall_s = 0, s3_wall_s = 0;

  // Guard/repair tallies, cumulative for the run (monotone).
  std::uint64_t guard_nonfinite_rows = 0;
  std::uint64_t guard_redamped_rows = 0;
  std::uint64_t guard_zeroed_rows = 0;
  std::uint64_t solver_fallbacks = 0;
  std::uint64_t kernel_relaunches = 0;

  /// One schema-stable JSON object ({"type":"iteration",...}).
  std::string to_json() const;
};

class EventStream {
 public:
  void emit(IterationEvent event);

  std::vector<IterationEvent> events() const;
  std::size_t size() const;
  void clear();

  /// JSON lines: one IterationEvent object per line.
  void write_jsonl(std::ostream& out) const;
  void write_file(const std::string& path) const;
  std::string to_jsonl() const;

 private:
  mutable std::mutex m_;
  std::vector<IterationEvent> events_;
};

}  // namespace alsmf::obs
