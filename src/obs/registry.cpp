#include "obs/registry.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/json.hpp"

namespace alsmf::obs {

namespace {

const char* kind_name(int kind) {
  switch (kind) {
    case 0: return "counter";
    case 1: return "gauge";
    default: return "histogram";
  }
}

/// Prometheus label-value escaping (backslash, quote, newline).
std::string prom_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    if (ch == '\\') out += "\\\\";
    else if (ch == '"') out += "\\\"";
    else if (ch == '\n') out += "\\n";
    else out.push_back(ch);
  }
  return out;
}

std::string prom_series(const std::string& name, const Labels& labels,
                        const Labels& extra = {}) {
  std::string out = name;
  if (labels.empty() && extra.empty()) return out;
  out += "{";
  bool first = true;
  for (const auto* set : {&labels, &extra}) {
    for (const auto& [k, v] : *set) {
      if (!first) out += ",";
      first = false;
      out += k + "=\"" + prom_escape(v) + "\"";
    }
  }
  out += "}";
  return out;
}

}  // namespace

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Registry::Metric& Registry::find_or_create(Kind kind, const std::string& name,
                                           const Labels& labels,
                                           const std::string& help,
                                           const Histogram* layout) {
  ALSMF_CHECK_MSG(!name.empty(), "metric name must not be empty");
  std::scoped_lock lk(m_);
  for (auto& m : metrics_) {
    if (m->name == name && m->labels == labels) {
      ALSMF_CHECK_MSG(m->kind == kind,
                      "metric '" + name + "' already registered as a " +
                          kind_name(static_cast<int>(m->kind)));
      return *m;
    }
  }
  auto m = std::make_unique<Metric>();
  m->kind = kind;
  m->name = name;
  m->labels = labels;
  m->help = help;
  switch (kind) {
    case Kind::kCounter: m->counter = std::make_unique<Counter>(); break;
    case Kind::kGauge: m->gauge = std::make_unique<Gauge>(); break;
    case Kind::kHistogram:
      m->histogram = std::make_unique<HistogramMetric>(*layout);
      break;
  }
  metrics_.push_back(std::move(m));
  return *metrics_.back();
}

Counter& Registry::counter(const std::string& name, const Labels& labels,
                           const std::string& help) {
  return *find_or_create(Kind::kCounter, name, labels, help, nullptr).counter;
}

Gauge& Registry::gauge(const std::string& name, const Labels& labels,
                       const std::string& help) {
  return *find_or_create(Kind::kGauge, name, labels, help, nullptr).gauge;
}

HistogramMetric& Registry::histogram(const std::string& name,
                                     const Labels& labels,
                                     const std::string& help,
                                     const Histogram& layout) {
  return *find_or_create(Kind::kHistogram, name, labels, help, &layout)
              .histogram;
}

void Registry::add_assertion(const std::string& name, Assertion check) {
  std::scoped_lock lk(m_);
  for (auto& [n, fn] : assertions_) {
    if (n == name) {
      fn = std::move(check);
      return;
    }
  }
  assertions_.emplace_back(name, std::move(check));
}

std::vector<std::string> Registry::check_assertions() const {
  // Copy the checks out so user callbacks run without the registry lock
  // (they typically read metrics from this same registry).
  std::vector<std::pair<std::string, Assertion>> checks;
  {
    std::scoped_lock lk(m_);
    checks = assertions_;
  }
  std::vector<std::string> violations;
  for (const auto& [name, fn] : checks) {
    const std::string detail = fn();
    if (!detail.empty()) violations.push_back(name + ": " + detail);
  }
  return violations;
}

std::string Registry::prometheus_text() const {
  std::scoped_lock lk(m_);
  std::string out;
  std::vector<const std::string*> families_done;
  const auto seen = [&](const std::string& family) {
    return std::any_of(families_done.begin(), families_done.end(),
                       [&](const std::string* f) { return *f == family; });
  };
  for (const auto& m : metrics_) {
    if (seen(m->name)) continue;
    families_done.push_back(&m->name);
    const Metric* first = m.get();
    if (!first->help.empty()) {
      out += "# HELP " + first->name + " " + first->help + "\n";
    }
    out += "# TYPE " + first->name + " ";
    out += first->kind == Kind::kCounter   ? "counter"
           : first->kind == Kind::kGauge   ? "gauge"
                                           : "summary";
    out += "\n";
    // All series of this family, in registration order.
    for (const auto& s : metrics_) {
      if (s->name != first->name) continue;
      std::ostringstream line;
      switch (s->kind) {
        case Kind::kCounter:
          line << prom_series(s->name, s->labels) << " " << s->counter->value()
               << "\n";
          break;
        case Kind::kGauge:
          line << prom_series(s->name, s->labels) << " " << s->gauge->value()
               << "\n";
          break;
        case Kind::kHistogram: {
          const Histogram h = s->histogram->snapshot();
          static constexpr std::pair<double, const char*> kQuantiles[] = {
              {0.5, "0.5"}, {0.9, "0.9"}, {0.99, "0.99"}};
          for (const auto& [q, label] : kQuantiles) {
            line << prom_series(s->name, s->labels, {{"quantile", label}})
                 << " " << h.percentile(q) << "\n";
          }
          line << prom_series(s->name + "_sum", s->labels) << " " << h.sum()
               << "\n";
          line << prom_series(s->name + "_count", s->labels) << " "
               << h.count() << "\n";
          break;
        }
      }
      out += line.str();
    }
  }
  return out;
}

std::string Registry::json() const {
  json::JsonWriter w;
  w.begin_object();
  w.key("metrics").begin_array();
  {
    std::scoped_lock lk(m_);
    for (const auto& m : metrics_) {
      w.begin_object();
      w.field("name", m->name);
      w.field("type", kind_name(static_cast<int>(m->kind)));
      w.key("labels").begin_object();
      for (const auto& [k, v] : m->labels) w.field(k, v);
      w.end_object();
      switch (m->kind) {
        case Kind::kCounter: w.field("value", m->counter->value()); break;
        case Kind::kGauge: w.field("value", m->gauge->value()); break;
        case Kind::kHistogram:
          w.field_raw("value", m->histogram->snapshot().summary_json());
          break;
      }
      w.end_object();
    }
  }
  w.end_array();
  w.key("assertion_violations").begin_array();
  for (const auto& v : check_assertions()) w.value(v);
  w.end_array();
  w.end_object();
  return w.str();
}

void Registry::reset() {
  std::scoped_lock lk(m_);
  for (auto& m : metrics_) {
    switch (m->kind) {
      case Kind::kCounter: m->counter->reset(); break;
      case Kind::kGauge: m->gauge->reset(); break;
      case Kind::kHistogram: m->histogram->reset(); break;
    }
  }
}

std::size_t Registry::size() const {
  std::scoped_lock lk(m_);
  return metrics_.size();
}

}  // namespace alsmf::obs
