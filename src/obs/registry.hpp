// Process-wide metrics registry: the one observability surface every layer
// reports into (devsim launches, solver iterations, serving traffic).
//
// Three metric kinds, all cheap to update from hot paths:
//   * Counter   — monotone uint64 (lock-free).
//   * Gauge     — double, set or add (lock-free CAS).
//   * HistogramMetric — log-bucketed distribution (common/histogram under a
//     per-metric mutex; updates never contend with unrelated metrics).
//
// Metrics are identified by (family name, label set) and created on first
// use; repeated lookups return the same instance, so handles can be cached.
// Exposition: Prometheus text format (counters/gauges as-is, histograms as
// summaries with quantile series) and a JSON document with the same data.
// Registries can also carry named assertions — cross-metric invariants
// (e.g. serving's submitted >= completed + shed) checked on demand and
// reported in the JSON exposition.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.hpp"

namespace alsmf::obs {

/// Ordered label set; order is part of the metric identity and of the
/// exposition output, so keep it consistent per family.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + delta,
                                     std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

class HistogramMetric {
 public:
  explicit HistogramMetric(Histogram layout) : h_(std::move(layout)) {}

  void observe(double value) {
    std::scoped_lock lk(m_);
    h_.add(value);
  }
  /// Consistent copy for percentile math / exposition.
  Histogram snapshot() const {
    std::scoped_lock lk(m_);
    return h_;
  }
  double percentile(double p) const {
    std::scoped_lock lk(m_);
    return h_.percentile(p);
  }
  double mean() const {
    std::scoped_lock lk(m_);
    return h_.mean();
  }
  std::uint64_t count() const {
    std::scoped_lock lk(m_);
    return h_.count();
  }
  void reset() {
    std::scoped_lock lk(m_);
    h_.clear();
  }

 private:
  mutable std::mutex m_;
  Histogram h_;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide default instance (CLI tools, single-service setups).
  /// Libraries take a Registry* so tests and multi-tenant embedders can
  /// isolate their metrics.
  static Registry& global();

  /// Get-or-create. The returned reference stays valid for the registry's
  /// lifetime. Requesting an existing (name, labels) with a different
  /// metric kind throws.
  Counter& counter(const std::string& name, const Labels& labels = {},
                   const std::string& help = "");
  Gauge& gauge(const std::string& name, const Labels& labels = {},
               const std::string& help = "");
  /// `layout` is used only on first creation of this (name, labels).
  HistogramMetric& histogram(const std::string& name, const Labels& labels = {},
                             const std::string& help = "",
                             const Histogram& layout = Histogram(1e-6, 1.25,
                                                                 96));

  /// Cross-metric invariant: returns "" when the invariant holds, else a
  /// human-readable violation. Re-registering a name replaces the check.
  using Assertion = std::function<std::string()>;
  void add_assertion(const std::string& name, Assertion check);
  /// Runs every assertion; returns "name: detail" for each violation.
  std::vector<std::string> check_assertions() const;

  /// Prometheus text exposition format, families in first-registration
  /// order (histograms exported as summaries).
  std::string prometheus_text() const;
  /// Same data as a JSON document:
  /// {"metrics":[{name,type,labels,value},...],"assertions":[...]}.
  std::string json() const;

  /// Zeroes every metric (identities and layouts are retained) — for tests
  /// and per-run reuse, not for production scrape loops.
  void reset();

  std::size_t size() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Metric {
    Kind kind;
    std::string name;
    Labels labels;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramMetric> histogram;
  };

  Metric& find_or_create(Kind kind, const std::string& name,
                         const Labels& labels, const std::string& help,
                         const Histogram* layout);

  mutable std::mutex m_;
  std::vector<std::unique_ptr<Metric>> metrics_;  // insertion-ordered
  std::vector<std::pair<std::string, Assertion>> assertions_;
};

}  // namespace alsmf::obs
