#include "obs/regress.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/json.hpp"

namespace alsmf::obs {

RegressMetric& RegressReport::add(const std::string& name, double value,
                                  const std::string& unit,
                                  bool lower_is_better, bool gate) {
  RegressMetric m;
  m.name = name;
  m.value = value;
  m.unit = unit;
  m.lower_is_better = lower_is_better;
  m.gate = gate;
  metrics.push_back(std::move(m));
  return metrics.back();
}

const RegressMetric* RegressReport::find(const std::string& name) const {
  for (const auto& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

std::string RegressReport::to_json() const {
  json::JsonWriter w;
  w.begin_object();
  w.field("schema_version", schema_version);
  w.field("suite", suite);
  w.field("seed", seed);
  w.field("smoke", smoke);
  w.key("metrics").begin_array();
  for (const auto& m : metrics) {
    w.begin_object();
    w.field("name", m.name);
    w.field("value", m.value);
    w.field("unit", m.unit);
    w.field("lower_is_better", m.lower_is_better);
    w.field("gate", m.gate);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

void RegressReport::write_file(const std::string& path) const {
  std::ofstream out(path);
  ALSMF_CHECK_MSG(out.good(), "cannot open for write: " + path);
  out << to_json() << "\n";
}

RegressReport RegressReport::from_json(const std::string& text) {
  const json::Value root = json::parse(text);
  ALSMF_CHECK_MSG(root.is_object(), "regress report: not a JSON object");
  RegressReport report;
  report.schema_version =
      static_cast<int>(root.at("schema_version").as_double(1));
  ALSMF_CHECK_MSG(report.schema_version == 1,
                  "regress report: unsupported schema_version");
  report.suite = root.at("suite").as_string();
  report.seed = static_cast<std::uint64_t>(root.at("seed").as_double());
  report.smoke = root.at("smoke").as_bool();
  for (const auto& m : root.at("metrics").array()) {
    RegressMetric metric;
    metric.name = m.at("name").as_string();
    metric.value = m.at("value").as_double();
    metric.unit = m.at("unit").as_string();
    metric.lower_is_better = m.at("lower_is_better").as_bool(true);
    metric.gate = m.at("gate").as_bool(true);
    ALSMF_CHECK_MSG(!metric.name.empty(), "regress report: unnamed metric");
    report.metrics.push_back(std::move(metric));
  }
  return report;
}

RegressReport RegressReport::load_file(const std::string& path) {
  std::ifstream in(path);
  ALSMF_CHECK_MSG(in.good(), "cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return from_json(buffer.str());
}

CompareResult compare_reports(const RegressReport& baseline,
                              const RegressReport& current, double tolerance) {
  ALSMF_CHECK_MSG(tolerance >= 0.0, "tolerance must be >= 0");
  CompareResult result;
  for (const auto& base : baseline.metrics) {
    const RegressMetric* cur = current.find(base.name);
    if (!cur) {
      if (base.gate) {
        result.missing.push_back(base.name);
        result.ok = false;
      }
      continue;
    }
    RegressDelta delta;
    delta.name = base.name;
    delta.baseline = base.value;
    delta.current = cur->value;
    delta.gate = base.gate && cur->gate;
    if (base.value != 0.0) {
      delta.ratio = cur->value / base.value;
      const double worse = base.lower_is_better ? delta.ratio - 1.0
                                                : 1.0 - delta.ratio;
      delta.regressed = delta.gate && worse > tolerance;
    } else {
      // Zero baseline: any move beyond the tolerance (absolute) in the bad
      // direction counts; ratio is meaningless.
      delta.ratio = 1.0;
      const double worse =
          base.lower_is_better ? cur->value : -cur->value;
      delta.regressed = delta.gate && worse > tolerance;
    }
    if (delta.regressed) result.ok = false;
    result.deltas.push_back(std::move(delta));
  }
  return result;
}

std::string CompareResult::summary() const {
  std::ostringstream os;
  os << "  " << std::string(44, ' ').replace(0, 6, "metric")
     << "     baseline ->      current   ratio\n";
  for (const auto& d : deltas) {
    char line[256];
    std::snprintf(line, sizeof line, "  %-44s %12.6g -> %12.6g  x%-7.3f %s%s\n",
                  d.name.c_str(), d.baseline, d.current, d.ratio,
                  d.gate ? "" : "[info] ", d.regressed ? "REGRESSED" : "ok");
    os << line;
  }
  for (const auto& name : missing) {
    os << "  " << name << ": MISSING from current report\n";
  }
  os << (ok ? "PASS" : "FAIL") << ": " << deltas.size() << " compared, "
     << missing.size() << " missing\n";
  return os.str();
}

}  // namespace alsmf::obs
