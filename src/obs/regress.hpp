// Perf-regression report schema and comparison.
//
// bench_regress writes a RegressReport (BENCH_regress.json) after running
// the pinned-seed canonical suite; CI re-runs the suite and compares the
// fresh report against a committed baseline with a relative tolerance.
// Metrics carry a `gate` flag: modeled/deterministic numbers gate the build,
// wall-clock and throughput numbers ride along for the trajectory but never
// fail CI (they depend on the machine running the suite).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace alsmf::obs {

struct RegressMetric {
  std::string name;   ///< e.g. "train_smoke.modeled_seconds"
  double value = 0;
  std::string unit;   ///< "s", "qps", "rmse", "count", ...
  bool lower_is_better = true;
  bool gate = true;   ///< false: informational only, never fails --compare
};

struct RegressReport {
  int schema_version = 1;
  std::string suite = "alsmf_regress";
  std::uint64_t seed = 42;
  bool smoke = false;
  std::vector<RegressMetric> metrics;

  RegressMetric& add(const std::string& name, double value,
                     const std::string& unit, bool lower_is_better = true,
                     bool gate = true);
  const RegressMetric* find(const std::string& name) const;

  std::string to_json() const;
  void write_file(const std::string& path) const;
  static RegressReport from_json(const std::string& text);
  static RegressReport load_file(const std::string& path);
};

/// One compared metric: `ratio` is current/baseline (1.0 = unchanged).
struct RegressDelta {
  std::string name;
  double baseline = 0;
  double current = 0;
  double ratio = 1.0;
  bool gate = true;
  bool regressed = false;
};

struct CompareResult {
  std::vector<RegressDelta> deltas;
  /// Gated baseline metrics absent from the current report (schema break —
  /// a silently dropped metric must fail the gate, not pass it).
  std::vector<std::string> missing;
  bool ok = true;

  /// Human-readable per-metric table plus a PASS/FAIL verdict line.
  std::string summary() const;
};

/// Direction-aware comparison: a gated metric regresses when it moves past
/// `tolerance` (relative) in its bad direction; improvements never fail.
/// Baselines at zero are compared absolutely against `tolerance` itself.
CompareResult compare_reports(const RegressReport& baseline,
                              const RegressReport& current, double tolerance);

}  // namespace alsmf::obs
