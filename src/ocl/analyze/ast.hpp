// Expression / statement AST for the OpenCL-C subset the kernel generator
// emits (ocl/kernel_source.cpp). The parser (parser.hpp) produces it; the
// access-IR lowering (ir.hpp) consumes it. The subset is deliberately
// small — straight-line C with for/if/while, casts, ternaries, calls,
// vector loads and member access — and the parser *throws* on anything
// outside it, so the analyzer can never silently mis-model a construct.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace alsmf::ocl::analyze {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind {
    kIntLit,    // ival
    kFloatLit,  // text (e.g. "0.5f")
    kIdent,     // name
    kUnary,     // name = operator ("-", "!", "++", "--"); kids[0]
    kBinary,    // name = operator ("+", "=", "+=", "<", ...); kids[0], kids[1]
    kTernary,   // kids[0] ? kids[1] : kids[2]
    kCall,      // name = callee; kids = arguments
    kIndex,     // kids[0] [ kids[1] ]
    kMember,    // kids[0] . name   (vector components: .s0, .s1, ...)
    kCast,      // name = type; kids[0]
  };
  Kind kind = Kind::kIntLit;
  long ival = 0;
  std::string name;
  std::vector<ExprPtr> kids;
  int line = 0;
  int col = 0;  // 1-based column, for clickable file:line:col diagnostics
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  enum class Kind {
    kDecl,      // type name [array_extent] [= init]
    kExpr,      // expr;
    kIf,        // cond, body, else_body
    kFor,       // for_init, cond, step, body
    kWhile,     // cond, body
    kBlock,     // body
    kReturn,    // expr (may be null)
    kContinue,
    kBreak,
    kBarrier,   // barrier(...);
  };
  Kind kind = Kind::kExpr;
  int line = 0;
  int col = 0;

  // kDecl
  std::string type;
  std::string name;
  bool is_local = false;  // __local address space
  ExprPtr array_extent;   // null for scalars
  ExprPtr init;

  ExprPtr cond;       // if / for / while condition; kReturn value
  StmtPtr for_init;   // kFor (decl or expr statement; may be null)
  ExprPtr step;       // kFor update expression (may be null)
  std::vector<StmtPtr> body;
  std::vector<StmtPtr> else_body;
};

struct ParamDecl {
  std::string type;   // element type ("real_t", "int", ...)
  std::string name;
  bool is_pointer = false;
  bool is_global = false;
  bool is_local = false;
  bool is_const = false;
  int line = 0;
};

struct FunctionDecl {
  std::string name;
  bool is_kernel = false;
  std::vector<ParamDecl> params;
  std::vector<StmtPtr> body;
  int line = 0;
};

struct TranslationUnit {
  std::map<std::string, std::string> defines;  // object-like macros
  std::size_t real_t_bytes = 4;                // from `typedef ... real_t;`
  // From `typedef <type> storage_t;` — the factor/ratings storage width of
  // mixed-precision kernel flavors. 0 bytes / empty base: no storage
  // typedef, buffers are stored at real_t width.
  std::size_t storage_t_bytes = 0;
  std::string storage_t_base;  // "half", "bfloat16", ...
  std::vector<FunctionDecl> functions;
};

/// Thrown by the parser (and the IR lowering) on constructs outside the
/// supported subset. Deep lint converts it into a diagnostic rather than
/// letting an unanalyzable kernel pass silently.
struct ParseError {
  int line = 0;
  std::string message;
};

}  // namespace alsmf::ocl::analyze
