#include "ocl/analyze/deep_lint.hpp"

#include <algorithm>
#include <limits>
#include <set>
#include <string>

#include "ocl/analyze/ir.hpp"
#include "ocl/analyze/parser.hpp"

namespace alsmf::ocl::analyze {

namespace {

std::size_t align_up(std::size_t bytes) { return (bytes + 63) / 64 * 64; }

bool freq_hot(const Freq& f) { return f.per_nnz > 0 || f.chunk_body > 0; }

void check_kernel(const KernelIR& ir, const DeepLintOptions& options,
                  LintReport& report) {
  const auto add = [&](int line, std::string message, int col = 0) {
    report.issues.push_back(
        {line, "deep: " + ir.name + ": " + std::move(message), col});
  };

  // Uncoalesced global store in a hot loop: every nonzero pays a scattered
  // transaction on GPUs. (Row-granular stores outside the nnz loops are the
  // expected S3 result write and stay exempt.)
  for (const auto& r : ir.refs) {
    if (!r.is_store || !r.hot || r.zero_weight) continue;
    if (r.space != MemSpace::kGlobal) continue;
    if (r.coalescing == Coalescing::kStrided ||
        r.coalescing == Coalescing::kGathered) {
      add(r.line, "uncoalesced " +
                      std::string(r.coalescing == Coalescing::kStrided
                                      ? "strided"
                                      : "gathered") +
                      " global store to '" + r.buffer +
                      "' in a hot loop (index " + r.index + ")",
          r.col);
    }
  }

  // Provable scratch-pad overflow for the declared extents.
  if (options.local_capacity_bytes > 0) {
    std::size_t declared = 0;
    for (const auto& d : ir.locals) {
      if (d.elems < 0) {
        add(d.line, "__local '" + d.name +
                        "' has a statically unsizable extent; cannot prove "
                        "it fits the scratch-pad");
        continue;
      }
      declared += align_up(static_cast<std::size_t>(d.elems) *
                           static_cast<std::size_t>(d.elem_bytes));
    }
    if (declared > options.local_capacity_bytes) {
      add(ir.locals.empty() ? 0 : ir.locals.front().line,
          "__local declarations need " + std::to_string(declared) +
              " bytes (64-byte aligned), exceeding the " +
              std::to_string(options.local_capacity_bytes) +
              "-byte per-group capacity");
    }
  }

  // The guarded-lane reduction writes row lx of the system matrix only for
  // lx < K; a work-group narrower than K silently drops rows.
  if (ir.ws > 0 && ir.k > 0 && ir.ws < ir.k) {
    add(0, "WS=" + std::to_string(ir.ws) + " is smaller than K=" +
               std::to_string(ir.k) +
               "; the (lx < K) guarded reduction leaves accumulator rows "
               "unwritten");
  }

  // Staged tiles must be synchronized before the first hot read: the
  // cooperative fill and the consuming loop partition work differently, so
  // without an intervening barrier lanes read other lanes' stale elements.
  std::set<std::string> staged;
  for (const auto& t : ir.traffic) {
    if (t.kind == TrafficIR::Kind::kLocalWrite && t.lane_partitioned &&
        freq_hot(t.freq)) {
      staged.insert(t.buffer);
    }
  }
  for (const auto& buf : staged) {
    int last_write = 0;
    int first_read = std::numeric_limits<int>::max();
    bool write_in_chunk = false;
    for (const auto& t : ir.traffic) {
      if (t.buffer != buf || !freq_hot(t.freq)) continue;
      if (t.kind == TrafficIR::Kind::kLocalWrite && t.lane_partitioned) {
        last_write = std::max(last_write, t.line);
        write_in_chunk |= t.freq.chunk_body > 0;
      } else if (t.kind == TrafficIR::Kind::kLocalRead ||
                 t.kind == TrafficIR::Kind::kLocalTraversal) {
        first_read = std::min(first_read, t.line);
      }
    }
    if (first_read == std::numeric_limits<int>::max()) continue;
    bool fenced = false;
    for (const auto& b : ir.barriers) {
      // A fill inside the chunk loop needs a per-chunk barrier; a per-row
      // fill is fenced by any barrier between the two loops.
      if (write_in_chunk && b.freq.per_chunk == 0) continue;
      if (b.line > last_write && b.line < first_read) {
        fenced = true;
        break;
      }
    }
    if (!fenced) {
      add(first_read, "staged tile '" + buf +
                          "' is read (line " + std::to_string(first_read) +
                          ") without a barrier after its cooperative fill "
                          "(line " + std::to_string(last_write) + ")");
    }
  }

  // Dead kernel arguments are generator bugs: either the argument should
  // not be bound, or the kernel silently ignores an input.
  for (const auto& a : ir.args) {
    if (!a.used) add(a.line, "kernel argument '" + a.name + "' is never used");
  }
}

}  // namespace

LintReport deep_lint_kernel_source(const std::string& source,
                                   const DeepLintOptions& options) {
  LintReport report =
      lint_kernel_source(source, options.expected_kernels, options.limits);
  try {
    const TranslationUnit tu = parse_translation_unit(source);
    for (const auto& ir : lower_kernels(tu)) {
      check_kernel(ir, options, report);
    }
  } catch (const ParseError& e) {
    report.issues.push_back(
        {e.line, "deep: unanalyzable kernel source: " + e.message});
  }
  return report;
}

}  // namespace alsmf::ocl::analyze
