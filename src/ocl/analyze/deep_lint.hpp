// Deep lint: parser- and IR-backed diagnostics layered on the structural
// lint (ocl/kernel_lint.hpp). Where the structural lint works on tokens,
// these checks work on the lowered access IR, so they can prove properties
// per work-group size and memory space: uncoalesced stores in hot loops,
// scratch-pad overflow, lane coverage of the guarded reduction, staged
// tiles read before the synchronizing barrier, dead kernel arguments.
#pragma once

#include <cstddef>
#include <string>

#include "ocl/kernel_lint.hpp"

namespace alsmf::ocl::analyze {

struct DeepLintOptions {
  /// Kernel entry points the structural lint should expect.
  int expected_kernels = 1;
  /// Per-work-group scratch-pad capacity to prove __local fits (0 = skip).
  std::size_t local_capacity_bytes = 0;
  /// Limits forwarded to the structural lint (0 fields skip, as there).
  LintLimits limits;
};

/// Runs the structural lint, then parses and lowers the source and appends
/// the IR-backed diagnostics. A ParseError becomes a diagnostic itself: an
/// unanalyzable kernel must fail the gate, not pass silently.
LintReport deep_lint_kernel_source(const std::string& source,
                                   const DeepLintOptions& options = {});

}  // namespace alsmf::ocl::analyze
