#include "ocl/analyze/interp.hpp"

#include <cmath>
#include <cstdlib>
#include <map>
#include <memory>

#include "devsim/check/span.hpp"
#include "ocl/analyze/parser.hpp"

namespace alsmf::ocl::analyze {

namespace {

using devsim::check::GlobalSpan;
using devsim::check::LocalSpan;

[[noreturn]] void fail(int line, const std::string& msg) {
  throw ParseError{line, "interp: " + msg};
}

bool is_narrow_type(const std::string& t) {
  return t == "storage_t" || t == "half" || t == "bfloat16";
}

/// Runtime value: scalar int/real, an OpenCL short vector (vloadN result),
/// a pointer into a buffer, or a per-lane private array.
struct Value {
  enum class Kind { kInt, kReal, kVec, kPtr, kArr };
  Kind kind = Kind::kInt;
  long i = 0;
  double r = 0;
  bool narrow = false;  // declared in a narrow storage type (shadow mode)
  std::vector<double> vec;  // kVec components / kArr storage

  // kPtr: space 0 = global real, 1 = global int, 2 = local.
  int space = 0;
  int buf = -1;
  long off = 0;

  static Value of_int(long v) {
    Value x;
    x.kind = Kind::kInt;
    x.i = v;
    return x;
  }
  static Value of_real(double v) {
    Value x;
    x.kind = Kind::kReal;
    x.r = v;
    return x;
  }
  double as_real(int line) const {
    if (kind == Kind::kReal) return r;
    if (kind == Kind::kInt) return static_cast<double>(i);
    fail(line, "expected a scalar value");
  }
  long as_int(int line) const {
    if (kind == Kind::kInt) return i;
    if (kind == Kind::kReal) return static_cast<long>(r);
    fail(line, "expected an integer value");
  }
  bool truthy(int line) const {
    if (kind == Kind::kInt) return i != 0;
    if (kind == Kind::kReal) return r != 0;
    fail(line, "expected a scalar condition");
  }
};

enum class LaneStatus { kActive, kContinued, kBroken, kReturned };

struct Lane {
  int id = 0;
  LaneStatus status = LaneStatus::kActive;
  std::vector<std::map<std::string, Value>> scopes;
};

class Machine {
 public:
  Machine(const TranslationUnit& tu, const FunctionDecl& fn,
          devsim::GroupCtx& ctx, const std::vector<InterpArg>& args,
          float (*quantizer)(float))
      : tu_(tu), fn_(fn), ctx_(ctx), quantizer_(quantizer) {
    if (args.size() != fn.params.size()) {
      fail(fn.line, "kernel '" + fn.name + "' expects " +
                        std::to_string(fn.params.size()) + " arguments, got " +
                        std::to_string(args.size()));
    }
    lanes_.resize(static_cast<std::size_t>(ctx.group_size()));
    for (std::size_t l = 0; l < lanes_.size(); ++l) {
      lanes_[l].id = static_cast<int>(l);
      lanes_[l].scopes.emplace_back();
    }
    for (std::size_t p = 0; p < args.size(); ++p) {
      bind_param(fn.params[p], args[p]);
    }
  }

  void run() {
    std::vector<int> active;
    for (std::size_t l = 0; l < lanes_.size(); ++l) {
      active.push_back(static_cast<int>(l));
    }
    exec_list(fn_.body, active);
  }

 private:
  const TranslationUnit& tu_;
  const FunctionDecl& fn_;
  devsim::GroupCtx& ctx_;
  float (*quantizer_)(float) = nullptr;
  std::vector<Lane> lanes_;
  std::vector<GlobalSpan<float>> greal_;
  std::vector<bool> greal_narrow_;  // shadow mode: round on load/store
  std::vector<GlobalSpan<int>> gint_;
  std::vector<LocalSpan<float>> locals_;
  // Stable names for local_alloc (LocalSpan keeps the const char*).
  std::vector<std::unique_ptr<std::string>> local_names_;

  void bind_param(const ParamDecl& p, const InterpArg& a) {
    Value v;
    switch (a.kind) {
      case InterpArg::Kind::kRealBuf:
        v.kind = Value::Kind::kPtr;
        v.space = 0;
        v.buf = static_cast<int>(greal_.size());
        greal_.push_back(ctx_.global_span(p.name.c_str(), a.real_data, a.n));
        greal_narrow_.push_back(quantizer_ != nullptr &&
                                is_narrow_type(p.type));
        break;
      case InterpArg::Kind::kIntBuf:
        v.kind = Value::Kind::kPtr;
        v.space = 1;
        v.buf = static_cast<int>(gint_.size());
        gint_.push_back(ctx_.global_span(p.name.c_str(), a.int_data, a.n));
        break;
      case InterpArg::Kind::kIntScalar:
        v = Value::of_int(a.int_value);
        break;
      case InterpArg::Kind::kRealScalar:
        v = Value::of_real(a.real_value);
        break;
    }
    for (auto& lane : lanes_) lane.scopes.front()[p.name] = v;
  }

  // --- environment ---

  Value* find_var(Lane& lane, const std::string& name) {
    for (auto it = lane.scopes.rbegin(); it != lane.scopes.rend(); ++it) {
      auto v = it->find(name);
      if (v != it->end()) return &v->second;
    }
    return nullptr;
  }

  void push_scopes() {
    for (auto& lane : lanes_) lane.scopes.emplace_back();
  }
  void pop_scopes() {
    for (auto& lane : lanes_) lane.scopes.pop_back();
  }

  // --- checked element accesses (always record traffic so the launch
  //     passes the counter-honesty gate) ---

  double load_elem(const Value& p, long idx, int lane, int line) {
    const long at = p.off + idx;
    const auto u = static_cast<std::size_t>(at < 0 ? -1 : at);
    ctx_.set_lane(lane);
    switch (p.space) {
      case 0: {
        ctx_.global_read_coalesced(sizeof(float));
        const double v = greal_[static_cast<std::size_t>(p.buf)].read(u);
        if (greal_narrow_[static_cast<std::size_t>(p.buf)]) {
          return static_cast<double>(quantizer_(static_cast<float>(v)));
        }
        return v;
      }
      case 1:
        ctx_.global_read_coalesced(sizeof(int));
        return static_cast<double>(
            gint_[static_cast<std::size_t>(p.buf)].read(u));
      case 2:
        ctx_.local_read(sizeof(float));
        return locals_[static_cast<std::size_t>(p.buf)].read(u);
    }
    fail(line, "bad pointer space");
  }

  void store_elem(const Value& p, long idx, double v, int lane, int line) {
    const long at = p.off + idx;
    const auto u = static_cast<std::size_t>(at < 0 ? -1 : at);
    ctx_.set_lane(lane);
    switch (p.space) {
      case 0:
        ctx_.global_write_coalesced(sizeof(float));
        if (greal_narrow_[static_cast<std::size_t>(p.buf)]) {
          v = static_cast<double>(quantizer_(static_cast<float>(v)));
        }
        greal_[static_cast<std::size_t>(p.buf)].write(u,
                                                      static_cast<float>(v));
        return;
      case 1:
        ctx_.global_write_coalesced(sizeof(int));
        gint_[static_cast<std::size_t>(p.buf)].write(u,
                                                     static_cast<int>(v));
        return;
      case 2:
        ctx_.local_write(sizeof(float));
        locals_[static_cast<std::size_t>(p.buf)].write(u,
                                                       static_cast<float>(v));
        return;
    }
    fail(line, "bad pointer space");
  }

  bool int_typed(const Value& p) const { return p.space == 1; }

  // --- statement execution over an active-lane set ---

  void exec_list(const std::vector<StmtPtr>& stmts, std::vector<int> active) {
    for (const auto& s : stmts) {
      prune(active);
      if (active.empty()) return;
      exec_stmt(*s, active);
    }
  }

  /// Drops lanes whose status left kActive (returned / broke / continued).
  void prune(std::vector<int>& active) const {
    std::vector<int> keep;
    for (int l : active) {
      if (lanes_[static_cast<std::size_t>(l)].status == LaneStatus::kActive) {
        keep.push_back(l);
      }
    }
    active.swap(keep);
  }

  void exec_stmt(const Stmt& s, const std::vector<int>& active) {
    switch (s.kind) {
      case Stmt::Kind::kDecl:
        exec_decl(s, active);
        return;
      case Stmt::Kind::kExpr:
        for (int l : active) eval(*s.cond, l);
        return;
      case Stmt::Kind::kIf: {
        std::vector<int> yes, no;
        for (int l : active) {
          (eval(*s.cond, l).truthy(s.line) ? yes : no).push_back(l);
        }
        if (!yes.empty()) {
          push_scopes();
          exec_list(s.body, yes);
          pop_scopes();
        }
        if (!no.empty() && !s.else_body.empty()) {
          push_scopes();
          exec_list(s.else_body, no);
          pop_scopes();
        }
        return;
      }
      case Stmt::Kind::kFor:
      case Stmt::Kind::kWhile:
        exec_loop(s, active);
        return;
      case Stmt::Kind::kBlock:
        push_scopes();
        exec_list(s.body, active);
        pop_scopes();
        return;
      case Stmt::Kind::kReturn:
        for (int l : active) {
          lanes_[static_cast<std::size_t>(l)].status = LaneStatus::kReturned;
        }
        return;
      case Stmt::Kind::kContinue:
        for (int l : active) {
          lanes_[static_cast<std::size_t>(l)].status = LaneStatus::kContinued;
        }
        return;
      case Stmt::Kind::kBreak:
        for (int l : active) {
          lanes_[static_cast<std::size_t>(l)].status = LaneStatus::kBroken;
        }
        return;
      case Stmt::Kind::kBarrier:
        // One group-wide sequence point regardless of how many lanes are
        // still active (barriers in the subset sit in uniform control flow).
        ctx_.group_barrier();
        return;
    }
  }

  void exec_decl(const Stmt& s, const std::vector<int>& active) {
    if (s.is_local) {
      // __local declarations are group-level: allocate once, bind the span
      // pointer into every active lane.
      if (active.empty()) return;
      const long n = eval(*s.array_extent, active.front()).as_int(s.line);
      local_names_.push_back(std::make_unique<std::string>(s.name));
      Value v;
      v.kind = Value::Kind::kPtr;
      v.space = 2;
      v.buf = static_cast<int>(locals_.size());
      locals_.push_back(ctx_.local_alloc<float>(
          static_cast<std::size_t>(n), local_names_.back()->c_str()));
      for (int l : active) {
        lanes_[static_cast<std::size_t>(l)].scopes.back()[s.name] = v;
      }
      return;
    }
    const bool real = s.type == "real_t" || s.type == "float" ||
                      s.type == "double" || is_narrow_type(s.type);
    const bool narrow = quantizer_ != nullptr && is_narrow_type(s.type);
    for (int l : active) {
      Value v;
      if (s.array_extent) {
        v.kind = Value::Kind::kArr;
        v.vec.assign(
            static_cast<std::size_t>(eval(*s.array_extent, l).as_int(s.line)),
            0.0);
      } else if (s.init) {
        const Value init = eval(*s.init, l);
        if (init.kind == Value::Kind::kVec ||
            init.kind == Value::Kind::kPtr) {
          v = init;  // floatN registers and pointer offsets keep their kind
        } else {
          v = real ? Value::of_real(init.as_real(s.line))
                   : Value::of_int(init.as_int(s.line));
        }
      } else {
        v = real ? Value::of_real(0) : Value::of_int(0);
      }
      v.narrow = narrow;
      if (narrow && v.kind == Value::Kind::kReal) {
        v.r = static_cast<double>(quantizer_(static_cast<float>(v.r)));
      }
      lanes_[static_cast<std::size_t>(l)].scopes.back()[s.name] = v;
    }
  }

  void exec_loop(const Stmt& s, const std::vector<int>& active) {
    push_scopes();
    if (s.kind == Stmt::Kind::kFor && s.for_init) {
      exec_stmt(*s.for_init, active);
    }
    std::vector<int> in_loop;
    for (int l : active) {
      if (eval(*s.cond, l).truthy(s.line)) in_loop.push_back(l);
    }
    // Lock-step: one body round per iteration for every lane still inside.
    // Trip counts differ per lane (nnz loops); finished lanes simply drop
    // out of the set while the rest continue.
    long guard = 0;
    while (!in_loop.empty()) {
      if (++guard > (1L << 24)) fail(s.line, "loop iteration limit exceeded");
      push_scopes();
      exec_list(s.body, in_loop);
      pop_scopes();
      std::vector<int> next;
      for (int l : in_loop) {
        Lane& lane = lanes_[static_cast<std::size_t>(l)];
        if (lane.status == LaneStatus::kReturned) continue;
        if (lane.status == LaneStatus::kBroken) {
          lane.status = LaneStatus::kActive;
          continue;
        }
        lane.status = LaneStatus::kActive;  // clears kContinued
        if (s.kind == Stmt::Kind::kFor && s.step) eval(*s.step, l);
        if (eval(*s.cond, l).truthy(s.line)) next.push_back(l);
      }
      in_loop.swap(next);
    }
    pop_scopes();
  }

  // --- expression evaluation (per lane) ---

  Value eval(const Expr& e, int lane_id) {
    Lane& lane = lanes_[static_cast<std::size_t>(lane_id)];
    switch (e.kind) {
      case Expr::Kind::kIntLit:
        return Value::of_int(e.ival);
      case Expr::Kind::kFloatLit:
        return Value::of_real(std::strtod(e.name.c_str(), nullptr));
      case Expr::Kind::kIdent: {
        if (Value* v = find_var(lane, e.name)) return *v;
        auto d = tu_.defines.find(e.name);
        if (d != tu_.defines.end()) {
          return Value::of_int(std::strtol(d->second.c_str(), nullptr, 10));
        }
        fail(e.line, "unknown identifier '" + e.name + "'");
      }
      case Expr::Kind::kUnary:
        return eval_unary(e, lane_id);
      case Expr::Kind::kBinary:
        return eval_binary(e, lane_id);
      case Expr::Kind::kTernary:
        return eval(*e.kids[eval(*e.kids[0], lane_id).truthy(e.line) ? 1 : 2],
                    lane_id);
      case Expr::Kind::kCall:
        return eval_call(e, lane_id);
      case Expr::Kind::kIndex: {
        const Value base = eval(*e.kids[0], lane_id);
        const long idx = eval(*e.kids[1], lane_id).as_int(e.line);
        if (base.kind == Value::Kind::kPtr) {
          const double v = load_elem(base, idx, lane_id, e.line);
          return int_typed(base) ? Value::of_int(static_cast<long>(v))
                                 : Value::of_real(v);
        }
        // Private array: the base must be a plain identifier so we can
        // read the lane's own storage instead of the evaluated copy.
        Value* arr = array_lvalue(*e.kids[0], lane_id, e.line);
        if (idx < 0 || static_cast<std::size_t>(idx) >= arr->vec.size()) {
          return Value::of_real(0);  // suppressed, matching checked spans
        }
        return Value::of_real(arr->vec[static_cast<std::size_t>(idx)]);
      }
      case Expr::Kind::kMember: {
        const Value base = eval(*e.kids[0], lane_id);
        if (base.kind != Value::Kind::kVec || e.name.size() != 2 ||
            e.name[0] != 's') {
          fail(e.line, "unsupported member '." + e.name + "'");
        }
        const long c = std::strtol(e.name.c_str() + 1, nullptr, 16);
        if (c < 0 || static_cast<std::size_t>(c) >= base.vec.size()) {
          fail(e.line, "vector component out of range");
        }
        return Value::of_real(base.vec[static_cast<std::size_t>(c)]);
      }
      case Expr::Kind::kCast: {
        const Value v = eval(*e.kids[0], lane_id);
        if (is_narrow_type(e.name)) {
          double r = v.as_real(e.line);
          if (quantizer_) {
            r = static_cast<double>(quantizer_(static_cast<float>(r)));
          }
          return Value::of_real(r);
        }
        const bool real = e.name == "real_t" || e.name == "float" ||
                          e.name == "double";
        return real ? Value::of_real(v.as_real(e.line))
                    : Value::of_int(v.as_int(e.line));
      }
    }
    fail(e.line, "unsupported expression");
  }

  Value* array_lvalue(const Expr& e, int lane_id, int line) {
    if (e.kind != Expr::Kind::kIdent) {
      fail(line, "array access through a non-identifier base");
    }
    Value* v = find_var(lanes_[static_cast<std::size_t>(lane_id)], e.name);
    if (!v || v->kind != Value::Kind::kArr) {
      fail(line, "'" + e.name + "' is not a private array");
    }
    return v;
  }

  Value eval_unary(const Expr& e, int lane_id) {
    const std::string& op = e.name;
    if (op == "-") {
      const Value v = eval(*e.kids[0], lane_id);
      return v.kind == Value::Kind::kInt ? Value::of_int(-v.i)
                                         : Value::of_real(-v.as_real(e.line));
    }
    if (op == "!") {
      return Value::of_int(eval(*e.kids[0], lane_id).truthy(e.line) ? 0 : 1);
    }
    if (op == "++" || op == "--") {
      if (e.kids[0]->kind != Expr::Kind::kIdent) {
        fail(e.line, "++/-- on a non-identifier");
      }
      Value* v = find_var(lanes_[static_cast<std::size_t>(lane_id)],
                          e.kids[0]->name);
      if (!v) fail(e.line, "unknown identifier '" + e.kids[0]->name + "'");
      if (v->kind == Value::Kind::kInt) {
        v->i += op == "++" ? 1 : -1;
      } else {
        v->r += op == "++" ? 1 : -1;
      }
      return *v;  // pre/post distinction never observed in the subset
    }
    fail(e.line, "unsupported unary '" + op + "'");
  }

  Value eval_binary(const Expr& e, int lane_id) {
    const std::string& op = e.name;
    if (op == "=" || op == "+=" || op == "-=" || op == "*=" || op == "/=") {
      return eval_assign(e, lane_id);
    }
    if (op == "&&") {
      if (!eval(*e.kids[0], lane_id).truthy(e.line)) return Value::of_int(0);
      return Value::of_int(eval(*e.kids[1], lane_id).truthy(e.line) ? 1 : 0);
    }
    if (op == "||") {
      if (eval(*e.kids[0], lane_id).truthy(e.line)) return Value::of_int(1);
      return Value::of_int(eval(*e.kids[1], lane_id).truthy(e.line) ? 1 : 0);
    }
    const Value a = eval(*e.kids[0], lane_id);
    const Value b = eval(*e.kids[1], lane_id);
    // Pointer offset arithmetic: `(tile + z * K)`, `(Y + d)`.
    if (a.kind == Value::Kind::kPtr || b.kind == Value::Kind::kPtr) {
      const Value& p = a.kind == Value::Kind::kPtr ? a : b;
      const Value& o = a.kind == Value::Kind::kPtr ? b : a;
      if (op == "+" || (op == "-" && a.kind == Value::Kind::kPtr)) {
        Value r = p;
        r.off += (op == "+" ? 1 : -1) * o.as_int(e.line);
        return r;
      }
      fail(e.line, "unsupported pointer operator '" + op + "'");
    }
    const bool ints =
        a.kind == Value::Kind::kInt && b.kind == Value::Kind::kInt;
    if (op == "<" || op == "<=" || op == ">" || op == ">=" || op == "==" ||
        op == "!=") {
      const double x = a.as_real(e.line), y = b.as_real(e.line);
      bool t = false;
      if (op == "<") t = x < y;
      if (op == "<=") t = x <= y;
      if (op == ">") t = x > y;
      if (op == ">=") t = x >= y;
      if (op == "==") t = x == y;
      if (op == "!=") t = x != y;
      return Value::of_int(t ? 1 : 0);
    }
    if (op == "%") {
      if (!ints) fail(e.line, "'%' on non-integers");
      if (b.i == 0) fail(e.line, "modulo by zero");
      return Value::of_int(a.i % b.i);
    }
    if (ints) {
      if (op == "+") return Value::of_int(a.i + b.i);
      if (op == "-") return Value::of_int(a.i - b.i);
      if (op == "*") return Value::of_int(a.i * b.i);
      if (op == "/") {
        if (b.i == 0) fail(e.line, "integer division by zero");
        return Value::of_int(a.i / b.i);
      }
    } else {
      const double x = a.as_real(e.line), y = b.as_real(e.line);
      if (op == "+") return Value::of_real(x + y);
      if (op == "-") return Value::of_real(x - y);
      if (op == "*") return Value::of_real(x * y);
      if (op == "/") return Value::of_real(x / y);
    }
    fail(e.line, "unsupported operator '" + op + "'");
  }

  Value eval_assign(const Expr& e, int lane_id) {
    const std::string& op = e.name;
    const Expr& lhs = *e.kids[0];
    auto combine = [&](double old, double rhs) {
      if (op == "=") return rhs;
      if (op == "+=") return old + rhs;
      if (op == "-=") return old - rhs;
      if (op == "*=") return old * rhs;
      return old / rhs;  // "/="
    };
    if (lhs.kind == Expr::Kind::kIdent) {
      Value* v =
          find_var(lanes_[static_cast<std::size_t>(lane_id)], lhs.name);
      if (!v) fail(e.line, "unknown identifier '" + lhs.name + "'");
      const Value rhs = eval(*e.kids[1], lane_id);
      if (v->kind == Value::Kind::kPtr || rhs.kind == Value::Kind::kPtr) {
        if (op != "=") fail(e.line, "compound assignment on a pointer");
        *v = rhs;
        return *v;
      }
      if (v->kind == Value::Kind::kInt) {
        v->i = static_cast<long>(
            combine(static_cast<double>(v->i), rhs.as_real(e.line)));
      } else {
        v->r = combine(v->r, rhs.as_real(e.line));
        if (v->narrow && quantizer_) {
          v->r = static_cast<double>(quantizer_(static_cast<float>(v->r)));
        }
      }
      return *v;
    }
    if (lhs.kind != Expr::Kind::kIndex) {
      fail(e.line, "unsupported assignment target");
    }
    const Value base = eval(*lhs.kids[0], lane_id);
    const long idx = eval(*lhs.kids[1], lane_id).as_int(e.line);
    const double rhs = eval(*e.kids[1], lane_id).as_real(e.line);
    if (base.kind == Value::Kind::kPtr) {
      double result = rhs;
      if (op != "=") {
        result = combine(load_elem(base, idx, lane_id, e.line), rhs);
      }
      store_elem(base, idx, result, lane_id, e.line);
      return Value::of_real(result);
    }
    Value* arr = array_lvalue(*lhs.kids[0], lane_id, e.line);
    if (idx < 0 || static_cast<std::size_t>(idx) >= arr->vec.size()) {
      return Value::of_real(rhs);  // suppressed out-of-range private access
    }
    double& slot = arr->vec[static_cast<std::size_t>(idx)];
    slot = op == "=" ? rhs : combine(slot, rhs);
    if (arr->narrow && quantizer_) {
      slot = static_cast<double>(quantizer_(static_cast<float>(slot)));
    }
    return Value::of_real(slot);
  }

  Value eval_call(const Expr& e, int lane_id) {
    const std::string& name = e.name;
    auto arg = [&](std::size_t i) { return eval(*e.kids[i], lane_id); };
    if (name == "get_local_id") return Value::of_int(lane_id);
    if (name == "get_group_id") {
      return Value::of_int(static_cast<long>(ctx_.group_id()));
    }
    if (name == "get_num_groups") return Value::of_int(num_groups_);
    if (name == "get_local_size") return Value::of_int(ctx_.group_size());
    if (name == "get_global_id") {
      return Value::of_int(static_cast<long>(ctx_.group_id()) *
                               ctx_.group_size() +
                           lane_id);
    }
    if (name == "min" || name == "max") {
      const Value a = arg(0), b = arg(1);
      if (a.kind == Value::Kind::kInt && b.kind == Value::Kind::kInt) {
        return Value::of_int(name == "min" ? std::min(a.i, b.i)
                                           : std::max(a.i, b.i));
      }
      const double x = a.as_real(e.line), y = b.as_real(e.line);
      return Value::of_real(name == "min" ? std::min(x, y) : std::max(x, y));
    }
    if (name == "sqrt") return Value::of_real(std::sqrt(arg(0).as_real(e.line)));
    if (name == "fabs") return Value::of_real(std::fabs(arg(0).as_real(e.line)));
    if (name.rfind("vload", 0) == 0) {
      const long n = std::strtol(name.c_str() + 5, nullptr, 10);
      if (n < 2 || n > 16) fail(e.line, "unsupported '" + name + "'");
      const long off = arg(0).as_int(e.line);
      const Value p = arg(1);
      if (p.kind != Value::Kind::kPtr) {
        fail(e.line, "vload from a non-pointer");
      }
      Value v;
      v.kind = Value::Kind::kVec;
      for (long c = 0; c < n; ++c) {
        v.vec.push_back(load_elem(p, off * n + c, lane_id, e.line));
      }
      return v;
    }
    // In-file helper function (the lane-0 Cholesky solve).
    for (const auto& fn : tu_.functions) {
      if (fn.name != name || fn.is_kernel) continue;
      return call_helper(fn, e, lane_id);
    }
    fail(e.line, "unknown function '" + name + "'");
  }

  Value call_helper(const FunctionDecl& fn, const Expr& e, int lane_id) {
    if (fn.params.size() != e.kids.size()) {
      fail(e.line, "wrong argument count for '" + fn.name + "'");
    }
    Lane& lane = lanes_[static_cast<std::size_t>(lane_id)];
    std::map<std::string, Value> frame;
    for (std::size_t p = 0; p < fn.params.size(); ++p) {
      frame[fn.params[p].name] = eval(*e.kids[p], lane_id);
    }
    // Helpers in the subset are barrier-free, so a single lane can run the
    // whole body to completion on a swapped-in environment.
    std::vector<std::map<std::string, Value>> saved;
    saved.swap(lane.scopes);
    lane.scopes.push_back(std::move(frame));
    const LaneStatus saved_status = lane.status;
    exec_list(fn.body, {lane_id});
    lane.status = saved_status;
    lane.scopes = std::move(saved);
    return Value::of_int(0);
  }

 public:
  long num_groups_ = 1;
};

}  // namespace

InterpKernel::InterpKernel(const std::string& source,
                           const std::string& kernel_name)
    : tu_(parse_translation_unit(source)) {
  for (const auto& fn : tu_.functions) {
    if (fn.is_kernel && fn.name == kernel_name) {
      fn_ = &fn;
      return;
    }
  }
  throw ParseError{0, "kernel '" + kernel_name + "' not found in source"};
}

void InterpKernel::run_group(devsim::GroupCtx& ctx,
                             const std::vector<InterpArg>& args) const {
  Machine m(tu_, *fn_, ctx, args, quantizer_);
  m.num_groups_ = num_groups_hint_ > 0 ? num_groups_hint_ : 1;
  m.run();
}

}  // namespace alsmf::ocl::analyze
