// Checked interpreter for the generated-kernel OpenCL-C subset.
//
// Executes a parsed kernel directly from its AST on the devsim device: one
// call interprets all lanes of one work-group in lock-step (statement by
// statement over a per-lane environment vector, SIMT-style divergence via
// active-lane sets), routing every global/local element access through the
// GroupCtx checked spans. Under LaunchConfig.validate the shadow-memory
// checker therefore sees the *mutated kernel text itself* — the dynamic leg
// of the defect-injection corpus (tests/ocl/defects/) that the static
// verifier (analyze/verify/) must agree with.
//
// The interpreter supports exactly the subset the generator emits plus the
// corpus mutations: for/if/while/return/continue/break, scalar and array
// declarations (__local included), pointer offset arithmetic, vloadN and
// .sN component access, ternaries, calls to in-file helper functions, and
// the builtins get_local_id / get_group_id / get_global_id /
// get_num_groups / min / max / sqrt / fabs. Anything else throws
// ParseError, mirroring the lowering's fail-closed policy.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "devsim/context.hpp"
#include "ocl/analyze/ast.hpp"

namespace alsmf::ocl::analyze {

/// One kernel argument binding. Buffers are borrowed, not owned; they must
/// outlive the launch.
struct InterpArg {
  enum class Kind { kRealBuf, kIntBuf, kIntScalar, kRealScalar };
  Kind kind = Kind::kIntScalar;
  float* real_data = nullptr;
  int* int_data = nullptr;
  std::size_t n = 0;
  long int_value = 0;
  double real_value = 0;

  static InterpArg real_buffer(std::vector<float>& b) {
    InterpArg a;
    a.kind = Kind::kRealBuf;
    a.real_data = b.data();
    a.n = b.size();
    return a;
  }
  static InterpArg int_buffer(std::vector<int>& b) {
    InterpArg a;
    a.kind = Kind::kIntBuf;
    a.int_data = b.data();
    a.n = b.size();
    return a;
  }
  static InterpArg int_scalar(long v) {
    InterpArg a;
    a.kind = Kind::kIntScalar;
    a.int_value = v;
    return a;
  }
  static InterpArg real_scalar(double v) {
    InterpArg a;
    a.kind = Kind::kRealScalar;
    a.real_value = v;
    return a;
  }
};

/// A parsed kernel ready for interpretation. Parsing happens once in the
/// constructor (throws ParseError on unsupported source or a missing
/// kernel); run_group is then called per work-group from Device::launch.
class InterpKernel {
 public:
  InterpKernel(const std::string& source, const std::string& kernel_name);

  const std::string& name() const { return fn_->name; }
  std::size_t num_args() const { return fn_->params.size(); }

  /// GroupCtx does not carry the launch grid, so the value returned by
  /// get_num_groups(0) must be declared before launching.
  void set_num_groups(long n) { num_groups_hint_ = n; }

  /// Shadow-precision mode (the dynamic witness leg of the precision
  /// certifier, analyze/precision/shadow.hpp): when set, every element of
  /// a buffer bound to a storage_t / half / bfloat16 parameter rounds
  /// through `quantize` on load and store, and every assignment into a
  /// narrow-typed declaration rounds too — so the fp32-backed spans behave
  /// like narrow storage while all real_t arithmetic stays exact. Default
  /// off: plain interpretation is unchanged.
  void set_storage_quantizer(float (*quantize)(float)) {
    quantizer_ = quantize;
  }

  /// Interprets one work-group (every lane of ctx.group_size()) in
  /// lock-step. `args` must match the kernel signature positionally.
  void run_group(devsim::GroupCtx& ctx,
                 const std::vector<InterpArg>& args) const;

 private:
  TranslationUnit tu_;
  const FunctionDecl* fn_ = nullptr;
  long num_groups_hint_ = 0;
  float (*quantizer_)(float) = nullptr;
};

}  // namespace alsmf::ocl::analyze
