// Lowering from the OpenCL-C AST to the access-pattern IR. The emission
// rules mirror the devsim accounting in als/kernels.cpp at *traversal*
// granularity: a guarded lane load of a gathered y row is one traversal of
// k·sizeof(real) bytes, the unrolled k-element sweep over the same row is a
// second, and a statement that consumes a stream variable without touching
// the stream again replays it a third time. The static profile
// (static_profile.cpp) prices those traversals through the same device
// profiles the dynamic counters use, which is what makes the
// static/dynamic agreement tests possible.
#include "ocl/analyze/ir.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "ocl/analyze/lexer.hpp"

namespace alsmf::ocl::analyze {

double Freq::eval(double rows, double omega, double chunks,
                  double chunk_avg) const {
  double v = factor;
  for (int i = 0; i < per_row; ++i) v *= rows;
  for (int i = 0; i < per_nnz; ++i) v *= omega;
  for (int i = 0; i < per_chunk; ++i) v *= chunks;
  for (int i = 0; i < chunk_body; ++i) v *= chunk_avg;
  return v;
}

long KernelIR::declared_local_bytes() const {
  long total = 0;
  for (const auto& l : locals) {
    if (l.elems < 0) return -1;
    total += l.elems * l.elem_bytes;
  }
  return total;
}

int KernelIR::max_bank_conflict() const {
  int worst = 1;
  for (const auto& r : refs) {
    if (r.space == MemSpace::kLocal && r.bank_conflict > worst) {
      worst = r.bank_conflict;
    }
  }
  return worst;
}

const char* to_string(Coalescing c) {
  switch (c) {
    case Coalescing::kUnitStride: return "unit-stride";
    case Coalescing::kStrided: return "strided";
    case Coalescing::kGathered: return "gathered";
    case Coalescing::kUniform: return "uniform";
  }
  return "?";
}

const char* to_string(TrafficIR::Kind k) {
  switch (k) {
    case TrafficIR::Kind::kGatherTraversal: return "gather-traversal";
    case TrafficIR::Kind::kLocalTraversal: return "local-traversal";
    case TrafficIR::Kind::kStreamRead: return "stream-read";
    case TrafficIR::Kind::kStreamWrite: return "stream-write";
    case TrafficIR::Kind::kScatterWrite: return "scatter-write";
    case TrafficIR::Kind::kLocalRead: return "local-read";
    case TrafficIR::Kind::kLocalWrite: return "local-write";
    case TrafficIR::Kind::kPrivateUpdate: return "private-update";
  }
  return "?";
}

const char* to_string(LoopIR::Kind k) {
  switch (k) {
    case LoopIR::Kind::kRowStride: return "row-stride";
    case LoopIR::Kind::kNnz: return "nnz";
    case LoopIR::Kind::kChunked: return "chunked";
    case LoopIR::Kind::kChunkBody: return "chunk-body";
    case LoopIR::Kind::kLanePart: return "lane-partitioned";
    case LoopIR::Kind::kFixed: return "fixed";
    case LoopIR::Kind::kDataDep: return "data-dependent";
  }
  return "?";
}

namespace {

long igcd(long a, long b) {
  a = a < 0 ? -a : a;
  b = b < 0 ? -b : b;
  while (b != 0) {
    const long t = a % b;
    a = b;
    b = t;
  }
  return a;
}

/// Affine form c + Σ coeff·term over symbolic terms. Term tags:
///   "lane" / "group" / "ngroups" / "row"  — work-item identity
///   "loop#<id>"                           — a surrounding loop variable
///   "seg#<n>"                             — an unscaled global int load
///                                           (CSR segment pointers)
///   "gather#<n>"                          — a global int load scaled by a
///                                           constant ≥ 2 (row addressing)
struct Affine {
  bool ok = true;  // false: contains something non-affine ("?" terms)
  long c = 0;
  std::map<std::string, long> t;

  long coeff(const std::string& k) const {
    auto it = t.find(k);
    return it == t.end() ? 0 : it->second;
  }
  bool has_prefix(const char* p) const {
    for (const auto& [k, v] : t) {
      if (v != 0 && k.rfind(p, 0) == 0) return true;
    }
    return false;
  }
};

Affine aff_const(long c) {
  Affine a;
  a.c = c;
  return a;
}

Affine aff_term(const std::string& tag, long coeff = 1) {
  Affine a;
  a.t[tag] = coeff;
  return a;
}

Affine aff_unknown() {
  Affine a;
  a.ok = false;
  return a;
}

Affine aff_add(const Affine& x, const Affine& y, long sign = 1) {
  Affine r = x;
  r.ok = x.ok && y.ok;
  r.c += sign * y.c;
  for (const auto& [k, v] : y.t) {
    r.t[k] += sign * v;
    if (r.t[k] == 0) r.t.erase(k);
  }
  return r;
}

Affine aff_scale(const Affine& x, long s) {
  Affine r = x;
  r.c *= s;
  for (auto& [k, v] : r.t) v *= s;
  if (s == 0) r.t.clear();
  return r;
}

bool aff_is_const(const Affine& a) { return a.ok && a.t.empty(); }

AffineIdx aff_export(const Affine& a) {
  AffineIdx out;
  out.ok = a.ok;
  out.c = a.c;
  out.terms = a.t;
  return out;
}

/// Serializes the non-constant part for fold/dedupe keys.
std::string aff_key(const Affine& a) {
  std::ostringstream os;
  for (const auto& [k, v] : a.t) {
    if (v != 0) os << k << "*" << v << "+";
  }
  if (!a.ok) os << "?";
  return os.str();
}

/// Symbolic value of a scalar variable.
struct Sym {
  enum class Kind { kNone, kAffine, kRowNnz, kChunkSize, kStreamVar };
  Kind kind = Kind::kNone;
  Affine aff;
  // Stream variables: a value loaded from a data stream.
  std::string buffer;
  MemSpace space = MemSpace::kGlobal;
  bool gathered = false;
  bool guarded = false;    // from a `(lx < G) ? buf[lx] : 0` lane load
  bool from_vload = false;
  long guard = 0;
  // RowNnz: which offsets buffer / lower-offset load it derives from.
  std::string begin_seg;
  // ChunkSize: the RowNnz variable and chunked-loop id inside the min().
  std::string nnz_var;
  long chunk_base = -1;
};

struct BufRef {
  bool ok = false;
  std::string buffer;
  std::string type;  // element type ("real_t", "int", ...)
  MemSpace space = MemSpace::kGlobal;
  int elem_bytes = 4;
  Affine base;  // pointer arithmetic folded into the index
};

bool is_real_type(const std::string& t) {
  return t == "real_t" || t == "float" || t == "double" || t == "storage_t" ||
         t == "half" || t == "bfloat16";
}

struct LoopFrame {
  LoopIR::Kind kind = LoopIR::Kind::kFixed;
  std::string var;
  long id = 0;
  double trips = 1;      // kFixed: (possibly averaged) trip count
  double avg_value = 0;  // kFixed: mean value of the loop variable
  long lane_span = 0;    // kLanePart with a constant bound: elements covered
  bool lane_region = false;  // kLanePart over a chunk: per-element freq
};

/// A pending traversal fold: several references to the same buffer/base
/// merged into one contiguous traversal (unrolled constant offsets, vloadN
/// lanes, or a unit-coefficient fixed loop).
struct Fold {
  TrafficIR::Kind kind = TrafficIR::Kind::kStreamRead;
  std::string buffer;
  int elem_bytes = 4;
  double span_elems = 0;  // loop folds: trip count
  long lo = 0, hi = -1;   // const-offset folds: inclusive offset range
  bool range_mode = false;
  bool gathered = false;
  bool lane_part = false;
  Freq freq;
  int line = 0;
};

class KernelLowerer {
 public:
  KernelLowerer(const TranslationUnit& tu, const FunctionDecl& fn)
      : tu_(tu), fn_(fn) {}

  KernelIR run() {
    out_.name = fn_.name;
    eval_define("K", tu_.defines, out_.k);
    eval_define("WS", tu_.defines, out_.ws);
    eval_define("TILE_ROWS", tu_.defines, out_.tile_rows_define);
    eval_define("CG_ITERS", tu_.defines, out_.cg_iters);
    if (tu_.storage_t_bytes != 0) {
      out_.storage_bytes = static_cast<int>(tu_.storage_t_bytes);
      out_.storage_base = tu_.storage_t_base;
    }

    for (const auto& p : fn_.params) {
      ArgIR a;
      a.name = p.name;
      a.type = p.type;
      a.is_pointer = p.is_pointer;
      a.is_global = p.is_global;
      a.line = p.line;
      out_.args.push_back(a);
      if (p.is_pointer) {
        BufRef b;
        b.ok = true;
        b.buffer = p.name;
        b.type = p.type;
        b.space = p.is_local ? MemSpace::kLocal : MemSpace::kGlobal;
        b.elem_bytes = elem_width(p.type);
        buffers_[p.name] = b;
      }
    }

    out_.batched_mapping = has_row_stride_loop(fn_.body);
    if (!out_.batched_mapping) freq_.per_row = 1;

    for (const auto& s : fn_.body) stmt(*s);
    flush_folds();
    out_.has_unrolled_accumulators = scalar_accumulators_.size() >= 4;
    out_.interval_count = interval_ + 1;
    return std::move(out_);
  }

 private:
  /// Element width of a declared type. `storage_t` resolves through the
  /// translation unit's storage typedef (mixed-precision flavors store
  /// factors at half width while computing in real_t).
  int elem_width(const std::string& type) const {
    if (type == "storage_t" && tu_.storage_t_bytes != 0) {
      return static_cast<int>(tu_.storage_t_bytes);
    }
    const int bytes = static_cast<int>(type_size(type, tu_.real_t_bytes));
    return bytes != 0 ? bytes : 4;
  }

  // ---- identifier usage ----
  void mark_used(const std::string& name) {
    for (auto& a : out_.args) {
      if (a.name == name) a.used = true;
    }
  }
  void mark_used_expr(const Expr& e) {
    if (e.kind == Expr::Kind::kIdent) mark_used(e.name);
    for (const auto& k : e.kids) {
      if (k) mark_used_expr(*k);
    }
  }

  // ---- pretty printing (RefIR::index, loop bounds) ----
  std::string print(const Expr& e) const {
    std::ostringstream os;
    switch (e.kind) {
      case Expr::Kind::kIntLit: os << e.ival; break;
      case Expr::Kind::kFloatLit: os << e.name; break;
      case Expr::Kind::kIdent: os << e.name; break;
      case Expr::Kind::kUnary:
        os << e.name << print(*e.kids[0]);
        break;
      case Expr::Kind::kBinary:
        os << print(*e.kids[0]) << " " << e.name << " " << print(*e.kids[1]);
        break;
      case Expr::Kind::kTernary:
        os << print(*e.kids[0]) << " ? " << print(*e.kids[1]) << " : "
           << print(*e.kids[2]);
        break;
      case Expr::Kind::kCall: {
        os << e.name << "(";
        for (std::size_t i = 0; i < e.kids.size(); ++i) {
          if (i) os << ", ";
          os << print(*e.kids[i]);
        }
        os << ")";
        break;
      }
      case Expr::Kind::kIndex:
        os << print(*e.kids[0]) << "[" << print(*e.kids[1]) << "]";
        break;
      case Expr::Kind::kMember:
        os << print(*e.kids[0]) << "." << e.name;
        break;
      case Expr::Kind::kCast:
        os << "(" << e.name << ")" << print(*e.kids[0]);
        break;
    }
    return os.str();
  }

  // ---- affine evaluation (with load side effects) ----
  Affine affine_of(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kIntLit:
        return aff_const(e.ival);
      case Expr::Kind::kIdent: {
        long dv = 0;
        auto it = env_.find(e.name);
        if (it != env_.end()) {
          const Sym& s = it->second;
          if (s.kind == Sym::Kind::kAffine) return s.aff;
          return aff_unknown();
        }
        if (eval_define(e.name, tu_.defines, dv)) return aff_const(dv);
        return aff_unknown();
      }
      case Expr::Kind::kUnary:
        if (e.name == "-") return aff_scale(affine_of(*e.kids[0]), -1);
        if (e.name == "++" || e.name == "--") return affine_of(*e.kids[0]);
        return aff_unknown();
      case Expr::Kind::kBinary: {
        if (e.name == "+") {
          return aff_add(affine_of(*e.kids[0]), affine_of(*e.kids[1]));
        }
        if (e.name == "-") {
          return aff_add(affine_of(*e.kids[0]), affine_of(*e.kids[1]), -1);
        }
        if (e.name == "*") {
          Affine l = affine_of(*e.kids[0]);
          Affine r = affine_of(*e.kids[1]);
          if (aff_is_const(r)) return scaled(l, r.c);
          if (aff_is_const(l)) return scaled(r, l.c);
          return aff_unknown();
        }
        return aff_unknown();
      }
      case Expr::Kind::kCast:
        return affine_of(*e.kids[0]);
      case Expr::Kind::kCall: {
        if (e.name == "get_local_id") return aff_term("lane");
        if (e.name == "get_group_id") return aff_term("group");
        if (e.name == "get_num_groups") return aff_term("ngroups");
        if (e.name == "get_global_id") return aff_term("row");
        return aff_unknown();
      }
      case Expr::Kind::kIndex: {
        // An int load used in address arithmetic: a CSR segment value.
        const BufRef b = resolve_buffer(*e.kids[0]);
        if (b.ok && b.space == MemSpace::kGlobal) {
          emit_access(e, /*is_store=*/false);
          const std::string tag = "seg#" + std::to_string(seg_id_++);
          seg_buffer_[tag] = b.buffer;
          IndirectIR ind;
          ind.tag = tag;
          ind.buffer = b.buffer;
          ind.load_index =
              aff_export(aff_add(b.base, affine_of_probe(*e.kids[1])));
          out_.indirects.push_back(ind);
          return aff_term(tag);
        }
        return aff_unknown();
      }
      default:
        return aff_unknown();
    }
  }

  /// Scaling an unscaled segment value by a constant ≥ 2 turns it into a
  /// gather base (col_idx[..] * K row addressing).
  Affine scaled(const Affine& a, long s) {
    if (s >= 2 && a.ok && a.c == 0 && a.t.size() == 1 &&
        a.t.begin()->second == 1 && a.t.begin()->first.rfind("seg#", 0) == 0) {
      const std::string tag = "gather#" + std::to_string(gather_id_++);
      // The gather inherits the consumed segment load's provenance.
      if (const IndirectIR* seg =
              out_.indirect_by_tag(a.t.begin()->first)) {
        IndirectIR ind = *seg;
        ind.tag = tag;
        ind.scale = s;
        out_.indirects.push_back(ind);
      }
      return aff_term(tag);
    }
    return aff_scale(a, s);
  }

  BufRef resolve_buffer(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kIdent: {
        auto it = buffers_.find(e.name);
        if (it != buffers_.end()) return it->second;
        return {};
      }
      case Expr::Kind::kBinary: {
        // (Y + d), (tile + z * K): pointer arithmetic folds into the base.
        if (e.name == "+") {
          BufRef b = resolve_buffer(*e.kids[0]);
          if (b.ok) {
            b.base = aff_add(b.base, affine_of(*e.kids[1]));
            return b;
          }
          b = resolve_buffer(*e.kids[1]);
          if (b.ok) b.base = aff_add(b.base, affine_of(*e.kids[0]));
          return b;
        }
        return {};
      }
      case Expr::Kind::kCast:
        return resolve_buffer(*e.kids[0]);
      default:
        return {};
    }
  }

  // ---- loop frames / frequency ----
  bool has_row_stride_loop(const std::vector<StmtPtr>& body) const {
    for (const auto& sp : body) {
      if (!sp) continue;
      const Stmt& s = *sp;
      if (s.kind == Stmt::Kind::kFor && s.step &&
          s.step->kind == Expr::Kind::kBinary && s.step->name == "+=" &&
          s.step->kids[1]->kind == Expr::Kind::kIdent) {
        // `u += stride`: a variable (not #define'd) stride is the
        // group-count row loop; `p += WS` steps by a macro constant.
        if (tu_.defines.count(s.step->kids[1]->name) == 0) return true;
      }
      if (s.kind == Stmt::Kind::kFor || s.kind == Stmt::Kind::kIf ||
          s.kind == Stmt::Kind::kBlock) {
        if (has_row_stride_loop(s.body)) return true;
        if (has_row_stride_loop(s.else_body)) return true;
      }
    }
    return false;
  }

  bool freq_hot() const {
    return freq_.per_nnz > 0 || freq_.per_chunk > 0 || freq_.chunk_body > 0;
  }

  const LoopFrame* innermost_fixed() const {
    for (auto it = loops_.rbegin(); it != loops_.rend(); ++it) {
      if (it->kind == LoopIR::Kind::kFixed) return &*it;
    }
    return nullptr;
  }

  const LoopFrame* lane_const_frame(const Affine& idx) const {
    for (auto it = loops_.rbegin(); it != loops_.rend(); ++it) {
      if (it->kind == LoopIR::Kind::kLanePart && it->lane_span > 0 &&
          idx.coeff("lpvar#" + std::to_string(it->id)) == 1) {
        return &*it;
      }
    }
    return nullptr;
  }

  bool in_lane_region() const {
    for (const auto& f : loops_) {
      if (f.lane_region) return true;
    }
    return false;
  }

  long current_lane_bound() const {
    long bound = 0;
    for (const long b : lane_bound_stack_) {
      if (bound == 0 || b < bound) bound = b;
    }
    return bound;
  }

  std::vector<long> current_loop_path() const {
    std::vector<long> path;
    path.reserve(loops_.size());
    for (const auto& f : loops_) path.push_back(f.id);
    return path;
  }

  // ---- reference + traffic emission ----
  /// Lane coefficient of an index. Lane-partitioned loop variables carry
  /// their lane term explicitly (p = lx + n·WS → {lane:1, lpvar:1}), so
  /// the direct lane coefficient is the whole story.
  long lane_coeff_of(const Affine& idx) const { return idx.coeff("lane"); }

  Coalescing classify(const Affine& idx) const {
    if (idx.has_prefix("gather#")) return Coalescing::kGathered;
    for (const auto& [k, v] : idx.t) {
      if (v != 0 && v != 1 && k.rfind("seg#", 0) == 0) {
        return Coalescing::kGathered;
      }
    }
    const long lane = lane_coeff_of(idx);
    if (lane == 1 || lane == -1) return Coalescing::kUnitStride;
    if (lane != 0) return Coalescing::kStrided;
    const long row = idx.coeff("row");
    if (row != 0 && row != 1 && row != -1) return Coalescing::kStrided;
    return Coalescing::kUniform;
  }

  int bank_conflict_of(const Affine& idx) const {
    const long lane = lane_coeff_of(idx);
    if (lane == 0) return 1;  // broadcast
    const long ws = out_.ws > 0 ? std::min<long>(out_.ws, 32) : 32;
    long g = igcd(lane, 32);
    long degree = ws * g / 32;
    return static_cast<int>(std::max<long>(degree, 1));
  }

  TrafficIR::Kind traffic_kind(const BufRef& b, const Affine& idx,
                               bool is_store, bool gathered) const {
    if (b.space == MemSpace::kLocal) {
      return is_store ? TrafficIR::Kind::kLocalWrite
                      : TrafficIR::Kind::kLocalRead;
    }
    if (is_store) {
      const long row = idx.coeff("row");
      return (gathered || row > 1 || row < -1)
                 ? TrafficIR::Kind::kScatterWrite
                 : TrafficIR::Kind::kStreamWrite;
    }
    return gathered ? TrafficIR::Kind::kGatherTraversal
                    : TrafficIR::Kind::kStreamRead;
  }

  /// Records the RefIR for an index expression and emits (or folds) its
  /// traversal traffic. `e` must be a kIndex node.
  void emit_access(const Expr& e, bool is_store) {
    const BufRef b = resolve_buffer(*e.kids[0]);
    if (!b.ok) {
      throw ParseError{e.line,
                       "cannot resolve the buffer of '" + print(e) + "'"};
    }
    Affine idx = aff_add(b.base, affine_of(*e.kids[1]));

    RefIR ref;
    ref.buffer = b.buffer;
    ref.space = b.space;
    ref.is_store = is_store;
    ref.elem_bytes = b.elem_bytes;
    ref.coalescing = classify(idx);
    ref.lane_coeff = lane_coeff_of(idx);
    if (b.space == MemSpace::kLocal) ref.bank_conflict = bank_conflict_of(idx);
    ref.hot = freq_hot();
    ref.lane_partitioned = in_lane_region();
    ref.divergent_guard = divergent_depth_ > 0;
    ref.zero_weight = zero_depth_ > 0;
    ref.loop_depth = static_cast<int>(loops_.size());
    ref.line = e.line;
    ref.col = e.col;
    ref.index = print(*e.kids[1]);
    ref.affine = aff_export(idx);
    ref.interval = interval_;
    ref.lane_bound = current_lane_bound();
    ref.loop_path = current_loop_path();
    out_.refs.push_back(ref);

    if (b.space == MemSpace::kPrivate) {
      for (auto& pa : out_.private_arrays) {
        if (pa.name == b.buffer && !aff_is_const(idx)) {
          pa.dynamically_indexed = true;
        }
      }
      return;  // private arrays are priced via kPrivateUpdate
    }
    if (zero_depth_ > 0) return;

    const bool gathered = ref.coalescing == Coalescing::kGathered;
    const TrafficIR::Kind kind = traffic_kind(b, idx, is_store, gathered);

    // Fold 1: unit coefficient in the innermost fixed loop — the loop
    // traverses trips·elem contiguous bytes of the buffer once per outer
    // iteration (`for (f = 0; f < K; ++f) ... buf[base + f]`).
    if (const LoopFrame* lf = innermost_fixed()) {
      const std::string lv = "loopvar#" + std::to_string(lf->id);
      if (idx.coeff(lv) == 1) {
        Affine base = idx;
        base.t.erase(lv);
        base.c = 0;
        Fold& f = folds_[fold_key(b, base, kind) + "|loop" +
                         std::to_string(lf->id)];
        f.kind = kind;
        f.buffer = b.buffer;
        f.elem_bytes = b.elem_bytes;
        f.span_elems = std::max(f.span_elems, lf->trips);
        f.gathered = gathered;
        f.lane_part = in_lane_region();
        Freq fq = freq_;
        fq.factor /= std::max(lf->trips, 1e-9);
        f.freq = fq;
        f.line = e.line;
        return;
      }
    }

    // Lane-partitioned loop with a constant bound: the lanes cover `bound`
    // elements cooperatively — one traversal of bound·elem bytes.
    if (const LoopFrame* lp = lane_const_frame(idx)) {
      emit_traffic(kind, b.buffer, double(lp->lane_span) * b.elem_bytes,
                   freq_, /*lane_part=*/false, gathered, e.line);
      return;
    }

    // Fold 2: constant offsets off a common base — unrolled accumulator
    // statements and vloadN lanes sweep a contiguous block.
    if (idx.ok && !idx.t.empty()) {
      Affine base = idx;
      base.c = 0;
      Fold& f = folds_[fold_key(b, base, kind) + "|blk"];
      f.kind = kind;
      f.buffer = b.buffer;
      f.elem_bytes = b.elem_bytes;
      f.range_mode = true;
      if (f.hi < f.lo) {
        f.lo = idx.c;
        f.hi = idx.c;
      } else {
        f.lo = std::min(f.lo, idx.c);
        f.hi = std::max(f.hi, idx.c);
      }
      f.gathered = gathered;
      f.lane_part = in_lane_region();
      f.freq = freq_;
      f.line = e.line;
      return;
    }

    emit_traffic(kind, b.buffer, b.elem_bytes, freq_, in_lane_region(),
                 gathered, e.line);
  }

  std::string fold_key(const BufRef& b, const Affine& base,
                       TrafficIR::Kind kind) const {
    return b.buffer + "|" + std::to_string(static_cast<int>(b.space)) + "|" +
           std::to_string(static_cast<int>(kind)) + "|" + aff_key(base);
  }

  void emit_traffic(TrafficIR::Kind kind, const std::string& buffer,
                    double span_bytes, const Freq& fq, bool lane_part,
                    bool gathered, int line) {
    TrafficIR t;
    t.kind = kind;
    t.buffer = buffer;
    t.span_bytes = span_bytes;
    t.freq = fq;
    t.lane_partitioned = lane_part;
    t.order = gathered ? order_++ : 0;
    t.line = line;
    out_.traffic.push_back(t);
    const bool hot =
        fq.per_nnz > 0 || fq.per_chunk > 0 || fq.chunk_body > 0;
    if (kind == TrafficIR::Kind::kLocalWrite && hot) {
      out_.has_local_staging = true;
    }
  }

  void flush_folds() {
    for (auto& [key, f] : folds_) {
      const double elems =
          f.range_mode ? static_cast<double>(f.hi - f.lo + 1) : f.span_elems;
      emit_traffic(f.kind, f.buffer, elems * f.elem_bytes, f.freq,
                   f.lane_part, f.gathered, f.line);
    }
    folds_.clear();
  }

  // ---- statements ----
  void stmt_list(const std::vector<StmtPtr>& body) {
    for (const auto& s : body) {
      if (s) stmt(*s);
    }
  }

  void stmt(const Stmt& s) {
    switch (s.kind) {
      case Stmt::Kind::kDecl: decl(s); break;
      case Stmt::Kind::kExpr: expr_stmt(s); break;
      case Stmt::Kind::kIf: if_stmt(s); break;
      case Stmt::Kind::kFor: for_stmt(s); break;
      case Stmt::Kind::kWhile:
        throw ParseError{s.line, "while loops are outside the analyzable "
                                 "subset (unbounded trip count)"};
      case Stmt::Kind::kBlock: stmt_list(s.body); break;
      case Stmt::Kind::kBarrier: {
        BarrierIR b;
        b.freq = freq_;
        b.hot = freq_.per_chunk > 0;
        b.divergent = divergent_depth_ > 0;
        b.line = s.line;
        out_.barriers.push_back(b);
        ++interval_;  // a barrier opens a new MHP interval
        break;
      }
      case Stmt::Kind::kReturn:
      case Stmt::Kind::kContinue:
      case Stmt::Kind::kBreak:
        break;
    }
  }

  void decl(const Stmt& s) {
    if (s.init) mark_used_expr(*s.init);
    if (s.array_extent) {
      long elems = -1;
      Affine ext = affine_of(*s.array_extent);
      if (aff_is_const(ext)) elems = ext.c;
      const int bytes = elem_width(s.type);
      if (s.is_local) {
        out_.locals.push_back({s.name, elems, bytes, s.line});
      } else {
        out_.private_arrays.push_back({s.name, elems, false, s.line});
      }
      BufRef b;
      b.ok = true;
      b.buffer = s.name;
      b.type = s.type;
      b.space = s.is_local ? MemSpace::kLocal : MemSpace::kPrivate;
      b.elem_bytes = bytes;
      buffers_[s.name] = b;
      return;
    }
    if (!s.init) {
      env_[s.name] = Sym{};
      return;
    }
    Sym sym = classify_init(*s.init, s.line);
    if (sym.kind == Sym::Kind::kRowNnz && !sym.begin_seg.empty()) {
      out_.row_nnz.push_back({s.name, sym.buffer, sym.begin_seg});
    }
    env_[s.name] = sym;
  }

  Sym classify_init(const Expr& e, int line) {
    Sym sym;
    // min(TILE_ROWS, omega - base): the staging chunk size.
    if (e.kind == Expr::Kind::kCall && e.name == "min" &&
        e.kids.size() == 2) {
      if (contains_row_nnz(*e.kids[0]) || contains_row_nnz(*e.kids[1])) {
        sym.kind = Sym::Kind::kChunkSize;
        // Record which RowNnz variable and chunked-loop base appear inside
        // `min(TILE_ROWS, omega - base)` so chunk-bounded loops can be
        // linked back to them by the verifier.
        std::set<std::string> ids;
        collect_idents(e, ids);
        for (const auto& id : ids) {
          auto it = env_.find(id);
          if (it == env_.end()) continue;
          if (it->second.kind == Sym::Kind::kRowNnz) sym.nnz_var = id;
          if (it->second.kind == Sym::Kind::kAffine &&
              it->second.aff.ok && it->second.aff.t.size() == 1) {
            const std::string& tag = it->second.aff.t.begin()->first;
            if (tag.rfind("loopvar#", 0) == 0 &&
                it->second.aff.t.begin()->second == 1) {
              sym.chunk_base = std::stol(tag.substr(8));
            }
          }
        }
        return sym;
      }
    }
    // vloadN(offset, ptr): a vector stream variable covering N elements.
    if (e.kind == Expr::Kind::kCall && e.name.rfind("vload", 0) == 0 &&
        e.kids.size() == 2) {
      const long vw = std::stol(e.name.substr(5));
      const BufRef b = resolve_buffer(*e.kids[1]);
      Affine off = affine_of(*e.kids[0]);
      if (!b.ok || !aff_is_const(off)) {
        throw ParseError{line, "unanalyzable vload operand"};
      }
      out_.has_vector_ops = true;
      const bool gathered = b.base.has_prefix("gather#");
      const TrafficIR::Kind kind = b.space == MemSpace::kLocal
                                       ? TrafficIR::Kind::kLocalRead
                                       : TrafficIR::Kind::kGatherTraversal;
      Affine base = b.base;
      base.c = 0;
      Fold& f = folds_[fold_key(b, base, kind) + "|blk"];
      f.kind = kind;
      f.buffer = b.buffer;
      f.elem_bytes = b.elem_bytes;
      f.range_mode = true;
      const long lo = off.c * vw, hi = off.c * vw + vw - 1;
      if (f.hi < f.lo) {
        f.lo = lo;
        f.hi = hi;
      } else {
        f.lo = std::min(f.lo, lo);
        f.hi = std::max(f.hi, hi);
      }
      f.gathered = gathered;
      f.lane_part = in_lane_region();
      f.freq = freq_;
      f.line = line;

      Affine vidx = b.base;
      vidx.c += off.c * vw;
      RefIR ref;
      ref.buffer = b.buffer;
      ref.space = b.space;
      ref.elem_bytes = b.elem_bytes;
      ref.coalescing = classify(vidx);
      ref.lane_coeff = lane_coeff_of(vidx);
      ref.hot = freq_hot();
      ref.lane_partitioned = in_lane_region();
      ref.divergent_guard = divergent_depth_ > 0;
      ref.zero_weight = zero_depth_ > 0;
      ref.loop_depth = static_cast<int>(loops_.size());
      ref.line = line;
      ref.col = e.col;
      ref.index = print(*e.kids[1]) + " + " + std::to_string(off.c * vw);
      ref.affine = aff_export(vidx);
      ref.interval = interval_;
      ref.lane_bound = current_lane_bound();
      ref.vec_elems = static_cast<int>(vw);
      ref.loop_path = current_loop_path();
      out_.refs.push_back(ref);

      sym.kind = Sym::Kind::kStreamVar;
      sym.buffer = b.buffer;
      sym.space = b.space;
      sym.gathered = gathered;
      sym.from_vload = true;
      stream_sources_.insert(b.buffer);
      return sym;
    }
    // (lx < G) ? buf[lx] : 0 — a guarded lane load: one traversal of
    // G·elem bytes per execution (lanes 0..G-1 each take one element).
    if (e.kind == Expr::Kind::kTernary) {
      const Expr& cond = *e.kids[0];
      long guard = 0;
      if (cond.kind == Expr::Kind::kBinary && cond.name == "<") {
        Affine l = affine_of(*cond.kids[0]);
        Affine r = affine_of(*cond.kids[1]);
        if (l.ok && l.coeff("lane") == 1 && aff_is_const(r)) guard = r.c;
      }
      const Expr* load = e.kids[1]->kind == Expr::Kind::kIndex
                             ? e.kids[1].get()
                             : nullptr;
      if (guard > 0 && load) {
        const BufRef b = resolve_buffer(*load->kids[0]);
        if (!b.ok) throw ParseError{line, "unresolvable guarded load"};
        Affine idx = aff_add(b.base, affine_of(*load->kids[1]));
        const bool gathered = classify(idx) == Coalescing::kGathered;

        RefIR ref;
        ref.buffer = b.buffer;
        ref.space = b.space;
        ref.elem_bytes = b.elem_bytes;
        ref.coalescing = b.space == MemSpace::kLocal
                             ? classify(idx)
                             : (gathered ? Coalescing::kGathered
                                         : Coalescing::kUnitStride);
        ref.lane_coeff = lane_coeff_of(idx);
        if (b.space == MemSpace::kLocal) {
          ref.bank_conflict = bank_conflict_of(idx);
        }
        ref.hot = freq_hot();
        ref.divergent_guard = true;
        ref.zero_weight = zero_depth_ > 0;
        ref.loop_depth = static_cast<int>(loops_.size());
        ref.line = line;
        ref.col = load->col;
        ref.index = print(*load->kids[1]);
        ref.affine = aff_export(idx);
        ref.interval = interval_;
        ref.lane_bound = guard;  // lanes >= guard take the 0 arm
        ref.loop_path = current_loop_path();
        out_.refs.push_back(ref);

        if (zero_depth_ == 0) {
          const TrafficIR::Kind kind = b.space == MemSpace::kLocal
                                           ? TrafficIR::Kind::kLocalRead
                                           : TrafficIR::Kind::kGatherTraversal;
          emit_traffic(kind, b.buffer, double(guard) * b.elem_bytes, freq_,
                       in_lane_region(), gathered, line);
        }
        sym.kind = Sym::Kind::kStreamVar;
        sym.buffer = b.buffer;
        sym.space = b.space;
        sym.gathered = gathered;
        sym.guarded = true;
        sym.guard = guard;
        stream_sources_.insert(b.buffer);
        return sym;
      }
    }
    // A scalar load of stream data: flat's `yi = Y[d + i]`, `r = values[..]`.
    // Int loads fall through to the affine path (seg# terms) instead.
    if (e.kind == Expr::Kind::kIndex) {
      const BufRef b = resolve_buffer(*e.kids[0]);
      if (b.ok && is_real_type(b.type)) {
        const Affine idx =
            aff_add(b.base, affine_of_probe(*e.kids[1]));
        emit_access(e, /*is_store=*/false);
        sym.kind = Sym::Kind::kStreamVar;
        sym.buffer = b.buffer;
        sym.space = b.space;
        sym.gathered = classify(idx) == Coalescing::kGathered;
        if (sym.gathered) stream_sources_.insert(b.buffer);
        return sym;
      }
    }
    Affine a = affine_of(e);
    // row_ptr[u + 1] - begin: two unscaled loads of the same segment
    // buffer with coefficients +1/-1 — the row's nonzero count.
    if (a.ok && a.t.size() == 2) {
      std::string plus, minus;
      for (const auto& [k, v] : a.t) {
        if (k.rfind("seg#", 0) == 0 && v == 1) plus = k;
        if (k.rfind("seg#", 0) == 0 && v == -1) minus = k;
      }
      if (!plus.empty() && !minus.empty() &&
          seg_buffer_[plus] == seg_buffer_[minus]) {
        sym.kind = Sym::Kind::kRowNnz;
        sym.buffer = seg_buffer_[minus];
        sym.begin_seg = minus;
        return sym;
      }
    }
    sym.kind = Sym::Kind::kAffine;
    sym.aff = a;
    return sym;
  }

  bool contains_row_nnz(const Expr& e) const {
    if (e.kind == Expr::Kind::kIdent) {
      auto it = env_.find(e.name);
      return it != env_.end() && it->second.kind == Sym::Kind::kRowNnz;
    }
    for (const auto& k : e.kids) {
      if (k && contains_row_nnz(*k)) return true;
    }
    return false;
  }

  // ---- expression statements: stores, loads, accumulation ops ----
  void walk_loads(const Expr& e) {
    if (e.kind == Expr::Kind::kIndex) {
      const BufRef b = resolve_buffer(*e.kids[0]);
      if (b.ok) {
        emit_access(e, /*is_store=*/false);
        walk_loads(*e.kids[1]);
        return;
      }
    }
    for (const auto& k : e.kids) {
      if (k) walk_loads(*k);
    }
  }

  void collect_idents(const Expr& e, std::set<std::string>& out) const {
    if (e.kind == Expr::Kind::kIdent) out.insert(e.name);
    for (const auto& k : e.kids) {
      if (k) collect_idents(*k, out);
    }
  }

  void collect_indexed_buffers(const Expr& e,
                               std::set<std::string>& out) const {
    if (e.kind == Expr::Kind::kIndex) {
      // resolve_buffer is non-const only because affine_of emits; a name
      // walk is enough here.
      const Expr* p = e.kids[0].get();
      while (p) {
        if (p->kind == Expr::Kind::kIdent) {
          out.insert(p->name);
          break;
        }
        if (p->kind == Expr::Kind::kBinary && p->name == "+") {
          // try both sides
          std::set<std::string> dummy;
          const Expr* l = p->kids[0].get();
          if (l->kind == Expr::Kind::kIdent &&
              buffers_.count(l->name) != 0) {
            out.insert(l->name);
            break;
          }
          p = p->kids[1].get();
          continue;
        }
        if (p->kind == Expr::Kind::kCast) {
          p = p->kids[0].get();
          continue;
        }
        break;
      }
    }
    for (const auto& k : e.kids) {
      if (k) collect_indexed_buffers(*k, out);
    }
  }

  bool has_member(const Expr& e) const {
    if (e.kind == Expr::Kind::kMember) return true;
    for (const auto& k : e.kids) {
      if (k && has_member(*k)) return true;
    }
    return false;
  }

  void expr_stmt(const Stmt& s) {
    if (!s.cond) return;
    const Expr& e = *s.cond;
    mark_used_expr(e);
    if (e.kind != Expr::Kind::kBinary ||
        (e.name != "=" && e.name != "+=" && e.name != "-=" &&
         e.name != "*=" && e.name != "/=")) {
      // ++u / bare calls: nothing to price.
      if (e.kind == Expr::Kind::kCall) walk_loads(e);
      return;
    }
    const Expr& lhs = *e.kids[0];
    const Expr& rhs = *e.kids[1];
    walk_loads(rhs);
    if (lhs.kind == Expr::Kind::kIndex) {
      emit_access(lhs, /*is_store=*/true);
    } else if (lhs.kind == Expr::Kind::kMember) {
      // vector component stores don't occur in the generated kernels
    }

    const bool accumulation = e.name == "+=" || e.name == "-=";
    if (!accumulation || zero_depth_ > 0) return;
    const bool hot = freq_hot();
    if (!hot || in_lane_region()) return;

    // Op record: one fma-shaped accumulation per trip.
    std::set<std::string> bufs;
    collect_indexed_buffers(rhs, bufs);
    std::set<std::string> ids;
    collect_idents(rhs, ids);

    bool s1 = false;
    for (const auto& b : bufs) {
      if (stream_sources_.count(b) != 0) s1 = true;
    }
    for (const auto& id : ids) {
      auto it = env_.find(id);
      if (it != env_.end() && it->second.kind == Sym::Kind::kStreamVar &&
          it->second.from_vload) {
        s1 = true;
      }
    }

    OpIR op;
    op.freq = freq_;
    op.ops_per_trip = 1;
    op.vectorized = has_member(e) || out_.has_vector_ops;
    op.s1_class = s1;
    op.line = e.line;
    out_.ops.push_back(op);

    if (lhs.kind == Expr::Kind::kIdent) scalar_accumulators_.insert(lhs.name);

    // Dynamically-indexed private accumulators pay a read+write per
    // accumulation (the Fig. 3a spill behavior).
    if (!out_.private_arrays.empty()) {
      emit_traffic(TrafficIR::Kind::kPrivateUpdate,
                   out_.private_arrays.front().name, 8.0, freq_, false,
                   false, e.line);
    }

    // Replay: consuming a stream variable without re-touching its stream
    // re-traverses the staged/gathered row (the S2 reread).
    for (const auto& id : ids) {
      auto it = env_.find(id);
      if (it == env_.end() || it->second.kind != Sym::Kind::kStreamVar) {
        continue;
      }
      const Sym& v = it->second;
      if (bufs.count(v.buffer) != 0) continue;  // touched directly
      bool vload_same = false;
      for (const auto& id2 : ids) {
        auto it2 = env_.find(id2);
        if (it2 != env_.end() &&
            it2->second.kind == Sym::Kind::kStreamVar &&
            it2->second.from_vload && it2->second.buffer == v.buffer) {
          vload_same = true;
        }
      }
      if (vload_same) continue;
      if (replayed_this_stmt_.count(v.buffer) != 0) continue;
      replayed_this_stmt_.insert(v.buffer);
      const double span =
          (v.guarded ? double(v.guard) : 1.0) *
          (buffers_.count(v.buffer) ? buffers_[v.buffer].elem_bytes : 4);
      const TrafficIR::Kind kind = v.space == MemSpace::kLocal
                                       ? TrafficIR::Kind::kLocalTraversal
                                       : TrafficIR::Kind::kGatherTraversal;
      emit_traffic(kind, v.buffer, span, freq_, false, v.gathered, e.line);
    }
    replayed_this_stmt_.clear();
  }

  // ---- control flow ----
  void if_stmt(const Stmt& s) {
    if (s.cond) mark_used_expr(*s.cond);
    const Expr& c = *s.cond;
    bool zero = false, divergent = false;
    long lane_bound = 0;

    if (c.kind == Expr::Kind::kBinary) {
      const bool lhs_nnz = contains_row_nnz(*c.kids[0]);
      Affine r = affine_of_probe(*c.kids[1]);
      // Empty-row early exit: omega == 0 / <= 0 / < 0.
      if (lhs_nnz && (c.name == "==" || c.name == "<=" || c.name == "<") &&
          aff_is_const(r) && r.c == 0) {
        zero = true;
      }
      // Launch guard: row id >= row-count parameter, body exits.
      Affine l = affine_of_probe(*c.kids[0]);
      if (!zero && c.name == ">=" && l.ok && l.coeff("row") == 1 &&
          body_exits(s.body)) {
        zero = true;
        out_.row_bounded = true;
        if (c.kids[1]->kind == Expr::Kind::kIdent) {
          out_.row_bound_var = c.kids[1]->name;
        }
      }
      if (!zero && (l.coeff("lane") != 0 || lane_coeff_of(l) != 0)) {
        divergent = true;
      }
      // `if (lane < C)` bounds the lane id of every reference in the body.
      if (c.name == "<" && l.ok && l.c == 0 && l.t.size() == 1 &&
          l.coeff("lane") == 1 && aff_is_const(r) && r.c > 0) {
        lane_bound = r.c;
      }
      // `if (v < 0) return;` on an indirect value (SELL slice padding):
      // everything after the guard sees v >= 0.
      if (c.name == "<" && l.ok && l.c == 0 && l.t.size() == 1 &&
          aff_is_const(r) && r.c == 0 && body_exits(s.body)) {
        const auto& [tag, coeff] = *l.t.begin();
        if (coeff == 1 && tag.rfind("seg#", 0) == 0) {
          for (auto& ind : out_.indirects) {
            if (ind.tag == tag) ind.nonneg_guarded = true;
          }
        }
      }
    }

    // `if (lx == 0) cholesky_solve_inplace(smat, svec);` — the single-lane
    // solve; its flops are priced by the profile, not per statement.
    if (divergent && c.kind == Expr::Kind::kBinary && c.name == "==" &&
        s.body.size() == 1 && s.body[0]->kind == Stmt::Kind::kExpr &&
        s.body[0]->cond && s.body[0]->cond->kind == Expr::Kind::kCall) {
      const Expr& call = *s.body[0]->cond;
      if (call.name != "barrier" && call.name.rfind("get_", 0) != 0) {
        out_.has_lane0_solve = true;
        out_.lane0_solve_callee = call.name;
        mark_used_expr(call);
        return;
      }
    }

    if (zero) ++zero_depth_;
    if (divergent) ++divergent_depth_;
    if (lane_bound > 0) lane_bound_stack_.push_back(lane_bound);
    stmt_list(s.body);
    if (lane_bound > 0) lane_bound_stack_.pop_back();
    if (zero) --zero_depth_;
    if (divergent) --divergent_depth_;
    stmt_list(s.else_body);
  }

  /// affine_of without load side effects (conditions only compare
  /// already-declared values in the generated kernels).
  Affine affine_of_probe(const Expr& e) {
    if (e.kind == Expr::Kind::kIndex) return aff_unknown();
    switch (e.kind) {
      case Expr::Kind::kIntLit: return aff_const(e.ival);
      case Expr::Kind::kIdent: {
        auto it = env_.find(e.name);
        if (it != env_.end() && it->second.kind == Sym::Kind::kAffine) {
          return it->second.aff;
        }
        long dv = 0;
        if (eval_define(e.name, tu_.defines, dv)) return aff_const(dv);
        return aff_unknown();
      }
      case Expr::Kind::kBinary:
        if (e.name == "+") {
          return aff_add(affine_of_probe(*e.kids[0]),
                         affine_of_probe(*e.kids[1]));
        }
        if (e.name == "-") {
          return aff_add(affine_of_probe(*e.kids[0]),
                         affine_of_probe(*e.kids[1]), -1);
        }
        if (e.name == "*") {
          Affine l = affine_of_probe(*e.kids[0]);
          Affine r = affine_of_probe(*e.kids[1]);
          if (aff_is_const(r)) return aff_scale(l, r.c);
          if (aff_is_const(l)) return aff_scale(r, l.c);
          return aff_unknown();
        }
        return aff_unknown();
      case Expr::Kind::kCast:
        return affine_of_probe(*e.kids[0]);
      default:
        return aff_unknown();
    }
  }

  bool body_exits(const std::vector<StmtPtr>& body) const {
    for (const auto& s : body) {
      if (s && (s->kind == Stmt::Kind::kReturn ||
                s->kind == Stmt::Kind::kContinue)) {
        return true;
      }
    }
    return false;
  }

  void for_stmt(const Stmt& s) {
    if (!s.for_init || !s.cond || !s.step) {
      throw ParseError{s.line, "for loop without init/cond/step"};
    }
    // Loop variable + init expression.
    std::string var;
    const Expr* init = nullptr;
    if (s.for_init->kind == Stmt::Kind::kDecl) {
      var = s.for_init->name;
      init = s.for_init->init.get();
    } else if (s.for_init->kind == Stmt::Kind::kExpr && s.for_init->cond &&
               s.for_init->cond->kind == Expr::Kind::kBinary &&
               s.for_init->cond->name == "=") {
      var = s.for_init->cond->kids[0]->name;
      init = s.for_init->cond->kids[1].get();
    }
    if (var.empty() || !init) {
      throw ParseError{s.line, "unrecognized for-loop initializer"};
    }
    mark_used_expr(*init);
    mark_used_expr(*s.cond);

    // Condition: var < bound  (or var >= bound for down loops).
    const Expr& c = *s.cond;
    if (c.kind != Expr::Kind::kBinary ||
        c.kids[0]->kind != Expr::Kind::kIdent || c.kids[0]->name != var) {
      throw ParseError{s.line, "for-loop condition is not `var < bound`"};
    }
    const Expr& bound = *c.kids[1];

    // Step: ++var / --var / var += S.
    long step_c = 0;          // constant step (0 = unknown)
    bool step_down = false;
    Affine step_aff = aff_unknown();
    if (s.step->kind == Expr::Kind::kUnary &&
        (s.step->name == "++" || s.step->name == "--")) {
      step_c = 1;
      step_down = s.step->name == "--";
    } else if (s.step->kind == Expr::Kind::kBinary && s.step->name == "+=") {
      step_aff = affine_of_probe(*s.step->kids[1]);
      if (aff_is_const(step_aff)) step_c = step_aff.c;
    }

    const Affine init_aff = affine_of_probe(*init);
    const Affine bound_aff = affine_of_probe(bound);

    LoopFrame frame;
    frame.var = var;
    frame.id = loop_id_++;
    Freq mult;  // multiplicity the body gains

    const Sym* bound_sym = nullptr;
    if (bound.kind == Expr::Kind::kIdent) {
      auto it = env_.find(bound.name);
      if (it != env_.end()) bound_sym = &it->second;
    }

    if (init_aff.ok && init_aff.coeff("group") == 1 &&
        step_aff.ok && step_aff.coeff("ngroups") == 1) {
      // for (u = group; u < rows; u += stride): every group-count stride
      // covers each row once per launch.
      frame.kind = LoopIR::Kind::kRowStride;
      mult.per_row = 1;
      env_[var] = make_affine_sym(aff_term("row"));
      out_.row_bounded = true;
      if (bound.kind == Expr::Kind::kIdent) {
        out_.row_bound_var = bound.name;
      }
    } else if (init_aff.ok && init_aff.c == 0 &&
               init_aff.coeff("lane") == 1 && step_c > 1) {
      frame.kind = LoopIR::Kind::kLanePart;
      if (aff_is_const(bound_aff) && bound_aff.c > 0) {
        frame.lane_span = bound_aff.c;
        frame.trips = bound_aff.c;  // elements covered cooperatively
      } else if (bound_sym && bound_sym->kind == Sym::Kind::kChunkSize) {
        frame.lane_region = true;
        mult.chunk_body = 1;  // per staged element
      } else if (bound_sym && bound_sym->kind == Sym::Kind::kRowNnz) {
        frame.lane_region = true;
        mult.per_nnz = 1;
      } else {
        throw ParseError{s.line, "lane-partitioned loop with an "
                                 "unclassifiable bound"};
      }
      env_[var] = make_affine_sym(aff_add(
          aff_term("lane"), aff_term("lpvar#" + std::to_string(frame.id))));
    } else if (bound_sym && bound_sym->kind == Sym::Kind::kRowNnz &&
               step_c == 1 && !step_down) {
      frame.kind = LoopIR::Kind::kNnz;
      mult.per_nnz = 1;
      env_[var] = make_affine_sym(
          aff_term("loopvar#" + std::to_string(frame.id)));
    } else if (bound_sym && bound_sym->kind == Sym::Kind::kRowNnz &&
               step_c > 1) {
      frame.kind = LoopIR::Kind::kChunked;
      mult.per_chunk = 1;
      env_[var] = make_affine_sym(
          aff_term("loopvar#" + std::to_string(frame.id)));
    } else if (bound_sym && bound_sym->kind == Sym::Kind::kChunkSize &&
               step_c == 1 && !step_down) {
      frame.kind = LoopIR::Kind::kChunkBody;
      mult.chunk_body = 1;
      env_[var] = make_affine_sym(
          aff_term("loopvar#" + std::to_string(frame.id)));
    } else if (bound_aff.ok && bound_aff.has_prefix("seg#") && step_c == 1) {
      // SELL: per-lane length from lane_len[] — nnz-like.
      frame.kind = LoopIR::Kind::kDataDep;
      mult.per_nnz = 1;
      env_[var] = make_affine_sym(
          aff_term("loopvar#" + std::to_string(frame.id)));
    } else if (step_c == 1 && step_down && c.name == ">=" &&
               aff_is_const(init_aff)) {
      // for (i = K - 1; i >= 0; --i)
      frame.kind = LoopIR::Kind::kFixed;
      frame.trips = static_cast<double>(init_aff.c + 1);
      frame.avg_value = init_aff.c / 2.0;
      mult.factor = std::max(frame.trips, 0.0);
      env_[var] = make_affine_sym(
          aff_term("loopvar#" + std::to_string(frame.id)));
    } else if (step_c == 1 && !step_down &&
               (c.name == "<" || c.name == "<=")) {
      // Fixed / triangular loops: trips = avg(bound) - avg(init).
      double b_avg = 0, i_avg = 0;
      if (!avg_of(bound_aff, b_avg) || !avg_of(init_aff, i_avg)) {
        throw ParseError{s.line, "for-loop bound is not a compile-time "
                                 "constant or loop variable"};
      }
      if (c.name == "<=") b_avg += 1;
      frame.kind = LoopIR::Kind::kFixed;
      frame.trips = std::max(b_avg - i_avg, 0.0);
      frame.avg_value = i_avg + (frame.trips - 1) / 2.0;
      mult.factor = frame.trips;
      env_[var] = make_affine_sym(
          aff_term("loopvar#" + std::to_string(frame.id)));
    } else {
      throw ParseError{s.line, "unclassifiable loop form"};
    }

    LoopIR lir;
    lir.kind = frame.kind;
    lir.trips = frame.trips;
    lir.bound = print(bound);
    lir.line = s.line;
    lir.depth = static_cast<int>(loops_.size());
    lir.id = frame.id;
    lir.step = step_c > 0 ? step_c : 1;
    lir.step_down = step_down;
    lir.bound_inclusive = c.name == "<=";
    lir.init_affine = aff_export(init_aff);
    lir.bound_affine = aff_export(bound_aff);
    if (bound.kind == Expr::Kind::kIdent) lir.bound_var = bound.name;
    lir.lane_span = frame.lane_span;
    lir.lane_region = frame.lane_region;
    if (bound_sym) {
      if (bound_sym->kind == Sym::Kind::kRowNnz) {
        lir.nnz_var = bound.name;
      } else if (bound_sym->kind == Sym::Kind::kChunkSize) {
        lir.nnz_var = bound_sym->nnz_var;
        lir.chunk_link = bound_sym->chunk_base;
      }
    }
    lir.entry_interval = interval_;
    const std::size_t lir_idx = out_.loops.size();
    out_.loops.push_back(lir);

    const Freq saved = freq_;
    freq_ = freq_.times(mult);
    loops_.push_back(frame);
    stmt_list(s.body);
    flush_folds();
    loops_.pop_back();
    freq_ = saved;
    env_.erase(var);

    out_.loops[lir_idx].exit_interval = interval_;
    out_.loops[lir_idx].body_has_barrier =
        interval_ != out_.loops[lir_idx].entry_interval;
  }

  /// Mean value of an affine over enclosing fixed loops (for triangular
  /// trip counts). False when a non-fixed symbol appears.
  bool avg_of(const Affine& a, double& out) const {
    if (!a.ok) return false;
    double v = a.c;
    for (const auto& [k, coeff] : a.t) {
      if (coeff == 0) continue;
      if (k.rfind("loopvar#", 0) != 0) return false;
      bool found = false;
      for (const auto& f : loops_) {
        if ("loopvar#" + std::to_string(f.id) == k &&
            f.kind == LoopIR::Kind::kFixed) {
          v += coeff * f.avg_value;
          found = true;
        }
      }
      if (!found) return false;
    }
    out = v;
    return true;
  }

  Sym make_affine_sym(const Affine& a) {
    Sym s;
    s.kind = Sym::Kind::kAffine;
    s.aff = a;
    return s;
  }

  const TranslationUnit& tu_;
  const FunctionDecl& fn_;
  KernelIR out_;

  std::map<std::string, Sym> env_;
  std::map<std::string, BufRef> buffers_;
  std::map<std::string, std::string> seg_buffer_;
  std::set<std::string> stream_sources_;
  std::set<std::string> scalar_accumulators_;
  std::set<std::string> replayed_this_stmt_;
  std::map<std::string, Fold> folds_;
  std::vector<LoopFrame> loops_;
  std::vector<long> lane_bound_stack_;
  Freq freq_;
  int divergent_depth_ = 0;
  int zero_depth_ = 0;
  int interval_ = 0;
  int order_ = 0;
  long seg_id_ = 0;
  long gather_id_ = 0;
  long loop_id_ = 0;
};

}  // namespace

std::vector<KernelIR> lower_kernels(const TranslationUnit& tu) {
  std::vector<KernelIR> out;
  for (const auto& fn : tu.functions) {
    if (!fn.is_kernel) continue;
    KernelLowerer low(tu, fn);
    out.push_back(low.run());
  }
  return out;
}

}  // namespace alsmf::ocl::analyze
