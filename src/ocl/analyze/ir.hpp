// Access-pattern IR: each __kernel lowered into (a) a table of raw memory
// references with affine-index classification, (b) loop nest records with
// trip counts parameterized by dataset statistics, and (c) traffic/op
// records at *traversal* granularity — the unit the devsim accounting
// kernels charge at (one gathered y-row fetch, one staged-tile replay, one
// segment-stream element), so the static profile (static_profile.hpp) and
// the dynamic counters are directly comparable.
//
// Frequencies are symbolic: a record's multiplicity is
//   factor × rows^per_row × ω̄^per_nnz × ⌈ω̄/T⌉^per_chunk × (ω̄/⌈ω̄/T⌉)^chunk_body
// evaluated against DatasetStats (rows = nonempty rows, ω̄ = mean nnz per
// nonempty row, T = staging tile rows).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ocl/analyze/ast.hpp"

namespace alsmf::ocl::analyze {

/// Exported affine index form `c + Σ coeff·term` over the lowering's
/// symbolic terms. Term tags:
///   "lane" / "group" / "ngroups" / "row"  — work-item identity
///   "loopvar#<id>" / "lpvar#<id>"         — surrounding loop variables
///                                           (lpvar: the multiple-of-WS part
///                                           of a lane-partitioned variable)
///   "seg#<n>"                             — an unscaled global int load
///                                           (CSR segment pointers)
///   "gather#<n>"                          — a global int load scaled by a
///                                           constant ≥ 2 (row addressing)
/// The verifier (analyze/verify/) resolves term ranges through the loop
/// table and the indirect-load table below.
struct AffineIdx {
  bool ok = true;  // false: the index contains something non-affine
  long c = 0;
  std::map<std::string, long> terms;

  long coeff(const std::string& tag) const {
    auto it = terms.find(tag);
    return it == terms.end() ? 0 : it->second;
  }
};

enum class MemSpace { kGlobal, kLocal, kPrivate };

enum class Coalescing {
  kUnitStride,  // consecutive lanes touch consecutive elements
  kStrided,     // constant non-unit lane stride
  kGathered,    // data-dependent base (indirect addressing)
  kUniform,     // lane-invariant address (broadcast)
};

/// Symbolic per-launch multiplicity of a loop body / access / statement.
struct Freq {
  double factor = 1.0;  // compile-time constant trips (K loops, unrolling)
  int per_row = 0;      // exponent of nonempty-row count
  int per_nnz = 0;      // exponent of mean nnz/row
  int per_chunk = 0;    // exponent of ⌈ω̄ / tile_rows⌉
  int chunk_body = 0;   // exponent of the average chunk size ω̄/⌈ω̄/T⌉

  Freq times(const Freq& o) const {
    Freq f = *this;
    f.factor *= o.factor;
    f.per_row += o.per_row;
    f.per_nnz += o.per_nnz;
    f.per_chunk += o.per_chunk;
    f.chunk_body += o.chunk_body;
    return f;
  }
  /// rows/omega/chunks/chunk_avg supplied by the evaluation environment.
  double eval(double rows, double omega, double chunks,
              double chunk_avg) const;
};

struct LoopIR {
  enum class Kind {
    kRowStride,   // for (u = group; u < rows; u += stride): rows over groups
    kNnz,         // trip count = the row's nonzero count
    kChunked,     // base += TILE over the row's nonzeros
    kChunkBody,   // z < chunk inside a chunked loop
    kLanePart,    // for (i = lx; i < N; i += WS): lanes partition N
    kFixed,       // compile-time trip count
    kDataDep,     // data-dependent bound treated as nnz-like (SELL lanes)
  };
  Kind kind = Kind::kFixed;
  double trips = 1;        // kFixed: exact; kLanePart: partitioned bound
  std::string bound;       // human-readable bound
  int line = 0;
  int depth = 0;

  // --- verifier-facing structure (analyze/verify/) ---
  long id = -1;            // matches "loopvar#<id>" / "lpvar#<id>" terms
  long step = 1;           // constant step (1 for ++/--)
  bool step_down = false;  // for (i = C; i >= 0; --i)
  bool bound_inclusive = false;  // condition used <=
  AffineIdx init_affine;   // affine of the init expression (ok=false: unknown)
  AffineIdx bound_affine;  // affine of the bound expression
  std::string bound_var;   // bound identifier name ("rows", "omega", "chunk")
  std::string nnz_var;     // the RowNnz variable the bound derives from
                           // (kNnz/kChunked: the bound itself; kChunkBody and
                           // chunk-bounded kLanePart: via the ChunkSize min())
  long chunk_link = -1;    // kChunkBody / chunk-bounded kLanePart: id of the
                           // enclosing kChunked loop whose base offsets it
  long lane_span = 0;      // kLanePart with a constant bound
  bool lane_region = false;      // kLanePart over a chunk/nnz bound
  int entry_interval = 0;  // barrier interval at loop entry
  int exit_interval = 0;   // barrier interval at the end of the body
  bool body_has_barrier = false;
};

/// One memory reference in the source (per AST index expression).
struct RefIR {
  std::string buffer;
  MemSpace space = MemSpace::kGlobal;
  bool is_store = false;
  Coalescing coalescing = Coalescing::kUniform;
  int elem_bytes = 4;
  long lane_coeff = 0;      // coefficient of the lane id in the index
  int bank_conflict = 1;    // modeled scratch-pad conflict degree (local)
  bool hot = false;         // under a per-nnz / chunk-body loop
  bool lane_partitioned = false;  // executed inside a lane-partitioned loop
  bool divergent_guard = false;   // under lane-dependent control flow
  bool zero_weight = false;       // in an empty-row early-exit branch
  int loop_depth = 0;
  int line = 0;
  int col = 0;
  std::string index;        // pretty-printed index expression

  // --- verifier-facing structure (analyze/verify/) ---
  AffineIdx affine;         // the full symbolic index
  int interval = 0;         // barrier-interval ordinal (program order)
  long lane_bound = 0;      // enclosing `if (lane < C)` guard bound (0: none)
  int vec_elems = 1;        // vloadN: elements [affine, affine + vec_elems)
  std::vector<long> loop_path;  // ids of enclosing loops, outermost first
};

/// Traffic at traversal granularity (what the cost comparison uses).
struct TrafficIR {
  enum class Kind {
    kGatherTraversal,  // global gathered stream: 1 access of span bytes;
                       // first per stream is cold, the rest re-traverse
    kLocalTraversal,   // staged-tile stream replay from the scratch-pad
    kStreamRead,       // coalesced global stream read, span bytes per trip
    kStreamWrite,      // coalesced global store
    kScatterWrite,     // 1 scattered access of span bytes per trip
    kLocalRead,        // broadcast scratch-pad read, span bytes per trip
    kLocalWrite,       // scratch-pad store, span bytes per trip
    kPrivateUpdate,    // dyn-indexed private accumulator update (8 B)
  };
  Kind kind = Kind::kStreamRead;
  std::string buffer;
  double span_bytes = 4;   // group-level useful bytes per traversal/trip
  Freq freq;
  bool lane_partitioned = false;  // cooperative staging: no passes scaling,
                                  // no gather/latency issue cost
  int order = 0;  // statement order (cold-vs-reread within a stream)
  int line = 0;
};

/// Hot accumulation statements (the S1/S2 fma work).
struct OpIR {
  Freq freq;
  double ops_per_trip = 1;  // per lane
  bool vectorized = false;
  bool s1_class = false;  // reads the operand stream directly (k-sum work);
                          // false = reduction over already-loaded values
  int line = 0;
};

struct BarrierIR {
  Freq freq;       // per enclosing chunk/row
  bool hot = false;  // inside the chunked staging loop (priced)
  bool divergent = false;
  int line = 0;
};

struct LocalDeclIR {
  std::string name;
  long elems = 0;     // -1 when the extent is not a compile-time constant
  int elem_bytes = 4;
  int line = 0;
};

struct PrivateArrayIR {
  std::string name;
  long elems = 0;
  bool dynamically_indexed = false;
  int line = 0;
};

struct ArgIR {
  std::string name;
  std::string type;
  bool is_pointer = false;
  bool is_global = false;
  bool used = false;
  int line = 0;
};

/// Provenance of a "seg#<n>" / "gather#<n>" term: which int buffer the value
/// was loaded from, at what (affine) index, and the constant scale applied.
struct IndirectIR {
  std::string tag;
  std::string buffer;
  long scale = 1;          // gather#: the multiplier; seg#: 1
  AffineIdx load_index;    // index of the load producing the value
  bool nonneg_guarded = false;  // an `if (v < 0) return;` guard dominates use
};

/// A `omega = row_ptr[u + 1] - row_ptr[u]` segment-length variable: the
/// relational fact `begin_seg + omega ≤ total buffer span` the CSR bounds
/// rule is built on.
struct RowNnzIR {
  std::string var;        // declared variable name ("omega", "len")
  std::string buffer;     // the offsets buffer ("row_ptr")
  std::string begin_seg;  // seg# tag of the lower-offset load
};

struct KernelIR {
  std::string name;
  bool batched_mapping = false;  // row loop over groups vs one item per row
  long k = 0;                    // from #define K
  long ws = 0;                   // from #define WS
  long tile_rows_define = 0;     // from #define TILE_ROWS
  long cg_iters = 0;             // from #define CG_ITERS (0: not a cg kernel)
  /// Storage width of the factor/rating buffers, from `typedef ... storage_t`
  /// (4 = plain real_t storage). Narrow storage halves the already-priced
  /// per-reference byte widths; the static profile additionally retags
  /// vector ops as half-width (doubled effective SIMD packing).
  int storage_bytes = 4;
  std::string storage_base;      // "half" / "bfloat16"; empty = real_t

  std::vector<ArgIR> args;
  std::vector<LoopIR> loops;
  std::vector<RefIR> refs;
  std::vector<TrafficIR> traffic;
  std::vector<OpIR> ops;
  std::vector<BarrierIR> barriers;
  std::vector<LocalDeclIR> locals;
  std::vector<PrivateArrayIR> private_arrays;
  std::vector<IndirectIR> indirects;
  std::vector<RowNnzIR> row_nnz;

  /// The row identity is bounded: a `if (row >= bound) return;` launch
  /// guard (flat mapping) or a row-stride loop bound (batched mapping).
  bool row_bounded = false;
  std::string row_bound_var;  // the bounding identifier ("rows")
  int interval_count = 1;     // number of barrier intervals (program order)

  const LoopIR* loop_by_id(long id) const {
    for (const auto& l : loops) {
      if (l.id == id) return &l;
    }
    return nullptr;
  }
  const IndirectIR* indirect_by_tag(const std::string& tag) const {
    for (const auto& i : indirects) {
      if (i.tag == tag) return &i;
    }
    return nullptr;
  }

  /// Kernel calls a single-lane solve helper per row (`if (lx == 0) f(...)`).
  bool has_lane0_solve = false;
  /// Name of that helper — selects the S3 flop model ("cg_solve_inplace"
  /// prices as truncated CG over cg_iters; anything else as Cholesky).
  std::string lane0_solve_callee;
  /// Unrolled per-lane scalar accumulators (the registers optimization).
  bool has_unrolled_accumulators = false;
  /// Hot-loop scratch-pad staging (the local-memory optimization).
  bool has_local_staging = false;
  /// Explicit vector accumulation (vloadN + .sN components).
  bool has_vector_ops = false;

  long declared_local_bytes() const;
  int max_bank_conflict() const;
};

/// Lowers every __kernel in the translation unit. Throws ParseError when a
/// kernel uses constructs the lowering cannot classify.
std::vector<KernelIR> lower_kernels(const TranslationUnit& tu);

const char* to_string(Coalescing c);
const char* to_string(TrafficIR::Kind k);
const char* to_string(LoopIR::Kind k);

}  // namespace alsmf::ocl::analyze
