// Access-pattern IR: each __kernel lowered into (a) a table of raw memory
// references with affine-index classification, (b) loop nest records with
// trip counts parameterized by dataset statistics, and (c) traffic/op
// records at *traversal* granularity — the unit the devsim accounting
// kernels charge at (one gathered y-row fetch, one staged-tile replay, one
// segment-stream element), so the static profile (static_profile.hpp) and
// the dynamic counters are directly comparable.
//
// Frequencies are symbolic: a record's multiplicity is
//   factor × rows^per_row × ω̄^per_nnz × ⌈ω̄/T⌉^per_chunk × (ω̄/⌈ω̄/T⌉)^chunk_body
// evaluated against DatasetStats (rows = nonempty rows, ω̄ = mean nnz per
// nonempty row, T = staging tile rows).
#pragma once

#include <string>
#include <vector>

#include "ocl/analyze/ast.hpp"

namespace alsmf::ocl::analyze {

enum class MemSpace { kGlobal, kLocal, kPrivate };

enum class Coalescing {
  kUnitStride,  // consecutive lanes touch consecutive elements
  kStrided,     // constant non-unit lane stride
  kGathered,    // data-dependent base (indirect addressing)
  kUniform,     // lane-invariant address (broadcast)
};

/// Symbolic per-launch multiplicity of a loop body / access / statement.
struct Freq {
  double factor = 1.0;  // compile-time constant trips (K loops, unrolling)
  int per_row = 0;      // exponent of nonempty-row count
  int per_nnz = 0;      // exponent of mean nnz/row
  int per_chunk = 0;    // exponent of ⌈ω̄ / tile_rows⌉
  int chunk_body = 0;   // exponent of the average chunk size ω̄/⌈ω̄/T⌉

  Freq times(const Freq& o) const {
    Freq f = *this;
    f.factor *= o.factor;
    f.per_row += o.per_row;
    f.per_nnz += o.per_nnz;
    f.per_chunk += o.per_chunk;
    f.chunk_body += o.chunk_body;
    return f;
  }
  /// rows/omega/chunks/chunk_avg supplied by the evaluation environment.
  double eval(double rows, double omega, double chunks,
              double chunk_avg) const;
};

struct LoopIR {
  enum class Kind {
    kRowStride,   // for (u = group; u < rows; u += stride): rows over groups
    kNnz,         // trip count = the row's nonzero count
    kChunked,     // base += TILE over the row's nonzeros
    kChunkBody,   // z < chunk inside a chunked loop
    kLanePart,    // for (i = lx; i < N; i += WS): lanes partition N
    kFixed,       // compile-time trip count
    kDataDep,     // data-dependent bound treated as nnz-like (SELL lanes)
  };
  Kind kind = Kind::kFixed;
  double trips = 1;        // kFixed: exact; kLanePart: partitioned bound
  std::string bound;       // human-readable bound
  int line = 0;
  int depth = 0;
};

/// One memory reference in the source (per AST index expression).
struct RefIR {
  std::string buffer;
  MemSpace space = MemSpace::kGlobal;
  bool is_store = false;
  Coalescing coalescing = Coalescing::kUniform;
  int elem_bytes = 4;
  long lane_coeff = 0;      // coefficient of the lane id in the index
  int bank_conflict = 1;    // modeled scratch-pad conflict degree (local)
  bool hot = false;         // under a per-nnz / chunk-body loop
  bool lane_partitioned = false;  // executed inside a lane-partitioned loop
  bool divergent_guard = false;   // under lane-dependent control flow
  bool zero_weight = false;       // in an empty-row early-exit branch
  int loop_depth = 0;
  int line = 0;
  std::string index;        // pretty-printed index expression
};

/// Traffic at traversal granularity (what the cost comparison uses).
struct TrafficIR {
  enum class Kind {
    kGatherTraversal,  // global gathered stream: 1 access of span bytes;
                       // first per stream is cold, the rest re-traverse
    kLocalTraversal,   // staged-tile stream replay from the scratch-pad
    kStreamRead,       // coalesced global stream read, span bytes per trip
    kStreamWrite,      // coalesced global store
    kScatterWrite,     // 1 scattered access of span bytes per trip
    kLocalRead,        // broadcast scratch-pad read, span bytes per trip
    kLocalWrite,       // scratch-pad store, span bytes per trip
    kPrivateUpdate,    // dyn-indexed private accumulator update (8 B)
  };
  Kind kind = Kind::kStreamRead;
  std::string buffer;
  double span_bytes = 4;   // group-level useful bytes per traversal/trip
  Freq freq;
  bool lane_partitioned = false;  // cooperative staging: no passes scaling,
                                  // no gather/latency issue cost
  int order = 0;  // statement order (cold-vs-reread within a stream)
  int line = 0;
};

/// Hot accumulation statements (the S1/S2 fma work).
struct OpIR {
  Freq freq;
  double ops_per_trip = 1;  // per lane
  bool vectorized = false;
  bool s1_class = false;  // reads the operand stream directly (k-sum work);
                          // false = reduction over already-loaded values
  int line = 0;
};

struct BarrierIR {
  Freq freq;       // per enclosing chunk/row
  bool hot = false;  // inside the chunked staging loop (priced)
  bool divergent = false;
  int line = 0;
};

struct LocalDeclIR {
  std::string name;
  long elems = 0;     // -1 when the extent is not a compile-time constant
  int elem_bytes = 4;
  int line = 0;
};

struct PrivateArrayIR {
  std::string name;
  long elems = 0;
  bool dynamically_indexed = false;
  int line = 0;
};

struct ArgIR {
  std::string name;
  std::string type;
  bool is_pointer = false;
  bool is_global = false;
  bool used = false;
  int line = 0;
};

struct KernelIR {
  std::string name;
  bool batched_mapping = false;  // row loop over groups vs one item per row
  long k = 0;                    // from #define K
  long ws = 0;                   // from #define WS
  long tile_rows_define = 0;     // from #define TILE_ROWS

  std::vector<ArgIR> args;
  std::vector<LoopIR> loops;
  std::vector<RefIR> refs;
  std::vector<TrafficIR> traffic;
  std::vector<OpIR> ops;
  std::vector<BarrierIR> barriers;
  std::vector<LocalDeclIR> locals;
  std::vector<PrivateArrayIR> private_arrays;

  /// Kernel calls a single-lane solve helper per row (`if (lx == 0) f(...)`).
  bool has_lane0_solve = false;
  /// Unrolled per-lane scalar accumulators (the registers optimization).
  bool has_unrolled_accumulators = false;
  /// Hot-loop scratch-pad staging (the local-memory optimization).
  bool has_local_staging = false;
  /// Explicit vector accumulation (vloadN + .sN components).
  bool has_vector_ops = false;

  long declared_local_bytes() const;
  int max_bank_conflict() const;
};

/// Lowers every __kernel in the translation unit. Throws ParseError when a
/// kernel uses constructs the lowering cannot classify.
std::vector<KernelIR> lower_kernels(const TranslationUnit& tu);

const char* to_string(Coalescing c);
const char* to_string(TrafficIR::Kind k);
const char* to_string(LoopIR::Kind k);

}  // namespace alsmf::ocl::analyze
