#include "ocl/analyze/lexer.hpp"

#include <algorithm>
#include <cctype>

namespace alsmf::ocl::analyze {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool is_identifier(const Token& t) {
  return !t.text.empty() && is_ident_start(t.text[0]);
}

std::string strip_comments(const std::string& source) {
  std::string code;
  code.reserve(source.size());
  enum class State { kCode, kLine, kBlock } state = State::kCode;
  for (std::size_t i = 0; i < source.size(); ++i) {
    const char ch = source[i];
    const char next = i + 1 < source.size() ? source[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (ch == '/' && next == '/') {
          state = State::kLine;
          ++i;
        } else if (ch == '/' && next == '*') {
          state = State::kBlock;
          ++i;
        } else {
          code.push_back(ch);
        }
        break;
      case State::kLine:
        if (ch == '\n') {
          state = State::kCode;
          code.push_back('\n');
        }
        break;
      case State::kBlock:
        if (ch == '*' && next == '/') {
          state = State::kCode;
          ++i;
        } else if (ch == '\n') {
          code.push_back('\n');
        }
        break;
    }
  }
  return code;
}

std::vector<Token> tokenize(const std::string& code) {
  std::vector<Token> toks;
  int line = 1;
  std::size_t line_start = 0;  // offset just past the last newline
  const auto col_of = [&](std::size_t i) {
    return static_cast<int>(i - line_start) + 1;
  };
  for (std::size_t i = 0; i < code.size();) {
    const char c = code[i];
    if (c == '\n') {
      ++line;
      ++i;
      line_start = i;
    } else if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
    } else if (is_ident_start(c)) {
      std::size_t j = i + 1;
      while (j < code.size() && is_ident_char(code[j])) ++j;
      toks.push_back({code.substr(i, j - i), line, col_of(i)});
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i + 1;
      while (j < code.size() && (is_ident_char(code[j]) || code[j] == '.')) ++j;
      toks.push_back({code.substr(i, j - i), line, col_of(i)});
      i = j;
    } else {
      toks.push_back({std::string(1, c), line, col_of(i)});
      ++i;
    }
  }
  return toks;
}

std::map<std::string, std::string> collect_defines(const std::string& code) {
  std::map<std::string, std::string> defines;
  std::size_t start = 0;
  while (start <= code.size()) {
    const std::size_t nl = code.find('\n', start);
    const std::string ln =
        code.substr(start, nl == std::string::npos ? nl : nl - start);
    start = nl == std::string::npos ? code.size() + 1 : nl + 1;
    std::size_t p = ln.find_first_not_of(" \t");
    if (p == std::string::npos || ln.compare(p, 7, "#define") != 0) continue;
    p += 7;
    p = ln.find_first_not_of(" \t", p);
    if (p == std::string::npos || !is_ident_start(ln[p])) continue;
    std::size_t q = p;
    while (q < ln.size() && is_ident_char(ln[q])) ++q;
    const std::string name = ln.substr(p, q - p);
    if (q < ln.size() && ln[q] == '(') continue;  // function-like macro
    defines[name] = ln.substr(q);
  }
  return defines;
}

namespace {

bool eval_atom(const std::vector<Token>& toks, std::size_t& pos,
               const std::map<std::string, std::string>& defines, int depth,
               long& out) {
  if (depth > 8 || pos >= toks.size()) return false;
  const std::string& s = toks[pos].text;
  if (s == "-") {
    ++pos;
    if (!eval_atom(toks, pos, defines, depth + 1, out)) return false;
    out = -out;
    return true;
  }
  if (s == "(") {
    ++pos;
    if (!eval_const_expr(toks, pos, defines, depth + 1, out)) return false;
    if (pos >= toks.size() || toks[pos].text != ")") return false;
    ++pos;
    return true;
  }
  if (std::isdigit(static_cast<unsigned char>(s[0]))) {
    if (s.size() > 12 || !std::all_of(s.begin(), s.end(), [](char c) {
          return std::isdigit(static_cast<unsigned char>(c));
        })) {
      return false;
    }
    out = std::stol(s);
    ++pos;
    return true;
  }
  auto it = defines.find(s);
  if (it == defines.end()) return false;
  std::vector<Token> sub = tokenize(it->second);
  std::size_t sp = 0;
  if (!eval_const_expr(sub, sp, defines, depth + 1, out) || sp != sub.size()) {
    return false;
  }
  ++pos;
  return true;
}

}  // namespace

bool eval_const_expr(const std::vector<Token>& toks, std::size_t& pos,
                     const std::map<std::string, std::string>& defines,
                     int depth, long& out) {
  long acc = 0;
  if (!eval_atom(toks, pos, defines, depth, acc)) return false;
  while (pos < toks.size()) {
    const std::string& op = toks[pos].text;
    if (op != "*" && op != "/" && op != "+" && op != "-") break;
    ++pos;
    long rhs = 0;
    if (!eval_atom(toks, pos, defines, depth, rhs)) return false;
    if (op == "*") {
      acc *= rhs;
    } else if (op == "/") {
      if (rhs == 0) return false;
      acc /= rhs;
    } else if (op == "+") {
      acc += rhs;
    } else {
      acc -= rhs;
    }
  }
  out = acc;
  return true;
}

bool eval_define(const std::string& name,
                 const std::map<std::string, std::string>& defines, long& out) {
  const auto it = defines.find(name);
  if (it == defines.end()) return false;
  std::vector<Token> sub = tokenize(it->second);
  std::size_t pos = 0;
  return eval_const_expr(sub, pos, defines, 0, out) && pos == sub.size();
}

std::size_t type_size(const std::string& name, std::size_t real_t_bytes) {
  static const std::map<std::string, std::size_t> kScalar = {
      {"char", 1},  {"uchar", 1},  {"short", 2}, {"ushort", 2}, {"int", 4},
      {"uint", 4},  {"float", 4},  {"long", 8},  {"ulong", 8},  {"double", 8},
      {"half", 2},
  };
  if (name == "real_t") return real_t_bytes;
  if (name == "bfloat16") return 2;  // storage-only type (no device arithmetic)
  // Vector types: base type + lane-count suffix (float4, int2, ...).
  std::size_t split = name.size();
  while (split > 0 &&
         std::isdigit(static_cast<unsigned char>(name[split - 1]))) {
    --split;
  }
  const auto it = kScalar.find(name.substr(0, split));
  if (it == kScalar.end() || name.size() - split > 2) return 0;
  const std::size_t lanes =
      split < name.size() ? std::stoul(name.substr(split)) : 1;
  return lanes > 0 && lanes <= 16 ? it->second * lanes : 0;
}

std::size_t real_t_width(const std::vector<Token>& toks) {
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].text == "typedef" && toks[i + 2].text == "real_t") {
      const std::size_t w = type_size(toks[i + 1].text, 4);
      return w == 0 ? 4 : w;
    }
  }
  return 4;
}

std::string storage_t_base(const std::vector<Token>& toks) {
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].text == "typedef" && toks[i + 2].text == "storage_t") {
      return toks[i + 1].text;
    }
  }
  return "";
}

std::size_t storage_t_width(const std::vector<Token>& toks) {
  const std::string base = storage_t_base(toks);
  if (base.empty()) return 0;
  const std::size_t w = type_size(base, 4);
  return w == 0 ? 4 : w;
}

}  // namespace alsmf::ocl::analyze
