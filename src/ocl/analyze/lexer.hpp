// Shared lexical layer of the OpenCL-C tooling: the tokenizer, comment
// stripper, `#define` table, constant-expression evaluator and type sizing
// that both the structural lint (ocl/kernel_lint) and the static analyzer
// (ocl/analyze) are built on. One lexer means the two layers can never
// disagree about what a token is.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace alsmf::ocl::analyze {

struct Token {
  std::string text;
  int line = 0;
  int col = 0;  // 1-based column of the token's first character
};

bool is_ident_start(char c);
bool is_ident_char(char c);
bool is_identifier(const Token& t);

/// Replaces // and /* */ comments (and nothing else) with whitespace,
/// preserving line numbers.
std::string strip_comments(const std::string& source);

/// Splits comment-stripped code into identifiers, numeric literals and
/// single punctuation characters, with 1-based line numbers.
std::vector<Token> tokenize(const std::string& code);

/// Object-like `#define NAME value` macros, scanned line by line from
/// comment-stripped code. Function-like macros are skipped.
std::map<std::string, std::string> collect_defines(const std::string& code);

/// Tiny constant-expression evaluator: integer literals, #define'd names
/// (resolved recursively), unary minus, + - * / and parens. Returns false
/// when the expression involves anything else. Advances `pos`.
bool eval_const_expr(const std::vector<Token>& toks, std::size_t& pos,
                     const std::map<std::string, std::string>& defines,
                     int depth, long& out);

/// Evaluates a whole #define'd name to an integer, if possible.
bool eval_define(const std::string& name,
                 const std::map<std::string, std::string>& defines, long& out);

/// sizeof() for the OpenCL scalar/vector types (`float4`, `int2`, ...).
/// `real_t` resolves to `real_t_bytes`. Returns 0 for unknown types.
std::size_t type_size(const std::string& name, std::size_t real_t_bytes);

/// Width of `real_t` from a `typedef <type> real_t;` in the token stream
/// (4 when absent or unreadable).
std::size_t real_t_width(const std::vector<Token>& toks);

/// Underlying type name of a `typedef <type> storage_t;` ("half",
/// "bfloat16", "float", ...), or "" when the source declares no storage
/// typedef (factors are stored as real_t).
std::string storage_t_base(const std::vector<Token>& toks);

/// Width of `storage_t` from its typedef (0 when absent).
std::size_t storage_t_width(const std::vector<Token>& toks);

}  // namespace alsmf::ocl::analyze
