#include "ocl/analyze/parser.hpp"

#include <cctype>

#include "ocl/analyze/lexer.hpp"

namespace alsmf::ocl::analyze {

namespace {

bool is_type_name(const std::string& s) {
  return s == "void" || s == "real_t" || s == "storage_t" ||
         type_size(s, 4) != 0;
}

bool is_qualifier(const std::string& s) {
  return s == "const" || s == "restrict" || s == "volatile" ||
         s == "unsigned" || s == "static" || s == "__global" ||
         s == "__local" || s == "__constant" || s == "__private";
}

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  TranslationUnit parse() {
    TranslationUnit tu;
    tu.real_t_bytes = real_t_width(toks_);
    tu.storage_t_bytes = storage_t_width(toks_);
    tu.storage_t_base = storage_t_base(toks_);
    while (!eof()) {
      if (peek() == "typedef") {
        while (!eof() && peek() != ";") advance();
        expect(";");
      } else {
        tu.functions.push_back(parse_function());
      }
    }
    return tu;
  }

 private:
  // --- token plumbing ---
  bool eof() const { return pos_ >= toks_.size(); }
  const std::string& peek(std::size_t ahead = 0) const {
    static const std::string kEnd;
    return pos_ + ahead < toks_.size() ? toks_[pos_ + ahead].text : kEnd;
  }
  int line() const {
    return pos_ < toks_.size() ? toks_[pos_].line
                               : (toks_.empty() ? 0 : toks_.back().line);
  }
  int col() const {
    return pos_ < toks_.size() ? toks_[pos_].col
                               : (toks_.empty() ? 0 : toks_.back().col);
  }
  const Token& advance() {
    if (eof()) fail("unexpected end of source");
    return toks_[pos_++];
  }
  void expect(const std::string& s) {
    if (eof() || peek() != s) {
      fail("expected '" + s + "', got '" + (eof() ? "<eof>" : peek()) + "'");
    }
    ++pos_;
  }
  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError{line(), msg};
  }

  /// The lexer emits single punctuation characters; multi-character
  /// operators are recombined here. Returns the operator at the cursor (or
  /// "" for non-operators) without consuming; `op_len_` holds its width.
  std::string peek_op() {
    static const char* kTwo[] = {"<=", ">=", "==", "!=", "&&", "||", "+=",
                                 "-=", "*=", "/=", "%=", "&=", "|=", "^=",
                                 "++", "--"};
    const std::string a = peek(), b = peek(1);
    if (a.size() == 1 && b.size() == 1) {
      const std::string two = a + b;
      for (const char* t : kTwo) {
        if (two == t) {
          op_len_ = 2;
          return two;
        }
      }
    }
    op_len_ = 1;
    return a;
  }
  void consume_op() { pos_ += op_len_; }

  // --- declarations ---
  FunctionDecl parse_function() {
    FunctionDecl fn;
    fn.line = line();
    while (peek() == "inline" || peek() == "static" || peek() == "__kernel" ||
           peek() == "__attribute__") {
      if (peek() == "__kernel") fn.is_kernel = true;
      if (peek() == "__attribute__") {
        advance();
        skip_balanced_parens();
        continue;
      }
      advance();
    }
    if (!is_type_name(peek())) fail("expected return type, got '" + peek() + "'");
    advance();  // return type (only void appears; value irrelevant here)
    if (!is_ident()) fail("expected function name");
    fn.name = advance().text;
    expect("(");
    while (peek() != ")") {
      fn.params.push_back(parse_param());
      if (peek() == ",") advance();
    }
    expect(")");
    while (peek() == "__attribute__") {
      advance();
      skip_balanced_parens();
    }
    expect("{");
    while (peek() != "}") fn.body.push_back(parse_stmt());
    expect("}");
    return fn;
  }

  ParamDecl parse_param() {
    ParamDecl p;
    p.line = line();
    while (is_qualifier(peek())) {
      if (peek() == "__global") p.is_global = true;
      if (peek() == "__local") p.is_local = true;
      if (peek() == "const") p.is_const = true;
      advance();
    }
    if (!is_type_name(peek())) fail("expected parameter type, got '" + peek() + "'");
    p.type = advance().text;
    while (peek() == "*" || is_qualifier(peek())) {
      if (peek() == "*") p.is_pointer = true;
      advance();
    }
    if (!is_ident()) fail("expected parameter name");
    p.name = advance().text;
    return p;
  }

  void skip_balanced_parens() {
    expect("(");
    int depth = 1;
    while (depth > 0) {
      const std::string& t = advance().text;
      if (t == "(") ++depth;
      if (t == ")") --depth;
    }
  }

  // --- statements ---
  StmtPtr parse_stmt() {
    auto s = std::make_unique<Stmt>();
    s->line = line();
    s->col = col();
    const std::string& t = peek();
    if (t == "{") {
      advance();
      s->kind = Stmt::Kind::kBlock;
      while (peek() != "}") s->body.push_back(parse_stmt());
      expect("}");
      return s;
    }
    if (t == "if") {
      advance();
      s->kind = Stmt::Kind::kIf;
      expect("(");
      s->cond = parse_expr();
      expect(")");
      s->body.push_back(parse_stmt());
      if (peek() == "else") {
        advance();
        s->else_body.push_back(parse_stmt());
      }
      return s;
    }
    if (t == "for") {
      advance();
      s->kind = Stmt::Kind::kFor;
      expect("(");
      if (peek() == ";") {
        advance();
      } else {
        s->for_init = parse_decl_or_expr_stmt();
      }
      if (peek() != ";") s->cond = parse_expr();
      expect(";");
      if (peek() != ")") s->step = parse_expr();
      expect(")");
      s->body.push_back(parse_stmt());
      return s;
    }
    if (t == "while") {
      advance();
      s->kind = Stmt::Kind::kWhile;
      expect("(");
      s->cond = parse_expr();
      expect(")");
      s->body.push_back(parse_stmt());
      return s;
    }
    if (t == "return") {
      advance();
      s->kind = Stmt::Kind::kReturn;
      if (peek() != ";") s->cond = parse_expr();
      expect(";");
      return s;
    }
    if (t == "continue" || t == "break") {
      s->kind = t == "continue" ? Stmt::Kind::kContinue : Stmt::Kind::kBreak;
      advance();
      expect(";");
      return s;
    }
    if (t == "barrier" && peek(1) == "(") {
      s->kind = Stmt::Kind::kBarrier;
      advance();
      skip_balanced_parens();
      expect(";");
      return s;
    }
    return parse_decl_or_expr_stmt();
  }

  /// Declaration or expression statement (also the for-init clause).
  /// Consumes the trailing ';'.
  StmtPtr parse_decl_or_expr_stmt() {
    auto s = std::make_unique<Stmt>();
    s->line = line();
    s->col = col();
    const std::size_t save = pos_;
    bool is_local = false;
    while (is_qualifier(peek())) {
      if (peek() == "__local") is_local = true;
      advance();
    }
    if (is_type_name(peek()) &&
        (pos_ + 1 < toks_.size() && is_ident_start(peek(1)[0]) &&
         !is_type_name(peek(1)))) {
      s->kind = Stmt::Kind::kDecl;
      s->is_local = is_local;
      s->type = advance().text;
      s->name = advance().text;
      if (peek() == "[") {
        advance();
        s->array_extent = parse_expr();
        expect("]");
      }
      if (peek() == "=") {
        advance();
        s->init = parse_expr();
      }
      if (peek() == ",") fail("multi-declarator statements are unsupported");
      expect(";");
      return s;
    }
    pos_ = save;
    s->kind = Stmt::Kind::kExpr;
    s->cond = parse_expr();
    expect(";");
    return s;
  }

  // --- expressions ---
  bool is_ident() const {
    return !eof() && !peek().empty() && is_ident_start(peek()[0]) &&
           !std::isdigit(static_cast<unsigned char>(peek()[0]));
  }

  ExprPtr make(Expr::Kind k) {
    auto e = std::make_unique<Expr>();
    e->kind = k;
    e->line = line();
    e->col = col();
    return e;
  }

  ExprPtr parse_expr() { return parse_assignment(); }

  ExprPtr parse_assignment() {
    ExprPtr lhs = parse_ternary();
    const std::string op = peek_op();
    if (op == "=" || op == "+=" || op == "-=" || op == "*=" || op == "/=" ||
        op == "%=" || op == "&=" || op == "|=" || op == "^=") {
      auto e = make(Expr::Kind::kBinary);
      e->name = op;
      consume_op();
      e->kids.push_back(std::move(lhs));
      e->kids.push_back(parse_assignment());
      return e;
    }
    return lhs;
  }

  ExprPtr parse_ternary() {
    ExprPtr c = parse_binary(1);
    if (peek() == "?") {
      auto e = make(Expr::Kind::kTernary);
      advance();
      e->kids.push_back(std::move(c));
      e->kids.push_back(parse_assignment());
      expect(":");
      e->kids.push_back(parse_ternary());
      return e;
    }
    return c;
  }

  static int precedence(const std::string& op) {
    if (op == "||") return 1;
    if (op == "&&") return 2;
    if (op == "|") return 3;
    if (op == "^") return 4;
    if (op == "&") return 5;
    if (op == "==" || op == "!=") return 6;
    if (op == "<" || op == ">" || op == "<=" || op == ">=") return 7;
    if (op == "+" || op == "-") return 8;
    if (op == "*" || op == "/" || op == "%") return 9;
    return 0;
  }

  ExprPtr parse_binary(int min_prec) {
    ExprPtr lhs = parse_unary();
    for (;;) {
      const std::string op = peek_op();
      const int prec = precedence(op);
      // `++`/`--` pair with assignment handling, not binary precedence.
      if (prec < min_prec || op == "++" || op == "--") return lhs;
      consume_op();
      ExprPtr rhs = parse_binary(prec + 1);
      auto e = make(Expr::Kind::kBinary);
      e->name = op;
      e->kids.push_back(std::move(lhs));
      e->kids.push_back(std::move(rhs));
      lhs = std::move(e);
    }
  }

  ExprPtr parse_unary() {
    const std::string op = peek_op();
    if (op == "-" || op == "!" || op == "++" || op == "--") {
      auto e = make(Expr::Kind::kUnary);
      e->name = op;
      consume_op();
      e->kids.push_back(parse_unary());
      return e;
    }
    return parse_postfix();
  }

  ExprPtr parse_postfix() {
    ExprPtr e = parse_primary();
    for (;;) {
      const std::string& t = peek();
      if (t == "(" && e->kind == Expr::Kind::kIdent) {
        auto call = make(Expr::Kind::kCall);
        call->name = e->name;
        call->line = e->line;
        advance();
        while (peek() != ")") {
          call->kids.push_back(parse_assignment());
          if (peek() == ",") advance();
        }
        expect(")");
        e = std::move(call);
      } else if (t == "[") {
        auto idx = make(Expr::Kind::kIndex);
        advance();
        idx->kids.push_back(std::move(e));
        idx->kids.push_back(parse_expr());
        expect("]");
        e = std::move(idx);
      } else if (t == "." && pos_ + 1 < toks_.size() &&
                 is_ident_start(peek(1)[0])) {
        auto mem = make(Expr::Kind::kMember);
        advance();
        mem->name = advance().text;
        mem->kids.push_back(std::move(e));
        e = std::move(mem);
      } else if (peek_op() == "++" || peek_op() == "--") {
        auto post = make(Expr::Kind::kUnary);
        post->name = peek_op();
        consume_op();
        post->kids.push_back(std::move(e));
        e = std::move(post);
      } else {
        return e;
      }
    }
  }

  ExprPtr parse_primary() {
    if (eof()) fail("unexpected end of expression");
    const std::string& t = peek();
    if (std::isdigit(static_cast<unsigned char>(t[0]))) {
      const Token& tok = advance();
      bool all_digits = true;
      for (char c : tok.text) {
        if (!std::isdigit(static_cast<unsigned char>(c))) all_digits = false;
      }
      if (all_digits) {
        auto e = make(Expr::Kind::kIntLit);
        e->line = tok.line;
        e->col = tok.col;
        e->ival = std::stol(tok.text);
        return e;
      }
      auto e = make(Expr::Kind::kFloatLit);
      e->line = tok.line;
      e->col = tok.col;
      e->name = tok.text;
      return e;
    }
    if (t == "(") {
      // Cast `(type) unary` vs grouping `(expr)`.
      if (is_type_name(peek(1)) && peek(2) == ")") {
        auto e = make(Expr::Kind::kCast);
        advance();
        e->name = advance().text;
        expect(")");
        e->kids.push_back(parse_unary());
        return e;
      }
      advance();
      ExprPtr e = parse_expr();
      expect(")");
      return e;
    }
    if (is_ident_start(t[0]) &&
        !std::isdigit(static_cast<unsigned char>(t[0]))) {
      auto e = make(Expr::Kind::kIdent);
      e->name = advance().text;
      return e;
    }
    fail("unexpected token '" + t + "' in expression");
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
  std::size_t op_len_ = 1;
};

/// Blanks preprocessor lines (they are captured in `defines` separately),
/// preserving newlines for line numbers.
std::string strip_preprocessor(const std::string& code) {
  std::string out;
  out.reserve(code.size());
  std::size_t start = 0;
  while (start < code.size()) {
    std::size_t nl = code.find('\n', start);
    if (nl == std::string::npos) nl = code.size();
    const std::size_t p = code.find_first_not_of(" \t", start);
    if (!(p != std::string::npos && p < nl && code[p] == '#')) {
      out.append(code, start, nl - start);
    }
    if (nl < code.size()) out.push_back('\n');
    start = nl + 1;
  }
  return out;
}

}  // namespace

TranslationUnit parse_translation_unit(const std::string& source) {
  const std::string code = strip_comments(source);
  Parser parser(tokenize(strip_preprocessor(code)));
  TranslationUnit tu = parser.parse();
  tu.defines = collect_defines(code);
  return tu;
}

}  // namespace alsmf::ocl::analyze
