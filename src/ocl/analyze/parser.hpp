// Recursive-descent parser for the generated-kernel OpenCL-C subset.
// Reuses the lint lexer (lexer.hpp) so lint and analysis can never
// tokenize differently.
#pragma once

#include <string>

#include "ocl/analyze/ast.hpp"

namespace alsmf::ocl::analyze {

/// Parses a whole kernel source file: the preamble typedef/defines, helper
/// functions and every __kernel. Preprocessor lines are recorded in
/// TranslationUnit::defines and otherwise skipped (the generator only uses
/// object-like constants). Throws ParseError on unsupported constructs.
TranslationUnit parse_translation_unit(const std::string& source);

}  // namespace alsmf::ocl::analyze
