#include "ocl/analyze/precision/domain.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace alsmf::ocl::analyze::precision {

namespace {

double round_err(double maxabs, const FloatFormat& f) {
  return f.unit_roundoff * maxabs;
}

AVal hull4(double a, double b, double c, double d) {
  AVal v;
  v.lo = std::min(std::min(a, b), std::min(c, d));
  v.hi = std::max(std::max(a, b), std::max(c, d));
  return v;
}

}  // namespace

FloatFormat fp32_format() { return FloatFormat{}; }

FloatFormat fp16_format() {
  FloatFormat f;
  f.name = "fp16";
  f.unit_roundoff = 0x1p-11;
  f.max_finite = 65504.0;
  f.min_normal = 0x1p-14;
  f.flush_subnormals = true;  // FTZ storage is the worst case we certify
  return f;
}

FloatFormat bf16_format() {
  FloatFormat f;
  f.name = "bf16";
  f.unit_roundoff = 0x1p-8;
  f.max_finite = 3.3895313892515355e38;  // 0x7f7f pattern
  f.min_normal = 1.1754943508222875e-38;
  f.flush_subnormals = false;  // bf16 normals reach fp32's floor
  return f;
}

bool format_for_type(const std::string& type, const std::string& storage_base,
                     FloatFormat& out) {
  std::string t = type;
  if (t == "storage_t") t = storage_base.empty() ? "real_t" : storage_base;
  if (t == "real_t" || t == "float" || t == "double") {
    out = fp32_format();  // real_t is modeled at fp32 throughout the repo
    return true;
  }
  if (t == "half") {
    out = fp16_format();
    return true;
  }
  if (t == "bfloat16") {
    out = bf16_format();
    return true;
  }
  return false;
}

double AVal::maxabs() const {
  return std::max(std::fabs(lo), std::fabs(hi)) + err;
}

AVal AVal::join(const AVal& o) const {
  AVal v;
  v.lo = std::min(lo, o.lo);
  v.hi = std::max(hi, o.hi);
  v.err = std::max(err, o.err);
  v.nan_possible = nan_possible || o.nan_possible;
  return v;
}

AVal add(const AVal& a, const AVal& b, const FloatFormat& f) {
  AVal v;
  v.lo = a.lo + b.lo;
  v.hi = a.hi + b.hi;
  v.err = a.err + b.err;
  v.err += round_err(v.maxabs(), f);
  v.nan_possible = a.nan_possible || b.nan_possible;
  return v;
}

AVal sub(const AVal& a, const AVal& b, const FloatFormat& f) {
  return add(a, neg(b), f);
}

AVal mul(const AVal& a, const AVal& b, const FloatFormat& f) {
  AVal v = hull4(a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi);
  // |fl(ab) - a'b'| <= |a|·eb + |b|·ea + ea·eb + u·|ab|.
  v.err = a.maxabs() * b.err + b.maxabs() * a.err + a.err * b.err;
  v.err += round_err(v.maxabs(), f);
  v.nan_possible = a.nan_possible || b.nan_possible;
  return v;
}

AVal div(const AVal& a, const AVal& b, const FloatFormat& f) {
  AVal v;
  v.nan_possible = a.nan_possible || b.nan_possible;
  const double bmin = std::min(std::fabs(b.lo), std::fabs(b.hi));
  if (b.lo - b.err <= 0 && b.hi + b.err >= 0) {
    // Denominator can vanish (or change sign through zero): poison the
    // result rather than bound it.
    v.nan_possible = true;
    v.lo = -std::numeric_limits<double>::infinity();
    v.hi = std::numeric_limits<double>::infinity();
    v.err = std::numeric_limits<double>::infinity();
    return v;
  }
  v = hull4(a.lo / b.lo, a.lo / b.hi, a.hi / b.lo, a.hi / b.hi);
  v.nan_possible = a.nan_possible || b.nan_possible;
  // Quotient-rule bound evaluated at the interval extremes.
  v.err = (a.err + v.maxabs() * b.err) / std::max(bmin - b.err, 1e-300);
  v.err += round_err(v.maxabs(), f);
  return v;
}

AVal neg(const AVal& a) {
  AVal v;
  v.lo = -a.hi;
  v.hi = -a.lo;
  v.err = a.err;
  v.nan_possible = a.nan_possible;
  return v;
}

AVal sqrt_op(const AVal& a, const FloatFormat& f) {
  AVal v;
  v.nan_possible = a.nan_possible;
  if (a.lo - a.err < 0) v.nan_possible = true;
  const double lo = std::max(0.0, a.lo);
  const double hi = std::max(0.0, a.hi);
  v.lo = std::sqrt(lo);
  v.hi = std::sqrt(hi);
  // d sqrt = 1/(2 sqrt): steepest at the interval's low end.
  v.err = a.err > 0 ? a.err / (2 * std::max(v.lo, std::sqrt(a.err))) : 0;
  v.err += round_err(v.maxabs(), f);
  return v;
}

AVal fabs_op(const AVal& a) {
  AVal v;
  if (a.lo >= 0) {
    v.lo = a.lo;
    v.hi = a.hi;
  } else if (a.hi <= 0) {
    v.lo = -a.hi;
    v.hi = -a.lo;
  } else {
    v.lo = 0;
    v.hi = std::max(-a.lo, a.hi);
  }
  v.err = a.err;
  v.nan_possible = a.nan_possible;
  return v;
}

AVal min_op(const AVal& a, const AVal& b) {
  AVal v;
  v.lo = std::min(a.lo, b.lo);
  v.hi = std::min(a.hi, b.hi);
  v.err = std::max(a.err, b.err);
  v.nan_possible = a.nan_possible || b.nan_possible;
  return v;
}

AVal max_op(const AVal& a, const AVal& b) {
  AVal v;
  v.lo = std::max(a.lo, b.lo);
  v.hi = std::max(a.hi, b.hi);
  v.err = std::max(a.err, b.err);
  v.nan_possible = a.nan_possible || b.nan_possible;
  return v;
}

AVal accumulate(const AVal& entry, const AVal& inc, double n,
                const FloatFormat& f) {
  AVal v;
  v.lo = entry.lo + n * std::min(0.0, inc.lo);
  v.hi = entry.hi + n * std::max(0.0, inc.hi);
  v.err = entry.err + n * inc.err;
  v.err += n * round_err(v.maxabs(), f);  // n add roundings at final magnitude
  v.nan_possible = entry.nan_possible || inc.nan_possible;
  return v;
}

Quantized quantize(const AVal& v, const FloatFormat& storage) {
  Quantized q;
  q.val = v;
  q.val.nan_possible = v.nan_possible;
  const double mag = v.maxabs();
  const double interval_mag = std::max(std::fabs(v.lo), std::fabs(v.hi));
  if (!(interval_mag <= storage.max_finite)) {
    q.overflow_possible = true;  // also catches inf/nan intervals
  }
  // Some nonzero value of the (error-widened) interval can land strictly
  // under the normal range, where FTZ storage loses it entirely.
  const double lo_w = v.lo - v.err;
  const double hi_w = v.hi + v.err;
  const bool nonzero = !(v.lo == 0 && v.hi == 0 && v.err == 0);
  const double min_mag = (lo_w <= 0 && hi_w >= 0)
                             ? 0.0
                             : std::min(std::fabs(lo_w), std::fabs(hi_w));
  q.subnormal_possible =
      storage.flush_subnormals && nonzero && min_mag < storage.min_normal;
  // FTZ can replace any subnormal by 0, so the absolute floor of the
  // quantization error is a full min_normal; exact storage only loses the
  // subnormal granularity.
  const double floor = storage.flush_subnormals
                           ? storage.min_normal
                           : storage.min_normal * storage.unit_roundoff * 2;
  q.val.err = v.err + std::max(storage.unit_roundoff * mag, floor);
  return q;
}

}  // namespace alsmf::ocl::analyze::precision
