// The abstract domain of the static precision analyzer (precision.hpp):
// an interval of the exact (infinite-precision) value combined with an
// absolute rounding-error bound and a NaN-possibility flag, propagated
// through each operation with the standard forward error model
//   fl(a op b) = (a op b)(1 + d),  |d| <= u(format)
// so after any chain of ops `err` bounds |computed - exact| whenever the
// exact value stays inside [lo, hi]. Narrow storage formats (fp16 / bf16)
// add a quantization step that also reports overflow past the format's
// finite ceiling and flush-to-zero loss below its normal range — the two
// hazards the certifier gates on.
#pragma once

#include <cstddef>
#include <string>

namespace alsmf::ocl::analyze::precision {

/// A floating-point format as the error model sees it: unit roundoff,
/// finite ceiling, and the bottom of the normal range (for modeling
/// flush-to-zero storage, the worst case OpenCL permits for halves).
struct FloatFormat {
  const char* name = "fp32";
  double unit_roundoff = 0x1p-24;
  double max_finite = 3.4028234663852886e38;
  double min_normal = 1.1754943508222875e-38;
  bool flush_subnormals = false;
};

FloatFormat fp32_format();
FloatFormat fp16_format();  // u = 2^-11, max 65504, min normal 2^-14, FTZ
FloatFormat bf16_format();  // u = 2^-8, fp32 exponent range

/// Maps a source-level type name ("half", "bfloat16", "float", "real_t",
/// "storage_t" via the storage base) to its format; nullptr-like false
/// return when the name is not a float type.
bool format_for_type(const std::string& type, const std::string& storage_base,
                     FloatFormat& out);

/// The abstract value.
struct AVal {
  double lo = 0;
  double hi = 0;
  double err = 0;         ///< |computed - exact| bound
  bool nan_possible = false;

  static AVal constant(double v) { return AVal{v, v, 0, false}; }
  static AVal range(double l, double h, double e = 0) {
    return AVal{l, h, e, false};
  }

  /// Largest magnitude the *computed* value can reach: the interval hull
  /// widened by the error bound.
  double maxabs() const;
  /// Interval hull + pointwise max of error/NaN — the join at control-flow
  /// merges.
  AVal join(const AVal& o) const;
};

// Abstract transfer functions. `f` is the compute format (the format the
// operation rounds in — real_t for every generated accumulator).
AVal add(const AVal& a, const AVal& b, const FloatFormat& f);
AVal sub(const AVal& a, const AVal& b, const FloatFormat& f);
AVal mul(const AVal& a, const AVal& b, const FloatFormat& f);
AVal div(const AVal& a, const AVal& b, const FloatFormat& f);
AVal neg(const AVal& a);
AVal sqrt_op(const AVal& a, const FloatFormat& f);
AVal fabs_op(const AVal& a);
AVal min_op(const AVal& a, const AVal& b);
AVal max_op(const AVal& a, const AVal& b);

/// N-fold accumulation closed form: the post-state of `acc += inc` run
/// `n` times when `inc`'s abstraction is loop-invariant. Interval: entry
/// shifted by n times the signed hull of the increment; error: entry + n
/// per-iteration increment errors + n add roundings at the final
/// magnitude (the standard  Σ u·|s_i| <= n·u·max|s|  bound).
AVal accumulate(const AVal& entry, const AVal& inc, double n,
                const FloatFormat& f);

/// Rounding a value into a (possibly narrower) storage format.
///
/// `overflow_possible` is judged on the exact-value interval [lo, hi], not
/// the error-widened hull: the interval is the range the computation can
/// reach in infinite precision, and that is the claim the overflow gate
/// certifies. Roundoff drift is bounded separately by `err` and checked by
/// the dynamic-dominance leg — drift large enough to overflow on its own
/// would need err comparable to the format ceiling, which the reported
/// error bound makes visible (and which poisons to an unbounded-error
/// finding when it diverges outright).
struct Quantized {
  AVal val;
  bool overflow_possible = false;   ///< interval can pass max_finite
  bool subnormal_possible = false;  ///< nonzero |v| can land under min_normal
};
Quantized quantize(const AVal& v, const FloatFormat& storage);

}  // namespace alsmf::ocl::analyze::precision
