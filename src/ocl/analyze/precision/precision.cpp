#include "ocl/analyze/precision/precision.hpp"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <sstream>

#include "ocl/analyze/parser.hpp"

namespace alsmf::ocl::analyze::precision {

namespace {

[[noreturn]] void fail(int line, const std::string& msg) {
  throw ParseError{line, "precision: " + msg};
}

bool is_narrow_type(const std::string& t) {
  return t == "storage_t" || t == "half" || t == "bfloat16";
}

bool is_real_like(const std::string& t) {
  return t == "real_t" || t == "float" || t == "double" || is_narrow_type(t);
}

/// Does any expression under `e` call `name`?
bool expr_calls(const Expr& e, const char* name) {
  if (e.kind == Expr::Kind::kCall && e.name == name) return true;
  for (const auto& k : e.kids) {
    if (k && expr_calls(*k, name)) return true;
  }
  return false;
}

bool stmt_calls(const Stmt& s, const char* name) {
  for (const ExprPtr* e : {&s.cond, &s.step, &s.init, &s.array_extent}) {
    if (*e && expr_calls(**e, name)) return true;
  }
  if (s.for_init && stmt_calls(*s.for_init, name)) return true;
  for (const auto& b : s.body) {
    if (b && stmt_calls(*b, name)) return true;
  }
  for (const auto& b : s.else_body) {
    if (b && stmt_calls(*b, name)) return true;
  }
  return false;
}

/// The walker's value: a numeric abstraction or a pointer to a named
/// array/buffer (pointer offsets don't matter — targets are summarized).
struct PVal {
  AVal num = AVal::constant(0);
  bool is_ptr = false;
  std::string target;
};

struct ArrState {
  AVal sum = AVal::constant(0);  // element summary (join of all stores)
  bool narrow = false;           // declared in a narrow storage type
  FloatFormat fmt;
};

struct BufState {
  AVal range = AVal::constant(0);  // load abstraction (inputs)
  bool narrow = false;
  FloatFormat fmt;                 // storage format of the elements
  bool is_real = false;
  bool written = false;
  AVal out = AVal::constant(0);    // join of stores
};

class Walker {
 public:
  Walker(const TranslationUnit& tu, const KernelIR& ir,
         const PrecisionAssumptions& as)
      : tu_(tu), ir_(ir), as_(as) {
    compute_ = fp32_format();
    if (!tu.storage_t_base.empty()) {
      if (!format_for_type(tu.storage_t_base, "", storage_)) {
        fail(0, "unknown storage_t base '" + tu.storage_t_base + "'");
      }
    } else {
      storage_ = fp32_format();
    }
  }

  PrecisionReport run() {
    const FunctionDecl* fn = nullptr;
    for (const auto& f : tu_.functions) {
      if (f.is_kernel && f.name == ir_.name) fn = &f;
    }
    if (!fn) fail(0, "kernel '" + ir_.name + "' not in translation unit");

    rep_.kernel = ir_.name;
    rep_.storage = storage_.name;
    rep_.assumptions = as_;

    for (const auto& p : fn->params) bind_param(p);
    walk_list(fn->body);

    rep_.certified = true;
    for (const auto& f : rep_.findings) {
      if (gates_certification(f.kind)) rep_.certified = false;
    }
    return rep_;
  }

 private:
  const TranslationUnit& tu_;
  const KernelIR& ir_;
  PrecisionAssumptions as_;
  PrecisionReport rep_;
  FloatFormat compute_;  // the accumulation format (real_t)
  FloatFormat storage_;  // the factor-buffer storage format

  std::map<std::string, PVal> vars_;
  std::map<std::string, ArrState> arrays_;
  std::map<std::string, BufState> bufs_;
  double loop_mult_ = 1.0;  // trip product of the open loop nest

  static AVal int_range(double lo, double hi) { return AVal::range(lo, hi); }

  void bind_param(const ParamDecl& p) {
    if (p.is_pointer && is_real_like(p.type)) {
      BufState b;
      b.is_real = true;
      b.narrow = is_narrow_type(p.type);
      b.fmt = compute_;
      if (b.narrow && !format_for_type(p.type, tu_.storage_t_base, b.fmt)) {
        fail(p.line, "unknown narrow type '" + p.type + "'");
      }
      // Input envelopes by role: ratings are bounded by R, factor rows by
      // F; anything else gets the wider of the two. The output buffer is
      // also readable (warm starts), same envelope as factors.
      const double r = as_.rating_bound;
      const double f = as_.factor_bound;
      const double bound = p.name == "values" ? r
                           : (p.name == "Y" || p.name == "X") ? f
                                                              : std::max(r, f);
      AVal range = AVal::range(-bound, bound);
      if (b.narrow) {
        // Values arrive already rounded into storage; charge the
        // quantization error (and surface overflow if the envelope itself
        // cannot be stored — it can, for any sane assumption set).
        range = do_quantize(range, b.fmt, p.line, p.name);
      }
      b.range = range;
      bufs_[p.name] = b;
      return;
    }
    if (p.is_pointer) {  // int buffer: loads yield nonnegative indices
      BufState b;
      b.is_real = false;
      b.range = int_range(0, 1e18);
      bufs_[p.name] = b;
      return;
    }
    PVal v;
    if (is_real_like(p.type)) {
      v.num = p.name == "lambda" ? AVal::range(as_.lambda_min, as_.lambda_max)
                                 : AVal::range(-1e18, 1e18);
    } else {
      v.num = int_range(0, 1e18);
    }
    vars_[p.name] = v;
  }

  // --- findings ---

  void add_finding(PrecisionFinding::Kind kind, int line,
                   const std::string& what, const AVal& v,
                   const std::string& msg) {
    for (const auto& f : rep_.findings) {
      if (f.kind == kind && f.line == line && f.what == what) return;
    }
    PrecisionFinding f;
    f.kind = kind;
    f.line = line;
    f.what = what;
    f.lo = v.lo;
    f.hi = v.hi;
    f.err = v.err;
    f.message = msg;
    rep_.findings.push_back(std::move(f));
  }

  AVal do_quantize(const AVal& v, const FloatFormat& fmt, int line,
                   const std::string& what) {
    const Quantized q = quantize(v, fmt);
    if (q.overflow_possible) {
      std::ostringstream os;
      os << "interval [" << v.lo << ", " << v.hi << "] can exceed " << fmt.name
         << " finite ceiling " << fmt.max_finite;
      add_finding(PrecisionFinding::Kind::kOverflowPossible, line, what, v,
                  os.str());
    }
    if (q.subnormal_possible) {
      ++rep_.subnormal_flush_points;
      add_finding(PrecisionFinding::Kind::kSubnormalFlush, line, what, v,
                  std::string(fmt.name) +
                      " flush-to-zero can lose values below its normal range");
    }
    return q.val;
  }

  // --- loop trip counts via the access IR ---

  double trips_for(const Stmt& s) const {
    const double omega = as_.omega_max;
    const double tile =
        ir_.tile_rows_define > 0 ? static_cast<double>(ir_.tile_rows_define)
                                 : omega;
    const double ws = ir_.ws > 0 ? static_cast<double>(ir_.ws) : 1;
    for (const auto& l : ir_.loops) {
      if (l.line != s.line) continue;
      switch (l.kind) {
        case LoopIR::Kind::kRowStride:
          return 1;  // the certificate is per worst-case row
        case LoopIR::Kind::kNnz:
        case LoopIR::Kind::kDataDep:
          return omega;
        case LoopIR::Kind::kChunked:
          return std::ceil(omega / tile);
        case LoopIR::Kind::kChunkBody:
          return tile;
        case LoopIR::Kind::kLanePart:
          if (l.lane_region) return std::ceil(std::min(omega, tile) / ws);
          if (l.lane_span > 0) {
            return std::ceil(static_cast<double>(l.lane_span) / ws);
          }
          return 1;
        case LoopIR::Kind::kFixed:
          return l.trips;
      }
    }
    // Not in the table (a while loop, or a corpus mutation the lowering
    // classified differently): assume the worst symbolic count.
    return omega;
  }

  // --- the solve contract ---

  /// ‖x‖₂ ≤ R·sqrt(ω_max/λ_min): minimizing the ridge objective from x=0.
  double solution_bound() const {
    return as_.rating_bound * std::sqrt(as_.omega_max / as_.lambda_min);
  }

  AVal solve_contract(const AVal& a_sum, const AVal& b_sum) {
    const double k = ir_.k > 0 ? static_cast<double>(ir_.k) : 1;
    const double bx = solution_bound();
    const double max_a = a_sum.maxabs();
    const double max_b = b_sum.maxabs();
    AVal x = AVal::range(-bx, bx);
    x.err = (k * a_sum.err * bx + b_sum.err) / as_.lambda_min +
            k * k * compute_.unit_roundoff * (max_a * bx + max_b) /
                as_.lambda_min;
    x.nan_possible = a_sum.nan_possible || b_sum.nan_possible;
    rep_.solve_contract_applied = true;
    return x;
  }

  /// Lane-0 helper call `*_solve_inplace(a, b)`: b becomes the solution.
  void apply_call_contract(const Expr& call) {
    std::string a_name, b_name;
    if (call.kids.size() >= 2) {
      if (call.kids[0]->kind == Expr::Kind::kIdent) a_name = call.kids[0]->name;
      if (call.kids[1]->kind == Expr::Kind::kIdent) b_name = call.kids[1]->name;
    }
    AVal a_sum = a_name.empty() ? AVal::range(-1e18, 1e18)
                                : arrays_[a_name].sum;
    AVal b_sum = b_name.empty() ? AVal::range(-1e18, 1e18)
                                : arrays_[b_name].sum;
    const AVal x = solve_contract(a_sum, b_sum);
    if (!b_name.empty()) arrays_[b_name].sum = x;
    // The factorization overwrites `a` with magnitudes bounded by the
    // original matrix (Cholesky factors of an SPD matrix).
    if (!a_name.empty()) {
      const double m = a_sum.maxabs();
      arrays_[a_name].sum = AVal::range(-m, m, a_sum.err);
    }
  }

  /// Inline factorization (flat / SELL): every k×k-sized real array plays
  /// the matrix, every k-sized one the rhs/solution.
  void apply_inline_contract() {
    const long kk = ir_.k * ir_.k;
    AVal a_sum = AVal::constant(0), b_sum = AVal::constant(0);
    for (const auto& pa : ir_.private_arrays) {
      auto it = arrays_.find(pa.name);
      if (it == arrays_.end()) continue;
      (pa.elems == kk ? a_sum : b_sum) =
          (pa.elems == kk ? a_sum : b_sum).join(it->second.sum);
    }
    const AVal x = solve_contract(a_sum, b_sum);
    for (const auto& pa : ir_.private_arrays) {
      auto it = arrays_.find(pa.name);
      if (it == arrays_.end()) continue;
      if (pa.elems == kk) {
        const double m = a_sum.maxabs();
        it->second.sum = AVal::range(-m, m, a_sum.err);
      } else {
        it->second.sum = x;
      }
    }
  }

  bool stmt_has_global_store(const Stmt& s) const {
    if (s.kind == Stmt::Kind::kExpr && s.cond) {
      if (expr_global_store(*s.cond)) return true;
    }
    for (const auto& b : s.body) {
      if (b && stmt_has_global_store(*b)) return true;
    }
    for (const auto& b : s.else_body) {
      if (b && stmt_has_global_store(*b)) return true;
    }
    return false;
  }

  bool expr_global_store(const Expr& e) const {
    if (e.kind == Expr::Kind::kBinary &&
        (e.name == "=" || e.name == "+=" || e.name == "-=")) {
      const Expr& lhs = *e.kids[0];
      if (lhs.kind == Expr::Kind::kIndex) {
        const Expr* base = lhs.kids[0].get();
        while (base->kind == Expr::Kind::kBinary) base = base->kids[0].get();
        if (base->kind == Expr::Kind::kIdent &&
            bufs_.count(base->name) != 0 && bufs_.at(base->name).is_real) {
          return true;
        }
      }
    }
    for (const auto& k : e.kids) {
      if (k && expr_global_store(*k)) return true;
    }
    return false;
  }

  // --- statement walk ---

  void walk_list(const std::vector<StmtPtr>& body) {
    for (std::size_t i = 0; i < body.size(); ++i) {
      const Stmt& s = *body[i];
      // The inline-solve contract region: from the first statement that
      // computes a sqrt (the Cholesky pivot) up to the output store. The
      // substitution loops inside it are certified by the analytic
      // contract, not interval-followed (their division chains have no
      // useful interval bound).
      if (!ir_.has_lane0_solve && stmt_calls(s, "sqrt")) {
        apply_inline_contract();
        while (i < body.size() && !stmt_has_global_store(*body[i])) ++i;
        if (i < body.size()) walk_stmt(*body[i]);
        continue;
      }
      walk_stmt(s);
    }
  }

  void walk_stmt(const Stmt& s) {
    switch (s.kind) {
      case Stmt::Kind::kDecl:
        walk_decl(s);
        return;
      case Stmt::Kind::kExpr:
        if (s.cond) eval(*s.cond);
        return;
      case Stmt::Kind::kIf:
        // Both branches walked from the shared abstraction; all updates
        // inside use join/accumulate semantics, so order doesn't matter.
        walk_list(s.body);
        walk_list(s.else_body);
        return;
      case Stmt::Kind::kFor:
      case Stmt::Kind::kWhile: {
        if (s.for_init) walk_stmt(*s.for_init);
        const double n = trips_for(s);
        const double saved = loop_mult_;
        loop_mult_ = saved * std::max(1.0, n);
        walk_list(s.body);
        if (s.step) eval(*s.step);
        loop_mult_ = saved;
        return;
      }
      case Stmt::Kind::kBlock:
        walk_list(s.body);
        return;
      case Stmt::Kind::kReturn:
      case Stmt::Kind::kContinue:
      case Stmt::Kind::kBreak:
      case Stmt::Kind::kBarrier:
        return;
    }
  }

  void walk_decl(const Stmt& s) {
    if (s.array_extent) {
      ArrState a;
      a.narrow = is_narrow_type(s.type);
      a.fmt = compute_;
      if (a.narrow) format_for_type(s.type, tu_.storage_t_base, a.fmt);
      arrays_[s.name] = a;
      return;
    }
    PVal v;
    if (s.init) {
      v = eval(*s.init);
    } else {
      v.num = AVal::constant(0);
    }
    if (is_narrow_type(s.type) && !v.is_ptr) {
      // A narrow-typed scalar: everything assigned to it rounds through
      // the narrow format (this is how a narrowed-accumulator defect
      // becomes visible to the certifier).
      FloatFormat fmt = compute_;
      format_for_type(s.type, tu_.storage_t_base, fmt);
      v.num = do_quantize(v.num, fmt, s.line, s.name);
      narrow_vars_[s.name] = fmt;
    }
    vars_[s.name] = v;
  }

  std::map<std::string, FloatFormat> narrow_vars_;

  // --- expression evaluation ---

  PVal eval(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kIntLit: {
        PVal v;
        v.num = AVal::constant(static_cast<double>(e.ival));
        return v;
      }
      case Expr::Kind::kFloatLit: {
        PVal v;
        v.num = AVal::constant(std::strtod(e.name.c_str(), nullptr));
        return v;
      }
      case Expr::Kind::kIdent:
        return eval_ident(e);
      case Expr::Kind::kUnary:
        return eval_unary(e);
      case Expr::Kind::kBinary:
        return eval_binary(e);
      case Expr::Kind::kTernary: {
        eval(*e.kids[0]);
        const PVal a = eval(*e.kids[1]);
        const PVal b = eval(*e.kids[2]);
        PVal v;
        if (a.is_ptr) return a;
        v.num = a.num.join(b.num);
        return v;
      }
      case Expr::Kind::kCall:
        return eval_call(e);
      case Expr::Kind::kIndex: {
        const PVal base = eval(*e.kids[0]);
        eval(*e.kids[1]);
        return load_target(base, e.line);
      }
      case Expr::Kind::kMember:
        return eval(*e.kids[0]);  // vector components share the summary
      case Expr::Kind::kCast: {
        PVal v = eval(*e.kids[0]);
        if (is_narrow_type(e.name) && !v.is_ptr) {
          FloatFormat fmt = compute_;
          format_for_type(e.name, tu_.storage_t_base, fmt);
          v.num = do_quantize(v.num, fmt, e.line, "(cast)");
        }
        return v;
      }
    }
    fail(e.line, "unsupported expression");
  }

  PVal eval_ident(const Expr& e) {
    auto v = vars_.find(e.name);
    if (v != vars_.end()) return v->second;
    if (arrays_.count(e.name) != 0 || bufs_.count(e.name) != 0) {
      PVal p;
      p.is_ptr = true;
      p.target = e.name;
      return p;
    }
    auto d = tu_.defines.find(e.name);
    if (d != tu_.defines.end()) {
      PVal p;
      p.num = AVal::constant(std::strtod(d->second.c_str(), nullptr));
      return p;
    }
    // Unknown identifier (a launch-shape symbol): wide but finite.
    PVal p;
    p.num = int_range(0, 1e18);
    return p;
  }

  PVal load_target(const PVal& base, int line) {
    if (!base.is_ptr) fail(line, "indexing a non-pointer abstraction");
    PVal v;
    auto b = bufs_.find(base.target);
    if (b != bufs_.end()) {
      v.num = b->second.range;
      return v;
    }
    auto a = arrays_.find(base.target);
    if (a != arrays_.end()) {
      v.num = a->second.sum;
      return v;
    }
    fail(line, "unknown pointer target '" + base.target + "'");
  }

  PVal eval_unary(const Expr& e) {
    PVal v = eval(*e.kids[0]);
    if (e.name == "-") {
      v.num = neg(v.num);
      return v;
    }
    if (e.name == "!") {
      v.num = int_range(0, 1);
      return v;
    }
    return v;  // ++/--: loop-variable updates, values untracked
  }

  PVal eval_binary(const Expr& e) {
    const std::string& op = e.name;
    if (op == "=" || op == "+=" || op == "-=" || op == "*=" || op == "/=") {
      return eval_assign(e);
    }
    const PVal a = eval(*e.kids[0]);
    const PVal b = eval(*e.kids[1]);
    PVal v;
    if (a.is_ptr || b.is_ptr) return a.is_ptr ? a : b;  // pointer offset
    if (op == "<" || op == "<=" || op == ">" || op == ">=" || op == "==" ||
        op == "!=" || op == "&&" || op == "||") {
      v.num = int_range(0, 1);
      return v;
    }
    if (op == "+") v.num = add(a.num, b.num, compute_);
    else if (op == "-") v.num = sub(a.num, b.num, compute_);
    else if (op == "*") v.num = mul(a.num, b.num, compute_);
    else if (op == "/") v.num = div(a.num, b.num, compute_);
    else if (op == "%") v.num = a.num;  // index arithmetic, values untracked
    else fail(e.line, "unsupported operator '" + op + "'");
    return v;
  }

  PVal eval_assign(const Expr& e) {
    const std::string& op = e.name;
    const Expr& lhs = *e.kids[0];
    const PVal rhs = eval(*e.kids[1]);

    if (lhs.kind == Expr::Kind::kIdent) {
      auto it = vars_.find(lhs.name);
      if (it == vars_.end()) {
        vars_[lhs.name] = rhs;
        return rhs;
      }
      if (rhs.is_ptr) {
        it->second = rhs;
        return rhs;
      }
      it->second.num = combined(it->second.num, rhs.num, op, e.line);
      auto nf = narrow_vars_.find(lhs.name);
      if (nf != narrow_vars_.end()) {
        // Every store into a narrow variable rounds; under a loop the
        // rounding recurs once per trip.
        AVal q = do_quantize(it->second.num, nf->second, e.line, lhs.name);
        q.err += (loop_mult_ - 1) *
                 std::max(nf->second.unit_roundoff * q.maxabs(),
                          nf->second.min_normal);
        it->second.num = q;
      }
      return it->second;
    }
    if (lhs.kind != Expr::Kind::kIndex) {
      fail(e.line, "unsupported assignment target");
    }
    const PVal base = eval(*lhs.kids[0]);
    eval(*lhs.kids[1]);
    if (!base.is_ptr) fail(e.line, "assignment through a non-pointer");

    auto bi = bufs_.find(base.target);
    if (bi != bufs_.end()) {
      // A store to a global buffer: the certified output point.
      AVal v = rhs.num;
      if (op != "=") {
        v = combined(bi->second.out, rhs.num, op, e.line);
      }
      if (bi->second.is_real) {
        v = do_quantize(v, bi->second.fmt, e.line, base.target);
        record_output(base.target, bi->second, v, e.line);
      }
      bi->second.written = true;
      bi->second.out = bi->second.written ? bi->second.out.join(v) : v;
      PVal r;
      r.num = v;
      return r;
    }
    auto ai = arrays_.find(base.target);
    if (ai == arrays_.end()) {
      fail(e.line, "unknown store target '" + base.target + "'");
    }
    AVal v;
    if (op == "+=" || op == "-=") {
      const AVal inc = op == "+=" ? rhs.num : neg(rhs.num);
      v = accumulate(ai->second.sum, inc, loop_mult_, compute_);
    } else if (op == "=") {
      v = ai->second.sum.join(rhs.num);
    } else {
      v = ai->second.sum.join(combined(ai->second.sum, rhs.num, op, e.line));
    }
    if (ai->second.narrow) {
      v = do_quantize(v, ai->second.fmt, e.line, base.target);
      v.err += (loop_mult_ - 1) *
               std::max(ai->second.fmt.unit_roundoff * v.maxabs(),
                        ai->second.fmt.min_normal);
    }
    ai->second.sum = v;
    PVal r;
    r.num = v;
    return r;
  }

  AVal combined(const AVal& old, const AVal& rhs, const std::string& op,
                int line) {
    if (op == "=") return old.join(rhs);  // flow-insensitive: keep the hull
    if (op == "+=") return accumulate(old, rhs, loop_mult_, compute_);
    if (op == "-=") return accumulate(old, neg(rhs), loop_mult_, compute_);
    if (op == "*=") return old.join(mul(old, rhs, compute_));
    if (op == "/=") return old.join(div(old, rhs, compute_));
    fail(line, "unsupported compound assignment '" + op + "'");
  }

  void record_output(const std::string& buffer, const BufState& b,
                     const AVal& v, int line) {
    if (rep_.output_buffer.empty()) {
      rep_.output_buffer = buffer;
      rep_.output_ceiling = b.fmt.max_finite;
      rep_.output = v;
    } else if (rep_.output_buffer == buffer) {
      rep_.output = rep_.output.join(v);
    }
    if (v.nan_possible) {
      add_finding(PrecisionFinding::Kind::kNanPossible, line, buffer, v,
                  "a NaN can reach the certified output store");
    }
    if (!(v.err < std::numeric_limits<double>::infinity())) {
      add_finding(PrecisionFinding::Kind::kUnboundedError, line, buffer, v,
                  "the rounding-error bound diverged before the output store");
    }
  }

  PVal eval_call(const Expr& e) {
    const std::string& name = e.name;
    PVal v;
    if (name == "get_local_id") {
      v.num = int_range(0, std::max<long>(0, ir_.ws - 1));
      return v;
    }
    if (name == "get_group_id" || name == "get_num_groups" ||
        name == "get_global_id" || name == "get_local_size") {
      v.num = int_range(0, 1e18);
      return v;
    }
    if (name == "min" || name == "max") {
      const PVal a = eval(*e.kids[0]);
      const PVal b = eval(*e.kids[1]);
      v.num = name == "min" ? min_op(a.num, b.num) : max_op(a.num, b.num);
      return v;
    }
    if (name == "sqrt") {
      v.num = sqrt_op(eval(*e.kids[0]).num, compute_);
      return v;
    }
    if (name == "fabs") {
      v.num = fabs_op(eval(*e.kids[0]).num);
      return v;
    }
    if (name == "barrier") return v;
    if (name.rfind("vload", 0) == 0) {
      eval(*e.kids[0]);
      const PVal p = eval(*e.kids[1]);
      PVal r = load_target(p, e.line);
      if (!p.is_ptr) fail(e.line, "vload from a non-pointer");
      return r;
    }
    // An in-file helper: the lane-0 solve. Anything else in the subset
    // would have been rejected by the parser already.
    for (const auto& fn : tu_.functions) {
      if (fn.name == name && !fn.is_kernel) {
        apply_call_contract(e);
        return v;
      }
    }
    fail(e.line, "unknown function '" + name + "'");
  }
};

}  // namespace

bool gates_certification(PrecisionFinding::Kind kind) {
  switch (kind) {
    case PrecisionFinding::Kind::kOverflowPossible:
    case PrecisionFinding::Kind::kNanPossible:
    case PrecisionFinding::Kind::kUnboundedError:
      return true;
    case PrecisionFinding::Kind::kSubnormalFlush:
      return false;
  }
  return true;
}

const char* to_string(PrecisionFinding::Kind kind) {
  switch (kind) {
    case PrecisionFinding::Kind::kOverflowPossible: return "overflow-possible";
    case PrecisionFinding::Kind::kNanPossible: return "nan-possible";
    case PrecisionFinding::Kind::kUnboundedError: return "unbounded-error";
    case PrecisionFinding::Kind::kSubnormalFlush: return "subnormal-flush";
  }
  return "?";
}

PrecisionReport analyze_kernel_precision(const TranslationUnit& tu,
                                         const KernelIR& ir,
                                         const PrecisionAssumptions& as) {
  return Walker(tu, ir, as).run();
}

std::vector<PrecisionReport> analyze_source_precision(
    const std::string& source, const PrecisionAssumptions& as) {
  const TranslationUnit tu = parse_translation_unit(source);
  std::vector<PrecisionReport> out;
  for (const KernelIR& ir : lower_kernels(tu)) {
    out.push_back(analyze_kernel_precision(tu, ir, as));
  }
  return out;
}

std::string to_json(const PrecisionReport& r) {
  std::ostringstream os;
  os << "{\"kernel\":\"" << r.kernel << "\",\"storage\":\"" << r.storage
     << "\",\"certified\":" << (r.certified ? "true" : "false")
     << ",\"solve_contract\":" << (r.solve_contract_applied ? "true" : "false")
     << ",\"output\":{\"buffer\":\"" << r.output_buffer << "\",\"lo\":"
     << r.output.lo << ",\"hi\":" << r.output.hi << ",\"err\":" << r.output.err
     << ",\"nan_possible\":" << (r.output.nan_possible ? "true" : "false")
     << ",\"ceiling\":" << r.output_ceiling << "}"
     << ",\"subnormal_flush_points\":" << r.subnormal_flush_points
     << ",\"assumptions\":{\"omega_max\":" << r.assumptions.omega_max
     << ",\"rating_bound\":" << r.assumptions.rating_bound
     << ",\"factor_bound\":" << r.assumptions.factor_bound
     << ",\"lambda_min\":" << r.assumptions.lambda_min
     << ",\"lambda_max\":" << r.assumptions.lambda_max << "}"
     << ",\"findings\":[";
  for (std::size_t i = 0; i < r.findings.size(); ++i) {
    const auto& f = r.findings[i];
    if (i) os << ",";
    os << "{\"kind\":\"" << to_string(f.kind) << "\",\"line\":" << f.line
       << ",\"what\":\"" << f.what << "\",\"lo\":" << f.lo
       << ",\"hi\":" << f.hi << ",\"err\":" << f.err
       << ",\"gates\":" << (gates_certification(f.kind) ? "true" : "false")
       << ",\"message\":\"" << f.message << "\"}";
  }
  os << "]}";
  return os.str();
}

}  // namespace alsmf::ocl::analyze::precision
