// Static precision analyzer: abstract interpretation of a generated kernel
// over the interval × error domain (domain.hpp), certifying its
// mixed-precision safety before any device runs it.
//
// The walk follows the kernel AST statement by statement with one
// abstraction per scalar, per private/local array (element-summarized), and
// per global buffer. Loop bodies are visited once; `acc += e` inside a loop
// nest is closed-formed with the nest's symbolic trip product resolved
// through the access IR's loop table (kNnz trips become the assumed
// nnz-per-row ceiling, chunked staging becomes ⌈ω_max/T⌉ × T, fixed K
// loops their exact counts), so error growth through the dot-product
// reductions is priced at the worst row the certificate covers.
//
// The k×k solve is handled by an analytic contract instead of interval-
// following the factorization (whose division chains have no useful
// interval bound): ridge regularization keeps the normal equations SPD
// with λ ≥ λ_min, so ‖x‖₂ ≤ R·sqrt(ω_max/λ_min) (from λ‖x‖² ≤ ‖r‖²),
// and the solution error is the standard perturbation bound
//   err_x ≤ (k·err_A·B_x + err_b)/λ_min + k²·u·(|A|·B_x + |b|)/λ_min
// applied at the lane-0 `*_solve_inplace` call (batched kernels) or at the
// inline factorization section (flat / SELL kernels, delimited from the
// first sqrt statement to the output store loop).
//
// Certification gates (the CLI exits nonzero on any):
//   * overflow-possible — an exact-value interval crosses the finite
//     ceiling of a narrow format at any quantization point (narrow loads,
//     narrow-typed accumulators, the output store);
//   * nan-possible / unbounded error at the certified output store.
// Subnormal flush-to-zero points are reported but informational (the
// quantization error term already charges a full min_normal for them).
#pragma once

#include <string>
#include <vector>

#include "ocl/analyze/ast.hpp"
#include "ocl/analyze/ir.hpp"
#include "ocl/analyze/precision/domain.hpp"

namespace alsmf::ocl::analyze::precision {

/// The operating envelope a certificate is issued under. These are claims
/// about the data the kernel may be launched on, echoed into the report;
/// launching outside them voids the certificate.
struct PrecisionAssumptions {
  double omega_max = 4096;    ///< max nonzeros per row
  double rating_bound = 5;    ///< |values[i]| ceiling (R)
  double factor_bound = 4;    ///< |X|, |Y| entry ceiling (F)
  double lambda_min = 1.0;    ///< ridge term floor
  double lambda_max = 10.0;   ///< ridge term ceiling
};

struct PrecisionFinding {
  enum class Kind {
    kOverflowPossible,  // gated: interval crosses a finite ceiling
    kNanPossible,       // gated at the output store, informational elsewhere
    kUnboundedError,    // gated: the error bound diverged (poisoned div)
    kSubnormalFlush,    // informational: FTZ can zero a live value
  };
  Kind kind = Kind::kOverflowPossible;
  int line = 0;
  std::string what;     ///< the variable / buffer involved
  double lo = 0, hi = 0, err = 0;
  std::string message;
};

/// Whether a finding kind fails certification.
bool gates_certification(PrecisionFinding::Kind kind);

struct PrecisionReport {
  std::string kernel;
  std::string storage = "fp32";   ///< storage format of the factor buffers
  bool certified = false;         ///< no gated findings
  bool solve_contract_applied = false;
  AVal output;              ///< join of all stores to the output buffer
  std::string output_buffer;
  double output_ceiling = 0;  ///< finite max of the output storage format
  int subnormal_flush_points = 0;
  std::vector<PrecisionFinding> findings;
  PrecisionAssumptions assumptions;
};

/// Analyzes one lowered kernel. `ir` must be the lowering of the kernel
/// named `ir.name` inside `tu` (for the loop table); throws ParseError if
/// the function is missing.
PrecisionReport analyze_kernel_precision(const TranslationUnit& tu,
                                         const KernelIR& ir,
                                         const PrecisionAssumptions& as);

/// Parses + lowers `source` and analyzes every __kernel in it.
std::vector<PrecisionReport> analyze_source_precision(
    const std::string& source, const PrecisionAssumptions& as);

const char* to_string(PrecisionFinding::Kind kind);
std::string to_json(const PrecisionReport& report);

}  // namespace alsmf::ocl::analyze::precision
