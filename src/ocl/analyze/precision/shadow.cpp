#include "ocl/analyze/precision/shadow.hpp"

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/halfprec.hpp"
#include "devsim/device.hpp"
#include "devsim/profile.hpp"
#include "ocl/analyze/interp.hpp"

namespace alsmf::ocl::analyze::precision {
namespace {

struct Problem {
  std::vector<int> row_ptr, col_idx;
  std::vector<float> values, y;
  int rows = 0, cols = 0;
};

// Deterministic ragged CSR inside the assumption envelope: signed ratings
// up to ~0.9·R, factors up to ~0.9·F, one empty row (the omega == 0
// early-out), and optionally one dense probe row at the exact ceilings.
Problem make_problem(const ShadowWitnessConfig& c) {
  Problem p;
  p.rows = c.rows + (c.dense_row_nnz > 0 ? 1 : 0);
  p.cols = c.cols;
  const auto r = static_cast<float>(c.assumptions.rating_bound);
  const auto f = static_cast<float>(c.assumptions.factor_bound);
  p.row_ptr.push_back(0);
  for (int u = 0; u < c.rows; ++u) {
    const int nnz = u == 2 ? 0 : 1 + (u * 3) % 5;
    for (int z = 0; z < nnz; ++z) {
      p.col_idx.push_back((u + 2 * z) % p.cols);
      const float mag = 0.1f + 0.8f * static_cast<float>((u + z) % 7) / 7.0f;
      p.values.push_back((z % 2 ? -r : r) * mag);
    }
    p.row_ptr.push_back(static_cast<int>(p.col_idx.size()));
  }
  if (c.dense_row_nnz > 0) {
    // All probe ratings hit column 0 with the same sign, so a narrow-typed
    // rsum accumulator must climb monotonically to nnz·R·Y[f][0].
    for (int z = 0; z < c.dense_row_nnz; ++z) {
      p.col_idx.push_back(0);
      p.values.push_back(r);
    }
    p.row_ptr.push_back(static_cast<int>(p.col_idx.size()));
  }
  p.y.resize(static_cast<std::size_t>(c.k) * p.cols);
  for (std::size_t i = 0; i < p.y.size(); ++i) {
    const std::size_t col = i % static_cast<std::size_t>(p.cols);
    p.y[i] = col == 0 ? f
                      : f * (0.9f * static_cast<float>(i % 13) / 13.0f - 0.4f);
  }
  return p;
}

std::vector<float> run_leg(const std::string& source,
                           const std::string& kernel_name, Problem p,
                           const ShadowWitnessConfig& c,
                           float (*quantizer)(float), bool* clean) {
  std::vector<float> x(static_cast<std::size_t>(c.k) * p.rows, 0.0f);
  InterpKernel ik(source, kernel_name);
  if (quantizer != nullptr) {
    ik.set_storage_quantizer(quantizer);
  }
  const auto num_groups = static_cast<std::size_t>(p.rows);
  ik.set_num_groups(static_cast<long>(num_groups));
  const std::vector<InterpArg> args = {
      InterpArg::real_buffer(p.values), InterpArg::int_buffer(p.col_idx),
      InterpArg::int_buffer(p.row_ptr), InterpArg::real_buffer(p.y),
      InterpArg::real_buffer(x),        InterpArg::int_scalar(p.rows),
      InterpArg::real_scalar(c.assumptions.lambda_min)};
  devsim::Device device(devsim::k20c());
  devsim::LaunchConfig lc;
  lc.num_groups = num_groups;
  lc.group_size = static_cast<std::size_t>(c.group_size);
  lc.validate = true;
  const auto result = device.launch(
      kernel_name, lc, [&](devsim::GroupCtx& ctx) { ik.run_group(ctx, args); });
  *clean = *clean && result.check.clean();
  return x;
}

}  // namespace

ShadowWitness run_shadow_witness(const std::string& source,
                                 const std::string& kernel_name,
                                 StoragePrecision storage,
                                 const ShadowWitnessConfig& config) {
  float (*quantizer)(float) = nullptr;
  switch (storage) {
    case StoragePrecision::kFp32:
      break;
    case StoragePrecision::kFp16:
      quantizer = fp16_round_ftz;
      break;
    case StoragePrecision::kBf16:
      quantizer = bf16_round;
      break;
  }
  const Problem p = make_problem(config);
  ShadowWitness w;
  w.kernel = kernel_name;
  w.rows = p.rows;
  w.nnz = static_cast<long>(p.values.size());
  bool clean = true;
  const std::vector<float> exact =
      run_leg(source, kernel_name, p, config, nullptr, &clean);
  const std::vector<float> shadow =
      run_leg(source, kernel_name, p, config, quantizer, &clean);
  w.ran = clean && exact.size() == shadow.size();
  for (std::size_t i = 0; i < exact.size() && i < shadow.size(); ++i) {
    if (!std::isfinite(shadow[i])) {
      w.overflow_observed = true;
      continue;
    }
    const double d = std::fabs(static_cast<double>(shadow[i]) -
                               static_cast<double>(exact[i]));
    if (d > w.observed_err) {
      w.observed_err = d;
    }
    const double m = std::fabs(static_cast<double>(exact[i]));
    if (m > w.max_exact) {
      w.max_exact = m;
    }
  }
  return w;
}

}  // namespace alsmf::ocl::analyze::precision
