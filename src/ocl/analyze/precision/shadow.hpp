// Dynamic witness leg of the precision certifier: runs a generated kernel
// twice through the checked AST interpreter (analyze/interp.hpp) on a
// deterministic seeded CSR problem that stays inside a certificate's
// assumptions — once exactly, and once in shadow-precision mode where every
// narrow-typed (storage_t / half / bfloat16) buffer element and declaration
// rounds through the bit-exact software converters (common/halfprec.hpp).
//
// The observed divergence max|X_shadow − X_exact| is then compared against
// the static analyzer's error bound: the certificate is sound only if the
// static bound dominates every observed divergence (the converse — a tight
// bound — is not claimed; the static bound is a worst-case closed form).
//
// An optional dense overflow-probe row (dense_row_nnz max-magnitude
// ratings against max-magnitude factors) drives any accumulator that a
// defect mutation narrowed to storage_t past the fp16 finite ceiling, so
// the fp16-accumulator defect is witnessed dynamically (non-finite output)
// by the same run that the static leg flags as overflow-possible.
#pragma once

#include <string>

#include "als/options.hpp"
#include "ocl/analyze/precision/precision.hpp"

namespace alsmf::ocl::analyze::precision {

/// Problem shape for the witness run. k and group_size must match the
/// KernelConfig the source was generated with (they are baked into the
/// kernel text as K / WS).
struct ShadowWitnessConfig {
  int k = 10;
  int group_size = 32;
  int rows = 12;
  int cols = 7;
  /// When > 0, appends one dense row with this many ratings at the
  /// assumption ceilings (|v| = R against |Y| = F), the overflow probe.
  int dense_row_nnz = 0;
  PrecisionAssumptions assumptions;
};

struct ShadowWitness {
  std::string kernel;
  bool ran = false;            ///< both legs launched and validated clean
  double observed_err = 0;     ///< max |X_shadow[i] - X_exact[i]|
  double max_exact = 0;        ///< max |X_exact[i]| (sanity: inside B_x)
  bool overflow_observed = false;  ///< non-finite value in the shadow X
  int rows = 0;
  long nnz = 0;
};

/// Runs `kernel_name` from `source` (flat/batched CSR signature: values,
/// col_idx, row_ptr, Y, X, rows, lambda) through both legs. `storage`
/// selects the quantizer for the shadow leg: fp16 uses the flush-to-zero
/// converter (the worst case the static min_normal charge covers), bf16
/// the round-to-nearest-even converter; fp32 runs the shadow leg exact
/// (observed_err is then pure interpreter determinism, i.e. 0).
/// Throws ParseError on unsupported source.
ShadowWitness run_shadow_witness(const std::string& source,
                                 const std::string& kernel_name,
                                 StoragePrecision storage,
                                 const ShadowWitnessConfig& config);

}  // namespace alsmf::ocl::analyze::precision
