#include "ocl/analyze/static_profile.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <string>

#include "als/kernel_model.hpp"
#include "common/json.hpp"
#include "linalg/cg.hpp"
#include "linalg/cholesky.hpp"

namespace alsmf::ocl::analyze {

namespace {

/// Scratch-pad allocations are bump-allocated in 64-byte steps (GroupCtx).
std::size_t align_up(std::size_t bytes) { return (bytes + 63) / 64 * 64; }

bool freq_hot(const Freq& f) { return f.per_nnz > 0 || f.chunk_body > 0; }

/// Traffic kinds that re-execute once per lane-coverage pass when the
/// work-group is narrower than k (the guarded per-lane accumulator work).
/// Segment streams and row-granular scatter stores do not: they are issued
/// once regardless of how many passes the lane loop needs.
bool passes_scaled(TrafficIR::Kind k) {
  switch (k) {
    case TrafficIR::Kind::kGatherTraversal:
    case TrafficIR::Kind::kLocalTraversal:
    case TrafficIR::Kind::kLocalRead:
    case TrafficIR::Kind::kLocalWrite:
    case TrafficIR::Kind::kPrivateUpdate:
      return true;
    default:
      return false;
  }
}

const char* to_string(MemSpace s) {
  switch (s) {
    case MemSpace::kGlobal: return "global";
    case MemSpace::kLocal: return "local";
    case MemSpace::kPrivate: return "private";
  }
  return "?";
}

}  // namespace

StaticKernelProfile build_static_profile(const KernelIR& ir,
                                         const DatasetStats& stats,
                                         const StaticLaunchParams& launch,
                                         const devsim::DeviceProfile& device) {
  StaticKernelProfile p;
  p.kernel = ir.name;
  p.group_size = launch.group_size;

  const int W = std::max(device.simd_width, 1);
  const int ws = std::max(launch.group_size, 1);
  const double bundles = std::ceil(static_cast<double>(ws) / W);
  const double lanes = bundles * W;
  const double k = ir.k > 0 ? static_cast<double>(ir.k) : 1.0;
  const double passes = ir.batched_mapping ? std::ceil(k / ws) : 1.0;
  p.passes = passes;

  const auto total_rows =
      static_cast<std::size_t>(std::max(stats.rows, 0.0));
  if (ir.batched_mapping) {
    p.groups = std::max<std::size_t>(
        1, std::min<std::size_t>(launch.num_groups, total_rows));
  } else {
    p.groups = std::max<std::size_t>(
        1, (total_rows + static_cast<std::size_t>(ws) - 1) /
               static_cast<std::size_t>(ws));
  }

  // --- Scratch-pad allocation model (mirrors the kernel's local_allocs) ---
  // Staging arrays are the __local buffers filled by the hot cooperative
  // (lane-partitioned) store loop; everything else — the k×k system and the
  // rhs — is allocated first, and the tile policy sizes against what's left.
  std::set<std::string> staging;
  for (const auto& t : ir.traffic) {
    if (t.kind == TrafficIR::Kind::kLocalWrite && t.lane_partitioned &&
        freq_hot(t.freq)) {
      staging.insert(t.buffer);
    }
  }
  std::size_t base_alloc = 0;
  for (const auto& d : ir.locals) {
    if (d.elems < 0 || staging.count(d.name)) continue;
    base_alloc += align_up(static_cast<std::size_t>(d.elems) *
                           static_cast<std::size_t>(d.elem_bytes));
  }
  const std::size_t capacity = devsim::local_capacity_bytes(device);
  std::size_t tile_rows = 0;
  if (ir.has_local_staging && ir.k > 0) {
    const std::size_t remaining =
        capacity > base_alloc ? capacity - base_alloc : 0;
    tile_rows = kernel_model::staging_tile_rows(static_cast<int>(ir.k),
                                                remaining, launch.tile_rows);
  }
  p.tile_rows = tile_rows;
  std::size_t peak = base_alloc;
  if (tile_rows > 0) {
    peak += align_up(tile_rows * static_cast<std::size_t>(ir.k) * sizeof(real));
    peak += align_up(tile_rows * sizeof(real));
  }
  p.local_alloc_bytes = peak;
  p.declared_local_bytes = ir.declared_local_bytes();
  p.max_bank_conflict = ir.max_bank_conflict();

  // --- Frequency evaluation environment ---
  const double rows = std::max(stats.nonempty_rows, 0.0);
  const double omega = stats.mean_nnz();
  double chunks = 1.0;
  double chunk_avg = omega;
  if (tile_rows > 0 && omega > 0) {
    // The dynamic path takes ⌈ω_u/T⌉ per row; over ragged rows that sum
    // exceeds ⌈mean/T⌉. E[⌈ω/T⌉] = mean/T + E[(T − ω mod T) mod T]/T,
    // ≈ mean/T + (T−1)/(2T) for spread-out row lengths, floored at one
    // chunk (rows shorter than the tile still stage once).
    const double t = static_cast<double>(tile_rows);
    chunks = std::max(1.0, omega / t + (t - 1.0) / (2.0 * t));
    chunk_avg = omega / chunks;
  }
  p.chunks = chunks;

  devsim::LaunchCounters& c = p.counters;
  c.groups = p.groups;
  c.launches = 1;
  c.group_size = ws;
  c.local_alloc_peak = peak;
  if (ir.k > 0) {
    c.register_demand_peak =
        static_cast<int>(ir.has_unrolled_accumulators ? ir.k : ir.k * ir.k) +
        kernel_model::kBaseRegisters;
  }
  // Honest per-lane estimate for the report (the demand figure above mirrors
  // the dynamic accounting's convention so counters stay comparable).
  long private_elems = 0;
  for (const auto& a : ir.private_arrays) private_elems += std::max(a.elems, 0L);
  p.register_estimate = kernel_model::kBaseRegisters +
                        (ir.has_unrolled_accumulators
                             ? static_cast<int>(ir.k) + 1
                             : 1) +
                        static_cast<int>(std::min<long>(private_elems, 4096));

  const double flat_scale =
      device.scalar_efficiency /
      std::max(device.flat_mapping_efficiency, 1e-6);

  // Element width per buffer (for gather-issue op counts).
  std::map<std::string, double> elem_bytes;
  for (const auto& r : ir.refs) {
    if (!elem_bytes.count(r.buffer)) {
      elem_bytes[r.buffer] = static_cast<double>(r.elem_bytes);
    }
  }

  // --- Traffic ---
  // Gathered streams settle per buffer: the lowest-order traversal fetches
  // the stream cold (one scattered access per element); every further
  // traversal is a reread — cache-resident on CPU/MIC, back through device
  // memory on GPU — exactly GroupCtx::reread's split.
  struct GatherStream {
    double total = 0;
    double cold = 0;
    double span = 0;
    int min_order = std::numeric_limits<int>::max();
  };
  std::map<std::string, GatherStream> gathers;

  for (const auto& t : ir.traffic) {
    const bool hot = freq_hot(t.freq);
    const double n = t.freq.eval(rows, omega, chunks, chunk_avg);
    if (n <= 0) continue;
    double scaled = n;
    if (ir.batched_mapping && hot && !t.lane_partitioned &&
        passes_scaled(t.kind)) {
      scaled *= passes;
    }
    switch (t.kind) {
      case TrafficIR::Kind::kStreamRead:
      case TrafficIR::Kind::kStreamWrite:
        c.global_bytes += scaled * t.span_bytes;
        break;
      case TrafficIR::Kind::kScatterWrite:
        c.scattered_accesses += scaled;
        c.scattered_useful_bytes += scaled * t.span_bytes;
        break;
      case TrafficIR::Kind::kLocalRead:
      case TrafficIR::Kind::kLocalWrite:
      case TrafficIR::Kind::kLocalTraversal:
        // Row-level scratch-pad bookkeeping (zero fills, the reduction into
        // the system matrix) is unpriced, as in the dynamic kernels; only
        // the per-nonzero staging traffic moves modeled bytes.
        if (hot) c.local_bytes += scaled * t.span_bytes;
        break;
      case TrafficIR::Kind::kPrivateUpdate:
        if (hot && device.private_arrays_offchip) {
          c.spill_bytes +=
              scaled * t.span_bytes * (ir.batched_mapping ? lanes : 1.0);
        }
        break;
      case TrafficIR::Kind::kGatherTraversal: {
        auto& s = gathers[t.buffer];
        s.total += scaled;
        s.span = std::max(s.span, t.span_bytes);
        if (t.order < s.min_order) {
          s.min_order = t.order;
          s.cold = n;  // the first traversal fetches once, without passes
        }
        // Unstaged hot traversals expose gather issue cost (CPU/MIC) or
        // memory latency (GPU) to the resident bundles.
        if (ir.batched_mapping && hot && !t.lane_partitioned) {
          double elems = t.span_bytes;
          auto it = elem_bytes.find(t.buffer);
          if (it != elem_bytes.end() && it->second > 0) {
            elems = t.span_bytes / it->second;
          }
          if (device.gather_scalar_ops > 0) {
            c.lane_ops_scalar +=
                scaled * elems * device.gather_scalar_ops * flat_scale;
          }
          if (device.global_latency_slots > 0) {
            c.lane_ops_scalar += scaled * lanes * device.global_latency_slots;
          }
        }
        break;
      }
    }
  }
  for (const auto& [name, s] : gathers) {
    (void)name;
    const double cold = std::min(s.cold, s.total);
    const double reread = s.total - cold;
    c.scattered_accesses += cold;
    c.scattered_useful_bytes += cold * s.span;
    if (reread > 0) {
      if (device.rereads_cached) {
        c.local_bytes += reread * s.span;
      } else {
        c.scattered_accesses += reread;
        c.scattered_useful_bytes += reread * s.span;
      }
    }
  }

  // --- Compute ---
  const bool cpu_like = device.kind != devsim::DeviceKind::kGpu;
  const bool penalized =
      ir.has_unrolled_accumulators && ir.has_local_staging && cpu_like;
  for (const auto& o : ir.ops) {
    const double trips =
        o.freq.eval(rows, omega, chunks, chunk_avg) * o.ops_per_trip;
    if (trips <= 0) continue;
    if (ir.batched_mapping) {
      const double n = trips * lanes * passes * kernel_model::kBatchedOpsPerFma;
      if (penalized && o.s1_class) {
        c.lane_ops_scalar += n * kernel_model::kRegLocalScalarPenalty;
      } else if (o.vectorized) {
        // Vector loads of half-width storage pack 2x elements per bundle;
        // the cost model prices lane_ops_vector_half at doubled width.
        (ir.storage_bytes == 2 ? c.lane_ops_vector_half
                               : c.lane_ops_vector) += n;
      } else {
        c.lane_ops_scalar += n;
      }
    } else {
      c.lane_ops_scalar += trips * kernel_model::kFlatOpsPerFma * flat_scale;
    }
  }

  // Barriers: only the chunked staging synchronization is priced; the
  // row-level fences pace lane loops the op counts already cover.
  for (const auto& b : ir.barriers) {
    if (b.freq.per_chunk <= 0) continue;
    c.lane_ops_scalar += b.freq.eval(rows, omega, chunks, chunk_avg) * lanes *
                         kernel_model::kBarrierSlots;
  }

  // The small per-row solve: serialized on lane 0 of a batched group (the
  // other lanes idle), or inlined per work-item in the flat mapping. The
  // flop model follows the helper the kernel calls: truncated CG for the
  // cg row-solver kernels, Cholesky otherwise.
  const bool cg_solve =
      ir.lane0_solve_callee == "cg_solve_inplace" && ir.cg_iters > 0;
  const double s3 =
      ir.k > 0 ? (cg_solve ? cg_solve_flops(static_cast<int>(ir.k),
                                            static_cast<int>(ir.cg_iters))
                           : cholesky_solve_flops(static_cast<int>(ir.k)))
               : 0.0;
  if (ir.has_lane0_solve) {
    c.lane_ops_scalar += rows * lanes * s3;
  } else if (!ir.batched_mapping) {
    c.lane_ops_scalar += rows * s3 * flat_scale;
  }
  const double pairs = 0.5 * k * (k + 1.0);
  c.useful_flops = rows * (2.0 * pairs * omega + 2.0 * k * omega + s3);

  for (const auto& r : ir.refs) {
    if (!r.hot || r.zero_weight) continue;
    if (r.space != MemSpace::kGlobal) continue;
    if (r.is_store && (r.coalescing == Coalescing::kStrided ||
                       r.coalescing == Coalescing::kGathered)) {
      ++p.uncoalesced_hot_stores;
    }
    if (!r.is_store && r.coalescing == Coalescing::kGathered) {
      ++p.gathered_hot_loads;
    }
  }
  return p;
}

std::string profile_json(const StaticKernelProfile& profile,
                         const KernelIR& ir) {
  json::JsonWriter w;
  w.begin_object();
  w.field("kernel", profile.kernel);
  w.field("batched_mapping", ir.batched_mapping);
  w.field("storage_bytes", ir.storage_bytes);
  w.field("storage_base", ir.storage_base.empty() ? "real_t"
                                                  : ir.storage_base);
  w.field("k", ir.k);
  w.field("ws_define", ir.ws);
  w.field("tile_rows_define", ir.tile_rows_define);

  w.key("shape").begin_object();
  w.field("groups", profile.groups);
  w.field("group_size", profile.group_size);
  w.field("passes", profile.passes);
  w.field("tile_rows", profile.tile_rows);
  w.field("chunks", profile.chunks);
  w.end_object();

  w.key("resources").begin_object();
  w.field("local_alloc_bytes", profile.local_alloc_bytes);
  w.field("declared_local_bytes", profile.declared_local_bytes);
  w.field("register_estimate", profile.register_estimate);
  w.field("max_bank_conflict", profile.max_bank_conflict);
  w.field("has_lane0_solve", ir.has_lane0_solve);
  w.field("has_unrolled_accumulators", ir.has_unrolled_accumulators);
  w.field("has_local_staging", ir.has_local_staging);
  w.field("has_vector_ops", ir.has_vector_ops);
  w.field("uncoalesced_hot_stores", profile.uncoalesced_hot_stores);
  w.field("gathered_hot_loads", profile.gathered_hot_loads);
  w.end_object();

  const auto& c = profile.counters;
  w.key("counters").begin_object();
  w.field("useful_flops", c.useful_flops);
  w.field("lane_ops_scalar", c.lane_ops_scalar);
  w.field("lane_ops_vector", c.lane_ops_vector);
  w.field("lane_ops_vector_half", c.lane_ops_vector_half);
  w.field("global_bytes", c.global_bytes);
  w.field("scattered_accesses", c.scattered_accesses);
  w.field("scattered_useful_bytes", c.scattered_useful_bytes);
  w.field("local_bytes", c.local_bytes);
  w.field("spill_bytes", c.spill_bytes);
  w.field("register_demand_peak", c.register_demand_peak);
  w.field("local_alloc_peak", c.local_alloc_peak);
  w.end_object();

  w.key("loops").begin_array();
  for (const auto& l : ir.loops) {
    w.begin_object();
    w.field("kind", to_string(l.kind));
    w.field("trips", l.trips);
    w.field("bound", l.bound);
    w.field("depth", l.depth);
    w.field("line", l.line);
    w.end_object();
  }
  w.end_array();

  w.key("accesses").begin_array();
  for (const auto& r : ir.refs) {
    w.begin_object();
    w.field("buffer", r.buffer);
    w.field("space", to_string(r.space));
    w.field("store", r.is_store);
    w.field("coalescing", to_string(r.coalescing));
    w.field("elem_bytes", r.elem_bytes);
    w.field("lane_coeff", r.lane_coeff);
    w.field("bank_conflict", r.bank_conflict);
    w.field("hot", r.hot);
    w.field("lane_partitioned", r.lane_partitioned);
    w.field("divergent_guard", r.divergent_guard);
    w.field("zero_weight", r.zero_weight);
    w.field("line", r.line);
    w.field("index", r.index);
    w.end_object();
  }
  w.end_array();

  w.key("args").begin_array();
  for (const auto& a : ir.args) {
    w.begin_object();
    w.field("name", a.name);
    w.field("type", a.type);
    w.field("global", a.is_global);
    w.field("used", a.used);
    w.end_object();
  }
  w.end_array();

  w.end_object();
  return w.str();
}

}  // namespace alsmf::ocl::analyze
