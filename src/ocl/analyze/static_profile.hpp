// Static kernel profile: prices a lowered kernel (ir.hpp) for a dataset and
// a device profile *without running it*, producing the same LaunchCounters
// the devsim accounting kernels record dynamically. The pricing rules mirror
// als/kernels.cpp (shared constants live in als/kernel_model.hpp), which is
// what makes the static/dynamic agreement tests meaningful and lets the
// variant ranker (als/variant_select.hpp) reuse the devsim cost model with
// zero training runs.
#pragma once

#include <cstddef>
#include <string>

#include "devsim/counters.hpp"
#include "devsim/profile.hpp"
#include "ocl/analyze/ir.hpp"

namespace alsmf::ocl::analyze {

/// The dataset statistics the symbolic frequencies are evaluated against.
struct DatasetStats {
  double rows = 0;           ///< rows the launch maps (CSR row count)
  double nonempty_rows = 0;  ///< rows with at least one nonzero
  double nnz = 0;            ///< total nonzeros

  double mean_nnz() const {
    return nonempty_rows > 0 ? nnz / nonempty_rows : 0.0;
  }
};

/// Launch shape knobs (mirrors the AlsOptions fields the kernels read).
struct StaticLaunchParams {
  std::size_t num_groups = 8192;
  int group_size = 32;
  long tile_rows = 0;  ///< forced staging tile rows; 0 = auto policy
};

/// Everything the analyzer can say about one kernel on one device: resolved
/// launch shape, static resource figures, and modeled per-launch activity
/// directly comparable with (and priceable like) dynamic LaunchCounters.
struct StaticKernelProfile {
  std::string kernel;

  // Resolved launch shape.
  std::size_t groups = 0;
  int group_size = 0;
  double passes = 1;          ///< lane-coverage passes ⌈k / group_size⌉
  std::size_t tile_rows = 0;  ///< resolved staging tile rows (0 = none)
  double chunks = 1;          ///< ⌈mean_nnz / tile_rows⌉

  // Static resource figures.
  std::size_t local_alloc_bytes = 0;  ///< modeled scratch-pad peak (aligned)
  long declared_local_bytes = 0;      ///< straight from the __local decls
  int register_estimate = 0;          ///< honest per-lane estimate
  int max_bank_conflict = 1;
  int uncoalesced_hot_stores = 0;
  int gathered_hot_loads = 0;

  /// Modeled activity of one launch over the whole dataset.
  devsim::LaunchCounters counters;
};

/// Prices `ir` on `device` for `stats` under `launch`.
StaticKernelProfile build_static_profile(const KernelIR& ir,
                                         const DatasetStats& stats,
                                         const StaticLaunchParams& launch,
                                         const devsim::DeviceProfile& device);

/// One JSON object per kernel: the profile figures plus the per-reference
/// access table and loop nest (the reviewable face of the analysis).
std::string profile_json(const StaticKernelProfile& profile,
                         const KernelIR& ir);

}  // namespace alsmf::ocl::analyze
