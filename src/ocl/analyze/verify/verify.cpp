#include "ocl/analyze/verify/verify.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace alsmf::ocl::analyze::verify {

namespace {
constexpr long kBig = (1L << 60);
long sat_mul(long a, long b) {
  if (a == 0 || b == 0) return 0;
  if (a > kBig / std::abs(b) || a < -kBig / std::abs(b)) {
    return (a > 0) == (b > 0) ? kBig : -kBig;
  }
  return a * b;
}
long sat_add(long a, long b) {
  long s = a + b;
  if (s > kBig) return kBig;
  if (s < -kBig) return -kBig;
  return s;
}
}  // namespace

SymExpr SymExpr::plus(const SymExpr& o, long sign) const {
  SymExpr r = *this;
  r.c = sat_add(r.c, sat_mul(sign, o.c));
  for (const auto& [n, v] : o.terms) {
    long& slot = r.terms[n];
    slot = sat_add(slot, sat_mul(sign, v));
    if (slot == 0) r.terms.erase(n);
  }
  return r;
}

SymExpr SymExpr::plus_const(long v) const {
  SymExpr r = *this;
  r.c = sat_add(r.c, v);
  return r;
}

SymExpr SymExpr::scaled(long s) const {
  SymExpr r;
  r.c = sat_mul(c, s);
  if (s != 0) {
    for (const auto& [n, v] : terms) r.terms[n] = sat_mul(v, s);
  }
  return r;
}

std::string SymExpr::str() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [n, v] : terms) {
    if (v == 0) continue;
    if (!first) os << (v > 0 ? " + " : " - ");
    else if (v < 0) os << "-";
    first = false;
    const long a = std::abs(v);
    if (a != 1) os << a << "*";
    os << n;
  }
  if (first) {
    os << c;
  } else if (c != 0) {
    os << (c > 0 ? " + " : " - ") << std::abs(c);
  }
  return os.str();
}

const char* to_string(BoundsVerdict v) {
  switch (v) {
    case BoundsVerdict::kProvenSafe: return "proven-safe";
    case BoundsVerdict::kProvenViolating: return "proven-violating";
    case BoundsVerdict::kUnprovable: return "unprovable";
  }
  return "?";
}

const char* to_string(RaceVerdict v) {
  switch (v) {
    case RaceVerdict::kProvenFree: return "proven-free";
    case RaceVerdict::kProvenRace: return "proven-race";
    case RaceVerdict::kUnprovable: return "unprovable";
  }
  return "?";
}

namespace {

// ---------------------------------------------------------------------------
// Symbol facts and the non-negativity prover.
// ---------------------------------------------------------------------------

struct Facts {
  std::map<std::string, long> lower;    // symbol >= value (default 0)
  std::map<std::string, SymExpr> upper;  // symbol <= expr
};

/// Proves `d >= 0` by repeatedly replacing negative-coefficient symbols with
/// their upper bounds and positive-coefficient symbols with their lower
/// bounds (both substitutions only shrink `d`). Fails closed.
bool prove_nonneg(SymExpr d, const Facts& f) {
  for (int round = 0; round < 24; ++round) {
    for (auto it = d.terms.begin(); it != d.terms.end();) {
      it = it->second == 0 ? d.terms.erase(it) : std::next(it);
    }
    if (d.terms.empty()) return d.c >= 0;
    bool changed = false;
    for (const auto& [name, coeff] : d.terms) {
      if (coeff < 0) {
        auto up = f.upper.find(name);
        if (up == f.upper.end()) continue;
        const long cc = coeff;
        SymExpr u = up->second;
        d.terms.erase(name);
        d = d.plus(u.scaled(cc), 1);
        changed = true;
        break;
      }
      long lo = 0;
      auto lb = f.lower.find(name);
      if (lb != f.lower.end()) lo = lb->second;
      const long cc = coeff;
      d.terms.erase(name);
      d.c = sat_add(d.c, sat_mul(cc, lo));
      changed = true;
      break;
    }
    if (!changed) return false;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Interval domain: symbolic [lo, hi] with infinities and a stride.
// ---------------------------------------------------------------------------

struct Bound {
  bool inf = false;  // -inf when used as a lower bound, +inf as an upper
  SymExpr e;
};

struct Range {
  bool ok = false;
  Bound lo, hi;
  long stride = 1;

  static Range exact(SymExpr lo, SymExpr hi, long stride = 1) {
    Range r;
    r.ok = true;
    r.lo.e = std::move(lo);
    r.hi.e = std::move(hi);
    r.stride = stride;
    return r;
  }
  static Range consts(long lo, long hi, long stride = 1) {
    return exact(SymExpr::constant(lo), SymExpr::constant(hi), stride);
  }
  static Range lower_only(long lo) {
    Range r;
    r.ok = true;
    r.lo.e = SymExpr::constant(lo);
    r.hi.inf = true;
    return r;
  }
};

/// acc += coeff * t  (interval arithmetic; sign of coeff flips the ends).
Range add_scaled(const Range& acc, const Range& t, long coeff) {
  Range r;
  if (!acc.ok || !t.ok) return r;
  r.ok = true;
  const Bound& tl = coeff >= 0 ? t.lo : t.hi;
  const Bound& th = coeff >= 0 ? t.hi : t.lo;
  r.lo.inf = acc.lo.inf || tl.inf;
  r.hi.inf = acc.hi.inf || th.inf;
  if (!r.lo.inf) r.lo.e = acc.lo.e.plus(tl.e.scaled(coeff), 1);
  if (!r.hi.inf) r.hi.e = acc.hi.e.plus(th.e.scaled(coeff), 1);
  r.stride = std::gcd(acc.stride, std::abs(sat_mul(coeff, t.stride)));
  if (r.stride == 0) r.stride = std::max(acc.stride, 1L);
  return r;
}

// ---------------------------------------------------------------------------
// Exact finite-domain solver for Σ coeff_i · v_i + c0 = 0.
//
// Domains are arithmetic progressions v = lo + stride·t (or all multiples of
// stride when lo is -inf), optionally excluding 0, optionally tied by a
// "must differ" constraint to another variable. Returns kNo only when the
// whole space was exhausted; enumeration that would not terminate (infinite
// window over an infinite domain) degrades to kUnknown, never to kNo.
// ---------------------------------------------------------------------------

struct DVar {
  long coeff = 1;
  long lo = 0, hi = 0;  // ignored when *_inf
  bool lo_inf = false, hi_inf = false;
  long stride = 1;
  bool excl0 = false;
  int neq = -1;  // index of a variable whose value must differ
  std::string name;
};

enum class Sat { kNo, kYes, kUnknown };

class Solver {
 public:
  Solver(std::vector<DVar> vars, long c0, long node_budget)
      : vars_(std::move(vars)), c0_(c0), budget_(node_budget) {
    order_.resize(vars_.size());
    std::iota(order_.begin(), order_.end(), 0);
    std::sort(order_.begin(), order_.end(), [&](int a, int b) {
      return std::abs(sat_mul(vars_[a].coeff, vars_[a].stride)) >
             std::abs(sat_mul(vars_[b].coeff, vars_[b].stride));
    });
    // Suffix contribution intervals for window pruning.
    const int n = static_cast<int>(vars_.size());
    suf_lo_.assign(n + 1, 0);
    suf_hi_.assign(n + 1, 0);
    suf_lo_inf_.assign(n + 1, false);
    suf_hi_inf_.assign(n + 1, false);
    for (int i = n - 1; i >= 0; --i) {
      const DVar& v = vars_[order_[i]];
      long clo, chi;
      bool clo_inf, chi_inf;
      contrib(v, clo, clo_inf, chi, chi_inf);
      suf_lo_inf_[i] = suf_lo_inf_[i + 1] || clo_inf;
      suf_hi_inf_[i] = suf_hi_inf_[i + 1] || chi_inf;
      suf_lo_[i] = sat_add(suf_lo_[i + 1], clo);
      suf_hi_[i] = sat_add(suf_hi_[i + 1], chi);
    }
    value_.assign(n, 0);
    assigned_.assign(n, false);
  }

  Sat solve(std::vector<long>* witness = nullptr) {
    incomplete_ = false;
    if (search(0, c0_)) {
      if (witness) *witness = value_;
      return Sat::kYes;
    }
    return incomplete_ ? Sat::kUnknown : Sat::kNo;
  }

  const std::vector<DVar>& vars() const { return vars_; }

 private:
  static void contrib(const DVar& v, long& lo, bool& lo_inf, long& hi,
                      bool& hi_inf) {
    const long a = sat_mul(v.coeff, v.lo), b = sat_mul(v.coeff, v.hi);
    const bool ainf = v.coeff >= 0 ? v.lo_inf : v.hi_inf;
    const bool binf = v.coeff >= 0 ? v.hi_inf : v.lo_inf;
    lo = std::min(a, b);
    hi = std::max(a, b);
    lo_inf = ainf;
    hi_inf = binf;
    if (v.coeff < 0) std::swap(lo_inf, hi_inf);
  }

  static long floor_div(long a, long b) {
    long q = a / b, r = a % b;
    return (r != 0 && ((r < 0) != (b < 0))) ? q - 1 : q;
  }
  static long ceil_div(long a, long b) { return -floor_div(-a, b); }

  bool search(int pos, long rem) {
    if (--budget_ < 0) {
      incomplete_ = true;
      return false;
    }
    if (pos == static_cast<int>(order_.size())) return rem == 0;
    const int vi = order_[pos];
    const DVar& v = vars_[vi];
    // Window for coeff·value: rem + coeff·value + rest = 0.
    const bool wlo_inf = suf_hi_inf_[pos + 1];
    const bool whi_inf = suf_lo_inf_[pos + 1];
    const long wlo = sat_add(-rem, -suf_hi_[pos + 1]);
    const long whi = sat_add(-rem, -suf_lo_[pos + 1]);
    const long cs = sat_mul(v.coeff, v.stride);
    // Candidate t-range where value = anchor + stride·t.
    const long anchor = v.lo_inf ? 0 : v.lo;
    long tlo = 0, thi = -1;
    bool tlo_inf = v.lo_inf, thi_inf = v.hi_inf;
    if (!v.lo_inf) tlo = 0;
    if (!v.hi_inf) {
      if (v.lo_inf) {
        tlo_inf = true;
        thi = floor_div(v.hi - anchor, v.stride);
      } else {
        thi = floor_div(v.hi - anchor, v.stride);
      }
    }
    // Intersect with the window (in t units).
    if (!wlo_inf || !whi_inf) {
      const long ca = sat_mul(v.coeff, anchor);
      // coeff·(anchor + stride·t) in [wlo, whi]
      if (cs > 0) {
        if (!wlo_inf) {
          const long t = ceil_div(sat_add(wlo, -ca), cs);
          if (tlo_inf || t > tlo) tlo = t;
          tlo_inf = false;
        }
        if (!whi_inf) {
          const long t = floor_div(sat_add(whi, -ca), cs);
          if (thi_inf || t < thi) thi = t;
          thi_inf = false;
        }
      } else if (cs < 0) {
        if (!whi_inf) {
          const long t = ceil_div(sat_add(whi, -ca), cs);
          if (tlo_inf || t > tlo) tlo = t;
          tlo_inf = false;
        }
        if (!wlo_inf) {
          const long t = floor_div(sat_add(wlo, -ca), cs);
          if (thi_inf || t < thi) thi = t;
          thi_inf = false;
        }
      } else {
        // coeff·value fixed at ca: feasible only if ca is inside the window.
        if ((!wlo_inf && ca < wlo) || (!whi_inf && ca > whi)) return false;
      }
    }
    if (tlo_inf || thi_inf) {
      incomplete_ = true;
      return false;
    }
    if (thi < tlo) return false;
    if (thi - tlo > 4096) {
      incomplete_ = true;
      return false;
    }
    for (long t = tlo; t <= thi; ++t) {
      const long val = anchor + v.stride * t;
      if (v.excl0 && val == 0) continue;
      if (v.neq >= 0 && assigned_[v.neq] && value_[v.neq] == val) continue;
      value_[vi] = val;
      assigned_[vi] = true;
      if (search(pos + 1, sat_add(rem, sat_mul(v.coeff, val)))) return true;
      assigned_[vi] = false;
    }
    return false;
  }

  std::vector<DVar> vars_;
  long c0_ = 0;
  long budget_ = 0;
  bool incomplete_ = false;
  std::vector<int> order_;
  std::vector<long> suf_lo_, suf_hi_;
  std::vector<bool> suf_lo_inf_, suf_hi_inf_;
  std::vector<long> value_;
  std::vector<bool> assigned_;
};

/// Witness probe: clamp infinite domain ends to a finite box and re-search.
/// A solution found in the box is a real solution (box ⊆ domain).
Sat probe_solve(const std::vector<DVar>& vars, long c0,
                std::vector<long>* witness) {
  std::vector<DVar> clamped = vars;
  for (auto& v : clamped) {
    const long span = sat_mul(96, std::max(v.stride, 1L));
    if (v.lo_inf) {
      v.lo_inf = false;
      v.lo = v.hi_inf ? -span : sat_add(v.hi, -span);
    }
    if (v.hi_inf) {
      v.hi_inf = false;
      v.hi = sat_add(v.lo, span);
    }
  }
  Solver s(std::move(clamped), c0, 400000);
  const Sat r = s.solve(witness);
  return r == Sat::kYes ? Sat::kYes : Sat::kUnknown;
}

// ---------------------------------------------------------------------------
// The per-kernel verifier.
// ---------------------------------------------------------------------------

enum class CtxKind { kIntra, kWrap, kCross };
struct RaceCtx {
  CtxKind kind = CtxKind::kIntra;
  long wrap_loop = -1;
};

class Verifier {
 public:
  Verifier(const KernelIR& ir, const KernelContract& ct) : ir_(ir), ct_(ct) {
    rep_.kernel = ir.name;
    setup_facts();
  }

  KernelVerifyReport run() {
    bounds_pass();
    race_pass();
    width_pass();
    return std::move(rep_);
  }

 private:
  const KernelIR& ir_;
  const KernelContract& ct_;
  KernelVerifyReport rep_;
  Facts facts_;
  std::map<std::string, SymExpr> nnz_total_;  // RowNnz var -> offsets total

  const BufferContract* contract_of(const std::string& buffer) const {
    auto it = ct_.buffers.find(buffer);
    return it == ct_.buffers.end() ? nullptr : &it->second;
  }

  void setup_facts() {
    facts_.lower = ct_.lower;
    facts_.upper = ct_.upper;
    for (const auto& rn : ir_.row_nnz) {
      const BufferContract* bc = contract_of(rn.buffer);
      if (bc && bc->offsets) {
        // omega = ptr[i+1] - ptr[i] with 0 <= ptr[.] <= total.
        facts_.lower["nnz:" + rn.var] = 0;
        facts_.upper["nnz:" + rn.var] = bc->offsets_total;
        nnz_total_["nnz:" + rn.var] = bc->offsets_total;
      }
    }
  }

  // --- term normalization: fold `lane + lpvar#i` into one `lanepos#i` ---

  std::map<std::string, long> norm_terms(const RefIR& ref) const {
    std::map<std::string, long> t = ref.affine.terms;
    const auto lane_it = t.find("lane");
    if (lane_it == t.end()) return t;
    for (long lid : ref.loop_path) {
      const LoopIR* lp = ir_.loop_by_id(lid);
      if (!lp || lp->kind != LoopIR::Kind::kLanePart) continue;
      const std::string lv = "lpvar#" + std::to_string(lid);
      auto it = t.find(lv);
      if (it != t.end() && it->second == lane_it->second) {
        const long c = it->second;
        t.erase(lv);
        t.erase("lane");
        t["lanepos#" + std::to_string(lid)] += c;
        break;
      }
    }
    return t;
  }

  // --- composite bounds rules ---

  /// True when `rest` (coefficients all 1) provably stays within
  /// [0, omega-1] for the RowNnz variable `var` — the chunk/nnz loop
  /// decomposition of a CSR segment walk.
  bool chunk_rest_covers(const std::map<std::string, long>& rest,
                         const std::string& var) const {
    if (rest.empty()) return false;
    int n_nnz = 0, n_chunk = 0, n_body = 0;
    long chunk_id = -1, body_link = -1;
    for (const auto& [tag, coeff] : rest) {
      if (coeff != 1) return false;
      if (tag.rfind("loopvar#", 0) == 0) {
        const LoopIR* l = ir_.loop_by_id(std::stol(tag.substr(8)));
        if (!l) return false;
        switch (l->kind) {
          case LoopIR::Kind::kNnz:
            if (l->nnz_var != var) return false;
            ++n_nnz;
            break;
          case LoopIR::Kind::kChunked:
            if (l->nnz_var != var) return false;
            ++n_chunk;
            chunk_id = l->id;
            break;
          case LoopIR::Kind::kChunkBody: {
            const LoopIR* c = ir_.loop_by_id(l->chunk_link);
            if (!c || c->nnz_var != var) return false;
            ++n_body;
            body_link = l->chunk_link;
            break;
          }
          default:
            return false;
        }
      } else if (tag.rfind("lanepos#", 0) == 0) {
        const LoopIR* l = ir_.loop_by_id(std::stol(tag.substr(8)));
        if (!l || l->kind != LoopIR::Kind::kLanePart) return false;
        if (l->chunk_link >= 0) {
          const LoopIR* c = ir_.loop_by_id(l->chunk_link);
          if (!c || c->nnz_var != var) return false;
          ++n_body;
          body_link = l->chunk_link;
        } else if (l->lane_region && l->nnz_var == var) {
          ++n_nnz;
        } else {
          return false;
        }
      } else {
        return false;
      }
    }
    if (n_nnz > 1 || n_chunk > 1 || n_body > 1) return false;
    if (n_nnz >= 1 && (n_chunk || n_body)) return false;
    if (n_body == 1 && n_chunk == 1 && body_link != chunk_id) return false;
    return true;
  }

  /// SELL pairing: seg(slice_ptr[s]) + WS·z + lane with z bounded by
  /// seg(lane_len[s·WS + lane]) stays within [0, padded-1].
  bool sell_rule(const std::map<std::string, long>& terms, long c,
                 Range* out) const {
    std::string seg_tag;
    for (const auto& [tag, coeff] : terms) {
      if (tag.rfind("seg#", 0) == 0 && coeff == 1) seg_tag = tag;
    }
    if (seg_tag.empty() || terms.size() != 3) return false;
    const IndirectIR* base = ir_.indirect_by_tag(seg_tag);
    if (!base) return false;
    const BufferContract* bc = contract_of(base->buffer);
    if (!bc || bc->paired_lengths.empty() || bc->pair_stride <= 0) {
      return false;
    }
    const long s = bc->pair_stride;
    auto lane_it = terms.find("lane");
    if (lane_it == terms.end() || lane_it->second != 1) return false;
    const LoopIR* dloop = nullptr;
    for (const auto& [tag, coeff] : terms) {
      if (tag.rfind("loopvar#", 0) != 0) continue;
      if (coeff != s) return false;
      dloop = ir_.loop_by_id(std::stol(tag.substr(8)));
    }
    if (!dloop || dloop->kind != LoopIR::Kind::kDataDep) return false;
    const AffineIdx& b = dloop->bound_affine;
    if (!b.ok || b.c != 0 || b.terms.size() != 1) return false;
    const auto& [btag, bcoeff] = *b.terms.begin();
    if (bcoeff != 1 || btag.rfind("seg#", 0) != 0) return false;
    const IndirectIR* len = ir_.indirect_by_tag(btag);
    if (!len || len->buffer != bc->paired_lengths) return false;
    // len load index must be (base load index)·s + lane.
    AffineIdx want;
    want.c = sat_mul(base->load_index.c, s);
    for (const auto& [n, v] : base->load_index.terms) {
      want.terms[n] = sat_mul(v, s);
    }
    want.terms["lane"] += 1;
    if (!base->load_index.ok || !len->load_index.ok) return false;
    if (len->load_index.c != want.c || len->load_index.terms != want.terms) {
      return false;
    }
    *out = Range::exact(SymExpr::constant(c),
                        bc->pair_total.plus_const(c - 1));
    return true;
  }

  // --- per-term ranges ---

  Range lane_range(const RefIR& ref) const {
    long hi = ir_.ws > 0 ? ir_.ws - 1 : kBig;
    if (ref.lane_bound > 0) hi = std::min(hi, ref.lane_bound - 1);
    if (hi >= kBig) return Range::lower_only(0);
    return Range::consts(0, hi);
  }

  Range lanepart_span(const LoopIR& l) const {
    if (l.lane_span > 0) return Range::consts(0, l.lane_span - 1);
    if (l.chunk_link >= 0) {
      const LoopIR* c = ir_.loop_by_id(l.chunk_link);
      if (c && c->step > 0) return Range::consts(0, c->step - 1);
    }
    if (l.lane_region && !l.nnz_var.empty() &&
        nnz_total_.count("nnz:" + l.nnz_var)) {
      return Range::exact(SymExpr::constant(0),
                          SymExpr::sym("nnz:" + l.nnz_var, 1, -1));
    }
    return Range::lower_only(0);
  }

  Range value_range(const IndirectIR& ind) const {
    const BufferContract* bc = contract_of(ind.buffer);
    if (!bc || !bc->has_values) {
      Range r;
      r.ok = true;
      r.lo.inf = true;
      r.hi.inf = true;
      return r;
    }
    SymExpr lo = bc->value_min;
    if (ind.nonneg_guarded && lo.is_const() && lo.c < 0) {
      lo = SymExpr::constant(0);
    }
    Range r = Range::exact(lo.scaled(ind.scale), bc->value_max.scaled(ind.scale),
                           std::max(std::abs(ind.scale), 1L));
    if (ind.scale < 0) std::swap(r.lo, r.hi);
    return r;
  }

  Range term_range(const std::string& tag, const RefIR& ref, int depth) const {
    if (depth > 6) return Range();
    if (tag == "lane") return lane_range(ref);
    if (tag == "row") {
      if (ir_.row_bounded) {
        auto it = ct_.scalar_args.find(ir_.row_bound_var);
        if (it != ct_.scalar_args.end()) {
          return Range::exact(SymExpr::constant(0), it->second.plus_const(-1));
        }
      }
      return Range::lower_only(0);
    }
    if (tag == "group") {
      if (ct_.has_group_upper) {
        return Range::exact(SymExpr::constant(0),
                            ct_.group_upper.plus_const(-1));
      }
      return Range::lower_only(0);
    }
    if (tag == "ngroups") return Range::lower_only(1);
    if (tag.rfind("lanepos#", 0) == 0) {
      const LoopIR* l = ir_.loop_by_id(std::stol(tag.substr(8)));
      if (!l) return Range();
      return lanepart_span(*l);
    }
    if (tag.rfind("lpvar#", 0) == 0) {
      const LoopIR* l = ir_.loop_by_id(std::stol(tag.substr(6)));
      if (!l) return Range();
      Range r = lanepart_span(*l);
      r.stride = std::max(ir_.ws, 1L);
      return r;
    }
    if (tag.rfind("loopvar#", 0) == 0) {
      const LoopIR* l = ir_.loop_by_id(std::stol(tag.substr(8)));
      if (!l) return Range();
      switch (l->kind) {
        case LoopIR::Kind::kFixed: {
          const Range init = affine_range(l->init_affine, ref, depth + 1);
          const Range bound = affine_range(l->bound_affine, ref, depth + 1);
          if (!init.ok || !bound.ok) return Range();
          Range r;
          r.ok = true;
          r.stride = std::max(std::abs(l->step), 1L);
          if (l->step_down) {
            // for (i = init; i >= bound; i -= step)
            r.lo = bound.lo;
            if (!l->bound_inclusive && !r.lo.inf) {
              r.lo.e = r.lo.e.plus_const(1);
            }
            r.hi = init.hi;
          } else {
            r.lo = init.lo;
            r.hi = bound.hi;
            if (!r.hi.inf) {
              r.hi.e = r.hi.e.plus_const(l->bound_inclusive ? 0 : -1);
            }
          }
          return r;
        }
        case LoopIR::Kind::kNnz:
        case LoopIR::Kind::kChunked: {
          if (!l->nnz_var.empty() && nnz_total_.count("nnz:" + l->nnz_var)) {
            Range r = Range::exact(SymExpr::constant(0),
                                   SymExpr::sym("nnz:" + l->nnz_var, 1, -1));
            r.stride = std::max(l->step, 1L);
            return r;
          }
          return Range::lower_only(0);
        }
        case LoopIR::Kind::kChunkBody: {
          const LoopIR* c = ir_.loop_by_id(l->chunk_link);
          if (c && c->step > 0) return Range::consts(0, c->step - 1);
          return Range::lower_only(0);
        }
        case LoopIR::Kind::kDataDep: {
          const AffineIdx& b = l->bound_affine;
          if (b.ok && b.c == 0 && b.terms.size() == 1 &&
              b.terms.begin()->second == 1) {
            const IndirectIR* ind = ir_.indirect_by_tag(b.terms.begin()->first);
            if (ind) {
              Range v = value_range(*ind);
              if (v.ok && !v.hi.inf) {
                return Range::exact(SymExpr::constant(0),
                                    v.hi.e.plus_const(-1));
              }
            }
          }
          return Range::lower_only(0);
        }
        case LoopIR::Kind::kLanePart:
          return lanepart_span(*l);
        case LoopIR::Kind::kRowStride:
          return term_range("row", ref, depth + 1);
      }
      return Range();
    }
    if (tag.rfind("seg#", 0) == 0 || tag.rfind("gather#", 0) == 0) {
      const IndirectIR* ind = ir_.indirect_by_tag(tag);
      if (!ind) return Range();
      return value_range(*ind);
    }
    return Range();
  }

  Range affine_range(const AffineIdx& a, const RefIR& ref, int depth) const {
    if (!a.ok || depth > 8) return Range();
    Range acc = Range::consts(a.c, a.c, 0);
    for (const auto& [tag, coeff] : a.terms) {
      if (coeff == 0) continue;
      acc = add_scaled(acc, term_range(tag, ref, depth), coeff);
      if (!acc.ok) return acc;
    }
    if (acc.stride == 0) acc.stride = 1;
    return acc;
  }

  Range range_of_ref(const RefIR& ref) const {
    if (!ref.affine.ok) return Range();
    const std::map<std::string, long> terms = norm_terms(ref);
    // CSR rule: seg(row_ptr[u]) + (walk ⊆ [0, omega-1]) + C.
    for (const auto& rn : ir_.row_nnz) {
      auto it = terms.find(rn.begin_seg);
      if (it == terms.end() || it->second != 1) continue;
      const BufferContract* bc = contract_of(rn.buffer);
      if (!bc || !bc->offsets) continue;
      std::map<std::string, long> rest = terms;
      rest.erase(rn.begin_seg);
      if (chunk_rest_covers(rest, rn.var)) {
        return Range::exact(SymExpr::constant(ref.affine.c),
                            bc->offsets_total.plus_const(ref.affine.c - 1));
      }
    }
    Range sell;
    if (sell_rule(terms, ref.affine.c, &sell)) return sell;
    AffineIdx norm;
    norm.c = ref.affine.c;
    norm.terms = terms;
    return affine_range(norm, ref, 0);
  }

  // --- witness evaluation over the contract's concrete grid ---

  bool eval_sym(const std::string& name,
                const std::map<std::string, long>& pt, bool want_max,
                long* out) const {
    auto it = pt.find(name);
    if (it != pt.end()) {
      *out = it->second;
      return true;
    }
    auto nz = nnz_total_.find(name);
    if (nz != nnz_total_.end()) {
      // omega ∈ [0, total]: max is the whole stream in one row.
      if (!want_max) {
        *out = 0;
        return true;
      }
      return eval_expr(nz->second, pt, true, out);
    }
    return false;
  }

  bool eval_expr(const SymExpr& e, const std::map<std::string, long>& pt,
                 bool want_max, long* out) const {
    long acc = e.c;
    for (const auto& [name, coeff] : e.terms) {
      if (coeff == 0) continue;
      long v = 0;
      if (!eval_sym(name, pt, (coeff > 0) == want_max, &v)) return false;
      acc = sat_add(acc, sat_mul(coeff, v));
    }
    *out = acc;
    return true;
  }

  // --- bounds pass ---

  bool extent_of(const RefIR& ref, SymExpr* out, std::string* why) const {
    switch (ref.space) {
      case MemSpace::kGlobal: {
        const BufferContract* bc = contract_of(ref.buffer);
        if (!bc || !bc->has_extent) {
          *why = "no extent contract for global buffer '" + ref.buffer + "'";
          return false;
        }
        *out = bc->extent;
        return true;
      }
      case MemSpace::kLocal:
        for (const auto& l : ir_.locals) {
          if (l.name != ref.buffer) continue;
          if (l.elems < 0) {
            *why = "__local '" + ref.buffer + "' has a non-constant extent";
            return false;
          }
          *out = SymExpr::constant(l.elems);
          return true;
        }
        *why = "no declaration found for __local '" + ref.buffer + "'";
        return false;
      case MemSpace::kPrivate:
        for (const auto& p : ir_.private_arrays) {
          if (p.name != ref.buffer) continue;
          *out = SymExpr::constant(p.elems);
          return true;
        }
        *why = "no declaration found for private array '" + ref.buffer + "'";
        return false;
    }
    return false;
  }

  void bounds_pass() {
    for (const auto& ref : ir_.refs) {
      ++rep_.refs_total;
      BoundsFinding f;
      f.buffer = ref.buffer;
      f.space = ref.space;
      f.is_store = ref.is_store;
      f.line = ref.line;
      f.col = ref.col;
      f.index = ref.index;

      SymExpr extent;
      std::string why;
      if (!extent_of(ref, &extent, &why)) {
        f.verdict = BoundsVerdict::kUnprovable;
        f.detail = why;
        ++rep_.refs_unprovable;
        rep_.bounds_findings.push_back(std::move(f));
        continue;
      }
      const Range r = range_of_ref(ref);
      if (!r.ok) {
        f.verdict = BoundsVerdict::kUnprovable;
        f.detail = "index is not resolvable in the interval domain";
        ++rep_.refs_unprovable;
        rep_.bounds_findings.push_back(std::move(f));
        continue;
      }
      Bound hi = r.hi;
      if (!hi.inf && ref.vec_elems > 1) {
        hi.e = hi.e.plus_const(ref.vec_elems - 1);
      }
      const bool lo_ok = !r.lo.inf && prove_nonneg(r.lo.e, facts_);
      const bool hi_ok =
          !hi.inf && prove_nonneg(extent.plus_const(-1).plus(hi.e, -1), facts_);
      if (lo_ok && hi_ok) {
        ++rep_.refs_proven_safe;
        continue;
      }
      // Violation witness over the concrete grid.
      bool violating = false;
      for (const auto& pt : ct_.witness_grid) {
        long ext = 0;
        if (!eval_expr(extent, pt, true, &ext)) continue;
        if (!lo_ok && !r.lo.inf) {
          long lo_v = 0;
          if (eval_expr(r.lo.e, pt, false, &lo_v) && lo_v < 0) {
            f.detail = "index reaches " + std::to_string(lo_v) +
                       " < 0 (lo = " + r.lo.e.str() + ")";
            violating = true;
            break;
          }
        }
        if (!hi_ok && !hi.inf) {
          long hi_v = 0;
          if (eval_expr(hi.e, pt, true, &hi_v) && hi_v > ext - 1) {
            f.detail = "index reaches " + std::to_string(hi_v) +
                       " > extent-1 = " + std::to_string(ext - 1) +
                       " (hi = " + hi.e.str() + ", extent = " + extent.str() +
                       ")";
            violating = true;
            break;
          }
        }
      }
      if (violating) {
        f.verdict = BoundsVerdict::kProvenViolating;
        ++rep_.refs_proven_violating;
      } else {
        f.verdict = BoundsVerdict::kUnprovable;
        std::ostringstream os;
        os << "cannot prove ";
        if (!lo_ok) {
          os << (r.lo.inf ? std::string("lower bound (unbounded below)")
                          : "0 <= " + r.lo.e.str());
        }
        if (!lo_ok && !hi_ok) os << " and ";
        if (!hi_ok) {
          os << (hi.inf ? std::string("upper bound (unbounded above)")
                        : hi.e.str() + " <= " + extent.str() + " - 1");
        }
        f.detail = os.str();
        ++rep_.refs_unprovable;
      }
      rep_.bounds_findings.push_back(std::move(f));
    }
  }

  // --- race pass ---

  struct BuildOut {
    bool ok = false;
    std::vector<DVar> vars;
    long c0 = 0;
  };

  void push_range_var(BuildOut* out, const Range& r, long coeff,
                      const std::string& name, bool excl0 = false,
                      int neq = -1) {
    DVar v;
    v.coeff = coeff;
    v.stride = std::max(r.stride, 1L);
    v.lo_inf = r.lo.inf || !r.lo.e.is_const();
    v.hi_inf = r.hi.inf || !r.hi.e.is_const();
    if (!v.lo_inf) v.lo = r.lo.e.c;
    if (!v.hi_inf) v.hi = r.hi.e.c;
    v.excl0 = excl0;
    v.neq = neq;
    v.name = name;
    out->vars.push_back(v);
  }

  /// Delta variable for a term whose per-item value spans `r`:
  /// δ ∈ ±width(r), same stride.
  void push_delta(BuildOut* out, const Range& r, long coeff,
                  const std::string& name, bool excl0) {
    DVar v;
    v.coeff = coeff;
    v.stride = std::max(r.stride, 1L);
    const bool finite = r.ok && !r.lo.inf && !r.hi.inf && r.lo.e.is_const() &&
                        r.hi.e.is_const();
    if (finite) {
      const long w = r.hi.e.c - r.lo.e.c;
      v.lo = -w;
      v.hi = w;
    } else {
      v.lo_inf = v.hi_inf = true;
    }
    v.excl0 = excl0;
    v.name = name;
    out->vars.push_back(v);
  }

  void push_onesided_pair(BuildOut* out, const Range& ra, long ca,
                          const Range& rb, long cb, const std::string& name,
                          bool tie_neq) {
    if (ca != 0) {
      push_range_var(out, ra, ca, name + "@A");
    }
    if (cb != 0) {
      push_range_var(out, rb, -cb, name + "@B");
    }
    if (tie_neq && ca != 0 && cb != 0) {
      const int ia = static_cast<int>(out->vars.size()) - 2;
      const int ib = ia + 1;
      out->vars[ia].neq = ib;
      out->vars[ib].neq = ia;
    }
  }

  /// Is this term pinned equal across the two work-items in this context?
  bool synced(const std::string& tag, const RaceCtx& ctx) const {
    if (ctx.kind == CtxKind::kCross) {
      return tag == "ngroups";
    }
    if (tag == "ngroups" || tag == "group") return true;
    if (tag == "row") {
      // Batched mapping: the row loop carries barriers, so all lanes sit in
      // the same iteration — except across the wrap-around of the row loop
      // itself.
      if (!ir_.batched_mapping) return false;
      if (ctx.kind == CtxKind::kWrap) {
        const LoopIR* l = ir_.loop_by_id(ctx.wrap_loop);
        if (l && l->kind == LoopIR::Kind::kRowStride) return false;
      }
      return true;
    }
    if (tag.rfind("loopvar#", 0) == 0) {
      const LoopIR* l = ir_.loop_by_id(std::stol(tag.substr(8)));
      if (!l) return false;
      if (ctx.kind == CtxKind::kWrap && l->id == ctx.wrap_loop) return false;
      return l->body_has_barrier;
    }
    return false;
  }

  /// Identity terms force distinct values for distinct work-items.
  bool identity(const std::string& tag, const RaceCtx& ctx) const {
    if (ctx.kind == CtxKind::kCross) {
      // Across groups: the group id differs; row ids never collide across
      // groups under either mapping (flat: disjoint global ids; batched:
      // u ≡ group (mod num_groups)).
      return tag == "group" || tag == "row";
    }
    // Within a group: distinct lanes. lanepos = lane + WS·m is injective in
    // the lane for fixed loop tag, so it inherits the identity property.
    return tag == "lane" || tag.rfind("lanepos#", 0) == 0 ||
           (tag == "row" && !ir_.batched_mapping);
  }

  BuildOut build_load_delta(const AffineIdx& a, const RefIR& ra,
                            const AffineIdx& b, const RefIR& rb,
                            const RaceCtx& ctx, int depth) {
    BuildOut out;
    if (!a.ok || !b.ok || depth > 3) return out;
    out.c0 = a.c - b.c;
    std::map<std::string, std::pair<long, long>> tags;
    for (const auto& [t, c] : a.terms) tags[t].first = c;
    for (const auto& [t, c] : b.terms) tags[t].second = c;
    for (const auto& [tag, cc] : tags) {
      if (!emit_term(&out, tag, cc.first, cc.second, ra, rb, ctx, depth)) {
        return out;  // !ok
      }
    }
    out.ok = true;
    return out;
  }

  bool emit_term(BuildOut* out, const std::string& tag, long ca, long cb,
                 const RefIR& ra, const RefIR& rb, const RaceCtx& ctx,
                 int depth) {
    if (ca == 0 && cb == 0) return true;
    if (tag.rfind("seg#", 0) == 0 || tag.rfind("gather#", 0) == 0) {
      return emit_indirect_term(out, tag, ca, cb, ra, rb, ctx, depth);
    }
    if (synced(tag, ctx)) {
      if (ca == cb) return true;  // identical value, coefficients cancel
      // Same value v on both sides with net coefficient (ca - cb).
      push_range_var(out, term_range(tag, ra, 0), ca - cb, tag + "@sync");
      return true;
    }
    const bool ident = identity(tag, ctx);
    const Range range_a = term_range(tag, ra, 0);
    const Range range_b = term_range(tag, rb, 0);
    // Wrap-around of the wrap loop's own variable: adjacent iterations.
    if (ctx.kind == CtxKind::kWrap && tag.rfind("loopvar#", 0) == 0 &&
        std::stol(tag.substr(8)) == ctx.wrap_loop && ca == cb) {
      const LoopIR* l = ir_.loop_by_id(ctx.wrap_loop);
      const long step = l ? std::max(std::abs(l->step), 1L) : 1;
      DVar v;
      v.coeff = ca;
      v.stride = step;
      v.lo = -step;
      v.hi = step;
      v.excl0 = true;
      v.name = tag + "@wrap";
      out->vars.push_back(v);
      return true;
    }
    if (tag == "row" && ctx.kind == CtxKind::kWrap && ca == cb &&
        ir_.batched_mapping && !synced(tag, ctx)) {
      // Row-loop wrap: u differs by ±num_groups ≥ 1.
      DVar v;
      v.coeff = ca;
      v.lo_inf = v.hi_inf = true;
      v.excl0 = true;
      v.name = "row@wrap";
      out->vars.push_back(v);
      return true;
    }
    if (ca == cb) {
      if (ident && ctx.kind == CtxKind::kCross && tag != "group" &&
          tag != "row") {
        // Identity within a group only — across groups the value is free.
        push_delta(out, range_a, ca, tag, /*excl0=*/false);
        return true;
      }
      if (ident) {
        // Unbounded identities (cross-group row/group) still differ.
        if (ctx.kind == CtxKind::kCross && (tag == "group" || tag == "row")) {
          DVar v;
          v.coeff = ca;
          v.lo_inf = v.hi_inf = true;
          v.excl0 = true;
          v.name = tag;
          out->vars.push_back(v);
          return true;
        }
        // Intra-group identity: bounded delta without zero. Use both refs'
        // bounds for an asymmetric window.
        DVar v;
        v.coeff = ca;
        v.stride = std::max(std::gcd(range_a.stride, range_b.stride), 1L);
        const bool fin_a = range_a.ok && !range_a.hi.inf &&
                           range_a.hi.e.is_const() && !range_a.lo.inf &&
                           range_a.lo.e.is_const();
        const bool fin_b = range_b.ok && !range_b.hi.inf &&
                           range_b.hi.e.is_const() && !range_b.lo.inf &&
                           range_b.lo.e.is_const();
        if (fin_a && fin_b) {
          v.lo = range_a.lo.e.c - range_b.hi.e.c;
          v.hi = range_a.hi.e.c - range_b.lo.e.c;
        } else {
          v.lo_inf = v.hi_inf = true;
        }
        v.excl0 = true;
        v.name = tag;
        out->vars.push_back(v);
        return true;
      }
      push_delta(out, range_a, ca, tag, /*excl0=*/false);
      return true;
    }
    // Different coefficients (or present on one side only): independent
    // one-sided variables; identity still forbids equal values intra-group.
    push_onesided_pair(out, range_a, ca, range_b, cb, tag,
                       ident && ctx.kind != CtxKind::kCross);
    return true;
  }

  bool emit_indirect_term(BuildOut* out, const std::string& tag, long ca,
                          long cb, const RefIR& ra, const RefIR& rb,
                          const RaceCtx& ctx, int depth) {
    const IndirectIR* ind = ir_.indirect_by_tag(tag);
    if (!ind) return false;
    const Range vr = value_range(*ind);
    const long stride = std::max(std::abs(ind->scale), 1L);
    if (ca == cb) {
      // Same load expression on both work-items: resolve the delta of the
      // load *index* first.
      const BuildOut ld = build_load_delta(ind->load_index, ra,
                                           ind->load_index, rb, ctx, depth + 1);
      if (!ld.ok) return false;
      if (ld.vars.empty() && ld.c0 == 0) return true;  // same element loaded
      Solver s(ld.vars, ld.c0, 100000);
      const Sat same = s.solve();
      const BufferContract* bc = contract_of(ind->buffer);
      const bool inj =
          bc && bc->injective &&
          (ind->nonneg_guarded ||
           (bc->has_values && bc->value_min.is_const() &&
            bc->value_min.c >= 0));
      DVar v;
      v.coeff = ca;
      v.stride = stride;
      const bool fin = vr.ok && !vr.lo.inf && !vr.hi.inf &&
                       vr.lo.e.is_const() && vr.hi.e.is_const();
      if (fin) {
        const long w = vr.hi.e.c - vr.lo.e.c;
        v.lo = -w;
        v.hi = w;
      } else {
        v.lo_inf = v.hi_inf = true;
      }
      // Loads proven distinct + injective values => the delta cannot be 0.
      v.excl0 = (same == Sat::kNo) && inj;
      v.name = tag + "@delta";
      out->vars.push_back(v);
      return true;
    }
    push_onesided_pair(out, vr, ca, vr, cb, tag, /*tie_neq=*/false);
    return true;
  }

  RaceVerdict pair_verdict(const RefIR& a, const RefIR& b, const RaceCtx& ctx,
                           std::string* detail) {
    BuildOut out;
    out.c0 = a.affine.c - b.affine.c;
    const std::map<std::string, long> ta = norm_terms(a);
    const std::map<std::string, long> tb = norm_terms(b);
    if (!a.affine.ok || !b.affine.ok) {
      *detail = "non-affine index";
      return RaceVerdict::kUnprovable;
    }
    std::map<std::string, std::pair<long, long>> tags;
    for (const auto& [t, c] : ta) tags[t].first = c;
    for (const auto& [t, c] : tb) tags[t].second = c;
    for (const auto& [tag, cc] : tags) {
      if (!emit_term(&out, tag, cc.first, cc.second, a, b, ctx, 0)) {
        *detail = "term '" + tag + "' is not resolvable";
        return RaceVerdict::kUnprovable;
      }
    }
    // Vector references cover [idx, idx + vec-1]: overlap is Δ within the
    // combined footprint, encoded as a slack variable.
    if (a.vec_elems > 1 || b.vec_elems > 1) {
      DVar slack;
      slack.coeff = 1;
      slack.lo = -(a.vec_elems - 1);
      slack.hi = b.vec_elems - 1;
      slack.name = "vec-overlap";
      out.vars.push_back(slack);
    }
    std::vector<long> witness;
    Solver s(out.vars, out.c0, 200000);
    Sat r = s.solve(&witness);
    if (r == Sat::kUnknown) {
      r = probe_solve(s.vars(), out.c0, &witness);
    }
    if (r == Sat::kNo) return RaceVerdict::kProvenFree;
    if (r == Sat::kYes) {
      std::ostringstream os;
      os << "indices collide at";
      const auto& vs = s.vars();
      for (std::size_t i = 0; i < vs.size() && i < witness.size(); ++i) {
        os << " " << vs[i].name << "=" << witness[i];
      }
      *detail = os.str();
      return RaceVerdict::kProvenRace;
    }
    *detail = "delta equation undecided (domains unbounded)";
    return RaceVerdict::kUnprovable;
  }

  void race_pass() {
    // Group references by buffer, skipping private memory (per work-item).
    std::map<std::pair<int, std::string>, std::vector<const RefIR*>> groups;
    for (const auto& r : ir_.refs) {
      if (r.space == MemSpace::kPrivate) continue;
      groups[{static_cast<int>(r.space), r.buffer}].push_back(&r);
    }
    for (const auto& [key, refs] : groups) {
      bool any_store = false;
      for (const RefIR* r : refs) any_store |= r->is_store;
      if (!any_store) continue;
      const MemSpace space = static_cast<MemSpace>(key.first);
      for (std::size_t i = 0; i < refs.size(); ++i) {
        for (std::size_t j = i; j < refs.size(); ++j) {
          const RefIR& a = *refs[i];
          const RefIR& b = *refs[j];
          if (!a.is_store && !b.is_store) continue;
          std::vector<RaceCtx> ctxs;
          if (a.interval == b.interval) {
            ctxs.push_back({CtxKind::kIntra, -1});
          }
          for (const auto& l : ir_.loops) {
            if (!l.body_has_barrier || l.entry_interval == l.exit_interval) {
              continue;
            }
            const bool in_a = std::count(a.loop_path.begin(),
                                         a.loop_path.end(), l.id) > 0;
            const bool in_b = std::count(b.loop_path.begin(),
                                         b.loop_path.end(), l.id) > 0;
            if (!in_a || !in_b) continue;
            const bool fwd = a.interval == l.exit_interval &&
                             b.interval == l.entry_interval;
            const bool bwd = b.interval == l.exit_interval &&
                             a.interval == l.entry_interval;
            if (fwd || bwd) ctxs.push_back({CtxKind::kWrap, l.id});
          }
          if (space == MemSpace::kGlobal) {
            ctxs.push_back({CtxKind::kCross, -1});
          }
          if (ctxs.empty()) continue;
          ++rep_.pairs_checked;
          RaceVerdict worst = RaceVerdict::kProvenFree;
          bool cross = false;
          std::string detail;
          for (const auto& ctx : ctxs) {
            std::string d;
            const RaceVerdict v = pair_verdict(a, b, ctx, &d);
            if (v == RaceVerdict::kProvenFree) continue;
            const char* where =
                ctx.kind == CtxKind::kCross
                    ? "across groups"
                    : (ctx.kind == CtxKind::kWrap ? "across a barrier-loop wrap"
                                                  : "within a barrier interval");
            d = std::string(where) + ": " + d;
            if (v == RaceVerdict::kProvenRace) {
              worst = v;
              cross = ctx.kind == CtxKind::kCross;
              detail = d;
              break;
            }
            if (worst == RaceVerdict::kProvenFree) {
              worst = v;
              cross = ctx.kind == CtxKind::kCross;
              detail = d;
            }
          }
          if (worst == RaceVerdict::kProvenFree) continue;
          RaceFinding f;
          f.buffer = a.buffer;
          f.space = space;
          f.verdict = worst;
          f.cross_group = cross;
          f.line_a = a.line;
          f.col_a = a.col;
          f.line_b = b.line;
          f.col_b = b.col;
          f.detail = detail;
          if (worst == RaceVerdict::kProvenRace) {
            ++rep_.races_proven;
          } else {
            ++rep_.races_unprovable;
          }
          rep_.race_findings.push_back(std::move(f));
        }
      }
    }
  }

  void width_pass() {
    std::map<std::pair<int, std::string>, std::vector<int>> widths;
    for (const auto& r : ir_.refs) {
      auto& w = widths[{static_cast<int>(r.space), r.buffer}];
      if (std::count(w.begin(), w.end(), r.elem_bytes) == 0) {
        w.push_back(r.elem_bytes);
      }
    }
    for (auto& [key, w] : widths) {
      std::sort(w.begin(), w.end());
      WidthRecord rec;
      rec.buffer = key.second;
      rec.space = static_cast<MemSpace>(key.first);
      rec.widths = w;
      rec.mixed = w.size() > 1;
      rep_.widths.push_back(std::move(rec));
    }
  }
};

}  // namespace

KernelVerifyReport verify_kernel(const KernelIR& ir,
                                 const KernelContract& contract) {
  return Verifier(ir, contract).run();
}

}  // namespace alsmf::ocl::analyze::verify
