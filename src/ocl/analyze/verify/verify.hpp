// Static bounds & race verifier over the access-pattern IR (analyze/ir.hpp).
//
// The engine is an abstract interpretation on two domains:
//  - an interval+stride domain over symbolic dataset shapes (ROWS, COLS,
//    NNZ, ...) that evaluates every affine reference index against the
//    buffer extents a KernelContract declares, yielding a per-reference
//    bounds verdict: proven-safe / proven-violating / unprovable;
//  - a may-happen-in-parallel (MHP) relation built from *barrier
//    intervals*: each kernel is sliced at barriers into statically numbered
//    intervals, two references of distinct work-items may run concurrently
//    when they share an interval (lock-step barrier loops pin their loop
//    variables equal) or sit on the wrap-around boundary of a
//    barrier-carrying loop. For every MHP pair touching a common buffer
//    with at least one store, the symbolic difference of the two indices is
//    solved exactly over per-term delta domains; "no solution" proves the
//    write sets disjoint, a concrete solution is a proven race with a
//    witness, anything else is unprovable.
//
// Everything fails closed: a reference the domain cannot resolve, a loop the
// range rules cannot bound, or a pair the solver cannot decide produces a
// non-proven verdict, and KernelVerifyReport::clean() is false.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ocl/analyze/ir.hpp"

namespace alsmf::ocl::analyze::verify {

/// Symbolic linear expression c + Σ coeff·symbol over named dataset-shape
/// symbols ("ROWS", "NNZ", ...). Coefficients are concrete (K, WS and tile
/// sizes are baked #defines in the generated kernels).
struct SymExpr {
  long c = 0;
  std::map<std::string, long> terms;

  static SymExpr constant(long v) {
    SymExpr e;
    e.c = v;
    return e;
  }
  static SymExpr sym(const std::string& name, long coeff = 1, long c = 0) {
    SymExpr e;
    e.c = c;
    if (coeff != 0) e.terms[name] = coeff;
    return e;
  }
  SymExpr plus(const SymExpr& o, long sign = 1) const;
  SymExpr plus_const(long v) const;
  SymExpr scaled(long s) const;
  long coeff(const std::string& name) const {
    auto it = terms.find(name);
    return it == terms.end() ? 0 : it->second;
  }
  bool is_const() const { return terms.empty(); }
  std::string str() const;
};

/// Per-buffer verification contract: the symbolic element extent plus, for
/// int-valued buffers used in address arithmetic, the range (and shape
/// facts) of the *values* they hold.
struct BufferContract {
  bool has_extent = false;
  SymExpr extent;  // element count

  // Value facts for int buffers (col_idx, row_ptr, perm, ...).
  bool has_values = false;
  SymExpr value_min, value_max;
  bool injective = false;  // distinct in-bounds indices hold distinct values

  // Offsets buffer (CSR row_ptr): monotone non-decreasing, so any
  // `v = buf[i+1] - buf[i]` satisfies buf[i] + v <= offsets_total.
  bool offsets = false;
  SymExpr offsets_total;

  // SELL-style pairing: this offsets buffer O and a lengths buffer L with
  // O[s] + pair_stride * L[s*pair_stride + lane] <= O[s+1] for every lane,
  // and O[last] == pair_total.
  std::string paired_lengths;
  long pair_stride = 0;
  SymExpr pair_total;
};

/// Whole-kernel contract: buffers by argument name, scalar arguments that
/// carry shape symbols, global facts about the symbols, and concrete grid
/// points used to search for violation witnesses.
struct KernelContract {
  std::map<std::string, BufferContract> buffers;
  std::map<std::string, SymExpr> scalar_args;  // "rows" -> ROWS

  std::map<std::string, long> lower;    // symbol >= value (default 0)
  std::map<std::string, SymExpr> upper;  // symbol <= expr

  bool has_group_upper = false;
  SymExpr group_upper;  // group id < group_upper (SELL: slice count)

  /// Concrete, mutually consistent shape assignments used to *prove* a
  /// violation (every symbol the report may mention must be assigned).
  std::vector<std::map<std::string, long>> witness_grid;
};

enum class BoundsVerdict { kProvenSafe, kProvenViolating, kUnprovable };
enum class RaceVerdict { kProvenFree, kProvenRace, kUnprovable };

const char* to_string(BoundsVerdict v);
const char* to_string(RaceVerdict v);

struct BoundsFinding {
  std::string buffer;
  MemSpace space = MemSpace::kGlobal;
  bool is_store = false;
  BoundsVerdict verdict = BoundsVerdict::kUnprovable;
  int line = 0;
  int col = 0;
  std::string index;   // pretty-printed index expression
  std::string detail;  // proof obligation / witness description
};

struct RaceFinding {
  std::string buffer;
  MemSpace space = MemSpace::kLocal;
  RaceVerdict verdict = RaceVerdict::kUnprovable;
  bool cross_group = false;
  int line_a = 0, col_a = 0;
  int line_b = 0, col_b = 0;
  std::string detail;
};

/// Access-width record: every element width observed on a buffer (the
/// fp16/bf16 storage axis re-verifies against these for free).
struct WidthRecord {
  std::string buffer;
  MemSpace space = MemSpace::kGlobal;
  std::vector<int> widths;  // distinct element widths, ascending
  bool mixed = false;
};

struct KernelVerifyReport {
  std::string kernel;

  int refs_total = 0;
  int refs_proven_safe = 0;
  int refs_proven_violating = 0;
  int refs_unprovable = 0;
  std::vector<BoundsFinding> bounds_findings;  // non-proven-safe refs only

  int pairs_checked = 0;
  int races_proven = 0;
  int races_unprovable = 0;
  std::vector<RaceFinding> race_findings;  // non-proven-free pairs only

  std::vector<WidthRecord> widths;

  /// Unanalyzable kernel / missing contract: recorded here, never dropped.
  std::vector<std::string> errors;

  bool bounds_clean() const {
    return errors.empty() && refs_proven_violating == 0 &&
           refs_unprovable == 0;
  }
  bool races_clean() const {
    return errors.empty() && races_proven == 0 && races_unprovable == 0;
  }
  bool clean() const { return bounds_clean() && races_clean(); }
};

/// Verifies one lowered kernel against its contract.
KernelVerifyReport verify_kernel(const KernelIR& ir,
                                 const KernelContract& contract);

}  // namespace alsmf::ocl::analyze::verify
