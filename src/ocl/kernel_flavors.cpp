#include "ocl/kernel_flavors.hpp"

namespace alsmf::ocl {

std::vector<KernelFlavor> enumerate_kernel_flavors(const KernelConfig& c) {
  std::vector<KernelFlavor> flavors;

  const auto add_batched = [&](RowSolverKind rs, StoragePrecision sp) {
    KernelConfig fc = c;
    fc.row_solver = rs;
    fc.storage = sp;
    for (unsigned mask = 0; mask < AlsVariant::kVariantCount; ++mask) {
      KernelFlavor f;
      f.batched = true;
      f.variant = AlsVariant::from_mask(mask);
      f.row_solver = rs;
      f.storage = sp;
      f.name = kernel_name(f.variant, rs, sp);
      f.source = batched_kernel_source(f.variant, fc);
      flavors.push_back(std::move(f));
    }
  };

  // The flat/SELL baselines are kept exact at the default S3: normalize
  // the knobs the enumeration owns so a caller's row_solver/storage cannot
  // leak into their preamble text (the CRC-pinned source is canonical).
  KernelConfig flat_c = c;
  flat_c.row_solver = RowSolverKind::kCholesky;
  flat_c.storage = StoragePrecision::kFp32;

  KernelFlavor flat;
  flat.name = "als_update_flat";
  flat.source = flat_kernel_source(flat_c);
  flat.variant = AlsVariant::flat_baseline();
  flavors.push_back(std::move(flat));

  add_batched(RowSolverKind::kCholesky, StoragePrecision::kFp32);
  add_batched(RowSolverKind::kCg, StoragePrecision::kFp32);

  KernelFlavor sell;
  sell.name = "als_update_flat_sell";
  sell.source = sell_kernel_source(flat_c);
  sell.variant = AlsVariant::flat_baseline();
  flavors.push_back(std::move(sell));

  // Mixed-precision storage flavors: cholesky only — the CG iterate's value
  // range is not certifiable against narrow storage (kernel_source.hpp).
  add_batched(RowSolverKind::kCholesky, StoragePrecision::kFp16);
  add_batched(RowSolverKind::kCholesky, StoragePrecision::kBf16);

  return flavors;
}

}  // namespace alsmf::ocl
