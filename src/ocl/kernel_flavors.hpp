// The single enumeration of every generated kernel flavor. All sweeps that
// claim to cover "all generated kernels" — golden CRC pinning, deep lint +
// static profiles (analyze-kernels), the bounds/race verifier
// (verify-kernels), dynamic checked execution (check-kernels), precision
// certification (analyze-precision), and file export — derive their lists
// from enumerate_kernel_flavors, so adding a flavor family here enrolls it
// in every gate at once and no gate can silently skip one.
#pragma once

#include <string>
#include <vector>

#include "ocl/kernel_source.hpp"

namespace alsmf::ocl {

/// One generated kernel flavor at a concrete KernelConfig.
struct KernelFlavor {
  std::string name;    ///< kernel entry point == exported file stem
  std::string source;  ///< the generated OpenCL C
  bool batched = false;
  AlsVariant variant;  ///< meaningful when batched
  RowSolverKind row_solver = RowSolverKind::kCholesky;
  StoragePrecision storage = StoragePrecision::kFp32;
};

/// Every generated flavor at `config`, in the pinned sweep order:
/// flat, the 8 batched cholesky variants, the 8 batched cg variants, SELL,
/// then the 8 batched cholesky variants × {fp16, bf16} storage (34 total).
/// `config.row_solver` / `config.storage` are overridden per flavor; the
/// remaining fields (k, group size, tile rows) apply to all of them.
std::vector<KernelFlavor> enumerate_kernel_flavors(const KernelConfig& config);

}  // namespace alsmf::ocl
