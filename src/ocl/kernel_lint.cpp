#include "ocl/kernel_lint.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <sstream>

namespace alsmf::ocl {

namespace {

struct Token {
  std::string text;
  int line = 0;
};

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Splits comment-stripped code into identifiers, numeric literals and
/// single punctuation characters, with 1-based line numbers.
std::vector<Token> tokenize(const std::string& code) {
  std::vector<Token> toks;
  int line = 1;
  for (std::size_t i = 0; i < code.size();) {
    const char c = code[i];
    if (c == '\n') {
      ++line;
      ++i;
    } else if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
    } else if (is_ident_start(c)) {
      std::size_t j = i + 1;
      while (j < code.size() && is_ident_char(code[j])) ++j;
      toks.push_back({code.substr(i, j - i), line});
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i + 1;
      while (j < code.size() && (is_ident_char(code[j]) || code[j] == '.')) ++j;
      toks.push_back({code.substr(i, j - i), line});
      i = j;
    } else {
      toks.push_back({std::string(1, c), line});
      ++i;
    }
  }
  return toks;
}

bool is_identifier(const Token& t) { return is_ident_start(t.text[0]); }

/// Collects identifiers whose value is derived from the work-item id:
/// initialised or assigned from an expression mentioning get_local_id /
/// get_global_id or another already-divergent identifier. Iterated to a
/// fixpoint so chained aliases (lx -> p -> d) are caught.
std::set<std::string> collect_divergent_aliases(const std::vector<Token>& t) {
  std::set<std::string> div = {"get_local_id", "get_global_id"};
  const std::size_t n = t.size();
  for (int round = 0; round < 4; ++round) {
    bool changed = false;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      if (!is_identifier(t[i])) continue;
      // `x = ...` or `x op= ...`, excluding `==` comparisons.
      std::size_t rhs = 0;
      if (t[i + 1].text == "=" && (i + 2 >= n || t[i + 2].text != "=")) {
        rhs = i + 2;
      } else if (i + 2 < n && t[i + 2].text == "=" &&
                 t[i + 1].text.size() == 1 &&
                 std::string("+-*/%&|^").find(t[i + 1].text[0]) !=
                     std::string::npos) {
        rhs = i + 3;
      }
      if (rhs == 0 || div.count(t[i].text)) continue;
      int depth = 0;
      for (std::size_t j = rhs; j < n; ++j) {
        const std::string& s = t[j].text;
        if (s == "(") {
          ++depth;
        } else if (s == ")") {
          if (depth == 0) break;  // end of a for-header clause
          --depth;
        } else if (depth == 0 && (s == ";" || s == ",")) {
          break;
        } else if (div.count(s)) {
          div.insert(t[i].text);
          changed = true;
          break;
        }
      }
    }
    if (!changed) break;
  }
  return div;
}

/// Tiny constant-expression evaluator for __local array extents: integer
/// literals, #define'd names (resolved recursively), + - * / and parens.
/// Returns false when the expression involves anything else.
bool eval_const_expr(const std::vector<Token>& toks, std::size_t& pos,
                     const std::map<std::string, std::string>& defines,
                     int depth, long& out);

bool eval_atom(const std::vector<Token>& toks, std::size_t& pos,
               const std::map<std::string, std::string>& defines, int depth,
               long& out) {
  if (depth > 8 || pos >= toks.size()) return false;
  const std::string& s = toks[pos].text;
  if (s == "-") {
    ++pos;
    if (!eval_atom(toks, pos, defines, depth + 1, out)) return false;
    out = -out;
    return true;
  }
  if (s == "(") {
    ++pos;
    if (!eval_const_expr(toks, pos, defines, depth + 1, out)) return false;
    if (pos >= toks.size() || toks[pos].text != ")") return false;
    ++pos;
    return true;
  }
  if (std::isdigit(static_cast<unsigned char>(s[0]))) {
    if (s.size() > 12 || !std::all_of(s.begin(), s.end(), [](char c) {
          return std::isdigit(static_cast<unsigned char>(c));
        })) {
      return false;
    }
    out = std::stol(s);
    ++pos;
    return true;
  }
  auto it = defines.find(s);
  if (it == defines.end()) return false;
  std::vector<Token> sub = tokenize(it->second);
  std::size_t sp = 0;
  if (!eval_const_expr(sub, sp, defines, depth + 1, out) || sp != sub.size()) {
    return false;
  }
  ++pos;
  return true;
}

bool eval_const_expr(const std::vector<Token>& toks, std::size_t& pos,
                     const std::map<std::string, std::string>& defines,
                     int depth, long& out) {
  long acc = 0;
  if (!eval_atom(toks, pos, defines, depth, acc)) return false;
  while (pos < toks.size()) {
    const std::string& op = toks[pos].text;
    if (op != "*" && op != "/" && op != "+" && op != "-") break;
    ++pos;
    long rhs = 0;
    if (!eval_atom(toks, pos, defines, depth, rhs)) return false;
    if (op == "*") {
      acc *= rhs;
    } else if (op == "/") {
      if (rhs == 0) return false;
      acc /= rhs;
    } else if (op == "+") {
      acc += rhs;
    } else {
      acc -= rhs;
    }
  }
  out = acc;
  return true;
}

/// sizeof() for the OpenCL scalar/vector types that appear in __local
/// declarations. `real_t` width comes from the typedef in the preamble.
std::size_t type_size(const std::string& name, std::size_t real_t_bytes) {
  static const std::map<std::string, std::size_t> kScalar = {
      {"char", 1},  {"uchar", 1},  {"short", 2}, {"ushort", 2}, {"int", 4},
      {"uint", 4},  {"float", 4},  {"long", 8},  {"ulong", 8},  {"double", 8},
  };
  if (name == "real_t") return real_t_bytes;
  // Vector types: base type + lane-count suffix (float4, int2, ...).
  std::size_t split = name.size();
  while (split > 0 && std::isdigit(static_cast<unsigned char>(name[split - 1]))) {
    --split;
  }
  const auto it = kScalar.find(name.substr(0, split));
  if (it == kScalar.end() || name.size() - split > 2) return 0;
  const std::size_t lanes =
      split < name.size() ? std::stoul(name.substr(split)) : 1;
  return lanes > 0 && lanes <= 16 ? it->second * lanes : 0;
}

}  // namespace

std::string LintReport::to_string() const {
  std::ostringstream os;
  for (const auto& issue : issues) {
    os << "line " << issue.line << ": " << issue.message << "\n";
  }
  return os.str();
}

LintReport lint_kernel_source(const std::string& source, int expected_kernels,
                              const LintLimits& limits) {
  LintReport report;

  // Strip comments and string literals for the structural passes.
  std::string code;
  code.reserve(source.size());
  {
    enum class State { kCode, kLine, kBlock } state = State::kCode;
    for (std::size_t i = 0; i < source.size(); ++i) {
      const char ch = source[i];
      const char next = i + 1 < source.size() ? source[i + 1] : '\0';
      switch (state) {
        case State::kCode:
          if (ch == '/' && next == '/') {
            state = State::kLine;
            ++i;
          } else if (ch == '/' && next == '*') {
            state = State::kBlock;
            ++i;
          } else {
            code.push_back(ch);
          }
          break;
        case State::kLine:
          if (ch == '\n') {
            state = State::kCode;
            code.push_back('\n');
          }
          break;
        case State::kBlock:
          if (ch == '*' && next == '/') {
            state = State::kCode;
            ++i;
          } else if (ch == '\n') {
            code.push_back('\n');
          }
          break;
      }
    }
  }

  // Balanced delimiters with line tracking.
  std::vector<std::pair<char, int>> stack;
  int line = 1;
  for (char ch : code) {
    if (ch == '\n') ++line;
    if (ch == '(' || ch == '{' || ch == '[') stack.push_back({ch, line});
    if (ch == ')' || ch == '}' || ch == ']') {
      const char open = ch == ')' ? '(' : (ch == '}' ? '{' : '[');
      if (stack.empty() || stack.back().first != open) {
        report.issues.push_back({line, std::string("unbalanced '") + ch + "'"});
      } else {
        stack.pop_back();
      }
    }
  }
  for (const auto& [ch, at] : stack) {
    report.issues.push_back({at, std::string("unclosed '") + ch + "'"});
  }

  // Kernel entry-point count.
  int kernels = 0;
  for (std::size_t pos = code.find("__kernel"); pos != std::string::npos;
       pos = code.find("__kernel", pos + 1)) {
    ++kernels;
  }
  if (kernels != expected_kernels) {
    report.issues.push_back(
        {0, "expected " + std::to_string(expected_kernels) +
                " __kernel entry point(s), found " + std::to_string(kernels)});
  }

  // barrier() must appear after the first __kernel.
  const auto first_kernel = code.find("__kernel");
  for (std::size_t pos = code.find("barrier("); pos != std::string::npos;
       pos = code.find("barrier(", pos + 1)) {
    if (first_kernel == std::string::npos || pos < first_kernel) {
      int at = 1;
      for (std::size_t i = 0; i < pos; ++i) {
        if (code[i] == '\n') ++at;
      }
      report.issues.push_back({at, "barrier() outside any kernel"});
    }
  }

  // __local usage requires a __local declaration somewhere.
  const bool uses_local_fence = code.find("CLK_LOCAL_MEM_FENCE") != std::string::npos;
  const bool declares_local = code.find("__local") != std::string::npos;
  if (uses_local_fence && !declares_local) {
    report.issues.push_back({0, "local fence without any __local declaration"});
  }

  // --- Token-level passes -------------------------------------------------
  const std::vector<Token> toks = tokenize(code);
  const std::size_t n = toks.size();
  const std::set<std::string> divergent = collect_divergent_aliases(toks);

  // #define constants for sizing __local arrays. Lines survive the comment
  // strip, so scan `code` line by line.
  std::map<std::string, std::string> defines;
  {
    std::istringstream is(code);
    std::string ln;
    while (std::getline(is, ln)) {
      std::size_t p = ln.find_first_not_of(" \t");
      if (p == std::string::npos || ln.compare(p, 7, "#define") != 0) continue;
      p += 7;
      p = ln.find_first_not_of(" \t", p);
      if (p == std::string::npos || !is_ident_start(ln[p])) continue;
      std::size_t q = p;
      while (q < ln.size() && is_ident_char(ln[q])) ++q;
      const std::string name = ln.substr(p, q - p);
      if (q < ln.size() && ln[q] == '(') continue;  // function-like macro
      defines[name] = ln.substr(q);
    }
  }

  // real_t width from `typedef <type> real_t;` in the preamble.
  std::size_t real_t_bytes = 4;
  for (std::size_t i = 0; i + 2 < n; ++i) {
    if (toks[i].text == "typedef" && toks[i + 2].text == "real_t") {
      real_t_bytes = type_size(toks[i + 1].text, 4);
      if (real_t_bytes == 0) real_t_bytes = 4;
      break;
    }
  }

  // Divergent-barrier detection. A barrier() reached only by a
  // lane-dependent subset of the work-group (control flow guarded by
  // get_local_id / get_global_id or a derived alias) deadlocks or is UB on
  // real devices. Scopes track both `{}` blocks and single-statement
  // if/for/while bodies (popped at `;`).
  //
  // Alongside, attribute statically-sized __local declarations to the
  // enclosing kernel for the capacity check.
  struct Scope {
    bool is_divergent;
    bool brace;
    bool is_if;
  };
  std::vector<Scope> scopes;
  bool last_if_divergent = false;
  bool pending_else_divergent = false;
  int kernel_idx = 0;                        // 0 = before any __kernel
  std::map<int, long> local_bytes;           // kernel -> declared bytes
  std::map<int, int> local_line;             // kernel -> first decl line
  for (std::size_t i = 0; i < n; ++i) {
    const std::string& t = toks[i].text;
    if (t == "__kernel") {
      ++kernel_idx;
    } else if (t == "if" || t == "for" || t == "while") {
      std::size_t j = i + 1;
      if (j >= n || toks[j].text != "(") continue;
      int depth = 0;
      bool div = false;
      std::size_t end = j;
      for (; end < n; ++end) {
        const std::string& s = toks[end].text;
        if (s == "(") {
          ++depth;
        } else if (s == ")") {
          if (--depth == 0) break;
        } else if (divergent.count(s)) {
          div = true;
        }
      }
      div = div || pending_else_divergent;
      pending_else_divergent = false;
      const bool is_if = t == "if";
      if (end + 1 < n && toks[end + 1].text == "{") {
        scopes.push_back({div, true, is_if});
        i = end + 1;
      } else {
        scopes.push_back({div, false, is_if});
        i = end;
      }
    } else if (t == "else") {
      if (i + 1 < n && toks[i + 1].text == "if") {
        pending_else_divergent = last_if_divergent;
      } else if (i + 1 < n && toks[i + 1].text == "{") {
        scopes.push_back({last_if_divergent, true, false});
        ++i;
      } else {
        scopes.push_back({last_if_divergent, false, false});
      }
    } else if (t == "{") {
      scopes.push_back({false, true, false});
    } else if (t == "}" || t == ";") {
      // `;` closes single-statement bodies; `}` additionally closes the
      // brace scope itself (an `else` may still pair with a closed if, so
      // only the brace is popped for it).
      while (!scopes.empty() && !scopes.back().brace) {
        if (scopes.back().is_if) last_if_divergent = scopes.back().is_divergent;
        scopes.pop_back();
      }
      if (t == "}" && !scopes.empty()) {
        if (scopes.back().is_if) last_if_divergent = scopes.back().is_divergent;
        scopes.pop_back();
        if (!(i + 1 < n && toks[i + 1].text == "else")) {
          while (!scopes.empty() && !scopes.back().brace) {
            if (scopes.back().is_if) {
              last_if_divergent = scopes.back().is_divergent;
            }
            scopes.pop_back();
          }
        }
      }
    } else if (t == "barrier" && i + 1 < n && toks[i + 1].text == "(") {
      if (std::any_of(scopes.begin(), scopes.end(),
                      [](const Scope& s) { return s.is_divergent; })) {
        report.issues.push_back(
            {toks[i].line,
             "barrier() inside lane-divergent control flow (condition "
             "depends on get_local_id/get_global_id)"});
      }
    } else if (t == "__local") {
      std::size_t j = i + 1;
      while (j < n && (toks[j].text == "const" || toks[j].text == "volatile" ||
                       toks[j].text == "restrict" ||
                       toks[j].text == "unsigned")) {
        ++j;
      }
      if (j + 1 >= n || !is_identifier(toks[j])) continue;
      const std::string type = toks[j].text;
      ++j;
      if (toks[j].text == "*") continue;  // __local pointer parameter
      if (j >= n || !is_identifier(toks[j])) continue;
      ++j;
      long count = 1;
      if (j < n && toks[j].text == "[") {
        std::size_t p = j + 1;
        if (!eval_const_expr(toks, p, defines, 0, count) || p >= n ||
            toks[p].text != "]") {
          continue;  // extent not a compile-time constant we can read
        }
      }
      const std::size_t elem = type_size(type, real_t_bytes);
      if (elem == 0 || count < 0) continue;
      local_bytes[kernel_idx] += count * static_cast<long>(elem);
      if (!local_line.count(kernel_idx)) local_line[kernel_idx] = toks[i].line;
    }
  }

  if (limits.local_mem_bytes > 0) {
    for (const auto& [idx, bytes] : local_bytes) {
      if (idx == 0) continue;  // file scope (no __kernel yet): not a group's
      if (static_cast<std::size_t>(bytes) > limits.local_mem_bytes) {
        report.issues.push_back(
            {local_line[idx],
             "__local declarations total " + std::to_string(bytes) +
                 " bytes, exceeding device local memory of " +
                 std::to_string(limits.local_mem_bytes) + " bytes"});
      }
    }
  }

  // Style: no tabs (against the original, with line numbers).
  line = 1;
  for (char ch : source) {
    if (ch == '\n') ++line;
    if (ch == '\t') {
      report.issues.push_back({line, "tab character"});
      break;
    }
  }

  return report;
}

}  // namespace alsmf::ocl
