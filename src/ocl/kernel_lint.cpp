#include "ocl/kernel_lint.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "ocl/analyze/lexer.hpp"

namespace alsmf::ocl {

namespace {

using analyze::Token;
using analyze::eval_const_expr;
using analyze::is_identifier;
using analyze::tokenize;
using analyze::type_size;

/// Matches `x = ...` / `x op= ...` at token i (excluding `==` comparisons)
/// and returns the index of the first RHS token, or 0 when not an
/// assignment.
std::size_t match_assignment(const std::vector<Token>& t, std::size_t i) {
  const std::size_t n = t.size();
  if (i + 1 >= n || !is_identifier(t[i])) return 0;
  if (t[i + 1].text == "=" && (i + 2 >= n || t[i + 2].text != "=")) {
    return i + 2;
  }
  if (i + 2 < n && t[i + 2].text == "=" && t[i + 1].text.size() == 1 &&
      std::string("+-*/%&|^").find(t[i + 1].text[0]) != std::string::npos) {
    return i + 3;
  }
  return 0;
}

/// One data-flow round: identifiers initialised or assigned from an
/// expression mentioning get_local_id / get_global_id or an
/// already-divergent identifier become divergent. Works anywhere in the
/// token stream — including loop-header init/update clauses, which end at
/// an unbalanced `)` rather than `;`.
bool rhs_alias_round(const std::vector<Token>& t, std::set<std::string>& div) {
  bool changed = false;
  const std::size_t n = t.size();
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const std::size_t rhs = match_assignment(t, i);
    if (rhs == 0 || div.count(t[i].text)) continue;
    int depth = 0;
    for (std::size_t j = rhs; j < n; ++j) {
      const std::string& s = t[j].text;
      if (s == "(") {
        ++depth;
      } else if (s == ")") {
        if (depth == 0) break;  // end of a for-header clause
        --depth;
      } else if (depth == 0 && (s == ";" || s == ",")) {
        break;
      } else if (div.count(s)) {
        div.insert(t[i].text);
        changed = true;
        break;
      }
    }
  }
  return changed;
}

/// Scope frame of the structural walk: `{}` blocks and single-statement
/// if/for/while bodies (popped at `;`).
struct Scope {
  bool is_divergent;
  bool brace;
  bool is_if;
};

/// Walks the token stream tracking lane-divergent control flow. Two
/// modes share the walk so they can never disagree about scoping:
///
///  * collect mode (`out_div` non-null): identifiers *assigned under a
///    lane-divergent scope* are marked divergent — their value depends on
///    which lanes executed the assignment even when the RHS itself is
///    uniform. This closes the classic control-dependence gap: a loop
///    bound set inside `if (get_local_id(0) < 4)` is just as
///    lane-dependent as one computed from get_local_id directly.
///  * report mode (`report` non-null): barrier() calls reached inside a
///    divergent scope are flagged, and statically-sized __local
///    declarations are attributed to their kernel for the capacity check.
bool walk_scopes(const std::vector<Token>& toks,
                 const std::set<std::string>& divergent,
                 std::set<std::string>* out_div, LintReport* report,
                 const std::map<std::string, std::string>* defines,
                 std::size_t real_t_bytes, std::map<int, long>* local_bytes,
                 std::map<int, int>* local_line) {
  const std::size_t n = toks.size();
  std::vector<Scope> scopes;
  bool last_if_divergent = false;
  bool pending_else_divergent = false;
  bool changed = false;
  int kernel_idx = 0;  // 0 = before any __kernel
  const auto in_divergent_flow = [&] {
    return std::any_of(scopes.begin(), scopes.end(),
                       [](const Scope& s) { return s.is_divergent; });
  };
  for (std::size_t i = 0; i < n; ++i) {
    const std::string& t = toks[i].text;
    if (t == "__kernel") {
      ++kernel_idx;
    } else if (t == "if" || t == "for" || t == "while") {
      std::size_t j = i + 1;
      if (j >= n || toks[j].text != "(") continue;
      int depth = 0;
      bool div = false;
      std::size_t end = j;
      for (; end < n; ++end) {
        const std::string& s = toks[end].text;
        if (s == "(") {
          ++depth;
        } else if (s == ")") {
          if (--depth == 0) break;
        } else if (divergent.count(s)) {
          div = true;
        }
      }
      div = div || pending_else_divergent;
      pending_else_divergent = false;
      const bool is_if = t == "if";
      if (end + 1 < n && toks[end + 1].text == "{") {
        scopes.push_back({div, true, is_if});
        i = end + 1;
      } else {
        scopes.push_back({div, false, is_if});
        i = end;
      }
    } else if (t == "else") {
      if (i + 1 < n && toks[i + 1].text == "if") {
        pending_else_divergent = last_if_divergent;
      } else if (i + 1 < n && toks[i + 1].text == "{") {
        scopes.push_back({last_if_divergent, true, false});
        ++i;
      } else {
        scopes.push_back({last_if_divergent, false, false});
      }
    } else if (t == "{") {
      scopes.push_back({false, true, false});
    } else if (t == "}" || t == ";") {
      // `;` closes single-statement bodies; `}` additionally closes the
      // brace scope itself (an `else` may still pair with a closed if, so
      // only the brace is popped for it).
      while (!scopes.empty() && !scopes.back().brace) {
        if (scopes.back().is_if) last_if_divergent = scopes.back().is_divergent;
        scopes.pop_back();
      }
      if (t == "}" && !scopes.empty()) {
        if (scopes.back().is_if) last_if_divergent = scopes.back().is_divergent;
        scopes.pop_back();
        if (!(i + 1 < n && toks[i + 1].text == "else")) {
          while (!scopes.empty() && !scopes.back().brace) {
            if (scopes.back().is_if) {
              last_if_divergent = scopes.back().is_divergent;
            }
            scopes.pop_back();
          }
        }
      }
    } else if (t == "barrier" && i + 1 < n && toks[i + 1].text == "(") {
      if (report && in_divergent_flow()) {
        report->issues.push_back(
            {toks[i].line,
             "barrier() inside lane-divergent control flow (condition "
             "depends on get_local_id/get_global_id)"});
      }
    } else if (t == "__local" && report) {
      std::size_t j = i + 1;
      while (j < n && (toks[j].text == "const" || toks[j].text == "volatile" ||
                       toks[j].text == "restrict" ||
                       toks[j].text == "unsigned")) {
        ++j;
      }
      if (j + 1 >= n || !is_identifier(toks[j])) continue;
      const std::string type = toks[j].text;
      ++j;
      if (toks[j].text == "*") continue;  // __local pointer parameter
      if (j >= n || !is_identifier(toks[j])) continue;
      ++j;
      long count = 1;
      if (j < n && toks[j].text == "[") {
        std::size_t p = j + 1;
        if (!eval_const_expr(toks, p, *defines, 0, count) || p >= n ||
            toks[p].text != "]") {
          continue;  // extent not a compile-time constant we can read
        }
      }
      const std::size_t elem = type_size(type, real_t_bytes);
      if (elem == 0 || count < 0) continue;
      (*local_bytes)[kernel_idx] += count * static_cast<long>(elem);
      if (!local_line->count(kernel_idx)) {
        (*local_line)[kernel_idx] = toks[i].line;
      }
    } else if (out_div && in_divergent_flow()) {
      const std::size_t rhs = match_assignment(toks, i);
      if (rhs != 0 && !out_div->count(toks[i].text)) {
        out_div->insert(toks[i].text);
        changed = true;
      }
    }
  }
  return changed;
}

/// Divergent-alias fixpoint: direct RHS aliasing and control-dependent
/// assignment, iterated together until stable.
std::set<std::string> collect_divergent_aliases(const std::vector<Token>& t) {
  std::set<std::string> div = {"get_local_id", "get_global_id"};
  for (int round = 0; round < 8; ++round) {
    bool changed = rhs_alias_round(t, div);
    changed |= walk_scopes(t, div, &div, nullptr, nullptr, 4, nullptr, nullptr);
    if (!changed) break;
  }
  return div;
}

}  // namespace

std::string LintReport::to_string() const {
  std::ostringstream os;
  for (const auto& issue : issues) {
    os << "line " << issue.line;
    if (issue.col > 0) os << ":" << issue.col;
    os << ": " << issue.message << "\n";
  }
  return os.str();
}

LintReport lint_kernel_source(const std::string& source, int expected_kernels,
                              const LintLimits& limits) {
  LintReport report;

  // Strip comments for the structural passes.
  const std::string code = analyze::strip_comments(source);

  // Balanced delimiters with line tracking.
  std::vector<std::pair<char, int>> stack;
  int line = 1;
  for (char ch : code) {
    if (ch == '\n') ++line;
    if (ch == '(' || ch == '{' || ch == '[') stack.push_back({ch, line});
    if (ch == ')' || ch == '}' || ch == ']') {
      const char open = ch == ')' ? '(' : (ch == '}' ? '{' : '[');
      if (stack.empty() || stack.back().first != open) {
        report.issues.push_back({line, std::string("unbalanced '") + ch + "'"});
      } else {
        stack.pop_back();
      }
    }
  }
  for (const auto& [ch, at] : stack) {
    report.issues.push_back({at, std::string("unclosed '") + ch + "'"});
  }

  // Kernel entry-point count.
  int kernels = 0;
  for (std::size_t pos = code.find("__kernel"); pos != std::string::npos;
       pos = code.find("__kernel", pos + 1)) {
    ++kernels;
  }
  if (kernels != expected_kernels) {
    report.issues.push_back(
        {0, "expected " + std::to_string(expected_kernels) +
                " __kernel entry point(s), found " + std::to_string(kernels)});
  }

  // barrier() must appear after the first __kernel.
  const auto first_kernel = code.find("__kernel");
  for (std::size_t pos = code.find("barrier("); pos != std::string::npos;
       pos = code.find("barrier(", pos + 1)) {
    if (first_kernel == std::string::npos || pos < first_kernel) {
      int at = 1;
      for (std::size_t i = 0; i < pos; ++i) {
        if (code[i] == '\n') ++at;
      }
      report.issues.push_back({at, "barrier() outside any kernel"});
    }
  }

  // __local usage requires a __local declaration somewhere.
  const bool uses_local_fence =
      code.find("CLK_LOCAL_MEM_FENCE") != std::string::npos;
  const bool declares_local = code.find("__local") != std::string::npos;
  if (uses_local_fence && !declares_local) {
    report.issues.push_back({0, "local fence without any __local declaration"});
  }

  // --- Token-level passes -------------------------------------------------
  const std::vector<Token> toks = tokenize(code);
  const std::size_t n = toks.size();
  const std::set<std::string> divergent = collect_divergent_aliases(toks);
  const std::map<std::string, std::string> defines =
      analyze::collect_defines(code);
  const std::size_t real_t_bytes = analyze::real_t_width(toks);

  // Structural walk: divergent barriers + per-kernel __local sizing.
  std::map<int, long> local_bytes;  // kernel -> declared bytes
  std::map<int, int> local_line;    // kernel -> first decl line
  walk_scopes(toks, divergent, nullptr, &report, &defines, real_t_bytes,
              &local_bytes, &local_line);

  if (limits.local_mem_bytes > 0) {
    for (const auto& [idx, bytes] : local_bytes) {
      if (idx == 0) continue;  // file scope (no __kernel yet): not a group's
      if (static_cast<std::size_t>(bytes) > limits.local_mem_bytes) {
        report.issues.push_back(
            {local_line[idx],
             "__local declarations total " + std::to_string(bytes) +
                 " bytes, exceeding device local memory of " +
                 std::to_string(limits.local_mem_bytes) + " bytes"});
      }
    }
  }

  // Work-group size limit: a `reqd_work_group_size` attribute or the WS
  // constant the kernel was generated for must fit the device.
  if (limits.max_work_group_size > 0) {
    for (std::size_t i = 0; i < n; ++i) {
      if (toks[i].text != "reqd_work_group_size") continue;
      std::size_t p = i + 1;
      if (p >= n || toks[p].text != "(") continue;
      ++p;
      long total = 1;
      bool ok = true;
      for (int dim = 0; dim < 3 && ok; ++dim) {
        long v = 0;
        ok = eval_const_expr(toks, p, defines, 0, v) && v > 0;
        total *= v;
        if (dim < 2) {
          ok = ok && p < n && toks[p].text == ",";
          ++p;
        }
      }
      if (ok && total > static_cast<long>(limits.max_work_group_size)) {
        report.issues.push_back(
            {toks[i].line,
             "reqd_work_group_size of " + std::to_string(total) +
                 " exceeds device maximum work-group size of " +
                 std::to_string(limits.max_work_group_size)});
      }
    }
    long ws = 0;
    if (analyze::eval_define("WS", defines, ws) &&
        ws > static_cast<long>(limits.max_work_group_size)) {
      report.issues.push_back(
          {0, "kernel generated for work-group size WS=" + std::to_string(ws) +
                  ", exceeding device maximum work-group size of " +
                  std::to_string(limits.max_work_group_size) +
                  " (staging tiles and lane loops assume WS lanes)"});
    }
  }

  // Style: no tabs (against the original, with line numbers).
  line = 1;
  for (char ch : source) {
    if (ch == '\n') ++line;
    if (ch == '\t') {
      report.issues.push_back({line, "tab character"});
      break;
    }
  }

  return report;
}

}  // namespace alsmf::ocl
