#include "ocl/kernel_lint.hpp"

#include <sstream>

namespace alsmf::ocl {

std::string LintReport::to_string() const {
  std::ostringstream os;
  for (const auto& issue : issues) {
    os << "line " << issue.line << ": " << issue.message << "\n";
  }
  return os.str();
}

LintReport lint_kernel_source(const std::string& source,
                              int expected_kernels) {
  LintReport report;

  // Strip comments and string literals for the structural passes.
  std::string code;
  code.reserve(source.size());
  {
    enum class State { kCode, kLine, kBlock } state = State::kCode;
    for (std::size_t i = 0; i < source.size(); ++i) {
      const char ch = source[i];
      const char next = i + 1 < source.size() ? source[i + 1] : '\0';
      switch (state) {
        case State::kCode:
          if (ch == '/' && next == '/') {
            state = State::kLine;
            ++i;
          } else if (ch == '/' && next == '*') {
            state = State::kBlock;
            ++i;
          } else {
            code.push_back(ch);
          }
          break;
        case State::kLine:
          if (ch == '\n') {
            state = State::kCode;
            code.push_back('\n');
          }
          break;
        case State::kBlock:
          if (ch == '*' && next == '/') {
            state = State::kCode;
            ++i;
          } else if (ch == '\n') {
            code.push_back('\n');
          }
          break;
      }
    }
  }

  // Balanced delimiters with line tracking.
  std::vector<std::pair<char, int>> stack;
  int line = 1;
  for (char ch : code) {
    if (ch == '\n') ++line;
    if (ch == '(' || ch == '{' || ch == '[') stack.push_back({ch, line});
    if (ch == ')' || ch == '}' || ch == ']') {
      const char open = ch == ')' ? '(' : (ch == '}' ? '{' : '[');
      if (stack.empty() || stack.back().first != open) {
        report.issues.push_back({line, std::string("unbalanced '") + ch + "'"});
      } else {
        stack.pop_back();
      }
    }
  }
  for (const auto& [ch, at] : stack) {
    report.issues.push_back({at, std::string("unclosed '") + ch + "'"});
  }

  // Kernel entry-point count.
  int kernels = 0;
  for (std::size_t pos = code.find("__kernel"); pos != std::string::npos;
       pos = code.find("__kernel", pos + 1)) {
    ++kernels;
  }
  if (kernels != expected_kernels) {
    report.issues.push_back(
        {0, "expected " + std::to_string(expected_kernels) +
                " __kernel entry point(s), found " + std::to_string(kernels)});
  }

  // barrier() must appear after the first __kernel.
  const auto first_kernel = code.find("__kernel");
  for (std::size_t pos = code.find("barrier("); pos != std::string::npos;
       pos = code.find("barrier(", pos + 1)) {
    if (first_kernel == std::string::npos || pos < first_kernel) {
      int at = 1;
      for (std::size_t i = 0; i < pos; ++i) {
        if (code[i] == '\n') ++at;
      }
      report.issues.push_back({at, "barrier() outside any kernel"});
    }
  }

  // __local usage requires a __local declaration somewhere.
  const bool uses_local_fence = code.find("CLK_LOCAL_MEM_FENCE") != std::string::npos;
  const bool declares_local = code.find("__local") != std::string::npos;
  if (uses_local_fence && !declares_local) {
    report.issues.push_back({0, "local fence without any __local declaration"});
  }

  // Style: no tabs (against the original, with line numbers).
  line = 1;
  for (char ch : source) {
    if (ch == '\n') ++line;
    if (ch == '\t') {
      report.issues.push_back({line, "tab character"});
      break;
    }
  }

  return report;
}

}  // namespace alsmf::ocl
