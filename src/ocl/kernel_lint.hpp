// A lightweight structural validator for generated OpenCL C sources: it
// cannot compile them (no OpenCL runtime in this environment) but catches
// the classes of generator bugs that would break a real build — unbalanced
// delimiters, missing kernel entry points, barriers in obviously divergent
// positions, undeclared local buffers.
#pragma once

#include <string>
#include <vector>

namespace alsmf::ocl {

struct LintIssue {
  int line = 0;
  std::string message;
  /// 1-based column when the producing pass knows it (IR-backed deep lint
  /// diagnostics anchored on a reference); 0 when only the line is known.
  int col = 0;
};

struct LintReport {
  std::vector<LintIssue> issues;
  bool clean() const { return issues.empty(); }
  std::string to_string() const;
};

/// Device constraints the lint can check against. All limits default to
/// "unknown" (0), which skips the corresponding check, so existing call
/// sites are unaffected.
struct LintLimits {
  /// Per-work-group scratch-pad capacity (DeviceProfile::local_mem_bytes).
  /// When non-zero, statically-sized `__local` declarations are summed per
  /// kernel and flagged if they exceed it.
  std::size_t local_mem_bytes = 0;
  /// Maximum work-group size the device can launch. When non-zero, a
  /// `reqd_work_group_size(x, y, z)` attribute whose product exceeds it is
  /// flagged, as is a `#define WS n` generated work-group constant larger
  /// than it (the generated kernels' staging tiles and lane loops assume
  /// WS resident lanes).
  std::size_t max_work_group_size = 0;
};

/// Structural checks over an OpenCL C source:
///  * balanced (), {}, []
///  * exactly `expected_kernels` __kernel entry points
///  * every barrier() is inside a __kernel body
///  * no barrier() inside control flow guarded by get_local_id /
///    get_global_id or an alias derived from them (tokenizer-based: such a
///    barrier is reached by a lane-dependent subset of the group —
///    undefined behaviour in OpenCL)
///  * __local usage only in kernels that declare __local buffers or take
///    __local parameters
///  * per-kernel statically-sized __local declarations within
///    limits.local_mem_bytes (sizes evaluated through #define constants and
///    `typedef ... real_t`)
///  * work-group size within limits.max_work_group_size (both
///    reqd_work_group_size attributes and the generated WS constant)
///
/// Divergence tracking follows aliases through both data flow (assigned
/// from a divergent expression, including in loop headers) and control
/// dependence (assigned under a lane-divergent branch or loop), iterated
/// to a fixpoint.
///  * no tab characters / trailing whitespace (style)
LintReport lint_kernel_source(const std::string& source,
                              int expected_kernels = 1,
                              const LintLimits& limits = {});

}  // namespace alsmf::ocl
