// A lightweight structural validator for generated OpenCL C sources: it
// cannot compile them (no OpenCL runtime in this environment) but catches
// the classes of generator bugs that would break a real build — unbalanced
// delimiters, missing kernel entry points, barriers in obviously divergent
// positions, undeclared local buffers.
#pragma once

#include <string>
#include <vector>

namespace alsmf::ocl {

struct LintIssue {
  int line = 0;
  std::string message;
};

struct LintReport {
  std::vector<LintIssue> issues;
  bool clean() const { return issues.empty(); }
  std::string to_string() const;
};

/// Structural checks over an OpenCL C source:
///  * balanced (), {}, []
///  * exactly `expected_kernels` __kernel entry points
///  * every barrier() is inside a __kernel body
///  * __local usage only in kernels that declare __local buffers or take
///    __local parameters
///  * no tab characters / trailing whitespace (style)
LintReport lint_kernel_source(const std::string& source,
                              int expected_kernels = 1);

}  // namespace alsmf::ocl
