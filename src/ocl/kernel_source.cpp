#include "ocl/kernel_source.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "ocl/kernel_flavors.hpp"

namespace alsmf::ocl {

namespace {

/// The paper vectorizes with the widest type covering k.
int vector_width_for(int k) {
  for (int w : {16, 8, 4, 2}) {
    if (k % w == 0) return w;
  }
  return 1;
}

void emit_header_comment(std::ostringstream& os, const std::string& name,
                         const AlsVariant& v, const KernelConfig& c) {
  os << "// " << name << " — auto-generated ALS update kernel\n";
  os << "// variant: " << v.name() << "  (k=" << c.k
     << ", work-group=" << c.group_size << ")\n";
  os << "// mapping: one work-group per row of X; rows strided by group count\n";
  if (c.storage != StoragePrecision::kFp32) {
    os << "// storage: " << to_string(c.storage)
       << " factors/ratings, real_t accumulation (certified by\n";
    os << "// alsmf_cli analyze-precision before any device runs it)\n";
  }
  os << "//\n";
}

}  // namespace

std::string kernel_preamble(const KernelConfig& c) {
  std::ostringstream os;
  os << "// ---- alsmf kernel preamble ----\n";
  if (c.use_double) {
    os << "#pragma OPENCL EXTENSION cl_khr_fp64 : enable\n";
    os << "typedef double real_t;\n";
  } else {
    os << "typedef float real_t;\n";
  }
  if (c.storage != StoragePrecision::kFp32) {
    // Mixed precision: the factor/rating buffers are *stored* narrow;
    // every load widens to real_t and all accumulation stays at real_t
    // width. vloadN on a storage_t pointer reads N storage elements and
    // widens them (vload_halfN semantics on fp16 hardware).
    if (c.storage == StoragePrecision::kFp16) {
      os << "#pragma OPENCL EXTENSION cl_khr_fp16 : enable\n";
      os << "typedef half storage_t;\n";
    } else {
      os << "typedef bfloat16 storage_t;\n";
    }
  }
  os << "#define K " << c.k << "\n";
  os << "#define WS " << c.group_size << "\n";
  os << "#define TILE_ROWS " << c.tile_rows << "\n";
  if (c.row_solver == RowSolverKind::kCg) {
    os << "#define CG_ITERS " << c.cg_iters << "\n";
  }
  os << "\n";
  // Single-lane Cholesky solve of the K x K system (step S3).
  os << "// S3: Cholesky factorization + forward/backward substitution,\n";
  os << "// executed by lane 0 (the system is tiny; k x k).\n";
  os << "inline void cholesky_solve_inplace(__local real_t* a,\n";
  os << "                                   __local real_t* b) {\n";
  os << "  for (int j = 0; j < K; ++j) {\n";
  os << "    real_t d = a[j * K + j];\n";
  os << "    for (int p = 0; p < j; ++p) d -= a[j * K + p] * a[j * K + p];\n";
  os << "    const real_t ljj = sqrt(d);\n";
  os << "    a[j * K + j] = ljj;\n";
  os << "    const real_t inv = (real_t)1 / ljj;\n";
  os << "    for (int i = j + 1; i < K; ++i) {\n";
  os << "      real_t s = a[i * K + j];\n";
  os << "      for (int p = 0; p < j; ++p) s -= a[i * K + p] * a[j * K + p];\n";
  os << "      a[i * K + j] = s * inv;\n";
  os << "    }\n";
  os << "  }\n";
  os << "  for (int i = 0; i < K; ++i) {\n";
  os << "    real_t s = b[i];\n";
  os << "    for (int p = 0; p < i; ++p) s -= a[i * K + p] * b[p];\n";
  os << "    b[i] = s / a[i * K + i];\n";
  os << "  }\n";
  os << "  for (int i = K - 1; i >= 0; --i) {\n";
  os << "    real_t s = b[i];\n";
  os << "    for (int p = i + 1; p < K; ++p) s -= a[p * K + i] * b[p];\n";
  os << "    b[i] = s / a[i * K + i];\n";
  os << "  }\n";
  os << "}\n\n";
  if (c.row_solver == RowSolverKind::kCg) {
    // Single-lane truncated CG (step S3, cg row solver): CG_ITERS steps
    // on the K x K system, warm-started from x (the row's previous factor
    // value, staged by the caller); the solution lands back in b. Mirrors
    // linalg/cg.cpp including the converged/indefinite early exits.
    os << "// S3 (cg): CG_ITERS conjugate-gradient steps on lane 0,\n";
    os << "// warm-started from the row's previous factor value in x.\n";
    os << "inline void cg_solve_inplace(__local real_t* a,\n";
    os << "                             __local real_t* b,\n";
    os << "                             __local real_t* x,\n";
    os << "                             __local real_t* r,\n";
    os << "                             __local real_t* p,\n";
    os << "                             __local real_t* ap) {\n";
    os << "  for (int i = 0; i < K; ++i) {\n";
    os << "    real_t s = (real_t)0;\n";
    os << "    for (int j = 0; j < K; ++j) s += a[i * K + j] * x[j];\n";
    os << "    r[i] = b[i] - s;\n";
    os << "    p[i] = r[i];\n";
    os << "  }\n";
    os << "  real_t rs = (real_t)0;\n";
    os << "  for (int i = 0; i < K; ++i) rs += r[i] * r[i];\n";
    os << "  for (int it = 0; it < CG_ITERS; ++it) {\n";
    os << "    if (!(rs > (real_t)0)) break;\n";
    os << "    real_t pap = (real_t)0;\n";
    os << "    for (int i = 0; i < K; ++i) {\n";
    os << "      real_t s = (real_t)0;\n";
    os << "      for (int j = 0; j < K; ++j) s += a[i * K + j] * p[j];\n";
    os << "      ap[i] = s;\n";
    os << "      pap += p[i] * s;\n";
    os << "    }\n";
    os << "    if (!(pap > (real_t)0)) break;\n";
    os << "    const real_t alpha = rs / pap;\n";
    os << "    real_t rs_next = (real_t)0;\n";
    os << "    for (int i = 0; i < K; ++i) {\n";
    os << "      x[i] += alpha * p[i];\n";
    os << "      r[i] -= alpha * ap[i];\n";
    os << "      rs_next += r[i] * r[i];\n";
    os << "    }\n";
    os << "    const real_t beta = rs_next / rs;\n";
    os << "    rs = rs_next;\n";
    os << "    for (int i = 0; i < K; ++i) p[i] = r[i] + beta * p[i];\n";
    os << "  }\n";
    os << "  for (int i = 0; i < K; ++i) b[i] = x[i];\n";
    os << "}\n\n";
  }
  return os.str();
}

std::string kernel_name(const AlsVariant& v, RowSolverKind row_solver) {
  std::string name = kernel_name(v);
  if (row_solver == RowSolverKind::kCg) name += "_cg";
  return name;
}

std::string kernel_name(const AlsVariant& v, RowSolverKind row_solver,
                        StoragePrecision storage) {
  std::string name = kernel_name(v, row_solver);
  if (storage == StoragePrecision::kFp16) name += "_f16";
  if (storage == StoragePrecision::kBf16) name += "_bf16";
  return name;
}

std::string kernel_name(const AlsVariant& v) {
  if (!v.thread_batching) return "als_update_flat";
  std::string name = "als_update_batch";
  if (v.use_local) name += "_local";
  if (v.use_registers) name += "_reg";
  if (v.use_vectors) name += "_vec";
  return name;
}

std::string build_options(const KernelConfig& c) {
  std::ostringstream os;
  os << "-cl-fast-relaxed-math -DK=" << c.k << " -DWS=" << c.group_size
     << " -DTILE_ROWS=" << c.tile_rows;
  return os.str();
}

std::string batched_kernel_source(const AlsVariant& v,
                                  const KernelConfig& c) {
  ALSMF_CHECK_MSG(v.thread_batching, "use flat_kernel_source for the baseline");
  const bool mixed = c.storage != StoragePrecision::kFp32;
  ALSMF_CHECK_MSG(!mixed || c.row_solver == RowSolverKind::kCholesky,
                  "no mixed-precision CG flavor: the CG iterate's value "
                  "range is not certifiable against narrow storage");
  ALSMF_CHECK_MSG(!mixed || !c.use_double,
                  "mixed precision pairs narrow storage with float "
                  "accumulation, not double");
  std::ostringstream os;
  const std::string name = kernel_name(v, c.row_solver, c.storage);
  emit_header_comment(os, name, v, c);
  os << kernel_preamble(c);

  const int vw = vector_width_for(c.k);
  os << "__kernel void " << name << "(\n";
  if (mixed) {
    os << "    __global const storage_t* restrict values,\n";
    os << "    __global const int*       restrict col_idx,\n";
    os << "    __global const int*       restrict row_ptr,\n";
    os << "    __global const storage_t* restrict Y,\n";
    os << "    __global storage_t*       restrict X,\n";
  } else {
    os << "    __global const real_t* restrict values,\n";
    os << "    __global const int*    restrict col_idx,\n";
    os << "    __global const int*    restrict row_ptr,\n";
    os << "    __global const real_t* restrict Y,\n";
    os << "    __global real_t*       restrict X,\n";
  }
  os << "    const int rows,\n";
  os << "    const real_t lambda) {\n";
  os << "  const int lx = get_local_id(0);\n";
  os << "  const int group = get_group_id(0);\n";
  os << "  const int stride = get_num_groups(0);\n";
  os << "\n";
  os << "  __local real_t smat[K * K];\n";
  os << "  __local real_t svec[K];\n";
  if (c.row_solver == RowSolverKind::kCg) {
    os << "  // cg scratch: the warm-start iterate plus the residual,\n";
    os << "  // direction and mat-vec buffers of cg_solve_inplace.\n";
    os << "  __local real_t cgx[K];\n";
    os << "  __local real_t cgr[K];\n";
    os << "  __local real_t cgp[K];\n";
    os << "  __local real_t cgap[K];\n";
  }
  if (v.use_local) {
    os << "  // §III-C2: stage the gathered columns of Y and the row's\n";
    os << "  // ratings in on-chip local memory (Fig. 5).\n";
    os << "  __local real_t tile[TILE_ROWS * K];\n";
    os << "  __local real_t rstage[TILE_ROWS];\n";
  }
  os << "\n";
  os << "  for (int u = group; u < rows; u += stride) {\n";
  os << "    const int begin = row_ptr[u];\n";
  os << "    const int omega = row_ptr[u + 1] - begin;\n";
  os << "    if (omega == 0) {\n";
  os << "      for (int f = lx; f < K; f += WS) X[u * K + f] = ("
     << (mixed ? "storage_t" : "real_t") << ")0;\n";
  os << "      continue;\n";
  os << "    }\n";
  os << "\n";
  os << "    // zero the shared system\n";
  os << "    for (int i = lx; i < K * K; i += WS) smat[i] = (real_t)0;\n";
  os << "    for (int i = lx; i < K; i += WS) svec[i] = (real_t)0;\n";
  os << "    barrier(CLK_LOCAL_MEM_FENCE);\n";
  os << "\n";

  // --- accumulator declarations ---
  if (v.use_registers) {
    os << "    // §III-C1 (Fig. 3b): unrolled per-lane register\n";
    os << "    // accumulators — one k-buffer instead of k*k.\n    ";
    for (int i = 0; i < c.k; ++i) {
      os << "real_t sum" << i << " = (real_t)0;";
      os << ((i + 1) % 4 == 0 ? "\n    " : " ");
    }
    os << "\n    real_t rsum = (real_t)0;\n";
  } else {
    os << "    // Fig. 3a: per-lane private accumulator (the compiler\n";
    os << "    // spills this dynamically-indexed array on GPUs).\n";
    os << "    real_t sum[K];\n";
    os << "    for (int j = 0; j < K; ++j) sum[j] = (real_t)0;\n";
    os << "    real_t rsum = (real_t)0;\n";
  }
  os << "\n";

  // --- main z loop: over nonzeros, staged or direct ---
  auto emit_accumulate = [&](const std::string& yrow_expr,
                             const std::string& rating_expr,
                             const std::string& indent) {
    if (v.use_vectors && vw > 1) {
      os << indent << "// §III-C3: explicit vector accumulation\n";
      os << indent << "const real_t yi = (lx < K) ? " << yrow_expr
         << "[lx] : (real_t)0;\n";
      for (int j = 0; j < c.k; j += vw) {
        os << indent << "{ float" << vw << " yv = vload" << vw << "("
           << (j / vw) << ", " << yrow_expr << ");";
        if (v.use_registers) {
          os << " /* sums " << j << ".." << (j + vw - 1) << " */";
          for (int e = 0; e < vw; ++e) {
            os << " sum" << (j + e) << " += yi * yv.s"
               << std::hex << e << std::dec << ";";
          }
        } else {
          for (int e = 0; e < vw; ++e) {
            os << " sum[" << (j + e) << "] += yi * yv.s"
               << std::hex << e << std::dec << ";";
          }
        }
        os << " }\n";
      }
      os << indent << "rsum += " << rating_expr << " * yi;\n";
    } else {
      os << indent << "const real_t yi = (lx < K) ? " << yrow_expr
         << "[lx] : (real_t)0;\n";
      if (v.use_registers) {
        for (int j = 0; j < c.k; ++j) {
          os << indent << "sum" << j << " += yi * " << yrow_expr << "[" << j
             << "];\n";
        }
      } else {
        os << indent << "for (int j = 0; j < K; ++j) sum[j] += yi * "
           << yrow_expr << "[j];\n";
      }
      os << indent << "rsum += " << rating_expr << " * yi;\n";
    }
  };

  if (v.use_local) {
    os << "    for (int base = 0; base < omega; base += TILE_ROWS) {\n";
    os << "      const int chunk = min(TILE_ROWS, omega - base);\n";
    os << "      // cooperative staging: lanes copy whole y rows\n";
    os << "      for (int p = lx; p < chunk; p += WS) {\n";
    os << "        const int d = col_idx[begin + base + p] * K;\n";
    os << "        for (int f = 0; f < K; ++f) tile[p * K + f] = Y[d + f];\n";
    os << "        rstage[p] = values[begin + base + p];\n";
    os << "      }\n";
    os << "      barrier(CLK_LOCAL_MEM_FENCE);\n";
    os << "      for (int z = 0; z < chunk; ++z) {\n";
    emit_accumulate("(tile + z * K)", "rstage[z]", "        ");
    os << "      }\n";
    os << "      barrier(CLK_LOCAL_MEM_FENCE);\n";
    os << "    }\n";
  } else {
    os << "    for (int z = 0; z < omega; ++z) {\n";
    os << "      const int d = col_idx[begin + z] * K;\n";
    emit_accumulate("(Y + d)", "values[begin + z]", "      ");
    os << "    }\n";
  }
  os << "\n";

  // --- reduce lane accumulators into the shared system ---
  os << "    // lane lx owns row lx of smat and entry lx of svec\n";
  os << "    if (lx < K) {\n";
  if (v.use_registers) {
    for (int j = 0; j < c.k; ++j) {
      os << "      smat[lx * K + " << j << "] = sum" << j << ";\n";
    }
  } else {
    os << "      for (int j = 0; j < K; ++j) smat[lx * K + j] = sum[j];\n";
  }
  os << "      svec[lx] = rsum;\n";
  os << "      smat[lx * K + lx] += lambda;\n";
  os << "    }\n";
  os << "    barrier(CLK_LOCAL_MEM_FENCE);\n";
  os << "\n";
  if (c.row_solver == RowSolverKind::kCg) {
    os << "    // S3 on lane 0: truncated CG, warm-started from the row's\n";
    os << "    // previous factor value (cooperatively staged into cgx)\n";
    os << "    for (int f = lx; f < K; f += WS) cgx[f] = X[u * K + f];\n";
    os << "    barrier(CLK_LOCAL_MEM_FENCE);\n";
    os << "    if (lx == 0) cg_solve_inplace(smat, svec, cgx, cgr, cgp, cgap);\n";
  } else {
    os << "    // S3 on lane 0 (k x k system)\n";
    os << "    if (lx == 0) cholesky_solve_inplace(smat, svec);\n";
  }
  os << "    barrier(CLK_LOCAL_MEM_FENCE);\n";
  os << "\n";
  if (mixed) {
    os << "    // the only narrowing point: the solved row rounds to "
       << to_string(c.storage) << "\n";
    os << "    for (int f = lx; f < K; f += WS) X[u * K + f] = "
          "(storage_t)svec[f];\n";
  } else {
    os << "    for (int f = lx; f < K; f += WS) X[u * K + f] = svec[f];\n";
  }
  os << "    barrier(CLK_LOCAL_MEM_FENCE);\n";
  os << "  }\n";
  os << "}\n";
  return os.str();
}

std::string flat_kernel_source(const KernelConfig& c) {
  std::ostringstream os;
  AlsVariant flat = AlsVariant::flat_baseline();
  emit_header_comment(os, "als_update_flat", flat, c);
  os << kernel_preamble(c);
  os << "// SAC'15 baseline: one work-item updates one row (Algorithm 2).\n";
  os << "__kernel void als_update_flat(\n";
  os << "    __global const real_t* restrict values,\n";
  os << "    __global const int*    restrict col_idx,\n";
  os << "    __global const int*    restrict row_ptr,\n";
  os << "    __global const real_t* restrict Y,\n";
  os << "    __global real_t*       restrict X,\n";
  os << "    const int rows,\n";
  os << "    const real_t lambda) {\n";
  os << "  const int u = get_global_id(0);\n";
  os << "  if (u >= rows) return;\n";
  os << "  const int begin = row_ptr[u];\n";
  os << "  const int omega = row_ptr[u + 1] - begin;\n";
  os << "  real_t smat[K * K];\n";
  os << "  real_t svec[K];\n";
  os << "  for (int i = 0; i < K * K; ++i) smat[i] = (real_t)0;\n";
  os << "  for (int i = 0; i < K; ++i) svec[i] = (real_t)0;\n";
  os << "  if (omega == 0) {\n";
  os << "    for (int f = 0; f < K; ++f) X[u * K + f] = (real_t)0;\n";
  os << "    return;\n";
  os << "  }\n";
  os << "  // S1 + S2: the whole k x k accumulation runs in this thread\n";
  os << "  for (int z = 0; z < omega; ++z) {\n";
  os << "    const int d = col_idx[begin + z] * K;\n";
  os << "    const real_t r = values[begin + z];\n";
  os << "    for (int i = 0; i < K; ++i) {\n";
  os << "      const real_t yi = Y[d + i];\n";
  os << "      for (int j = i; j < K; ++j) smat[i * K + j] += yi * Y[d + j];\n";
  os << "      svec[i] += r * yi;\n";
  os << "    }\n";
  os << "  }\n";
  os << "  for (int i = 0; i < K; ++i) {\n";
  os << "    smat[i * K + i] += lambda;\n";
  os << "    for (int j = i + 1; j < K; ++j) smat[j * K + i] = smat[i * K + j];\n";
  os << "  }\n";
  os << "  // S3 (private-memory Cholesky)\n";
  os << "  for (int j = 0; j < K; ++j) {\n";
  os << "    real_t d = smat[j * K + j];\n";
  os << "    for (int p = 0; p < j; ++p) d -= smat[j * K + p] * smat[j * K + p];\n";
  os << "    const real_t ljj = sqrt(d);\n";
  os << "    smat[j * K + j] = ljj;\n";
  os << "    for (int i = j + 1; i < K; ++i) {\n";
  os << "      real_t s = smat[i * K + j];\n";
  os << "      for (int p = 0; p < j; ++p) s -= smat[i * K + p] * smat[j * K + p];\n";
  os << "      smat[i * K + j] = s / ljj;\n";
  os << "    }\n";
  os << "  }\n";
  os << "  for (int i = 0; i < K; ++i) {\n";
  os << "    real_t s = svec[i];\n";
  os << "    for (int p = 0; p < i; ++p) s -= smat[i * K + p] * svec[p];\n";
  os << "    svec[i] = s / smat[i * K + i];\n";
  os << "  }\n";
  os << "  for (int i = K - 1; i >= 0; --i) {\n";
  os << "    real_t s = svec[i];\n";
  os << "    for (int p = i + 1; p < K; ++p) s -= smat[p * K + i] * svec[p];\n";
  os << "    svec[i] = s / smat[i * K + i];\n";
  os << "  }\n";
  os << "  for (int f = 0; f < K; ++f) X[u * K + f] = svec[f];\n";
  os << "}\n";
  return os.str();
}

std::string sell_kernel_source(const KernelConfig& c) {
  std::ostringstream os;
  os << "// als_update_flat_sell — auto-generated ALS update kernel\n";
  os << "// storage: SELL-C-sigma (C = WS lanes per slice, column-major)\n";
  os << "// mapping: one work-group per slice; each lane owns one row\n";
  os << "//\n";
  os << kernel_preamble(c);
  os << "// Format-side divergence remedy: slices are sorted by row length\n";
  os << "// and padded, so lanes of a bundle walk similar-length rows and\n";
  os << "// segment loads (base + j * WS + lane) are unit-stride.\n";
  os << "__kernel void als_update_flat_sell(\n";
  os << "    __global const real_t* restrict values,\n";
  os << "    __global const int*    restrict col_idx,\n";
  os << "    __global const int*    restrict slice_ptr,\n";
  os << "    __global const int*    restrict perm,\n";
  os << "    __global const int*    restrict lane_len,\n";
  os << "    __global const real_t* restrict Y,\n";
  os << "    __global real_t*       restrict X,\n";
  os << "    const real_t lambda) {\n";
  os << "  const int s = get_group_id(0);\n";
  os << "  const int lane = get_local_id(0);\n";
  os << "  const int at = s * WS + lane;\n";
  os << "  const int row = perm[at];\n";
  os << "  if (row < 0) return;\n";
  os << "  const int base = slice_ptr[s];\n";
  os << "  const int len = lane_len[at];\n";
  os << "  real_t smat[K * K];\n";
  os << "  real_t svec[K];\n";
  os << "  for (int i = 0; i < K * K; ++i) smat[i] = (real_t)0;\n";
  os << "  for (int i = 0; i < K; ++i) svec[i] = (real_t)0;\n";
  os << "  // S1 + S2 over the lane's padded row (len excludes padding; a\n";
  os << "  // zero-length row falls through to the regularized zero solve).\n";
  os << "  for (int z = 0; z < len; ++z) {\n";
  os << "    const int d = col_idx[base + z * WS + lane] * K;\n";
  os << "    const real_t r = values[base + z * WS + lane];\n";
  os << "    for (int i = 0; i < K; ++i) {\n";
  os << "      const real_t yi = Y[d + i];\n";
  os << "      for (int j = i; j < K; ++j) smat[i * K + j] += yi * Y[d + j];\n";
  os << "      svec[i] += r * yi;\n";
  os << "    }\n";
  os << "  }\n";
  os << "  for (int i = 0; i < K; ++i) {\n";
  os << "    smat[i * K + i] += lambda;\n";
  os << "    for (int j = i + 1; j < K; ++j) smat[j * K + i] = smat[i * K + j];\n";
  os << "  }\n";
  os << "  // S3 (private-memory Cholesky)\n";
  os << "  for (int j = 0; j < K; ++j) {\n";
  os << "    real_t d = smat[j * K + j];\n";
  os << "    for (int p = 0; p < j; ++p) d -= smat[j * K + p] * smat[j * K + p];\n";
  os << "    const real_t ljj = sqrt(d);\n";
  os << "    smat[j * K + j] = ljj;\n";
  os << "    for (int i = j + 1; i < K; ++i) {\n";
  os << "      real_t s2 = smat[i * K + j];\n";
  os << "      for (int p = 0; p < j; ++p) s2 -= smat[i * K + p] * smat[j * K + p];\n";
  os << "      smat[i * K + j] = s2 / ljj;\n";
  os << "    }\n";
  os << "  }\n";
  os << "  for (int i = 0; i < K; ++i) {\n";
  os << "    real_t s2 = svec[i];\n";
  os << "    for (int p = 0; p < i; ++p) s2 -= smat[i * K + p] * svec[p];\n";
  os << "    svec[i] = s2 / smat[i * K + i];\n";
  os << "  }\n";
  os << "  for (int i = K - 1; i >= 0; --i) {\n";
  os << "    real_t s2 = svec[i];\n";
  os << "    for (int p = i + 1; p < K; ++p) s2 -= smat[p * K + i] * svec[p];\n";
  os << "    svec[i] = s2 / smat[i * K + i];\n";
  os << "  }\n";
  os << "  for (int f = 0; f < K; ++f) X[row * K + f] = svec[f];\n";
  os << "}\n";
  return os.str();
}

std::string host_driver_source(const AlsVariant& v, const KernelConfig& c) {
  const std::string kname = kernel_name(v);
  std::ostringstream os;
  os << "/* alsmf OpenCL host driver — auto-generated.\n"
     << " * Builds " << kname << ".cl and runs alternating X/Y updates on\n"
     << " * a rating matrix given in `user item rating` text form.\n"
     << " *\n"
     << " *   cc -O2 host_driver.c -lOpenCL -o als_ocl\n"
     << " *   ./als_ocl ratings.txt [iterations]\n"
     << " */\n"
     << "#define CL_TARGET_OPENCL_VERSION 120\n"
     << "#include <CL/cl.h>\n"
     << "#include <stdio.h>\n"
     << "#include <stdlib.h>\n"
     << "#include <string.h>\n\n"
     << "#define K " << c.k << "\n"
     << "#define WS " << c.group_size << "\n"
     << "#define GROUPS 8192\n"
     << "#define LAMBDA 0.1f\n\n"
     << "static void check(cl_int err, const char* what) {\n"
     << "  if (err != CL_SUCCESS) {\n"
     << "    fprintf(stderr, \"%s failed: %d\\n\", what, err);\n"
     << "    exit(1);\n"
     << "  }\n"
     << "}\n\n"
     << "static char* read_file(const char* path, size_t* len) {\n"
     << "  FILE* f = fopen(path, \"rb\");\n"
     << "  if (!f) { fprintf(stderr, \"cannot open %s\\n\", path); exit(1); }\n"
     << "  fseek(f, 0, SEEK_END);\n"
     << "  *len = (size_t)ftell(f);\n"
     << "  fseek(f, 0, SEEK_SET);\n"
     << "  char* buf = (char*)malloc(*len + 1);\n"
     << "  if (fread(buf, 1, *len, f) != *len) exit(1);\n"
     << "  buf[*len] = 0;\n"
     << "  fclose(f);\n"
     << "  return buf;\n"
     << "}\n\n"
     << "/* CSR assembly from `user item rating` triplets (1-based ids). */\n"
     << "typedef struct { int rows, cols; long nnz;\n"
     << "                 int *row_ptr, *col_idx; float *values; } Csr;\n\n"
     << "static Csr load_ratings(const char* path, int transpose) {\n"
     << "  FILE* f = fopen(path, \"r\");\n"
     << "  if (!f) { fprintf(stderr, \"cannot open %s\\n\", path); exit(1); }\n"
     << "  int u, i; float r; Csr m; memset(&m, 0, sizeof m);\n"
     << "  long cap = 1 << 20, n = 0;\n"
     << "  int* us = (int*)malloc(cap * sizeof(int));\n"
     << "  int* is = (int*)malloc(cap * sizeof(int));\n"
     << "  float* rs = (float*)malloc(cap * sizeof(float));\n"
     << "  while (fscanf(f, \"%d %d %f\", &u, &i, &r) == 3) {\n"
     << "    if (n == cap) {\n"
     << "      cap *= 2;\n"
     << "      us = (int*)realloc(us, cap * sizeof(int));\n"
     << "      is = (int*)realloc(is, cap * sizeof(int));\n"
     << "      rs = (float*)realloc(rs, cap * sizeof(float));\n"
     << "    }\n"
     << "    us[n] = (transpose ? i : u) - 1;\n"
     << "    is[n] = (transpose ? u : i) - 1;\n"
     << "    rs[n] = r;\n"
     << "    if (us[n] + 1 > m.rows) m.rows = us[n] + 1;\n"
     << "    if (is[n] + 1 > m.cols) m.cols = is[n] + 1;\n"
     << "    ++n;\n"
     << "  }\n"
     << "  fclose(f);\n"
     << "  m.nnz = n;\n"
     << "  m.row_ptr = (int*)calloc((size_t)m.rows + 1, sizeof(int));\n"
     << "  m.col_idx = (int*)malloc((size_t)n * sizeof(int));\n"
     << "  m.values = (float*)malloc((size_t)n * sizeof(float));\n"
     << "  for (long p = 0; p < n; ++p) m.row_ptr[us[p] + 1]++;\n"
     << "  for (int row = 0; row < m.rows; ++row)\n"
     << "    m.row_ptr[row + 1] += m.row_ptr[row];\n"
     << "  int* cur = (int*)malloc((size_t)m.rows * sizeof(int));\n"
     << "  memcpy(cur, m.row_ptr, (size_t)m.rows * sizeof(int));\n"
     << "  for (long p = 0; p < n; ++p) {\n"
     << "    const int at = cur[us[p]]++;\n"
     << "    m.col_idx[at] = is[p];\n"
     << "    m.values[at] = rs[p];\n"
     << "  }\n"
     << "  free(us); free(is); free(rs); free(cur);\n"
     << "  return m;\n"
     << "}\n\n"
     << "int main(int argc, char** argv) {\n"
     << "  if (argc < 2) { fprintf(stderr, \"usage: %s ratings.txt [iters]\\n\", argv[0]); return 2; }\n"
     << "  const int iters = argc > 2 ? atoi(argv[2]) : 5;\n"
     << "  Csr R = load_ratings(argv[1], 0);\n"
     << "  Csr Rt = load_ratings(argv[1], 1);\n"
     << "  printf(\"%d x %d, %ld ratings\\n\", R.rows, R.cols, R.nnz);\n\n"
     << "  cl_platform_id platform; cl_device_id device; cl_int err;\n"
     << "  check(clGetPlatformIDs(1, &platform, NULL), \"clGetPlatformIDs\");\n"
     << "  check(clGetDeviceIDs(platform, CL_DEVICE_TYPE_DEFAULT, 1, &device, NULL), \"clGetDeviceIDs\");\n"
     << "  cl_context ctx = clCreateContext(NULL, 1, &device, NULL, NULL, &err);\n"
     << "  check(err, \"clCreateContext\");\n"
     << "  cl_command_queue queue = clCreateCommandQueue(ctx, device, CL_QUEUE_PROFILING_ENABLE, &err);\n"
     << "  check(err, \"clCreateCommandQueue\");\n\n"
     << "  size_t src_len;\n"
     << "  char* src = read_file(\"" << kname << ".cl\", &src_len);\n"
     << "  cl_program prog = clCreateProgramWithSource(ctx, 1, (const char**)&src, &src_len, &err);\n"
     << "  check(err, \"clCreateProgramWithSource\");\n"
     << "  err = clBuildProgram(prog, 1, &device, \"" << build_options(c)
     << "\", NULL, NULL);\n"
     << "  if (err != CL_SUCCESS) {\n"
     << "    char log[16384]; size_t log_len;\n"
     << "    clGetProgramBuildInfo(prog, device, CL_PROGRAM_BUILD_LOG, sizeof log, log, &log_len);\n"
     << "    fprintf(stderr, \"build log:\\n%.*s\\n\", (int)log_len, log);\n"
     << "    return 1;\n"
     << "  }\n"
     << "  cl_kernel kernel = clCreateKernel(prog, \"" << kname << "\", &err);\n"
     << "  check(err, \"clCreateKernel\");\n\n"
     << "  /* factor buffers: X zero, Y small random */\n"
     << "  float* X = (float*)calloc((size_t)R.rows * K, sizeof(float));\n"
     << "  float* Y = (float*)malloc((size_t)R.cols * K * sizeof(float));\n"
     << "  srand(42);\n"
     << "  for (long p = 0; p < (long)R.cols * K; ++p)\n"
     << "    Y[p] = ((float)rand() / RAND_MAX - 0.5f) * 0.3f;\n\n"
     << "#define DEVBUF(ptr, bytes) \\\n"
     << "  clCreateBuffer(ctx, CL_MEM_READ_WRITE | CL_MEM_COPY_HOST_PTR, (bytes), (ptr), &err)\n"
     << "  cl_mem dR_val = DEVBUF(R.values, R.nnz * sizeof(float));\n"
     << "  cl_mem dR_col = DEVBUF(R.col_idx, R.nnz * sizeof(int));\n"
     << "  cl_mem dR_ptr = DEVBUF(R.row_ptr, ((size_t)R.rows + 1) * sizeof(int));\n"
     << "  cl_mem dT_val = DEVBUF(Rt.values, Rt.nnz * sizeof(float));\n"
     << "  cl_mem dT_col = DEVBUF(Rt.col_idx, Rt.nnz * sizeof(int));\n"
     << "  cl_mem dT_ptr = DEVBUF(Rt.row_ptr, ((size_t)Rt.rows + 1) * sizeof(int));\n"
     << "  cl_mem dX = DEVBUF(X, (size_t)R.rows * K * sizeof(float));\n"
     << "  cl_mem dY = DEVBUF(Y, (size_t)R.cols * K * sizeof(float));\n"
     << "  check(err, \"clCreateBuffer\");\n\n"
     << "  const float lambda = LAMBDA;\n"
     << "  const size_t global = (size_t)GROUPS * WS, local = WS;\n"
     << "  for (int it = 0; it < iters; ++it) {\n"
     << "    /* update X over Y */\n"
     << "    clSetKernelArg(kernel, 0, sizeof(cl_mem), &dR_val);\n"
     << "    clSetKernelArg(kernel, 1, sizeof(cl_mem), &dR_col);\n"
     << "    clSetKernelArg(kernel, 2, sizeof(cl_mem), &dR_ptr);\n"
     << "    clSetKernelArg(kernel, 3, sizeof(cl_mem), &dY);\n"
     << "    clSetKernelArg(kernel, 4, sizeof(cl_mem), &dX);\n"
     << "    clSetKernelArg(kernel, 5, sizeof(int), &R.rows);\n"
     << "    clSetKernelArg(kernel, 6, sizeof(float), &lambda);\n"
     << "    check(clEnqueueNDRangeKernel(queue, kernel, 1, NULL, &global, &local, 0, NULL, NULL), \"enqueue X\");\n"
     << "    /* update Y over X (transposed matrix) */\n"
     << "    clSetKernelArg(kernel, 0, sizeof(cl_mem), &dT_val);\n"
     << "    clSetKernelArg(kernel, 1, sizeof(cl_mem), &dT_col);\n"
     << "    clSetKernelArg(kernel, 2, sizeof(cl_mem), &dT_ptr);\n"
     << "    clSetKernelArg(kernel, 3, sizeof(cl_mem), &dX);\n"
     << "    clSetKernelArg(kernel, 4, sizeof(cl_mem), &dY);\n"
     << "    clSetKernelArg(kernel, 5, sizeof(int), &Rt.rows);\n"
     << "    clSetKernelArg(kernel, 6, sizeof(float), &lambda);\n"
     << "    check(clEnqueueNDRangeKernel(queue, kernel, 1, NULL, &global, &local, 0, NULL, NULL), \"enqueue Y\");\n"
     << "  }\n"
     << "  check(clFinish(queue), \"clFinish\");\n"
     << "  printf(\"done: %d iterations of " << kname << "\\n\", iters);\n"
     << "  return 0;\n"
     << "}\n";
  return os.str();
}

std::string write_host_driver(const std::string& directory,
                              const AlsVariant& v, const KernelConfig& c) {
  std::filesystem::create_directories(directory);
  const std::string path = directory + "/host_driver.c";
  std::ofstream out(path);
  ALSMF_CHECK_MSG(out.good(), "cannot write " + path);
  out << host_driver_source(v, c);
  return path;
}

int write_kernel_files(const std::string& directory, const KernelConfig& c) {
  std::filesystem::create_directories(directory);
  int written = 0;
  for (const KernelFlavor& flavor : enumerate_kernel_flavors(c)) {
    const std::string path = directory + "/" + flavor.name + ".cl";
    std::ofstream out(path);
    ALSMF_CHECK_MSG(out.good(), "cannot write " + path);
    out << flavor.source;
    ++written;
  }
  return written;
}

}  // namespace alsmf::ocl
