// OpenCL C kernel sources for the ALS update — the code a deployment on
// real OpenCL hardware (CPU / GPU / MIC / FPGA) would build, one source
// per code variant of §III-D. The devsim substrate mirrors these kernels'
// structure exactly (same loops, same staging, same accumulators), so the
// modeled results transfer; on a machine with an OpenCL runtime these
// sources are what you feed clCreateProgramWithSource.
//
// Sources are generated from the variant toggles so the 8 variants stay
// structurally consistent with each other and with the C++ kernels — the
// generator *is* the documentation of what each optimization changes.
#pragma once

#include <string>

#include "als/options.hpp"

namespace alsmf::ocl {

/// Build options for kernel generation.
struct KernelConfig {
  int k = 10;              ///< latent factor (compile-time constant: K)
  int group_size = 32;     ///< work-group size (compile-time constant: WS)
  int tile_rows = 256;     ///< local-memory staging tile rows (local variant)
  bool use_double = false; ///< emit double-precision kernels
  /// S3 strategy for the batched kernels: cholesky emits the exact
  /// lane-0 solve; cg emits warm-started truncated conjugate gradient
  /// (compile-time constant: CG_ITERS). Subspace has no generated form —
  /// its devsim kernel reuses the cholesky pricing shape.
  RowSolverKind row_solver = RowSolverKind::kCholesky;
  int cg_iters = 3;        ///< CG steps (cg row solver only)
  /// Storage width of the factor/rating buffers (the mixed-precision axis):
  /// fp16/bf16 emit a `storage_t` typedef and narrow the values/Y/X
  /// parameters while every accumulator stays real_t. Only the batched
  /// cholesky variants have narrow flavors — the CG iterate's value range
  /// is not certifiable against the fp16 ceiling (docs/static-analysis.md),
  /// and the flat/SELL baselines are comparison points we keep exact.
  StoragePrecision storage = StoragePrecision::kFp32;
};

/// OpenCL C source of the thread-batched update kernel for `variant`
/// (one work-group per row; §III-B plus the §III-C toggles).
std::string batched_kernel_source(const AlsVariant& variant,
                                  const KernelConfig& config);

/// OpenCL C source of the flat SAC'15 baseline kernel (one work-item per
/// row, Algorithm 2).
std::string flat_kernel_source(const KernelConfig& config);

/// OpenCL C source of the flat update over SELL-C-sigma storage (the
/// format-side divergence remedy; sparse/sell.hpp): one work-group per
/// slice, one lane per row, column-major slice layout so lane loads of the
/// CSR segment are unit-stride.
std::string sell_kernel_source(const KernelConfig& config);

/// The preamble shared by all kernels (types, Cholesky helpers).
std::string kernel_preamble(const KernelConfig& config);

/// Recommended clBuildProgram options string for a config.
std::string build_options(const KernelConfig& config);

/// Kernel entry-point name for a variant ("als_update_batch_local_reg"...).
std::string kernel_name(const AlsVariant& variant);

/// Entry-point name for a variant × row-solver pair; the cg strategy
/// appends "_cg" ("als_update_batch_local_reg_cg"...).
std::string kernel_name(const AlsVariant& variant, RowSolverKind row_solver);

/// Entry-point name for a variant × row-solver × storage triple; fp16
/// appends "_f16", bf16 appends "_bf16".
std::string kernel_name(const AlsVariant& variant, RowSolverKind row_solver,
                        StoragePrecision storage);

/// Writes all 34 kernels (8 batched variants × {cholesky, cg} + flat +
/// SELL + 8 batched cholesky variants × {fp16, bf16} storage) into a
/// directory, one .cl file each; returns the number written. The set is
/// enumerate_kernel_flavors (ocl/kernel_flavors.hpp).
int write_kernel_files(const std::string& directory,
                       const KernelConfig& config);

/// A complete, self-contained OpenCL *host* program (C, OpenCL 1.2 API)
/// that loads a generated kernel file, uploads a CSR matrix in the
/// paper's text format, runs the alternating updates, and reports timing
/// — everything a user with real OpenCL hardware needs besides a
/// compiler. Pairs with write_kernel_files.
std::string host_driver_source(const AlsVariant& variant,
                               const KernelConfig& config);

/// Writes the host driver next to the kernels; returns its path.
std::string write_host_driver(const std::string& directory,
                              const AlsVariant& variant,
                              const KernelConfig& config);

}  // namespace alsmf::ocl
